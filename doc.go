// Package fedshare reproduces "Federation of virtualized infrastructures:
// sharing the value of diversity" (Antoniadis, Fdida, Friedman, Misra —
// ACM CoNEXT 2010): an economic model of federated testbeds in which the
// value of a coalition of facilities is the utility its pooled, location-
// diverse resources can serve, and the Shapley value is used to split that
// value fairly among contributors.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map), with executables in cmd/ (fedsim regenerates the paper's figures;
// fedd/fedctl run an SFA-style federation over TCP) and runnable examples
// under examples/. The top-level bench harness (bench_test.go) regenerates
// every figure of the paper's evaluation.
package fedshare
