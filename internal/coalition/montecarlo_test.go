package coalition

import (
	"math"
	"strings"
	"testing"

	"fedshare/internal/stats"
)

func TestMonteCarloShapleyParallelMatchesExact(t *testing.T) {
	tab := randomMonotoneTable(t, 8, 31)
	exact := BatchedValues(tab).Shapley
	res, err := MonteCarloShapleyParallel(NewSafeCache(tab), 20000, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		tol := 10*res.StdErr[i] + 1e-9
		if diff := math.Abs(res.Phi[i] - exact[i]); diff > tol {
			t.Errorf("player %d: parallel MC %.6f vs exact %.6f (diff %.2g > tol %.2g)",
				i, res.Phi[i], exact[i], diff, tol)
		}
	}
}

func TestMonteCarloShapleyParallelDeterministicAcrossWorkers(t *testing.T) {
	tab := randomMonotoneTable(t, 10, 8)
	var base MonteCarloResult
	for _, workers := range []int{1, 2, 7, 64} {
		res, err := MonteCarloShapleyParallel(tab, 1000, workers, 12345)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			base = res
			continue
		}
		for i := range base.Phi {
			if res.Phi[i] != base.Phi[i] || res.StdErr[i] != base.StdErr[i] {
				t.Fatalf("workers=%d: player %d diverged: %v vs %v", workers, i, res.Phi[i], base.Phi[i])
			}
		}
	}
}

func TestMonteCarloShapleyParallelAgreesWithSequentialOracle(t *testing.T) {
	// Same plain estimator, independent sample streams: the two engines
	// must agree within combined sampling error on every player.
	tab := randomMonotoneTable(t, 9, 4)
	par, err := MonteCarloShapleyParallel(tab, 20000, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	seq := MonteCarloShapley(tab, 20000, stats.NewRand(8))
	for i := range par.Phi {
		tol := 6*(par.StdErr[i]+seq.StdErr[i]) + 1e-9
		if diff := math.Abs(par.Phi[i] - seq.Phi[i]); diff > tol {
			t.Errorf("player %d: parallel %.6f vs sequential %.6f (diff %.2g > tol %.2g)",
				i, par.Phi[i], seq.Phi[i], diff, tol)
		}
	}
}

func TestMonteCarloShapleyParallelErrors(t *testing.T) {
	tab := randomMonotoneTable(t, 4, 2)
	if _, err := MonteCarloShapleyParallel(tab, 0, 1, 1); err == nil ||
		!strings.Contains(err.Error(), "samples > 0") {
		t.Errorf("expected samples error, got %v", err)
	}
	if _, err := MonteCarloShapleyParallel(tab, -5, 1, 1); err == nil {
		t.Error("expected error for negative samples")
	}
}

func TestMonteCarloShapleyLegacyPanics(t *testing.T) {
	tab := randomMonotoneTable(t, 4, 2)
	defer func() {
		if recover() == nil {
			t.Error("legacy wrapper did not panic on samples <= 0")
		}
	}()
	MonteCarloShapley(tab, 0, stats.NewRand(1))
}
