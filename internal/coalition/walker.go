package coalition

import "sync/atomic"

// The shared prefix walker.
//
// Both sampling engines — ApproxShapley and MonteCarloShapleyParallel —
// evaluate V along the growing prefixes of sampled permutations and
// consume the per-step deltas V(prefix_k) − V(prefix_{k−1}). Until PR 7
// each engine carried its own copy of that loop, and every step re-solved
// the full prefix coalition from scratch. prefixWalker is the single
// shared implementation: when the game can hand out an incremental
// PrefixValuer, each step updates the previous prefix's solved state
// (O(Δ) on the allocation fast path) instead of re-solving; otherwise it
// falls back to the exact ValueMembers loop the engines always ran.
//
// Determinism: the incremental path is required to return bit-identical
// values to ValueMembers (see allocation.PrefixSolver), and the walker
// preserves the engines' visit order exactly, so fixed-seed results are
// identical whether the incremental path is on or off — on top of the
// existing worker-count invariance.

// PrefixValuer incrementally evaluates V along a growing coalition. It is
// stateful and single-goroutine; each sampling worker obtains its own.
// Extend must return exactly ValueMembers of the players extended so far
// (bit-identical, so sampling output is independent of whether the
// incremental path is used).
type PrefixValuer interface {
	// Reset empties the coalition, starting a new walk.
	Reset()
	// Extend adds one player and returns V of the extended coalition.
	Extend(player int) float64
}

// PrefixGame is a MemberGame that can hand out incremental prefix
// evaluators. PrefixValuer may return nil when the game instance does not
// support incremental evaluation (e.g. overlap models); callers fall back
// to ValueMembers.
type PrefixGame interface {
	MemberGame
	PrefixValuer() PrefixValuer
}

// incrementalDisabled is the process-wide kill switch for the incremental
// prefix path (fedsim -no-incremental, the CI equivalence gate).
var incrementalDisabled atomic.Bool

// SetIncrementalEnabled turns the incremental prefix-evaluation path on or
// off process-wide; off, the samplers evaluate every prefix through
// ValueMembers. It reports the previous state. Results are bit-identical
// either way — the switch exists to prove exactly that, and to measure the
// incremental path's speedup.
func SetIncrementalEnabled(on bool) bool {
	return !incrementalDisabled.Swap(!on)
}

// prefixWalker walks permutation prefixes for one sampling worker. A nil
// valuer means the generic ValueMembers path.
type prefixWalker struct {
	g  MemberGame
	pv PrefixValuer
}

// newPrefixWalker builds a walker for g, acquiring an incremental valuer
// when g supports one and the incremental path is enabled.
func newPrefixWalker(g MemberGame, noIncremental bool) *prefixWalker {
	w := &prefixWalker{g: g}
	if noIncremental || incrementalDisabled.Load() {
		return w
	}
	if pg, ok := g.(PrefixGame); ok {
		w.pv = pg.PrefixValuer()
	}
	return w
}

// incremental reports whether the walker runs on the incremental path.
func (w *prefixWalker) incremental() bool { return w.pv != nil }

// walk evaluates V along the growing prefixes of perm — of reverse(perm)
// when rev is set, walked through the same buffer from the tail: prefix k
// of the reversal is the suffix perm[n−k:]. For each step it calls
// visit(player, delta) with the player completing the prefix and its
// marginal contribution V(prefix) − V(previous prefix).
func (w *prefixWalker) walk(perm []int, rev bool, visit func(player int, delta float64)) {
	n := len(perm)
	prev := 0.0
	if w.pv != nil {
		w.pv.Reset()
		for k := 1; k <= n; k++ {
			p := perm[k-1]
			if rev {
				p = perm[n-k]
			}
			v := w.pv.Extend(p)
			visit(p, v-prev)
			prev = v
		}
		return
	}
	if !rev {
		for k := 1; k <= n; k++ {
			v := w.g.ValueMembers(perm[:k])
			visit(perm[k-1], v-prev)
			prev = v
		}
		return
	}
	for k := 1; k <= n; k++ {
		v := w.g.ValueMembers(perm[n-k:])
		visit(perm[n-k], v-prev)
		prev = v
	}
}
