package coalition

import (
	"sync"
	"sync/atomic"

	"fedshare/internal/combin"
)

// safeCacheStripes is the number of lock stripes; must be a power of two.
const safeCacheStripes = 64

// SafeCache memoizes a Game's characteristic function and is safe for
// concurrent Value calls, unlike Cache. It lets ParallelShapley,
// SnapshotParallel, and MonteCarloShapley run on expensive characteristic
// functions (e.g. the allocation-solver-backed federation games) without
// first paying a full 2^n snapshot: coalitions are evaluated lazily, each
// at most once.
//
// For up to 24 players values live in a dense array indexed by coalition
// bitmask; beyond that, in sharded maps. Coalitions are hashed onto 64
// mutex stripes, and a miss computes the inner Value while holding its
// stripe lock — so two goroutines never duplicate an evaluation, and only
// same-stripe coalitions serialize behind an expensive one.
type SafeCache struct {
	inner Game
	n     int
	mus   [safeCacheStripes]sync.Mutex
	dense []float64
	seen  []bool
	maps  []map[combin.Set]float64 // one per stripe when n > 24
	evals atomic.Int64
}

// NewSafeCache wraps g with concurrency-safe memoization.
func NewSafeCache(g Game) *SafeCache {
	c := &SafeCache{inner: g, n: g.N()}
	if c.n <= snapshotMaxPlayers {
		size := 1 << uint(c.n)
		c.dense = make([]float64, size)
		c.seen = make([]bool, size)
	} else {
		c.maps = make([]map[combin.Set]float64, safeCacheStripes)
		for i := range c.maps {
			c.maps[i] = map[combin.Set]float64{}
		}
	}
	return c
}

// stripeOf spreads coalitions over the stripes (Fibonacci hashing, so both
// contiguous snapshot shards and sparse Monte-Carlo masks distribute well).
func stripeOf(s combin.Set) int {
	return int((uint64(s) * 0x9E3779B97F4A7C15) >> 58 & (safeCacheStripes - 1))
}

// N implements Game.
func (c *SafeCache) N() int { return c.n }

// Value implements Game with concurrency-safe memoization.
func (c *SafeCache) Value(s combin.Set) float64 {
	k := stripeOf(s)
	c.mus[k].Lock()
	defer c.mus[k].Unlock()
	if c.dense != nil {
		if c.seen[s] {
			return c.dense[s]
		}
		v := c.inner.Value(s)
		c.dense[s] = v
		c.seen[s] = true
		c.evals.Add(1)
		cacheEvaluations.Inc()
		return v
	}
	if v, ok := c.maps[k][s]; ok {
		return v
	}
	v := c.inner.Value(s)
	c.maps[k][s] = v
	c.evals.Add(1)
	cacheEvaluations.Inc()
	return v
}

// Evaluations reports how many distinct coalitions have been evaluated so
// far. It is safe to call concurrently with Value.
func (c *SafeCache) Evaluations() int { return int(c.evals.Load()) }
