package coalition

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"fedshare/internal/combin"
)

// ParallelShapley computes the exact Shapley value with one worker per
// player (bounded by GOMAXPROCS). The game must be safe for concurrent
// Value calls; wrap expensive games with Snapshot first (a Cache is NOT
// safe for concurrent use).
func ParallelShapley(g Game, workers int) []float64 {
	n := g.N()
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	weight := make([]float64, n)
	for s := 0; s < n; s++ {
		// s!(n-s-1)!/n! == 1 / (n · C(n-1, s)).
		weight[s] = 1 / (float64(n) * combin.Binomial(n-1, s))
	}
	phi := make([]float64, n)
	full := combin.Full(n)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sum := 0.0
				rest := full.Without(i)
				combin.Subsets(rest, func(s combin.Set) bool {
					sum += weight[s.Card()] * (g.Value(s.With(i)) - g.Value(s))
					return true
				})
				phi[i] = sum
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return phi
}

// Snapshot materializes every coalition value of g into an immutable Table,
// which is safe for concurrent reads. Cost is 2^n evaluations; limited to
// 24 players.
func Snapshot(g Game) (*Table, error) {
	n := g.N()
	if n > 24 {
		return nil, fmt.Errorf("coalition: Snapshot limited to 24 players, got %d", n)
	}
	values := make([]float64, 1<<uint(n))
	combin.AllCoalitions(n, func(s combin.Set) bool {
		values[s] = g.Value(s)
		return true
	})
	return NewTable(n, values)
}

// tableJSON is the serialized form of a Table game.
type tableJSON struct {
	Players int       `json:"players"`
	Values  []float64 `json:"values"`
}

// MarshalJSON implements json.Marshaler, so computed games can be archived
// and shared among federation operators (the paper's off-line φ̂ workflow).
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{Players: t.Players, Values: t.Values})
}

// UnmarshalJSON implements json.Unmarshaler with full validation.
func (t *Table) UnmarshalJSON(data []byte) error {
	var raw tableJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	nt, err := NewTable(raw.Players, raw.Values)
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}
