package coalition

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"fedshare/internal/combin"
)

// ParallelShapley computes the exact Shapley value with the given number of
// workers (0 means GOMAXPROCS). The game must be safe for concurrent Value
// calls; wrap expensive games with SafeCache or Snapshot first (a Cache is
// NOT safe for concurrent use).
//
// For *Table games — and for any game with n ≤ 24 players, which is first
// materialized via SnapshotParallel — the work is sharded over the 2^n
// coalition range and processed by the batched lattice kernel, so the
// useful worker count scales with the coalition range and is NOT capped at
// n players; load stays balanced regardless of player count. Only games
// beyond 24 players (or with V(∅) ≠ 0) fall back to the per-player
// decomposition, whose parallelism is limited to n workers.
func ParallelShapley(g Game, workers int) []float64 {
	n := g.N()
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if t, ok := tableFor(g, workers); ok {
		return BatchedValuesParallel(t, workers).Shapley
	}
	return parallelShapleyPerPlayer(g, workers)
}

// ParallelBatched computes Shapley and Banzhaf together with the batched
// lattice kernel, sharded across workers (0 means GOMAXPROCS). The game
// must be safe for concurrent Value calls when it is not already a *Table.
// It errors for games that cannot be snapshotted (n > 24 or V(∅) ≠ 0).
func ParallelBatched(g Game, workers int) (Batched, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t, ok := tableFor(g, workers)
	if !ok {
		return Batched{}, fmt.Errorf("coalition: game with %d players is not snapshot-eligible", g.N())
	}
	return BatchedValuesParallel(t, workers), nil
}

// parallelShapleyPerPlayer is the legacy decomposition: one job per player,
// each enumerating the 2^(n-1) subsets excluding it. Worker count is capped
// at n, so the last straggler bounds wall-clock time.
func parallelShapleyPerPlayer(g Game, workers int) []float64 {
	n := g.N()
	if workers > n {
		workers = n
	}
	weight := shapleyWeights(n)
	phi := make([]float64, n)
	full := combin.Full(n)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sum := 0.0
				rest := full.Without(i)
				combin.Subsets(rest, func(s combin.Set) bool {
					sum += weight[s.Card()] * (g.Value(s.With(i)) - g.Value(s))
					return true
				})
				phi[i] = sum
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return phi
}

// Snapshot materializes every coalition value of g into an immutable Table,
// which is safe for concurrent reads. Cost is 2^n evaluations; limited to
// 24 players.
func Snapshot(g Game) (*Table, error) {
	n := g.N()
	if n > snapshotMaxPlayers {
		return nil, fmt.Errorf("coalition: Snapshot limited to %d players, got %d", snapshotMaxPlayers, n)
	}
	values := make([]float64, 1<<uint(n))
	combin.AllCoalitions(n, func(s combin.Set) bool {
		values[s] = g.Value(s)
		return true
	})
	return NewTable(n, values)
}

// SnapshotParallel materializes g into a Table with the 2^n coalition range
// sharded across workers (0 means GOMAXPROCS). The game must be safe for
// concurrent Value calls — wrap it with SafeCache if it is not. Each worker
// fills a disjoint contiguous block of the value table, so expensive
// characteristic functions (e.g. one LP/simulation solve per coalition)
// evaluate concurrently. Limited to 24 players.
func SnapshotParallel(g Game, workers int) (*Table, error) {
	n := g.N()
	if n > snapshotMaxPlayers {
		return nil, fmt.Errorf("coalition: SnapshotParallel limited to %d players, got %d", snapshotMaxPlayers, n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	size := uint64(1) << uint(n)
	if uint64(workers) > size {
		workers = int(size)
	}
	if workers <= 1 {
		return Snapshot(g)
	}
	values := make([]float64, size)
	chunk := (size + uint64(workers) - 1) / uint64(workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo := uint64(k) * chunk
		hi := min(lo+chunk, size)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for m := lo; m < hi; m++ {
				values[m] = g.Value(combin.Set(m))
			}
		}(lo, hi)
	}
	wg.Wait()
	return NewTable(n, values)
}

// tableJSON is the serialized form of a Table game.
type tableJSON struct {
	Players int       `json:"players"`
	Values  []float64 `json:"values"`
}

// MarshalJSON implements json.Marshaler, so computed games can be archived
// and shared among federation operators (the paper's off-line φ̂ workflow).
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{Players: t.Players, Values: t.Values})
}

// UnmarshalJSON implements json.Unmarshaler with full validation.
func (t *Table) UnmarshalJSON(data []byte) error {
	var raw tableJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	nt, err := NewTable(raw.Players, raw.Values)
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}
