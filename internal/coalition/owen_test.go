package coalition

import (
	"math"
	"testing"

	"fedshare/internal/combin"
	"fedshare/internal/stats"
)

func TestStructureValidate(t *testing.T) {
	if err := (Structure{Blocks: [][]int{{0, 1}, {2}}}).Validate(3); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	bad := []Structure{
		{Blocks: [][]int{{0, 1}}},         // misses player 2
		{Blocks: [][]int{{0, 1}, {1, 2}}}, // duplicate
		{Blocks: [][]int{{0, 1, 2}, {}}},  // empty block
		{Blocks: [][]int{{0, 1}, {5}}},    // out of range
	}
	for i, st := range bad {
		if err := st.Validate(3); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestOwenSingletonsEqualsShapley(t *testing.T) {
	g := gloveGame()
	owen, err := Owen(g, Singletons(3))
	if err != nil {
		t.Fatal(err)
	}
	almostEqualVec(t, owen, Shapley(g), 1e-9, "Owen with singleton blocks")
}

func TestOwenOneBlockEqualsShapley(t *testing.T) {
	g := gloveGame()
	owen, err := Owen(g, Structure{Blocks: [][]int{{0, 1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	almostEqualVec(t, owen, Shapley(g), 1e-9, "Owen with one block")
}

func TestOwenEfficiency(t *testing.T) {
	rng := stats.NewRand(83)
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(3)
		vals := make([]float64, 1<<uint(n))
		for i := 1; i < len(vals); i++ {
			vals[i] = rng.Float64() * 10
		}
		g, _ := NewTable(n, vals)
		// Random partition into two blocks.
		var a, b []int
		for p := 0; p < n; p++ {
			if rng.Intn(2) == 0 {
				a = append(a, p)
			} else {
				b = append(b, p)
			}
		}
		st := Structure{Blocks: [][]int{a, b}}
		if len(a) == 0 || len(b) == 0 {
			st = Singletons(n)
		}
		owen, err := Owen(g, st)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckEfficiency(g, owen, 1e-7); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestOwenQuotientConsistency(t *testing.T) {
	// The sum of Owen values within a block equals the block's Shapley
	// value in the quotient game.
	g := Func{Players: 4, V: func(s combin.Set) float64 {
		// Asymmetric game mixing diversity and capacity flavors.
		c := float64(s.Card())
		bonus := 0.0
		if s.Contains(0) && s.Contains(3) {
			bonus = 5
		}
		return c*c + bonus
	}}
	st := Structure{Blocks: [][]int{{0, 1}, {2, 3}}}
	owen, err := Owen(g, st)
	if err != nil {
		t.Fatal(err)
	}
	q, err := QuotientGame(g, st)
	if err != nil {
		t.Fatal(err)
	}
	qShapley := Shapley(NewCache(q))
	blockTotals := BlockShares(st, owen)
	almostEqualVec(t, blockTotals, qShapley, 1e-9, "Owen quotient consistency")
}

func TestOwenDiffersFromShapleyUnderStructure(t *testing.T) {
	// In the glove game, pairing one left-glove holder with the right-glove
	// holder changes bargaining power versus plain Shapley.
	g := gloveGame()
	st := Structure{Blocks: [][]int{{0, 2}, {1}}}
	owen, err := Owen(g, st)
	if err != nil {
		t.Fatal(err)
	}
	shapley := Shapley(g)
	diff := 0.0
	for i := range owen {
		diff += math.Abs(owen[i] - shapley[i])
	}
	if diff < 1e-6 {
		t.Error("structure should change the value division in the glove game")
	}
	// Owen remains efficient.
	if err := CheckEfficiency(g, owen, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestMonteCarloOwenConverges(t *testing.T) {
	g := gloveGame()
	st := Structure{Blocks: [][]int{{0, 2}, {1}}}
	exact, err := Owen(g, st)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloOwen(g, st, 30000, stats.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	almostEqualVec(t, mc, exact, 0.02, "MC Owen")
}

func TestOwenRejectsHugeStructures(t *testing.T) {
	g := Func{Players: 24, V: func(s combin.Set) float64 { return float64(s.Card()) }}
	st := Structure{Blocks: [][]int{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
		{12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23}}}
	if _, err := Owen(g, st); err == nil {
		t.Error("oversized enumeration must be refused")
	}
	// Monte Carlo handles it.
	mc, err := MonteCarloOwen(g, st, 200, stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEfficiency(g, mc, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestMonteCarloOwenValidation(t *testing.T) {
	g := gloveGame()
	if _, err := MonteCarloOwen(g, Singletons(3), 0, stats.NewRand(1)); err == nil {
		t.Error("zero samples must fail")
	}
	if _, err := MonteCarloOwen(g, Structure{Blocks: [][]int{{0}}}, 10, stats.NewRand(1)); err == nil {
		t.Error("invalid structure must fail")
	}
}

func TestQuotientGameValues(t *testing.T) {
	g := gloveGame()
	st := Structure{Blocks: [][]int{{0, 1}, {2}}}
	q, err := QuotientGame(g, st)
	if err != nil {
		t.Fatal(err)
	}
	if q.N() != 2 {
		t.Errorf("quotient has %d players", q.N())
	}
	if v := q.Value(combin.Of(0)); v != 0 {
		t.Errorf("V({left gloves}) = %g", v)
	}
	if v := q.Value(combin.Of(0, 1)); v != 1 {
		t.Errorf("V(all) = %g", v)
	}
	if _, err := QuotientGame(g, Structure{Blocks: [][]int{{0}}}); err == nil {
		t.Error("invalid structure must fail")
	}
}

func BenchmarkOwen3x3(b *testing.B) {
	g := Func{Players: 9, V: func(s combin.Set) float64 {
		c := float64(s.Card())
		return c * c
	}}
	st := Structure{Blocks: [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Owen(NewCache(g), st); err != nil {
			b.Fatal(err)
		}
	}
}
