package coalition

import (
	"math"
	"strings"
	"sync"
	"testing"

	"fedshare/internal/combin"
)

func setOf(members []int) combin.Set {
	var s combin.Set
	for _, p := range members {
		s = s.With(p)
	}
	return s
}

// testClassStructure builds a 3-class, 6-player game with a nonlinear
// class-level characteristic function, plus the equivalent dense Table so
// the collapsed engines can be cross-checked against the lattice kernel.
func testClassStructure(t *testing.T) (*ClassStructure, *Table) {
	t.Helper()
	value := func(counts []int) float64 {
		lin := 2*float64(counts[0]) + 1.5*float64(counts[1]) + 4*float64(counts[2])
		if lin == 0 {
			return 0
		}
		return math.Pow(lin, 0.8) + 0.3*float64(counts[0]*counts[2])
	}
	cs := &ClassStructure{
		Mult:    []int{2, 3, 1},
		ClassOf: []int{0, 0, 1, 1, 1, 2},
		Value:   value,
	}
	n := cs.N()
	values := make([]float64, 1<<uint(n))
	counts := make([]int, cs.K())
	for m := range values {
		for j := range counts {
			counts[j] = 0
		}
		for p := 0; p < n; p++ {
			if m&(1<<uint(p)) != 0 {
				counts[cs.ClassOf[p]]++
			}
		}
		values[m] = value(counts)
	}
	tab, err := NewTable(n, values)
	if err != nil {
		t.Fatal(err)
	}
	return cs, tab
}

func TestExactClassShapleyMatchesKernel(t *testing.T) {
	cs, tab := testClassStructure(t)
	phi, err := ExactShapley(cs)
	if err != nil {
		t.Fatal(err)
	}
	exact := BatchedValues(tab).Shapley
	for i := range exact {
		if math.Abs(phi[i]-exact[i]) > 1e-9 {
			t.Errorf("player %d: collapsed %.12f vs kernel %.12f", i, phi[i], exact[i])
		}
	}
	// Symmetric players must receive identical shares.
	if phi[0] != phi[1] || phi[2] != phi[3] || phi[3] != phi[4] {
		t.Errorf("within-class shares differ: %v", phi)
	}
}

func TestExactClassShapleyManyClasses(t *testing.T) {
	// 40 players in 4 classes: far beyond the 2^n kernel, trivial on the
	// count lattice. Check the efficiency axiom and within-class equality.
	value := func(counts []int) float64 {
		total := 0.0
		for j, c := range counts {
			total += float64(j+1) * float64(c)
		}
		return math.Sqrt(total)
	}
	mult := []int{10, 10, 10, 10}
	classOf := make([]int, 40)
	for p := range classOf {
		classOf[p] = p / 10
	}
	cs := &ClassStructure{Mult: mult, ClassOf: classOf, Value: value}
	phi, err := ExactShapley(cs)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range phi {
		sum += p
	}
	vn := value([]int{10, 10, 10, 10})
	if math.Abs(sum-vn) > 1e-9*vn {
		t.Errorf("Σφ = %.12f, V(N) = %.12f", sum, vn)
	}
	for p := 1; p < 40; p++ {
		if classOf[p] == classOf[p-1] && phi[p] != phi[p-1] {
			t.Errorf("players %d and %d share a class but differ: %g vs %g", p-1, p, phi[p-1], phi[p])
		}
	}
}

func TestExactClassShapleyStateLimit(t *testing.T) {
	// Π(m_j+1) = 101^4 ≈ 10^8 > 2^21: the exact engine must refuse.
	cs := &ClassStructure{
		Mult:    []int{100, 100, 100, 100},
		ClassOf: make([]int, 400),
		Value:   func(counts []int) float64 { return 0 },
	}
	for p := range cs.ClassOf {
		cs.ClassOf[p] = p / 100
	}
	if _, err := ExactShapley(cs); err == nil || !strings.Contains(err.Error(), "exact limit") {
		t.Errorf("expected state-limit error, got %v", err)
	}
}

func TestClassStructureValidate(t *testing.T) {
	ok := func(counts []int) float64 { return 0 }
	cases := []struct {
		name string
		cs   ClassStructure
		want string
	}{
		{"no value", ClassStructure{Mult: []int{1}, ClassOf: []int{0}}, "no value function"},
		{"zero mult", ClassStructure{Mult: []int{0}, ClassOf: nil, Value: ok}, "non-positive multiplicity"},
		{"sum mismatch", ClassStructure{Mult: []int{2}, ClassOf: []int{0}, Value: ok}, "sum to"},
		{"unknown class", ClassStructure{Mult: []int{1}, ClassOf: []int{3}, Value: ok}, "unknown class"},
		{"miscounted class", ClassStructure{Mult: []int{1, 1}, ClassOf: []int{0, 0}, Value: ok}, "assigned players"},
	}
	for _, tc := range cases {
		if err := tc.cs.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestClassMemberGameMatchesStructure(t *testing.T) {
	cs, tab := testClassStructure(t)
	mg := cs.MemberGame()
	if mg.N() != 6 {
		t.Fatalf("N = %d, want 6", mg.N())
	}
	// Every coalition through the memoized adapter must match the dense
	// table; hammered concurrently this doubles as the memo's race test.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			members := make([]int, 0, 6)
			for m := 1; m < 1<<6; m++ {
				members = members[:0]
				for p := 0; p < 6; p++ {
					if m&(1<<uint(p)) != 0 {
						members = append(members, p)
					}
				}
				got := mg.ValueMembers(members)
				want := tab.Value(setOf(members))
				if got != want {
					t.Errorf("coalition %b: memo %.12f vs table %.12f", m, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestApproxCollapsedMatchesExact(t *testing.T) {
	cs, _ := testClassStructure(t)
	exact, err := ExactShapley(cs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApproxShapley(cs.MemberGame(), ApproxOptions{
		Samples: 8000, Seed: 17, Groups: cs.Groups(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		tol := 5*res.CIHalf[i] + 1e-9
		if diff := math.Abs(res.Phi[i] - exact[i]); diff > tol {
			t.Errorf("player %d: collapsed sample %.6f vs exact %.6f (diff %.2g > tol %.2g)",
				i, res.Phi[i], exact[i], diff, tol)
		}
	}
}
