package coalition

import (
	"math"
	"testing"

	"fedshare/internal/combin"
	"fedshare/internal/stats"
)

func TestHarsanyiDividendsAdditiveGame(t *testing.T) {
	w := []float64{2, 5, 9}
	div, err := HarsanyiDividends(additiveGame(w))
	if err != nil {
		t.Fatal(err)
	}
	// Additive games have dividends only on singletons.
	for s := 1; s < len(div); s++ {
		set := combin.Set(s)
		if set.Card() == 1 {
			i := set.Members()[0]
			if math.Abs(div[s]-w[i]) > 1e-12 {
				t.Errorf("Δ({%d}) = %g, want %g", i, div[s], w[i])
			}
		} else if math.Abs(div[s]) > 1e-12 {
			t.Errorf("Δ(%v) = %g, want 0", set, div[s])
		}
	}
}

func TestHarsanyiDividendsReconstruct(t *testing.T) {
	// V(S) must equal Σ_{T ⊆ S} Δ(T) for random games.
	rng := stats.NewRand(101)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		vals := make([]float64, 1<<uint(n))
		for i := 1; i < len(vals); i++ {
			vals[i] = rng.Float64()*20 - 5
		}
		g, _ := NewTable(n, vals)
		div, err := HarsanyiDividends(g)
		if err != nil {
			t.Fatal(err)
		}
		combin.AllCoalitions(n, func(s combin.Set) bool {
			sum := 0.0
			combin.Subsets(s, func(sub combin.Set) bool {
				sum += div[sub]
				return true
			})
			if math.Abs(sum-g.Value(s)) > 1e-9 {
				t.Fatalf("trial %d: reconstruction of V(%v): %g != %g", trial, s, sum, g.Value(s))
			}
			return true
		})
	}
}

func TestWeightedShapleyEqualWeightsIsShapley(t *testing.T) {
	g := gloveGame()
	ws, err := WeightedShapley(g, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	almostEqualVec(t, ws, Shapley(g), 1e-12, "equal-weight weighted Shapley")
}

func TestWeightedShapleyEfficiency(t *testing.T) {
	rng := stats.NewRand(103)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		vals := make([]float64, 1<<uint(n))
		for i := 1; i < len(vals); i++ {
			vals[i] = rng.Float64() * 10
		}
		g, _ := NewTable(n, vals)
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.5 + rng.Float64()*4
		}
		phi, err := WeightedShapley(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckEfficiency(g, phi, 1e-7); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestWeightedShapleyTiltsTowardHeavyPlayers(t *testing.T) {
	// Pure synergy game: only the grand coalition has value. The dividend
	// splits by weight, so the heavier player takes proportionally more.
	g := Func{Players: 2, V: func(s combin.Set) float64 {
		if s == combin.Of(0, 1) {
			return 10
		}
		return 0
	}}
	phi, err := WeightedShapley(g, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	almostEqualVec(t, phi, []float64{2, 8}, 1e-12, "weighted split of pure synergy")
}

func TestWeightedShapleyValidation(t *testing.T) {
	g := gloveGame()
	if _, err := WeightedShapley(g, []float64{1, 2}); err == nil {
		t.Error("wrong weight count must fail")
	}
	if _, err := WeightedShapley(g, []float64{1, 0, 2}); err == nil {
		t.Error("zero weight must fail")
	}
	if _, err := WeightedShapley(g, []float64{1, -1, 2}); err == nil {
		t.Error("negative weight must fail")
	}
}

func TestInteractionIndex(t *testing.T) {
	// Additive game: no interaction at all.
	pos, neg, err := InteractionIndex(additiveGame([]float64{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if pos != 0 || neg != 0 {
		t.Errorf("additive game interactions = %g, %g", pos, neg)
	}
	// Glove game: V is subadditive in pairs with the right glove
	// (complementarity) but redundant between the two lefts.
	pos, neg, err = InteractionIndex(gloveGame())
	if err != nil {
		t.Fatal(err)
	}
	if pos <= 0 {
		t.Errorf("glove game should have positive complementarity, got %g", pos)
	}
	if neg >= 0 {
		t.Errorf("glove game should have negative redundancy, got %g", neg)
	}
}

func TestDividendsSizeLimit(t *testing.T) {
	g := Func{Players: 25, V: func(combin.Set) float64 { return 0 }}
	if _, err := HarsanyiDividends(g); err == nil {
		t.Error("oversized dividends must fail")
	}
}

func BenchmarkHarsanyiDividends16(b *testing.B) {
	g := Func{Players: 16, V: func(s combin.Set) float64 {
		c := float64(s.Card())
		return c * c
	}}
	snap, err := Snapshot(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HarsanyiDividends(snap); err != nil {
			b.Fatal(err)
		}
	}
}
