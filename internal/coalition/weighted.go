package coalition

import (
	"fmt"

	"fedshare/internal/combin"
)

// HarsanyiDividends computes the Möbius transform of the characteristic
// function: Δ(S) = Σ_{T ⊆ S} (−1)^{|S|−|T|} V(T). Dividends decompose a
// game into pure-interaction terms — V(S) = Σ_{T ⊆ S} Δ(T) — and power
// every weighted sharing rule below. Cost O(2^n · n); limited to 24 players.
func HarsanyiDividends(g Game) ([]float64, error) {
	n := g.N()
	if n > 24 {
		return nil, fmt.Errorf("coalition: dividends limited to 24 players, got %d", n)
	}
	size := 1 << uint(n)
	div := make([]float64, size)
	for s := 0; s < size; s++ {
		div[s] = g.Value(combin.Set(s))
	}
	// In-place subset Möbius transform.
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for s := 0; s < size; s++ {
			if s&bit != 0 {
				div[s] -= div[s^bit]
			}
		}
	}
	return div, nil
}

// WeightedShapley computes the weighted Shapley value with positive player
// weights w: each coalition's Harsanyi dividend Δ(S) is split among its
// members in proportion to their weights,
//
//	φ_i^w = Σ_{S ∋ i} Δ(S) · w_i / w(S).
//
// Equal weights reduce to the ordinary Shapley value. In the paper's
// commercial setting the natural weights are the facilities' customer
// populations U_i (cf. the ownership dimension of Aram et al. [8]).
func WeightedShapley(g Game, w []float64) ([]float64, error) {
	n := g.N()
	if len(w) != n {
		return nil, fmt.Errorf("coalition: %d weights for %d players", len(w), n)
	}
	for i, wi := range w {
		if wi <= 0 {
			return nil, fmt.Errorf("coalition: weight %d is %g, must be positive", i, wi)
		}
	}
	div, err := HarsanyiDividends(g)
	if err != nil {
		return nil, err
	}
	phi := make([]float64, n)
	for s := 1; s < len(div); s++ {
		d := div[s]
		if d == 0 {
			continue
		}
		set := combin.Set(s)
		wsum := 0.0
		for _, i := range set.Members() {
			wsum += w[i]
		}
		for _, i := range set.Members() {
			phi[i] += d * w[i] / wsum
		}
	}
	return phi, nil
}

// InteractionIndex returns the total positive and negative interaction mass
// of the game: the sums of positive and negative dividends over coalitions
// of size >= 2. A purely additive game has both at zero; large positive
// mass signals strong complementarity (the federation's diversity synergy).
func InteractionIndex(g Game) (positive, negative float64, err error) {
	div, err := HarsanyiDividends(g)
	if err != nil {
		return 0, 0, err
	}
	for s := 1; s < len(div); s++ {
		if combin.Set(s).Card() < 2 {
			continue
		}
		if div[s] > 0 {
			positive += div[s]
		} else {
			negative += div[s]
		}
	}
	return positive, negative, nil
}
