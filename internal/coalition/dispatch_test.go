package coalition

import (
	"math"
	"strings"
	"testing"

	"fedshare/internal/combin"
)

// structuredMemberGame pairs a large synthetic member game with its class
// structure for dispatcher tests.
type structuredMemberGame struct {
	MemberGame
	st *ClassStructure
}

func (g structuredMemberGame) ClassStructure() *ClassStructure { return g.st }

// bigClassGame builds an n-player game of k interchangeable classes exposed
// via the ClassStructured interface.
func bigClassGame(n, k int) structuredMemberGame {
	classOf := make([]int, n)
	mult := make([]int, k)
	for p := range classOf {
		classOf[p] = p % k
		mult[p%k]++
	}
	value := func(counts []int) float64 {
		total := 0.0
		for j, c := range counts {
			total += float64(j+1) * float64(c)
		}
		return math.Pow(total, 0.9)
	}
	st := &ClassStructure{Mult: mult, ClassOf: classOf, Value: value}
	return structuredMemberGame{MemberGame: st.MemberGame(), st: st}
}

func TestValuesPicksKernelForSmallGames(t *testing.T) {
	tab := randomMonotoneTable(t, 8, 5)
	res, err := Values(AsMemberGameTable(tab), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != EngineKernel {
		t.Fatalf("method %q, want %q", res.Method, EngineKernel)
	}
	exact := BatchedValues(tab).Shapley
	for i := range exact {
		if res.Phi[i] != exact[i] {
			t.Errorf("player %d: %g vs kernel %g", i, res.Phi[i], exact[i])
		}
	}
	if res.CIHalf != nil || res.Samples != 0 || !res.Converged {
		t.Errorf("unexpected kernel result metadata: %+v", res)
	}
}

// AsMemberGameTable lifts a *Table through the Game interface so the
// dispatcher sees both Game and MemberGame (as core.Model will).
func AsMemberGameTable(tab *Table) MemberGame { return tableMemberGame{tab} }

type tableMemberGame struct{ t *Table }

func (g tableMemberGame) N() int { return g.t.N() }
func (g tableMemberGame) Value(s combin.Set) float64 {
	return g.t.Value(s)
}
func (g tableMemberGame) ValueMembers(members []int) float64 {
	return g.t.Value(setOf(members))
}

func TestValuesPicksExactCollapsed(t *testing.T) {
	g := bigClassGame(60, 3) // 2^60 infeasible, 21^3 states trivial
	res, err := Values(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != EngineExactCollapsed {
		t.Fatalf("method %q, want %q", res.Method, EngineExactCollapsed)
	}
	want, err := ExactShapley(g.st)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Phi[i] != want[i] {
			t.Errorf("player %d: %g vs exact collapsed %g", i, res.Phi[i], want[i])
		}
	}
}

func TestValuesPicksApproxCollapsed(t *testing.T) {
	g := bigClassGame(120, 8) // 16^8 ≈ 4·10^9 states: beyond the exact lattice
	res, err := Values(g, Options{Samples: 240, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != EngineApproxCollapsed {
		t.Fatalf("method %q, want %q", res.Method, EngineApproxCollapsed)
	}
	if res.CIHalf == nil || res.Samples == 0 {
		t.Errorf("missing sampling metadata: %+v", res)
	}
	// Interchangeable players must be pooled: identical shares in-class.
	for p := 8; p < 120; p++ {
		if res.Phi[p] != res.Phi[p%8] {
			t.Errorf("players %d and %d share a class but differ", p%8, p)
		}
	}
}

func TestValuesPicksPlainApproxWithoutStructure(t *testing.T) {
	g, _ := sumWeightGame(40, 2)
	res, err := Values(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != EngineApprox {
		t.Fatalf("method %q, want %q", res.Method, EngineApprox)
	}
	if res.Samples < DefaultApproxSamples {
		t.Errorf("default budget not applied: %d samples", res.Samples)
	}
}

func TestValuesMethodExactErrorsWhenInfeasible(t *testing.T) {
	g, _ := sumWeightGame(40, 2)
	if _, err := Values(g, Options{Method: MethodExact}); err == nil ||
		!strings.Contains(err.Error(), "no exact engine") {
		t.Errorf("expected infeasibility error, got %v", err)
	}
}

func TestValuesMethodApproxForcesSamplingOnSmallGames(t *testing.T) {
	tab := randomMonotoneTable(t, 6, 9)
	res, err := Values(AsMemberGameTable(tab), Options{Method: MethodApprox, Samples: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != EngineApprox {
		t.Fatalf("method %q, want %q", res.Method, EngineApprox)
	}
	exact := BatchedValues(tab).Shapley
	for i := range exact {
		if diff := math.Abs(res.Phi[i] - exact[i]); diff > 5*res.CIHalf[i]+1e-9 {
			t.Errorf("player %d: %g vs exact %g", i, res.Phi[i], exact[i])
		}
	}
}

func TestValuesUnknownMethod(t *testing.T) {
	g, _ := sumWeightGame(4, 1)
	if _, err := Values(g, Options{Method: "banzhaf"}); err == nil ||
		!strings.Contains(err.Error(), "unknown method") {
		t.Errorf("expected unknown-method error, got %v", err)
	}
}

func TestValuesExplicitStructureOverridesInterface(t *testing.T) {
	// Supplying Options.Structure lets callers collapse games that do not
	// implement ClassStructured themselves.
	st := bigClassGame(60, 3).st
	res, err := Values(st.MemberGame(), Options{Structure: st})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != EngineExactCollapsed {
		t.Fatalf("method %q, want %q", res.Method, EngineExactCollapsed)
	}
}

func TestValuesEmptyGame(t *testing.T) {
	g := MemberFunc{Players: 0, V: func([]int) float64 { return 0 }}
	res, err := Values(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phi) != 0 || !res.Converged {
		t.Errorf("unexpected empty result %+v", res)
	}
}
