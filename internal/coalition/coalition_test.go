package coalition

import (
	"math"
	"testing"

	"fedshare/internal/combin"
	"fedshare/internal/stats"
)

// gloveGame: players 0,1 hold left gloves, player 2 a right glove;
// V(S) = number of matched pairs.
func gloveGame() Game {
	return Func{Players: 3, V: func(s combin.Set) float64 {
		left := 0
		if s.Contains(0) {
			left++
		}
		if s.Contains(1) {
			left++
		}
		right := 0
		if s.Contains(2) {
			right++
		}
		return math.Min(float64(left), float64(right))
	}}
}

// additiveGame: V(S) = Σ_{i∈S} w_i.
func additiveGame(w []float64) Game {
	return Func{Players: len(w), V: func(s combin.Set) float64 {
		out := 0.0
		for _, i := range s.Members() {
			out += w[i]
		}
		return out
	}}
}

// majorityGame: weighted voting [q; w...], V = 1 if Σw_i >= q.
func majorityGame(q float64, w []float64) Game {
	return Func{Players: len(w), V: func(s combin.Set) float64 {
		sum := 0.0
		for _, i := range s.Members() {
			sum += w[i]
		}
		if sum >= q {
			return 1
		}
		return 0
	}}
}

// bankruptcyGame is the Aumann–Maschler Talmud game:
// V(S) = max(0, estate − Σ_{j∉S} claims_j).
func bankruptcyGame(estate float64, claims []float64) Game {
	return Func{Players: len(claims), V: func(s combin.Set) float64 {
		out := estate
		for j := range claims {
			if !s.Contains(j) {
				out -= claims[j]
			}
		}
		return math.Max(0, out)
	}}
}

func almostEqualVec(t *testing.T, got, want []float64, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: got %v, want %v", label, got, want)
		}
	}
}

func TestShapleyGloveGame(t *testing.T) {
	phi := Shapley(gloveGame())
	almostEqualVec(t, phi, []float64{1.0 / 6, 1.0 / 6, 2.0 / 3}, 1e-12, "glove Shapley")
}

func TestShapleyAdditiveGame(t *testing.T) {
	w := []float64{3, 1, 4, 1, 5}
	phi := Shapley(additiveGame(w))
	almostEqualVec(t, phi, w, 1e-9, "additive Shapley")
}

func TestShapleyMajorityGame(t *testing.T) {
	// [3; 2,1,1]: player 0 pivotal in 4 of 6 orderings.
	phi := Shapley(majorityGame(3, []float64{2, 1, 1}))
	almostEqualVec(t, phi, []float64{2.0 / 3, 1.0 / 6, 1.0 / 6}, 1e-12, "majority Shapley")
}

func TestShapleyMatchesPermutationOracle(t *testing.T) {
	rng := stats.NewRand(21)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(5)
		vals := make([]float64, 1<<uint(n))
		for i := 1; i < len(vals); i++ {
			vals[i] = rng.Float64() * 10
		}
		g, err := NewTable(n, vals)
		if err != nil {
			t.Fatal(err)
		}
		almostEqualVec(t, Shapley(g), ShapleyByPermutation(g), 1e-9, "subset vs permutation")
	}
}

func TestShapleyEfficiencyProperty(t *testing.T) {
	rng := stats.NewRand(31)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		vals := make([]float64, 1<<uint(n))
		for i := 1; i < len(vals); i++ {
			vals[i] = rng.Float64()*20 - 5
		}
		g, _ := NewTable(n, vals)
		phi := Shapley(g)
		if err := CheckEfficiency(g, phi, 1e-7); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestShapleySymmetryProperty(t *testing.T) {
	// Symmetric game: V depends only on |S| -> all Shapley values equal.
	g := Func{Players: 5, V: func(s combin.Set) float64 {
		c := float64(s.Card())
		return c * c
	}}
	phi := Shapley(g)
	for i := 1; i < len(phi); i++ {
		if math.Abs(phi[i]-phi[0]) > 1e-9 {
			t.Fatalf("symmetric game has asymmetric Shapley: %v", phi)
		}
	}
}

func TestShapleyDummyProperty(t *testing.T) {
	// Player 2 contributes exactly 7 to every coalition -> φ_2 = 7.
	g := Func{Players: 3, V: func(s combin.Set) float64 {
		base := 0.0
		if s.Contains(0) && s.Contains(1) {
			base = 10
		}
		if s.Contains(2) {
			base += 7
		}
		return base
	}}
	phi := Shapley(g)
	if math.Abs(phi[2]-7) > 1e-9 {
		t.Errorf("dummy player got %g, want 7", phi[2])
	}
}

func TestMonteCarloShapleyConverges(t *testing.T) {
	g := gloveGame()
	res := MonteCarloShapley(g, 20000, stats.NewRand(8))
	almostEqualVec(t, res.Phi, []float64{1.0 / 6, 1.0 / 6, 2.0 / 3}, 0.02, "MC Shapley")
	for i, se := range res.StdErr {
		if se <= 0 || se > 0.02 {
			t.Errorf("stderr[%d] = %g out of expected band", i, se)
		}
	}
}

func TestBanzhafGlove(t *testing.T) {
	// Marginals of player 2 (right glove): adds min(L,1) when joining.
	// β_2 = (0 + 1 + 1 + 1)/4 = 3/4; β_0 = β_1 = (V gains)/4 = 1/4.
	beta := Banzhaf(gloveGame())
	almostEqualVec(t, beta, []float64{1.0 / 4, 1.0 / 4, 3.0 / 4}, 1e-12, "glove Banzhaf")
}

func TestCacheCounts(t *testing.T) {
	calls := 0
	g := Func{Players: 4, V: func(s combin.Set) float64 {
		calls++
		return float64(s.Card())
	}}
	c := NewCache(g)
	Shapley(c)
	if calls != 16 {
		t.Errorf("cache allowed %d evaluations, want 16", calls)
	}
	if c.Evaluations() != 16 {
		t.Errorf("Evaluations() = %d", c.Evaluations())
	}
	Shapley(c)
	if calls != 16 {
		t.Errorf("second run re-evaluated: %d calls", calls)
	}
}

func TestProperties(t *testing.T) {
	if !IsSuperadditive(gloveGame()) {
		t.Error("glove game is superadditive")
	}
	if !IsConvex(Func{Players: 4, V: func(s combin.Set) float64 {
		c := float64(s.Card())
		return c * c
	}}) {
		t.Error("|S|^2 is convex")
	}
	if IsConvex(Func{Players: 3, V: func(s combin.Set) float64 {
		return math.Sqrt(float64(s.Card()))
	}}) {
		t.Error("sqrt(|S|) is strictly concave, not convex")
	}
	if !IsMonotone(gloveGame()) {
		t.Error("glove game is monotone")
	}
	if !IsEssential(gloveGame()) {
		t.Error("glove game is essential")
	}
	if IsEssential(additiveGame([]float64{1, 2})) {
		t.Error("additive games are inessential")
	}
	// A non-superadditive game: strictly concave in |S| with positive
	// singletons.
	g := Func{Players: 3, V: func(s combin.Set) float64 {
		return math.Sqrt(float64(s.Card()))
	}}
	if IsSuperadditive(g) {
		t.Error("sqrt(|S|) should not be superadditive")
	}
}

func TestPaperConvexityClaim(t *testing.T) {
	// Sec 3.2.1: with u strictly concave, no threshold, no multiplexing
	// (d<1, l=0, t=1), the game is not superadditive. With d>1 "the core
	// always exists". Model one experiment over additive locations.
	locs := []float64{100, 400, 800}
	mk := func(d, l float64) Game {
		return Func{Players: 3, V: func(s combin.Set) float64 {
			x := 0.0
			for _, i := range s.Members() {
				x += locs[i]
			}
			if x < l || x == 0 {
				return 0
			}
			return math.Pow(x, d)
		}}
	}
	if IsSuperadditive(mk(0.8, 0)) {
		t.Error("d<1, l=0 game should not be superadditive")
	}
	g := mk(1.2, 0)
	if !IsConvex(g) {
		t.Error("d>1 game should be convex")
	}
	ok, err := CoreNonempty(g)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("convex game must have nonempty core")
	}
	// Large threshold also creates a nonempty core (grand coalition alone
	// feasible).
	gBig := mk(1, 1300)
	ok, err = CoreNonempty(gBig)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("all-must-cooperate game must have nonempty core")
	}
}

func TestInCoreAndLeastCoreGlove(t *testing.T) {
	g := gloveGame()
	if !InCore(g, []float64{0, 0, 1}, 1e-9) {
		t.Error("(0,0,1) is the glove-game core point")
	}
	if InCore(g, []float64{0.5, 0, 0.5}, 1e-9) {
		t.Error("(0.5,0,0.5) violates {1,2}'s guarantee")
	}
	if InCore(g, []float64{0, 0, 0.9}, 1e-9) {
		t.Error("inefficient allocation cannot be in the core")
	}
	res, err := LeastCore(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon > 1e-7 {
		t.Errorf("glove-game core nonempty but epsilon = %g", res.Epsilon)
	}
	if !InCore(g, res.X, 1e-6) {
		t.Errorf("least-core point %v should be in the core", res.X)
	}
}

func TestLeastCoreEmptyCore(t *testing.T) {
	// 3-player simple majority game: any 2 players win; core empty.
	g := majorityGame(2, []float64{1, 1, 1})
	res, err := LeastCore(g)
	if err != nil {
		t.Fatal(err)
	}
	// Max excess is minimized at x = (1/3,1/3,1/3) giving e = 1 - 2/3 = 1/3.
	if math.Abs(res.Epsilon-1.0/3.0) > 1e-6 {
		t.Errorf("epsilon = %g, want 1/3", res.Epsilon)
	}
	ok, err := CoreNonempty(g)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("majority game core must be empty")
	}
}

func TestNucleolusTwoPlayerStandardSolution(t *testing.T) {
	// Standard solution: x_i = V(i) + (V(N) − V(1) − V(2))/2.
	vals := []float64{0, 10, 20, 50}
	g, _ := NewTable(2, vals)
	nuc, err := Nucleolus(g)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualVec(t, nuc, []float64{20, 30}, 1e-6, "two-player nucleolus")
}

func TestNucleolusGlove(t *testing.T) {
	nuc, err := Nucleolus(gloveGame())
	if err != nil {
		t.Fatal(err)
	}
	almostEqualVec(t, nuc, []float64{0, 0, 1}, 1e-6, "glove nucleolus")
}

func TestNucleolusTalmud(t *testing.T) {
	// Aumann–Maschler: nucleolus of the bankruptcy game equals the Talmud
	// rule. Estate 300, claims (100,200,300) -> (50,100,150).
	g := bankruptcyGame(300, []float64{100, 200, 300})
	nuc, err := Nucleolus(g)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualVec(t, nuc, []float64{50, 100, 150}, 1e-5, "Talmud nucleolus")

	// Estate 100: equal split of a small estate -> (33.3, 33.3, 33.3).
	g2 := bankruptcyGame(100, []float64{100, 200, 300})
	nuc2, err := Nucleolus(g2)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualVec(t, nuc2, []float64{100.0 / 3, 100.0 / 3, 100.0 / 3}, 1e-5, "Talmud small estate")
}

func TestNucleolusSymmetric(t *testing.T) {
	g := Func{Players: 4, V: func(s combin.Set) float64 {
		return float64(s.Card() * s.Card())
	}}
	nuc, err := Nucleolus(g)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualVec(t, nuc, []float64{4, 4, 4, 4}, 1e-6, "symmetric nucleolus")
}

func TestNucleolusInCoreProperty(t *testing.T) {
	// For random convex games (nonempty core), the nucleolus must lie in
	// the core.
	rng := stats.NewRand(77)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(3)
		// Convex game: V(S) = (Σ w_i)^2 for random positive weights.
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() + 0.1
		}
		g := Func{Players: n, V: func(s combin.Set) float64 {
			sum := 0.0
			for _, i := range s.Members() {
				sum += w[i]
			}
			return sum * sum
		}}
		if !IsConvex(g) {
			t.Fatal("construction should be convex")
		}
		nuc, err := Nucleolus(NewCache(g))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !InCore(g, nuc, 1e-5) {
			t.Fatalf("trial %d: nucleolus %v not in core", trial, nuc)
		}
	}
}

func TestEqualSplit(t *testing.T) {
	g := gloveGame()
	almostEqualVec(t, EqualSplit(g), []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 1e-12, "equal split")
}

func TestNormalize(t *testing.T) {
	g := gloveGame()
	phi := Shapley(g)
	norm := Normalize(g, phi)
	sum := 0.0
	for _, v := range norm {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("normalized shares sum to %g", sum)
	}
	// Zero-value game normalizes to zeros.
	zg := Func{Players: 2, V: func(combin.Set) float64 { return 0 }}
	almostEqualVec(t, Normalize(zg, []float64{0, 0}), []float64{0, 0}, 0, "zero game")
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(2, []float64{0, 1, 2}); err == nil {
		t.Error("wrong-size table must fail")
	}
	if _, err := NewTable(2, []float64{1, 0, 0, 0}); err == nil {
		t.Error("V(empty) != 0 must fail")
	}
	if _, err := NewTable(2, []float64{0, 1, 2, 4}); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}

func BenchmarkShapley10(b *testing.B) {
	g := NewCache(Func{Players: 10, V: func(s combin.Set) float64 {
		c := float64(s.Card())
		return c * c
	}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shapley(g)
	}
}

func BenchmarkMonteCarloShapley20(b *testing.B) {
	g := Func{Players: 20, V: func(s combin.Set) float64 {
		c := float64(s.Card())
		return c * c
	}}
	rng := stats.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MonteCarloShapley(g, 100, rng)
	}
}

func BenchmarkNucleolus5(b *testing.B) {
	g := bankruptcyGame(300, []float64{50, 100, 150, 200, 250})
	for i := 0; i < b.N; i++ {
		if _, err := Nucleolus(NewCache(g)); err != nil {
			b.Fatal(err)
		}
	}
}
