package coalition

import (
	"math"
	"strings"
	"testing"

	"fedshare/internal/stats"
)

// randomTable builds a random monotone game on n players as a dense Table:
// V(S∪{i}) = V(S) + positive random increment, mimicking the federation
// games' monotone structure while exercising arbitrary heterogeneity.
func randomMonotoneTable(t *testing.T, n int, seed uint64) *Table {
	t.Helper()
	rng := stats.NewRand(seed)
	values := make([]float64, 1<<uint(n))
	for m := 1; m < len(values); m++ {
		// Remove the lowest set bit to find a predecessor.
		prev := m & (m - 1)
		values[m] = values[prev] + rng.Float64()
	}
	tab, err := NewTable(n, values)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// sumWeightGame is a cheap synthetic MemberGame on any n:
// V(S) = (Σ_{i∈S} w_i)^0.7 — concave, monotone, heterogeneous.
func sumWeightGame(n int, seed uint64) (MemberFunc, []float64) {
	rng := stats.NewRand(seed)
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 + rng.Float64()
	}
	g := MemberFunc{Players: n, V: func(members []int) float64 {
		total := 0.0
		for _, p := range members {
			total += w[p]
		}
		return math.Pow(total, 0.7)
	}}
	return g, w
}

func TestApproxShapleyMatchesKernelSmallN(t *testing.T) {
	for _, n := range []int{3, 5, 8, 12} {
		tab := randomMonotoneTable(t, n, uint64(100+n))
		exact := BatchedValues(tab).Shapley
		res, err := ApproxShapley(AsMemberGame(tab), ApproxOptions{Samples: 20000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for i := range exact {
			// 5× the 95% half-width is ~10 standard errors: the seeded
			// run is deterministic, so this cannot flake, and a real
			// estimator bug blows well past it.
			tol := 5*res.CIHalf[i] + 1e-9
			if diff := math.Abs(res.Phi[i] - exact[i]); diff > tol {
				t.Errorf("n=%d player %d: approx %.6f vs exact %.6f (diff %.2g > tol %.2g)",
					n, i, res.Phi[i], exact[i], diff, tol)
			}
		}
	}
}

func TestApproxShapleyEfficiencyLargeN(t *testing.T) {
	for _, n := range []int{100, 200} {
		g, w := sumWeightGame(n, uint64(n))
		total := 0.0
		for _, x := range w {
			total += x
		}
		vn := math.Pow(total, 0.7)
		res, err := ApproxShapley(g, ApproxOptions{Samples: 2 * n, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range res.Phi {
			sum += p
		}
		// Every sampled ordering's marginals telescope to V(N), so the
		// efficiency axiom holds to float rounding even at tiny budgets.
		if math.Abs(sum-vn) > 1e-9*vn {
			t.Errorf("n=%d: Σφ = %.12f, V(N) = %.12f", n, sum, vn)
		}
	}
}

func TestApproxShapleyDeterministicAcrossWorkers(t *testing.T) {
	g, _ := sumWeightGame(40, 3)
	var base *ApproxResult
	for _, workers := range []int{1, 3, 8, 64} {
		res, err := ApproxShapley(g, ApproxOptions{Samples: 400, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Samples != base.Samples {
			t.Fatalf("workers=%d: %d samples, want %d", workers, res.Samples, base.Samples)
		}
		for i := range base.Phi {
			if res.Phi[i] != base.Phi[i] || res.CIHalf[i] != base.CIHalf[i] {
				t.Fatalf("workers=%d: player %d diverged: phi %v vs %v, ci %v vs %v",
					workers, i, res.Phi[i], base.Phi[i], res.CIHalf[i], base.CIHalf[i])
			}
		}
	}
}

func TestApproxShapleyAdaptiveCITarget(t *testing.T) {
	g, _ := sumWeightGame(20, 9)
	target := 0.002
	res, err := ApproxShapley(g, ApproxOptions{CITarget: target, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge to CI target %g in %d samples", target, res.Samples)
	}
	if res.Rounds < 2 {
		t.Errorf("expected multiple adaptive rounds, got %d", res.Rounds)
	}
	for i, ci := range res.CIHalf {
		if ci > target {
			t.Errorf("player %d: CI half-width %g above target %g", i, ci, target)
		}
	}
}

func TestApproxShapleyAdaptiveRespectsBudgetCap(t *testing.T) {
	g, _ := sumWeightGame(20, 9)
	// An unreachable CI target must stop at the budget, not spin.
	res, err := ApproxShapley(g, ApproxOptions{CITarget: 1e-12, Samples: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("reported convergence on an unreachable CI target")
	}
	// The 200-perm cap is exactly 5 antithetic blocks at n=20: the sampler
	// must consume it fully and stop there.
	if res.Samples != 200 {
		t.Errorf("expected the full 200-permutation budget, got %d samples", res.Samples)
	}
}

func TestApproxShapleyGroupPoolingMatchesUngrouped(t *testing.T) {
	// All players identical: the class estimate must equal each player's
	// share (V(N)/n by symmetry) and pooling must tighten the CI.
	n := 30
	g := MemberFunc{Players: n, V: func(members []int) float64 {
		return math.Sqrt(float64(len(members)))
	}}
	groups := [][]int{make([]int, n)}
	for i := 0; i < n; i++ {
		groups[0][i] = i
	}
	pooled, err := ApproxShapley(g, ApproxOptions{Samples: 2 * n, Seed: 21, Groups: groups})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ApproxShapley(g, ApproxOptions{Samples: 2 * n, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(float64(n)) / float64(n)
	for i := 0; i < n; i++ {
		if math.Abs(pooled.Phi[i]-want) > 1e-9 {
			t.Errorf("pooled phi[%d] = %.12f, want %.12f", i, pooled.Phi[i], want)
		}
		if pooled.CIHalf[i] > plain.CIHalf[i]+1e-12 {
			t.Errorf("pooling widened player %d's CI: %g vs %g", i, pooled.CIHalf[i], plain.CIHalf[i])
		}
	}
}

func TestApproxShapleyAntitheticTightensCI(t *testing.T) {
	// For a monotone concave game the forward and reversed orderings'
	// marginals anticorrelate; with this fixed seed the paired estimator
	// must beat independent sampling at an equal permutation budget.
	g, _ := sumWeightGame(16, 13)
	paired, err := ApproxShapley(g, ApproxOptions{Samples: 1024, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	indep, err := ApproxShapley(g, ApproxOptions{Samples: 1024, Seed: 3, NoAntithetic: true})
	if err != nil {
		t.Fatal(err)
	}
	var pairedMax, indepMax float64
	for i := range paired.CIHalf {
		pairedMax = math.Max(pairedMax, paired.CIHalf[i])
		indepMax = math.Max(indepMax, indep.CIHalf[i])
	}
	if pairedMax >= indepMax {
		t.Errorf("antithetic max CI %g not below independent %g", pairedMax, indepMax)
	}
}

func TestApproxShapleyErrors(t *testing.T) {
	g, _ := sumWeightGame(4, 1)
	cases := []struct {
		name string
		opt  ApproxOptions
		want string
	}{
		{"no budget", ApproxOptions{}, "sample budget or a CI target"},
		{"negative samples", ApproxOptions{Samples: -1}, "negative sample budget"},
		{"negative target", ApproxOptions{CITarget: -0.5}, "negative CI target"},
		{"empty group", ApproxOptions{Samples: 10, Groups: [][]int{{0, 1, 2, 3}, {}}}, "empty"},
		{"duplicate player", ApproxOptions{Samples: 10, Groups: [][]int{{0, 1}, {1, 2, 3}}}, "appears in groups"},
		{"missing player", ApproxOptions{Samples: 10, Groups: [][]int{{0, 1, 2}}}, "missing"},
		{"out of range", ApproxOptions{Samples: 10, Groups: [][]int{{0, 1, 2, 9}}}, "out-of-range"},
	}
	for _, tc := range cases {
		if _, err := ApproxShapley(g, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestApproxShapleyEmptyGame(t *testing.T) {
	res, err := ApproxShapley(MemberFunc{Players: 0, V: func([]int) float64 { return 0 }},
		ApproxOptions{Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phi) != 0 || !res.Converged {
		t.Errorf("unexpected empty-game result %+v", res)
	}
}

// TestApproxShapleyConcurrentValueCalls drives the sampler across workers
// against a shared mutable-state game guarded only by the required
// concurrency-safety contract; run under -race this is the sampler's race
// test.
func TestApproxShapleyConcurrentValueCalls(t *testing.T) {
	tab := randomMonotoneTable(t, 10, 77)
	safe := NewSafeCache(tab) // concurrent memoization layer under the sampler
	res, err := ApproxShapley(AsMemberGame(safe), ApproxOptions{Samples: 2000, Seed: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	exact := BatchedValues(tab).Shapley
	for i := range exact {
		if diff := math.Abs(res.Phi[i] - exact[i]); diff > 5*res.CIHalf[i]+1e-9 {
			t.Errorf("player %d: %g vs exact %g", i, res.Phi[i], exact[i])
		}
	}
}
