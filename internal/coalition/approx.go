package coalition

import (
	"fmt"
	"runtime"
	"sync"

	"fedshare/internal/stats"
)

// The stratified-permutation Shapley sampler.
//
// φ_i is the expected marginal contribution of player i over a uniformly
// random ordering (eq. (4) of the paper). One sampled ordering yields a
// marginal for *every* player from n characteristic-function evaluations
// (each prefix value is reused as the next marginal's base), so a
// permutation is the natural sample unit. Three variance reductions are
// layered on top of the plain estimator:
//
//   - antithetic pairing: each sampled ordering π is evaluated together
//     with its reversal; for the monotone games the federation model
//     produces, early and late marginals are negatively correlated, so the
//     pair average has lower variance than two independent orderings. The
//     pair average is treated as ONE observation, keeping the confidence
//     intervals honest about the correlation.
//   - first-element stratification: sampling proceeds in blocks of n
//     antithetic pairs whose leading player cycles deterministically
//     through the player set, so the position-0 stratum is sampled by
//     exact proportional allocation instead of multinomially.
//   - group pooling: interchangeable players (see ClassStructure) share
//     one estimator; their per-ordering marginals are averaged into a
//     single observation, dividing the sampling noise of a class of m
//     players by up to m without biasing anyone's estimate.
//
// Determinism: the sampler is seed-reproducible REGARDLESS of worker
// count. Every pair index u draws from its own RNG substream
// (SplitMix-derived from seed and u), pairs are partitioned over a fixed
// number of strata by u mod approxStrata — not by worker — and the
// per-stratum summaries are merged in stratum order after the workers
// join. The scheduling of strata onto workers therefore cannot affect a
// single bit of the output.
const approxStrata = 64

// approxDefaultMaxSamples caps adaptive sampling when no explicit budget
// is given.
const approxDefaultMaxSamples = 1 << 20

// ApproxOptions configures ApproxShapley.
type ApproxOptions struct {
	// Samples is the permutation budget. The sampler rounds it up to a
	// whole number of first-element-balanced antithetic blocks (2n
	// permutations per block; n with NoAntithetic). When CITarget is also
	// set, Samples acts as the adaptive cap; 0 means
	// approxDefaultMaxSamples.
	Samples int
	// CITarget, when positive, switches on adaptive mode: sampling
	// proceeds in geometrically growing rounds until every player's 95%
	// confidence half-width is at or below this absolute target, or the
	// sample cap is hit.
	CITarget float64
	// Workers bounds the parallelism; 0 means GOMAXPROCS. The result is
	// identical for every setting.
	Workers int
	// Seed selects the deterministic sample stream.
	Seed uint64
	// Groups, when non-nil, partitions the players into classes of
	// interchangeable players that pool their observations (symmetric
	// players provably have equal Shapley values). Every player must
	// appear in exactly one group. Nil means no pooling.
	Groups [][]int
	// NoAntithetic disables antithetic pairing (each sample unit is a
	// single ordering). Used by estimator-quality tests and benchmarks.
	NoAntithetic bool
	// NoIncremental disables the incremental prefix-evaluation path for
	// this run (see SetIncrementalEnabled for the process-wide switch):
	// every prefix is evaluated through ValueMembers. The result is
	// bit-identical either way.
	NoIncremental bool
}

// ApproxResult is a sampled Shapley estimate with per-player uncertainty.
type ApproxResult struct {
	// Phi is the estimated Shapley value of each player.
	Phi []float64
	// CIHalf is the 95% confidence half-width of each player's estimate
	// (normal approximation over sample units).
	CIHalf []float64
	// StdErr is the standard error of each estimate.
	StdErr []float64
	// Samples is the number of permutations actually evaluated.
	Samples int
	// Rounds is the number of adaptive rounds executed (1 in fixed-budget
	// mode).
	Rounds int
	// Converged reports whether the CI target was met (true whenever no
	// target was set).
	Converged bool
}

// ApproxShapley estimates the Shapley value of a game of any size by
// parallel stratified-permutation sampling with antithetic pairing. See
// the package comment above approxStrata for the estimator design. The
// estimate is unbiased; Σφ̂_i equals V(N) exactly (up to float rounding)
// because every sampled ordering's marginals telescope to V(N).
func ApproxShapley(g MemberGame, opt ApproxOptions) (*ApproxResult, error) {
	n := g.N()
	if n < 0 {
		return nil, fmt.Errorf("coalition: negative player count %d", n)
	}
	if opt.Samples < 0 {
		return nil, fmt.Errorf("coalition: negative sample budget %d", opt.Samples)
	}
	if opt.CITarget < 0 {
		return nil, fmt.Errorf("coalition: negative CI target %g", opt.CITarget)
	}
	if opt.Samples == 0 && opt.CITarget == 0 {
		return nil, fmt.Errorf("coalition: ApproxShapley needs a sample budget or a CI target")
	}
	if n == 0 {
		return &ApproxResult{Rounds: 0, Converged: true}, nil
	}
	groups, groupOf, err := normalizeGroups(n, opt.Groups)
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > approxStrata {
		workers = approxStrata
	}
	permsPerUnit := 2
	if opt.NoAntithetic {
		permsPerUnit = 1
	}
	// Budgets in units (antithetic pairs), rounded up to whole blocks of n
	// units so the first-element strata stay exactly balanced.
	blockUnits := n
	maxUnits := opt.Samples / permsPerUnit
	if opt.Samples%permsPerUnit != 0 {
		maxUnits++
	}
	if opt.CITarget > 0 && opt.Samples == 0 {
		maxUnits = approxDefaultMaxSamples / permsPerUnit
	}
	maxUnits = roundUpBlocks(maxUnits, blockUnits)

	eng := &approxEngine{
		g: g, n: n, seed: opt.Seed,
		groups: groups, groupOf: groupOf,
		antithetic:    !opt.NoAntithetic,
		noIncremental: opt.NoIncremental,
		sums:          make([][]stats.Summary, approxStrata),
	}
	for s := range eng.sums {
		eng.sums[s] = make([]stats.Summary, len(groups))
	}

	res := &ApproxResult{}
	done := 0 // units completed
	for {
		res.Rounds++
		target := maxUnits
		if opt.CITarget > 0 {
			// Adaptive rounds double the cumulative sample size: round 1
			// draws one block, round k doubles the total so the CI check
			// (and its two clock-free aggregation sweeps) runs O(log)
			// times, not per block.
			target = done * 2
			if target < blockUnits {
				target = blockUnits
			}
			target = roundUpBlocks(target, blockUnits)
			if target > maxUnits {
				target = maxUnits
			}
		}
		eng.run(done, target, workers)
		done = target
		merged := eng.merged()
		maxCI := updateResult(res, merged, groups, groupOf, n)
		res.Samples = done * permsPerUnit
		shapleyCIHalfWidth.Set(maxCI)
		if opt.CITarget > 0 && maxCI <= opt.CITarget {
			res.Converged = true
			break
		}
		if done >= maxUnits {
			res.Converged = opt.CITarget == 0
			break
		}
	}
	return res, nil
}

// roundUpBlocks rounds units up to a whole number of blocks (and at least
// one block).
func roundUpBlocks(units, block int) int {
	if units < block {
		return block
	}
	if rem := units % block; rem != 0 {
		units += block - rem
	}
	return units
}

// normalizeGroups validates an optional player partition, defaulting to
// singleton groups. It returns the groups and the player→group index map.
func normalizeGroups(n int, groups [][]int) ([][]int, []int, error) {
	if groups == nil {
		groups = make([][]int, n)
		for i := 0; i < n; i++ {
			groups[i] = []int{i}
		}
	}
	groupOf := make([]int, n)
	for i := range groupOf {
		groupOf[i] = -1
	}
	for gi, members := range groups {
		if len(members) == 0 {
			return nil, nil, fmt.Errorf("coalition: group %d is empty", gi)
		}
		for _, p := range members {
			if p < 0 || p >= n {
				return nil, nil, fmt.Errorf("coalition: group %d contains out-of-range player %d", gi, p)
			}
			if groupOf[p] != -1 {
				return nil, nil, fmt.Errorf("coalition: player %d appears in groups %d and %d", p, groupOf[p], gi)
			}
			groupOf[p] = gi
		}
	}
	for p, gi := range groupOf {
		if gi == -1 {
			return nil, nil, fmt.Errorf("coalition: player %d missing from the group partition", p)
		}
	}
	return groups, groupOf, nil
}

// approxEngine carries the sampler state shared across rounds.
type approxEngine struct {
	g             MemberGame
	n             int
	seed          uint64
	groups        [][]int
	groupOf       []int
	antithetic    bool
	noIncremental bool
	// sums[s][g] accumulates stratum s's observations for group g. Strata
	// are keyed by unit index (u mod approxStrata), so their contents are
	// independent of how units are scheduled onto workers.
	sums [][]stats.Summary
}

// run evaluates units [from, to) on the worker pool. Each stratum is one
// job: it owns the units congruent to its index mod approxStrata and adds
// them to its private summaries in increasing unit order.
func (e *approxEngine) run(from, to, workers int) {
	if to <= from {
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := e.newScratch()
			for s := range jobs {
				u := from + (s-from%approxStrata+approxStrata)%approxStrata
				for ; u < to; u += approxStrata {
					e.unit(u, scratch)
				}
			}
		}()
	}
	for s := 0; s < approxStrata; s++ {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	shapleySamplesTotal.Add(int64(to-from) * int64(e.permsPerUnit()))
}

func (e *approxEngine) permsPerUnit() int {
	if e.antithetic {
		return 2
	}
	return 1
}

// approxScratch is the per-worker reusable buffer set, including the
// worker's prefix walker (incremental valuers are stateful, one per
// worker) and its preallocated visit closures.
type approxScratch struct {
	perm []int
	marg []float64 // pair-averaged marginal per player
	obs  []float64 // pooled observation per group
	w    *prefixWalker
	set  func(player int, delta float64) // forward pass: marg[p] = δ
	add  func(player int, delta float64) // reverse pass: marg[p] += δ
}

func (e *approxEngine) newScratch() *approxScratch {
	sc := &approxScratch{
		perm: make([]int, e.n),
		marg: make([]float64, e.n),
		obs:  make([]float64, len(e.groups)),
		w:    newPrefixWalker(e.g, e.noIncremental),
	}
	sc.set = func(p int, d float64) { sc.marg[p] = d }
	sc.add = func(p int, d float64) { sc.marg[p] += d }
	return sc
}

// unit evaluates one sample unit: a permutation with deterministically
// forced leading player (u mod n), its antithetic reversal, and the pooled
// per-group observation fed into the unit's stratum.
func (e *approxEngine) unit(u int, sc *approxScratch) {
	n := e.n
	rng := stats.NewRand(e.seed + 0x9E3779B97F4A7C15*uint64(u+1))
	perm := sc.perm
	for i := range perm {
		perm[i] = i
	}
	// Force the block-cycled first element, then arrange the rest
	// uniformly: proportional allocation over the position-0 stratum.
	first := u % n
	perm[0], perm[first] = perm[first], perm[0]
	rest := perm[1:]
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })

	sc.w.walk(perm, false, sc.set)
	if e.antithetic {
		sc.w.walk(perm, true, sc.add)
		for i := range sc.marg {
			sc.marg[i] /= 2
		}
	}
	for gi, members := range e.groups {
		total := 0.0
		for _, p := range members {
			total += sc.marg[p]
		}
		sc.obs[gi] = total / float64(len(members))
	}
	stratum := e.sums[u%approxStrata]
	for gi := range stratum {
		stratum[gi].Add(sc.obs[gi])
	}
}

// merged reduces the per-stratum summaries in stratum order.
func (e *approxEngine) merged() []stats.Summary {
	out := make([]stats.Summary, len(e.groups))
	for s := range e.sums {
		for gi := range out {
			out[gi].Merge(e.sums[s][gi])
		}
	}
	return out
}

// updateResult expands per-group summaries to per-player estimates and
// returns the largest CI half-width.
func updateResult(res *ApproxResult, merged []stats.Summary, groups [][]int, groupOf []int, n int) float64 {
	if res.Phi == nil {
		res.Phi = make([]float64, n)
		res.CIHalf = make([]float64, n)
		res.StdErr = make([]float64, n)
	}
	maxCI := 0.0
	for gi := range merged {
		m := &merged[gi]
		ci := m.CI95()
		se := ci / 1.96
		if ci > maxCI {
			maxCI = ci
		}
		for _, p := range groups[gi] {
			res.Phi[p] = m.Mean()
			res.CIHalf[p] = ci
			res.StdErr[p] = se
		}
	}
	return maxCI
}
