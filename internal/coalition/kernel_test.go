package coalition

import (
	"math"
	"testing"

	"fedshare/internal/combin"
	"fedshare/internal/stats"
)

// randomTable builds a random n-player Table game (V(∅) = 0, values in
// [-50, 50) so games are generally non-monotone).
func randomTable(t *testing.T, n int, rng *stats.Rand) *Table {
	t.Helper()
	vals := make([]float64, 1<<uint(n))
	for i := 1; i < len(vals); i++ {
		vals[i] = rng.Float64()*100 - 50
	}
	g, err := NewTable(n, vals)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBatchedValuesMatchesOracles(t *testing.T) {
	rng := stats.NewRand(1729)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		g := randomTable(t, n, rng)
		res := BatchedValues(g)
		almostEqualVec(t, res.Shapley, ShapleyLegacy(g), 1e-9, "kernel vs legacy Shapley")
		almostEqualVec(t, res.Shapley, ShapleyByPermutation(g), 1e-9, "kernel vs permutation oracle")
		almostEqualVec(t, res.Banzhaf, BanzhafLegacy(g), 1e-9, "kernel vs legacy Banzhaf")
	}
}

func TestBatchedValuesDispatch(t *testing.T) {
	// The public Shapley/Banzhaf entry points must route Table games
	// through the kernel and still agree with the oracles.
	rng := stats.NewRand(99)
	g := randomTable(t, 6, rng)
	almostEqualVec(t, Shapley(g), ShapleyByPermutation(g), 1e-9, "dispatched Shapley")
	almostEqualVec(t, Banzhaf(g), BanzhafLegacy(g), 1e-9, "dispatched Banzhaf")
}

func TestBatchedValuesEdgeCases(t *testing.T) {
	// n = 0: empty (but allocated) result vectors.
	empty, err := NewTable(0, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	res := BatchedValues(empty)
	if len(res.Shapley) != 0 || len(res.Banzhaf) != 0 {
		t.Errorf("n=0 kernel returned %v", res)
	}
	if got := Shapley(empty); got != nil {
		t.Errorf("Shapley(n=0) = %v, want nil", got)
	}

	// n = 1: the lone player gets V({0}) under both indices.
	single, err := NewTable(1, []float64{0, 7.5})
	if err != nil {
		t.Fatal(err)
	}
	res = BatchedValues(single)
	if res.Shapley[0] != 7.5 || res.Banzhaf[0] != 7.5 {
		t.Errorf("n=1 kernel returned %+v, want 7.5/7.5", res)
	}

	// A non-monotone game: adding player 1 destroys value.
	nonMono, err := NewTable(2, []float64{0, 10, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	res = BatchedValues(nonMono)
	almostEqualVec(t, res.Shapley, ShapleyByPermutation(nonMono), 1e-12, "non-monotone Shapley")
	if res.Shapley[1] >= 0 {
		t.Errorf("player 1 destroys value, φ_1 = %g should be negative", res.Shapley[1])
	}
	almostEqualVec(t, res.Banzhaf, BanzhafLegacy(nonMono), 1e-12, "non-monotone Banzhaf")
}

func TestBatchedValuesParallelMatchesSequential(t *testing.T) {
	rng := stats.NewRand(7)
	for _, n := range []int{1, 2, 5, 9, 13} {
		g := randomTable(t, n, rng)
		want := BatchedValues(g)
		for _, workers := range []int{0, 1, 2, 3, 8, 33} {
			got := BatchedValuesParallel(g, workers)
			almostEqualVec(t, got.Shapley, want.Shapley, 1e-9, "parallel kernel Shapley")
			almostEqualVec(t, got.Banzhaf, want.Banzhaf, 1e-9, "parallel kernel Banzhaf")
		}
	}
}

func TestBatchedValuesEfficiency(t *testing.T) {
	// Shapley from the kernel must still satisfy Σφ_i = V(N).
	rng := stats.NewRand(12)
	g := randomTable(t, 10, rng)
	res := BatchedValuesParallel(g, 4)
	if err := CheckEfficiency(g, res.Shapley, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestShapleyWeights(t *testing.T) {
	// Closed binomial form must match the factorial definition, and the
	// weights over all subsets of N\{i} must sum to 1.
	for n := 1; n <= 12; n++ {
		w := shapleyWeights(n)
		sum := 0.0
		for s := 0; s < n; s++ {
			want := combin.Factorial(s) * combin.Factorial(n-s-1) / combin.Factorial(n)
			if math.Abs(w[s]-want) > 1e-12*want {
				t.Errorf("n=%d: w[%d] = %g, want %g", n, s, w[s], want)
			}
			sum += combin.Binomial(n-1, s) * w[s]
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("n=%d: weights sum to %g", n, sum)
		}
	}
}

func TestShapleyFallbackForNonSnapshotGames(t *testing.T) {
	// A game violating the V(∅) = 0 contract cannot be snapshotted; the
	// dispatcher must fall back to the per-player enumeration rather than
	// fail.
	bad := Func{Players: 3, V: func(s combin.Set) float64 {
		return float64(s.Card()) + 1 // V(∅) = 1
	}}
	almostEqualVec(t, Shapley(bad), ShapleyLegacy(bad), 1e-12, "fallback Shapley")
	almostEqualVec(t, Banzhaf(bad), BanzhafLegacy(bad), 1e-12, "fallback Banzhaf")
}

func TestSnapshotParallel(t *testing.T) {
	g := gloveGame()
	seq, err := Snapshot(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 5, 100} {
		par, err := SnapshotParallel(NewSafeCache(g), workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Players != seq.Players {
			t.Fatalf("players %d vs %d", par.Players, seq.Players)
		}
		for s := range seq.Values {
			if par.Values[s] != seq.Values[s] {
				t.Errorf("workers=%d: V(%s) = %g, want %g",
					workers, combin.Set(s), par.Values[s], seq.Values[s])
			}
		}
	}
	big := Func{Players: 30, V: func(combin.Set) float64 { return 0 }}
	if _, err := SnapshotParallel(big, 4); err == nil {
		t.Error("oversized SnapshotParallel must fail")
	}
}

func TestParallelBatched(t *testing.T) {
	rng := stats.NewRand(3)
	g := randomTable(t, 7, rng)
	res, err := ParallelBatched(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualVec(t, res.Shapley, ShapleyByPermutation(g), 1e-9, "ParallelBatched Shapley")
	almostEqualVec(t, res.Banzhaf, BanzhafLegacy(g), 1e-9, "ParallelBatched Banzhaf")

	big := Func{Players: 30, V: func(combin.Set) float64 { return 0 }}
	if _, err := ParallelBatched(big, 4); err == nil {
		t.Error("ParallelBatched beyond 24 players must fail")
	}
}

func BenchmarkShapleyKernel16(b *testing.B) {
	g := benchTable(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchedValues(g)
	}
}

func BenchmarkShapleyKernelParallel16(b *testing.B) {
	g := benchTable(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchedValuesParallel(g, 0)
	}
}

func BenchmarkShapleyLegacyTable16(b *testing.B) {
	g := benchTable(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShapleyLegacy(g)
	}
}

func benchTable(b *testing.B, n int) *Table {
	b.Helper()
	rng := stats.NewRand(42)
	vals := make([]float64, 1<<uint(n))
	for i := 1; i < len(vals); i++ {
		vals[i] = rng.Float64()
	}
	g, err := NewTable(n, vals)
	if err != nil {
		b.Fatal(err)
	}
	return g
}
