// Package coalition implements transferable-utility coalitional games and
// the solution concepts the paper builds on: the Shapley value (exact and
// Monte-Carlo), the Banzhaf value, the core and least core, and the
// nucleolus. It also provides the structural property checks
// (superadditivity, convexity, monotonicity) that Sec. 3.2.1 of the paper
// uses to reason about when the core exists.
package coalition

import (
	"fmt"
	"math"

	"fedshare/internal/combin"
)

// Game is a transferable-utility coalitional game: a player count and a
// characteristic function over coalitions. Implementations must return
// Value(Empty) == 0 and be deterministic; the engines may evaluate Value
// many times, so expensive characteristic functions should be wrapped with
// Cache.
type Game interface {
	// N returns the number of players.
	N() int
	// Value returns V(S), the worth of coalition s.
	Value(s combin.Set) float64
}

// Func adapts a plain function to the Game interface.
type Func struct {
	Players int
	V       func(combin.Set) float64
}

// N implements Game.
func (f Func) N() int { return f.Players }

// Value implements Game.
func (f Func) Value(s combin.Set) float64 { return f.V(s) }

// Table is a game whose characteristic function is given explicitly as a
// dense array indexed by coalition bitmask.
type Table struct {
	Players int
	Values  []float64 // len must be 1 << Players
}

// NewTable builds a Table game, checking dimensions.
func NewTable(players int, values []float64) (*Table, error) {
	if players < 0 || players > 30 {
		return nil, fmt.Errorf("coalition: player count %d out of range for Table", players)
	}
	if len(values) != 1<<uint(players) {
		return nil, fmt.Errorf("coalition: table has %d entries, want %d", len(values), 1<<uint(players))
	}
	if values[0] != 0 {
		return nil, fmt.Errorf("coalition: V(empty) = %g, must be 0", values[0])
	}
	return &Table{Players: players, Values: values}, nil
}

// N implements Game.
func (t *Table) N() int { return t.Players }

// Value implements Game.
func (t *Table) Value(s combin.Set) float64 { return t.Values[s] }

// Cache memoizes a Game's characteristic function. For up to 24 players it
// materializes values lazily into a dense array; beyond that it uses a map.
// Cache is not safe for concurrent use; use SafeCache when the game must
// serve concurrent Value calls.
type Cache struct {
	inner Game
	dense []float64
	seen  []bool
	m     map[combin.Set]float64
	evals int
}

// NewCache wraps g with memoization.
func NewCache(g Game) *Cache {
	c := &Cache{inner: g}
	if g.N() <= snapshotMaxPlayers {
		size := 1 << uint(g.N())
		c.dense = make([]float64, size)
		c.seen = make([]bool, size)
	} else {
		c.m = make(map[combin.Set]float64)
	}
	return c
}

// N implements Game.
func (c *Cache) N() int { return c.inner.N() }

// Value implements Game with memoization.
func (c *Cache) Value(s combin.Set) float64 {
	if c.dense != nil {
		if !c.seen[s] {
			c.dense[s] = c.inner.Value(s)
			c.seen[s] = true
			c.evals++
		}
		return c.dense[s]
	}
	if v, ok := c.m[s]; ok {
		return v
	}
	v := c.inner.Value(s)
	c.m[s] = v
	c.evals++
	return v
}

// Evaluations reports how many distinct coalitions have been evaluated.
// It is O(1): a counter maintained on each miss, rather than a scan of the
// 2^n seen-bitmap.
func (c *Cache) Evaluations() int { return c.evals }

// Grand returns the grand coalition of g.
func Grand(g Game) combin.Set { return combin.Full(g.N()) }

// IsSuperadditive reports whether V(S ∪ T) >= V(S) + V(T) for all disjoint
// S, T. Cost is O(3^n); keep n small.
func IsSuperadditive(g Game) bool {
	n := g.N()
	ok := true
	combin.AllCoalitions(n, func(s combin.Set) bool {
		rest := combin.Full(n).Minus(s)
		combin.Subsets(rest, func(t combin.Set) bool {
			if g.Value(s.Union(t)) < g.Value(s)+g.Value(t)-1e-9 {
				ok = false
				return false
			}
			return true
		})
		return ok
	})
	return ok
}

// IsConvex reports whether the game is convex (supermodular):
// V(S∪{i}) − V(S) is nondecreasing in S. Convex games always have a
// nonempty core, and their Shapley value lies in the core.
func IsConvex(g Game) bool {
	n := g.N()
	ok := true
	for i := 0; i < n && ok; i++ {
		for j := 0; j < n && ok; j++ {
			if i == j {
				continue
			}
			rest := combin.Full(n).Without(i).Without(j)
			combin.Subsets(rest, func(s combin.Set) bool {
				lhs := g.Value(s.With(i)) + g.Value(s.With(j))
				rhs := g.Value(s.With(i).With(j)) + g.Value(s)
				if lhs > rhs+1e-9 {
					ok = false
					return false
				}
				return true
			})
		}
	}
	return ok
}

// IsMonotone reports whether S ⊆ T implies V(S) <= V(T).
func IsMonotone(g Game) bool {
	n := g.N()
	ok := true
	combin.AllCoalitions(n, func(s combin.Set) bool {
		for i := 0; i < n; i++ {
			if s.Contains(i) {
				continue
			}
			if g.Value(s.With(i)) < g.Value(s)-1e-9 {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// IsEssential reports whether the grand coalition is worth more than the sum
// of singleton values — i.e., whether there is surplus to share at all.
func IsEssential(g Game) bool {
	sum := 0.0
	for i := 0; i < g.N(); i++ {
		sum += g.Value(combin.Singleton(i))
	}
	return g.Value(Grand(g)) > sum+1e-9
}

// Normalize divides an allocation by V(N), yielding shares that sum to 1
// when the allocation is efficient. If V(N) == 0 it returns all zeros, which
// matches the paper's convention for infeasible demand (no value to share).
func Normalize(g Game, alloc []float64) []float64 {
	vn := g.Value(Grand(g))
	out := make([]float64, len(alloc))
	if math.Abs(vn) < 1e-12 {
		return out
	}
	for i, a := range alloc {
		out[i] = a / vn
	}
	return out
}
