package coalition

import (
	"fmt"

	"fedshare/internal/combin"
	"fedshare/internal/stats"
)

// Structure is a coalition structure: a partition of the players into
// blocks (the paper's hierarchical federation — e.g. testbeds grouped under
// regional authorities, Sec. 1.2 and the future-work discussion of Sec. 6).
type Structure struct {
	Blocks [][]int
}

// Validate checks that Blocks partitions {0, …, n−1}.
func (st Structure) Validate(n int) error {
	seen := make([]bool, n)
	count := 0
	for bi, block := range st.Blocks {
		if len(block) == 0 {
			return fmt.Errorf("coalition: block %d is empty", bi)
		}
		for _, p := range block {
			if p < 0 || p >= n {
				return fmt.Errorf("coalition: player %d out of range", p)
			}
			if seen[p] {
				return fmt.Errorf("coalition: player %d appears twice", p)
			}
			seen[p] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("coalition: structure covers %d of %d players", count, n)
	}
	return nil
}

// Singletons returns the trivial structure of one-player blocks.
func Singletons(n int) Structure {
	st := Structure{Blocks: make([][]int, n)}
	for i := 0; i < n; i++ {
		st.Blocks[i] = []int{i}
	}
	return st
}

// QuotientGame returns the game among blocks: the value of a set of blocks
// is the value of the union of their players.
func QuotientGame(g Game, st Structure) (Game, error) {
	if err := st.Validate(g.N()); err != nil {
		return nil, err
	}
	blockSets := make([]combin.Set, len(st.Blocks))
	for bi, block := range st.Blocks {
		blockSets[bi] = combin.Of(block...)
	}
	return Func{
		Players: len(st.Blocks),
		V: func(s combin.Set) float64 {
			var union combin.Set
			for _, bi := range s.Members() {
				union = union.Union(blockSets[bi])
			}
			return g.Value(union)
		},
	}, nil
}

// Owen computes the Owen value: the coalition-structure generalization of
// the Shapley value, the natural sharing rule for hierarchical federations.
// It is the expected marginal contribution over orderings in which each
// block's players appear contiguously, blocks in random order and players
// random within their block.
//
// The exact computation enumerates B!·Π(m_b!) structured orderings; it
// refuses structures beyond ~10^7 orderings — use MonteCarloOwen there.
func Owen(g Game, st Structure) ([]float64, error) {
	n := g.N()
	if err := st.Validate(n); err != nil {
		return nil, err
	}
	orderings := combin.Factorial(len(st.Blocks))
	for _, block := range st.Blocks {
		orderings *= combin.Factorial(len(block))
	}
	if orderings > 1e7 {
		return nil, fmt.Errorf("coalition: %.3g structured orderings; use MonteCarloOwen", orderings)
	}

	phi := make([]float64, n)
	count := 0
	// Enumerate block orders; within each block order, enumerate member
	// permutations per block via recursive composition.
	combin.Permutations(len(st.Blocks), func(blockOrder []int) bool {
		// perms[level] iterates permutations of block blockOrder[level].
		var rec func(level int, prefix []int)
		rec = func(level int, prefix []int) {
			if level == len(blockOrder) {
				var s combin.Set
				prev := 0.0
				for _, p := range prefix {
					s = s.With(p)
					v := g.Value(s)
					phi[p] += v - prev
					prev = v
				}
				count++
				return
			}
			block := st.Blocks[blockOrder[level]]
			combin.Permutations(len(block), func(inner []int) bool {
				ordered := make([]int, 0, len(prefix)+len(block))
				ordered = append(ordered, prefix...)
				for _, k := range inner {
					ordered = append(ordered, block[k])
				}
				rec(level+1, ordered)
				return true
			})
		}
		rec(0, nil)
		return true
	})
	for i := range phi {
		phi[i] /= float64(count)
	}
	return phi, nil
}

// MonteCarloOwen estimates the Owen value by sampling structured orderings.
func MonteCarloOwen(g Game, st Structure, samples int, rng *stats.Rand) ([]float64, error) {
	n := g.N()
	if err := st.Validate(n); err != nil {
		return nil, err
	}
	if samples <= 0 {
		return nil, fmt.Errorf("coalition: MonteCarloOwen needs samples > 0")
	}
	phi := make([]float64, n)
	blockIdx := make([]int, len(st.Blocks))
	for i := range blockIdx {
		blockIdx[i] = i
	}
	order := make([]int, 0, n)
	for it := 0; it < samples; it++ {
		rng.Shuffle(len(blockIdx), func(i, j int) {
			blockIdx[i], blockIdx[j] = blockIdx[j], blockIdx[i]
		})
		order = order[:0]
		for _, bi := range blockIdx {
			block := st.Blocks[bi]
			perm := rng.Perm(len(block))
			for _, k := range perm {
				order = append(order, block[k])
			}
		}
		var s combin.Set
		prev := 0.0
		for _, p := range order {
			s = s.With(p)
			v := g.Value(s)
			phi[p] += v - prev
			prev = v
		}
	}
	for i := range phi {
		phi[i] /= float64(samples)
	}
	return phi, nil
}

// BlockShares sums an allocation over the structure's blocks — the
// authority-level totals of a member-level allocation. Consistency with the
// quotient game's Shapley value is the Owen value's defining property.
func BlockShares(st Structure, phi []float64) []float64 {
	out := make([]float64, len(st.Blocks))
	for bi, block := range st.Blocks {
		for _, p := range block {
			out[bi] += phi[p]
		}
	}
	return out
}
