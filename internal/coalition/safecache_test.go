package coalition

import (
	"sync"
	"sync/atomic"
	"testing"

	"fedshare/internal/combin"
	"fedshare/internal/stats"
)

func TestSafeCacheSequential(t *testing.T) {
	calls := 0
	g := Func{Players: 4, V: func(s combin.Set) float64 {
		calls++
		return float64(s.Card() * 3)
	}}
	c := NewSafeCache(g)
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	combin.AllCoalitions(4, func(s combin.Set) bool {
		if c.Value(s) != float64(s.Card()*3) {
			t.Errorf("V(%s) = %g", s, c.Value(s))
		}
		return true
	})
	combin.AllCoalitions(4, func(s combin.Set) bool {
		c.Value(s)
		return true
	})
	if calls != 16 {
		t.Errorf("inner game evaluated %d times, want 16", calls)
	}
	if c.Evaluations() != 16 {
		t.Errorf("Evaluations() = %d, want 16", c.Evaluations())
	}
}

// TestSafeCacheConcurrentValue hammers one SafeCache from many goroutines
// (far more than GOMAXPROCS) over overlapping coalition ranges. Run under
// -race this is the regression test that Value is actually safe for
// concurrent use and that each coalition is evaluated at most once.
func TestSafeCacheConcurrentValue(t *testing.T) {
	const n = 10
	var calls atomic.Int64
	g := Func{Players: n, V: func(s combin.Set) float64 {
		calls.Add(1)
		return float64(s.Card()) * 1.5
	}}
	c := NewSafeCache(g)
	const goroutines = 16
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := stats.NewRand(seed)
			for it := 0; it < 2000; it++ {
				s := combin.Set(rng.Intn(1 << n))
				if got, want := c.Value(s), float64(s.Card())*1.5; got != want {
					t.Errorf("V(%s) = %g, want %g", s, got, want)
					return
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if calls.Load() > 1<<n {
		t.Errorf("inner game evaluated %d times, want <= %d (no duplicate work)", calls.Load(), 1<<n)
	}
	if int(calls.Load()) != c.Evaluations() {
		t.Errorf("Evaluations() = %d, inner calls = %d", c.Evaluations(), calls.Load())
	}
}

// TestSafeCacheParallelShapley runs the full parallel pipeline — lazy
// concurrent evaluation through SafeCache, parallel snapshot, lattice
// kernel — and checks the result against the sequential oracle.
func TestSafeCacheParallelShapley(t *testing.T) {
	glove := gloveGame()
	want := ShapleyLegacy(glove)
	for _, workers := range []int{0, 1, 2, 8} {
		c := NewSafeCache(glove)
		got := ParallelShapley(c, workers)
		almostEqualVec(t, got, want, 1e-9, "ParallelShapley over SafeCache")
	}

	bank := bankruptcyGame(400, []float64{100, 200, 300})
	almostEqualVec(t, ParallelShapley(NewSafeCache(bank), 4), ShapleyByPermutation(bank),
		1e-9, "bankruptcy ParallelShapley over SafeCache")
}

// TestSafeCacheMapMode exercises the sharded-map path used beyond 24
// players, concurrently.
func TestSafeCacheMapMode(t *testing.T) {
	const n = 30
	g := Func{Players: n, V: func(s combin.Set) float64 {
		return float64(s.Card())
	}}
	c := NewSafeCache(g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := stats.NewRand(seed)
			for it := 0; it < 500; it++ {
				s := combin.Set(rng.Intn(1 << 16)) // shared sub-lattice
				if got := c.Value(s); got != float64(s.Card()) {
					t.Errorf("V(%s) = %g", s, got)
					return
				}
			}
		}(uint64(w + 100))
	}
	wg.Wait()
	if c.Evaluations() == 0 || c.Evaluations() > 8*500 {
		t.Errorf("Evaluations() = %d out of range", c.Evaluations())
	}
}

func TestCacheEvaluationsCounter(t *testing.T) {
	// The dense-mode counter must match distinct evaluations without
	// scanning the seen bitmap, and must not grow on cache hits.
	g := Func{Players: 6, V: func(s combin.Set) float64 { return float64(s.Card()) }}
	c := NewCache(g)
	if c.Evaluations() != 0 {
		t.Fatalf("fresh cache reports %d evaluations", c.Evaluations())
	}
	c.Value(combin.Of(0, 3))
	c.Value(combin.Of(0, 3))
	c.Value(combin.Of(5))
	if c.Evaluations() != 2 {
		t.Errorf("Evaluations() = %d, want 2", c.Evaluations())
	}
	// Map mode (n > 24).
	big := Func{Players: 30, V: func(s combin.Set) float64 { return float64(s.Card()) }}
	bc := NewCache(big)
	bc.Value(combin.Of(1, 2))
	bc.Value(combin.Of(1, 2))
	bc.Value(combin.Of(29))
	if bc.Evaluations() != 2 {
		t.Errorf("map-mode Evaluations() = %d, want 2", bc.Evaluations())
	}
}
