package coalition

import (
	"fmt"
	"math"

	"fedshare/internal/combin"
	"fedshare/internal/stats"
)

// shapleyWeights returns w[s] = s!·(n−s−1)!/n! for s = 0..n−1 — the
// probability that a uniformly random ordering places a given player
// immediately after a particular s-subset of the others — using the closed
// binomial form 1/(n·C(n−1,s)). This single helper backs every exact
// Shapley path (sequential, per-player parallel, and the lattice kernel).
func shapleyWeights(n int) []float64 {
	w := make([]float64, n)
	for s := 0; s < n; s++ {
		w[s] = 1 / (float64(n) * combin.Binomial(n-1, s))
	}
	return w
}

// Shapley computes the exact Shapley value of every player using the
// subset-sum form
//
//	φ_i = Σ_{S ⊆ N\{i}}  |S|!·(n−|S|−1)!/n! · (V(S∪{i}) − V(S)).
//
// When g is a *Table — or any game small enough (n ≤ 24) to snapshot into
// one — the computation dispatches to the batched lattice kernel
// (BatchedValues): one linear sweep over the dense value table instead of
// n separate subset enumerations through the Game interface. Otherwise it
// falls back to ShapleyLegacy, costing O(n·2^n) characteristic-function
// evaluations (2^n with a Cache). Use MonteCarloShapley for games beyond
// ~24 players.
func Shapley(g Game) []float64 {
	if g.N() == 0 {
		return nil
	}
	if t, ok := tableFor(g, 1); ok {
		return BatchedValues(t).Shapley
	}
	return ShapleyLegacy(g)
}

// ShapleyLegacy is the classic per-player subset enumeration. It is the
// fallback for games that cannot be snapshotted (n > 24, or V(∅) ≠ 0) and
// is retained as an independently-coded reference for tests and the
// kernel-vs-legacy benchmarks.
func ShapleyLegacy(g Game) []float64 {
	n := g.N()
	if n == 0 {
		return nil
	}
	weight := shapleyWeights(n)
	phi := make([]float64, n)
	full := combin.Full(n)
	for i := 0; i < n; i++ {
		rest := full.Without(i)
		combin.Subsets(rest, func(s combin.Set) bool {
			phi[i] += weight[s.Card()] * (g.Value(s.With(i)) - g.Value(s))
			return true
		})
	}
	return phi
}

// ShapleyByPermutation computes the Shapley value by full enumeration of all
// n! orderings (equation (4) of the paper). It is exponentially slower than
// Shapley and exists as an independent oracle for tests; it panics beyond 10
// players.
func ShapleyByPermutation(g Game) []float64 {
	n := g.N()
	if n > 10 {
		panic("coalition: ShapleyByPermutation limited to 10 players")
	}
	phi := make([]float64, n)
	count := 0
	combin.Permutations(n, func(perm []int) bool {
		var s combin.Set
		prev := 0.0
		for _, p := range perm {
			s = s.With(p)
			v := g.Value(s)
			phi[p] += v - prev
			prev = v
		}
		count++
		return true
	})
	for i := range phi {
		phi[i] /= float64(count)
	}
	return phi
}

// MonteCarloResult carries a sampled Shapley estimate with per-player
// standard errors.
type MonteCarloResult struct {
	Phi     []float64 // estimated Shapley values
	StdErr  []float64 // standard error of each estimate
	Samples int
}

// MonteCarloShapley estimates the Shapley value by sampling uniform random
// orderings. The estimator is unbiased; standard errors shrink as
// 1/sqrt(samples). The paper notes exact computation is intractable in
// general — this is the practical large-N fallback. Wrap expensive games
// with SafeCache (or Cache for single-threaded use) so repeated coalition
// visits across samples are free.
//
// MonteCarloShapley is the legacy wrapper and keeps the historical
// panic-on-misuse contract; the newer estimator surface
// (MonteCarloShapleyParallel, ApproxShapley, Values) reports invalid
// inputs as errors instead. It remains single-threaded by design: the
// parallel engines cross-validate against it as the independently-coded
// oracle.
func MonteCarloShapley(g Game, samples int, rng *stats.Rand) MonteCarloResult {
	res, err := monteCarloShapleySeq(g, samples, rng)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// monteCarloShapleySeq is the sequential sampling loop shared by the
// legacy wrapper, with the error-returning contract of the new API
// surface.
func monteCarloShapleySeq(g Game, samples int, rng *stats.Rand) (MonteCarloResult, error) {
	n := g.N()
	if samples <= 0 {
		return MonteCarloResult{}, fmt.Errorf("coalition: MonteCarloShapley needs samples > 0, got %d", samples)
	}
	if n > combin.MaxPlayers {
		return MonteCarloResult{}, fmt.Errorf("coalition: %d players exceed the bitmask engines' %d-player bound; use ApproxShapley", n, combin.MaxPlayers)
	}
	sums := make([]stats.Summary, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for it := 0; it < samples; it++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var s combin.Set
		prev := 0.0
		for _, p := range perm {
			s = s.With(p)
			v := g.Value(s)
			sums[p].Add(v - prev)
			prev = v
		}
	}
	res := MonteCarloResult{
		Phi:     make([]float64, n),
		StdErr:  make([]float64, n),
		Samples: samples,
	}
	for i := range sums {
		res.Phi[i] = sums[i].Mean()
		if samples > 1 {
			res.StdErr[i] = sums[i].Stddev() / math.Sqrt(float64(samples))
		}
	}
	return res, nil
}

// Banzhaf computes the (non-normalized) Banzhaf value
// β_i = 2^{-(n-1)} Σ_{S ⊆ N\{i}} (V(S∪{i}) − V(S)), an alternative power
// index included for policy comparison. Like Shapley, it dispatches to the
// batched lattice kernel whenever the game is a *Table or snapshot-eligible.
func Banzhaf(g Game) []float64 {
	n := g.N()
	if n == 0 {
		return make([]float64, 0)
	}
	if t, ok := tableFor(g, 1); ok {
		return BatchedValues(t).Banzhaf
	}
	return BanzhafLegacy(g)
}

// BanzhafLegacy is the per-player subset enumeration form of Banzhaf,
// retained as the fallback for non-snapshottable games and as a reference
// implementation for kernel cross-checks.
func BanzhafLegacy(g Game) []float64 {
	n := g.N()
	beta := make([]float64, n)
	if n == 0 {
		return beta
	}
	norm := math.Exp2(-float64(n - 1))
	full := combin.Full(n)
	for i := 0; i < n; i++ {
		rest := full.Without(i)
		combin.Subsets(rest, func(s combin.Set) bool {
			beta[i] += g.Value(s.With(i)) - g.Value(s)
			return true
		})
		beta[i] *= norm
	}
	return beta
}

// CheckEfficiency verifies Σφ_i == V(N) within tol, returning a descriptive
// error when violated. Useful as a guard after Monte-Carlo estimation.
func CheckEfficiency(g Game, phi []float64, tol float64) error {
	sum := 0.0
	for _, p := range phi {
		sum += p
	}
	vn := g.Value(Grand(g))
	if math.Abs(sum-vn) > tol {
		return fmt.Errorf("coalition: allocation sums to %g, V(N) = %g", sum, vn)
	}
	return nil
}
