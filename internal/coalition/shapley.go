package coalition

import (
	"fmt"
	"math"

	"fedshare/internal/combin"
	"fedshare/internal/stats"
)

// Shapley computes the exact Shapley value of every player using the
// subset-sum form
//
//	φ_i = Σ_{S ⊆ N\{i}}  |S|!·(n−|S|−1)!/n! · (V(S∪{i}) − V(S)).
//
// Cost is O(n·2^n) characteristic-function evaluations (2^n with a Cache).
// Use MonteCarloShapley for games beyond ~20 players.
func Shapley(g Game) []float64 {
	n := g.N()
	if n == 0 {
		return nil
	}
	// weight[s] = s!(n-s-1)!/n! computed in log space to stay finite for
	// large n.
	weight := make([]float64, n)
	for s := 0; s < n; s++ {
		lw := logFactorial(s) + logFactorial(n-s-1) - logFactorial(n)
		weight[s] = math.Exp(lw)
	}
	phi := make([]float64, n)
	full := combin.Full(n)
	for i := 0; i < n; i++ {
		rest := full.Without(i)
		combin.Subsets(rest, func(s combin.Set) bool {
			phi[i] += weight[s.Card()] * (g.Value(s.With(i)) - g.Value(s))
			return true
		})
	}
	return phi
}

func logFactorial(n int) float64 {
	out := 0.0
	for i := 2; i <= n; i++ {
		out += math.Log(float64(i))
	}
	return out
}

// ShapleyByPermutation computes the Shapley value by full enumeration of all
// n! orderings (equation (4) of the paper). It is exponentially slower than
// Shapley and exists as an independent oracle for tests; it panics beyond 10
// players.
func ShapleyByPermutation(g Game) []float64 {
	n := g.N()
	if n > 10 {
		panic("coalition: ShapleyByPermutation limited to 10 players")
	}
	phi := make([]float64, n)
	count := 0
	combin.Permutations(n, func(perm []int) bool {
		var s combin.Set
		prev := 0.0
		for _, p := range perm {
			s = s.With(p)
			v := g.Value(s)
			phi[p] += v - prev
			prev = v
		}
		count++
		return true
	})
	for i := range phi {
		phi[i] /= float64(count)
	}
	return phi
}

// MonteCarloResult carries a sampled Shapley estimate with per-player
// standard errors.
type MonteCarloResult struct {
	Phi     []float64 // estimated Shapley values
	StdErr  []float64 // standard error of each estimate
	Samples int
}

// MonteCarloShapley estimates the Shapley value by sampling uniform random
// orderings. The estimator is unbiased; standard errors shrink as
// 1/sqrt(samples). The paper notes exact computation is intractable in
// general — this is the practical large-N fallback.
func MonteCarloShapley(g Game, samples int, rng *stats.Rand) MonteCarloResult {
	n := g.N()
	if samples <= 0 {
		panic("coalition: MonteCarloShapley needs samples > 0")
	}
	sums := make([]stats.Summary, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for it := 0; it < samples; it++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var s combin.Set
		prev := 0.0
		for _, p := range perm {
			s = s.With(p)
			v := g.Value(s)
			sums[p].Add(v - prev)
			prev = v
		}
	}
	res := MonteCarloResult{
		Phi:     make([]float64, n),
		StdErr:  make([]float64, n),
		Samples: samples,
	}
	for i := range sums {
		res.Phi[i] = sums[i].Mean()
		if samples > 1 {
			res.StdErr[i] = sums[i].Stddev() / math.Sqrt(float64(samples))
		}
	}
	return res
}

// Banzhaf computes the (non-normalized) Banzhaf value
// β_i = 2^{-(n-1)} Σ_{S ⊆ N\{i}} (V(S∪{i}) − V(S)), an alternative power
// index included for policy comparison.
func Banzhaf(g Game) []float64 {
	n := g.N()
	beta := make([]float64, n)
	if n == 0 {
		return beta
	}
	norm := math.Exp2(-float64(n - 1))
	full := combin.Full(n)
	for i := 0; i < n; i++ {
		rest := full.Without(i)
		combin.Subsets(rest, func(s combin.Set) bool {
			beta[i] += g.Value(s.With(i)) - g.Value(s)
			return true
		})
		beta[i] *= norm
	}
	return beta
}

// CheckEfficiency verifies Σφ_i == V(N) within tol, returning a descriptive
// error when violated. Useful as a guard after Monte-Carlo estimation.
func CheckEfficiency(g Game, phi []float64, tol float64) error {
	sum := 0.0
	for _, p := range phi {
		sum += p
	}
	vn := g.Value(Grand(g))
	if math.Abs(sum-vn) > tol {
		return fmt.Errorf("coalition: allocation sums to %g, V(N) = %g", sum, vn)
	}
	return nil
}
