package coalition

import (
	"math"
	"math/bits"
	"runtime"
	"sync"
	"time"
)

// snapshotMaxPlayers bounds the games whose characteristic function can be
// materialized into a dense Table (8 bytes per coalition: 24 players is a
// 128 MiB table).
const snapshotMaxPlayers = 24

// Batched is the result of one coalition-lattice sweep: the exact Shapley
// and Banzhaf values of every player, computed together from a single pass
// over the 2^n coalition values.
type Batched struct {
	Shapley []float64
	Banzhaf []float64
}

// BatchedValues computes the exact Shapley and Banzhaf values of every
// player in one sequential sweep over the coalition lattice of a Table
// game.
//
// Instead of the classic n independent subset enumerations (one per
// player, each walking 2^(n-1) coalitions through the Game interface), the
// kernel scans the dense value table linearly once: for every coalition T
// and every member i ∈ T it accumulates the marginal contribution
// V(T) − V(T\{i}) into per-player Shapley and Banzhaf accumulators. The
// total work is the same Θ(n·2^n) additions, but all reads are direct
// []float64 indexing — no interface dispatch, no per-player re-walk of the
// lattice, and the V(T) operand streams through the cache.
func BatchedValues(t *Table) Batched {
	n := t.Players
	res := Batched{Shapley: make([]float64, n), Banzhaf: make([]float64, n)}
	if n == 0 {
		return res
	}
	batchesTotal.Inc()
	timed := len(t.Values) >= batchTimingMinCoalitions
	var start time.Time
	if timed {
		start = time.Now()
	}
	sweepRange(t.Values, shapleyWeights(n), 1, uint64(len(t.Values)), res.Shapley, res.Banzhaf)
	scaleBanzhaf(res.Banzhaf, n)
	if timed {
		batchSeconds.ObserveDuration(time.Since(start))
	}
	return res
}

// BatchedValuesParallel is BatchedValues with the coalition range sharded
// across workers (0 means GOMAXPROCS). Each worker sweeps a contiguous
// block of the lattice into private per-player accumulators, which are
// reduced in worker order afterwards — so the result is deterministic for
// a fixed worker count, and the worker count scales with the 2^n coalition
// range rather than being capped at n players.
func BatchedValuesParallel(t *Table, workers int) Batched {
	n := t.Players
	res := Batched{Shapley: make([]float64, n), Banzhaf: make([]float64, n)}
	if n == 0 {
		return res
	}
	size := uint64(len(t.Values))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Below ~2^12 coalitions per worker the spawn cost dominates the sweep.
	if maxW := int(size >> 12); workers > maxW {
		workers = max(1, maxW)
	}
	batchesTotal.Inc()
	if len(t.Values) >= batchTimingMinCoalitions {
		start := time.Now()
		defer func() { batchSeconds.ObserveDuration(time.Since(start)) }()
	}
	if workers == 1 {
		sweepRange(t.Values, shapleyWeights(n), 1, size, res.Shapley, res.Banzhaf)
		scaleBanzhaf(res.Banzhaf, n)
		return res
	}
	w := shapleyWeights(n)
	partials := make([]Batched, workers)
	chunk := (size + uint64(workers) - 1) / uint64(workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo := uint64(k) * chunk
		hi := min(lo+chunk, size)
		if lo >= hi {
			continue
		}
		partials[k] = Batched{Shapley: make([]float64, n), Banzhaf: make([]float64, n)}
		wg.Add(1)
		go func(p Batched, lo, hi uint64) {
			defer wg.Done()
			sweepRange(t.Values, w, lo, hi, p.Shapley, p.Banzhaf)
		}(partials[k], lo, hi)
	}
	wg.Wait()
	for _, p := range partials {
		if p.Shapley == nil {
			continue
		}
		for i := 0; i < n; i++ {
			res.Shapley[i] += p.Shapley[i]
			res.Banzhaf[i] += p.Banzhaf[i]
		}
	}
	scaleBanzhaf(res.Banzhaf, n)
	return res
}

// sweepRange walks coalitions T in [lo, hi) and, for every member i of T,
// adds the marginal contribution V(T) − V(T\{i}) into banz[i] and its
// Shapley-weighted form into shap[i]. Summed over the full lattice this is
// exactly φ_i = Σ_{S ⊆ N\{i}} w[|S|]·(V(S∪{i}) − V(S)) with T = S∪{i}.
func sweepRange(values, w []float64, lo, hi uint64, shap, banz []float64) {
	if lo == 0 {
		lo = 1 // the empty coalition has no members
	}
	for m := lo; m < hi; m++ {
		vT := values[m]
		wt := w[bits.OnesCount64(m)-1]
		for rest := m; rest != 0; rest &= rest - 1 {
			i := bits.TrailingZeros64(rest)
			marg := vT - values[m&^(1<<uint(i))]
			shap[i] += wt * marg
			banz[i] += marg
		}
	}
}

// scaleBanzhaf applies the 2^{-(n-1)} normalization of the Banzhaf value.
func scaleBanzhaf(banz []float64, n int) {
	norm := math.Exp2(-float64(n - 1))
	for i := range banz {
		banz[i] *= norm
	}
}

// tableFor returns the dense value table of g, materializing one when g is
// small enough. workers > 1 requires g to be safe for concurrent Value
// calls. The second return is false when g cannot be snapshotted (too many
// players, or a characteristic function violating V(∅) = 0).
func tableFor(g Game, workers int) (*Table, bool) {
	if t, ok := g.(*Table); ok {
		return t, true
	}
	if g.N() > snapshotMaxPlayers {
		return nil, false
	}
	var t *Table
	var err error
	if workers > 1 {
		t, err = SnapshotParallel(g, workers)
	} else {
		t, err = Snapshot(g)
	}
	return t, err == nil
}
