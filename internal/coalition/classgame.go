package coalition

import (
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"math"
	"sync"
)

// Symmetry collapse.
//
// Facilities with identical contribution signatures are interchangeable
// players: V(S) depends only on HOW MANY members of each class S contains,
// not on which ones. A game over n players partitioned into k classes with
// multiplicities m_1..m_k therefore collapses to a game over count vectors
// c ∈ Π[0, m_j] — a state space of Π(m_j+1) values instead of 2^n. For a
// 200-facility federation drawn from 8 facility classes that is ~10^10×
// fewer states than the coalition lattice, and because symmetric players
// provably receive equal Shapley values, per-class shares split equally
// within a class with no further error.
//
// Two engines run on the collapsed game: ExactShapley enumerates the count
// lattice with closed-form ordering probabilities (exact, feasible when
// Π(m_j+1) is modest), and MemberGame adapts it for ApproxShapley with a
// concurrent count-vector memo, composing collapse with sampling when the
// state space is still too large.

// ClassStructure describes the interchangeable-player structure of a game:
// a partition of the players into classes plus the class-level
// characteristic function.
type ClassStructure struct {
	// Mult is the class multiplicity vector; Σ Mult = N.
	Mult []int
	// ClassOf maps each player to its class index.
	ClassOf []int
	// Value returns V for the coalition containing counts[j] members of
	// class j (any counts[j] members — the classes are interchangeable).
	// It must be safe for concurrent calls, return 0 for the zero vector,
	// and must not retain the slice.
	Value func(counts []int) float64
}

// Validate checks the partition's internal consistency.
func (cs *ClassStructure) Validate() error {
	if cs.Value == nil {
		return fmt.Errorf("coalition: class structure has no value function")
	}
	total := 0
	for j, m := range cs.Mult {
		if m <= 0 {
			return fmt.Errorf("coalition: class %d has non-positive multiplicity %d", j, m)
		}
		total += m
	}
	if total != len(cs.ClassOf) {
		return fmt.Errorf("coalition: multiplicities sum to %d, have %d players", total, len(cs.ClassOf))
	}
	seen := make([]int, len(cs.Mult))
	for p, j := range cs.ClassOf {
		if j < 0 || j >= len(cs.Mult) {
			return fmt.Errorf("coalition: player %d assigned to unknown class %d", p, j)
		}
		seen[j]++
	}
	for j := range seen {
		if seen[j] != cs.Mult[j] {
			return fmt.Errorf("coalition: class %d has %d assigned players, multiplicity %d", j, seen[j], cs.Mult[j])
		}
	}
	return nil
}

// N returns the player count.
func (cs *ClassStructure) N() int { return len(cs.ClassOf) }

// K returns the class count.
func (cs *ClassStructure) K() int { return len(cs.Mult) }

// States returns the collapsed state-space size Π(m_j+1) as a float (it
// overflows int64 long before the exact engine becomes feasible anyway).
func (cs *ClassStructure) States() float64 {
	states := 1.0
	for _, m := range cs.Mult {
		states *= float64(m + 1)
	}
	return states
}

// Groups returns the classes as player-index groups, ready for
// ApproxOptions.Groups pooling.
func (cs *ClassStructure) Groups() [][]int {
	out := make([][]int, cs.K())
	for p, j := range cs.ClassOf {
		out[j] = append(out[j], p)
	}
	return out
}

// exactClassMaxStates bounds the count lattices ExactShapley will
// enumerate: 2^21 states × 8 bytes is a 16 MiB value table, and every
// state costs one characteristic-function evaluation.
const exactClassMaxStates = 1 << 21

// ExactShapley computes the exact Shapley value of every player over the
// collapsed game by dynamic enumeration of the count lattice.
//
// For a player p of class j, the coalition S preceding p in a uniform
// random ordering enters φ_p only through its class composition c, and the
// number of such coalitions is Π_i C(m_i − δ_ij, c_i), so
//
//	φ_p = Σ_c  w[|c|] · Π_i C(m_i − δ_ij, c_i) · (V(c+e_j) − V(c))
//
// with w the usual ordering weights s!(n−s−1)!/n!. The products are
// evaluated in log space (overflow-safe for any n) as the multivariate
// hypergeometric mass Π C(m_i−δ_ij, c_i)/C(n−1, |c|) scaled by 1/n. It
// errors when the state space exceeds exactClassMaxStates; compose the
// collapse with ApproxShapley then.
func ExactShapley(cs *ClassStructure) ([]float64, error) {
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	n, k := cs.N(), cs.K()
	if n == 0 {
		return nil, nil
	}
	statesF := cs.States()
	if statesF > exactClassMaxStates {
		return nil, fmt.Errorf("coalition: collapsed state space has %.3g states, exact limit %d", statesF, exactClassMaxStates)
	}
	states := int(statesF)

	// Mixed-radix layout: state index idx(c) = Σ c_j · stride_j.
	stride := make([]int, k)
	s := 1
	for j := 0; j < k; j++ {
		stride[j] = s
		s *= cs.Mult[j] + 1
	}

	// Materialize V over the count lattice.
	table := make([]float64, states)
	counts := make([]int, k)
	for idx := 0; idx < states; idx++ {
		table[idx] = cs.Value(counts)
		odometer(counts, cs.Mult)
	}

	// ln C(a, b) via a lnΓ-backed factorial table; relative error ~1e-14,
	// far inside the exact engines' cross-check tolerance.
	lf := make([]float64, n+1)
	for i := 2; i <= n; i++ {
		v, _ := math.Lgamma(float64(i + 1))
		lf[i] = v
	}
	lnC := func(a, b int) float64 { return lf[a] - lf[b] - lf[a-b] }
	lnN := math.Log(float64(n))

	phiClass := make([]float64, k)
	for j := range counts {
		counts[j] = 0
	}
	for idx := 0; idx < states; idx++ {
		card := 0
		logBase := 0.0 // Σ ln C(m_i, c_i)
		for i, c := range counts {
			card += c
			logBase += lnC(cs.Mult[i], c)
		}
		if card < n {
			lw := logBase - lnN - lnC(n-1, card)
			for j := 0; j < k; j++ {
				free := cs.Mult[j] - counts[j]
				if free == 0 {
					continue
				}
				// Restrict the base product to the fixed player's class:
				// C(m_j−1, c_j) = C(m_j, c_j)·(m_j−c_j)/m_j.
				coef := math.Exp(lw) * float64(free) / float64(cs.Mult[j])
				phiClass[j] += coef * (table[idx+stride[j]] - table[idx])
			}
		}
		odometer(counts, cs.Mult)
	}

	phi := make([]float64, n)
	for p, j := range cs.ClassOf {
		phi[p] = phiClass[j]
	}
	return phi, nil
}

// odometer advances a count vector to the next mixed-radix state.
func odometer(counts, mult []int) {
	for j := range counts {
		if counts[j] < mult[j] {
			counts[j]++
			return
		}
		counts[j] = 0
	}
}

// classMemoStripes is the lock striping of the collapsed-game value memo.
const classMemoStripes = 64

// classMemberGame adapts a ClassStructure to the MemberGame interface for
// the sampler: coalitions reduce to count vectors, and distinct count
// vectors are solved once through a striped concurrent memo. A sampled
// ordering of a 200-player game visits 200 prefixes, but across thousands
// of orderings those prefixes share a vastly smaller count-vector space,
// so most ValueMembers calls are O(k) lookups rather than solves.
type classMemberGame struct {
	cs     *ClassStructure
	seed   maphash.Seed
	mus    [classMemoStripes]sync.Mutex
	tables [classMemoStripes]map[string]float64
}

// MemberGame returns the collapsed game as a sampler-ready MemberGame with
// a fresh value memo.
func (cs *ClassStructure) MemberGame() MemberGame {
	g := &classMemberGame{cs: cs, seed: maphash.MakeSeed()}
	for i := range g.tables {
		g.tables[i] = map[string]float64{}
	}
	return g
}

// N implements MemberGame.
func (g *classMemberGame) N() int { return g.cs.N() }

// ValueMembers implements MemberGame.
func (g *classMemberGame) ValueMembers(members []int) float64 {
	k := g.cs.K()
	counts := make([]int, k)
	for _, p := range members {
		counts[g.cs.ClassOf[p]]++
	}
	return g.valueCounts(counts, make([]byte, 2*k))
}

// PrefixValuer implements PrefixGame: the walker's coalition reduces to a
// count vector maintained incrementally, so each prefix step is one O(k)
// memo probe with no per-member scan. The valuer shares the game's striped
// memo, so incremental and ValueMembers evaluations return the same cached
// floats bit-for-bit.
func (g *classMemberGame) PrefixValuer() PrefixValuer {
	k := g.cs.K()
	return &classPrefixValuer{g: g, counts: make([]int, k), key: make([]byte, 2*k)}
}

// classPrefixValuer is the incremental walker state over one count vector.
type classPrefixValuer struct {
	g      *classMemberGame
	counts []int
	key    []byte
}

// Reset implements PrefixValuer.
func (v *classPrefixValuer) Reset() {
	for j := range v.counts {
		v.counts[j] = 0
	}
}

// Extend implements PrefixValuer.
func (v *classPrefixValuer) Extend(p int) float64 {
	v.counts[v.g.cs.ClassOf[p]]++
	return v.g.valueCounts(v.counts, v.key)
}

// valueCounts returns the collapsed game's value for a count vector
// through the striped memo; key is a caller-provided 2·K-byte scratch.
func (g *classMemberGame) valueCounts(counts []int, key []byte) float64 {
	for j, c := range counts {
		binary.LittleEndian.PutUint16(key[2*j:], uint16(c))
	}
	stripe := maphash.Bytes(g.seed, key) & (classMemoStripes - 1)
	mu, table := &g.mus[stripe], g.tables[stripe]
	ks := string(key)
	mu.Lock()
	if v, ok := table[ks]; ok {
		mu.Unlock()
		return v
	}
	mu.Unlock()
	// Solve outside the stripe lock: distinct vectors in one stripe can
	// evaluate concurrently, and Value is required to be pure.
	v := g.cs.Value(counts)
	mu.Lock()
	table[ks] = v
	mu.Unlock()
	return v
}
