package coalition

import (
	"fmt"
	"math"

	"fedshare/internal/combin"
	"fedshare/internal/lp"
)

// InCore reports whether allocation x lies in the core of g: x must be
// efficient (Σx = V(N)) and no coalition may prefer to defect
// (x(S) >= V(S) for every S).
func InCore(g Game, x []float64, tol float64) bool {
	n := g.N()
	if len(x) != n {
		return false
	}
	sum := 0.0
	for _, xi := range x {
		sum += xi
	}
	if math.Abs(sum-g.Value(Grand(g))) > tol {
		return false
	}
	ok := true
	combin.AllCoalitions(n, func(s combin.Set) bool {
		xs := 0.0
		for _, i := range s.Members() {
			xs += x[i]
		}
		if xs < g.Value(s)-tol {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// LeastCoreResult is the outcome of the least-core LP.
type LeastCoreResult struct {
	// Epsilon is the minimized maximum excess max_S (V(S) − x(S)) over
	// proper nonempty coalitions. The core is nonempty iff Epsilon <= 0.
	Epsilon float64
	// X is one optimal allocation achieving Epsilon.
	X []float64
}

// LeastCore solves the least-core linear program
//
//	minimize ε  s.t.  x(S) >= V(S) − ε  for all proper nonempty S,
//	                  x(N)  = V(N).
//
// Cost is one LP with 2^n − 2 rows; keep n modest (the paper's federations
// have a handful of top-level authorities).
func LeastCore(g Game) (*LeastCoreResult, error) {
	n := g.N()
	if n == 0 {
		return &LeastCoreResult{}, nil
	}
	if n == 1 {
		return &LeastCoreResult{Epsilon: math.Inf(-1), X: []float64{g.Value(combin.Singleton(0))}}, nil
	}
	m := newCoreModel(g, nil)
	sol, err := m.solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("coalition: least-core LP is %v", sol.Status)
	}
	return &LeastCoreResult{Epsilon: -m.t.Value(sol.X), X: m.alloc(sol.X)}, nil
}

// CoreNonempty reports whether the core of g is nonempty, via the least-core
// LP.
func CoreNonempty(g Game) (bool, error) {
	res, err := LeastCore(g)
	if err != nil {
		return false, err
	}
	return res.Epsilon <= 1e-7, nil
}

// coreModel builds the shared LP skeleton used by least-core and nucleolus:
// free variables x_0..x_{n-1} and the free "guarantee" variable t (t = −ε),
// maximizing t subject to x(S) >= V(S) + t for non-fixed coalitions and
// x(S) == V(S) + offset for fixed ones.
type coreModel struct {
	g     Game
	n     int
	xs    []lp.FreeVar
	t     lp.FreeVar
	fixed map[combin.Set]float64 // coalition -> pinned guarantee offset
}

func newCoreModel(g Game, fixed map[combin.Set]float64) *coreModel {
	n := g.N()
	m := &coreModel{g: g, n: n, fixed: fixed}
	m.xs = make([]lp.FreeVar, n)
	for i := 0; i < n; i++ {
		m.xs[i] = lp.FreeVar{Pos: 2 * i, Neg: 2*i + 1}
	}
	m.t = lp.FreeVar{Pos: 2 * n, Neg: 2*n + 1}
	return m
}

func (m *coreModel) cols() int { return 2*m.n + 2 }

// buildProblem assembles the LP maximizing objT·t + Σ objX_i·x_i.
// extraRows appends additional constraints (used by the uniqueness and
// bindingness probes).
func (m *coreModel) buildProblem(objX []float64, objT float64, extraRows func(p *lp.Problem)) *lp.Problem {
	p := lp.NewProblem(m.cols())
	if objX != nil {
		for i, c := range objX {
			m.xs[i].Coeff(p.C, c)
		}
	}
	if objT != 0 {
		m.t.Coeff(p.C, objT)
	}
	// Efficiency: x(N) = V(N).
	row := make([]float64, m.cols())
	for i := 0; i < m.n; i++ {
		m.xs[i].Coeff(row, 1)
	}
	p.AddConstraint(row, lp.EQ, m.g.Value(Grand(m.g)))
	// Coalition constraints.
	combin.AllCoalitions(m.n, func(s combin.Set) bool {
		if s.IsEmpty() || s == Grand(m.g) {
			return true
		}
		row := make([]float64, m.cols())
		for _, i := range s.Members() {
			m.xs[i].Coeff(row, 1)
		}
		if off, ok := m.fixed[s]; ok {
			p.AddConstraint(row, lp.EQ, m.g.Value(s)+off)
		} else {
			m.t.Coeff(row, -1) // x(S) − t >= V(S)
			p.AddConstraint(row, lp.GE, m.g.Value(s))
		}
		return true
	})
	if extraRows != nil {
		extraRows(p)
	}
	return p
}

// solve maximizes t under the model constraints.
func (m *coreModel) solve() (*lp.Solution, error) {
	return m.buildProblem(nil, 1, nil).Solve()
}

func (m *coreModel) alloc(x []float64) []float64 {
	out := make([]float64, m.n)
	for i := range out {
		out[i] = m.xs[i].Value(x)
	}
	return out
}

// tEqualsRow returns a constraint-writer pinning t == tStar.
func (m *coreModel) tEqualsRow(tStar float64) func(p *lp.Problem) {
	return func(p *lp.Problem) {
		row := make([]float64, m.cols())
		m.t.Coeff(row, 1)
		p.AddConstraint(row, lp.EQ, tStar)
	}
}

// Nucleolus computes the nucleolus of g via the standard iterative
// (Maschler-scheme) sequence of linear programs: repeatedly maximize the
// worst guarantee t, pin the coalitions whose constraints bind in every
// optimum, and recurse on the rest until the allocation is unique.
//
// It requires the game to have at least one imputation-like feasible point;
// for the paper's nonnegative-value games this always holds.
func Nucleolus(g Game) ([]float64, error) {
	n := g.N()
	if n == 0 {
		return nil, nil
	}
	if n == 1 {
		return []float64{g.Value(combin.Singleton(0))}, nil
	}
	const tol = 1e-7
	fixed := map[combin.Set]float64{}
	totalProper := (1 << uint(n)) - 2

	for round := 0; round < totalProper+1; round++ {
		m := newCoreModel(g, fixed)
		sol, err := m.solve()
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("coalition: nucleolus LP round %d is %v", round, sol.Status)
		}
		tStar := m.t.Value(sol.X)

		// Uniqueness probe: if every x_i has zero range at t == t*, the
		// current optimal allocation is the nucleolus.
		unique := true
		xBase := m.alloc(sol.X)
		for i := 0; i < n && unique; i++ {
			for _, sign := range []float64{1, -1} {
				obj := make([]float64, n)
				obj[i] = sign
				probe := m.buildProblem(obj, 0, m.tEqualsRow(tStar))
				ps, err := probe.Solve()
				if err != nil {
					return nil, err
				}
				if ps.Status != lp.Optimal {
					return nil, fmt.Errorf("coalition: nucleolus uniqueness probe is %v", ps.Status)
				}
				if math.Abs(m.xs[i].Value(ps.X)-xBase[i]) > tol {
					unique = false
					break
				}
			}
		}
		if unique {
			return xBase, nil
		}

		// Pin every coalition whose guarantee constraint binds in all
		// optimal solutions: S is pinned iff max x(S) at t == t* still
		// equals V(S) + t*.
		pinnedAny := false
		combin.AllCoalitions(n, func(s combin.Set) bool {
			if s.IsEmpty() || s == Grand(g) {
				return true
			}
			if _, ok := fixed[s]; ok {
				return true
			}
			obj := make([]float64, n)
			for _, i := range s.Members() {
				obj[i] = 1
			}
			probe := m.buildProblem(obj, 0, m.tEqualsRow(tStar))
			ps, perr := probe.Solve()
			if perr != nil || ps.Status != lp.Optimal {
				return true // leave unpinned; next round will retry
			}
			if ps.Objective <= g.Value(s)+tStar+tol {
				fixed[s] = tStar
				pinnedAny = true
			}
			return true
		})
		if !pinnedAny {
			// Nothing more to pin but x not unique: numerically stuck.
			return xBase, fmt.Errorf("coalition: nucleolus failed to make progress at round %d", round)
		}
	}
	return nil, fmt.Errorf("coalition: nucleolus did not converge")
}

// EqualSplit returns the equal division of V(N) — the "equity" baseline the
// paper contrasts with contribution-aware rules.
func EqualSplit(g Game) []float64 {
	n := g.N()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	share := g.Value(Grand(g)) / float64(n)
	for i := range out {
		out[i] = share
	}
	return out
}
