package coalition

import "fedshare/internal/combin"

// MemberGame is a coalitional game whose characteristic function is
// evaluated over explicit member lists instead of combin.Set bitmasks. It
// is the interface of the large-n tier: a Set caps the exact engines at 64
// players, while a member list represents coalitions of any size, which is
// what the sampling estimators (ApproxShapley) walk.
//
// Implementations must treat the member slice as read-only and must not
// retain it — the samplers pass reused permutation-prefix buffers. The
// member order carries no meaning; implementations must return the same
// value for any ordering of the same players. V(∅) must be 0, and Value
// calls must be safe for concurrent use (the samplers are parallel).
type MemberGame interface {
	// N returns the number of players.
	N() int
	// ValueMembers returns V(S) for the coalition listing exactly the
	// players in members (no duplicates).
	ValueMembers(members []int) float64
}

// MemberFunc adapts a plain function to the MemberGame interface.
type MemberFunc struct {
	Players int
	V       func(members []int) float64
}

// N implements MemberGame.
func (f MemberFunc) N() int { return f.Players }

// ValueMembers implements MemberGame.
func (f MemberFunc) ValueMembers(members []int) float64 { return f.V(members) }

// memberAdapter lifts a bitmask Game to the MemberGame interface, for
// running the sampling estimators on games defined over combin.Set
// (valid only up to combin.MaxPlayers players).
type memberAdapter struct{ g Game }

// AsMemberGame returns g as a MemberGame, unwrapping games that already
// implement the interface. The adapter requires n ≤ combin.MaxPlayers.
func AsMemberGame(g Game) MemberGame {
	if mg, ok := g.(MemberGame); ok {
		return mg
	}
	return memberAdapter{g: g}
}

// N implements MemberGame.
func (a memberAdapter) N() int { return a.g.N() }

// ValueMembers implements MemberGame.
func (a memberAdapter) ValueMembers(members []int) float64 {
	var s combin.Set
	for _, p := range members {
		s = s.With(p)
	}
	return a.g.Value(s)
}
