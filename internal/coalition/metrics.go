package coalition

import "fedshare/internal/obs"

// Process-wide instrumentation for the coalition engine. SafeCache
// evaluations are counted with one extra atomic add per *distinct*
// coalition evaluation — each of which runs a full characteristic-function
// solve, so the add is noise. Batch sweeps are always counted; durations
// are recorded only for lattices of at least batchTimingMinCoalitions
// entries, because on smaller games the two clock reads would cost more
// than the sweep they time and the histogram would measure the clock, not
// the kernel.
var (
	cacheEvaluations = obs.Default.Counter("fedshare_coalition_cache_evaluations_total",
		"Distinct coalition values computed through SafeCache instances.")
	batchesTotal = obs.Default.Counter("fedshare_coalition_batches_total",
		"Batched coalition-lattice sweeps (BatchedValues and BatchedValuesParallel).")
	batchSeconds = obs.Default.Histogram("fedshare_coalition_batch_seconds",
		"Durations of batched coalition-lattice sweeps over at least 2^8 coalitions.",
		nil)
	shapleySamplesTotal = obs.Default.Counter("fedshare_shapley_samples_total",
		"Permutations evaluated by the sampling Shapley estimators (ApproxShapley and the parallel Monte-Carlo engine).")
	shapleyCIHalfWidth = obs.Default.Gauge("fedshare_shapley_ci_halfwidth",
		"Largest per-player 95% confidence half-width after the most recent ApproxShapley aggregation round.")
)

// batchTimingMinCoalitions is the smallest lattice worth timing: below
// 2^8 coalitions a sweep finishes in well under a microsecond.
const batchTimingMinCoalitions = 1 << 8
