package coalition

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"fedshare/internal/combin"
	"fedshare/internal/stats"
)

// mcStrata is the fixed stratum count of the parallel Monte-Carlo engine.
// Samples are partitioned over strata by sample index — never by worker —
// and stratum summaries merge in index order, so the estimate is
// bit-identical for every worker count.
const mcStrata = 64

// MonteCarloShapleyParallel is the worker-pool form of MonteCarloShapley:
// the sample budget is split into fixed strata, each stratum draws its
// permutations from its own deterministic RNG substream, and the
// per-player stats.Summary accumulators merge in stratum order. Unlike the
// legacy wrapper it reports invalid inputs as errors, and unlike
// ApproxShapley it keeps the plain independent-permutation estimator —
// making it the apples-to-apples parallel twin of the single-threaded
// oracle for estimator cross-validation.
func MonteCarloShapleyParallel(g Game, samples, workers int, seed uint64) (MonteCarloResult, error) {
	n := g.N()
	if samples <= 0 {
		return MonteCarloResult{}, fmt.Errorf("coalition: MonteCarloShapleyParallel needs samples > 0, got %d", samples)
	}
	if n > combin.MaxPlayers {
		return MonteCarloResult{}, fmt.Errorf("coalition: %d players exceed the bitmask engines' %d-player bound; use ApproxShapley", n, combin.MaxPlayers)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > mcStrata {
		workers = mcStrata
	}
	mg := AsMemberGame(g)

	sums := make([][]stats.Summary, mcStrata)
	for s := range sums {
		sums[s] = make([]stats.Summary, n)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			perm := make([]int, n)
			// The shared prefix walker serves both engines: incremental
			// when the (unwrapped) game supports it, the plain
			// ValueMembers loop otherwise — bit-identical either way.
			w := newPrefixWalker(mg, false)
			var acc []stats.Summary
			visit := func(p int, d float64) { acc[p].Add(d) }
			for s := range jobs {
				acc = sums[s]
				for u := s; u < samples; u += mcStrata {
					rng := stats.NewRand(seed + 0x9E3779B97F4A7C15*uint64(u+1))
					for i := range perm {
						perm[i] = i
					}
					rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
					w.walk(perm, false, visit)
				}
			}
		}()
	}
	for s := 0; s < mcStrata; s++ {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	shapleySamplesTotal.Add(int64(samples))

	res := MonteCarloResult{
		Phi:     make([]float64, n),
		StdErr:  make([]float64, n),
		Samples: samples,
	}
	for i := 0; i < n; i++ {
		var merged stats.Summary
		for s := 0; s < mcStrata; s++ {
			merged.Merge(sums[s][i])
		}
		res.Phi[i] = merged.Mean()
		if samples > 1 {
			res.StdErr[i] = merged.Stddev() / math.Sqrt(float64(samples))
		}
	}
	return res, nil
}
