package coalition

import (
	"encoding/json"
	"math"
	"testing"

	"fedshare/internal/combin"
	"fedshare/internal/stats"
)

func TestParallelShapleyMatchesSequential(t *testing.T) {
	rng := stats.NewRand(91)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		vals := make([]float64, 1<<uint(n))
		for i := 1; i < len(vals); i++ {
			vals[i] = rng.Float64() * 100
		}
		g, err := NewTable(n, vals)
		if err != nil {
			t.Fatal(err)
		}
		seq := Shapley(g)
		for _, workers := range []int{0, 1, 2, 16} {
			par := ParallelShapley(g, workers)
			almostEqualVec(t, par, seq, 1e-9, "parallel vs sequential Shapley")
		}
	}
}

func TestParallelShapleyWeights(t *testing.T) {
	// The multiplicative weight computation must agree with the factorial
	// form used by Shapley — additive games expose any weight error.
	w := []float64{2, 3, 5, 7, 11, 13}
	g := additiveGame(w)
	snap, err := Snapshot(g)
	if err != nil {
		t.Fatal(err)
	}
	par := ParallelShapley(snap, 4)
	almostEqualVec(t, par, w, 1e-9, "additive parallel Shapley")
}

// TestParallelShapleyWorkersExceedPlayers pins the post-kernel contract:
// worker count scales with the 2^n coalition range, so asking for far more
// workers than players must still be correct (the legacy per-player path
// silently degraded to n workers; the kernel shards coalition ranges).
func TestParallelShapleyWorkersExceedPlayers(t *testing.T) {
	rng := stats.NewRand(5)
	n := 4
	vals := make([]float64, 1<<uint(n))
	for i := 1; i < len(vals); i++ {
		vals[i] = rng.Float64() * 10
	}
	g, err := NewTable(n, vals)
	if err != nil {
		t.Fatal(err)
	}
	want := ShapleyByPermutation(g)
	for _, workers := range []int{n + 1, 4 * n, 1 << n, 1000} {
		almostEqualVec(t, ParallelShapley(g, workers), want, 1e-9,
			"ParallelShapley with workers >> n")
	}
	// The >24-player fallback still degrades gracefully to n workers.
	big := additiveGame([]float64{1, 2, 3})
	almostEqualVec(t, parallelShapleyPerPlayer(big, 50), []float64{1, 2, 3}, 1e-9,
		"per-player fallback with workers > n")
}

func TestSnapshot(t *testing.T) {
	calls := 0
	g := Func{Players: 4, V: func(s combin.Set) float64 {
		calls++
		return float64(s.Card() * 2)
	}}
	snap, err := Snapshot(g)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 16 {
		t.Errorf("snapshot made %d calls, want 16", calls)
	}
	combin.AllCoalitions(4, func(s combin.Set) bool {
		if snap.Value(s) != float64(s.Card()*2) {
			t.Errorf("snapshot V(%v) = %g", s, snap.Value(s))
		}
		return true
	})
	big := Func{Players: 30, V: func(combin.Set) float64 { return 0 }}
	if _, err := Snapshot(big); err == nil {
		t.Error("oversized snapshot must fail")
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	g, err := NewTable(3, []float64{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Players != 3 {
		t.Errorf("players = %d", back.Players)
	}
	for s := combin.Set(0); s < 8; s++ {
		if back.Value(s) != g.Value(s) {
			t.Errorf("V(%v) mismatch after round trip", s)
		}
	}
	// Shapley survives serialization.
	almostEqualVec(t, Shapley(&back), Shapley(g), 1e-12, "Shapley after round trip")
}

func TestTableJSONRejectsInvalid(t *testing.T) {
	var tb Table
	if err := json.Unmarshal([]byte(`{"players":2,"values":[0,1]}`), &tb); err == nil {
		t.Error("wrong value count must fail")
	}
	if err := json.Unmarshal([]byte(`{"players":2,"values":[1,0,0,0]}`), &tb); err == nil {
		t.Error("nonzero V(empty) must fail")
	}
	if err := json.Unmarshal([]byte(`not json`), &tb); err == nil {
		t.Error("garbage must fail")
	}
}

func BenchmarkParallelShapley16(b *testing.B) {
	g := Func{Players: 16, V: func(s combin.Set) float64 {
		c := float64(s.Card())
		return c * math.Sqrt(c)
	}}
	snap, err := Snapshot(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelShapley(snap, 0)
	}
}

func BenchmarkSequentialShapley16(b *testing.B) {
	g := Func{Players: 16, V: func(s combin.Set) float64 {
		c := float64(s.Card())
		return c * math.Sqrt(c)
	}}
	snap, err := Snapshot(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shapley(snap)
	}
}
