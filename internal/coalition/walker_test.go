package coalition

import (
	"sync/atomic"
	"testing"

	"fedshare/internal/combin"
	"fedshare/internal/stats"
)

// testPrefixGame is an additive game (V = Σ weights) implementing
// PrefixGame, with a counter proving whether the incremental path ran.
type testPrefixGame struct {
	w       []float64
	extends atomic.Int64
}

func (g *testPrefixGame) N() int { return len(g.w) }

// Value implements the bitmask Game interface so the Monte-Carlo engine
// accepts the game; AsMemberGame unwraps it back to the PrefixGame.
func (g *testPrefixGame) Value(s combin.Set) float64 {
	v := 0.0
	for _, p := range s.Members() {
		v += g.w[p]
	}
	return v
}

func (g *testPrefixGame) ValueMembers(members []int) float64 {
	v := 0.0
	for _, p := range members {
		v += g.w[p]
	}
	return v
}

func (g *testPrefixGame) PrefixValuer() PrefixValuer {
	return &testPrefixValuer{g: g}
}

type testPrefixValuer struct {
	g *testPrefixGame
	v float64
}

func (pv *testPrefixValuer) Reset() { pv.v = 0 }

func (pv *testPrefixValuer) Extend(p int) float64 {
	pv.g.extends.Add(1)
	pv.v += pv.g.w[p]
	return pv.v
}

func newTestPrefixGame(n int) *testPrefixGame {
	g := &testPrefixGame{w: make([]float64, n)}
	for i := range g.w {
		g.w[i] = float64(i%7) + 0.25
	}
	return g
}

// TestWalkerIncrementalMatchesGeneric requires bit-identical sampler
// output with the incremental path on and off, and verifies each mode
// actually ran the intended path.
func TestWalkerIncrementalMatchesGeneric(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g := newTestPrefixGame(12)
		opt := ApproxOptions{Samples: 96, Seed: 9, Workers: workers}
		inc, err := ApproxShapley(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if g.extends.Load() == 0 {
			t.Fatal("incremental path never ran on a PrefixGame")
		}

		g2 := newTestPrefixGame(12)
		opt.NoIncremental = true
		gen, err := ApproxShapley(g2, opt)
		if err != nil {
			t.Fatal(err)
		}
		if g2.extends.Load() != 0 {
			t.Fatal("NoIncremental still called Extend")
		}
		for i := range inc.Phi {
			if inc.Phi[i] != gen.Phi[i] {
				t.Fatalf("workers=%d player %d: incremental %.17g, generic %.17g",
					workers, i, inc.Phi[i], gen.Phi[i])
			}
			if inc.CIHalf[i] != gen.CIHalf[i] {
				t.Fatalf("workers=%d player %d: CI differs", workers, i)
			}
		}
	}
}

// TestSetIncrementalEnabled checks the process-wide kill switch.
func TestSetIncrementalEnabled(t *testing.T) {
	prev := SetIncrementalEnabled(false)
	defer SetIncrementalEnabled(prev)

	g := newTestPrefixGame(8)
	if _, err := ApproxShapley(g, ApproxOptions{Samples: 32, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if g.extends.Load() != 0 {
		t.Fatal("kill switch off but Extend ran")
	}
	if on := SetIncrementalEnabled(true); on {
		t.Fatal("SetIncrementalEnabled(true) reported previous state on")
	}
	if _, err := ApproxShapley(g, ApproxOptions{Samples: 32, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if g.extends.Load() == 0 {
		t.Fatal("kill switch on but Extend never ran")
	}
}

// TestWalkerMonteCarloIncremental checks the Monte-Carlo engine runs the
// shared walker's incremental path on PrefixGames, bit-identically to the
// generic path.
func TestWalkerMonteCarloIncremental(t *testing.T) {
	g := newTestPrefixGame(10)
	inc, err := MonteCarloShapleyParallel(g, 200, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.extends.Load() == 0 {
		t.Fatal("incremental path never ran")
	}
	prev := SetIncrementalEnabled(false)
	gen, err := MonteCarloShapleyParallel(g, 200, 4, 7)
	SetIncrementalEnabled(prev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inc.Phi {
		if inc.Phi[i] != gen.Phi[i] {
			t.Fatalf("player %d: incremental %.17g, generic %.17g", i, inc.Phi[i], gen.Phi[i])
		}
	}
}

// TestClassGamePrefixValuer walks random permutations through the
// collapsed game's incremental valuer and requires exact agreement with
// ValueMembers at every prefix (both share the count-vector memo).
func TestClassGamePrefixValuer(t *testing.T) {
	cs := &ClassStructure{
		Mult:    []int{3, 4, 2},
		ClassOf: []int{0, 0, 0, 1, 1, 1, 1, 2, 2},
		Value: func(counts []int) float64 {
			// Submodular-ish nonlinear class game.
			v := 0.0
			for j, c := range counts {
				v += float64((j + 1) * c * (10 - c))
			}
			return v
		},
	}
	mg := cs.MemberGame()
	pg, ok := mg.(PrefixGame)
	if !ok {
		t.Fatal("collapsed game does not implement PrefixGame")
	}
	pv := pg.PrefixValuer()
	if pv == nil {
		t.Fatal("collapsed game returned a nil PrefixValuer")
	}
	rng := stats.NewRand(11)
	n := cs.N()
	for walk := 0; walk < 50; walk++ {
		perm := rng.Perm(n)
		pv.Reset()
		for k := 1; k <= n; k++ {
			got := pv.Extend(perm[k-1])
			if want := mg.ValueMembers(perm[:k]); got != want {
				t.Fatalf("walk %d prefix %d: incremental %.17g, direct %.17g", walk, k, got, want)
			}
		}
	}
}
