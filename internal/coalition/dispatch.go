package coalition

import (
	"fmt"
	"runtime"
)

// Method selects how Values computes the share vector.
type Method string

const (
	// MethodAuto picks the cheapest engine that fits the game: exact
	// lattice kernel when the game is snapshot-eligible, exact symmetry
	// collapse when the collapsed state space is small, sampled collapse
	// otherwise, plain sampling when there is no structure to exploit.
	MethodAuto Method = "auto"
	// MethodExact requires an exact engine (kernel or collapsed lattice)
	// and errors when neither is feasible.
	MethodExact Method = "exact"
	// MethodApprox forces the sampling estimator (composed with symmetry
	// collapse when structure is available).
	MethodApprox Method = "approx"
)

// Engine names reported in ValueResult.Method.
const (
	EngineKernel          = "exact-kernel"
	EngineExactCollapsed  = "exact-collapsed"
	EngineApproxCollapsed = "approx-collapsed"
	EngineApprox          = "approx"
)

// DefaultApproxSamples is the permutation budget used when the sampler is
// dispatched with neither a budget nor a CI target.
const DefaultApproxSamples = 2000

// Options configures the Values dispatcher.
type Options struct {
	// Method picks the engine family; empty means MethodAuto.
	Method Method
	// Workers bounds parallelism in every engine; 0 means GOMAXPROCS.
	Workers int
	// Samples is the sampling permutation budget (see ApproxOptions).
	Samples int
	// CITarget is the absolute adaptive 95% CI half-width target for the
	// sampling engines.
	CITarget float64
	// Seed selects the deterministic sample stream.
	Seed uint64
	// Structure, when non-nil, supplies the interchangeable-player
	// partition; otherwise Values asks the game itself via the
	// ClassStructured interface.
	Structure *ClassStructure
	// NoIncremental disables the incremental prefix-evaluation path in
	// the sampling engines (bit-identical results either way; see
	// ApproxOptions.NoIncremental).
	NoIncremental bool
}

// ClassStructured is implemented by games that can expose their
// interchangeable-player structure (core.Model does). A nil return means
// no usable structure.
type ClassStructured interface {
	ClassStructure() *ClassStructure
}

// ValueResult is a share computation with its provenance: which engine
// ran, and — for sampled engines — how uncertain the estimate is.
type ValueResult struct {
	// Phi is the (estimated or exact) Shapley value per player.
	Phi []float64
	// CIHalf is the per-player 95% confidence half-width; nil for the
	// exact engines.
	CIHalf []float64
	// Samples is the number of permutations evaluated (0 for exact).
	Samples int
	// Method names the engine that produced Phi (Engine* constants).
	Method string
	// Converged reports whether a requested CI target was met (always
	// true for exact engines and fixed sampling budgets).
	Converged bool
}

// Values computes Shapley values through the engine the game's size and
// structure call for. This is the single entry point the model, scenario,
// and figure layers use: a 3-facility paper figure and a 500-facility
// federation take the same call and differ only in which engine answers.
func Values(g MemberGame, opt Options) (*ValueResult, error) {
	n := g.N()
	if n == 0 {
		return &ValueResult{Method: EngineKernel, Converged: true}, nil
	}
	method := opt.Method
	if method == "" {
		method = MethodAuto
	}
	switch method {
	case MethodAuto, MethodExact, MethodApprox:
	default:
		return nil, fmt.Errorf("coalition: unknown method %q", opt.Method)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Exact lattice kernel: the fastest engine whenever the 2^n table
	// fits. The game must additionally implement the bitmask interface.
	if method != MethodApprox && n <= snapshotMaxPlayers {
		if bg, ok := g.(Game); ok {
			if b, err := ParallelBatched(bg, workers); err == nil {
				return &ValueResult{Phi: b.Shapley, Method: EngineKernel, Converged: true}, nil
			}
		}
	}

	st := opt.Structure
	if st == nil {
		if cs, ok := g.(ClassStructured); ok {
			st = cs.ClassStructure()
		}
	}
	// A partition that does not actually collapse anything buys no exact
	// feasibility and no pooling; treat it as unstructured.
	if st != nil && st.K() >= n {
		st = nil
	}

	if st != nil && method != MethodApprox && st.States() <= exactClassMaxStates {
		phi, err := ExactShapley(st)
		if err != nil {
			return nil, err
		}
		return &ValueResult{Phi: phi, Method: EngineExactCollapsed, Converged: true}, nil
	}
	if method == MethodExact {
		states := "no class structure"
		if st != nil {
			states = fmt.Sprintf("collapsed state space %.3g", st.States())
		}
		return nil, fmt.Errorf("coalition: no exact engine for %d players (%s); use method approx", n, states)
	}

	aopt := ApproxOptions{
		Samples: opt.Samples, CITarget: opt.CITarget,
		Workers: opt.Workers, Seed: opt.Seed,
		NoIncremental: opt.NoIncremental,
	}
	if aopt.Samples == 0 && aopt.CITarget == 0 {
		aopt.Samples = DefaultApproxSamples
	}
	target, engine := g, EngineApprox
	if st != nil {
		target, engine = st.MemberGame(), EngineApproxCollapsed
		aopt.Groups = st.Groups()
	}
	res, err := ApproxShapley(target, aopt)
	if err != nil {
		return nil, err
	}
	return &ValueResult{
		Phi: res.Phi, CIHalf: res.CIHalf, Samples: res.Samples,
		Method: engine, Converged: res.Converged,
	}, nil
}
