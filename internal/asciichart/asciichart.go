// Package asciichart renders (x, y) series as terminal line charts so the
// fedsim CLI can show the paper's figures without any graphics dependency.
package asciichart

import (
	"fmt"
	"math"
	"strings"

	"fedshare/internal/stats"
)

// Options controls rendering.
type Options struct {
	Width  int // plot columns (default 72)
	Height int // plot rows (default 20)
}

// markers cycles per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$'}

// Render draws the series onto a shared canvas with y axis labels and a
// legend. Series may have different x grids; the canvas spans the union
// range. Empty input returns an empty string.
func Render(series []stats.Series, opts Options) string {
	if len(series) == 0 {
		return ""
	}
	w := opts.Width
	if w <= 0 {
		w = 72
	}
	h := opts.Height
	if h <= 0 {
		h = 20
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for _, p := range s.Points {
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
			points++
		}
	}
	if points == 0 {
		return ""
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	canvas := make([][]byte, h)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for _, p := range s.Points {
			col := int(math.Round((p.X - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((p.Y-ymin)/(ymax-ymin)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				canvas[row][col] = mark
			}
		}
	}

	var b strings.Builder
	for r, line := range canvas {
		yVal := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%10.3g |%s\n", yVal, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*g%*g\n", "", w/2, xmin, w-w/2, xmax)
	b.WriteString("  legend:")
	for si, s := range series {
		fmt.Fprintf(&b, "  %c=%s", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}
