package asciichart

import (
	"strings"
	"testing"

	"fedshare/internal/stats"
)

func TestRenderBasics(t *testing.T) {
	a := stats.Series{Name: "up"}
	b := stats.Series{Name: "down"}
	for i := 0; i <= 10; i++ {
		a.Add(float64(i), float64(i))
		b.Add(float64(i), float64(10-i))
	}
	out := Render([]stats.Series{a, b}, Options{Width: 40, Height: 10})
	if out == "" {
		t.Fatal("empty render")
	}
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "o=down") {
		t.Errorf("legend missing: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 10 rows + axis + x labels + legend.
	if len(lines) != 13 {
		t.Errorf("got %d lines, want 13", len(lines))
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing from canvas")
	}
}

func TestRenderEmpty(t *testing.T) {
	if Render(nil, Options{}) != "" {
		t.Error("nil series should render empty")
	}
	empty := stats.Series{Name: "e"}
	if Render([]stats.Series{empty}, Options{}) != "" {
		t.Error("series without points should render empty")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := stats.Series{Name: "flat"}
	s.Add(0, 5)
	s.Add(1, 5)
	out := Render([]stats.Series{s}, Options{Width: 20, Height: 5})
	if out == "" {
		t.Fatal("flat series should still render")
	}
	if !strings.Contains(out, "*") {
		t.Error("flat series markers missing")
	}
}

func TestDefaultDimensions(t *testing.T) {
	s := stats.Series{Name: "x"}
	s.Add(0, 0)
	s.Add(1, 1)
	out := Render([]stats.Series{s}, Options{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 23 { // 20 rows + 3
		t.Errorf("default height: got %d lines", len(lines))
	}
}
