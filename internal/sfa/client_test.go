package sfa

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedshare/internal/obs"
	"fedshare/internal/stats"
)

// frameServer is a scriptable SFA wire endpoint: each accepted connection is
// handed to handler together with its 1-based accept index, so tests can make
// the first connection misbehave and the second behave.
type frameServer struct {
	ln net.Listener
}

func newFrameServer(t *testing.T, handler func(conn net.Conn, idx int)) *frameServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		idx := 0
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			idx++
			go handler(conn, idx)
		}
	}()
	return &frameServer{ln: ln}
}

func (f *frameServer) addr() string { return f.ln.Addr().String() }

// echoFrames answers every request with an empty success result.
func echoFrames(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		env, err := ReadFrame(r)
		if err != nil {
			return
		}
		resp := &Envelope{ID: env.ID, Result: marshal(Empty{})}
		if WriteFrame(w, resp) != nil || w.Flush() != nil {
			return
		}
	}
}

// TestTimedOutCallRedialsCleanly is the connection-poisoning regression: the
// first call times out while the server is still composing its response; the
// old client kept the connection (and eventually the stale response bytes) in
// its buffered reader, corrupting the next call. The resilient client breaks
// the connection on timeout, so an immediate follow-up call succeeds over a
// fresh one.
func TestTimedOutCallRedialsCleanly(t *testing.T) {
	fs := newFrameServer(t, func(conn net.Conn, idx int) {
		if idx == 1 {
			// Too slow: respond only after the client's deadline, then the
			// stale bytes land on a connection the client must not reuse.
			defer conn.Close()
			r := bufio.NewReader(conn)
			env, err := ReadFrame(r)
			if err != nil {
				return
			}
			time.Sleep(300 * time.Millisecond)
			w := bufio.NewWriter(conn)
			_ = WriteFrame(w, &Envelope{ID: env.ID, Result: marshal(Empty{})})
			_ = w.Flush()
			return
		}
		echoFrames(conn)
	})
	c := NewClient(ClientConfig{
		Addr: fs.addr(), CallTimeout: 60 * time.Millisecond,
		MaxAttempts: 1, Registry: obs.NewRegistry(),
	})
	defer c.Close()
	if err := c.Call(MethodPing, nil, nil); err == nil {
		t.Fatal("first call should time out")
	}
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Fatalf("follow-up call after timeout: %v (connection poisoned?)", err)
	}
	st := c.Stats()
	if st.Dials != 2 || st.Redials != 1 {
		t.Errorf("stats = %+v, want 2 dials / 1 redial", st)
	}
}

func TestRemoteErrorNotRetried(t *testing.T) {
	var served atomic.Int64
	fs := newFrameServer(t, func(conn net.Conn, idx int) {
		defer conn.Close()
		r := bufio.NewReader(conn)
		w := bufio.NewWriter(conn)
		for {
			env, err := ReadFrame(r)
			if err != nil {
				return
			}
			served.Add(1)
			_ = WriteFrame(w, &Envelope{ID: env.ID, Error: "boom"})
			if w.Flush() != nil {
				return
			}
		}
	})
	c := NewClient(ClientConfig{
		Addr: fs.addr(), MaxAttempts: 3, RetryBase: time.Millisecond,
		Registry: obs.NewRegistry(),
	})
	defer c.Close()
	err := c.Call(MethodPing, nil, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Msg != "boom" {
		t.Fatalf("err = %v, want RemoteError(boom)", err)
	}
	if n := served.Load(); n != 1 {
		t.Errorf("server executed the request %d times; remote errors must not be retried", n)
	}
	if st := c.Stats(); st.Retries != 0 {
		t.Errorf("stats = %+v, want 0 retries", st)
	}
}

func TestMismatchedResponseIDRetriesOnFreshConn(t *testing.T) {
	fs := newFrameServer(t, func(conn net.Conn, idx int) {
		if idx == 1 {
			defer conn.Close()
			r := bufio.NewReader(conn)
			w := bufio.NewWriter(conn)
			env, err := ReadFrame(r)
			if err != nil {
				return
			}
			// A desynchronized stream: wrong correlation ID.
			_ = WriteFrame(w, &Envelope{ID: env.ID + 999, Result: marshal(Empty{})})
			_ = w.Flush()
			return
		}
		echoFrames(conn)
	})
	c := NewClient(ClientConfig{
		Addr: fs.addr(), MaxAttempts: 2, RetryBase: time.Millisecond,
		Registry: obs.NewRegistry(),
	})
	defer c.Close()
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Fatalf("call should recover on a fresh connection: %v", err)
	}
	st := c.Stats()
	if st.Retries != 1 || st.Redials != 1 {
		t.Errorf("stats = %+v, want 1 retry / 1 redial", st)
	}
}

func TestTransientDialFailuresRetried(t *testing.T) {
	fs := newFrameServer(t, func(conn net.Conn, idx int) { echoFrames(conn) })
	var dials atomic.Int64
	c := NewClient(ClientConfig{
		Addr: fs.addr(), MaxAttempts: 4, RetryBase: time.Millisecond,
		Registry: obs.NewRegistry(),
		DialFunc: func(addr string, timeout time.Duration) (net.Conn, error) {
			if dials.Add(1) <= 2 {
				return nil, errors.New("connection refused (simulated)")
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
	})
	defer c.Close()
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Fatalf("call should succeed on third dial: %v", err)
	}
	if st := c.Stats(); st.Retries != 2 || st.Dials != 1 {
		t.Errorf("stats = %+v, want 2 retries and 1 successful dial", st)
	}
}

func TestCircuitBreakerFailsFastAndRecovers(t *testing.T) {
	fs := newFrameServer(t, func(conn net.Conn, idx int) { echoFrames(conn) })
	var failDials atomic.Bool
	failDials.Store(true)
	now := time.Unix(1000, 0)
	c := NewClient(ClientConfig{
		Addr: fs.addr(), MaxAttempts: 1,
		BreakerThreshold: 2, BreakerCooldown: time.Minute,
		Registry: obs.NewRegistry(),
		Now:      func() time.Time { return now },
		DialFunc: func(addr string, timeout time.Duration) (net.Conn, error) {
			if failDials.Load() {
				return nil, errors.New("host unreachable (simulated)")
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
	})
	defer c.Close()
	for i := 0; i < 2; i++ {
		if err := c.Call(MethodPing, nil, nil); err == nil {
			t.Fatalf("call %d should fail while dials fail", i)
		}
	}
	// Threshold reached: the breaker is open and rejects without dialing.
	err := c.Call(MethodPing, nil, nil)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	// The peer recovers, but the cooldown has not elapsed yet.
	failDials.Store(false)
	if err := c.Call(MethodPing, nil, nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("before cooldown: err = %v, want ErrCircuitOpen", err)
	}
	// After the cooldown a half-open probe goes through and closes the
	// breaker again.
	now = now.Add(2 * time.Minute)
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Fatalf("half-open probe should succeed: %v", err)
	}
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Fatalf("breaker should be closed again: %v", err)
	}
}

func TestOpenBreakerFailsFastWithoutBackoffSleep(t *testing.T) {
	var sleeps atomic.Int64
	now := time.Unix(1000, 0)
	c := NewClient(ClientConfig{
		Addr: "127.0.0.1:1", MaxAttempts: 3, RetryBase: time.Millisecond,
		BreakerThreshold: 1, BreakerCooldown: time.Minute,
		Registry: obs.NewRegistry(),
		Now:      func() time.Time { return now },
		Sleep:    func(time.Duration) { sleeps.Add(1) },
		DialFunc: func(addr string, timeout time.Duration) (net.Conn, error) {
			return nil, errors.New("host down (simulated)")
		},
	})
	defer c.Close()
	// Attempt 1 fails and opens the breaker (threshold 1). The retry loop
	// must consult the breaker before backing off, failing fast instead of
	// sleeping toward a call that would be rejected anyway.
	if err := c.Call(MethodPing, nil, nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if n := sleeps.Load(); n != 0 {
		t.Errorf("slept %d times against an open breaker, want 0", n)
	}
}

func TestConcurrentCallersShareOneConnection(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLC", 1, 1, 1), WithMetrics(obs.NewRegistry()))
	c := NewClient(ClientConfig{Addr: srv.Addr(), Registry: obs.NewRegistry()})
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 80)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				errs <- c.Call(MethodPing, nil, nil)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent call: %v", err)
		}
	}
	if st := c.Stats(); st.Dials != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v, want exactly 1 dial and 0 retries", st)
	}
}

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	a, b := stats.NewRand(7), stats.NewRand(7)
	for attempt := 1; attempt <= 8; attempt++ {
		da := backoffDelay(base, max, attempt, a)
		db := backoffDelay(base, max, attempt, b)
		if da != db {
			t.Fatalf("attempt %d: %s vs %s — jitter not deterministic", attempt, da, db)
		}
		d := base
		for i := 1; i < attempt && d < max; i++ {
			d *= 2
		}
		if d > max {
			d = max
		}
		if da < d/2 || da >= d {
			t.Errorf("attempt %d: delay %s outside [%s, %s)", attempt, da, d/2, d)
		}
	}
}
