package sfa

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"
)

// Credential is an HMAC-signed capability: the federation's trust root
// (a shared secret among the top-level authorities, standing in for SFA's
// certificate chains) signs (subject, authority, expiry).
type Credential struct {
	Subject   string `json:"subject"`   // user or peer authority name
	Authority string `json:"authority"` // issuing authority
	Expires   int64  `json:"expires"`   // unix seconds
	Signature string `json:"signature"` // hex HMAC-SHA256
}

func credentialDigest(secret []byte, subject, authority string, expires int64) string {
	mac := hmac.New(sha256.New, secret)
	fmt.Fprintf(mac, "%s\x00%s\x00%d", subject, authority, expires)
	return hex.EncodeToString(mac.Sum(nil))
}

// IssueCredential signs a credential valid for ttl.
func IssueCredential(secret []byte, subject, authority string, ttl time.Duration) Credential {
	exp := time.Now().Add(ttl).Unix()
	return Credential{
		Subject:   subject,
		Authority: authority,
		Expires:   exp,
		Signature: credentialDigest(secret, subject, authority, exp),
	}
}

// Verify checks the signature and expiry against the shared secret.
func (c Credential) Verify(secret []byte, now time.Time) error {
	if now.Unix() > c.Expires {
		return fmt.Errorf("sfa: credential for %s expired", c.Subject)
	}
	want := credentialDigest(secret, c.Subject, c.Authority, c.Expires)
	got, err := hex.DecodeString(c.Signature)
	if err != nil {
		return fmt.Errorf("sfa: malformed credential signature")
	}
	wantRaw, _ := hex.DecodeString(want)
	if !hmac.Equal(got, wantRaw) {
		return fmt.Errorf("sfa: credential signature mismatch for %s", c.Subject)
	}
	return nil
}
