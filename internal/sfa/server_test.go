package sfa

import (
	"fmt"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"fedshare/internal/economics"
	"fedshare/internal/planetlab"
)

var testSecret = []byte("test-federation-root")

func quietLog(string, ...interface{}) {}

// buildAuthority creates an authority with the given number of sites, each
// with nodes*capacity sliver slots.
func buildAuthority(t *testing.T, name string, sites, nodes, capacity int) *planetlab.Authority {
	t.Helper()
	a := planetlab.NewAuthority(name)
	for s := 0; s < sites; s++ {
		site := &planetlab.Site{
			ID:   fmt.Sprintf("%s-site%d", name, s),
			Name: fmt.Sprintf("%s site %d", name, s),
		}
		for n := 0; n < nodes; n++ {
			site.Nodes = append(site.Nodes, planetlab.Node{
				ID: fmt.Sprintf("node%d", n), Capacity: capacity,
			})
		}
		if err := a.AddSite(site); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func startServer(t *testing.T, auth *planetlab.Authority, opts ...Option) *Server {
	t.Helper()
	opts = append([]Option{WithLogger(quietLog)}, opts...) // default quiet; caller opts win
	srv := NewServer(auth, testSecret, opts...)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func dialServer(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func userCred() Credential {
	return IssueCredential(testSecret, "tester", "test", time.Minute)
}

func TestPingAndRecord(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLC", 3, 2, 2))
	c := dialServer(t, srv)
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Fatalf("ping: %v", err)
	}
	var rec AuthorityRecord
	if err := c.Call(MethodGetRecord, nil, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "PLC" || rec.Sites != 3 {
		t.Errorf("record = %+v", rec)
	}
}

func TestUnknownMethod(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLC", 1, 1, 1))
	c := dialServer(t, srv)
	err := c.Call("sfa.Nope", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("err = %v", err)
	}
	// The connection stays usable after a method error.
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Errorf("ping after error: %v", err)
	}
}

func TestListResources(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLE", 2, 3, 4))
	c := dialServer(t, srv)
	var rl ResourceList
	if err := c.Call(MethodListResources, Empty{}, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Authority != "PLE" || len(rl.Sites) != 2 {
		t.Fatalf("resource list = %+v", rl)
	}
	for _, s := range rl.Sites {
		if s.Capacity != 12 || s.Free != 12 || s.Nodes != 3 {
			t.Errorf("site = %+v", s)
		}
	}
}

func TestLocalSliceLifecycle(t *testing.T) {
	auth := buildAuthority(t, "PLC", 4, 1, 2)
	srv := startServer(t, auth)
	c := dialServer(t, srv)
	var resp SliceResponse
	err := c.Call(MethodCreateSlice, SliceRequest{
		Credential: userCred(), Name: "exp1", Owner: "alice", MinSites: 3,
	}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sites != 4 {
		t.Errorf("slice spans %d sites, want all 4", resp.Sites)
	}
	// Credential is required.
	err = c.Call(MethodCreateSlice, SliceRequest{Name: "exp2", MinSites: 1}, nil)
	if err == nil {
		t.Error("missing credential must fail")
	}
	// Duplicate name.
	err = c.Call(MethodCreateSlice, SliceRequest{
		Credential: userCred(), Name: "exp1", MinSites: 1,
	}, nil)
	if err == nil {
		t.Error("duplicate slice must fail")
	}
	// Delete frees capacity.
	if err := c.Call(MethodDeleteSlice, DeleteRequest{Credential: userCred(), Name: "exp1"}, nil); err != nil {
		t.Fatal(err)
	}
	if auth.Utilization() != 0 {
		t.Errorf("utilization %g after delete", auth.Utilization())
	}
}

// federate starts n authorities and fully peers them.
func federate(t *testing.T, specs map[string][3]int, opts ...Option) map[string]*Server {
	t.Helper()
	servers := map[string]*Server{}
	for name, dim := range specs {
		servers[name] = startServer(t, buildAuthority(t, name, dim[0], dim[1], dim[2]), opts...)
	}
	names := make([]string, 0, len(servers))
	for n := range servers {
		names = append(names, n)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if err := servers[names[i]].PeerWith(servers[names[j]].Addr()); err != nil {
				t.Fatalf("peer %s->%s: %v", names[i], names[j], err)
			}
		}
	}
	return servers
}

func TestPeering(t *testing.T) {
	servers := federate(t, map[string][3]int{
		"PLC": {3, 2, 2}, "PLE": {2, 2, 2}, "PLJ": {1, 2, 2},
	})
	for name, srv := range servers {
		peers := srv.Peers()
		if len(peers) != 2 {
			t.Errorf("%s has peers %v, want 2", name, peers)
		}
	}
}

func TestFederatedSliceEmbedding(t *testing.T) {
	// PLC alone has 3 sites; a slice needing 5 must span the federation.
	servers := federate(t, map[string][3]int{
		"PLC": {3, 1, 1}, "PLE": {2, 1, 1}, "PLJ": {2, 1, 1},
	})
	c := dialServer(t, servers["PLC"])
	var resp SliceResponse
	err := c.Call(MethodCreateSlice, SliceRequest{
		Credential: userCred(), Name: "global", Owner: "alice", MinSites: 5,
	}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sites < 5 {
		t.Fatalf("federated slice spans %d sites, want >= 5", resp.Sites)
	}
	authSeen := map[string]bool{}
	for _, sv := range resp.Slivers {
		authSeen[sv.Authority] = true
	}
	if len(authSeen) < 2 {
		t.Errorf("slice should span multiple authorities: %v", authSeen)
	}
	// Deleting releases remote slivers too.
	if err := c.Call(MethodDeleteSlice, DeleteRequest{Credential: userCred(), Name: "global"}, nil); err != nil {
		t.Fatal(err)
	}
	var rl ResourceList
	c2 := dialServer(t, servers["PLE"])
	if err := c2.Call(MethodListResources, Empty{}, &rl); err != nil {
		t.Fatal(err)
	}
	for _, s := range rl.Sites {
		if s.Free != s.Capacity {
			t.Errorf("PLE site %s not fully released: free %d of %d", s.SiteID, s.Free, s.Capacity)
		}
	}
}

func TestFederatedSliceInfeasible(t *testing.T) {
	servers := federate(t, map[string][3]int{
		"PLC": {2, 1, 1}, "PLE": {2, 1, 1},
	})
	c := dialServer(t, servers["PLC"])
	err := c.Call(MethodCreateSlice, SliceRequest{
		Credential: userCred(), Name: "huge", MinSites: 10,
	}, nil)
	if err == nil {
		t.Fatal("infeasible diversity must fail")
	}
	// Everything rolled back.
	for name, srv := range servers {
		c := dialServer(t, srv)
		var rl ResourceList
		if err := c.Call(MethodListResources, Empty{}, &rl); err != nil {
			t.Fatal(err)
		}
		for _, s := range rl.Sites {
			if s.Free != s.Capacity {
				t.Errorf("%s site %s leaked slivers after rollback", name, s.SiteID)
			}
		}
	}
}

func TestGetSharesOverNetwork(t *testing.T) {
	// Three authorities mirroring the paper's L = (100, 400, 800) at small
	// scale: sites 1, 4, 8 with equal per-site capacity, and a demand
	// profile of one experiment needing 5 sites.
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "probe", MinLocations: 5, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	servers := federate(t, map[string][3]int{
		"PLC": {1, 1, 1}, "PLE": {4, 1, 1}, "PLJ": {8, 1, 1},
	}, WithDemand(wl))
	c := dialServer(t, servers["PLC"])
	var resp SharesResponse
	if err := c.Call(MethodGetShares, SharesRequest{Policy: "shapley"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Policy != "shapley" {
		t.Errorf("policy = %s", resp.Policy)
	}
	if resp.GrandValue != 13 {
		t.Errorf("grand value %g, want 13", resp.GrandValue)
	}
	sum := 0.0
	for _, s := range resp.Shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %g", sum)
	}
	// Scaled Fig-4 logic: with l = 5 (analogous to l = 500 at 1:100), the
	// non-strict shares are (4/39, 17/78, 53/78).
	if math.Abs(resp.Shares["PLE"]-17.0/78) > 1e-9 {
		t.Errorf("PLE share %g, want %g", resp.Shares["PLE"], 17.0/78)
	}
	// All servers agree on the shares regardless of which one answers.
	c2 := dialServer(t, servers["PLJ"])
	var resp2 SharesResponse
	if err := c2.Call(MethodGetShares, SharesRequest{Policy: "shapley"}, &resp2); err != nil {
		t.Fatal(err)
	}
	for name, s := range resp.Shares {
		if math.Abs(resp2.Shares[name]-s) > 1e-9 {
			t.Errorf("share disagreement for %s: %g vs %g", name, s, resp2.Shares[name])
		}
	}
}

func TestGetSharesPolicies(t *testing.T) {
	servers := federate(t, map[string][3]int{
		"PLC": {2, 1, 1}, "PLE": {3, 1, 1},
	})
	c := dialServer(t, servers["PLC"])
	for _, pol := range []string{"shapley", "proportional", "consumption", "equal", "nucleolus", "banzhaf", ""} {
		var resp SharesResponse
		if err := c.Call(MethodGetShares, SharesRequest{Policy: pol}, &resp); err != nil {
			t.Errorf("policy %q: %v", pol, err)
		}
	}
	if err := c.Call(MethodGetShares, SharesRequest{Policy: "bogus"}, nil); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestPeerRequiresCredential(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLC", 1, 1, 1))
	c := dialServer(t, srv)
	err := c.Call(MethodPeer, PeerRequest{
		Record: AuthorityRecord{Name: "evil", Addr: "127.0.0.1:1"},
	}, nil)
	if err == nil {
		t.Error("peering without credential must fail")
	}
	badCred := IssueCredential([]byte("wrong secret"), "evil", "evil", time.Minute)
	err = c.Call(MethodPeer, PeerRequest{
		Record:     AuthorityRecord{Name: "evil", Addr: "127.0.0.1:1"},
		Credential: badCred,
	}, nil)
	if err == nil {
		t.Error("peering with wrong secret must fail")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLC", 8, 2, 4))
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			c, err := Dial(srv.Addr(), 5*time.Second)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for k := 0; k < 10; k++ {
				var resp SliceResponse
				name := fmt.Sprintf("c%d-s%d", i, k)
				if err := c.Call(MethodCreateSlice, SliceRequest{
					Credential: userCred(), Name: name, MinSites: 1, MaxSites: 2,
				}, &resp); err != nil {
					done <- fmt.Errorf("create %s: %w", name, err)
					return
				}
				if err := c.Call(MethodDeleteSlice, DeleteRequest{
					Credential: userCred(), Name: name,
				}, nil); err != nil {
					done <- fmt.Errorf("delete %s: %w", name, err)
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLC", 1, 1, 1))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func BenchmarkPingRoundTrip(b *testing.B) {
	auth := planetlab.NewAuthority("bench")
	srv := NewServer(auth, testSecret, WithLogger(quietLog))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Call(MethodPing, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUsageAccounting(t *testing.T) {
	servers := federate(t, map[string][3]int{
		"PLC": {3, 1, 2}, "PLE": {5, 1, 2},
	})
	c := dialServer(t, servers["PLC"])
	// Before any slices: empty usage.
	var usage UsageResponse
	if err := c.Call(MethodGetUsage, Empty{}, &usage); err != nil {
		t.Fatal(err)
	}
	if usage.SlicesEmbedded != 0 || len(usage.CumulativeSlivers) != 0 {
		t.Errorf("fresh registry has usage %+v", usage)
	}
	// Embed two federated slices.
	for i, min := range []int{5, 8} {
		var resp SliceResponse
		if err := c.Call(MethodCreateSlice, SliceRequest{
			Credential: userCred(), Name: fmt.Sprintf("s%d", i), MinSites: min,
		}, &resp); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Call(MethodGetUsage, Empty{}, &usage); err != nil {
		t.Fatal(err)
	}
	if usage.SlicesEmbedded != 2 {
		t.Errorf("embedded = %d, want 2", usage.SlicesEmbedded)
	}
	if usage.CumulativeSlivers["PLC"] == 0 || usage.CumulativeSlivers["PLE"] == 0 {
		t.Errorf("both authorities should have served slivers: %+v", usage.CumulativeSlivers)
	}
	sum := 0.0
	for _, s := range usage.MeasuredShares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("measured shares sum to %g", sum)
	}
	// Cumulative usage survives slice deletion.
	if err := c.Call(MethodDeleteSlice, DeleteRequest{Credential: userCred(), Name: "s0"}, nil); err != nil {
		t.Fatal(err)
	}
	var after UsageResponse
	if err := c.Call(MethodGetUsage, Empty{}, &after); err != nil {
		t.Fatal(err)
	}
	if after.CumulativeSlivers["PLE"] != usage.CumulativeSlivers["PLE"] {
		t.Error("cumulative usage must not shrink on delete")
	}
}

// netDial is a tiny helper for raw-connection tests.
func netDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 2*time.Second)
}

func TestPeerFailureDegradesGracefully(t *testing.T) {
	servers := federate(t, map[string][3]int{
		"PLC": {3, 1, 1}, "PLE": {4, 1, 1},
	})
	// Kill PLE mid-federation.
	if err := servers["PLE"].Close(); err != nil {
		t.Fatal(err)
	}
	c := dialServer(t, servers["PLC"])

	// A slice feasible on local sites alone still embeds.
	var resp SliceResponse
	if err := c.Call(MethodCreateSlice, SliceRequest{
		Credential: userCred(), Name: "local-ok", MinSites: 2,
	}, &resp); err != nil {
		t.Fatalf("local slice should survive peer death: %v", err)
	}
	if resp.Sites < 2 {
		t.Errorf("sites = %d", resp.Sites)
	}
	if err := c.Call(MethodDeleteSlice, DeleteRequest{Credential: userCred(), Name: "local-ok"}, nil); err != nil {
		t.Fatal(err)
	}

	// A slice needing the dead peer fails cleanly and leaks nothing.
	err := c.Call(MethodCreateSlice, SliceRequest{
		Credential: userCred(), Name: "needs-peer", MinSites: 6,
	}, nil)
	if err == nil {
		t.Fatal("slice requiring dead peer must fail")
	}
	var rl ResourceList
	if err := c.Call(MethodListResources, Empty{}, &rl); err != nil {
		t.Fatal(err)
	}
	for _, s := range rl.Sites {
		if s.Free != s.Capacity {
			t.Errorf("site %s leaked slivers after failed federation: %d/%d",
				s.SiteID, s.Free, s.Capacity)
		}
	}

	// Shares computation degrades instead of failing: it prices the live
	// sub-federation and flags the result as partial, naming the dead peer.
	var shares SharesResponse
	if err := c.Call(MethodGetShares, SharesRequest{Policy: "shapley"}, &shares); err != nil {
		t.Fatalf("GetShares with a dead peer should degrade, not fail: %v", err)
	}
	if !shares.Partial {
		t.Error("shares with a dead peer should carry the partial marker")
	}
	if len(shares.Down) != 1 || shares.Down[0] != "PLE" {
		t.Errorf("down = %v, want [PLE]", shares.Down)
	}
	if _, ok := shares.Shares["PLE"]; ok {
		t.Error("dead peer must not receive a share")
	}
	if sh, ok := shares.Shares["PLC"]; !ok || sh <= 0 {
		t.Errorf("live sub-federation share for PLC = %v, %v", sh, ok)
	}
}
