package sfa

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file implements anti-entropy reconciliation: when a peer partitions
// away, the coordinator queues the operations it could not deliver; when a
// probe reaches the peer again, a reconciler (1) replays the backlog under
// the operations' original idempotency keys, (2) diffs the peer's live
// holdings against the coordinator's intent (remoteRefs) — retiring
// orphaned slivers at the peer and dropping intent the peer lost — and
// (3) verifies holdings == intent before the peer is readmitted to share
// computation. Idempotency keys (PR 5) make replays exactly-once; the
// durable OpGen high-water mark (PR 8) guarantees retire keys drawn after
// a coordinator restart never collide with keys already seen by the peer.

// pendingOp is one undelivered operation queued for replay. The credential
// is re-issued at replay time (the original would have expired); the
// original idempotency key is preserved so a request that DID reach the
// peer before the partition replays its cached outcome instead of
// re-executing.
type pendingOp struct {
	method  string // MethodReserve or MethodRelease
	slice   string
	key     string
	reserve *ReserveRequest
	release *ReleaseRequest
}

// reconciler holds the per-peer backlog of undelivered operations.
type reconciler struct {
	mu      sync.Mutex
	backlog map[string][]pendingOp
}

func newReconciler() *reconciler {
	return &reconciler{backlog: map[string][]pendingOp{}}
}

func (r *reconciler) enqueue(peer string, op pendingOp) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.backlog[peer] = append(r.backlog[peer], op)
	return len(r.backlog[peer])
}

// take removes and returns the peer's entire backlog in FIFO order.
func (r *reconciler) take(peer string) []pendingOp {
	r.mu.Lock()
	defer r.mu.Unlock()
	ops := r.backlog[peer]
	delete(r.backlog, peer)
	return ops
}

// requeueFront puts unreplayed operations back at the head of the backlog,
// ahead of anything enqueued while the reconciler was running.
func (r *reconciler) requeueFront(peer string, ops []pendingOp) {
	if len(ops) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.backlog[peer] = append(append([]pendingOp(nil), ops...), r.backlog[peer]...)
}

func (r *reconciler) depth(peer string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.backlog[peer])
}

// sliverKey identifies a sliver for intent/holdings comparison.
func sliverKey(slice string, sv SliverRecord) string {
	return slice + "\x00" + sv.SiteID + "\x00" + sv.NodeID
}

// remoteIntent returns the coordinator's intended holdings at peer:
// slice -> slivers, extracted from remoteRefs.
func (s *Server) remoteIntent(peer string) map[string][]SliverRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string][]SliverRecord{}
	for slice, svs := range s.remoteRefs {
		for _, sv := range svs {
			if sv.Authority == peer {
				out[slice] = append(out[slice], sv)
			}
		}
	}
	return out
}

// amendIntent drops lost slivers (held in intent but no longer at the
// peer) from remoteRefs, durably recording the corrected per-slice sets.
func (s *Server) amendIntent(peer string, lost map[string][]SliverRecord) {
	dropped := 0
	s.storeLock()
	s.mu.Lock()
	var records []Record
	for slice, svs := range lost {
		gone := map[string]bool{}
		for _, sv := range svs {
			gone[sliverKey(slice, sv)] = true
			dropped++
		}
		var keep []SliverRecord
		for _, sv := range s.remoteRefs[slice] {
			if !gone[sliverKey(slice, sv)] {
				keep = append(keep, sv)
			}
		}
		if len(keep) == 0 {
			delete(s.remoteRefs, slice)
		} else {
			s.remoteRefs[slice] = keep
		}
		records = append(records, Record{Op: OpAmendRemote, Slice: slice, Remote: keep})
	}
	s.mu.Unlock()
	sort.Slice(records, func(i, j int) bool { return records[i].Slice < records[j].Slice })
	for _, rec := range records {
		if err := s.storeAppend(rec); err != nil {
			s.log.Errorf("sfa[%s]: wal append (amend %s): %v", s.auth.Name, rec.Slice, err)
		}
	}
	s.storeUnlock()
	s.metrics.reconcileDropped.Add(int64(dropped))
	s.log.Infof("sfa[%s]: reconcile with %s: dropped %d lost slivers from intent", s.auth.Name, peer, dropped)
}

// reconcilePeer runs one reconciliation attempt against a peer in the
// recovering state, then readmits (converged) or demotes (failed) it. It
// runs inline on the reaper goroutine, which Close stops before peer
// clients are torn down.
func (s *Server) reconcilePeer(name string, ph *peerHandle) {
	if s.runReconcile(name, ph) {
		s.metrics.reconcileRuns.With("converged").Inc()
		s.health.readmit(name)
		s.log.Infof("sfa[%s]: peer %s reconciled and readmitted", s.auth.Name, name)
	} else {
		s.metrics.reconcileRuns.With("failed").Inc()
		s.health.demote(name)
		s.log.Infof("sfa[%s]: reconcile with %s failed; peer stays down", s.auth.Name, name)
	}
	s.setBacklogGauge(name)
}

// reconcileMaxRounds bounds the drain loop: operations enqueued while a
// round was replaying get their own round, but a peer that keeps accruing
// backlog faster than it drains fails the attempt instead of looping.
const reconcileMaxRounds = 8

// runReconcile performs the three reconciliation phases; true means the
// peer's state provably equals coordinator intent and its backlog is
// empty.
func (s *Server) runReconcile(name string, ph *peerHandle) bool {
	cred := IssueCredential(s.secret, s.auth.Name, s.auth.Name, time.Minute)

	// Phase 1: replay the undelivered backlog in order, under original
	// idempotency keys — delivered-but-unacknowledged operations replay
	// their cached outcome, truly lost ones execute now.
	for round := 0; ; round++ {
		ops := s.recon.take(name)
		s.setBacklogGauge(name)
		if len(ops) == 0 {
			break
		}
		if round >= reconcileMaxRounds {
			s.recon.requeueFront(name, ops)
			s.setBacklogGauge(name)
			return false
		}
		for i, op := range ops {
			if err := s.replayOp(ph, cred, op); err != nil {
				s.recon.requeueFront(name, ops[i:])
				s.setBacklogGauge(name)
				s.log.Errorf("sfa[%s]: reconcile replay %s to %s: %v", s.auth.Name, op.method, name, err)
				return false
			}
			s.metrics.reconcileReplays.Inc()
		}
	}

	// Phase 2: anti-entropy. Diff the peer's live holdings for this
	// coordinator against intent: retire orphans (held but not intended —
	// e.g. a replayed reserve whose CreateSlice aborted or whose slice was
	// deleted during the partition), and drop lost intent (intended but
	// not held — the peer restarted without its state).
	held, err := s.fetchHoldings(ph, cred)
	if err != nil {
		s.log.Errorf("sfa[%s]: reconcile holdings at %s: %v", s.auth.Name, name, err)
		return false
	}
	intent := s.remoteIntent(name)
	orphans, lost := diffHoldings(held, intent)
	for _, slice := range sortedKeys(orphans) {
		svs := orphans[slice]
		gen := s.nextGen()
		if err := ph.client.Call(MethodRelease, ReleaseRequest{
			Credential: cred, SliceName: slice, Slivers: svs,
			// Fresh gen-keyed retire: the durable high-water mark
			// guarantees it cannot collide with any key the peer has seen.
			IdempotencyKey: fmt.Sprintf("%s/%s#%d@%s/retire", s.auth.Name, slice, gen, name),
		}, nil); err != nil {
			s.log.Errorf("sfa[%s]: reconcile retire %d slivers of %s at %s: %v",
				s.auth.Name, len(svs), slice, name, err)
			return false
		}
		s.metrics.reconcileRetired.Add(int64(len(svs)))
		s.log.Infof("sfa[%s]: reconcile with %s: retired %d orphaned slivers of %s",
			s.auth.Name, name, len(svs), slice)
	}
	if len(lost) > 0 {
		s.amendIntent(name, lost)
	}

	// Phase 3: verify convergence — the peer's holdings must now equal
	// intent exactly, and no backlog may have accrued meanwhile.
	held, err = s.fetchHoldings(ph, cred)
	if err != nil {
		return false
	}
	orphans, lost = diffHoldings(held, s.remoteIntent(name))
	if len(orphans) > 0 || len(lost) > 0 || s.recon.depth(name) > 0 {
		return false
	}
	return true
}

// replayOp re-sends one queued operation with a fresh credential. A remote
// error is a resolution (the operation executed and was rejected — e.g. a
// replayed reserve against a deleted slice's cached error); only transport
// failures abort the drain.
func (s *Server) replayOp(ph *peerHandle, cred Credential, op pendingOp) error {
	switch op.method {
	case MethodReserve:
		req := *op.reserve
		req.Credential = cred
		var rr ReserveResponse
		err := ph.client.Call(MethodReserve, req, &rr)
		if isTransportFailure(err) {
			return err
		}
		// Slivers placed by the replay that the committed slice does not
		// reference are orphans; phase 2 retires them.
		return nil
	case MethodRelease:
		req := *op.release
		req.Credential = cred
		if err := ph.client.Call(MethodRelease, req, nil); isTransportFailure(err) {
			return err
		}
		return nil
	}
	return fmt.Errorf("sfa: unknown pending op %q", op.method)
}

// fetchHoldings reads the peer's live holdings for this coordinator as a
// slice -> slivers map.
func (s *Server) fetchHoldings(ph *peerHandle, cred Credential) (map[string][]SliverRecord, error) {
	var hr HoldingsResponse
	if err := ph.client.Call(MethodListHoldings, HoldingsRequest{Credential: cred, Holder: s.auth.Name}, &hr); err != nil {
		return nil, err
	}
	out := map[string][]SliverRecord{}
	for _, h := range hr.Holdings {
		out[h.Slice] = append(out[h.Slice], h.Slivers...)
	}
	return out, nil
}

// diffHoldings splits the symmetric difference between what a peer holds
// and what the coordinator intends: orphans are held-but-not-intended,
// lost is intended-but-not-held.
func diffHoldings(held, intent map[string][]SliverRecord) (orphans, lost map[string][]SliverRecord) {
	orphans = map[string][]SliverRecord{}
	lost = map[string][]SliverRecord{}
	intentSet := map[string]bool{}
	for slice, svs := range intent {
		for _, sv := range svs {
			intentSet[sliverKey(slice, sv)] = true
		}
	}
	heldSet := map[string]bool{}
	for slice, svs := range held {
		for _, sv := range svs {
			heldSet[sliverKey(slice, sv)] = true
			if !intentSet[sliverKey(slice, sv)] {
				orphans[slice] = append(orphans[slice], sv)
			}
		}
	}
	for slice, svs := range intent {
		for _, sv := range svs {
			if !heldSet[sliverKey(slice, sv)] {
				lost[slice] = append(lost[slice], sv)
			}
		}
	}
	return orphans, lost
}

func sortedKeys(m map[string][]SliverRecord) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s *Server) setBacklogGauge(peer string) {
	s.metrics.reconcileBacklog.With(peer).Set(float64(s.recon.depth(peer)))
}
