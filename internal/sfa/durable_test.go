package sfa

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"fedshare/internal/faultnet"
	"fedshare/internal/obs"
	"fedshare/internal/wal"
)

// durableServer builds a server backed by a WAL store in dir, without
// starting the network listener: handlers are driven directly so request
// order is deterministic. The returned store is the one the server writes
// through; crash it with store.log.Close() to simulate kill -9 (no final
// snapshot, no graceful close).
func durableServer(t *testing.T, dir string, snapshotEvery int, clock *fakeClock) (*Server, *DurableStore, *State) {
	t.Helper()
	store, st, err := OpenDurableStore(DurableOptions{
		Dir: dir, SnapshotEvery: snapshotEvery, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("open durable store: %v", err)
	}
	srv := NewServer(buildAuthority(t, "DUR", 4, 2, 4), testSecret,
		WithLogger(quietLog),
		WithStore(store),
		WithMetrics(obs.NewRegistry()),
		WithConfig(ServerConfig{Now: clock.Now}))
	t.Cleanup(func() { _ = srv.Close() })
	return srv, store, st
}

// driveLifecycle runs one deterministic mixed workload — keyed and unkeyed
// reserves, duplicate replays, partial and full releases, slice creation
// and deletion, and lease expiry via the reaper — against srv. The same
// sequence applied to two servers with the same topology and clock must
// leave them in identical durable state.
func driveLifecycle(t *testing.T, srv *Server, clock *fakeClock) {
	t.Helper()
	reserve := func(slice, key string, sites, per int, ttl float64) *ReserveResponse {
		t.Helper()
		resp, err := srv.handleReserve(ReserveRequest{
			Credential: userCred(), SliceName: slice, Sites: sites, PerSite: per,
			IdempotencyKey: key, TTLSeconds: ttl,
		})
		if err != nil {
			t.Fatalf("reserve %s (key %q): %v", slice, key, err)
		}
		return resp
	}
	r1 := reserve("web", "k1", 2, 1, 30)
	if len(r1.Slivers) != 2 {
		t.Fatalf("web reserve placed %d slivers, want 2", len(r1.Slivers))
	}
	reserve("web", "k2", 1, 1, 0) // merge: indefinite expiry dominates
	dup := reserve("web", "k1", 2, 1, 30)
	if !reflect.DeepEqual(dup, r1) {
		t.Fatalf("duplicate k1 = %+v, want replay of %+v", dup, r1)
	}
	reserve("db", "k3", 1, 2, 10)

	if _, err := srv.handleRelease(ReleaseRequest{
		Credential: userCred(), SliceName: "web", Slivers: r1.Slivers[:1],
		IdempotencyKey: "rk1",
	}); err != nil {
		t.Fatalf("release: %v", err)
	}

	create := func(name string, min int, ttl float64) {
		t.Helper()
		if _, err := srv.handleCreateSlice(SliceRequest{
			Credential: userCred(), Name: name, Owner: "tester",
			MinSites: min, SliversPerSite: 1, TTLSeconds: ttl,
		}); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	create("big", 2, 60)
	create("tmp", 1, 5)

	clock.Advance(12 * time.Second) // expires db (TTL 10) and tmp (TTL 5)
	srv.reapExpiredLeases()

	if _, err := srv.handleDeleteSlice(DeleteRequest{Credential: userCred(), Name: "big"}); err != nil {
		t.Fatalf("delete big: %v", err)
	}
	reserve("cache", "k4", 1, 1, 100)
	reserve("cache", "", 1, 1, 0) // unkeyed merge
}

// TestRecoveryEquivalence is the central durability contract: a server
// recovered from its WAL (after a crash that skipped the final snapshot)
// holds exactly the state of a memory-only twin that executed the same
// request sequence and never crashed. Runs with snapshots disabled (pure
// log replay), cutting every 3 appends (snapshot + suffix replay), and
// every append (pure snapshot load).
func TestRecoveryEquivalence(t *testing.T) {
	for _, every := range []int{-1, 3, 1} {
		t.Run(fmt.Sprintf("snapshotEvery=%d", every), func(t *testing.T) {
			clock := newFakeClock()
			dir := t.TempDir()
			srv, store, st := durableServer(t, dir, every, clock)
			if st != nil {
				t.Fatalf("fresh directory recovered non-nil state: %+v", st)
			}
			mem := NewServer(buildAuthority(t, "DUR", 4, 2, 4), testSecret,
				WithLogger(quietLog), WithMetrics(obs.NewRegistry()),
				WithConfig(ServerConfig{Now: clock.Now}))

			// The same clock drives both, so expiries are byte-identical.
			driveLifecycle(t, srv, clock)
			clock.mu.Lock()
			clock.t = time.Unix(1_000_000, 0) // rewind for the twin
			clock.mu.Unlock()
			driveLifecycle(t, mem, clock)

			want := mem.snapshotState()
			if got := srv.snapshotState(); !reflect.DeepEqual(got, want) {
				t.Fatalf("durable server diverged from memory twin before crash:\n got %+v\nwant %+v", got, want)
			}

			// Crash: close the log file handles without the final snapshot,
			// then recover into a fresh server.
			_ = store.log.Close()
			rec, store2, rst := durableServer(t, dir, every, clock)
			defer store2.Close()
			if rst == nil {
				t.Fatal("recovery returned nil state for a populated directory")
			}
			if err := rec.Restore(rst); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if got := rec.snapshotState(); !reflect.DeepEqual(got, want) {
				t.Errorf("recovered state differs from never-crashed twin:\n got %+v\nwant %+v", got, want)
			}
			if got, want := rec.auth.Utilization(), mem.auth.Utilization(); got != want {
				t.Errorf("recovered utilization = %g, want %g", got, want)
			}

			// The recovered server must replay cached outcomes for old keys…
			r1, err := rec.handleReserve(ReserveRequest{
				Credential: userCred(), SliceName: "web", Sites: 2, PerSite: 1,
				IdempotencyKey: "k1", TTLSeconds: 30,
			})
			if err != nil {
				t.Fatalf("replay k1 after recovery: %v", err)
			}
			if n := counterValue(rec.obsreg, "fedshare_sfa_dedup_replays_total", MethodReserve); n != 1 {
				t.Errorf("k1 after recovery executed instead of replaying (replays = %d)", n)
			}
			if len(r1.Slivers) != 2 {
				t.Errorf("replayed k1 returned %d slivers, want the original 2", len(r1.Slivers))
			}
			// …and keep serving new work.
			if _, err := rec.handleReserve(ReserveRequest{
				Credential: userCred(), SliceName: "fresh", Sites: 1, PerSite: 1,
				IdempotencyKey: "k-new",
			}); err != nil {
				t.Errorf("new reserve after recovery: %v", err)
			}
		})
	}
}

// TestRecoveryEquivalenceUnderChaos exercises recovery against state built
// by genuinely concurrent, fault-injected traffic: the log order — not the
// request arrival order — defines the durable state, and replaying it must
// reproduce the live server's final state exactly. Seeds follow the chaos
// suite's convention (override with FEDSHARE_CHAOS_SEED).
func TestRecoveryEquivalenceUnderChaos(t *testing.T) {
	seed := chaosSeed(t)
	const clients, calls = 4, 6
	clock := newFakeClock()
	dir := t.TempDir()
	store, st, err := OpenDurableStore(DurableOptions{
		Dir: dir, SnapshotEvery: 5, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("fresh dir returned state %+v", st)
	}
	reg := obs.NewRegistry()
	srv := startServer(t, buildAuthority(t, "DUR", 8, 2, 8),
		WithStore(store),
		WithMetrics(reg),
		WithConfig(ServerConfig{
			IdleReadDeadline:  500 * time.Millisecond,
			LeaseReapInterval: 2 * time.Millisecond,
			Now:               clock.Now,
		}))

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		dialer := faultnet.NewDialer(faultnet.Config{
			Seed:  seed*1_000_003 + uint64(i)*7919,
			PDrop: 0.06, PPartial: 0.05, PCorrupt: 0.05, PDropResponse: 0.10,
			PLatency: 0.10, MaxLatency: 2 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(ClientConfig{
				Addr: srv.Addr(), DialFunc: dialer.Dial,
				CallTimeout: 2 * time.Second, MaxAttempts: 30,
				RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
				BreakerThreshold: -1, Seed: seed + uint64(i), Registry: reg,
			})
			defer c.Close()
			for k := 0; k < calls; k++ {
				slice := fmt.Sprintf("dur-c%d-s%d", i, k)
				var rr ReserveResponse
				if err := c.Call(MethodReserve, ReserveRequest{
					Credential: userCred(), SliceName: slice, Sites: 1, PerSite: 1,
					IdempotencyKey: slice + "/reserve", TTLSeconds: 30,
				}, &rr); err != nil {
					t.Errorf("client %d reserve %d: %v", i, k, err)
					continue
				}
				if k%2 != 0 {
					continue
				}
				if err := c.Call(MethodRelease, ReleaseRequest{
					Credential: userCred(), SliceName: slice, Slivers: rr.Slivers,
					IdempotencyKey: slice + "/release",
				}, nil); err != nil {
					t.Errorf("client %d release %d: %v", i, k, err)
				}
			}
		}()
	}
	wg.Wait()

	want := srv.snapshotState()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_ = store.log.Close() // crash: no final snapshot

	store2, rst, err := OpenDurableStore(DurableOptions{
		Dir: dir, SnapshotEvery: 5, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer store2.Close()
	rec := NewServer(buildAuthority(t, "DUR", 8, 2, 8), testSecret,
		WithLogger(quietLog), WithStore(store2),
		WithMetrics(obs.NewRegistry()),
		WithConfig(ServerConfig{Now: clock.Now}))
	defer rec.Close()
	if err := rec.Restore(rst); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := rec.snapshotState(); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state differs from live state at seed %d:\n got %+v\nwant %+v", seed, got, want)
	}

	// Every key from the crashed run must replay, not re-execute: counter
	// identity dispatched == replayed on the recovered server.
	if err := rec.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c := dialServer(t, rec)
	for i := 0; i < clients; i++ {
		for k := 0; k < calls; k++ {
			slice := fmt.Sprintf("dur-c%d-s%d", i, k)
			var rr ReserveResponse
			if err := c.Call(MethodReserve, ReserveRequest{
				Credential: userCred(), SliceName: slice, Sites: 1, PerSite: 1,
				IdempotencyKey: slice + "/reserve", TTLSeconds: 30,
			}, &rr); err != nil {
				t.Fatalf("post-recovery reserve %s: %v", slice, err)
			}
		}
	}
	dispatched := counterValue(rec.obsreg, "fedshare_sfa_requests_total", MethodReserve)
	replayed := counterValue(rec.obsreg, "fedshare_sfa_dedup_replays_total", MethodReserve)
	if dispatched != int64(clients*calls) || replayed != dispatched {
		t.Errorf("post-recovery: dispatched %d, replayed %d — want every request to replay (%d)",
			dispatched, replayed, clients*calls)
	}
	// Utilization must converge once the recovered leases expire.
	clock.Advance(time.Minute)
	rec.reapExpiredLeases()
	if u := rec.auth.Utilization(); u != 0 {
		t.Errorf("utilization after lease expiry = %g, want 0", u)
	}
}

// TestDurableFsyncAlways covers the strictest policy end to end: every
// append fsyncs before the response is acknowledged.
func TestDurableFsyncAlways(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	store, _, err := OpenDurableStore(DurableOptions{
		Dir: dir, Fsync: wal.FsyncAlways, SnapshotEvery: -1, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(buildAuthority(t, "DUR", 2, 1, 2), testSecret,
		WithLogger(quietLog), WithStore(store),
		WithMetrics(obs.NewRegistry()), WithConfig(ServerConfig{Now: clock.Now}))
	defer srv.Close()
	if _, err := srv.handleReserve(ReserveRequest{
		Credential: userCred(), SliceName: "s", Sites: 1, PerSite: 1, IdempotencyKey: "k",
	}); err != nil {
		t.Fatal(err)
	}
	want := srv.snapshotState()
	_ = store.log.Close()
	store2, rst, err := OpenDurableStore(DurableOptions{Dir: dir, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	rec := NewServer(buildAuthority(t, "DUR", 2, 1, 2), testSecret,
		WithLogger(quietLog), WithStore(store2),
		WithMetrics(obs.NewRegistry()), WithConfig(ServerConfig{Now: clock.Now}))
	defer rec.Close()
	if err := rec.Restore(rst); err != nil {
		t.Fatal(err)
	}
	if got := rec.snapshotState(); !reflect.DeepEqual(got, want) {
		t.Errorf("fsync=always recovery mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestDurableCloseSnapshotsCleanly: a graceful Close cuts a final snapshot,
// so the next open recovers purely from it (no suffix replay) and the state
// still matches.
func TestDurableCloseSnapshotsCleanly(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	srv, store, _ := durableServer(t, dir, -1, clock)
	driveLifecycle(t, srv, clock)
	want := srv.snapshotState()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	store2, rst, err := OpenDurableStore(DurableOptions{Dir: dir, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if rst == nil {
		t.Fatal("nil state after graceful close")
	}
	rec := NewServer(buildAuthority(t, "DUR", 4, 2, 4), testSecret,
		WithLogger(quietLog), WithStore(store2),
		WithMetrics(obs.NewRegistry()), WithConfig(ServerConfig{Now: clock.Now}))
	defer rec.Close()
	if err := rec.Restore(rst); err != nil {
		t.Fatal(err)
	}
	if got := rec.snapshotState(); !reflect.DeepEqual(got, want) {
		t.Errorf("post-graceful-close recovery mismatch:\n got %+v\nwant %+v", got, want)
	}
}
