// Package sfa implements a small Slice-based Federation Architecture
// substrate (Sec. 3.2.2 mentions SFA as PlanetLab's federation plane):
// regional authorities run registry servers that exchange credentials and
// resource records over TCP, peer with each other, embed slices across the
// federation, and expose the policy-computed value shares.
//
// The wire format is deliberately simple and fully self-contained:
// length-prefixed JSON frames carrying request/response envelopes.
package sfa

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single message to keep a misbehaving peer from
// forcing unbounded allocations.
const MaxFrameSize = 4 << 20

// Envelope is one framed message: a request (Method set) or a response
// (Error or Result set), matched by ID.
type Envelope struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Code classifies machine-actionable errors. The only defined value is
	// CodeOverloaded, which marks the error as retriable without counting
	// against the peer's health (the server answered; it just shed load).
	Code string `json:"code,omitempty"`
}

// CodeOverloaded is the Envelope.Code of a response shed by the server's
// admission gate: the request was NOT executed and may be retried safely.
const CodeOverloaded = "overloaded"

// WriteFrame writes one length-prefixed JSON frame.
func WriteFrame(w io.Writer, env *Envelope) error {
	payload, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("sfa: encode: %w", err)
	}
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("sfa: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("sfa: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("sfa: write payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed JSON frame.
func ReadFrame(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // preserve io.EOF for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("sfa: incoming frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("sfa: read payload: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, fmt.Errorf("sfa: decode: %w", err)
	}
	return &env, nil
}

// marshal encodes params/results, panicking only on programmer error
// (unencodable types).
func marshal(v interface{}) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("sfa: marshal: %v", err))
	}
	return b
}

// --- Method names ---

// Protocol methods.
const (
	MethodPing          = "sfa.Ping"
	MethodGetRecord     = "sfa.GetRecord"
	MethodListResources = "sfa.ListResources"
	MethodPeer          = "sfa.Peer"
	MethodCreateSlice   = "sfa.CreateSlice"
	MethodDeleteSlice   = "sfa.DeleteSlice"
	MethodReserve       = "sfa.Reserve"
	MethodRelease       = "sfa.Release"
	MethodGetShares     = "sfa.GetShares"
	MethodGetUsage      = "sfa.GetUsage"
	MethodListHoldings  = "sfa.ListHoldings"
)

// --- Message payloads ---

// AuthorityRecord describes an authority in the registry.
type AuthorityRecord struct {
	Name  string `json:"name"`
	Addr  string `json:"addr"`
	Sites int    `json:"sites"`
}

// SiteResource is one advertised site.
type SiteResource struct {
	SiteID   string `json:"site_id"`
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Capacity int    `json:"capacity"` // total sliver slots
	Free     int    `json:"free"`     // currently unreserved slots
}

// ResourceList is the RSpec-like resource advertisement.
type ResourceList struct {
	Authority string         `json:"authority"`
	Sites     []SiteResource `json:"sites"`
}

// PeerRequest initiates (or refreshes) a peering between authorities: the
// caller introduces itself and presents a credential signed with the shared
// federation secret.
type PeerRequest struct {
	Record     AuthorityRecord `json:"record"`
	Credential Credential      `json:"credential"`
}

// PeerResponse returns the callee's record.
type PeerResponse struct {
	Record AuthorityRecord `json:"record"`
}

// SliceRequest asks for a federated slice.
type SliceRequest struct {
	Credential     Credential `json:"credential"`
	Name           string     `json:"name"`
	Owner          string     `json:"owner"`
	MinSites       int        `json:"min_sites"`
	MaxSites       int        `json:"max_sites"`
	SliversPerSite int        `json:"slivers_per_site"`
	// TTLSeconds leases the slice for the experiment's holding time: once
	// it elapses the embedding server deletes the slice and releases its
	// local and remote slivers. Zero means no lease.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// SliverRecord is one placed sliver.
type SliverRecord struct {
	Authority string `json:"authority"`
	SiteID    string `json:"site_id"`
	NodeID    string `json:"node_id"`
}

// SliceResponse reports a deployed slice.
type SliceResponse struct {
	Name    string         `json:"name"`
	Slivers []SliverRecord `json:"slivers"`
	Sites   int            `json:"sites"`
}

// ReserveRequest asks a peer to place slivers locally on behalf of a
// federated slice.
type ReserveRequest struct {
	Credential Credential `json:"credential"`
	SliceName  string     `json:"slice_name"`
	Sites      int        `json:"sites"` // how many distinct sites
	PerSite    int        `json:"per"`   // slivers per site
	// IdempotencyKey makes retries safe: the server remembers the response
	// to each key in a bounded table and replays it instead of reserving
	// again. Empty disables dedup (legacy behavior).
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// TTLSeconds turns the reservation into a lease: the server's reaper
	// releases the slivers once the TTL elapses without an explicit
	// Release. It models the finite holding time t of the paper's demand
	// classes. Zero means no lease (held until released).
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// ReserveResponse returns the placed slivers.
type ReserveResponse struct {
	Slivers []SliverRecord `json:"slivers"`
}

// ReleaseRequest frees previously reserved slivers.
type ReleaseRequest struct {
	Credential Credential     `json:"credential"`
	SliceName  string         `json:"slice_name"`
	Slivers    []SliverRecord `json:"slivers"`
	// IdempotencyKey makes retried releases safe: without it, a release
	// whose response was lost and which is then retried would decrement
	// node load twice and corrupt the accounting other slices rely on.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// SharesRequest asks the authority for the federation value shares it has
// computed from the advertised contributions and its demand profile.
type SharesRequest struct {
	Policy string `json:"policy"` // "shapley", "proportional", ...
}

// SharesResponse maps authority names to normalized shares. When peers are
// unreachable the coordinator degrades instead of erroring: Partial marks
// the response as computed over the live sub-federation only, and Down
// lists the excluded authorities. Both fields are omitted on the healthy
// path, so all-peers-live responses are byte-identical to earlier versions.
type SharesResponse struct {
	Policy     string             `json:"policy"`
	GrandValue float64            `json:"grand_value"`
	Shares     map[string]float64 `json:"shares"`
	Partial    bool               `json:"partial,omitempty"`
	Down       []string           `json:"down,omitempty"`
}

// UsageResponse reports the cumulative slivers each authority has served
// for slices embedded via this registry, plus the resulting measured
// (consumption-based) shares — the ρ̂ of eq. (7) computed from observed
// usage instead of a demand model.
type UsageResponse struct {
	Authority         string             `json:"authority"`
	CumulativeSlivers map[string]int     `json:"cumulative_slivers"`
	MeasuredShares    map[string]float64 `json:"measured_shares"`
	SlicesEmbedded    int                `json:"slices_embedded"`
}

// HoldingsRequest asks a peer which reserve holdings it currently tracks
// for a given coordinator — the anti-entropy read the reconciler diffs
// against its own intent after a partition heals. Holder defaults to the
// credential subject.
type HoldingsRequest struct {
	Credential Credential `json:"credential"`
	Holder     string     `json:"holder,omitempty"`
}

// Holding is one slice's live reserve holding at the answering authority.
type Holding struct {
	Slice   string         `json:"slice"`
	Expiry  int64          `json:"expiry,omitempty"` // UnixNano; 0 = held until released
	Slivers []SliverRecord `json:"slivers,omitempty"`
}

// HoldingsResponse lists the holder's holdings, sorted by slice name with
// slivers sorted by (site, node) so two identical states encode
// identically.
type HoldingsResponse struct {
	Authority string    `json:"authority"`
	Holdings  []Holding `json:"holdings,omitempty"`
}

// DeleteRequest removes a slice.
type DeleteRequest struct {
	Credential Credential `json:"credential"`
	Name       string     `json:"name"`
}

// Empty is a no-payload result.
type Empty struct{}
