package sfa

import (
	"io"
	"sync"
	"testing"
	"time"

	"fedshare/internal/obs"
)

// fakeClock is an injectable lease clock: the reaper still ticks on the wall
// clock, but judges expiry against this simulated time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// leaseServer starts a server with a fast reaper on a simulated clock.
func leaseServer(t *testing.T, sites, nodes, capacity int) (*Server, *obs.Registry, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	reg := obs.NewRegistry()
	srv := startServer(t, buildAuthority(t, "PLC", sites, nodes, capacity),
		WithMetrics(reg),
		WithConfig(ServerConfig{LeaseReapInterval: 2 * time.Millisecond, Now: clock.Now}))
	return srv, reg, clock
}

func TestIdleReadDeadlineConfigurable(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLC", 1, 1, 1),
		WithMetrics(obs.NewRegistry()),
		WithConfig(ServerConfig{IdleReadDeadline: 50 * time.Millisecond}))
	conn, err := netDial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing: the server must drop us at the configured deadline, far
	// sooner than the 2-minute default.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read = %v, want EOF from idle drop", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("idle drop took %v; configured deadline was 50ms", elapsed)
	}
}

func TestReserveIdempotencyReplaysResponse(t *testing.T) {
	srv, reg, _ := leaseServer(t, 1, 1, 4)
	c := dialServer(t, srv)
	req := ReserveRequest{
		Credential: userCred(), SliceName: "s1", Sites: 1, PerSite: 2,
		IdempotencyKey: "coord/s1@PLC",
	}
	var first, second ReserveResponse
	if err := c.Call(MethodReserve, req, &first); err != nil {
		t.Fatal(err)
	}
	if len(first.Slivers) != 2 {
		t.Fatalf("first reserve placed %d slivers, want 2", len(first.Slivers))
	}
	// The retry replays the original response instead of double-booking.
	if err := c.Call(MethodReserve, req, &second); err != nil {
		t.Fatal(err)
	}
	if len(second.Slivers) != 2 ||
		second.Slivers[0] != first.Slivers[0] || second.Slivers[1] != first.Slivers[1] {
		t.Errorf("replayed response %+v differs from original %+v", second, first)
	}
	if got := counterValue(reg, "fedshare_sfa_dedup_replays_total", MethodReserve); got != 1 {
		t.Errorf("dedup replay counter = %d, want 1", got)
	}
	// Only 2 of 4 slots are used: the retry reserved nothing new.
	if util := srv.auth.Utilization(); util != 0.5 {
		t.Errorf("utilization = %g, want 0.5", util)
	}
}

func TestReleaseIdempotencyProtectsAccounting(t *testing.T) {
	srv, reg, _ := leaseServer(t, 1, 1, 4)
	c := dialServer(t, srv)
	var r1, r2 ReserveResponse
	if err := c.Call(MethodReserve, ReserveRequest{
		Credential: userCred(), SliceName: "a", Sites: 1, PerSite: 2,
	}, &r1); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(MethodReserve, ReserveRequest{
		Credential: userCred(), SliceName: "b", Sites: 1, PerSite: 2,
	}, &r2); err != nil {
		t.Fatal(err)
	}
	rel := ReleaseRequest{
		Credential: userCred(), SliceName: "a", Slivers: r1.Slivers,
		IdempotencyKey: "coord/a@PLC/release",
	}
	// A release retried after a lost response must not decrement twice —
	// without the key, slice b's capacity accounting would be corrupted.
	for i := 0; i < 2; i++ {
		if err := c.Call(MethodRelease, rel, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := counterValue(reg, "fedshare_sfa_dedup_replays_total", MethodRelease); got != 1 {
		t.Errorf("release dedup replay counter = %d, want 1", got)
	}
	if util := srv.auth.Utilization(); util != 0.5 {
		t.Errorf("utilization = %g, want 0.5 (slice b intact)", util)
	}
}

func TestDedupTableBounded(t *testing.T) {
	srv, _, _ := leaseServer(t, 4, 1, 8)
	srv.dedup = newDedupTable(2) // shrink after start for the test
	c := dialServer(t, srv)
	for _, key := range []string{"k1", "k2", "k3", "k4"} {
		if err := c.Call(MethodReserve, ReserveRequest{
			Credential: userCred(), SliceName: "s-" + key, Sites: 1, PerSite: 1,
			IdempotencyKey: key,
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.dedup.size(); got > 2 {
		t.Errorf("dedup table holds %d completed keys, cap is 2", got)
	}
	// An evicted key no longer replays: the request executes again. That is
	// the documented trade-off of a bounded table.
	var rr ReserveResponse
	if err := c.Call(MethodReserve, ReserveRequest{
		Credential: userCred(), SliceName: "s-k1b", Sites: 1, PerSite: 1,
		IdempotencyKey: "k1",
	}, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Slivers) != 1 {
		t.Errorf("re-executed reserve placed %d slivers, want 1", len(rr.Slivers))
	}
}

func TestLeaseExpiryReapsSlivers(t *testing.T) {
	srv, reg, clock := leaseServer(t, 1, 1, 4)
	c := dialServer(t, srv)
	if err := c.Call(MethodReserve, ReserveRequest{
		Credential: userCred(), SliceName: "leased", Sites: 1, PerSite: 2,
		TTLSeconds: 10,
	}, nil); err != nil {
		t.Fatal(err)
	}
	active := reg.Gauge("fedshare_sfa_leases_active", "")
	if active.Value() != 1 {
		t.Fatalf("leases_active = %g, want 1", active.Value())
	}
	if srv.auth.Utilization() != 0.5 {
		t.Fatalf("utilization = %g before expiry", srv.auth.Utilization())
	}
	clock.Advance(11 * time.Second)
	expired := reg.Counter("fedshare_sfa_leases_expired_total", "")
	waitFor(t, "lease reaper", func() bool {
		return expired.Value() == 1 && active.Value() == 0 && srv.auth.Utilization() == 0
	})
}

func TestExplicitReleaseCancelsLease(t *testing.T) {
	srv, reg, clock := leaseServer(t, 1, 1, 4)
	c := dialServer(t, srv)
	var rr ReserveResponse
	if err := c.Call(MethodReserve, ReserveRequest{
		Credential: userCred(), SliceName: "early", Sites: 1, PerSite: 2,
		TTLSeconds: 10,
	}, &rr); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(MethodRelease, ReleaseRequest{
		Credential: userCred(), SliceName: "early", Slivers: rr.Slivers,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if srv.auth.Utilization() != 0 {
		t.Fatalf("utilization = %g after release", srv.auth.Utilization())
	}
	// Reserve a second slice, then let the clock pass the first lease's
	// expiry: the settled lease must not fire and steal slice two's slivers.
	if err := c.Call(MethodReserve, ReserveRequest{
		Credential: userCred(), SliceName: "later", Sites: 1, PerSite: 2,
	}, nil); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	time.Sleep(20 * time.Millisecond) // several reaper ticks
	if got := reg.Counter("fedshare_sfa_leases_expired_total", "").Value(); got != 0 {
		t.Errorf("leases_expired = %d, want 0 (lease was settled by release)", got)
	}
	if util := srv.auth.Utilization(); util != 0.5 {
		t.Errorf("utilization = %g, want 0.5 (slice two intact)", util)
	}
}

func TestSliceTTLExpiresAcrossFederation(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry()
	servers := federate(t, map[string][3]int{
		"PLC": {2, 1, 2}, "PLE": {2, 1, 2},
	}, WithMetrics(reg), WithConfig(ServerConfig{
		LeaseReapInterval: 2 * time.Millisecond, Now: clock.Now,
	}))
	c := dialServer(t, servers["PLC"])
	var resp SliceResponse
	if err := c.Call(MethodCreateSlice, SliceRequest{
		Credential: userCred(), Name: "exp", Owner: "alice", MinSites: 3,
		TTLSeconds: 30,
	}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Sites < 3 {
		t.Fatalf("slice spans %d sites, want >= 3", resp.Sites)
	}
	clock.Advance(31 * time.Second)
	waitFor(t, "federated slice expiry", func() bool {
		_, exists := servers["PLC"].auth.GetSlice("exp")
		return !exists &&
			servers["PLC"].auth.Utilization() == 0 &&
			servers["PLE"].auth.Utilization() == 0
	})
}

func TestIdempotencyKeysNamespacedByMethod(t *testing.T) {
	srv, reg, _ := leaseServer(t, 1, 1, 4)
	c := dialServer(t, srv)
	var rr ReserveResponse
	if err := c.Call(MethodReserve, ReserveRequest{
		Credential: userCred(), SliceName: "s", Sites: 1, PerSite: 2,
		IdempotencyKey: "shared-key",
	}, &rr); err != nil {
		t.Fatal(err)
	}
	// The same key on Release must execute the release, not replay the
	// cached reserve outcome as a silent empty success.
	if err := c.Call(MethodRelease, ReleaseRequest{
		Credential: userCred(), SliceName: "s", Slivers: rr.Slivers,
		IdempotencyKey: "shared-key",
	}, nil); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(reg, "fedshare_sfa_dedup_replays_total", MethodRelease); got != 0 {
		t.Errorf("release replays = %d, want 0 (keys are namespaced per method)", got)
	}
	if util := srv.auth.Utilization(); util != 0 {
		t.Errorf("utilization = %g after release, want 0", util)
	}
}

func TestLateReleaseAfterLeaseExpiryDoesNotDoubleFree(t *testing.T) {
	srv, reg, clock := leaseServer(t, 1, 1, 4)
	c := dialServer(t, srv)
	// Two slices on the same node: "leased" expires via TTL, "pinned" stays.
	var leased ReserveResponse
	if err := c.Call(MethodReserve, ReserveRequest{
		Credential: userCred(), SliceName: "leased", Sites: 1, PerSite: 2,
		TTLSeconds: 5,
	}, &leased); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(MethodReserve, ReserveRequest{
		Credential: userCred(), SliceName: "pinned", Sites: 1, PerSite: 2,
	}, nil); err != nil {
		t.Fatal(err)
	}
	clock.Advance(6 * time.Second)
	expired := reg.Counter("fedshare_sfa_leases_expired_total", "")
	waitFor(t, "lease reaper", func() bool { return expired.Value() == 1 })
	// The holder's release lands after the reaper already freed the lease:
	// it must release nothing, or node load would be decremented twice and
	// "pinned"'s capacity would leak to later reservations.
	if err := c.Call(MethodRelease, ReleaseRequest{
		Credential: userCred(), SliceName: "leased", Slivers: leased.Slivers,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if util := srv.auth.Utilization(); util != 0.5 {
		t.Errorf("utilization = %g, want 0.5 (pinned slice intact)", util)
	}
}

func TestSliceRecreateAfterDeleteReReservesAtPeers(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry()
	servers := federate(t, map[string][3]int{
		"PLC": {1, 1, 2}, "PLE": {2, 1, 2},
	}, WithMetrics(reg), WithConfig(ServerConfig{
		LeaseReapInterval: 2 * time.Millisecond, Now: clock.Now,
	}))
	c := dialServer(t, servers["PLC"])
	// Two full lifecycles of the same slice name. The second CreateSlice
	// must re-execute its reservation at the peer under a fresh idempotency
	// generation — replaying the first lifecycle's cached response would
	// record slivers that were never re-reserved.
	for cycle := 0; cycle < 2; cycle++ {
		var resp SliceResponse
		if err := c.Call(MethodCreateSlice, SliceRequest{
			Credential: userCred(), Name: "re", Owner: "alice", MinSites: 3,
		}, &resp); err != nil {
			t.Fatalf("cycle %d create: %v", cycle, err)
		}
		if resp.Sites < 3 {
			t.Fatalf("cycle %d: slice spans %d sites, want >= 3", cycle, resp.Sites)
		}
		if util := servers["PLE"].auth.Utilization(); util == 0 {
			t.Fatalf("cycle %d: peer utilization is 0; reservation was replayed, not executed", cycle)
		}
		if err := c.Call(MethodDeleteSlice, DeleteRequest{
			Credential: userCred(), Name: "re",
		}, nil); err != nil {
			t.Fatalf("cycle %d delete: %v", cycle, err)
		}
	}
	if got := counterValue(reg, "fedshare_sfa_dedup_replays_total", MethodReserve); got != 0 {
		t.Errorf("reserve replays = %d, want 0 (each lifecycle keys its own reservation)", got)
	}
	for name, srv := range servers {
		if util := srv.auth.Utilization(); util != 0 {
			t.Errorf("%s utilization = %g after both lifecycles deleted, want 0", name, util)
		}
	}
}

func TestDrainStopsAcceptingAndFinishesCleanly(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLC", 1, 1, 1),
		WithMetrics(obs.NewRegistry()),
		WithConfig(ServerConfig{IdleReadDeadline: 10 * time.Second}))
	c := dialServer(t, srv)
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Fatal(err)
	}
	if srv.Draining() {
		t.Fatal("server draining before Drain")
	}
	done := make(chan struct{})
	go func() {
		srv.Drain()
		close(done)
	}()
	// Drain must return promptly even though the client connection sat idle
	// under a 10s read deadline: draining wakes idle reads immediately.
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not return; idle connections not woken")
	}
	if !srv.Draining() {
		t.Error("Draining() = false after Drain")
	}
	// New connections are refused (listener closed)...
	if _, err := Dial(srv.Addr(), 200*time.Millisecond); err == nil {
		t.Error("dial after Drain should fail")
	}
	// ...and the drained server's existing client cannot reach it either.
	if err := c.Call(MethodPing, nil, nil); err == nil {
		t.Error("call after Drain should fail")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Drain: %v", err)
	}
}

func TestDrainConcurrentWithTraffic(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLC", 2, 2, 4),
		WithMetrics(obs.NewRegistry()))
	const workers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(ClientConfig{
				Addr: srv.Addr(), MaxAttempts: 1,
				CallTimeout: time.Second, Registry: obs.NewRegistry(),
			})
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Once draining starts these calls fail with transport
				// errors; they must never hang or panic.
				_ = c.Call(MethodPing, nil, nil)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	srv.Drain()
	close(stop)
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Drain: %v", err)
	}
}
