package sfa

import "fedshare/internal/obs"

// serverMetrics bundles one registry's SFA instrumentation. Families are
// resolved once per Server; registration is idempotent, so any number of
// servers (e.g. a test federation) can share one registry.
type serverMetrics struct {
	requests       *obs.CounterVec   // fedshare_sfa_requests_total{method}
	errors         *obs.CounterVec   // fedshare_sfa_errors_total{method}
	latency        *obs.HistogramVec // fedshare_sfa_request_seconds{method}
	activeConns    *obs.Gauge        // fedshare_sfa_active_connections
	peers          *obs.Gauge        // fedshare_sfa_peers
	acceptErrors   *obs.Counter      // fedshare_sfa_accept_errors_total
	protocolErrors *obs.Counter      // fedshare_sfa_protocol_errors_total
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		requests: r.CounterVec("fedshare_sfa_requests_total",
			"SFA requests dispatched, by method.", "method"),
		errors: r.CounterVec("fedshare_sfa_errors_total",
			"SFA requests that returned an error, by method.", "method"),
		latency: r.HistogramVec("fedshare_sfa_request_seconds",
			"SFA request handling latency, by method.", nil, "method"),
		activeConns: r.Gauge("fedshare_sfa_active_connections",
			"Currently open SFA client connections."),
		peers: r.Gauge("fedshare_sfa_peers",
			"Authorities currently peered with this registry."),
		acceptErrors: r.Counter("fedshare_sfa_accept_errors_total",
			"Accept-loop failures (each also backs off the loop)."),
		protocolErrors: r.Counter("fedshare_sfa_protocol_errors_total",
			"Connections dropped on malformed or oversized frames."),
	}
}

// methodLabel clamps unknown method names to one label value so a client
// probing random methods cannot grow the registry without bound.
func methodLabel(method string) string {
	switch method {
	case MethodPing, MethodGetRecord, MethodListResources, MethodPeer,
		MethodCreateSlice, MethodDeleteSlice, MethodReserve, MethodRelease,
		MethodGetShares, MethodGetUsage:
		return method
	}
	return "unknown"
}
