package sfa

import "fedshare/internal/obs"

// serverMetrics bundles one registry's SFA instrumentation. Families are
// resolved once per Server; registration is idempotent, so any number of
// servers (e.g. a test federation) can share one registry.
type serverMetrics struct {
	requests       *obs.CounterVec   // fedshare_sfa_requests_total{method}
	errors         *obs.CounterVec   // fedshare_sfa_errors_total{method}
	latency        *obs.HistogramVec // fedshare_sfa_request_seconds{method}
	activeConns    *obs.Gauge        // fedshare_sfa_active_connections
	peers          *obs.Gauge        // fedshare_sfa_peers
	acceptErrors   *obs.Counter      // fedshare_sfa_accept_errors_total
	protocolErrors *obs.Counter      // fedshare_sfa_protocol_errors_total
	leasesActive   *obs.Gauge        // fedshare_sfa_leases_active
	leasesExpired  *obs.Counter      // fedshare_sfa_leases_expired_total
	dedupReplays   *obs.CounterVec   // fedshare_sfa_dedup_replays_total{method}

	shed             *obs.Counter    // fedshare_sfa_shed_total
	peerState        *obs.GaugeVec   // fedshare_sfa_peer_state{peer}
	peerTransitions  *obs.CounterVec // fedshare_sfa_peer_transitions_total{peer,to}
	reconcileBacklog *obs.GaugeVec   // fedshare_sfa_reconcile_backlog{peer}
	reconcileReplays *obs.Counter    // fedshare_sfa_reconcile_replays_total
	reconcileRetired *obs.Counter    // fedshare_sfa_reconcile_retired_total
	reconcileDropped *obs.Counter    // fedshare_sfa_reconcile_dropped_intent_total
	reconcileRuns    *obs.CounterVec // fedshare_sfa_reconcile_runs_total{outcome}
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		requests: r.CounterVec("fedshare_sfa_requests_total",
			"SFA requests dispatched, by method.", "method"),
		errors: r.CounterVec("fedshare_sfa_errors_total",
			"SFA requests that returned an error, by method.", "method"),
		latency: r.HistogramVec("fedshare_sfa_request_seconds",
			"SFA request handling latency, by method.", nil, "method"),
		activeConns: r.Gauge("fedshare_sfa_active_connections",
			"Currently open SFA client connections."),
		peers: r.Gauge("fedshare_sfa_peers",
			"Authorities currently peered with this registry."),
		acceptErrors: r.Counter("fedshare_sfa_accept_errors_total",
			"Accept-loop failures (each also backs off the loop)."),
		protocolErrors: r.Counter("fedshare_sfa_protocol_errors_total",
			"Connections dropped on malformed or oversized frames."),
		leasesActive: r.Gauge("fedshare_sfa_leases_active",
			"Reservations currently held under an unexpired lease."),
		leasesExpired: r.Counter("fedshare_sfa_leases_expired_total",
			"Leases whose TTL elapsed and whose slivers the reaper released."),
		dedupReplays: r.CounterVec("fedshare_sfa_dedup_replays_total",
			"Requests answered by replaying a prior response (idempotency-key dedup), by method.", "method"),
		shed: r.Counter("fedshare_sfa_shed_total",
			"Requests rejected unexecuted by the in-flight admission gate."),
		peerState: r.GaugeVec("fedshare_sfa_peer_state",
			"Peer lifecycle state: 0 healthy, 1 suspect, 2 down, 3 recovering.", "peer"),
		peerTransitions: r.CounterVec("fedshare_sfa_peer_transitions_total",
			"Peer health state transitions, by peer and destination state.", "peer", "to"),
		reconcileBacklog: r.GaugeVec("fedshare_sfa_reconcile_backlog",
			"Operations queued for replay to an unreachable peer.", "peer"),
		reconcileReplays: r.Counter("fedshare_sfa_reconcile_replays_total",
			"Backlogged operations replayed to recovering peers."),
		reconcileRetired: r.Counter("fedshare_sfa_reconcile_retired_total",
			"Orphaned peer-held slivers released during reconciliation."),
		reconcileDropped: r.Counter("fedshare_sfa_reconcile_dropped_intent_total",
			"Intended peer-held slivers dropped because the peer lost them (restart)."),
		reconcileRuns: r.CounterVec("fedshare_sfa_reconcile_runs_total",
			"Reconciliation attempts, by outcome (converged, failed).", "outcome"),
	}
}

// clientMetrics bundles the Client's fault-handling instrumentation.
// Counters aggregate across all clients sharing a registry; the breaker
// state gauge is labeled by peer address (0 closed, 1 half-open, 2 open).
type clientMetrics struct {
	retries      *obs.Counter  // fedshare_sfa_client_retries_total
	redials      *obs.Counter  // fedshare_sfa_client_redials_total
	breakerOpens *obs.Counter  // fedshare_sfa_client_breaker_opens_total
	breakerState *obs.GaugeVec // fedshare_sfa_client_breaker_state{peer}
	shed         *obs.Counter  // fedshare_sfa_client_shed_total
}

func newClientMetrics(r *obs.Registry) *clientMetrics {
	return &clientMetrics{
		retries: r.Counter("fedshare_sfa_client_retries_total",
			"Call attempts beyond the first (transport-level retries)."),
		redials: r.Counter("fedshare_sfa_client_redials_total",
			"Reconnections after a broken client connection."),
		breakerOpens: r.Counter("fedshare_sfa_client_breaker_opens_total",
			"Circuit breaker closed/half-open to open transitions."),
		breakerState: r.GaugeVec("fedshare_sfa_client_breaker_state",
			"Circuit breaker state per peer: 0 closed, 1 half-open, 2 open.", "peer"),
		shed: r.Counter("fedshare_sfa_client_shed_total",
			"Responses shed by a server admission gate (retried with backoff)."),
	}
}

// methodLabel clamps unknown method names to one label value so a client
// probing random methods cannot grow the registry without bound.
func methodLabel(method string) string {
	switch method {
	case MethodPing, MethodGetRecord, MethodListResources, MethodPeer,
		MethodCreateSlice, MethodDeleteSlice, MethodReserve, MethodRelease,
		MethodGetShares, MethodGetUsage, MethodListHoldings:
		return method
	}
	return "unknown"
}
