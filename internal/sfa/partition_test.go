package sfa

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedshare/internal/faultnet"
	"fedshare/internal/obs"
)

// --- health tracker unit tests ----------------------------------------------

type transitionLog struct {
	mu      sync.Mutex
	entries []string
}

func (l *transitionLog) hook(peer string, from, to PeerState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from != to {
		l.entries = append(l.entries, fmt.Sprintf("%s:%s->%s", peer, from, to))
	}
}

func (l *transitionLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.entries...)
}

func TestHealthTrackerLifecycle(t *testing.T) {
	clock := newFakeClock()
	var log transitionLog
	h := newHealthTracker(clock.Now, 2, 3, 50*time.Millisecond, 7)
	h.onTransition = log.hook

	h.ensure("X")
	if got := h.state("X"); got != PeerHealthy {
		t.Fatalf("state after ensure = %s", got)
	}
	// One failure is below the suspect threshold (2).
	h.observe("X", false)
	if got := h.state("X"); got != PeerHealthy {
		t.Fatalf("state after 1 failure = %s, want healthy", got)
	}
	h.observe("X", false)
	if got := h.state("X"); got != PeerSuspect {
		t.Fatalf("state after 2 failures = %s, want suspect", got)
	}
	// Success clears a suspect streak.
	h.observe("X", true)
	if got := h.state("X"); got != PeerHealthy {
		t.Fatalf("state after recovery = %s, want healthy", got)
	}
	// Walk to down: 2 failures to suspect, then enough to cross downAfter
	// (counted from the first failure of the streak).
	for i := 0; i < 4; i++ {
		h.observe("X", false)
	}
	if got := h.state("X"); got != PeerDown {
		t.Fatalf("state after streak = %s, want down", got)
	}
	// A stray success (an in-flight call that raced the transition) must not
	// readmit a down peer; only the probe/reconcile path does.
	h.observe("X", true)
	if got := h.state("X"); got != PeerDown {
		t.Fatalf("stray success readmitted a down peer: %s", got)
	}
	if !h.beginRecovery("X") {
		t.Fatal("beginRecovery on a down peer must succeed")
	}
	if h.beginRecovery("X") {
		t.Fatal("second beginRecovery must lose the race")
	}
	// Outcomes observed during recovery are owned by the reconciler.
	h.observe("X", false)
	if got := h.state("X"); got != PeerRecovering {
		t.Fatalf("observe during recovery moved state to %s", got)
	}
	if !h.readmit("X") {
		t.Fatal("readmit after convergence must succeed")
	}
	if got := h.state("X"); got != PeerHealthy {
		t.Fatalf("state after readmit = %s", got)
	}
	// Drain path: healthy -> recovering -> (failed) -> down.
	if !h.beginDrain("X") {
		t.Fatal("beginDrain on a healthy peer must succeed")
	}
	if !h.demote("X") {
		t.Fatal("demote on a recovering peer must succeed")
	}
	want := []string{
		"X:healthy->suspect", "X:suspect->healthy",
		"X:healthy->suspect", "X:suspect->down",
		"X:down->recovering", "X:recovering->healthy",
		"X:healthy->recovering", "X:recovering->down",
	}
	if got := log.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("transitions = %v\nwant %v", got, want)
	}
	h.forget("X")
	if got := h.state("X"); got != PeerHealthy {
		t.Errorf("forgotten peer state = %s, want default healthy", got)
	}
}

func TestHealthTrackerStraightThroughDown(t *testing.T) {
	clock := newFakeClock()
	var log transitionLog
	// suspectAfter == downAfter == 1: a single failure falls straight
	// through suspect to down, with both transitions observed.
	h := newHealthTracker(clock.Now, 1, 1, 50*time.Millisecond, 1)
	h.onTransition = log.hook
	h.ensure("Y")
	h.observe("Y", false)
	if got := h.state("Y"); got != PeerDown {
		t.Fatalf("state = %s, want down", got)
	}
	want := []string{"Y:healthy->suspect", "Y:suspect->down"}
	if got := log.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("transitions = %v, want %v", got, want)
	}
}

func TestHealthTrackerDueProbes(t *testing.T) {
	clock := newFakeClock()
	const interval = 40 * time.Millisecond
	h := newHealthTracker(clock.Now, 1, 3, interval, 11)
	h.ensure("A")
	h.ensure("B")
	if due := h.dueProbes(); len(due) != 0 {
		t.Fatalf("probes due immediately after ensure: %v", due)
	}
	// interval + max jitter (interval/4) passes: both peers are due, sorted.
	clock.Advance(interval + interval/4)
	if due := h.dueProbes(); !reflect.DeepEqual(due, []string{"A", "B"}) {
		t.Fatalf("due = %v, want [A B]", due)
	}
	// dueProbes reschedules: nothing is due again until the clock moves.
	if due := h.dueProbes(); len(due) != 0 {
		t.Fatalf("probes due twice without the clock advancing: %v", due)
	}
	// Recovering peers are owned by the reconciler and never probed.
	for i := 0; i < 3; i++ {
		h.observe("A", false)
	}
	if !h.beginRecovery("A") {
		t.Fatal("A should be down and recoverable")
	}
	clock.Advance(interval + interval/4)
	if due := h.dueProbes(); !reflect.DeepEqual(due, []string{"B"}) {
		t.Fatalf("due = %v, want [B] (A is recovering)", due)
	}
}

// --- overload shedding -------------------------------------------------------

// silentListener accepts connections and never answers, wedging any call
// routed at it until the test closes the accepted connections.
type silentListener struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func newSilentListener(t *testing.T) *silentListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &silentListener{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, c)
			s.mu.Unlock()
		}
	}()
	t.Cleanup(s.close)
	return s
}

func (s *silentListener) close() {
	_ = s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		_ = c.Close()
	}
	s.conns = nil
}

// TestAdmissionGateShedsOverload wedges the server's single admission slot
// with a GetShares blocked on a silent peer, then proves that excess calls
// are shed unexecuted with CodeOverloaded, that shed responses never trip
// the client breaker, and that a retrying client succeeds once the wedge
// clears.
func TestAdmissionGateShedsOverload(t *testing.T) {
	reg := obs.NewRegistry()
	srv := startServer(t, buildAuthority(t, "PLC", 2, 1, 4),
		WithMetrics(reg), WithConfig(ServerConfig{MaxInFlight: 1}))

	// Inject a peer whose registry accepts and never answers: GetShares
	// blocks on its ListResources, holding the only admission slot.
	silent := newSilentListener(t)
	slow := NewClient(ClientConfig{
		Addr: silent.ln.Addr().String(), CallTimeout: 10 * time.Second,
		MaxAttempts: 1, BreakerThreshold: -1, Registry: reg,
	})
	t.Cleanup(func() { _ = slow.Close() })
	srv.mu.Lock()
	srv.peers["SLOW"] = &peerHandle{
		record: AuthorityRecord{Name: "SLOW", Addr: silent.ln.Addr().String()},
		client: slow,
	}
	srv.mu.Unlock()

	cShares := dialServer(t, srv)
	sharesDone := make(chan error, 1)
	var shares SharesResponse
	go func() {
		sharesDone <- cShares.Call(MethodGetShares, SharesRequest{Policy: "shapley"}, &shares)
	}()
	waitFor(t, "the admission slot to fill", func() bool { return srv.inflight.Load() == 1 })

	pingsBefore := counterValue(reg, "fedshare_sfa_requests_total", MethodPing)

	// A non-retrying client sees the shed as a retriable remote error.
	c2, err := NewClient(ClientConfig{Addr: srv.Addr(), MaxAttempts: 1, Registry: reg}), error(nil)
	t.Cleanup(func() { _ = c2.Close() })
	err = c2.Call(MethodPing, nil, nil)
	if !IsOverloaded(err) {
		t.Fatalf("call against a full server: err = %v, want overloaded", err)
	}
	if got := c2.Stats().Shed; got != 1 {
		t.Errorf("client shed count = %d, want 1", got)
	}
	if got := c2.BreakerState(); got != "closed" {
		t.Errorf("breaker after shed = %s, want closed (sheds are not transport failures)", got)
	}
	if got := reg.Counter("fedshare_sfa_shed_total", "").Value(); got != 1 {
		t.Errorf("server shed counter = %d, want 1", got)
	}
	// Shed requests are guaranteed unexecuted and do not count as dispatched.
	if got := counterValue(reg, "fedshare_sfa_requests_total", MethodPing); got != pingsBefore {
		t.Errorf("shed ping counted in requests_total (%d -> %d)", pingsBefore, got)
	}

	// A retrying client sheds once, backs off (here: until the wedge truly
	// cleared), and then succeeds — overload is retriable by construction.
	wedgeDone := make(chan struct{})
	c3 := NewClient(ClientConfig{
		Addr: srv.Addr(), MaxAttempts: 2, Registry: reg,
		Sleep: func(time.Duration) { <-wedgeDone },
	})
	t.Cleanup(func() { _ = c3.Close() })
	c3Done := make(chan error, 1)
	go func() { c3Done <- c3.Call(MethodPing, nil, nil) }()
	waitFor(t, "the retrying client to be shed", func() bool { return c3.Stats().Shed == 1 })

	// Clear the wedge: the silent peer's connections die, GetShares finishes
	// (degraded, not failed), and the slot frees.
	silent.close()
	if err := <-sharesDone; err != nil {
		t.Fatalf("GetShares blocked on a dead peer must degrade, not fail: %v", err)
	}
	if !shares.Partial || len(shares.Down) != 1 || shares.Down[0] != "SLOW" {
		t.Errorf("shares = partial=%t down=%v, want partial with [SLOW]", shares.Partial, shares.Down)
	}
	close(wedgeDone)
	if err := <-c3Done; err != nil {
		t.Fatalf("retry after shed: %v", err)
	}
	st := c3.Stats()
	if st.Shed != 1 || st.Retries != 1 {
		t.Errorf("retrying client stats = %+v, want 1 shed and 1 retry", st)
	}
	if got := c3.BreakerState(); got != "closed" {
		t.Errorf("retrying client breaker = %s, want closed", got)
	}
	if got := reg.Counter("fedshare_sfa_shed_total", "").Value(); got != 2 {
		t.Errorf("server shed counter = %d, want 2", got)
	}
}

// --- breaker half-open race --------------------------------------------------

// TestBreakerHalfOpenSingleProbe races concurrent callers against the
// open→half-open flip and proves exactly one of them performs the network
// probe; the rest fail fast on the reopened breaker.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLC", 1, 1, 1))
	clock := newFakeClock()
	var dials atomic.Int64
	var failDials atomic.Bool
	failDials.Store(true)
	cooldown := time.Second
	c := NewClient(ClientConfig{
		Addr: srv.Addr(), MaxAttempts: 1,
		BreakerThreshold: 1, BreakerCooldown: cooldown,
		Now: clock.Now, Registry: obs.NewRegistry(),
		DialFunc: func(addr string, timeout time.Duration) (net.Conn, error) {
			dials.Add(1)
			if failDials.Load() {
				return nil, errors.New("injected dial failure")
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
	})
	t.Cleanup(func() { _ = c.Close() })

	// First call fails at dial and opens the breaker (threshold 1).
	if err := c.Call(MethodPing, nil, nil); err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("first call: err = %v, want the dial failure itself", err)
	}
	if got := c.BreakerState(); got != "open" {
		t.Fatalf("breaker = %s, want open", got)
	}
	// While open and inside the cooldown, calls fail fast without dialing.
	if err := c.Call(MethodPing, nil, nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("call during cooldown: err = %v, want ErrCircuitOpen", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dials during open = %d, want 1", got)
	}

	// Cooldown elapses; many callers race the half-open flip.
	clock.Advance(cooldown)
	const callers = 8
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Call(MethodPing, nil, nil)
		}(i)
	}
	wg.Wait()
	// Exactly one caller probed the network; its failure reopened the
	// breaker so every other caller failed fast.
	if got := dials.Load(); got != 2 {
		t.Errorf("half-open probe dialed %d times, want exactly 1", got-1)
	}
	fastFails, probeFails := 0, 0
	for _, err := range errs {
		switch {
		case errors.Is(err, ErrCircuitOpen):
			fastFails++
		case err != nil:
			probeFails++
		default:
			t.Error("a call succeeded against a failing dialer")
		}
	}
	if probeFails != 1 || fastFails != callers-1 {
		t.Errorf("probe failures = %d, fast failures = %d; want 1 and %d", probeFails, fastFails, callers-1)
	}
	if got := c.BreakerState(); got != "open" {
		t.Errorf("breaker after failed probe = %s, want open", got)
	}

	// After the next cooldown a successful probe closes the breaker.
	failDials.Store(false)
	clock.Advance(cooldown)
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Fatalf("successful half-open probe: %v", err)
	}
	if got := c.BreakerState(); got != "closed" {
		t.Errorf("breaker after successful probe = %s, want closed", got)
	}
}

// --- reconciliation: lost intent ---------------------------------------------

// TestReconcileDropsLostIntent exercises the wipe/restart path: the peer
// loses holdings the coordinator still intends (here: they are released
// behind the coordinator's back), and reconciliation amends intent instead
// of demanding slivers the peer no longer has.
func TestReconcileDropsLostIntent(t *testing.T) {
	clock := newFakeClock()
	regC, reg2 := obs.NewRegistry(), obs.NewRegistry()
	p2 := startServer(t, buildAuthority(t, "P2", 2, 1, 4), WithMetrics(reg2))
	gate := faultnet.NewPartition()
	p2Addr := p2.Addr()
	srvC := startServer(t, buildAuthority(t, "C", 2, 1, 4), WithMetrics(regC),
		WithConfig(ServerConfig{
			Now: clock.Now, LeaseReapInterval: 2 * time.Millisecond,
			ProbeInterval: 50 * time.Millisecond, SuspectAfter: 1, DownAfter: 1, Seed: 3,
			PeerClient: func(addr string) ClientConfig {
				cc := ClientConfig{Addr: addr, MaxAttempts: 1, BreakerThreshold: -1, Registry: regC, Now: clock.Now}
				if addr == p2Addr {
					cc.DialFunc = gate.Dial
				}
				return cc
			},
		}))
	if err := srvC.PeerWith(p2Addr); err != nil {
		t.Fatal(err)
	}
	c := dialServer(t, srvC)

	var resp SliceResponse
	if err := c.Call(MethodCreateSlice, SliceRequest{
		Credential: userCred(), Name: "lost1", Owner: "x", MinSites: 3,
	}, &resp); err != nil {
		t.Fatal(err)
	}
	var p2Slivers []SliverRecord
	for _, sv := range resp.Slivers {
		if sv.Authority == "P2" {
			p2Slivers = append(p2Slivers, sv)
		}
	}
	if len(p2Slivers) != 2 {
		t.Fatalf("slice holds %d slivers at P2, want 2", len(p2Slivers))
	}

	// The peer "loses" the holdings: release them directly at P2, as if it
	// restarted without its volatile state.
	direct := dialServer(t, p2)
	if err := direct.Call(MethodRelease, ReleaseRequest{
		Credential: IssueCredential(testSecret, "C", "C", time.Minute),
		SliceName:  "lost1", Slivers: p2Slivers,
	}, nil); err != nil {
		t.Fatal(err)
	}

	// Partition the link and let one failed call declare P2 down.
	gate.Cut()
	var shares SharesResponse
	if err := c.Call(MethodGetShares, SharesRequest{Policy: "shapley"}, &shares); err != nil {
		t.Fatalf("degraded shares: %v", err)
	}
	if !shares.Partial {
		t.Error("shares during the cut should carry the partial marker")
	}
	waitFor(t, "P2 to be declared down", func() bool {
		return srvC.PeerLifecycleState("P2") == PeerDown
	})

	// Heal; the probe starts recovery and reconciliation drops the lost
	// intent rather than failing forever on the mismatch.
	gate.Heal()
	clock.Advance(120 * time.Millisecond)
	waitFor(t, "P2 readmission after reconcile", func() bool {
		return srvC.PeerLifecycleState("P2") == PeerHealthy && srvC.recon.depth("P2") == 0
	})
	if got := regC.Counter("fedshare_sfa_reconcile_dropped_intent_total", "").Value(); got != 2 {
		t.Errorf("dropped-intent counter = %d, want 2", got)
	}
	if got := regC.CounterVec("fedshare_sfa_reconcile_runs_total", "", "outcome").With("converged").Value(); got != 1 {
		t.Errorf("converged reconcile runs = %d, want 1", got)
	}

	// Intent was amended: deleting the slice sends P2 no further release.
	releasesBefore := counterValue(reg2, "fedshare_sfa_requests_total", MethodRelease)
	if err := c.Call(MethodDeleteSlice, DeleteRequest{Credential: userCred(), Name: "lost1"}, nil); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(reg2, "fedshare_sfa_requests_total", MethodRelease); got != releasesBefore {
		t.Errorf("delete after amended intent sent %d extra releases to P2", got-releasesBefore)
	}
	// Fresh response struct: Partial/Down are omitempty, so decoding into a
	// reused struct would leave stale values behind.
	var healed SharesResponse
	if err := c.Call(MethodGetShares, SharesRequest{Policy: "shapley"}, &healed); err != nil {
		t.Fatal(err)
	}
	if healed.Partial {
		t.Error("shares after readmission should not be partial")
	}
}

// --- partition/heal chaos ----------------------------------------------------

// runPartitionChaos drives a three-authority federation (coordinator C,
// peers P1 and P2) through a seeded schedule of partition windows on the
// C→P2 link, asserting after every heal that reconciliation converges, and
// at the end that the exactly-once identity holds at the partitioned peer
// and all capacity returns. The returned transcript is a pure function of
// the seed; the caller compares two runs for byte equality.
func runPartitionChaos(t *testing.T, seed uint64) string {
	clock := newFakeClock()
	regC, reg1, reg2 := obs.NewRegistry(), obs.NewRegistry(), obs.NewRegistry()
	authC := buildAuthority(t, "C", 2, 1, 8)
	auth1 := buildAuthority(t, "P1", 3, 1, 8)
	auth2 := buildAuthority(t, "P2", 3, 1, 8)
	p1 := startServer(t, auth1, WithMetrics(reg1))
	p2 := startServer(t, auth2, WithMetrics(reg2))
	gate := faultnet.NewPartition()
	p2Addr := p2.Addr()
	srvC := startServer(t, authC, WithMetrics(regC), WithConfig(ServerConfig{
		Now: clock.Now, LeaseReapInterval: 2 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond, SuspectAfter: 1, DownAfter: 2, Seed: seed,
		PeerClient: func(addr string) ClientConfig {
			cc := ClientConfig{Addr: addr, MaxAttempts: 1, BreakerThreshold: -1, Registry: regC, Now: clock.Now}
			if addr == p2Addr {
				cc.DialFunc = gate.Dial
			}
			return cc
		},
	}))
	if err := srvC.PeerWith(p1.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := srvC.PeerWith(p2Addr); err != nil {
		t.Fatal(err)
	}
	c := dialServer(t, srvC)

	// Populate the advertisement cache while everything is healthy, so
	// degraded-mode shares can price the full game later.
	var shares SharesResponse
	if err := c.Call(MethodGetShares, SharesRequest{Policy: "shapley"}, &shares); err != nil {
		t.Fatal(err)
	}
	if shares.Partial {
		t.Fatal("healthy federation reported partial shares")
	}

	var b strings.Builder
	plan := faultnet.DrawPartitionPlan(seed, faultnet.PartitionPlanConfig{})
	fmt.Fprintf(&b, "plan=%v\n", plan)

	type sliceInfo struct {
		name  string
		hasP2 bool
	}
	var live []sliceInfo
	var expReserve, expRelease, expRetire int64 // expected executions at P2
	opIdx := 0
	// One op = create a fresh slice and delete the one from two ops ago, so
	// slices created before a cut are deleted during it (exercising queued
	// releases) and vice versa.
	op := func() {
		state := srvC.PeerLifecycleState("P2")
		// A key for P2 is drawn only when it is not down/recovering; every
		// drawn key executes exactly once (directly or via replay).
		keyed := state != PeerDown && state != PeerRecovering
		name := fmt.Sprintf("part%03d", opIdx)
		var resp SliceResponse
		if err := c.Call(MethodCreateSlice, SliceRequest{
			Credential: userCred(), Name: name, Owner: "chaos", MinSites: 1,
		}, &resp); err != nil {
			t.Fatalf("op %d: create %s: %v", opIdx, name, err)
		}
		hasP2 := false
		for _, sv := range resp.Slivers {
			if sv.Authority == "P2" {
				hasP2 = true
				break
			}
		}
		if keyed {
			expReserve++
			if !hasP2 {
				// The keyed reserve failed in transit: its replay will place
				// slivers the committed slice does not reference, and the
				// reconciler retires them with one fresh-keyed release.
				expRetire++
			}
		}
		fmt.Fprintf(&b, "op%03d state=%s keyed=%t sites=%d hasP2=%t\n",
			opIdx, state, keyed, resp.Sites, hasP2)
		live = append(live, sliceInfo{name, hasP2})
		opIdx++
		if len(live) > 2 {
			old := live[0]
			live = live[1:]
			if err := c.Call(MethodDeleteSlice, DeleteRequest{Credential: userCred(), Name: old.name}, nil); err != nil {
				t.Fatalf("op %d: delete %s: %v", opIdx, old.name, err)
			}
			if old.hasP2 {
				expRelease++
			}
		}
	}

	for wi, w := range plan {
		for j := 0; j < w.UpOps; j++ {
			op()
		}
		gate.Cut()
		fmt.Fprintf(&b, "w%d:cut\n", wi)
		for j := 0; j < w.DownOps; j++ {
			op()
		}
		if srvC.PeerLifecycleState("P2") == PeerDown {
			// Degraded mode: shares succeed over the live sub-federation and
			// carry the partial marker while the peer is out. Fresh response
			// struct every time — Partial/Down are omitempty and would
			// otherwise keep stale values across decodes.
			var shares SharesResponse
			if err := c.Call(MethodGetShares, SharesRequest{Policy: "shapley"}, &shares); err != nil {
				t.Fatalf("window %d: degraded shares: %v", wi, err)
			}
			if !shares.Partial || !reflect.DeepEqual(shares.Down, []string{"P2"}) {
				t.Fatalf("window %d: shares = partial=%t down=%v, want partial with [P2]",
					wi, shares.Partial, shares.Down)
			}
			if _, ok := shares.Shares["P2"]; ok {
				t.Fatalf("window %d: down peer received a share", wi)
			}
			fmt.Fprintf(&b, "w%d:partial down=%v\n", wi, shares.Down)
		}
		gate.Heal()
		// Advance past the probe deadline (interval + max jitter); the next
		// reaper tick probes P2, starts recovery, and reconciles inline.
		clock.Advance(120 * time.Millisecond)
		waitFor(t, fmt.Sprintf("window %d reconciliation", wi), func() bool {
			return srvC.PeerLifecycleState("P2") == PeerHealthy && srvC.recon.depth("P2") == 0
		})
		fmt.Fprintf(&b, "w%d:healed\n", wi)
	}

	// Drain the survivors while healthy and verify all capacity returned.
	for _, s := range live {
		if err := c.Call(MethodDeleteSlice, DeleteRequest{Credential: userCred(), Name: s.name}, nil); err != nil {
			t.Fatalf("final delete %s: %v", s.name, err)
		}
		if s.hasP2 {
			expRelease++
		}
	}
	if got := authC.Utilization(); got != 0 {
		t.Errorf("C utilization after drain = %g, want 0", got)
	}
	if got := auth1.Utilization(); got != 0 {
		t.Errorf("P1 utilization after drain = %g, want 0", got)
	}
	if got := auth2.Utilization(); got != 0 {
		t.Errorf("P2 utilization after drain = %g, want 0 (orphans must be retired)", got)
	}

	// Exactly-once at the partitioned peer: executions (dispatched minus
	// dedup replays) equal the keys the coordinator drew — every queued
	// operation ran once, no more, despite replays.
	resExec := counterValue(reg2, "fedshare_sfa_requests_total", MethodReserve) -
		counterValue(reg2, "fedshare_sfa_dedup_replays_total", MethodReserve)
	relExec := counterValue(reg2, "fedshare_sfa_requests_total", MethodRelease) -
		counterValue(reg2, "fedshare_sfa_dedup_replays_total", MethodRelease)
	if resExec != expReserve {
		t.Errorf("P2 reserve executions = %d, want %d", resExec, expReserve)
	}
	if relExec != expRelease+expRetire {
		t.Errorf("P2 release executions = %d, want %d (%d releases + %d retires)",
			relExec, expRelease+expRetire, expRelease, expRetire)
	}
	runs := regC.CounterVec("fedshare_sfa_reconcile_runs_total", "", "outcome")
	if got := runs.With("converged").Value(); got != int64(len(plan)) {
		t.Errorf("converged reconcile runs = %d, want %d", got, len(plan))
	}
	if got := runs.With("failed").Value(); got != 0 {
		t.Errorf("failed reconcile runs = %d, want 0", got)
	}

	// Fully healed: shares cover the whole federation again.
	var final SharesResponse
	if err := c.Call(MethodGetShares, SharesRequest{Policy: "shapley"}, &final); err != nil {
		t.Fatal(err)
	}
	if final.Partial || len(final.Shares) != 3 {
		t.Errorf("final shares = partial=%t n=%d, want full federation", final.Partial, len(final.Shares))
	}

	fmt.Fprintf(&b, "events=%v\n", gate.Events())
	fmt.Fprintf(&b, "exec reserve=%d release=%d retire=%d\n", resExec, relExec-expRetire, expRetire)
	return b.String()
}

// TestPartitionHealConvergence is the partition/heal chaos suite: the same
// seed must drive byte-identical schedules and outcomes, every window must
// reconcile to convergence, and the partitioned peer must observe each
// reservation and release exactly once.
func TestPartitionHealConvergence(t *testing.T) {
	seed := chaosSeed(t)
	first := runPartitionChaos(t, seed)
	second := runPartitionChaos(t, seed)
	if first != second {
		t.Errorf("same seed produced different runs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	t.Logf("partition chaos transcript (seed %d):\n%s", seed, first)
}
