package sfa

import (
	"sort"
	"sync"
	"time"

	"fedshare/internal/stats"
)

// PeerState is one peer's position in the failure-detection lifecycle.
// The numeric values are exported verbatim through the
// fedshare_sfa_peer_state{peer} gauge.
type PeerState int

const (
	// PeerHealthy: recent calls succeed; the peer participates fully.
	PeerHealthy PeerState = 0
	// PeerSuspect: one or more consecutive transport failures, but not yet
	// enough to declare the peer down. It still receives traffic.
	PeerSuspect PeerState = 1
	// PeerDown: consecutive failures crossed the down threshold. The
	// coordinator stops sending it reservations, excludes it from share
	// computation, and queues releases for later replay.
	PeerDown PeerState = 2
	// PeerRecovering: a probe reached a down peer; the reconciler is
	// replaying queued operations and proving convergence before the peer
	// is readmitted to share computation.
	PeerRecovering PeerState = 3
)

func (s PeerState) String() string {
	switch s {
	case PeerHealthy:
		return "healthy"
	case PeerSuspect:
		return "suspect"
	case PeerDown:
		return "down"
	case PeerRecovering:
		return "recovering"
	}
	return "unknown"
}

// peerHealth is one peer's tracked condition.
type peerHealth struct {
	state     PeerState
	failures  int       // consecutive transport failures
	since     time.Time // entered current state
	lastSeen  time.Time // last successful contact; zero = never
	nextProbe time.Time
}

// healthTracker drives each peer through healthy → suspect → down →
// recovering from call outcomes and probe results. All time is read from
// the injected clock and probe jitter comes from a seeded RNG, so a test
// federation's health history is deterministic.
type healthTracker struct {
	mu            sync.Mutex
	now           func() time.Time
	suspectAfter  int
	downAfter     int
	probeInterval time.Duration
	rng           *stats.Rand
	peers         map[string]*peerHealth
	// onTransition observes every state change (invoked under mu — it must
	// not call back into the tracker). The server uses it to drive the
	// peer-state gauge and transition log lines.
	onTransition func(peer string, from, to PeerState)
}

func newHealthTracker(now func() time.Time, suspectAfter, downAfter int, probeInterval time.Duration, seed uint64) *healthTracker {
	return &healthTracker{
		now:           now,
		suspectAfter:  suspectAfter,
		downAfter:     downAfter,
		probeInterval: probeInterval,
		rng:           stats.NewRand(seed),
		peers:         map[string]*peerHealth{},
	}
}

// scheduleProbeLocked sets the peer's next probe deadline: one interval
// out, with deterministic jitter in [0, interval/4) so a large federation's
// probes spread out instead of firing in one burst.
func (h *healthTracker) scheduleProbeLocked(p *peerHealth, now time.Time) {
	jitter := time.Duration(h.rng.Float64() * float64(h.probeInterval) / 4)
	p.nextProbe = now.Add(h.probeInterval + jitter)
}

// setStateLocked transitions a peer, resetting its failure streak and
// firing the transition hook. Caller holds h.mu.
func (h *healthTracker) setStateLocked(name string, p *peerHealth, to PeerState, now time.Time) {
	from := p.state
	if from == to {
		return
	}
	p.state = to
	p.failures = 0
	p.since = now
	if h.onTransition != nil {
		h.onTransition(name, from, to)
	}
}

// ensure registers a peer as healthy. Re-peering resets an existing entry:
// a fresh peering handshake just round-tripped, so the peer is reachable.
func (h *healthTracker) ensure(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	p, ok := h.peers[name]
	if !ok {
		p = &peerHealth{state: PeerHealthy, since: now, lastSeen: now}
		h.peers[name] = p
		h.scheduleProbeLocked(p, now)
		if h.onTransition != nil {
			h.onTransition(name, PeerHealthy, PeerHealthy)
		}
		return
	}
	p.lastSeen = now
	h.setStateLocked(name, p, PeerHealthy, now)
}

// observe feeds one call outcome into the state machine. Success clears a
// suspect streak; failures walk healthy → suspect → down. Down and
// recovering peers are owned by the probe/reconcile path: a stray outcome
// (e.g. an in-flight call that raced the transition) never readmits them.
func (h *healthTracker) observe(name string, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, present := h.peers[name]
	if !present {
		return
	}
	now := h.now()
	if ok {
		p.lastSeen = now
		p.failures = 0
		if p.state == PeerSuspect {
			h.setStateLocked(name, p, PeerHealthy, now)
		}
		return
	}
	switch p.state {
	case PeerHealthy:
		p.failures++
		if p.failures >= h.suspectAfter {
			h.setStateLocked(name, p, PeerSuspect, now)
			// A streak spanning both thresholds in one step goes straight
			// through: re-count this failure against the down threshold.
			p.failures = 1
			if p.failures >= h.downAfter {
				h.setStateLocked(name, p, PeerDown, now)
			}
		}
	case PeerSuspect:
		p.failures++
		if p.failures >= h.downAfter {
			h.setStateLocked(name, p, PeerDown, now)
		}
	case PeerRecovering:
		// The reconciler demotes explicitly; nothing to count here.
	case PeerDown:
		// Already down; stay down until a probe succeeds.
	}
}

// state returns the peer's current state (PeerHealthy for unknown peers,
// matching the pre-health-tracking behavior of treating every peer as
// usable).
func (h *healthTracker) state(name string) PeerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.peers[name]; ok {
		return p.state
	}
	return PeerHealthy
}

// beginRecovery transitions a down peer to recovering, returning true if
// this call performed the transition (so exactly one reconciler starts).
// beginDrain does the same from healthy, for draining a backlog that
// accrued in the race window between a release and the peer's readmission.
func (h *healthTracker) beginRecovery(name string) bool {
	return h.transition(name, PeerDown, PeerRecovering)
}

func (h *healthTracker) beginDrain(name string) bool {
	return h.transition(name, PeerHealthy, PeerRecovering)
}

// readmit returns a recovering peer to healthy after the reconciler proved
// convergence; demote sends it back to down after a failed attempt.
func (h *healthTracker) readmit(name string) bool {
	return h.transition(name, PeerRecovering, PeerHealthy)
}

func (h *healthTracker) demote(name string) bool {
	return h.transition(name, PeerRecovering, PeerDown)
}

func (h *healthTracker) transition(name string, from, to PeerState) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[name]
	if !ok || p.state != from {
		return false
	}
	now := h.now()
	if to == PeerHealthy {
		p.lastSeen = now
	}
	h.setStateLocked(name, p, to, now)
	return true
}

// forget drops a peer (it was replaced or unpeered).
func (h *healthTracker) forget(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.peers, name)
}

// dueProbes returns the peers whose probe deadline has passed, in sorted
// order, and schedules their next probes. Recovering peers are skipped —
// the reconciler owns them until it readmits or demotes.
func (h *healthTracker) dueProbes() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	var due []string
	for name, p := range h.peers {
		if p.state == PeerRecovering {
			continue
		}
		if !p.nextProbe.After(now) {
			due = append(due, name)
			h.scheduleProbeLocked(p, now)
		}
	}
	sort.Strings(due)
	return due
}

// PeerHealthInfo is one peer's externally visible condition, served by the
// daemon's peer endpoint and rendered by fedctl status.
type PeerHealthInfo struct {
	Peer  string `json:"peer"`
	Addr  string `json:"addr"`
	State string `json:"state"`
	// SinceSeconds is time spent in the current state; LastSeenSeconds is
	// time since the last successful contact (-1 = never). Durations are
	// relative so they are meaningful under any clock.
	SinceSeconds    float64 `json:"since_seconds"`
	LastSeenSeconds float64 `json:"last_seen_seconds"`
	Failures        int     `json:"failures"`
	Breaker         string  `json:"breaker"`
	Backlog         int     `json:"backlog"`
}

// snapshot captures every tracked peer's condition, sorted by name.
func (h *healthTracker) snapshot() []PeerHealthInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	out := make([]PeerHealthInfo, 0, len(h.peers))
	for name, p := range h.peers {
		info := PeerHealthInfo{
			Peer:            name,
			State:           p.state.String(),
			SinceSeconds:    now.Sub(p.since).Seconds(),
			LastSeenSeconds: -1,
			Failures:        p.failures,
		}
		if !p.lastSeen.IsZero() {
			info.LastSeenSeconds = now.Sub(p.lastSeen).Seconds()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
