package sfa

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Envelope{ID: 42, Method: MethodPing, Params: marshal(map[string]int{"x": 1})}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 42 || out.Method != MethodPing {
		t.Errorf("round trip lost fields: %+v", out)
	}
	if string(out.Params) != `{"x":1}` {
		t.Errorf("params = %s", out.Params)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(id uint64, method string, errMsg string) bool {
		var buf bytes.Buffer
		in := &Envelope{ID: id, Method: method, Error: errMsg}
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return out.ID == id && out.Method == method && out.Error == errMsg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadFrameEOF(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream should yield io.EOF, got %v", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Envelope{ID: 1, Method: "m"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("truncated frame must fail")
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Error("oversized frame must be rejected before allocation")
	}
}

func TestReadFrameGarbage(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	if _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "decode") {
		t.Errorf("garbage payload should be a decode error, got %v", err)
	}
}

func TestCredentialRoundTrip(t *testing.T) {
	secret := []byte("shared-federation-root")
	c := IssueCredential(secret, "alice", "PLE", time.Minute)
	if err := c.Verify(secret, time.Now()); err != nil {
		t.Errorf("fresh credential rejected: %v", err)
	}
}

func TestCredentialExpiry(t *testing.T) {
	secret := []byte("s")
	c := IssueCredential(secret, "bob", "PLC", time.Second)
	if err := c.Verify(secret, time.Now().Add(time.Hour)); err == nil {
		t.Error("expired credential must fail")
	}
}

func TestCredentialTamper(t *testing.T) {
	secret := []byte("s")
	c := IssueCredential(secret, "bob", "PLC", time.Minute)
	c.Subject = "mallory"
	if err := c.Verify(secret, time.Now()); err == nil {
		t.Error("tampered subject must fail")
	}
	c2 := IssueCredential(secret, "bob", "PLC", time.Minute)
	if err := c2.Verify([]byte("other"), time.Now()); err == nil {
		t.Error("wrong secret must fail")
	}
	c3 := IssueCredential(secret, "bob", "PLC", time.Minute)
	c3.Signature = "zz not hex"
	if err := c3.Verify(secret, time.Now()); err == nil {
		t.Error("malformed signature must fail")
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	env := &Envelope{ID: 7, Method: MethodListResources, Params: marshal(ResourceList{
		Authority: "PLE",
		Sites: []SiteResource{
			{SiteID: "s1", Name: "Site 1", Nodes: 2, Capacity: 20, Free: 10},
			{SiteID: "s2", Name: "Site 2", Nodes: 4, Capacity: 40, Free: 40},
		},
	})}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, env); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReadFrameArbitraryBytes feeds random byte streams to ReadFrame: it
// must return an error or a message, never panic, and never allocate beyond
// the frame cap.
func TestReadFrameArbitraryBytes(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadFrame panicked on %x: %v", raw, r)
			}
		}()
		_, _ = ReadFrame(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestServerSurvivesGarbageConnection opens a raw TCP connection, writes
// junk, and verifies the server keeps serving other clients.
func TestServerSurvivesGarbageConnection(t *testing.T) {
	srv := startServer(t, buildAuthority(t, "PLC", 1, 1, 1))
	raw, err := netDial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00}); err != nil {
		t.Fatal(err)
	}
	// A well-behaved client still works.
	c := dialServer(t, srv)
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Errorf("ping after garbage peer: %v", err)
	}
}
