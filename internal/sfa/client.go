package sfa

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fedshare/internal/stats"
)

// Client is a synchronous SFA protocol client. It is safe for concurrent
// use; calls are serialized over the single connection.
//
// The client is resilient by default: any transport error (dial, write,
// read, deadline, protocol violation) marks the connection broken so the
// next attempt redials a fresh one instead of reading a stale partial
// frame, failed calls are retried with exponential backoff and
// deterministic jitter up to a per-call budget, and a circuit breaker
// fails fast once a peer has proven dead. Server-reported failures
// (*RemoteError) are returned immediately: the transport worked, so
// retrying would re-execute the request.
type Client struct {
	cfg     ClientConfig
	metrics *clientMetrics

	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	nextID  uint64
	rng     *stats.Rand
	breaker breaker
	stats   ClientStats
}

// ClientStats counts a client's fault-handling activity (also exported as
// obs counters, which aggregate over all clients sharing a registry).
type ClientStats struct {
	Dials   int64 // successful connections, including the first
	Redials int64 // successful connections after the first
	Retries int64 // attempts beyond the first, across all calls
	Shed    int64 // responses shed by a server admission gate (CodeOverloaded)
}

// NewClient builds a client from cfg without connecting; the first call
// dials lazily. Zero-valued config fields take defaults (see ClientConfig).
func NewClient(cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	c := &Client{
		cfg:     cfg,
		metrics: newClientMetrics(cfg.Registry),
		rng:     stats.NewRand(cfg.Seed),
		breaker: breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
	}
	c.metrics.breakerState.With(cfg.Addr).Set(float64(breakerClosed))
	return c
}

// Dial connects to an SFA registry eagerly, returning any dial error
// immediately. timeout bounds both the dial and each call round-trip.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	c := NewClient(ClientConfig{Addr: addr, DialTimeout: timeout, CallTimeout: timeout})
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// Stats returns a snapshot of the client's fault-handling counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// BreakerState reports the circuit breaker's current state ("closed",
// "half-open", "open") for health surfacing.
func (c *Client) BreakerState() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breaker.state.String()
}

// ensureConn dials a fresh connection if none is live. Caller holds c.mu.
func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := c.cfg.DialFunc(c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("sfa: dial %s: %w", c.cfg.Addr, err)
	}
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.w = bufio.NewWriter(conn)
	c.stats.Dials++
	if c.stats.Dials > 1 {
		c.stats.Redials++
		c.metrics.redials.Inc()
	}
	return nil
}

// breakConn discards the connection after a transport error so no later
// call can read a stale partial frame from it. Caller holds c.mu.
func (c *Client) breakConn() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
		c.r = nil
		c.w = nil
	}
}

// Call sends one request and decodes the response into result (which may be
// nil to discard). Server-side failures come back as *RemoteError without
// retry; transport failures are retried per the client's retry budget and
// surface the last error once the budget is exhausted.
//
// The mutex serializes only the wire round-trips: backoff sleeps happen
// with the lock released, so one call's backoff never blocks concurrent
// callers (or Close) for the duration of its retry schedule. The breaker is
// consulted before each backoff, so a call against an open breaker fails
// fast instead of sleeping first.
func (c *Client) Call(method string, params, result interface{}) error {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		c.mu.Lock()
		if !c.breaker.allow(c.cfg.Now()) {
			c.mu.Unlock()
			return circuitOpenError(c.cfg.Addr, lastErr)
		}
		c.setBreakerGauge()
		if attempt > 1 {
			c.stats.Retries++
			c.metrics.retries.Inc()
			delay := backoffDelay(c.cfg.RetryBase, c.cfg.RetryMax, attempt-1, c.rng)
			c.mu.Unlock()
			c.cfg.Sleep(delay)
			c.mu.Lock()
		}
		err := c.callOnce(method, params, result)
		if err == nil {
			c.breaker.success()
			c.setBreakerGauge()
			c.mu.Unlock()
			return nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			// The peer answered: the transport is healthy, so the breaker
			// never counts a remote error. An overload shed is the one
			// remote error guaranteed unexecuted — retry it with backoff;
			// everything else was executed and is returned immediately.
			c.breaker.success()
			c.setBreakerGauge()
			if remote.Code == CodeOverloaded {
				c.stats.Shed++
				c.metrics.shed.Inc()
				lastErr = err
				c.mu.Unlock()
				continue
			}
			c.mu.Unlock()
			return err
		}
		lastErr = err
		if c.breaker.failure(c.cfg.Now()) {
			c.metrics.breakerOpens.Inc()
		}
		c.setBreakerGauge()
		c.mu.Unlock()
	}
	return lastErr
}

func (c *Client) setBreakerGauge() {
	c.metrics.breakerState.With(c.cfg.Addr).Set(float64(c.breaker.state))
}

// callOnce performs one request/response round-trip. Any transport failure
// breaks the connection before returning. Caller holds c.mu.
func (c *Client) callOnce(method string, params, result interface{}) error {
	if err := c.ensureConn(); err != nil {
		return err
	}
	c.nextID++
	req := &Envelope{ID: c.nextID, Method: method}
	if params != nil {
		req.Params = marshal(params)
	}
	deadline := time.Now().Add(c.cfg.CallTimeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.breakConn()
		return fmt.Errorf("sfa: set deadline: %w", err)
	}
	if err := WriteFrame(c.w, req); err != nil {
		c.breakConn()
		return err
	}
	if err := c.w.Flush(); err != nil {
		c.breakConn()
		return fmt.Errorf("sfa: flush: %w", err)
	}
	resp, err := ReadFrame(c.r)
	if err != nil {
		c.breakConn()
		return fmt.Errorf("sfa: read response: %w", err)
	}
	if resp.ID != req.ID {
		// A stale or corrupt frame: the stream is out of sync, so the
		// connection is unusable.
		c.breakConn()
		return fmt.Errorf("sfa: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != "" {
		return &RemoteError{Method: method, Msg: resp.Error, Code: resp.Code}
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			// The frame was well-formed but the payload does not match:
			// the stream itself is still in sync, yet the response is
			// unusable and a retry would re-execute — treat as fatal.
			c.breakConn()
			return fmt.Errorf("sfa: decode result: %w", err)
		}
	}
	return nil
}

// Close tears down the connection. The client stays usable: a later Call
// redials.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.r = nil
	c.w = nil
	return err
}
