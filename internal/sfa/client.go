package sfa

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a synchronous SFA protocol client. It is safe for concurrent
// use; calls are serialized over the single connection.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	nextID  uint64
	timeout time.Duration
}

// Dial connects to an SFA registry.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("sfa: dial %s: %w", addr, err)
	}
	return &Client{
		conn:    conn,
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriter(conn),
		timeout: timeout,
	}, nil
}

// Call sends one request and decodes the response into result (which may be
// nil to discard). Server-side failures come back as errors.
func (c *Client) Call(method string, params, result interface{}) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req := &Envelope{ID: c.nextID, Method: method}
	if params != nil {
		req.Params = marshal(params)
	}
	deadline := time.Now().Add(c.timeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		return fmt.Errorf("sfa: set deadline: %w", err)
	}
	if err := WriteFrame(c.w, req); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("sfa: flush: %w", err)
	}
	resp, err := ReadFrame(c.r)
	if err != nil {
		return fmt.Errorf("sfa: read response: %w", err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("sfa: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != "" {
		return fmt.Errorf("sfa: remote: %s", resp.Error)
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("sfa: decode result: %w", err)
		}
	}
	return nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
