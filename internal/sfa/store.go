package sfa

import (
	"fmt"
	"sort"

	"fedshare/internal/planetlab"
)

// This file defines the durable-state surface of the SFA server: the
// Store interface the server appends mutation records to, the Record
// union those appends carry, and the State snapshot that recovery and
// snapshotting exchange. The server stays memory-only by default (nil
// Store); fedd wires in the WAL-backed DurableStore with -data-dir.

// Record ops. Every record describes one completed, externally visible
// mutation of durable state; replaying a log prefix in order reproduces
// the exact server state at that point.
const (
	// OpReserve: slivers placed (or a keyed failure cached) by
	// handleReserve. Carries the placement, lease expiry, and dedup key.
	OpReserve = "reserve"
	// OpRelease: slivers actually freed by handleRelease (post lease
	// trim), plus the dedup key.
	OpRelease = "release"
	// OpCreateSlice: a federated slice committed by handleCreateSlice —
	// spec, local slivers, remote slivers, optional whole-slice lease.
	OpCreateSlice = "create_slice"
	// OpDeleteSlice: a slice explicitly deleted.
	OpDeleteSlice = "delete_slice"
	// OpExpire: the reaper released one expired lease.
	OpExpire = "expire"
	// OpGen: an idempotency generation was drawn, so a recovered server
	// never reuses a generation that may have reached a peer.
	OpGen = "gen"
	// OpAmendRemote: the reconciler proved some of a slice's peer-held
	// slivers were lost (the peer restarted without them); Remote is the
	// slice's corrected peer-sliver set.
	OpAmendRemote = "amend_remote"
)

// Record is one durable mutation. Fields are a union over the ops above;
// unused fields stay zero and are omitted from the encoding.
type Record struct {
	Op      string          `json:"op"`
	Slice   string          `json:"slice,omitempty"`
	Key     string          `json:"key,omitempty"`
	Holder  string          `json:"holder,omitempty"` // reserving coordinator (OpReserve)
	Err     string          `json:"err,omitempty"`
	Kind    int             `json:"kind,omitempty"`   // leaseKind for OpExpire
	Expiry  int64           `json:"expiry,omitempty"` // UnixNano; 0 = no lease
	Gen     uint64          `json:"gen,omitempty"`
	Spec    *SliceSpecState `json:"spec,omitempty"`
	Slivers []SliverRecord  `json:"slivers,omitempty"` // local slivers
	Remote  []SliverRecord  `json:"remote,omitempty"`  // peer-held slivers
}

// Store persists the server's durable mutations. Implementations must be
// safe for concurrent use; the server additionally serializes Append
// calls against state mutations so the log is a true linearization.
type Store interface {
	// Append durably logs one mutation record before the server
	// acknowledges the mutation to its client.
	Append(Record) error
	// MaybeSnapshot cuts a snapshot (and rotates the log) if one is due.
	// The server calls it at the end of each durable region — after the
	// append AND after the region's side effects (dedup completion) are
	// visible — never from inside Append, where a keyed request's own
	// outcome would not yet be capturable.
	MaybeSnapshot() error
	// SetSnapshotSource registers the callback that captures the server's
	// full durable state, letting the store cut snapshots at durable-region
	// boundaries.
	SetSnapshotSource(func() State)
	// Close releases the store. The server does not call Close; the
	// process owner does, after Server.Close.
	Close() error
}

// SliceSpecState mirrors planetlab.SliceSpec for the durable encoding.
type SliceSpecState struct {
	Name           string `json:"name"`
	Owner          string `json:"owner,omitempty"`
	MinSites       int    `json:"min_sites,omitempty"`
	MaxSites       int    `json:"max_sites,omitempty"`
	SliversPerSite int    `json:"per,omitempty"`
}

func specState(s planetlab.SliceSpec) *SliceSpecState {
	return &SliceSpecState{Name: s.Name, Owner: s.Owner, MinSites: s.MinSites,
		MaxSites: s.MaxSites, SliversPerSite: s.SliversPerSite}
}

func (s *SliceSpecState) spec() planetlab.SliceSpec {
	return planetlab.SliceSpec{Name: s.Name, Owner: s.Owner, MinSites: s.MinSites,
		MaxSites: s.MaxSites, SliversPerSite: s.SliversPerSite}
}

// SliceState is one embedded slice's durable record.
type SliceState struct {
	Spec   SliceSpecState `json:"spec"`
	Local  []SliverRecord `json:"local,omitempty"`
	Remote []SliverRecord `json:"remote,omitempty"`
}

// LeaseState is one holding in the lease table.
type LeaseState struct {
	Slice   string         `json:"slice"`
	Kind    int            `json:"kind"`
	Holder  string         `json:"holder,omitempty"`
	Expiry  int64          `json:"expiry,omitempty"` // UnixNano; 0 = indefinite
	Slivers []SliverRecord `json:"slivers,omitempty"`
}

// DedupState is one completed idempotency entry: the key and the outcome
// that retries must replay. Reserve outcomes are the placed slivers;
// release outcomes are empty; either may instead be a cached error.
type DedupState struct {
	Key     string         `json:"key"`
	Err     string         `json:"err,omitempty"`
	Slivers []SliverRecord `json:"slivers,omitempty"`
}

// State is the full durable state of a server, canonically ordered so two
// servers that executed the same mutations compare equal with
// reflect.DeepEqual. It is the snapshot format of the durable store and
// the witness the recovery-equivalence tests compare.
type State struct {
	// Seq is the idempotency-generation high-water mark.
	Seq uint64 `json:"seq"`
	// Slices, Leases sorted by slice name; Dedup sorted by key.
	Slices   []SliceState   `json:"slices,omitempty"`
	Leases   []LeaseState   `json:"leases,omitempty"`
	Dedup    []DedupState   `json:"dedup,omitempty"`
	Usage    map[string]int `json:"usage,omitempty"`
	Embedded int            `json:"embedded,omitempty"`
}

// canonicalize sorts the state's slices into their documented order and
// normalizes empty collections to nil, so states built by replay, by live
// capture, or by a JSON round trip all compare equal with
// reflect.DeepEqual. Dedup is sorted by key (not table FIFO order):
// concurrent executions may log in a different order than they claimed
// keys, and only the set of outcomes is part of durable state.
func (st *State) canonicalize() {
	sort.Slice(st.Slices, func(i, j int) bool { return st.Slices[i].Spec.Name < st.Slices[j].Spec.Name })
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].Slice < st.Leases[j].Slice })
	sort.Slice(st.Dedup, func(i, j int) bool { return st.Dedup[i].Key < st.Dedup[j].Key })
	if len(st.Slices) == 0 {
		st.Slices = nil
	}
	if len(st.Leases) == 0 {
		st.Leases = nil
	}
	if len(st.Dedup) == 0 {
		st.Dedup = nil
	}
	if len(st.Usage) == 0 {
		st.Usage = nil
	}
}

// findLease returns the index of slice's lease entry, or -1.
func (st *State) findLease(slice string) int {
	for i := range st.Leases {
		if st.Leases[i].Slice == slice {
			return i
		}
	}
	return -1
}

// dropLease removes slice's lease entry if present.
func (st *State) dropLease(slice string) {
	if i := st.findLease(slice); i >= 0 {
		st.Leases = append(st.Leases[:i], st.Leases[i+1:]...)
	}
}

// addDedup records a completed keyed outcome (no-op for unkeyed records).
func (st *State) addDedup(key, errMsg string, slivers []SliverRecord) {
	if key == "" {
		return
	}
	st.Dedup = append(st.Dedup, DedupState{Key: key, Err: errMsg, Slivers: slivers})
}

// applyRecord advances st by one mutation record. It is the pure-data
// twin of the server's live handlers; TestRecoveryEquivalence pins the
// two to each other.
func (st *State) applyRecord(rec Record) error {
	switch rec.Op {
	case OpGen:
		if rec.Gen > st.Seq {
			st.Seq = rec.Gen
		}
	case OpReserve:
		if rec.Err == "" && len(rec.Slivers) > 0 {
			// Mirror leaseTable.add: merge slivers, keep the later expiry,
			// zero expiry (indefinite) dominates.
			if i := st.findLease(rec.Slice); i >= 0 {
				l := &st.Leases[i]
				l.Slivers = append(l.Slivers, rec.Slivers...)
				if l.Expiry == 0 || rec.Expiry == 0 {
					l.Expiry = 0
				} else if rec.Expiry > l.Expiry {
					l.Expiry = rec.Expiry
				}
			} else {
				st.Leases = append(st.Leases, LeaseState{
					Slice: rec.Slice, Kind: int(leaseReserve), Holder: rec.Holder,
					Expiry: rec.Expiry, Slivers: rec.Slivers,
				})
			}
		}
		st.addDedup(rec.Key, rec.Err, rec.Slivers)
	case OpRelease:
		// Mirror leaseTable.trim: the record already names exactly the
		// slivers that were freed.
		if i := st.findLease(rec.Slice); i >= 0 && st.Leases[i].Kind == int(leaseReserve) {
			l := &st.Leases[i]
			for _, req := range rec.Slivers {
				for j, sv := range l.Slivers {
					if sv.SiteID == req.SiteID && sv.NodeID == req.NodeID {
						l.Slivers = append(l.Slivers[:j], l.Slivers[j+1:]...)
						break
					}
				}
			}
			if len(l.Slivers) == 0 {
				st.dropLease(rec.Slice)
			}
		}
		st.addDedup(rec.Key, rec.Err, nil)
	case OpCreateSlice:
		if rec.Spec == nil {
			return fmt.Errorf("sfa: %s record for %q lacks a spec", rec.Op, rec.Slice)
		}
		st.Slices = append(st.Slices, SliceState{
			Spec: *rec.Spec, Local: rec.Slivers, Remote: rec.Remote,
		})
		st.Embedded++
		if st.Usage == nil {
			st.Usage = map[string]int{}
		}
		if len(rec.Slivers) > 0 {
			// Local slivers all carry the embedding authority's name.
			st.Usage[rec.Slivers[0].Authority] += len(rec.Slivers)
		}
		for _, sv := range rec.Remote {
			st.Usage[sv.Authority]++
		}
		if rec.Expiry != 0 {
			st.Leases = append(st.Leases, LeaseState{
				Slice: rec.Spec.Name, Kind: int(leaseSlice), Expiry: rec.Expiry,
			})
		}
	case OpDeleteSlice:
		st.deleteSlice(rec.Slice)
	case OpAmendRemote:
		for i := range st.Slices {
			if st.Slices[i].Spec.Name == rec.Slice {
				st.Slices[i].Remote = rec.Remote
				break
			}
		}
	case OpExpire:
		switch leaseKind(rec.Kind) {
		case leaseReserve:
			st.dropLease(rec.Slice)
		case leaseSlice:
			st.deleteSlice(rec.Slice)
		default:
			return fmt.Errorf("sfa: expire record with unknown lease kind %d", rec.Kind)
		}
	default:
		return fmt.Errorf("sfa: unknown record op %q", rec.Op)
	}
	return nil
}

// deleteSlice removes a slice and its lease. Usage is cumulative and
// survives deletion, exactly as in the live server.
func (st *State) deleteSlice(name string) {
	for i := range st.Slices {
		if st.Slices[i].Spec.Name == name {
			st.Slices = append(st.Slices[:i], st.Slices[i+1:]...)
			break
		}
	}
	st.dropLease(name)
}

// --- Conversions between wire records and substrate slivers ---

// toSlivers converts wire SliverRecords to substrate slivers of slice.
func toSlivers(slice string, recs []SliverRecord) []planetlab.Sliver {
	if len(recs) == 0 {
		return nil
	}
	out := make([]planetlab.Sliver, len(recs))
	for i, r := range recs {
		out[i] = planetlab.Sliver{SliceName: slice, SiteID: r.SiteID, NodeID: r.NodeID}
	}
	return out
}

// toRecords converts substrate slivers to wire records owned by authority.
func toRecords(authority string, svs []planetlab.Sliver) []SliverRecord {
	if len(svs) == 0 {
		return nil
	}
	out := make([]SliverRecord, len(svs))
	for i, sv := range svs {
		out[i] = SliverRecord{Authority: authority, SiteID: sv.SiteID, NodeID: sv.NodeID}
	}
	return out
}
