package sfa

import (
	"sync"
	"sync/atomic"
	"time"

	"fedshare/internal/planetlab"
)

// --- Idempotency dedup ---

// dedupEntry is the outcome of one keyed request (Reserve or Release).
// done is closed once resp or errMsg is final; concurrent duplicates wait
// on it and replay.
type dedupEntry struct {
	done     chan struct{}
	resp     interface{}
	errMsg   string
	complete atomic.Bool
}

// dedupTable is a bounded idempotency-key table. Eviction is FIFO over
// completed entries, so a misbehaving client cannot grow it without bound
// while in-flight requests are never dropped mid-execution.
type dedupTable struct {
	mu       sync.Mutex
	capLimit int
	entries  map[string]*dedupEntry
	order    []string
}

func newDedupTable(capLimit int) *dedupTable {
	return &dedupTable{capLimit: capLimit, entries: map[string]*dedupEntry{}}
}

// claim returns the entry for key. claimed is true when this caller owns
// execution and must fill the entry via finish; false means another request
// already executed (or is executing) the key — wait on entry.done and
// replay.
func (d *dedupTable) claim(key string) (entry *dedupEntry, claimed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[key]; ok {
		return e, false
	}
	e := &dedupEntry{done: make(chan struct{})}
	d.entries[key] = e
	d.order = append(d.order, key)
	for len(d.entries) > d.capLimit {
		evicted := false
		for i, old := range d.order {
			if e2, ok := d.entries[old]; ok && e2.complete.Load() {
				delete(d.entries, old)
				d.order = append(d.order[:i], d.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything in flight; allow temporary overshoot
		}
	}
	return e, true
}

// finish publishes the outcome and wakes replaying waiters.
func (e *dedupEntry) finish(resp interface{}, errMsg string) {
	e.resp = resp
	e.errMsg = errMsg
	e.complete.Store(true)
	close(e.done)
}

// size reports the current number of remembered keys.
func (d *dedupTable) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// restore installs an already-completed outcome recovered from durable
// state. Existing entries win (live traffic may already have re-claimed
// the key); capacity is enforced exactly as in claim.
func (d *dedupTable) restore(key string, resp interface{}, errMsg string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[key]; ok {
		return
	}
	e := &dedupEntry{done: make(chan struct{}), resp: resp, errMsg: errMsg}
	e.complete.Store(true)
	close(e.done)
	d.entries[key] = e
	d.order = append(d.order, key)
	for len(d.entries) > d.capLimit {
		evicted := false
		for i, old := range d.order {
			if e2, ok := d.entries[old]; ok && e2.complete.Load() {
				delete(d.entries, old)
				d.order = append(d.order[:i], d.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
}

// snapshot returns the completed entries in insertion (FIFO) order.
// In-flight entries are skipped: their outcome record has not been
// appended yet, so a snapshot cut now correctly omits them and the
// record that follows re-creates them on replay.
func (d *dedupTable) snapshot() []DedupState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]DedupState, 0, len(d.entries))
	for _, key := range d.order {
		e, ok := d.entries[key]
		if !ok || !e.complete.Load() {
			continue
		}
		ds := DedupState{Key: key, Err: e.errMsg}
		if rr, ok := e.resp.(*ReserveResponse); ok && rr != nil {
			ds.Slivers = rr.Slivers
		}
		out = append(out, ds)
	}
	return out
}

// --- Leases ---

// leaseKind distinguishes what expiry must undo.
type leaseKind int

const (
	// leaseReserve holds slivers placed by handleReserve for a remote
	// coordinator; expiry releases them locally.
	leaseReserve leaseKind = iota
	// leaseSlice holds a whole slice embedded by handleCreateSlice; expiry
	// deletes the slice and releases its remote slivers too.
	leaseSlice
)

// serverLease is one slice's hold on resources. A zero expiry means the
// slivers are held until explicit release and the reaper never touches
// them; a non-zero expiry makes the holding a lease. holder records which
// coordinator reserved the slivers (the credential subject), so
// ListHoldings can answer anti-entropy reads per coordinator.
type serverLease struct {
	slice   string
	kind    leaseKind
	holder  string
	expiry  time.Time
	slivers []planetlab.Sliver // leaseReserve only
}

func (l *serverLease) leased() bool { return !l.expiry.IsZero() }

// leaseTable indexes active holdings by slice name. It tracks *all* reserve
// holdings — leased or not — so Release can free exactly the slivers this
// server still holds: once the reaper (or a racing duplicate) has freed a
// sliver, a later Release for it is a no-op instead of a second node-load
// decrement that would leak capacity held by other slices.
type leaseTable struct {
	mu         sync.Mutex
	leases     map[string]*serverLease
	lastLeased int
	// onChange, when set, observes the change in the number of *leased*
	// entries after every mutation. It is invoked under mu, so deltas are
	// ordered and sum to the live count however mutations interleave.
	onChange func(delta int)
}

func newLeaseTable() *leaseTable {
	return &leaseTable{leases: map[string]*serverLease{}}
}

// notifyLocked reports the leased-entry delta since the last mutation.
// Caller holds lt.mu.
func (lt *leaseTable) notifyLocked() {
	leased := 0
	for _, l := range lt.leases {
		if l.leased() {
			leased++
		}
	}
	delta := leased - lt.lastLeased
	lt.lastLeased = leased
	if lt.onChange != nil && delta != 0 {
		lt.onChange(delta)
	}
}

// add registers (or extends) a holding. A repeated add for the same slice
// merges slivers and keeps the later expiry, where a zero expiry acts as
// +infinity: merging an indefinite holding with a leased one leaves the
// whole holding indefinite rather than silently expiring it.
func (lt *leaseTable) add(slice string, kind leaseKind, holder string, slivers []planetlab.Sliver, expiry time.Time) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if l, ok := lt.leases[slice]; ok {
		l.slivers = append(l.slivers, slivers...)
		if l.expiry.IsZero() || expiry.IsZero() {
			l.expiry = time.Time{}
		} else if expiry.After(l.expiry) {
			l.expiry = expiry
		}
		// A merged holding keeps its original holder (slice names are
		// scoped per coordinator in practice).
	} else {
		lt.leases[slice] = &serverLease{slice: slice, kind: kind, holder: holder, expiry: expiry, slivers: slivers}
	}
	lt.notifyLocked()
}

// remove drops the holding for slice (explicit delete).
func (lt *leaseTable) remove(slice string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	delete(lt.leases, slice)
	lt.notifyLocked()
}

// trim removes the requested slivers from a reserve holding and returns the
// ones actually removed — the only slivers the caller may release. Requests
// for slivers no longer tracked (already reaped, already released, or never
// reserved here) return nothing. When no slivers remain the holding itself
// goes away.
func (lt *leaseTable) trim(slice string, requested []planetlab.Sliver) []planetlab.Sliver {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l, ok := lt.leases[slice]
	if !ok || l.kind != leaseReserve {
		return nil
	}
	var removed []planetlab.Sliver
	for _, req := range requested {
		for i, sv := range l.slivers {
			if sv.SiteID == req.SiteID && sv.NodeID == req.NodeID {
				l.slivers = append(l.slivers[:i], l.slivers[i+1:]...)
				removed = append(removed, sv)
				break
			}
		}
	}
	if len(l.slivers) == 0 {
		delete(lt.leases, slice)
	}
	lt.notifyLocked()
	return removed
}

// expired removes and returns every leased holding whose expiry is at or
// before now. Indefinite (zero-expiry) holdings are never reaped.
func (lt *leaseTable) expired(now time.Time) []*serverLease {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	var out []*serverLease
	for name, l := range lt.leases {
		if l.leased() && !l.expiry.After(now) {
			out = append(out, l)
			delete(lt.leases, name)
		}
	}
	lt.notifyLocked()
	return out
}

// install sets a holding directly from recovered durable state,
// replacing any existing entry for the slice.
func (lt *leaseTable) install(slice string, kind leaseKind, holder string, slivers []planetlab.Sliver, expiry time.Time) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.leases[slice] = &serverLease{slice: slice, kind: kind, holder: holder, expiry: expiry, slivers: slivers}
	lt.notifyLocked()
}

// holdingsFor returns deep copies of the reserve holdings owned by holder,
// for the anti-entropy ListHoldings read.
func (lt *leaseTable) holdingsFor(holder string) []serverLease {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	var out []serverLease
	for _, l := range lt.leases {
		if l.kind != leaseReserve || l.holder != holder {
			continue
		}
		cp := *l
		cp.slivers = append([]planetlab.Sliver(nil), l.slivers...)
		out = append(out, cp)
	}
	return out
}

// snapshot returns deep copies of every holding (leased or not).
func (lt *leaseTable) snapshot() []serverLease {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	out := make([]serverLease, 0, len(lt.leases))
	for _, l := range lt.leases {
		cp := *l
		cp.slivers = append([]planetlab.Sliver(nil), l.slivers...)
		out = append(out, cp)
	}
	return out
}

// active reports the number of tracked holdings, leased or not.
func (lt *leaseTable) active() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.leases)
}
