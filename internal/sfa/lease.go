package sfa

import (
	"sync"
	"sync/atomic"
	"time"

	"fedshare/internal/planetlab"
)

// --- Idempotency dedup ---

// dedupEntry is the outcome of one keyed request (Reserve or Release).
// done is closed once resp or errMsg is final; concurrent duplicates wait
// on it and replay.
type dedupEntry struct {
	done     chan struct{}
	resp     interface{}
	errMsg   string
	complete atomic.Bool
}

// dedupTable is a bounded idempotency-key table. Eviction is FIFO over
// completed entries, so a misbehaving client cannot grow it without bound
// while in-flight requests are never dropped mid-execution.
type dedupTable struct {
	mu       sync.Mutex
	capLimit int
	entries  map[string]*dedupEntry
	order    []string
}

func newDedupTable(capLimit int) *dedupTable {
	return &dedupTable{capLimit: capLimit, entries: map[string]*dedupEntry{}}
}

// claim returns the entry for key. claimed is true when this caller owns
// execution and must fill the entry via finish; false means another request
// already executed (or is executing) the key — wait on entry.done and
// replay.
func (d *dedupTable) claim(key string) (entry *dedupEntry, claimed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[key]; ok {
		return e, false
	}
	e := &dedupEntry{done: make(chan struct{})}
	d.entries[key] = e
	d.order = append(d.order, key)
	for len(d.entries) > d.capLimit {
		evicted := false
		for i, old := range d.order {
			if e2, ok := d.entries[old]; ok && e2.complete.Load() {
				delete(d.entries, old)
				d.order = append(d.order[:i], d.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything in flight; allow temporary overshoot
		}
	}
	return e, true
}

// finish publishes the outcome and wakes replaying waiters.
func (e *dedupEntry) finish(resp interface{}, errMsg string) {
	e.resp = resp
	e.errMsg = errMsg
	e.complete.Store(true)
	close(e.done)
}

// size reports the current number of remembered keys.
func (d *dedupTable) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// --- Leases ---

// leaseKind distinguishes what expiry must undo.
type leaseKind int

const (
	// leaseReserve holds slivers placed by handleReserve for a remote
	// coordinator; expiry releases them locally.
	leaseReserve leaseKind = iota
	// leaseSlice holds a whole slice embedded by handleCreateSlice; expiry
	// deletes the slice and releases its remote slivers too.
	leaseSlice
)

// serverLease is one slice's time-limited hold on resources.
type serverLease struct {
	slice   string
	kind    leaseKind
	expiry  time.Time
	slivers []planetlab.Sliver // leaseReserve only
}

// leaseTable indexes active leases by slice name.
type leaseTable struct {
	mu     sync.Mutex
	leases map[string]*serverLease
}

func newLeaseTable() *leaseTable {
	return &leaseTable{leases: map[string]*serverLease{}}
}

// add registers (or extends) a lease. A repeated add for the same slice
// merges slivers and keeps the later expiry. It reports whether the lease
// is new.
func (lt *leaseTable) add(slice string, kind leaseKind, slivers []planetlab.Sliver, expiry time.Time) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if l, ok := lt.leases[slice]; ok {
		l.slivers = append(l.slivers, slivers...)
		if expiry.After(l.expiry) {
			l.expiry = expiry
		}
		return false
	}
	lt.leases[slice] = &serverLease{slice: slice, kind: kind, expiry: expiry, slivers: slivers}
	return true
}

// remove drops the lease for slice (explicit release or delete). It
// reports whether a lease existed.
func (lt *leaseTable) remove(slice string) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if _, ok := lt.leases[slice]; !ok {
		return false
	}
	delete(lt.leases, slice)
	return true
}

// trim removes specific slivers from a reserve lease after a partial
// Release; when none remain the lease itself goes away. It reports whether
// the lease was fully removed.
func (lt *leaseTable) trim(slice string, released []planetlab.Sliver) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l, ok := lt.leases[slice]
	if !ok {
		return false
	}
	for _, rel := range released {
		for i, sv := range l.slivers {
			if sv.SiteID == rel.SiteID && sv.NodeID == rel.NodeID {
				l.slivers = append(l.slivers[:i], l.slivers[i+1:]...)
				break
			}
		}
	}
	if len(l.slivers) == 0 {
		delete(lt.leases, slice)
		return true
	}
	return false
}

// expired removes and returns every lease whose expiry is at or before now.
func (lt *leaseTable) expired(now time.Time) []*serverLease {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	var out []*serverLease
	for name, l := range lt.leases {
		if !l.expiry.After(now) {
			out = append(out, l)
			delete(lt.leases, name)
		}
	}
	return out
}

// active reports the number of live leases.
func (lt *leaseTable) active() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.leases)
}
