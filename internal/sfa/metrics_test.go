package sfa

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fedshare/internal/obs"
)

// startMetricServer starts a server against a private registry so counter
// assertions are isolated from other tests sharing obs.Default.
func startMetricServer(t *testing.T, auth string, sites int) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	srv := startServer(t, buildAuthority(t, auth, sites, 1, 1), WithMetrics(reg))
	return srv, reg
}

func counterValue(reg *obs.Registry, name, method string) int64 {
	return reg.CounterVec(name, "", "method").With(method).Value()
}

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestBadSecretIncrementsErrorCounter(t *testing.T) {
	srv, reg := startMetricServer(t, "PLC", 2)
	c := dialServer(t, srv)
	bad := IssueCredential([]byte("wrong secret"), "evil", "evil", time.Minute)
	err := c.Call(MethodCreateSlice, SliceRequest{Credential: bad, Name: "x", MinSites: 1}, nil)
	if err == nil {
		t.Fatal("bad secret must fail")
	}
	if got := counterValue(reg, "fedshare_sfa_errors_total", MethodCreateSlice); got != 1 {
		t.Errorf("CreateSlice error counter = %d, want 1", got)
	}
	if got := counterValue(reg, "fedshare_sfa_requests_total", MethodCreateSlice); got != 1 {
		t.Errorf("CreateSlice request counter = %d, want 1", got)
	}
	// A failed reserve with a bad secret counts too.
	if err := c.Call(MethodReserve, ReserveRequest{
		Credential: bad, SliceName: "x", Sites: 1, PerSite: 1,
	}, nil); err == nil {
		t.Fatal("bad secret reserve must fail")
	}
	if got := counterValue(reg, "fedshare_sfa_errors_total", MethodReserve); got != 1 {
		t.Errorf("Reserve error counter = %d, want 1", got)
	}
}

func TestUnknownMethodCountsUnderClampedLabel(t *testing.T) {
	srv, reg := startMetricServer(t, "PLC", 1)
	c := dialServer(t, srv)
	for _, m := range []string{"sfa.Nope", "sfa.AlsoNope", "totally.random"} {
		if err := c.Call(m, nil, nil); err == nil {
			t.Fatalf("method %q must fail", m)
		}
	}
	// All unknown names share one label value, so probing cannot grow the
	// registry without bound.
	if got := counterValue(reg, "fedshare_sfa_errors_total", "unknown"); got != 3 {
		t.Errorf("unknown-method error counter = %d, want 3", got)
	}
	snap := reg.Snapshot()
	for _, f := range snap.Families {
		if f.Name != "fedshare_sfa_errors_total" {
			continue
		}
		if len(f.Metrics) != 1 {
			t.Errorf("errors family has %d children, want 1: %+v", len(f.Metrics), f.Metrics)
		}
	}
}

func TestMalformedEnvelopeCountsProtocolError(t *testing.T) {
	srv, reg := startMetricServer(t, "PLC", 1)
	conn, err := netDial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Valid length prefix, garbage JSON payload.
	payload := []byte("this is not json{{{")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	proto := reg.Counter("fedshare_sfa_protocol_errors_total", "")
	waitFor(t, "protocol error counter", func() bool { return proto.Value() == 1 })
	// The server dropped the connection.
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("read after malformed frame = %v, want EOF", err)
	}
	// An oversized frame header counts as well.
	conn2, err := netDial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	if _, err := conn2.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "oversized-frame counter", func() bool { return proto.Value() == 2 })
}

func TestReserveFailureRollbackCountsAndReleases(t *testing.T) {
	reg := obs.NewRegistry()
	servers := federate(t, map[string][3]int{
		"PLC": {2, 1, 1}, "PLE": {3, 1, 1},
	}, WithMetrics(reg))
	c := dialServer(t, servers["PLC"])
	// 5 local+remote sites exist but 9 are demanded: PLE's slivers are
	// reserved, then released through releaseRemote on abort.
	err := c.Call(MethodCreateSlice, SliceRequest{
		Credential: userCred(), Name: "toobig", MinSites: 9,
	}, nil)
	if err == nil {
		t.Fatal("infeasible slice must fail")
	}
	if got := counterValue(reg, "fedshare_sfa_errors_total", MethodCreateSlice); got != 1 {
		t.Errorf("CreateSlice error counter = %d, want 1", got)
	}
	// The rollback released every remote sliver.
	c2 := dialServer(t, servers["PLE"])
	var rl ResourceList
	if err := c2.Call(MethodListResources, Empty{}, &rl); err != nil {
		t.Fatal(err)
	}
	for _, s := range rl.Sites {
		if s.Free != s.Capacity {
			t.Errorf("PLE site %s leaked: free %d of %d", s.SiteID, s.Free, s.Capacity)
		}
	}
	// The remote Reserve and Release at PLE were successful requests, not
	// errors (both servers share reg).
	if got := counterValue(reg, "fedshare_sfa_errors_total", MethodReserve); got != 0 {
		t.Errorf("Reserve error counter = %d, want 0", got)
	}
	if got := counterValue(reg, "fedshare_sfa_requests_total", MethodRelease); got == 0 {
		t.Error("rollback should have issued sfa.Release requests")
	}
}

func TestConnectionAndPeerGauges(t *testing.T) {
	reg := obs.NewRegistry()
	servers := federate(t, map[string][3]int{
		"PLC": {1, 1, 1}, "PLE": {1, 1, 1},
	}, WithMetrics(reg))
	peers := reg.Gauge("fedshare_sfa_peers", "")
	if peers.Value() != 1 {
		t.Errorf("peers gauge = %g, want 1", peers.Value())
	}
	active := reg.Gauge("fedshare_sfa_active_connections", "")
	// The federation's own back-dials hold connections; a new client adds
	// one more.
	base := active.Value()
	c := dialServer(t, servers["PLC"])
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "active connections to rise", func() bool { return active.Value() >= base+1 })
	if err := servers["PLC"].Close(); err != nil {
		t.Fatal(err)
	}
	if got := peers.Value(); got != 0 {
		t.Errorf("peers gauge after close = %g, want 0", got)
	}
}

func TestRequestLatencyHistogram(t *testing.T) {
	srv, reg := startMetricServer(t, "PLC", 1)
	c := dialServer(t, srv)
	for i := 0; i < 3; i++ {
		if err := c.Call(MethodPing, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	h := reg.HistogramVec("fedshare_sfa_request_seconds", "", nil, "method").With(MethodPing)
	if h.Count() != 3 {
		t.Errorf("latency histogram count = %d, want 3", h.Count())
	}
}

// erringListener fails Accept a fixed number of times, then reports
// closure, so the backoff path can be driven deterministically.
type erringListener struct {
	mu    sync.Mutex
	fails int
}

func (l *erringListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fails > 0 {
		l.fails--
		return nil, fmt.Errorf("synthetic accept failure")
	}
	return nil, net.ErrClosed
}
func (l *erringListener) Close() error   { return nil }
func (l *erringListener) Addr() net.Addr { return &net.TCPAddr{} }

func TestAcceptLoopBackoffAndRateLimitedLog(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	srv := NewServer(buildAuthority(t, "PLC", 1, 1, 1), testSecret,
		WithMetrics(reg), WithLogger(logf))
	const fails = 6
	start := time.Now()
	srv.wg.Add(1)
	srv.acceptLoop(&erringListener{fails: fails})
	elapsed := time.Since(start)

	if got := reg.Counter("fedshare_sfa_accept_errors_total", "").Value(); got != fails {
		t.Errorf("accept error counter = %d, want %d", got, fails)
	}
	// Backoff: 5+10+20+40+80+160 ms minimum.
	if elapsed < 300*time.Millisecond {
		t.Errorf("accept loop returned in %v; backoff not applied", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	// Rate limiting: one log line for 6 failures inside the interval.
	var acceptLines []string
	for _, l := range lines {
		if strings.Contains(l, "accept:") {
			acceptLines = append(acceptLines, l)
		}
	}
	if len(acceptLines) != 1 {
		t.Errorf("accept failures logged %d times, want 1: %q", len(acceptLines), acceptLines)
	}
}

func TestDebugLevelLogsRequests(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	srv := startServer(t, buildAuthority(t, "PLC", 1, 1, 1),
		WithMetrics(obs.NewRegistry()), WithLogger(logf), WithLogLevel(obs.LogDebug))
	c := dialServer(t, srv)
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, l := range lines {
		if strings.Contains(l, "level=debug") && strings.Contains(l, "method=sfa.Ping") {
			found = true
		}
	}
	if !found {
		t.Errorf("no debug request line in %q", lines)
	}
}

func TestInfoLevelSuppressesDebug(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	srv := startServer(t, buildAuthority(t, "PLC", 1, 1, 1),
		WithMetrics(obs.NewRegistry()), WithLogger(logf))
	c := dialServer(t, srv)
	if err := c.Call(MethodPing, nil, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, l := range lines {
		if strings.Contains(l, "level=debug") {
			t.Errorf("debug line leaked at info level: %q", l)
		}
	}
}
