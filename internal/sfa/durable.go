package sfa

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"fedshare/internal/obs"
	"fedshare/internal/wal"
)

// DurableOptions configures the WAL-backed store. Zero fields take
// defaults, so DurableOptions{Dir: d} is a working configuration.
type DurableOptions struct {
	// Dir is the data directory (required).
	Dir string
	// Fsync selects the WAL durability discipline (default
	// wal.FsyncInterval: process crashes lose nothing, power loss loses
	// at most FsyncInterval of acknowledged work).
	Fsync wal.FsyncPolicy
	// FsyncInterval paces background fsyncs (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery cuts a snapshot and rotates the log after this many
	// appends (default 4096; negative disables automatic snapshots).
	SnapshotEvery int
	// Registry receives the WAL instrumentation (default obs.Default).
	Registry *obs.Registry
	// Logf receives recovery and maintenance diagnostics (optional).
	Logf func(string, ...interface{})
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	if o.Registry == nil {
		o.Registry = obs.Default
	}
	return o
}

// DurableStore persists server mutations in a write-ahead log and cuts
// periodic state snapshots so recovery replays a bounded suffix. It
// implements Store.
type DurableStore struct {
	log   *wal.Log
	every int
	logf  func(string, ...interface{})

	mu     sync.Mutex
	since  int // appends since the last snapshot
	source func() State
}

// OpenDurableStore opens (or creates) the store in opts.Dir and recovers
// the durable server state: the newest valid snapshot plus the replayed
// log suffix, tolerating a torn tail. The returned State is what the
// server must Restore before Start; it is nil only for a fresh directory.
func OpenDurableStore(opts DurableOptions) (*DurableStore, *State, error) {
	opts = opts.withDefaults()
	l, rec, err := wal.Open(wal.Options{
		Dir:      opts.Dir,
		Policy:   opts.Fsync,
		Interval: opts.FsyncInterval,
		Registry: opts.Registry,
		Logf:     opts.Logf,
	})
	if err != nil {
		return nil, nil, err
	}
	st := &State{}
	if rec.Snapshot != nil {
		if err := json.Unmarshal(rec.Snapshot, st); err != nil {
			_ = l.Close()
			return nil, nil, fmt.Errorf("sfa: decode snapshot at seq %d: %w", rec.SnapshotSeq, err)
		}
	}
	for _, r := range rec.Records {
		var mrec Record
		if err := json.Unmarshal(r.Data, &mrec); err != nil {
			_ = l.Close()
			return nil, nil, fmt.Errorf("sfa: decode wal record %d: %w", r.Seq, err)
		}
		if err := st.applyRecord(mrec); err != nil {
			_ = l.Close()
			return nil, nil, fmt.Errorf("sfa: replay wal record %d: %w", r.Seq, err)
		}
	}
	st.canonicalize()
	d := &DurableStore{log: l, every: opts.SnapshotEvery, logf: opts.Logf}
	if d.logf == nil {
		d.logf = func(string, ...interface{}) {}
	}
	if rec.Snapshot == nil && len(rec.Records) == 0 {
		return d, nil, nil
	}
	return d, st, nil
}

// Append durably logs one mutation record. Snapshot pacing is only
// counted here; the cut itself happens in MaybeSnapshot, which the server
// calls once the whole durable region (including dedup completion) is
// capturable.
func (d *DurableStore) Append(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sfa: encode wal record: %w", err)
	}
	if _, err := d.log.Append(b); err != nil {
		return err
	}
	d.mu.Lock()
	d.since++
	d.mu.Unlock()
	return nil
}

// MaybeSnapshot cuts a snapshot and rotates the log when SnapshotEvery
// appends have accumulated. A failed snapshot does not lose data — the
// log keeps growing until the next successful cut.
func (d *DurableStore) MaybeSnapshot() error {
	d.mu.Lock()
	due := d.every > 0 && d.since >= d.every && d.source != nil
	if due {
		d.since = 0
	}
	source := d.source
	d.mu.Unlock()
	if !due {
		return nil
	}
	if err := d.snapshot(source); err != nil {
		d.logf("sfa: periodic snapshot failed (log keeps growing): %v", err)
		return err
	}
	return nil
}

// SetSnapshotSource registers the state-capture callback. The server
// calls this once at construction.
func (d *DurableStore) SetSnapshotSource(fn func() State) {
	d.mu.Lock()
	d.source = fn
	d.mu.Unlock()
}

// Snapshot forces a snapshot + rotation now (also done automatically
// every SnapshotEvery appends and at Close).
func (d *DurableStore) Snapshot() error {
	d.mu.Lock()
	source := d.source
	d.since = 0
	d.mu.Unlock()
	if source == nil {
		return fmt.Errorf("sfa: no snapshot source registered")
	}
	return d.snapshot(source)
}

func (d *DurableStore) snapshot(source func() State) error {
	st := source()
	b, err := json.Marshal(&st)
	if err != nil {
		return fmt.Errorf("sfa: encode snapshot: %w", err)
	}
	return d.log.Snapshot(b)
}

// Close cuts a final snapshot when possible (making the next recovery a
// pure snapshot load) and closes the log.
func (d *DurableStore) Close() error {
	d.mu.Lock()
	source := d.source
	d.mu.Unlock()
	if source != nil {
		if err := d.snapshot(source); err != nil {
			d.logf("sfa: final snapshot failed: %v", err)
		}
	}
	return d.log.Close()
}
