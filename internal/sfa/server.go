package sfa

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fedshare/internal/core"
	"fedshare/internal/economics"
	"fedshare/internal/obs"
	"fedshare/internal/planetlab"
)

// ServerConfig tunes a Server's fault-tolerance machinery. Zero fields
// take defaults, so the zero value preserves historical behavior.
type ServerConfig struct {
	// IdleReadDeadline drops a connection that sends nothing for this long
	// (default 2m). Tests shrink it to ~100ms to exercise the idle-drop
	// path quickly.
	IdleReadDeadline time.Duration
	// DedupCapacity bounds the Reserve idempotency-key table (default
	// 1024 completed entries; in-flight entries are never evicted).
	DedupCapacity int
	// LeaseReapInterval paces the background lease reaper (default 1s).
	LeaseReapInterval time.Duration
	// Now supplies the lease clock (default time.Now). Tests substitute a
	// simulated clock so expiry is driven deterministically; fedd keeps
	// the wall clock.
	Now func() time.Time
	// MaxInFlight bounds concurrently executing requests; excess requests
	// are shed unexecuted with CodeOverloaded so clients retry with
	// backoff instead of piling onto a saturated server. 0 = unlimited
	// (the historical behavior).
	MaxInFlight int
	// ProbeInterval paces peer liveness probes (default 2s). Probes
	// piggyback on the reaper tick and due-ness is judged by Now, so tests
	// drive them with a simulated clock.
	ProbeInterval time.Duration
	// SuspectAfter and DownAfter are the consecutive-transport-failure
	// thresholds for healthy→suspect (default 1) and suspect→down
	// (default 3, counted from the first failure of the streak).
	SuspectAfter int
	DownAfter    int
	// Seed feeds the deterministic probe-jitter RNG.
	Seed uint64
	// PeerClient, when set, builds the ClientConfig for outbound peer
	// connections (PeerWith and peering back-dials); tests use it to
	// route peer traffic through fault gates, fake clocks, and custom
	// breaker settings. Addr and Registry are filled in if left zero.
	PeerClient func(addr string) ClientConfig
}

func (cfg ServerConfig) withDefaults() ServerConfig {
	if cfg.IdleReadDeadline <= 0 {
		cfg.IdleReadDeadline = 2 * time.Minute
	}
	if cfg.DedupCapacity <= 0 {
		cfg.DedupCapacity = 1024
	}
	if cfg.LeaseReapInterval <= 0 {
		cfg.LeaseReapInterval = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 1
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	return cfg
}

// Server is one authority's SFA registry: it serves the wire protocol over
// TCP, manages peering, embeds federated slices, and computes value shares
// from the federation's advertised contributions.
type Server struct {
	auth     *planetlab.Authority
	secret   []byte
	demand   *economics.Workload
	log      *obs.Logger
	obsreg   *obs.Registry
	metrics  *serverMetrics
	cfg      ServerConfig
	dedup    *dedupTable
	leases   *leaseTable
	health   *healthTracker
	recon    *reconciler
	seq      atomic.Uint64 // per-lifecycle nonce for outbound idempotency keys
	inflight atomic.Int64  // requests currently being handled (admission gate)
	store    Store         // nil = memory-only (the default)

	// durableMu serializes every (state mutation + store append) pair so
	// the log is a true linearization of execution: replaying a durable
	// log prefix reproduces exactly the state the server held when that
	// prefix was its log. It also makes the snapshot cut at an append
	// boundary consistent — no mutation is half-applied while it is held.
	// Lock ordering: durableMu is acquired before any of auth.mu,
	// leases.mu, dedup.mu, or s.mu, and never while holding them; network
	// calls to peers are never made under durableMu.
	durableMu sync.Mutex

	mu         sync.Mutex
	record     AuthorityRecord
	peers      map[string]*peerHandle
	remoteRefs map[string][]SliverRecord // slice -> slivers held at peers
	conns      map[net.Conn]struct{}
	usage      map[string]int // authority -> cumulative slivers served
	embedded   int            // slices embedded via this registry
	draining   bool

	ln       net.Listener
	wg       sync.WaitGroup
	reapStop chan struct{}
	reapDone chan struct{}
	closed   bool
}

type peerHandle struct {
	record AuthorityRecord
	client *Client
	// lastResources is the peer's last successful advertisement (guarded
	// by the server's mu): when the peer is down, degraded-mode share
	// computation still shapes the full federation model with it before
	// restricting valuation to the live sub-federation.
	lastResources *ResourceList
}

// Option customizes a Server.
type Option func(*Server)

// WithLogger routes server diagnostics to logf (default: log.Printf). The
// server wraps logf in a leveled obs.Logger at the current level, so
// WithLogger composes with WithLogLevel in either order.
func WithLogger(logf func(string, ...interface{})) Option {
	return func(s *Server) { s.log = obs.NewLogger(logf, s.log.Level()) }
}

// WithLogLevel sets the minimum diagnostic level (default obs.LogInfo).
// At obs.LogDebug the server also logs one line per dispatched request.
func WithLogLevel(min obs.LogLevel) Option {
	return func(s *Server) { s.log.SetLevel(min) }
}

// WithMetrics routes the server's instrumentation to reg instead of
// obs.Default — tests use this to read counters in isolation.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.obsreg = reg }
}

// WithDemand sets the demand profile used by GetShares (default: a single
// measurement-style experiment across the federation).
func WithDemand(w *economics.Workload) Option {
	return func(s *Server) { s.demand = w }
}

// WithConfig overrides the server's fault-tolerance configuration; zero
// fields keep their defaults.
func WithConfig(cfg ServerConfig) Option {
	return func(s *Server) { s.cfg = cfg.withDefaults() }
}

// WithStore persists every durable mutation through st before it is
// acknowledged. The default (no store) keeps the server memory-only with
// identical behavior. Pair with Restore to reload recovered state before
// Start.
func WithStore(st Store) Option {
	return func(s *Server) { s.store = st }
}

// NewServer builds a registry for the given authority. secret is the
// federation trust root shared among peered authorities.
func NewServer(auth *planetlab.Authority, secret []byte, opts ...Option) *Server {
	s := &Server{
		auth:       auth,
		secret:     secret,
		peers:      map[string]*peerHandle{},
		remoteRefs: map[string][]SliverRecord{},
		conns:      map[net.Conn]struct{}{},
		usage:      map[string]int{},
		log:        obs.NewLogger(log.Printf, obs.LogInfo),
		obsreg:     obs.Default,
		cfg:        ServerConfig{}.withDefaults(),
		leases:     newLeaseTable(),
	}
	for _, o := range opts {
		o(s)
	}
	s.dedup = newDedupTable(s.cfg.DedupCapacity)
	s.metrics = newServerMetrics(s.obsreg)
	s.recon = newReconciler()
	s.health = newHealthTracker(s.cfg.Now, s.cfg.SuspectAfter, s.cfg.DownAfter, s.cfg.ProbeInterval, s.cfg.Seed)
	s.health.onTransition = func(peer string, from, to PeerState) {
		s.metrics.peerState.With(peer).Set(float64(to))
		if from != to {
			s.metrics.peerTransitions.With(peer, to.String()).Inc()
			s.log.Infof("sfa[%s]: peer %s: %s -> %s", s.auth.Name, peer, from, to)
		}
	}
	// Delta updates (not Set) so servers sharing a registry aggregate.
	s.leases.onChange = func(delta int) { s.metrics.leasesActive.Add(float64(delta)) }
	if s.store != nil {
		// Snapshots are cut inside Append while durableMu is held, so the
		// captured state is exactly the state after the appended record.
		s.store.SetSnapshotSource(s.snapshotState)
	}
	return s
}

// storeLock serializes a mutation+append pair when a store is configured;
// without one it is free so the memory-only path keeps its concurrency.
func (s *Server) storeLock() {
	if s.store != nil {
		s.durableMu.Lock()
	}
}

func (s *Server) storeUnlock() {
	if s.store != nil {
		// Cut any due snapshot here — after every append AND side effect
		// of the region (dedup completion included) — so the captured
		// state is exactly what replaying the log up to this point yields.
		if err := s.store.MaybeSnapshot(); err != nil {
			s.log.Errorf("sfa[%s]: snapshot: %v", s.auth.Name, err)
		}
		s.durableMu.Unlock()
	}
}

// storeAppend logs one mutation record. Callers hold durableMu (via
// storeLock) so the log order equals execution order.
func (s *Server) storeAppend(rec Record) error {
	if s.store == nil {
		return nil
	}
	return s.store.Append(rec)
}

// nextGen draws an idempotency generation and makes the high-water mark
// durable, so a recovered server never reuses a generation that may have
// reached a peer inside an outbound idempotency key.
func (s *Server) nextGen() uint64 {
	s.storeLock()
	defer s.storeUnlock()
	gen := s.seq.Add(1)
	if err := s.storeAppend(Record{Op: OpGen, Gen: gen}); err != nil {
		s.log.Errorf("sfa[%s]: wal append (gen %d): %v", s.auth.Name, gen, err)
	}
	return gen
}

// Start begins listening on addr ("127.0.0.1:0" for an ephemeral port) and
// serving connections until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("sfa: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.record = AuthorityRecord{
		Name:  s.auth.Name,
		Addr:  ln.Addr().String(),
		Sites: s.auth.SiteCount(),
	}
	s.reapStop = make(chan struct{})
	s.reapDone = make(chan struct{})
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	go s.reapLoop()
	return nil
}

// reapLoop periodically releases expired leases until Close. The tick is
// wall-clock paced but expiry is judged by cfg.Now, so tests drive a
// simulated clock while fedd runs in real time.
func (s *Server) reapLoop() {
	defer close(s.reapDone)
	t := time.NewTicker(s.cfg.LeaseReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.reapStop:
			return
		case <-t.C:
			s.reapExpiredLeases()
			s.probePeers()
		}
	}
}

// reapExpiredLeases releases every lease whose TTL has elapsed and returns
// how many it reaped. Local effects (freeing slivers, deleting slices) are
// logged to the durable store under durableMu; remote releases happen
// afterwards, outside the lock, because they draw generations and make
// network calls.
func (s *Server) reapExpiredLeases() int {
	type pendingRemote struct {
		slice   string
		slivers []SliverRecord
	}
	var remotes []pendingRemote
	s.storeLock()
	expired := s.leases.expired(s.cfg.Now())
	for _, l := range expired {
		// expired() already removed these holdings from the table, so a
		// Release racing us finds nothing to trim and releases nothing;
		// only this goroutine frees the slivers.
		switch l.kind {
		case leaseReserve:
			s.auth.ReleaseSlivers(l.slivers)
			s.log.Infof("sfa[%s]: lease expired for %s: released %d slivers",
				s.auth.Name, l.slice, len(l.slivers))
		case leaseSlice:
			// Delete the slice exactly as an explicit DeleteSlice would:
			// local slivers freed now, remote slivers released after the
			// durable region.
			if err := s.auth.DeleteSlice(l.slice); err != nil {
				s.log.Errorf("sfa[%s]: lease expiry of slice %s: %v", s.auth.Name, l.slice, err)
			}
			s.mu.Lock()
			remote := s.remoteRefs[l.slice]
			delete(s.remoteRefs, l.slice)
			s.mu.Unlock()
			remotes = append(remotes, pendingRemote{slice: l.slice, slivers: remote})
			s.log.Infof("sfa[%s]: slice lease expired: %s", s.auth.Name, l.slice)
		}
		s.metrics.leasesExpired.Inc()
		if err := s.storeAppend(Record{Op: OpExpire, Slice: l.slice, Kind: int(l.kind)}); err != nil {
			s.log.Errorf("sfa[%s]: wal append (expire %s): %v", s.auth.Name, l.slice, err)
		}
	}
	s.storeUnlock()
	for _, pr := range remotes {
		s.releaseRemote(pr.slice, pr.slivers)
	}
	if len(expired) > 0 {
		s.log.Debugf("sfa[%s]: reaper pass released %d expired leases", s.auth.Name, len(expired))
	}
	return len(expired)
}

// Addr returns the listening address (valid after Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.record.Addr
}

// Close stops the listener, closes peer connections, stops the lease
// reaper, and waits for active connections to drain. Leases still active
// are left in place: their resources belong to remote coordinators and the
// process is going away anyway.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	if s.draining {
		ln = nil // Drain already closed the listener
	}
	reapStop := s.reapStop
	peers := s.peers
	s.peers = map[string]*peerHandle{}
	s.metrics.peers.Set(0)
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	if reapStop != nil {
		close(reapStop)
		<-s.reapDone
	}
	for _, p := range peers {
		if p.client != nil {
			_ = p.client.Close()
		}
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// Drain gracefully quiesces the server: it stops accepting new
// connections, lets in-flight requests finish, wakes idle connections so
// they close promptly, and blocks until every connection handler has
// returned. Active leases are NOT released — their holders still own the
// resources until TTL or explicit Release. Draining() reports true from
// the moment Drain is entered, so a readiness probe can flip to 503 while
// in-flight work completes. Call Close afterwards for final cleanup.
func (s *Server) Drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	start := time.Now()
	if !already {
		s.log.Infof("sfa[%s]: drain started: %d open connections, %d active holdings",
			s.auth.Name, len(conns), s.leases.active())
		if ln != nil {
			_ = ln.Close()
		}
		// Expire idle reads immediately; serveConn re-checks the draining
		// flag after arming each read deadline, so no connection can
		// re-arm past this point and linger.
		for _, c := range conns {
			_ = c.SetReadDeadline(time.Now())
		}
	}
	s.wg.Wait()
	if !already {
		s.log.Infof("sfa[%s]: drain complete in %s", s.auth.Name,
			time.Since(start).Round(time.Millisecond))
	}
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// acceptBackoffMax caps the accept-loop retry delay.
const acceptBackoffMax = time.Second

// acceptLogInterval bounds the accept-error log rate: within the interval
// further failures only bump the counter; the next emitted line reports
// how many were suppressed.
const acceptLogInterval = 5 * time.Second

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	var (
		backoff    time.Duration
		lastLog    time.Time
		suppressed int
	)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// A flapping listener (EMFILE, transient network failure) must
			// not spam the log or hot-loop: every failure increments the
			// counter, logging is rate-limited, and the retry delay doubles
			// up to a cap.
			s.metrics.acceptErrors.Inc()
			if now := time.Now(); now.Sub(lastLog) >= acceptLogInterval {
				s.log.Errorf("sfa[%s]: accept: %v (%d earlier failures suppressed)",
					s.auth.Name, err, suppressed)
				lastLog = now
				suppressed = 0
			} else {
				suppressed++
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.metrics.activeConns.Inc()
	defer func() {
		s.metrics.activeConns.Dec()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if s.Draining() {
			return
		}
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleReadDeadline)); err != nil {
			return
		}
		// Re-check after arming the deadline: Drain sets an immediate
		// deadline on every connection, and this second look closes the
		// race where our SetReadDeadline overwrote it.
		if s.Draining() {
			return
		}
		req, err := ReadFrame(r)
		if err != nil {
			// EOF is a clean client close and a deadline is an idle drop;
			// anything else is a malformed or oversized frame.
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				s.metrics.protocolErrors.Inc()
				s.log.Debugf("sfa[%s]: dropping connection: %v", s.auth.Name, err)
			}
			return
		}
		resp := s.dispatch(req)
		if err := WriteFrame(w, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *Envelope) *Envelope {
	// Admission gate: shed excess load before any work happens. Shed
	// requests are guaranteed unexecuted, carry CodeOverloaded so clients
	// retry with backoff without tripping their breakers, and do NOT count
	// in requests_total — the dispatched−replayed exactly-once identity
	// covers only executed traffic.
	if max := s.cfg.MaxInFlight; max > 0 {
		if n := s.inflight.Add(1); n > int64(max) {
			s.inflight.Add(-1)
			s.metrics.shed.Inc()
			s.log.Debugf("sfa[%s]: shed %s: in-flight bound %d reached", s.auth.Name, req.Method, max)
			return &Envelope{ID: req.ID, Error: "server overloaded: in-flight admission bound reached", Code: CodeOverloaded}
		}
		defer s.inflight.Add(-1)
	}
	label := methodLabel(req.Method)
	start := time.Now()
	resp := &Envelope{ID: req.ID}
	result, err := s.handle(req.Method, req.Params)
	dur := time.Since(start)
	s.metrics.requests.With(label).Inc()
	s.metrics.latency.With(label).Observe(dur.Seconds())
	if err != nil {
		s.metrics.errors.With(label).Inc()
		s.log.Debugf("sfa[%s]: method=%s dur=%s err=%q", s.auth.Name, req.Method, dur, err)
		resp.Error = err.Error()
		return resp
	}
	s.log.Debugf("sfa[%s]: method=%s dur=%s", s.auth.Name, req.Method, dur)
	resp.Result = marshal(result)
	return resp
}

func (s *Server) handle(method string, params json.RawMessage) (interface{}, error) {
	switch method {
	case MethodPing:
		return Empty{}, nil
	case MethodGetRecord:
		s.mu.Lock()
		defer s.mu.Unlock()
		rec := s.record
		rec.Sites = s.auth.SiteCount()
		return rec, nil
	case MethodListResources:
		return s.listResources(), nil
	case MethodPeer:
		var p PeerRequest
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad peer request: %w", err)
		}
		return s.handlePeer(p)
	case MethodCreateSlice:
		var p SliceRequest
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad slice request: %w", err)
		}
		return s.handleCreateSlice(p)
	case MethodDeleteSlice:
		var p DeleteRequest
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad delete request: %w", err)
		}
		return s.handleDeleteSlice(p)
	case MethodReserve:
		var p ReserveRequest
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad reserve request: %w", err)
		}
		return s.handleReserve(p)
	case MethodRelease:
		var p ReleaseRequest
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad release request: %w", err)
		}
		return s.handleRelease(p)
	case MethodGetShares:
		var p SharesRequest
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad shares request: %w", err)
		}
		return s.handleShares(p)
	case MethodGetUsage:
		return s.handleUsage(), nil
	case MethodListHoldings:
		var p HoldingsRequest
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, fmt.Errorf("bad holdings request: %w", err)
		}
		return s.handleListHoldings(p)
	}
	return nil, fmt.Errorf("unknown method %q", method)
}

func (s *Server) verify(c Credential) error {
	return c.Verify(s.secret, time.Now())
}

func (s *Server) listResources() ResourceList {
	out := ResourceList{Authority: s.auth.Name}
	for _, site := range s.auth.Sites() {
		out.Sites = append(out.Sites, SiteResource{
			SiteID:   site.ID,
			Name:     site.Name,
			Nodes:    len(site.Nodes),
			Capacity: site.Capacity(),
			Free:     s.auth.SiteFree(site.ID),
		})
	}
	return out
}

// newPeerClient builds the client for an outbound peer connection, through
// the PeerClient hook when configured. The connection is lazy; callers that
// need eager errors issue a Ping.
func (s *Server) newPeerClient(addr string) *Client {
	var cc ClientConfig
	if s.cfg.PeerClient != nil {
		cc = s.cfg.PeerClient(addr)
	} else {
		cc = ClientConfig{DialTimeout: 10 * time.Second, CallTimeout: 10 * time.Second}
	}
	if cc.Addr == "" {
		cc.Addr = addr
	}
	if cc.Registry == nil {
		cc.Registry = s.obsreg
	}
	return NewClient(cc)
}

// callPeer performs one RPC against a peer and feeds the outcome to the
// health tracker: transport failures count against the peer, any answered
// request proves it alive.
func (s *Server) callPeer(name string, client *Client, method string, params, result interface{}) error {
	err := client.Call(method, params, result)
	s.health.observe(name, !isTransportFailure(err))
	return err
}

// handlePeer records the caller as a peer and connects back to it.
func (s *Server) handlePeer(p PeerRequest) (*PeerResponse, error) {
	if err := s.verify(p.Credential); err != nil {
		return nil, err
	}
	if p.Record.Name == s.auth.Name {
		return nil, fmt.Errorf("cannot peer with self")
	}
	client := s.newPeerClient(p.Record.Addr)
	if err := client.Call(MethodPing, nil, nil); err != nil {
		_ = client.Close()
		return nil, fmt.Errorf("peer back-dial: %w", err)
	}
	s.mu.Lock()
	if old, ok := s.peers[p.Record.Name]; ok && old.client != nil {
		_ = old.client.Close()
	}
	s.peers[p.Record.Name] = &peerHandle{record: p.Record, client: client}
	s.metrics.peers.Set(float64(len(s.peers)))
	rec := s.record
	rec.Sites = s.auth.SiteCount()
	s.mu.Unlock()
	s.health.ensure(p.Record.Name)
	s.log.Infof("sfa[%s]: peered with %s (%s)", s.auth.Name, p.Record.Name, p.Record.Addr)
	return &PeerResponse{Record: rec}, nil
}

// handleListHoldings answers the anti-entropy read: which reserve holdings
// this authority tracks for the asking coordinator, canonically ordered.
func (s *Server) handleListHoldings(p HoldingsRequest) (*HoldingsResponse, error) {
	if err := s.verify(p.Credential); err != nil {
		return nil, err
	}
	holder := p.Holder
	if holder == "" {
		holder = p.Credential.Subject
	}
	resp := &HoldingsResponse{Authority: s.auth.Name}
	for _, l := range s.leases.holdingsFor(holder) {
		h := Holding{Slice: l.slice, Slivers: toRecords(s.auth.Name, l.slivers)}
		if !l.expiry.IsZero() {
			h.Expiry = l.expiry.UnixNano()
		}
		sort.Slice(h.Slivers, func(i, j int) bool {
			if h.Slivers[i].SiteID != h.Slivers[j].SiteID {
				return h.Slivers[i].SiteID < h.Slivers[j].SiteID
			}
			return h.Slivers[i].NodeID < h.Slivers[j].NodeID
		})
		resp.Holdings = append(resp.Holdings, h)
	}
	sort.Slice(resp.Holdings, func(i, j int) bool { return resp.Holdings[i].Slice < resp.Holdings[j].Slice })
	return resp, nil
}

// probePeers pings every peer whose probe deadline has passed (paced by
// the reaper tick, judged by cfg.Now). A probe reaching a down peer starts
// recovery: the reconciler runs inline on the reaper goroutine — so Close,
// which stops the reaper before closing peer clients, never races it — and
// readmits the peer only after proving convergence. A healthy peer with
// queued operations (accrued in a transition race window) is drained
// through the same path.
func (s *Server) probePeers() {
	for _, name := range s.health.dueProbes() {
		s.mu.Lock()
		ph := s.peers[name]
		stopped := s.closed || s.draining
		s.mu.Unlock()
		if ph == nil || stopped {
			continue
		}
		err := ph.client.Call(MethodPing, nil, nil)
		ok := !isTransportFailure(err)
		switch s.health.state(name) {
		case PeerDown:
			if ok && s.health.beginRecovery(name) {
				s.log.Infof("sfa[%s]: probe reached down peer %s; reconciling", s.auth.Name, name)
				s.reconcilePeer(name, ph)
			}
		case PeerRecovering:
			// Owned by a reconciler; nothing to observe.
		default:
			s.health.observe(name, ok)
			if ok && s.recon.depth(name) > 0 && s.health.beginDrain(name) {
				s.reconcilePeer(name, ph)
			}
		}
	}
}

// cacheResources remembers a peer's last successful advertisement;
// cachedResources returns it (nil if none).
func (s *Server) cacheResources(name string, rl *ResourceList) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ph, ok := s.peers[name]; ok {
		ph.lastResources = rl
	}
}

func (s *Server) cachedResources(name string) *ResourceList {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ph, ok := s.peers[name]; ok {
		return ph.lastResources
	}
	return nil
}

// PeerHealth reports each peer's lifecycle condition, breaker state, and
// reconcile backlog, sorted by name — the data behind fedd's /peersz
// endpoint and fedctl status's peer table.
func (s *Server) PeerHealth() []PeerHealthInfo {
	infos := s.health.snapshot()
	s.mu.Lock()
	handles := make(map[string]*peerHandle, len(s.peers))
	for n, ph := range s.peers {
		handles[n] = ph
	}
	s.mu.Unlock()
	out := infos[:0]
	for _, info := range infos {
		ph, ok := handles[info.Peer]
		if !ok {
			continue // tracked but no longer peered
		}
		info.Addr = ph.record.Addr
		if ph.client != nil {
			info.Breaker = ph.client.BreakerState()
		}
		info.Backlog = s.recon.depth(info.Peer)
		out = append(out, info)
	}
	return out
}

// PeerLifecycleState returns one peer's current health state.
func (s *Server) PeerLifecycleState(name string) PeerState {
	return s.health.state(name)
}

// handleReserve places slivers locally for a remote federated slice. With
// an idempotency key, a retried request replays the original response
// instead of double-booking; with a TTL, the reservation is a lease the
// reaper releases once the holding time elapses.
func (s *Server) handleReserve(p ReserveRequest) (*ReserveResponse, error) {
	if err := s.verify(p.Credential); err != nil {
		return nil, err
	}
	if p.Sites <= 0 || p.PerSite <= 0 {
		return nil, fmt.Errorf("reserve needs positive sites and per-site counts")
	}
	var entry *dedupEntry
	if p.IdempotencyKey != "" {
		// Keys are namespaced by method so a key accidentally reused
		// across Reserve and Release can never replay the wrong method's
		// cached outcome.
		e, claimed := s.dedup.claim("reserve:" + p.IdempotencyKey)
		if !claimed {
			// A duplicate (retry after a lost response, or a concurrent
			// twin): wait for the original execution and replay its
			// outcome verbatim.
			<-e.done
			s.metrics.dedupReplays.With(MethodReserve).Inc()
			s.log.Debugf("sfa[%s]: reserve dedup replay for key %q", s.auth.Name, p.IdempotencyKey)
			if e.errMsg != "" {
				return nil, errors.New(e.errMsg)
			}
			resp, ok := e.resp.(*ReserveResponse)
			if !ok {
				// Unreachable with namespaced keys, but fail loudly rather
				// than replaying a silent empty success.
				return nil, fmt.Errorf("idempotency key %q: cached outcome is not a reserve response", p.IdempotencyKey)
			}
			return resp, nil
		}
		entry = e
	}
	s.storeLock()
	resp, err := s.reserveLocked(p)
	if entry != nil {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		// Finish inside the durable region: any snapshot cut by a later
		// append (which must wait for durableMu) already sees this entry
		// completed, so a snapshot never silently drops a logged outcome.
		entry.finish(resp, msg)
	}
	s.storeUnlock()
	return resp, err
}

// reserveLocked performs the actual placement (exactly once per
// idempotency key) and makes it durable. Caller holds durableMu via
// storeLock.
func (s *Server) reserveLocked(p ReserveRequest) (*ReserveResponse, error) {
	candidates := s.auth.AvailableSites(p.PerSite)
	if len(candidates) > p.Sites {
		candidates = candidates[:p.Sites]
	}
	var placed []planetlab.Sliver
	for _, siteID := range candidates {
		svs, err := s.auth.ReserveSlivers(p.SliceName, siteID, p.PerSite)
		if err != nil {
			continue // another request raced us; skip the site
		}
		placed = append(placed, svs...)
	}
	var expiry time.Time
	if len(placed) > 0 {
		// Track every holding, leased (TTL set, zero expiry means held
		// indefinitely) or not, so Release can free exactly the slivers
		// still held here and nothing else. The holder (credential
		// subject) keys the anti-entropy ListHoldings read.
		if p.TTLSeconds > 0 {
			expiry = s.cfg.Now().Add(time.Duration(p.TTLSeconds * float64(time.Second)))
		}
		s.leases.add(p.SliceName, leaseReserve, p.Credential.Subject, placed, expiry)
	}
	resp := &ReserveResponse{Slivers: toRecords(s.auth.Name, placed)}
	if s.store != nil && (len(placed) > 0 || p.IdempotencyKey != "") {
		rec := Record{Op: OpReserve, Slice: p.SliceName, Holder: p.Credential.Subject, Slivers: resp.Slivers}
		if p.IdempotencyKey != "" {
			rec.Key = "reserve:" + p.IdempotencyKey
		}
		if !expiry.IsZero() {
			rec.Expiry = expiry.UnixNano()
		}
		if aerr := s.storeAppend(rec); aerr != nil {
			// The memory state must never run ahead of the log: undo the
			// placement so the client's retry re-executes against state the
			// log can actually reproduce.
			s.auth.ReleaseSlivers(s.leases.trim(p.SliceName, placed))
			return nil, fmt.Errorf("durable log append: %v", aerr)
		}
	}
	return resp, nil
}

// handleRelease frees locally held slivers of a federated slice. A keyed
// release is idempotent: retrying a release whose response was lost must
// not decrement node load twice, or capacity leaks to other slices.
func (s *Server) handleRelease(p ReleaseRequest) (*Empty, error) {
	if err := s.verify(p.Credential); err != nil {
		return nil, err
	}
	var entry *dedupEntry
	if p.IdempotencyKey != "" {
		e, claimed := s.dedup.claim("release:" + p.IdempotencyKey)
		if !claimed {
			<-e.done
			s.metrics.dedupReplays.With(MethodRelease).Inc()
			s.log.Debugf("sfa[%s]: release dedup replay for key %q", s.auth.Name, p.IdempotencyKey)
			if e.errMsg != "" {
				return nil, errors.New(e.errMsg)
			}
			return &Empty{}, nil
		}
		entry = e
	}
	var svs []planetlab.Sliver
	for _, rec := range p.Slivers {
		if rec.Authority != s.auth.Name {
			continue
		}
		svs = append(svs, planetlab.Sliver{
			SliceName: p.SliceName, SiteID: rec.SiteID, NodeID: rec.NodeID,
		})
	}
	// Release only slivers this server still tracks as held: if the lease
	// reaper or a racing duplicate already freed them, a second node-load
	// decrement would free capacity still held by other slices. Trimming
	// also settles the lease so released slivers are not re-freed at
	// expiry.
	s.storeLock()
	removed := s.leases.trim(p.SliceName, svs)
	s.auth.ReleaseSlivers(removed)
	if s.store != nil && (len(removed) > 0 || p.IdempotencyKey != "") {
		rec := Record{Op: OpRelease, Slice: p.SliceName, Slivers: toRecords(s.auth.Name, removed)}
		if p.IdempotencyKey != "" {
			rec.Key = "release:" + p.IdempotencyKey
		}
		if aerr := s.storeAppend(rec); aerr != nil {
			// A release cannot be undone without re-placing, so prefer
			// availability: the worst a lost release record costs is
			// capacity held until the lease TTL reaps it after recovery.
			s.log.Errorf("sfa[%s]: wal append (release %s): %v", s.auth.Name, p.SliceName, aerr)
		}
	}
	if entry != nil {
		entry.finish(&Empty{}, "")
	}
	s.storeUnlock()
	return &Empty{}, nil
}

// handleCreateSlice embeds a slice across the federation: local sites first,
// then peers until the diversity threshold is met.
func (s *Server) handleCreateSlice(p SliceRequest) (*SliceResponse, error) {
	if err := s.verify(p.Credential); err != nil {
		return nil, err
	}
	sp := s.obsreg.StartSpan("sfa.embed").Attr("slice", p.Name)
	defer sp.End()
	per := p.SliversPerSite
	if per <= 0 {
		per = 1
	}
	spec := planetlab.SliceSpec{
		Name: p.Name, Owner: p.Owner,
		MinSites: 0, MaxSites: p.MaxSites, SliversPerSite: per,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if p.MinSites < 0 {
		return nil, fmt.Errorf("negative min_sites")
	}
	if _, exists := s.auth.GetSlice(p.Name); exists {
		return nil, fmt.Errorf("slice %s already exists", p.Name)
	}

	maxSites := p.MaxSites
	var localSlivers []planetlab.Sliver
	var remote []SliverRecord
	sitesGot := 0

	abort := func() {
		s.auth.ReleaseSlivers(localSlivers)
		s.releaseRemote(p.Name, remote)
	}

	// Local placement first.
	for _, siteID := range s.auth.AvailableSites(per) {
		if maxSites > 0 && sitesGot >= maxSites {
			break
		}
		svs, err := s.auth.ReserveSlivers(p.Name, siteID, per)
		if err != nil {
			continue
		}
		localSlivers = append(localSlivers, svs...)
		sitesGot++
	}

	// Peers, in deterministic order, until the threshold (and max) is met.
	cred := IssueCredential(s.secret, s.auth.Name, s.auth.Name, time.Minute)
	// One idempotency generation per CreateSlice invocation: client-level
	// retries of each Reserve below share a key, while a later lifecycle of
	// the same slice name (delete + recreate, or recreate after TTL expiry)
	// draws a fresh generation and executes anew instead of replaying this
	// lifecycle's cached outcome — including cached errors, which would
	// otherwise poison the slice name at that peer forever.
	gen := s.nextGen()
	for _, ph := range s.peerList() {
		name := ph.record.Name
		if st := s.health.state(name); st == PeerDown || st == PeerRecovering {
			// Degraded mode: place on the live sub-federation only. No
			// idempotency key is drawn, so nothing can replay at the peer
			// later.
			s.log.Debugf("sfa[%s]: skipping %s peer %s for slice %s", s.auth.Name, st, name, p.Name)
			continue
		}
		need := 1 << 20 // effectively unbounded
		if maxSites > 0 {
			need = maxSites - sitesGot
			if need <= 0 {
				break
			}
		}
		req := ReserveRequest{
			SliceName: p.Name, Sites: need, PerSite: per,
			// One logical reservation per (coordinator, slice lifecycle,
			// peer): retries of this call dedup server-side.
			IdempotencyKey: fmt.Sprintf("%s/%s#%d@%s", s.auth.Name, p.Name, gen, name),
			TTLSeconds:     p.TTLSeconds,
		}
		queued := req // credential-free copy; reconciliation re-signs it
		req.Credential = cred
		var rr ReserveResponse
		err := s.callPeer(name, ph.client, MethodReserve, req, &rr)
		if err != nil {
			s.log.Errorf("sfa[%s]: reserve at %s failed: %v", s.auth.Name, name, err)
			if isTransportFailure(err) {
				// The request may or may not have reached the peer. Queue
				// it under its original key: reconciliation replays it
				// (dedup settles which case happened) and then retires the
				// resulting orphan slivers, since this slice commits
				// without them.
				s.recon.enqueue(name, pendingOp{method: MethodReserve, slice: p.Name, key: queued.IdempotencyKey, reserve: &queued})
				s.setBacklogGauge(name)
			}
			continue
		}
		siteSeen := map[string]bool{}
		for _, sv := range rr.Slivers {
			if !siteSeen[sv.SiteID] {
				siteSeen[sv.SiteID] = true
				sitesGot++
			}
		}
		remote = append(remote, rr.Slivers...)
	}

	if sitesGot < p.MinSites {
		abort()
		return nil, fmt.Errorf("federation can offer %d sites, slice needs %d", sitesGot, p.MinSites)
	}

	slice := &planetlab.Slice{
		Spec:    planetlab.SliceSpec{Name: p.Name, Owner: p.Owner, MinSites: p.MinSites, MaxSites: p.MaxSites, SliversPerSite: per},
		Slivers: localSlivers,
	}
	s.storeLock()
	if err := s.auth.AdoptSlice(slice); err != nil {
		s.storeUnlock()
		abort()
		return nil, err
	}
	s.mu.Lock()
	s.remoteRefs[p.Name] = remote
	s.embedded++
	s.usage[s.auth.Name] += len(localSlivers)
	for _, sv := range remote {
		s.usage[sv.Authority]++
	}
	s.mu.Unlock()
	var expiry time.Time
	if p.TTLSeconds > 0 {
		// Lease the whole slice for the experiment's holding time; the
		// reaper deletes it (and releases remote slivers) at expiry.
		expiry = s.cfg.Now().Add(time.Duration(p.TTLSeconds * float64(time.Second)))
		s.leases.add(p.Name, leaseSlice, "", nil, expiry)
	}
	if s.store != nil {
		rec := Record{Op: OpCreateSlice, Slice: p.Name, Spec: specState(slice.Spec),
			Slivers: toRecords(s.auth.Name, localSlivers), Remote: remote}
		if !expiry.IsZero() {
			rec.Expiry = expiry.UnixNano()
		}
		if aerr := s.storeAppend(rec); aerr != nil {
			// Undo the commit so memory never acknowledges state the log
			// lost: delete the slice (frees local slivers), drop the lease
			// and refs, then release remote slivers outside the lock.
			_ = s.auth.DeleteSlice(p.Name)
			s.leases.remove(p.Name)
			s.mu.Lock()
			delete(s.remoteRefs, p.Name)
			s.embedded--
			s.usage[s.auth.Name] -= len(localSlivers)
			for _, sv := range remote {
				s.usage[sv.Authority]--
			}
			s.mu.Unlock()
			s.storeUnlock()
			s.releaseRemote(p.Name, remote)
			return nil, fmt.Errorf("durable log append: %v", aerr)
		}
	}
	s.storeUnlock()

	resp := &SliceResponse{Name: p.Name, Sites: sitesGot}
	for _, sv := range localSlivers {
		resp.Slivers = append(resp.Slivers, SliverRecord{
			Authority: s.auth.Name, SiteID: sv.SiteID, NodeID: sv.NodeID,
		})
	}
	resp.Slivers = append(resp.Slivers, remote...)
	return resp, nil
}

func (s *Server) handleDeleteSlice(p DeleteRequest) (*Empty, error) {
	if err := s.verify(p.Credential); err != nil {
		return nil, err
	}
	s.storeLock()
	if err := s.auth.DeleteSlice(p.Name); err != nil {
		s.storeUnlock()
		return nil, err
	}
	s.leases.remove(p.Name)
	s.mu.Lock()
	remote := s.remoteRefs[p.Name]
	delete(s.remoteRefs, p.Name)
	s.mu.Unlock()
	if aerr := s.storeAppend(Record{Op: OpDeleteSlice, Slice: p.Name}); aerr != nil {
		// The deletion is not undoable; a lost delete record at worst
		// resurrects the slice at recovery until its lease expires.
		s.log.Errorf("sfa[%s]: wal append (delete %s): %v", s.auth.Name, p.Name, aerr)
	}
	s.storeUnlock()
	s.releaseRemote(p.Name, remote)
	return &Empty{}, nil
}

// releaseRemote frees slivers held at peers, grouped per authority.
// Releases bound for down or recovering peers — and releases that fail at
// the transport level — are queued under their idempotency key for
// reconciliation to replay, so a partition never loses a release.
func (s *Server) releaseRemote(sliceName string, slivers []SliverRecord) {
	if len(slivers) == 0 {
		return
	}
	byPeer := map[string][]SliverRecord{}
	for _, sv := range slivers {
		byPeer[sv.Authority] = append(byPeer[sv.Authority], sv)
	}
	cred := IssueCredential(s.secret, s.auth.Name, s.auth.Name, time.Minute)
	// Fresh generation per invocation: retries of each Release below share
	// a key, but a later lifecycle's release of a recreated slice name is
	// never swallowed by this one's cached outcome.
	gen := s.nextGen()
	for _, name := range sortedKeys(byPeer) {
		svs := byPeer[name]
		s.mu.Lock()
		ph := s.peers[name]
		s.mu.Unlock()
		if ph == nil {
			s.log.Errorf("sfa[%s]: cannot release %d slivers at unknown peer %s", s.auth.Name, len(svs), name)
			continue
		}
		req := ReleaseRequest{
			SliceName: sliceName, Slivers: svs,
			// Retries of this release must not double-free at the peer.
			IdempotencyKey: fmt.Sprintf("%s/%s#%d@%s", s.auth.Name, sliceName, gen, name),
		}
		if st := s.health.state(name); st == PeerDown || st == PeerRecovering {
			// Known unreachable: queue instead of burning a call timeout.
			queued := req
			s.recon.enqueue(name, pendingOp{method: MethodRelease, slice: sliceName, key: req.IdempotencyKey, release: &queued})
			s.setBacklogGauge(name)
			s.log.Infof("sfa[%s]: queued release of %d slivers of %s for %s peer %s",
				s.auth.Name, len(svs), sliceName, st, name)
			continue
		}
		queued := req // credential-free copy; reconciliation re-signs it
		req.Credential = cred
		if err := s.callPeer(name, ph.client, MethodRelease, req, nil); err != nil {
			s.log.Errorf("sfa[%s]: release at %s: %v", s.auth.Name, name, err)
			if isTransportFailure(err) {
				s.recon.enqueue(name, pendingOp{method: MethodRelease, slice: sliceName, key: queued.IdempotencyKey, release: &queued})
				s.setBacklogGauge(name)
			}
		}
	}
}

// peerList snapshots peers sorted by name for deterministic embedding.
func (s *Server) peerList() []*peerHandle {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.peers))
	for n := range s.peers {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*peerHandle, 0, len(names))
	for _, n := range names {
		out = append(out, s.peers[n])
	}
	return out
}

// handleShares builds the federation's economic model from its own and its
// peers' advertised resources and computes value shares under the requested
// policy — the paper's method exposed as a network service.
//
// Unreachable peers degrade the computation instead of failing it: down
// and recovering peers (and any peer whose live listing fails at the
// transport level) are excluded from valuation, shares are computed over
// the live sub-federation, and the response carries the Partial marker
// with the excluded authorities. A down peer's last advertisement, when
// cached, still shapes the full model so the sub-federation is priced as
// a coalition of the same game; the demand profile never shrinks just
// because peers died.
func (s *Server) handleShares(p SharesRequest) (*SharesResponse, error) {
	sp := s.obsreg.StartSpan("sfa.shares").Attr("policy", p.Policy)
	defer sp.End()
	type contribution struct {
		name     string
		sites    int
		capacity float64 // per-site
		live     bool
	}
	var contribs []contribution

	// Own contribution.
	own := s.listResources()
	ownSites := len(own.Sites)
	ownCap := 0.0
	for _, site := range own.Sites {
		ownCap += float64(site.Capacity)
	}
	perSite := 0.0
	if ownSites > 0 {
		perSite = ownCap / float64(ownSites)
	}
	contribs = append(contribs, contribution{s.auth.Name, ownSites, perSite, true})

	// Peers' advertised resources.
	var down []string
	for _, ph := range s.peerList() {
		name := ph.record.Name
		var rl *ResourceList
		live := false
		if st := s.health.state(name); st == PeerDown || st == PeerRecovering {
			rl = s.cachedResources(name)
		} else {
			var fresh ResourceList
			err := s.callPeer(name, ph.client, MethodListResources, Empty{}, &fresh)
			switch {
			case err == nil:
				live = true
				rl = &fresh
				s.cacheResources(name, &fresh)
			case isTransportFailure(err):
				rl = s.cachedResources(name)
			default:
				return nil, fmt.Errorf("list resources at %s: %w", name, err)
			}
		}
		if rl == nil {
			// Unreachable and never successfully listed: nothing to model.
			down = append(down, name)
			continue
		}
		if !live {
			down = append(down, name)
		}
		sites := len(rl.Sites)
		capTotal := 0.0
		for _, site := range rl.Sites {
			capTotal += float64(site.Capacity)
		}
		per := 0.0
		if sites > 0 {
			per = capTotal / float64(sites)
		}
		contribs = append(contribs, contribution{rl.Authority, sites, per, live})
	}
	sort.Slice(contribs, func(i, j int) bool { return contribs[i].name < contribs[j].name })

	facilities := make([]core.Facility, len(contribs))
	for i, c := range contribs {
		facilities[i] = core.Facility{Name: c.name, Locations: c.sites, Resources: c.capacity}
	}
	demand := s.demand
	if demand == nil {
		// Default profile: one diversity-hungry experiment spanning half
		// the federation's sites (stale contributions included — demand
		// does not shrink with the live set).
		total := 0
		for _, c := range contribs {
			total += c.sites
		}
		wl, err := economics.NewWorkload(economics.DemandClass{
			Type: economics.ExperimentType{
				Name: "default", MinLocations: float64(total) / 2,
				MaxLocations: math.Inf(1), Resources: 1, HoldingTime: 1, Shape: 1,
			},
			Count: 1,
		})
		if err != nil {
			return nil, err
		}
		demand = wl
	}
	model, err := core.NewModel(facilities, demand)
	if err != nil {
		return nil, err
	}
	if len(down) > 0 {
		liveSet := map[string]bool{}
		for _, c := range contribs {
			if c.live {
				liveSet[c.name] = true
			}
		}
		sub, _, err := model.SubFederation(func(n string) bool { return liveSet[n] })
		if err != nil {
			return nil, err
		}
		model = sub
	}
	pol, err := core.PolicyByName(p.Policy)
	if err != nil {
		return nil, err
	}
	sharesVec, err := pol.Shares(model)
	if err != nil {
		return nil, err
	}
	resp := &SharesResponse{
		Policy:     pol.Name(),
		GrandValue: model.GrandValue(),
		Shares:     map[string]float64{},
	}
	for i, f := range model.Facilities {
		resp.Shares[f.Name] = sharesVec[i]
	}
	if len(down) > 0 {
		sort.Strings(down)
		resp.Partial = true
		resp.Down = down
	}
	return resp, nil
}

// handleUsage reports cumulative served slivers and the measured
// consumption shares they imply.
func (s *Server) handleUsage() *UsageResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := &UsageResponse{
		Authority:         s.auth.Name,
		CumulativeSlivers: map[string]int{},
		MeasuredShares:    map[string]float64{},
		SlicesEmbedded:    s.embedded,
	}
	total := 0
	for name, n := range s.usage {
		resp.CumulativeSlivers[name] = n
		total += n
	}
	if total > 0 {
		for name, n := range s.usage {
			resp.MeasuredShares[name] = float64(n) / float64(total)
		}
	}
	return resp
}

// snapshotState captures the server's full durable state in canonical
// order. When a store is configured it is invoked at append boundaries
// (under durableMu), so the capture is a consistent cut.
func (s *Server) snapshotState() State {
	st := State{Seq: s.seq.Load()}
	slices := s.auth.SlicesSnapshot()
	s.mu.Lock()
	st.Embedded = s.embedded
	usage := map[string]int{}
	for name, n := range s.usage {
		if n != 0 {
			usage[name] = n
		}
	}
	if len(usage) > 0 {
		st.Usage = usage
	}
	remoteRefs := make(map[string][]SliverRecord, len(s.remoteRefs))
	for name, svs := range s.remoteRefs {
		remoteRefs[name] = append([]SliverRecord(nil), svs...)
	}
	s.mu.Unlock()
	for _, sl := range slices {
		st.Slices = append(st.Slices, SliceState{
			Spec:   *specState(sl.Spec),
			Local:  toRecords(s.auth.Name, sl.Slivers),
			Remote: remoteRefs[sl.Spec.Name],
		})
	}
	for _, l := range s.leases.snapshot() {
		ls := LeaseState{Slice: l.slice, Kind: int(l.kind), Holder: l.holder,
			Slivers: toRecords(s.auth.Name, l.slivers)}
		if !l.expiry.IsZero() {
			ls.Expiry = l.expiry.UnixNano()
		}
		st.Leases = append(st.Leases, ls)
	}
	st.Dedup = s.dedup.snapshot()
	st.canonicalize()
	return st
}

// Restore loads recovered durable state into a freshly built server. It
// must run before Start, while nothing else touches the server. Lease
// expiries are absolute timestamps, so holdings that expired during the
// outage are reaped on the first reaper tick after Start rather than
// silently resurrected.
func (s *Server) Restore(st *State) error {
	if st == nil {
		return nil
	}
	s.seq.Store(st.Seq)
	for _, sl := range st.Slices {
		slivers := toSlivers(sl.Spec.Name, sl.Local)
		// Re-apply the recorded placements (node load), then re-adopt the
		// slice so DeleteSlice frees them again.
		s.auth.RestoreSlivers(slivers)
		if err := s.auth.AdoptSlice(&planetlab.Slice{Spec: sl.Spec.spec(), Slivers: slivers}); err != nil {
			return fmt.Errorf("sfa: restore slice %s: %w", sl.Spec.Name, err)
		}
		if len(sl.Remote) > 0 {
			s.mu.Lock()
			s.remoteRefs[sl.Spec.Name] = sl.Remote
			s.mu.Unlock()
		}
	}
	s.mu.Lock()
	s.embedded = st.Embedded
	for name, n := range st.Usage {
		s.usage[name] = n
	}
	s.mu.Unlock()
	for _, l := range st.Leases {
		slivers := toSlivers(l.Slice, l.Slivers)
		if leaseKind(l.Kind) == leaseReserve {
			// Reserve holdings carry their own placements; slice leases'
			// slivers were restored with the slice above.
			s.auth.RestoreSlivers(slivers)
		}
		var expiry time.Time
		if l.Expiry != 0 {
			expiry = time.Unix(0, l.Expiry)
		}
		s.leases.install(l.Slice, leaseKind(l.Kind), l.Holder, slivers, expiry)
	}
	for _, e := range st.Dedup {
		var resp interface{}
		switch {
		case e.Err != "":
			// Cached failures replay as errors; the response value is unused.
		case strings.HasPrefix(e.Key, "release:"):
			resp = &Empty{}
		default:
			resp = &ReserveResponse{Slivers: e.Slivers}
		}
		s.dedup.restore(e.Key, resp, e.Err)
	}
	s.log.Infof("sfa[%s]: restored durable state: %d slices, %d leases, %d dedup keys, seq %d",
		s.auth.Name, len(st.Slices), len(st.Leases), len(st.Dedup), st.Seq)
	return nil
}

// PeerWith initiates peering with a remote registry at addr: it dials,
// introduces itself, and records the remote as a peer, so federation flows
// both ways after the remote's back-dial.
func (s *Server) PeerWith(addr string) error {
	client := s.newPeerClient(addr)
	s.mu.Lock()
	rec := s.record
	rec.Sites = s.auth.SiteCount()
	s.mu.Unlock()
	cred := IssueCredential(s.secret, s.auth.Name, s.auth.Name, time.Minute)
	var resp PeerResponse
	if err := client.Call(MethodPeer, PeerRequest{Record: rec, Credential: cred}, &resp); err != nil {
		_ = client.Close()
		return err
	}
	s.mu.Lock()
	if old, ok := s.peers[resp.Record.Name]; ok && old.client != nil {
		_ = old.client.Close()
	}
	s.peers[resp.Record.Name] = &peerHandle{record: resp.Record, client: client}
	s.metrics.peers.Set(float64(len(s.peers)))
	s.mu.Unlock()
	s.health.ensure(resp.Record.Name)
	s.log.Infof("sfa[%s]: peered with %s (%s)", s.auth.Name, resp.Record.Name, resp.Record.Addr)
	return nil
}

// Peers returns the names of current peers.
func (s *Server) Peers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for n := range s.peers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
