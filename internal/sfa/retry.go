package sfa

import (
	"errors"
	"fmt"
	"net"
	"time"

	"fedshare/internal/obs"
	"fedshare/internal/stats"
)

// ClientConfig tunes a Client's fault-tolerance policies. The zero value of
// every field selects a sensible default, so ClientConfig{Addr: a} is a
// fully working configuration.
type ClientConfig struct {
	// Addr is the registry address to dial.
	Addr string
	// DialTimeout bounds each (re)connection attempt (default 10s).
	DialTimeout time.Duration
	// CallTimeout bounds one request/response round-trip; each retry
	// attempt gets a fresh deadline (default 10s).
	CallTimeout time.Duration
	// MaxAttempts is the per-call retry budget: total attempts including
	// the first (default 3; 1 disables retries).
	MaxAttempts int
	// RetryBase and RetryMax shape the exponential backoff between
	// attempts: base*2^(attempt-1), capped at max, with deterministic
	// jitter in [1/2, 1) of the computed delay (defaults 25ms and 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold is the number of consecutive transport failures
	// that opens the circuit breaker (default 5; negative disables the
	// breaker). While open, calls fail fast with ErrCircuitOpen until
	// BreakerCooldown has elapsed; then one half-open probe is allowed.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects calls before
	// allowing a half-open probe (default 2s).
	BreakerCooldown time.Duration
	// Seed feeds the deterministic jitter RNG, so a seeded client retries
	// on a reproducible schedule (default 0, still deterministic).
	Seed uint64
	// Registry receives the client's obs instrumentation (default
	// obs.Default).
	Registry *obs.Registry
	// DialFunc replaces net.DialTimeout — the fault-injection harness and
	// unit tests substitute wrapped or failing connections here.
	DialFunc func(addr string, timeout time.Duration) (net.Conn, error)
	// Sleep replaces time.Sleep between retry attempts (tests).
	Sleep func(time.Duration)
	// Now replaces time.Now for the breaker clock (tests).
	Now func() time.Time
}

// withDefaults returns cfg with every zero field filled in.
func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if cfg.DialFunc == nil {
		cfg.DialFunc = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// ErrCircuitOpen is returned (wrapped) when the client's circuit breaker is
// open and the call was rejected without touching the network.
var ErrCircuitOpen = errors.New("sfa: circuit breaker open")

// RemoteError is a failure reported by the server itself: the transport
// round-trip succeeded, so the breaker does not count it against the peer.
// Most remote errors are final (retrying would re-execute the request);
// the one exception is Code == CodeOverloaded, which the server guarantees
// was shed before execution, so the client retries it with backoff.
type RemoteError struct {
	Method string
	Msg    string
	Code   string
}

func (e *RemoteError) Error() string { return "sfa: remote: " + e.Msg }

// IsOverloaded reports whether err is (or wraps) a server shed response:
// the request was rejected by the admission gate without executing. Load
// generators use it to separate shed traffic from real transport failures.
func IsOverloaded(err error) bool {
	var remote *RemoteError
	return errors.As(err, &remote) && remote.Code == CodeOverloaded
}

// isTransportFailure classifies a Call error for peer-health purposes: any
// answered request — success, remote error, or overload shed — proves the
// peer alive, while dial/read/write/deadline failures (including a
// fast-failing open breaker, which stands in for the failures that opened
// it) count against it.
func isTransportFailure(err error) bool {
	if err == nil {
		return false
	}
	var remote *RemoteError
	return !errors.As(err, &remote)
}

// backoffDelay computes the sleep before retry attempt (attempt >= 1),
// exponential in the attempt number with deterministic jitter drawn from
// rng: uniform in [d/2, d) of the capped delay d.
func backoffDelay(base, max time.Duration, attempt int, rng *stats.Rand) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Float64()*float64(half))
}

// breakerState enumerates the circuit breaker's three states. The numeric
// values are exported verbatim through the breaker-state gauge.
type breakerState int

const (
	breakerClosed   breakerState = 0
	breakerHalfOpen breakerState = 1
	breakerOpen     breakerState = 2
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	}
	return "unknown"
}

// breaker is a minimal closed→open→half-open circuit breaker. It is not
// internally synchronized: the owning Client guards it with its call mutex.
type breaker struct {
	threshold int // consecutive failures to open; <= 0 disables
	cooldown  time.Duration

	state    breakerState
	failures int
	openedAt time.Time
}

// allow reports whether a call may proceed, transitioning open→half-open
// once the cooldown has elapsed.
func (b *breaker) allow(now time.Time) bool {
	if b.threshold <= 0 {
		return true
	}
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default:
		return true
	}
}

// success resets the breaker to closed.
func (b *breaker) success() {
	b.failures = 0
	b.state = breakerClosed
}

// failure records one transport failure, opening the breaker at the
// threshold (or immediately when a half-open probe fails). It reports
// whether this failure opened the breaker.
func (b *breaker) failure(now time.Time) bool {
	if b.threshold <= 0 {
		return false
	}
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		wasOpen := b.state == breakerOpen
		b.state = breakerOpen
		b.openedAt = now
		return !wasOpen
	}
	return false
}

// circuitOpenError wraps ErrCircuitOpen with the peer address and the error
// that tripped the breaker, so callers see both the fast-fail and the root
// cause.
func circuitOpenError(addr string, last error) error {
	if last == nil {
		return fmt.Errorf("%w to %s", ErrCircuitOpen, addr)
	}
	return fmt.Errorf("%w to %s (last failure: %v)", ErrCircuitOpen, addr, last)
}
