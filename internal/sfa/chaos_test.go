package sfa

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fedshare/internal/faultnet"
	"fedshare/internal/obs"
)

// The chaos suite drives a federation registry with concurrent clients over
// fault-injected connections (drops, partial writes, corrupted frames, lost
// responses, latency) and asserts the federation-plane safety invariants:
//
//   - no reservation is double-booked: every idempotency key executes exactly
//     once, however many times the request is retried (counter identity
//     dispatched - replayed == distinct keys);
//   - no release is double-counted, so capacity accounting stays exact;
//   - every lease is either explicitly released or reaped at expiry, driving
//     utilization back to zero;
//   - the whole run is reproducible: the same seed yields byte-identical
//     per-client transcripts and fault-event logs across runs.
//
// Override the seed with FEDSHARE_CHAOS_SEED=<n> to explore other schedules.

const (
	chaosClients = 6
	chaosCalls   = 8 // reserves per client; every even one is released explicitly
)

func chaosSeed(t *testing.T) uint64 {
	v := os.Getenv("FEDSHARE_CHAOS_SEED")
	if v == "" {
		return 1
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		t.Fatalf("FEDSHARE_CHAOS_SEED=%q: %v", v, err)
	}
	return n
}

type chaosRun struct {
	transcript    string
	reserveReplay int64
	releaseReplay int64
	dropResponses int
}

func runChaos(t *testing.T, seed uint64) chaosRun {
	t.Helper()
	clock := newFakeClock()
	reg := obs.NewRegistry()
	srv := startServer(t, buildAuthority(t, "CHAOS", 8, 2, 8),
		WithMetrics(reg),
		WithConfig(ServerConfig{
			IdleReadDeadline:  500 * time.Millisecond,
			LeaseReapInterval: 2 * time.Millisecond,
			Now:               clock.Now,
		}))

	transcripts := make([][]string, chaosClients)
	dialers := make([]*faultnet.Dialer, chaosClients)
	var wg sync.WaitGroup
	for i := 0; i < chaosClients; i++ {
		i := i
		// Fault plans are drawn client-side so concurrency cannot perturb
		// them: each client dials serially, and the SFA client issues exactly
		// one buffered write per request, so write indices — and therefore
		// the injected fault schedule — depend only on the seed.
		dialers[i] = faultnet.NewDialer(faultnet.Config{
			Seed:  seed*1_000_003 + uint64(i)*7919,
			PDrop: 0.06, PPartial: 0.05, PCorrupt: 0.05, PDropResponse: 0.10,
			PLatency: 0.10, MaxLatency: 2 * time.Millisecond,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(ClientConfig{
				Addr: srv.Addr(), DialFunc: dialers[i].Dial,
				CallTimeout: 2 * time.Second, MaxAttempts: 30,
				RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
				BreakerThreshold: -1, // faults are the point; never fail fast
				Seed:             seed + uint64(i),
				Registry:         reg,
			})
			defer c.Close()
			for k := 0; k < chaosCalls; k++ {
				slice := fmt.Sprintf("chaos-c%d-s%d", i, k)
				before := c.Stats().Retries
				var rr ReserveResponse
				err := c.Call(MethodReserve, ReserveRequest{
					Credential: userCred(), SliceName: slice, Sites: 1, PerSite: 1,
					IdempotencyKey: slice + "/reserve", TTLSeconds: 30,
				}, &rr)
				attempts := c.Stats().Retries - before + 1
				if err != nil {
					t.Errorf("client %d reserve %d failed despite retry budget: %v", i, k, err)
					transcripts[i] = append(transcripts[i],
						fmt.Sprintf("c%d.reserve%d attempts=%d err", i, k, attempts))
					continue
				}
				transcripts[i] = append(transcripts[i],
					fmt.Sprintf("c%d.reserve%d attempts=%d slivers=%d", i, k, attempts, len(rr.Slivers)))
				if k%2 != 0 {
					continue // odd reservations are left to expire via TTL
				}
				before = c.Stats().Retries
				err = c.Call(MethodRelease, ReleaseRequest{
					Credential: userCred(), SliceName: slice, Slivers: rr.Slivers,
					IdempotencyKey: slice + "/release",
				}, nil)
				attempts = c.Stats().Retries - before + 1
				if err != nil {
					t.Errorf("client %d release %d failed despite retry budget: %v", i, k, err)
				}
				transcripts[i] = append(transcripts[i],
					fmt.Sprintf("c%d.release%d attempts=%d ok=%v", i, k, attempts, err == nil))
			}
		}()
	}
	wg.Wait()

	run := chaosRun{
		reserveReplay: counterValue(reg, "fedshare_sfa_dedup_replays_total", MethodReserve),
		releaseReplay: counterValue(reg, "fedshare_sfa_dedup_replays_total", MethodRelease),
	}

	// Exactly-once execution, by counter identity: every dispatched keyed
	// request either executed (once per distinct key) or replayed.
	const totalReserves = chaosClients * chaosCalls
	const totalReleases = totalReserves / 2
	if n := counterValue(reg, "fedshare_sfa_errors_total", MethodReserve); n != 0 {
		t.Errorf("reserve errors = %d, want 0 (capacity is ample)", n)
	}
	if n := counterValue(reg, "fedshare_sfa_errors_total", MethodRelease); n != 0 {
		t.Errorf("release errors = %d, want 0", n)
	}
	dispatched := counterValue(reg, "fedshare_sfa_requests_total", MethodReserve)
	if executed := dispatched - run.reserveReplay; executed != totalReserves {
		t.Errorf("reserve executions = %d (dispatched %d - replayed %d), want %d: double-booking or lost execution",
			executed, dispatched, run.reserveReplay, totalReserves)
	}
	relDispatched := counterValue(reg, "fedshare_sfa_requests_total", MethodRelease)
	if executed := relDispatched - run.releaseReplay; executed != totalReleases {
		t.Errorf("release executions = %d (dispatched %d - replayed %d), want %d: capacity accounting corrupted",
			executed, relDispatched, run.releaseReplay, totalReleases)
	}

	// Lease lifecycle: the unreleased half is still leased, then the reaper
	// returns the authority to empty once the TTLs elapse.
	active := reg.Gauge("fedshare_sfa_leases_active", "")
	if got := active.Value(); got != float64(totalReserves-totalReleases) {
		t.Errorf("leases_active after run = %g, want %d", got, totalReserves-totalReleases)
	}
	clock.Advance(time.Minute)
	expired := reg.Counter("fedshare_sfa_leases_expired_total", "")
	waitFor(t, "chaos leases to expire", func() bool {
		return active.Value() == 0 &&
			expired.Value() == int64(totalReserves-totalReleases) &&
			srv.auth.Utilization() == 0
	})

	var lines []string
	for i := range transcripts {
		lines = append(lines, transcripts[i]...)
	}
	for i, d := range dialers {
		for _, ev := range d.Events() {
			if strings.Contains(ev, "drop-response") {
				run.dropResponses++
			}
			lines = append(lines, fmt.Sprintf("c%d.%s", i, ev))
		}
	}
	run.transcript = strings.Join(lines, "\n")
	return run
}

func TestChaosFederationUnderFaults(t *testing.T) {
	seed := chaosSeed(t)
	a := runChaos(t, seed)
	// A lost response forces a retry of an already-executed request, which
	// the dedup table must answer by replay — the scenario idempotency keys
	// exist for. At the default fault rates this occurs many times per run.
	if a.dropResponses > 0 && a.reserveReplay+a.releaseReplay == 0 {
		t.Errorf("%d responses dropped but no dedup replays recorded", a.dropResponses)
	}
	// Reproducibility: a second run at the same seed must produce the same
	// per-client call transcripts and the same fault-event schedule.
	b := runChaos(t, seed)
	if a.transcript != b.transcript {
		t.Errorf("chaos run not reproducible at seed %d:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			seed, a.transcript, b.transcript)
	}
}
