package combin

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFull(t *testing.T) {
	cases := []struct {
		n    int
		want Set
	}{
		{0, 0},
		{1, 1},
		{3, 0b111},
		{8, 0xFF},
		{64, Set(math.MaxUint64)},
	}
	for _, c := range cases {
		if got := Full(c.n); got != c.want {
			t.Errorf("Full(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestFullPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Full(%d) did not panic", n)
				}
			}()
			Full(n)
		}()
	}
}

func TestSetOperations(t *testing.T) {
	s := Of(0, 2, 5)
	if !s.Contains(0) || !s.Contains(2) || !s.Contains(5) {
		t.Fatalf("Of(0,2,5) missing members: %v", s)
	}
	if s.Contains(1) || s.Contains(3) {
		t.Fatalf("Of(0,2,5) has spurious members: %v", s)
	}
	if got := s.Card(); got != 3 {
		t.Errorf("Card = %d, want 3", got)
	}
	if got := s.With(1); got != Of(0, 1, 2, 5) {
		t.Errorf("With(1) = %v", got)
	}
	if got := s.Without(2); got != Of(0, 5) {
		t.Errorf("Without(2) = %v", got)
	}
	if got := s.Union(Of(1, 2)); got != Of(0, 1, 2, 5) {
		t.Errorf("Union = %v", got)
	}
	if got := s.Intersect(Of(2, 5, 7)); got != Of(2, 5) {
		t.Errorf("Intersect = %v", got)
	}
	if got := s.Minus(Of(2)); got != Of(0, 5) {
		t.Errorf("Minus = %v", got)
	}
	if !Of(0, 2).SubsetOf(s) {
		t.Error("Of(0,2) should be subset of {0,2,5}")
	}
	if Of(0, 1).SubsetOf(s) {
		t.Error("Of(0,1) should not be subset of {0,2,5}")
	}
}

func TestMembersRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		s := Set(raw)
		var rebuilt Set
		for _, m := range s.Members() {
			rebuilt = rebuilt.With(m)
		}
		return rebuilt == s && len(s.Members()) == s.Card()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := Of(0, 2, 3).String(); got != "{0,2,3}" {
		t.Errorf("String = %q", got)
	}
	if got := Empty.String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestSubsetsCount(t *testing.T) {
	s := Of(1, 3, 4, 7)
	count := 0
	seen := map[Set]bool{}
	Subsets(s, func(sub Set) bool {
		if !sub.SubsetOf(s) {
			t.Errorf("subset %v not within %v", sub, s)
		}
		if seen[sub] {
			t.Errorf("duplicate subset %v", sub)
		}
		seen[sub] = true
		count++
		return true
	})
	if count != 16 {
		t.Errorf("got %d subsets of a 4-set, want 16", count)
	}
	if !seen[Empty] || !seen[s] {
		t.Error("Subsets must include the empty set and the set itself")
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	count := 0
	Subsets(Of(0, 1, 2), func(Set) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop after 3, got %d calls", count)
	}
}

func TestProperSubsets(t *testing.T) {
	s := Of(0, 1, 2)
	count := 0
	ProperSubsets(s, func(sub Set) bool {
		if sub == s || sub == Empty {
			t.Errorf("proper subsets must exclude %v", sub)
		}
		count++
		return true
	})
	if count != 6 {
		t.Errorf("got %d proper nonempty subsets of a 3-set, want 6", count)
	}
}

func TestAllCoalitions(t *testing.T) {
	count := 0
	AllCoalitions(4, func(Set) bool { count++; return true })
	if count != 16 {
		t.Errorf("AllCoalitions(4) visited %d, want 16", count)
	}
	// n=0 visits only the empty coalition.
	count = 0
	AllCoalitions(0, func(s Set) bool {
		if s != Empty {
			t.Errorf("unexpected coalition %v for n=0", s)
		}
		count++
		return true
	})
	if count != 1 {
		t.Errorf("AllCoalitions(0) visited %d, want 1", count)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1},
		{5, 0, 1},
		{5, 5, 1},
		{5, 2, 10},
		{10, 3, 120},
		{52, 5, 2598960},
		{5, 6, 0},
		{5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	// Pascal's rule over a triangle.
	for n := 2; n <= 20; n++ {
		for k := 1; k < n; k++ {
			if got, want := Binomial(n, k), Binomial(n-1, k-1)+Binomial(n-1, k); got != want {
				t.Fatalf("Pascal fails at (%d,%d): %g != %g", n, k, got, want)
			}
		}
	}
}

func TestFactorial(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %g, want %g", n, got, w)
		}
	}
}

func TestPermutationsCountAndUniqueness(t *testing.T) {
	for n := 0; n <= 6; n++ {
		seen := map[string]bool{}
		Permutations(n, func(p []int) bool {
			key := ""
			for _, v := range p {
				key += string(rune('a' + v))
			}
			if seen[key] {
				t.Errorf("n=%d: duplicate permutation %v", n, p)
			}
			seen[key] = true
			return true
		})
		if want := int(Factorial(n)); len(seen) != want {
			t.Errorf("n=%d: got %d permutations, want %d", n, len(seen), want)
		}
	}
}

func TestPermutationsEarlyStop(t *testing.T) {
	calls := 0
	Permutations(5, func([]int) bool {
		calls++
		return calls < 7
	})
	if calls != 7 {
		t.Errorf("early stop after 7, got %d calls", calls)
	}
}

func BenchmarkSubsets10(b *testing.B) {
	s := Full(10)
	for i := 0; i < b.N; i++ {
		n := 0
		Subsets(s, func(Set) bool { n++; return true })
	}
}

func BenchmarkPermutations8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 0
		Permutations(8, func([]int) bool { n++; return true })
	}
}
