// Package combin provides combinatorial enumeration primitives used by the
// coalitional game engine: coalitions as bitmasks, subset and permutation
// iteration, and binomial/factorial tables.
//
// Coalitions over a player set {0, 1, …, n-1} are represented as Set, a
// uint64 bitmask, which bounds the exact engines at 64 players; the
// Monte-Carlo estimators in package coalition lift that restriction.
package combin

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"
)

// Set is a coalition of players encoded as a bitmask: bit i set means player
// i belongs to the coalition.
type Set uint64

// Empty is the empty coalition.
const Empty Set = 0

// MaxPlayers is the largest player count representable by Set.
const MaxPlayers = 64

// Full returns the grand coalition over n players.
func Full(n int) Set {
	if n < 0 || n > MaxPlayers {
		panic(fmt.Sprintf("combin: player count %d out of range [0,%d]", n, MaxPlayers))
	}
	if n == MaxPlayers {
		return Set(math.MaxUint64)
	}
	return Set(1)<<uint(n) - 1
}

// Singleton returns the coalition containing only player i.
func Singleton(i int) Set { return Set(1) << uint(i) }

// Of builds a coalition from an explicit list of players.
func Of(players ...int) Set {
	var s Set
	for _, p := range players {
		s |= Singleton(p)
	}
	return s
}

// Contains reports whether player i belongs to s.
func (s Set) Contains(i int) bool { return s&Singleton(i) != 0 }

// With returns s ∪ {i}.
func (s Set) With(i int) Set { return s | Singleton(i) }

// Without returns s \ {i}.
func (s Set) Without(i int) Set { return s &^ Singleton(i) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s \ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Card returns |s|.
func (s Set) Card() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether s is the empty coalition.
func (s Set) IsEmpty() bool { return s == 0 }

// Members returns the players of s in increasing order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Card())
	for t := s; t != 0; {
		i := bits.TrailingZeros64(uint64(t))
		out = append(out, i)
		t &^= Set(1) << uint(i)
	}
	return out
}

// String renders the coalition in conventional notation, e.g. "{0,2,3}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for idx, p := range s.Members() {
		if idx > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(p))
	}
	b.WriteByte('}')
	return b.String()
}

// Subsets calls fn for every subset of s, including Empty and s itself.
// Iteration order is the standard sub-mask descent (decreasing mask value,
// finishing with the empty set). It stops early if fn returns false.
func Subsets(s Set, fn func(Set) bool) {
	// Classic sub-mask enumeration: sub = (sub-1) & s walks all submasks.
	for sub := s; ; sub = (sub - 1) & s {
		if !fn(sub) {
			return
		}
		if sub == 0 {
			return
		}
	}
}

// ProperSubsets calls fn for every strict, nonempty subset of s.
func ProperSubsets(s Set, fn func(Set) bool) {
	Subsets(s, func(sub Set) bool {
		if sub == s || sub == 0 {
			return true
		}
		return fn(sub)
	})
}

// AllCoalitions calls fn for every coalition over n players, empty and grand
// included. With n players this is 2^n invocations.
func AllCoalitions(n int, fn func(Set) bool) {
	full := Full(n)
	for m := Set(0); ; m++ {
		if !fn(m) {
			return
		}
		if m == full {
			return
		}
	}
}

// Binomial returns C(n, k) as a float64, exact for all values that fit, and
// +Inf on overflow. Negative or out-of-range k yields 0.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out *= float64(n-i) / float64(i+1)
	}
	return math.Round(out)
}

// Factorial returns n! as a float64 (exact through n = 22, approximate
// beyond). Negative n panics.
func Factorial(n int) float64 {
	if n < 0 {
		panic("combin: factorial of negative number")
	}
	out := 1.0
	for i := 2; i <= n; i++ {
		out *= float64(i)
	}
	return out
}

// Permutations calls fn with each permutation of {0,…,n-1} using Heap's
// algorithm. The slice passed to fn is reused between calls; callers must
// copy it if they retain it. Iteration stops early if fn returns false.
func Permutations(n int, fn func([]int) bool) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if n == 0 {
		fn(perm)
		return
	}
	c := make([]int, n)
	if !fn(perm) {
		return
	}
	for i := 0; i < n; {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if !fn(perm) {
				return
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}
