package planetlab

import (
	"fmt"
	"testing"
)

func TestSnapshotIdle(t *testing.T) {
	a := testAuthority(t, 2, 2, 3)
	snap := a.Snapshot()
	if snap.Authority != "test" {
		t.Errorf("authority %q", snap.Authority)
	}
	if len(snap.Nodes) != 4 || len(snap.Sites) != 2 {
		t.Errorf("nodes=%d sites=%d", len(snap.Nodes), len(snap.Sites))
	}
	if snap.Utilization != 0 || snap.MaxNodeLoad != 0 {
		t.Errorf("idle snapshot has load: %+v", snap)
	}
}

func TestSnapshotUnderLoad(t *testing.T) {
	a := testAuthority(t, 2, 1, 4)
	if _, err := a.ReserveSlivers("s1", "site0", 3); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if snap.Utilization != 3.0/8 {
		t.Errorf("utilization %g, want 0.375", snap.Utilization)
	}
	if snap.MaxNodeLoad != 0.75 {
		t.Errorf("max node load %g, want 0.75", snap.MaxNodeLoad)
	}
	var site0 SiteStatus
	for _, s := range snap.Sites {
		if s.SiteID == "site0" {
			site0 = s
		}
	}
	if site0.Slivers != 3 || site0.Utilization != 0.75 {
		t.Errorf("site0 = %+v", site0)
	}
}

func TestMonitorHistoryAndEviction(t *testing.T) {
	a := testAuthority(t, 1, 1, 10)
	m := NewMonitor(a, 3)
	for i := 0; i < 5; i++ {
		if _, err := a.ReserveSlivers(fmt.Sprintf("s%d", i), "site0", 1); err != nil {
			t.Fatal(err)
		}
		m.Poll()
	}
	hist := m.History()
	if len(hist) != 3 {
		t.Fatalf("history length %d, want 3", len(hist))
	}
	// Oldest retained is the 3rd poll (3 slivers placed).
	if hist[0].Utilization != 0.3 {
		t.Errorf("oldest retained utilization %g, want 0.3", hist[0].Utilization)
	}
	if m.PeakUtilization() != 0.5 {
		t.Errorf("peak %g, want 0.5", m.PeakUtilization())
	}
}

func TestHotSites(t *testing.T) {
	a := testAuthority(t, 3, 1, 2)
	m := NewMonitor(a, 0)
	if _, err := m.HotSites(0.5); err == nil {
		t.Error("no snapshots yet must error")
	}
	// Fill site0 fully and site1 half.
	if _, err := a.ReserveSlivers("s", "site0", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReserveSlivers("s", "site1", 1); err != nil {
		t.Fatal(err)
	}
	m.Poll()
	hot, err := m.HotSites(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) != 2 || hot[0] != "site0" || hot[1] != "site1" {
		t.Errorf("hot sites = %v", hot)
	}
	hot, err = m.HotSites(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) != 1 || hot[0] != "site0" {
		t.Errorf("hot sites at 0.9 = %v", hot)
	}
}

func TestDefaultMonitorLimit(t *testing.T) {
	a := testAuthority(t, 1, 1, 1)
	m := NewMonitor(a, 0)
	for i := 0; i < 70; i++ {
		m.Poll()
	}
	if len(m.History()) != 64 {
		t.Errorf("default limit: %d", len(m.History()))
	}
}
