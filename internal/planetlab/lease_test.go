package planetlab

import (
	"fmt"
	"testing"

	"fedshare/internal/sim"
)

func TestLeaseExpiry(t *testing.T) {
	a := testAuthority(t, 3, 1, 1)
	var e sim.Engine
	lm := NewLeaseManager(a, &e)
	if _, err := lm.Grant(SliceSpec{Name: "s1", MinSites: 3}, 5); err != nil {
		t.Fatal(err)
	}
	if a.Utilization() != 1 || lm.Active() != 1 {
		t.Fatalf("post-grant state: util %g active %d", a.Utilization(), lm.Active())
	}
	e.Run(4)
	if lm.Active() != 1 {
		t.Error("lease should still be live at t=4")
	}
	e.Run(6)
	if lm.Active() != 0 || lm.Expired != 1 {
		t.Errorf("lease should have expired: active %d expired %d", lm.Active(), lm.Expired)
	}
	if a.Utilization() != 0 {
		t.Errorf("capacity not reclaimed: %g", a.Utilization())
	}
}

func TestLeaseRenewal(t *testing.T) {
	a := testAuthority(t, 2, 1, 1)
	var e sim.Engine
	lm := NewLeaseManager(a, &e)
	if _, err := lm.Grant(SliceSpec{Name: "s", MinSites: 2}, 5); err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	if err := lm.Renew("s", 5); err != nil {
		t.Fatal(err)
	}
	e.Run(6) // past the original expiry, before the renewed one
	if lm.Active() != 1 {
		t.Error("renewed lease expired early")
	}
	e.Run(9)
	if lm.Active() != 0 {
		t.Error("renewed lease should expire at t=8")
	}
	if err := lm.Renew("s", 5); err == nil {
		t.Error("renewing an expired lease must fail")
	}
}

func TestLeaseRelease(t *testing.T) {
	a := testAuthority(t, 2, 1, 1)
	var e sim.Engine
	lm := NewLeaseManager(a, &e)
	if _, err := lm.Grant(SliceSpec{Name: "s", MinSites: 1}, 10); err != nil {
		t.Fatal(err)
	}
	if err := lm.Release("s"); err != nil {
		t.Fatal(err)
	}
	if a.Utilization() != 0 || lm.Active() != 0 {
		t.Error("release should free everything")
	}
	// The stale expiry event is a no-op.
	e.Run(20)
	if lm.Expired != 0 {
		t.Errorf("released lease counted as expired: %d", lm.Expired)
	}
	if err := lm.Release("s"); err == nil {
		t.Error("double release must fail")
	}
}

func TestLeaseValidation(t *testing.T) {
	a := testAuthority(t, 1, 1, 1)
	var e sim.Engine
	lm := NewLeaseManager(a, &e)
	if _, err := lm.Grant(SliceSpec{Name: "s"}, 0); err == nil {
		t.Error("zero duration must fail")
	}
	if err := lm.Renew("nope", 1); err == nil {
		t.Error("renewing unknown lease must fail")
	}
}

func TestLeaseChurn(t *testing.T) {
	// Short leases churn through a small facility: capacity must never
	// oversubscribe and must fully recover.
	a := testAuthority(t, 2, 1, 2)
	var e sim.Engine
	lm := NewLeaseManager(a, &e)
	granted := 0
	var tick func(i int)
	tick = func(i int) {
		if i >= 20 {
			return
		}
		spec := SliceSpec{Name: fmt.Sprintf("churn%d", i), MinSites: 2}
		if _, err := lm.Grant(spec, 1.5); err == nil {
			granted++
		}
		e.Schedule(1, func() { tick(i + 1) })
	}
	tick(0)
	e.Run(100)
	if lm.Active() != 0 {
		t.Errorf("leases still active after horizon: %d", lm.Active())
	}
	if a.Utilization() != 0 {
		t.Errorf("capacity leaked: %g", a.Utilization())
	}
	if granted < 10 {
		t.Errorf("churn granted only %d leases", granted)
	}
	if lm.Expired != granted {
		t.Errorf("expired %d != granted %d", lm.Expired, granted)
	}
}
