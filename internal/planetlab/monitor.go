package planetlab

import (
	"fmt"
	"sort"
	"time"
)

// NodeStatus is one node's instantaneous load, as a CoMon-style monitor
// (cf. the paper's reference [23]) would report it.
type NodeStatus struct {
	SiteID   string
	NodeID   string
	Capacity int
	Slivers  int     // placed slivers
	Load     float64 // Slivers / Capacity (0 when capacity is 0)
}

// SiteStatus aggregates one site.
type SiteStatus struct {
	SiteID      string
	Capacity    int
	Slivers     int
	Utilization float64
}

// Snapshot is a point-in-time view of an authority's load.
type Snapshot struct {
	Authority string
	Taken     time.Time
	Nodes     []NodeStatus
	Sites     []SiteStatus
	// Utilization is total slivers / total capacity.
	Utilization float64
	// MaxNodeLoad is the busiest node's load — the hot-spot indicator the
	// fair-share story cares about.
	MaxNodeLoad float64
}

// Snapshot captures the authority's current load.
func (a *Authority) Snapshot() *Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	snap := &Snapshot{Authority: a.Name, Taken: time.Now()}
	totalCap, totalSliv := 0, 0
	for _, s := range a.sites {
		siteCap, siteSliv := 0, 0
		for _, n := range s.Nodes {
			placed := a.load[nodeKey(s.ID, n.ID)]
			load := 0.0
			if n.Capacity > 0 {
				load = float64(placed) / float64(n.Capacity)
			}
			snap.Nodes = append(snap.Nodes, NodeStatus{
				SiteID: s.ID, NodeID: n.ID,
				Capacity: n.Capacity, Slivers: placed, Load: load,
			})
			if load > snap.MaxNodeLoad {
				snap.MaxNodeLoad = load
			}
			siteCap += n.Capacity
			siteSliv += placed
		}
		util := 0.0
		if siteCap > 0 {
			util = float64(siteSliv) / float64(siteCap)
		}
		snap.Sites = append(snap.Sites, SiteStatus{
			SiteID: s.ID, Capacity: siteCap, Slivers: siteSliv, Utilization: util,
		})
		totalCap += siteCap
		totalSliv += siteSliv
	}
	if totalCap > 0 {
		snap.Utilization = float64(totalSliv) / float64(totalCap)
	}
	return snap
}

// Monitor keeps a bounded history of snapshots for trend inspection.
type Monitor struct {
	authority *Authority
	limit     int
	history   []*Snapshot
}

// NewMonitor creates a monitor retaining up to limit snapshots (default 64).
func NewMonitor(a *Authority, limit int) *Monitor {
	if limit <= 0 {
		limit = 64
	}
	return &Monitor{authority: a, limit: limit}
}

// Poll takes and stores a snapshot, evicting the oldest beyond the limit.
// Monitor is not safe for concurrent use; callers poll from one goroutine.
func (m *Monitor) Poll() *Snapshot {
	snap := m.authority.Snapshot()
	m.history = append(m.history, snap)
	if len(m.history) > m.limit {
		m.history = m.history[len(m.history)-m.limit:]
	}
	return snap
}

// History returns the retained snapshots, oldest first.
func (m *Monitor) History() []*Snapshot {
	return append([]*Snapshot(nil), m.history...)
}

// PeakUtilization returns the maximum total utilization over the history
// (0 when empty).
func (m *Monitor) PeakUtilization() float64 {
	peak := 0.0
	for _, s := range m.history {
		if s.Utilization > peak {
			peak = s.Utilization
		}
	}
	return peak
}

// HotSites returns the site IDs whose latest utilization meets or exceeds
// threshold, sorted by utilization descending.
func (m *Monitor) HotSites(threshold float64) ([]string, error) {
	if len(m.history) == 0 {
		return nil, fmt.Errorf("planetlab: no snapshots polled yet")
	}
	latest := m.history[len(m.history)-1]
	type hot struct {
		id   string
		util float64
	}
	var hots []hot
	for _, s := range latest.Sites {
		if s.Utilization >= threshold {
			hots = append(hots, hot{s.SiteID, s.Utilization})
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].util != hots[j].util {
			return hots[i].util > hots[j].util
		}
		return hots[i].id < hots[j].id
	})
	out := make([]string, len(hots))
	for i, h := range hots {
		out[i] = h.id
	}
	return out, nil
}
