package planetlab

import (
	"fmt"
	"sync"
	"testing"
)

func testAuthority(t *testing.T, sites, nodesPerSite, capacity int) *Authority {
	t.Helper()
	a := NewAuthority("test")
	for s := 0; s < sites; s++ {
		site := &Site{ID: fmt.Sprintf("site%d", s), Name: fmt.Sprintf("Site %d", s)}
		for n := 0; n < nodesPerSite; n++ {
			site.Nodes = append(site.Nodes, Node{
				ID:       fmt.Sprintf("node%d", n),
				HostName: fmt.Sprintf("n%d.s%d.example.org", n, s),
				Capacity: capacity,
			})
		}
		if err := a.AddSite(site); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestAddSiteValidation(t *testing.T) {
	a := NewAuthority("x")
	if err := a.AddSite(&Site{}); err == nil {
		t.Error("empty site ID must fail")
	}
	if err := a.AddSite(&Site{ID: "s1"}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSite(&Site{ID: "s1"}); err == nil {
		t.Error("duplicate site ID must fail")
	}
	if a.SiteCount() != 1 {
		t.Errorf("SiteCount = %d", a.SiteCount())
	}
}

func TestSliceSpecValidation(t *testing.T) {
	bad := []SliceSpec{
		{},
		{Name: "s", MinSites: -1},
		{Name: "s", MaxSites: -1},
		{Name: "s", MinSites: 5, MaxSites: 2},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, spec)
		}
	}
	if err := (SliceSpec{Name: "ok", MinSites: 2, MaxSites: 4}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestCreateSliceSpansSites(t *testing.T) {
	a := testAuthority(t, 5, 2, 3)
	slice, err := a.CreateSlice(SliceSpec{Name: "exp1", Owner: "alice", MinSites: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(slice.Sites()); got != 5 {
		t.Errorf("slice spans %d sites, want all 5 (unbounded)", got)
	}
	if len(slice.Slivers) != 5 {
		t.Errorf("%d slivers, want 5 (one per site)", len(slice.Slivers))
	}
	got, ok := a.GetSlice("exp1")
	if !ok || got.Spec.Owner != "alice" {
		t.Error("GetSlice lookup failed")
	}
}

func TestCreateSliceMaxSites(t *testing.T) {
	a := testAuthority(t, 5, 1, 2)
	slice, err := a.CreateSlice(SliceSpec{Name: "cdn", MinSites: 2, MaxSites: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(slice.Sites()); got != 3 {
		t.Errorf("slice spans %d sites, want MaxSites=3", got)
	}
}

func TestCreateSliceDiversityFailure(t *testing.T) {
	a := testAuthority(t, 2, 1, 1)
	if _, err := a.CreateSlice(SliceSpec{Name: "big", MinSites: 5}); err == nil {
		t.Error("diversity threshold above site count must fail")
	}
	if a.Utilization() != 0 {
		t.Errorf("failed slice must leave no slivers: utilization %g", a.Utilization())
	}
}

func TestCreateSliceDuplicate(t *testing.T) {
	a := testAuthority(t, 2, 1, 2)
	if _, err := a.CreateSlice(SliceSpec{Name: "dup"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CreateSlice(SliceSpec{Name: "dup"}); err == nil {
		t.Error("duplicate slice name must fail")
	}
}

func TestDeleteSliceFreesCapacity(t *testing.T) {
	a := testAuthority(t, 3, 1, 1)
	if _, err := a.CreateSlice(SliceSpec{Name: "tmp", MinSites: 3}); err != nil {
		t.Fatal(err)
	}
	if a.Utilization() != 1 {
		t.Errorf("utilization %g, want 1", a.Utilization())
	}
	// Full system rejects a second slice needing all sites.
	if _, err := a.CreateSlice(SliceSpec{Name: "tmp2", MinSites: 3}); err == nil {
		t.Error("full system should reject")
	}
	if err := a.DeleteSlice("tmp"); err != nil {
		t.Fatal(err)
	}
	if a.Utilization() != 0 {
		t.Errorf("utilization %g after delete, want 0", a.Utilization())
	}
	if _, err := a.CreateSlice(SliceSpec{Name: "tmp2", MinSites: 3}); err != nil {
		t.Errorf("freed capacity should host the slice: %v", err)
	}
	if err := a.DeleteSlice("missing"); err == nil {
		t.Error("deleting a missing slice must fail")
	}
}

func TestReserveSliversLeastLoaded(t *testing.T) {
	a := testAuthority(t, 1, 3, 2)
	// Six single-sliver reservations must spread 2-2-2 over the 3 nodes.
	perNode := map[string]int{}
	for i := 0; i < 6; i++ {
		svs, err := a.ReserveSlivers(fmt.Sprintf("s%d", i), "site0", 1)
		if err != nil {
			t.Fatal(err)
		}
		perNode[svs[0].NodeID]++
	}
	for node, n := range perNode {
		if n != 2 {
			t.Errorf("node %s has %d slivers, want 2", node, n)
		}
	}
	// Seventh fails: site full.
	if _, err := a.ReserveSlivers("s7", "site0", 1); err == nil {
		t.Error("overfull site must reject")
	}
}

func TestReserveSliversErrors(t *testing.T) {
	a := testAuthority(t, 1, 1, 1)
	if _, err := a.ReserveSlivers("s", "nope", 1); err == nil {
		t.Error("unknown site must fail")
	}
	if _, err := a.ReserveSlivers("s", "site0", 0); err == nil {
		t.Error("zero count must fail")
	}
}

func TestFairShare(t *testing.T) {
	a := testAuthority(t, 1, 1, 2)
	if got := a.FairShare("site0", "node0"); got != 1 {
		t.Errorf("idle fair share %g, want 1", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := a.ReserveSlivers(fmt.Sprintf("s%d", i), "site0", 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.FairShare("site0", "node0"); got != 1 {
		t.Errorf("at-capacity fair share %g, want 1", got)
	}
	if got := a.FairShare("nope", "node0"); got != 0 {
		t.Errorf("unknown node fair share %g, want 0", got)
	}
}

func TestAvailableSites(t *testing.T) {
	a := testAuthority(t, 3, 1, 2)
	if got := a.AvailableSites(2); len(got) != 3 {
		t.Errorf("AvailableSites(2) = %v", got)
	}
	if got := a.AvailableSites(3); len(got) != 0 {
		t.Errorf("AvailableSites(3) = %v, want none", got)
	}
	// Consume site0 fully.
	if _, err := a.ReserveSlivers("s", "site0", 2); err != nil {
		t.Fatal(err)
	}
	got := a.AvailableSites(1)
	if len(got) != 2 {
		t.Errorf("AvailableSites(1) after fill = %v", got)
	}
}

func TestAdoptSlice(t *testing.T) {
	a := testAuthority(t, 2, 1, 1)
	svs, err := a.ReserveSlivers("fed", "site0", 1)
	if err != nil {
		t.Fatal(err)
	}
	slice := &Slice{Spec: SliceSpec{Name: "fed"}, Slivers: svs}
	if err := a.AdoptSlice(slice); err != nil {
		t.Fatal(err)
	}
	if err := a.AdoptSlice(slice); err == nil {
		t.Error("double adoption must fail")
	}
	if err := a.DeleteSlice("fed"); err != nil {
		t.Fatal(err)
	}
	if a.Utilization() != 0 {
		t.Errorf("utilization %g after federated delete", a.Utilization())
	}
}

func TestConcurrentSliceCreation(t *testing.T) {
	a := testAuthority(t, 4, 2, 2) // 16 sliver slots, 4 per... 4 sites * 2 nodes * 2 = 16
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = a.CreateSlice(SliceSpec{
				Name:     fmt.Sprintf("slice%d", i),
				MinSites: 2,
				MaxSites: 2,
			})
		}(i)
	}
	wg.Wait()
	created := 0
	for _, err := range errs {
		if err == nil {
			created++
		}
	}
	// 16 slots / 2 slivers each = at most 8; capacity accounting must never
	// oversubscribe.
	used := a.Utilization()
	if used > 1 {
		t.Errorf("utilization %g > 1: oversubscription", used)
	}
	if created == 0 {
		t.Error("no slice created under concurrency")
	}
}
