package planetlab

import (
	"fmt"

	"fedshare/internal/sim"
)

// LeaseManager grants time-limited slices on an authority, expiring them
// automatically on a discrete-event clock. It models the holding-time
// dimension of the paper's demand (experiments occupy resources for t, then
// leave), turning the static authority into the time-multiplexed system the
// loss-network analysis assumes.
//
// LeaseManager drives a single sim.Engine and is not safe for concurrent
// use; run it from one goroutine (the simulation loop).
type LeaseManager struct {
	auth   *Authority
	engine *sim.Engine
	active map[string]float64 // slice -> expiry time
	// Granted and Expired count lease lifecycle events.
	Granted, Expired int
}

// NewLeaseManager couples an authority with a simulation engine.
func NewLeaseManager(a *Authority, e *sim.Engine) *LeaseManager {
	return &LeaseManager{auth: a, engine: e, active: map[string]float64{}}
}

// Grant creates the slice and schedules its expiry after duration units of
// virtual time.
func (lm *LeaseManager) Grant(spec SliceSpec, duration float64) (*Slice, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("planetlab: lease duration must be positive")
	}
	slice, err := lm.auth.CreateSlice(spec)
	if err != nil {
		return nil, err
	}
	lm.Granted++
	lm.active[spec.Name] = lm.engine.Now() + duration
	name := spec.Name
	lm.engine.Schedule(duration, func() {
		// The slice may have been renewed or deleted already.
		exp, ok := lm.active[name]
		if !ok || exp > lm.engine.Now() {
			return
		}
		delete(lm.active, name)
		if err := lm.auth.DeleteSlice(name); err == nil {
			lm.Expired++
		}
	})
	return slice, nil
}

// Renew extends an active lease by duration from now.
func (lm *LeaseManager) Renew(name string, duration float64) error {
	if duration <= 0 {
		return fmt.Errorf("planetlab: lease duration must be positive")
	}
	if _, ok := lm.active[name]; !ok {
		return fmt.Errorf("planetlab: no active lease for %s", name)
	}
	lm.active[name] = lm.engine.Now() + duration
	lm.engine.Schedule(duration, func() {
		exp, ok := lm.active[name]
		if !ok || exp > lm.engine.Now() {
			return
		}
		delete(lm.active, name)
		if err := lm.auth.DeleteSlice(name); err == nil {
			lm.Expired++
		}
	})
	return nil
}

// Release ends a lease early, deleting the slice.
func (lm *LeaseManager) Release(name string) error {
	if _, ok := lm.active[name]; !ok {
		return fmt.Errorf("planetlab: no active lease for %s", name)
	}
	delete(lm.active, name)
	return lm.auth.DeleteSlice(name)
}

// Active returns the number of live leases.
func (lm *LeaseManager) Active() int { return len(lm.active) }
