// Package planetlab models the testbed substrate the paper federates: sites
// contribute nodes, users deploy slices (one sliver per node across a set of
// sites), and competing slivers on a node share its capacity under
// short-term fair allocation (Sec. 1.2). Regional authorities (PLC, PLE,
// PLJ, …) each manage a disjoint set of sites; the sfa package federates
// authorities over the network.
package planetlab

import (
	"fmt"
	"sort"
	"sync"
)

// Node is one server contributed by a site.
type Node struct {
	ID       string
	HostName string
	// Capacity is the number of concurrent slivers the node can host at
	// full quality (the bottleneck-resource aggregate R of the paper).
	Capacity int
}

// Site is a contributing institution: a distinct location in the economic
// model.
type Site struct {
	ID    string
	Name  string
	Nodes []Node
}

// Capacity returns the site's total sliver capacity.
func (s *Site) Capacity() int {
	t := 0
	for _, n := range s.Nodes {
		t += n.Capacity
	}
	return t
}

// SliceSpec is a slice request: a minimum number of distinct sites and a
// sliver count per site.
type SliceSpec struct {
	Name           string
	Owner          string
	MinSites       int // diversity threshold l
	MaxSites       int // 0 = unbounded
	SliversPerSite int // resources per location r (default 1)
}

func (s SliceSpec) sliversPerSite() int {
	if s.SliversPerSite <= 0 {
		return 1
	}
	return s.SliversPerSite
}

// Validate checks the spec.
func (s SliceSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("planetlab: slice needs a name")
	}
	if s.MinSites < 0 {
		return fmt.Errorf("planetlab: slice %s has negative MinSites", s.Name)
	}
	if s.MaxSites < 0 {
		return fmt.Errorf("planetlab: slice %s has negative MaxSites", s.Name)
	}
	if s.MaxSites > 0 && s.MaxSites < s.MinSites {
		return fmt.Errorf("planetlab: slice %s has MaxSites < MinSites", s.Name)
	}
	return nil
}

// Sliver is one virtual machine of a slice on one node.
type Sliver struct {
	SliceName string
	SiteID    string
	NodeID    string
}

// Slice is a deployed slice.
type Slice struct {
	Spec    SliceSpec
	Slivers []Sliver
}

// Sites returns the distinct site IDs the slice spans.
func (s *Slice) Sites() []string {
	seen := map[string]bool{}
	var out []string
	for _, sv := range s.Slivers {
		if !seen[sv.SiteID] {
			seen[sv.SiteID] = true
			out = append(out, sv.SiteID)
		}
	}
	sort.Strings(out)
	return out
}

// Authority is one regional testbed operator. It is safe for concurrent use
// (the sfa server handles connections in parallel).
type Authority struct {
	Name string

	mu     sync.Mutex
	sites  []*Site
	slices map[string]*Slice
	// load[nodeKey] counts slivers currently placed on a node.
	load map[string]int
}

// NewAuthority creates an empty authority.
func NewAuthority(name string) *Authority {
	return &Authority{
		Name:   name,
		slices: map[string]*Slice{},
		load:   map[string]int{},
	}
}

// AddSite registers a site. Site IDs must be unique within the authority.
func (a *Authority) AddSite(s *Site) error {
	if s.ID == "" {
		return fmt.Errorf("planetlab: site needs an ID")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, existing := range a.sites {
		if existing.ID == s.ID {
			return fmt.Errorf("planetlab: duplicate site %s", s.ID)
		}
	}
	a.sites = append(a.sites, s)
	return nil
}

// Sites returns a snapshot of the authority's sites.
func (a *Authority) Sites() []*Site {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*Site(nil), a.sites...)
}

// SiteCount returns the number of sites (the authority's L contribution).
func (a *Authority) SiteCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.sites)
}

func nodeKey(siteID, nodeID string) string { return siteID + "/" + nodeID }

// freeSlotsLocked returns the spare sliver slots of a node.
func (a *Authority) freeSlotsLocked(siteID string, n Node) int {
	return n.Capacity - a.load[nodeKey(siteID, n.ID)]
}

// SiteFree returns the unreserved sliver slots at a site (0 for unknown
// sites).
func (a *Authority) SiteFree(siteID string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range a.sites {
		if s.ID != siteID {
			continue
		}
		free := 0
		for _, n := range s.Nodes {
			free += a.freeSlotsLocked(s.ID, n)
		}
		return free
	}
	return 0
}

// AvailableSites returns the IDs of sites that can host at least want more
// slivers.
func (a *Authority) AvailableSites(want int) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for _, s := range a.sites {
		free := 0
		for _, n := range s.Nodes {
			free += a.freeSlotsLocked(s.ID, n)
		}
		if free >= want {
			out = append(out, s.ID)
		}
	}
	sort.Strings(out)
	return out
}

// ReserveSlivers places count slivers of slice sliceName at the given site,
// spreading them over the least-loaded nodes. It returns the slivers or an
// error without partial placement.
func (a *Authority) ReserveSlivers(sliceName, siteID string, count int) ([]Sliver, error) {
	if count <= 0 {
		return nil, fmt.Errorf("planetlab: sliver count must be positive")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var site *Site
	for _, s := range a.sites {
		if s.ID == siteID {
			site = s
			break
		}
	}
	if site == nil {
		return nil, fmt.Errorf("planetlab: %s has no site %s", a.Name, siteID)
	}
	// Least-loaded-first placement (short-term fair share).
	type slot struct {
		node Node
		free int
	}
	var slots []slot
	for _, n := range site.Nodes {
		if free := a.freeSlotsLocked(siteID, n); free > 0 {
			slots = append(slots, slot{n, free})
		}
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].free != slots[j].free {
			return slots[i].free > slots[j].free
		}
		return slots[i].node.ID < slots[j].node.ID
	})
	var placed []Sliver
	remaining := count
	for _, sl := range slots {
		take := sl.free
		if take > remaining {
			take = remaining
		}
		for k := 0; k < take; k++ {
			placed = append(placed, Sliver{SliceName: sliceName, SiteID: siteID, NodeID: sl.node.ID})
		}
		remaining -= take
		if remaining == 0 {
			break
		}
	}
	if remaining > 0 {
		return nil, fmt.Errorf("planetlab: site %s has insufficient capacity for %d slivers", siteID, count)
	}
	for _, sv := range placed {
		a.load[nodeKey(sv.SiteID, sv.NodeID)]++
	}
	return placed, nil
}

// ReleaseSlivers undoes a reservation.
func (a *Authority) ReleaseSlivers(slivers []Sliver) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, sv := range slivers {
		k := nodeKey(sv.SiteID, sv.NodeID)
		if a.load[k] > 0 {
			a.load[k]--
		}
	}
}

// CreateSlice embeds a slice across the authority's own sites: one batch of
// SliversPerSite slivers at each of at least MinSites distinct sites
// (up to MaxSites). It fails without side effects when the diversity
// threshold cannot be met.
func (a *Authority) CreateSlice(spec SliceSpec) (*Slice, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	a.mu.Lock()
	if _, ok := a.slices[spec.Name]; ok {
		a.mu.Unlock()
		return nil, fmt.Errorf("planetlab: slice %s already exists", spec.Name)
	}
	a.mu.Unlock()

	per := spec.sliversPerSite()
	candidates := a.AvailableSites(per)
	if len(candidates) < spec.MinSites {
		return nil, fmt.Errorf("planetlab: only %d sites can host the slice, need %d",
			len(candidates), spec.MinSites)
	}
	take := len(candidates)
	if spec.MaxSites > 0 && take > spec.MaxSites {
		take = spec.MaxSites
	}
	slice := &Slice{Spec: spec}
	for _, siteID := range candidates[:take] {
		svs, err := a.ReserveSlivers(spec.Name, siteID, per)
		if err != nil {
			a.ReleaseSlivers(slice.Slivers)
			return nil, err
		}
		slice.Slivers = append(slice.Slivers, svs...)
	}
	a.mu.Lock()
	a.slices[spec.Name] = slice
	a.mu.Unlock()
	return slice, nil
}

// DeleteSlice removes a slice and frees its slivers (including any slivers
// recorded from federated reservations).
func (a *Authority) DeleteSlice(name string) error {
	a.mu.Lock()
	slice, ok := a.slices[name]
	if !ok {
		a.mu.Unlock()
		return fmt.Errorf("planetlab: no slice %s", name)
	}
	delete(a.slices, name)
	a.mu.Unlock()
	a.ReleaseSlivers(slice.Slivers)
	return nil
}

// GetSlice returns a deployed slice.
func (a *Authority) GetSlice(name string) (*Slice, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.slices[name]
	return s, ok
}

// AdoptSlice records a slice assembled externally (by the federation layer)
// so DeleteSlice can free its local slivers.
func (a *Authority) AdoptSlice(s *Slice) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.slices[s.Spec.Name]; ok {
		return fmt.Errorf("planetlab: slice %s already exists", s.Spec.Name)
	}
	a.slices[s.Spec.Name] = s
	return nil
}

// RestoreSlivers re-applies placements recovered from a durable log:
// load is incremented at exactly the recorded nodes, without re-running
// placement policy or capacity checks — the placements were valid when
// they were made durable, and recovery must reproduce them bit-for-bit
// rather than re-decide them.
func (a *Authority) RestoreSlivers(svs []Sliver) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, sv := range svs {
		a.load[nodeKey(sv.SiteID, sv.NodeID)]++
	}
}

// SlicesSnapshot returns deep copies of all deployed slices, sorted by
// name, for durable-state capture.
func (a *Authority) SlicesSnapshot() []*Slice {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Slice, 0, len(a.slices))
	for _, s := range a.slices {
		cp := *s
		cp.Slivers = append([]Sliver(nil), s.Slivers...)
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// FairShare returns the capacity fraction each sliver on the node currently
// receives: capacity divided by the number of co-located slivers (1.0 when
// the node is underloaded). Unknown nodes return 0.
func (a *Authority) FairShare(siteID, nodeID string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range a.sites {
		if s.ID != siteID {
			continue
		}
		for _, n := range s.Nodes {
			if n.ID != nodeID {
				continue
			}
			load := a.load[nodeKey(siteID, nodeID)]
			if load <= n.Capacity {
				return 1
			}
			return float64(n.Capacity) / float64(load)
		}
	}
	return 0
}

// Utilization returns slivers-placed / total-capacity over all sites.
func (a *Authority) Utilization() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	capTotal, used := 0, 0
	for _, s := range a.sites {
		for _, n := range s.Nodes {
			capTotal += n.Capacity
			used += a.load[nodeKey(s.ID, n.ID)]
		}
	}
	if capTotal == 0 {
		return 0
	}
	return float64(used) / float64(capTotal)
}
