package figures

import (
	"math"
	"strings"
	"testing"
)

// mustFig runs a registered figure scenario, failing the test on error.
func mustFig(t *testing.T, id string) *Figure {
	t.Helper()
	f, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func yAt(t *testing.T, f *Figure, name string, x float64) float64 {
	t.Helper()
	for _, s := range f.Series {
		if s.Name == name {
			y, ok := s.YAt(x)
			if !ok {
				t.Fatalf("%s: series %q has no point at x=%g", f.ID, name, x)
			}
			return y
		}
	}
	t.Fatalf("%s: no series %q", f.ID, name)
	return 0
}

func TestFig2Anchors(t *testing.T) {
	f := mustFig(t, "fig2")
	if len(f.Series) != 3 {
		t.Fatalf("fig2 has %d series", len(f.Series))
	}
	// Below threshold everything is zero.
	for _, s := range f.Series {
		if y, _ := s.YAt(40); y != 0 {
			t.Errorf("%s: u(40) = %g, want 0", s.Name, y)
		}
	}
	if y := yAt(t, f, "d=1.0", 100); y != 100 {
		t.Errorf("d=1 u(100) = %g", y)
	}
	if y := yAt(t, f, "d=0.8", 100); math.Abs(y-math.Pow(100, 0.8)) > 1e-9 {
		t.Errorf("d=0.8 u(100) = %g", y)
	}
	if y := yAt(t, f, "d=1.2", 300); math.Abs(y-math.Pow(300, 1.2)) > 1e-9 {
		t.Errorf("d=1.2 u(300) = %g", y)
	}
}

func TestFig4Shape(t *testing.T) {
	f := mustFig(t, "fig4")
	if len(f.Series) != 6 {
		t.Fatalf("fig4 has %d series, want 6", len(f.Series))
	}
	// l=0: Shapley equals proportional.
	for i, want := range []float64{1.0 / 13, 4.0 / 13, 8.0 / 13} {
		name := []string{"phi1", "phi2", "phi3"}[i]
		if y := yAt(t, f, name, 0); math.Abs(y-want) > 1e-9 {
			t.Errorf("%s(0) = %g, want %g", name, y, want)
		}
	}
	// Equal shares in the grand-only band (1200, 1300].
	for _, name := range []string{"phi1", "phi2", "phi3"} {
		if y := yAt(t, f, name, 1250); math.Abs(y-1.0/3) > 1e-9 {
			t.Errorf("%s(1250) = %g, want 1/3", name, y)
		}
	}
	// Zero beyond 1300.
	if y := yAt(t, f, "phi3", 1350); y != 0 {
		t.Errorf("phi3(1350) = %g, want 0", y)
	}
	// Proportional flat across the sweep.
	if a, b := yAt(t, f, "pi2", 0), yAt(t, f, "pi2", 1400); a != b {
		t.Errorf("pi2 moved: %g -> %g", a, b)
	}
	// Facility 3 share rises once smaller facilities drop out.
	if yAt(t, f, "phi3", 600) <= yAt(t, f, "phi3", 0) {
		t.Error("phi3 should rise with l in the mid-range")
	}
}

func TestFig4StrictMatchesPaperNumbers(t *testing.T) {
	f := mustFig(t, "fig4-strict")
	// Paper Sec 4.1: φ̂2 = 2/13 at l = 500 under the strict convention.
	if y := yAt(t, f, "phi2", 500); math.Abs(y-2.0/13) > 1e-9 {
		t.Errorf("strict phi2(500) = %g, want 2/13", y)
	}
}

func TestFig5Convergence(t *testing.T) {
	f := mustFig(t, "fig5")
	// As d grows, Shapley approaches proportional (and the small-coalition
	// advantage of facility 3 fades toward its resource share).
	gapAt := func(d float64) float64 {
		gap := 0.0
		for i := 1; i <= 3; i++ {
			phi := yAt(t, f, "phi"+string(rune('0'+i)), d)
			pi := yAt(t, f, "pi"+string(rune('0'+i)), d)
			gap += math.Abs(phi - pi)
		}
		return gap
	}
	if gapAt(2.5) >= gapAt(0.5) {
		t.Errorf("Shapley-proportional gap should shrink with d: %g -> %g",
			gapAt(0.5), gapAt(2.5))
	}
	// φ̂3 dominates at small d (only facility 3 can serve alone at l=600).
	if yAt(t, f, "phi3", 0.5) <= yAt(t, f, "phi1", 0.5) {
		t.Error("facility 3 should dominate at small d")
	}
}

func TestFig6EqualTotalsDifferentShares(t *testing.T) {
	f := mustFig(t, "fig6")
	// At l = 0 all L_i·R_i equal -> all shares 1/3.
	for _, name := range []string{"phi1", "phi2", "phi3", "pi1", "pi2", "pi3"} {
		if y := yAt(t, f, name, 0); math.Abs(y-1.0/3) > 1e-6 {
			t.Errorf("%s(0) = %g, want 1/3", name, y)
		}
	}
	// Mid-range l: diversity-rich facility 3 beats facility 1 despite
	// identical totals.
	if yAt(t, f, "phi3", 600) <= yAt(t, f, "phi1", 600)+0.05 {
		t.Errorf("phi3(600)=%g should clearly exceed phi1(600)=%g",
			yAt(t, f, "phi3", 600), yAt(t, f, "phi1", 600))
	}
	// π̂ stays at 1/3 for every l.
	if y := yAt(t, f, "pi1", 900); math.Abs(y-1.0/3) > 1e-6 {
		t.Errorf("pi1(900) = %g", y)
	}
	// Extremes equal again: l in the all-must-cooperate band.
	if y := yAt(t, f, "phi1", 1250); math.Abs(y-1.0/3) > 1e-6 {
		t.Errorf("phi1(1250) = %g, want 1/3", y)
	}
}

func TestFig7MixtureShiftsShares(t *testing.T) {
	f := mustFig(t, "fig7")
	// With only flexible experiments (σ=0), Shapley tracks capacity
	// proportions; as σ grows, diversity (locations) matters more, so
	// facility 3 gains and facility 1 loses.
	phi3Lo, phi3Hi := yAt(t, f, "phi3", 0), yAt(t, f, "phi3", 1)
	if phi3Hi <= phi3Lo {
		t.Errorf("phi3 should rise with sigma: %g -> %g", phi3Lo, phi3Hi)
	}
	phi1Lo, phi1Hi := yAt(t, f, "phi1", 0), yAt(t, f, "phi1", 1)
	if phi1Hi >= phi1Lo {
		t.Errorf("phi1 should fall with sigma: %g -> %g", phi1Lo, phi1Hi)
	}
	// The Shapley-vs-proportional distortion grows with sigma.
	dist := func(x float64) float64 {
		d := 0.0
		for i := 1; i <= 3; i++ {
			d += math.Abs(yAt(t, f, "phi"+string(rune('0'+i)), x) - yAt(t, f, "pi"+string(rune('0'+i)), x))
		}
		return d
	}
	if dist(1) <= dist(0) {
		t.Errorf("distortion should grow with sigma: %g -> %g", dist(0), dist(1))
	}
}

func TestFig8DemandDependence(t *testing.T) {
	f := mustFig(t, "fig8")
	if len(f.Series) != 9 {
		t.Fatalf("fig8 has %d series, want 9 (phi, pi, rho)", len(f.Series))
	}
	// π̂ does not depend on K.
	if a, b := yAt(t, f, "pi1", 5), yAt(t, f, "pi1", 100); a != b {
		t.Errorf("pi1 moved with K: %g -> %g", a, b)
	}
	// Low demand: ρ̂ follows the diversity profile (L_i/ΣL = 1/13, 4/13,
	// 8/13), so facility 3 dominates consumption.
	if y := yAt(t, f, "rho3", 5); math.Abs(y-8.0/13) > 0.05 {
		t.Errorf("rho3(5) = %g, want ~8/13", y)
	}
	// High demand: ρ̂ drifts toward capacity shares (facility 3 falls).
	if yAt(t, f, "rho3", 100) >= yAt(t, f, "rho3", 5) {
		t.Error("rho3 should fall as demand saturates capacity")
	}
	// φ̂ and ρ̂ both move with K.
	if yAt(t, f, "phi1", 5) == yAt(t, f, "phi1", 100) {
		t.Error("phi1 should vary with demand volume")
	}
}

func TestFig9IncentiveCurves(t *testing.T) {
	f := mustFig(t, "fig9")
	if len(f.Series) != 6 {
		t.Fatalf("fig9 has %d series, want 6", len(f.Series))
	}
	// Proportional profit rises smoothly and monotonically with L1.
	for _, name := range []string{"pi1,l=0", "pi1,l=400", "pi1,l=800"} {
		prev := -1.0
		for _, s := range f.Series {
			if s.Name != name {
				continue
			}
			for _, p := range s.Points {
				if p.Y < prev-1e-9 {
					t.Errorf("%s decreases at L1=%g", name, p.X)
				}
				prev = p.Y
			}
		}
	}
	// Shapley at l=800 must show a pronounced jump (coalition feasibility).
	maxStep, typStep := 0.0, 0.0
	for _, s := range f.Series {
		if s.Name != "phi1,l=800" {
			continue
		}
		for i := 1; i < len(s.Points); i++ {
			d := math.Abs(s.Points[i].Y - s.Points[i-1].Y)
			if d > maxStep {
				maxStep = d
			}
			typStep += d
		}
		typStep /= float64(len(s.Points) - 1)
	}
	if maxStep < 3*typStep {
		t.Errorf("phi1,l=800 lacks threshold jumps: max step %g vs typical %g", maxStep, typStep)
	}
}

func TestAllAndByID(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Fatalf("All returned %d figures", len(all))
	}
	seen := map[string]bool{}
	for _, f := range all {
		if seen[f.ID] {
			t.Errorf("duplicate figure %s", f.ID)
		}
		seen[f.ID] = true
		if len(f.Series) == 0 {
			t.Errorf("%s has no series", f.ID)
		}
		tbl := f.Table()
		if !strings.Contains(tbl, f.Series[0].Name) {
			t.Errorf("%s table missing header", f.ID)
		}
	}
	for _, id := range []string{"fig2", "fig4", "fig4-strict", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id must fail")
	}
}

func TestSharesAreValidDistributions(t *testing.T) {
	// Every share series point lies in [0,1]; per figure and x, each rule's
	// shares sum to 1 or 0.
	for _, id := range []string{"fig4", "fig6", "fig7", "fig8"} {
		f := mustFig(t, id)
		byPrefix := map[string][]int{}
		for i, s := range f.Series {
			prefix := strings.TrimRight(s.Name, "123")
			byPrefix[prefix] = append(byPrefix[prefix], i)
		}
		for prefix, idxs := range byPrefix {
			if len(idxs) != 3 {
				continue
			}
			for pi := range f.Series[idxs[0]].Points {
				sum := 0.0
				for _, si := range idxs {
					y := f.Series[si].Points[pi].Y
					if y < -1e-9 || y > 1+1e-9 {
						t.Fatalf("%s %s: share %g outside [0,1]", f.ID, f.Series[si].Name, y)
					}
					sum += y
				}
				if math.Abs(sum-1) > 1e-6 && math.Abs(sum) > 1e-6 {
					t.Fatalf("%s %s at x=%g: shares sum to %g",
						f.ID, prefix, f.Series[idxs[0]].Points[pi].X, sum)
				}
			}
		}
	}
}

func TestFigMarketDivergence(t *testing.T) {
	f := mustFig(t, "fig-market")
	if len(f.Series) != 6 {
		t.Fatalf("fig-market has %d series", len(f.Series))
	}
	// At l = 0 both rules are capacity/consumption-proportional-ish; at
	// l = 500 the auction pays nothing to some facility the Shapley rule
	// values (or at least diverges substantially).
	div := func(x float64) float64 {
		d := 0.0
		for i := 1; i <= 3; i++ {
			phi := yAt(t, f, "phi"+string(rune('0'+i)), x)
			auc := yAt(t, f, "auction"+string(rune('0'+i)), x)
			d += math.Abs(phi - auc)
		}
		return d
	}
	if div(500) <= div(0) {
		t.Errorf("auction divergence should grow with l: %g at 0, %g at 500", div(0), div(500))
	}
	if _, err := ByID("fig-market"); err != nil {
		t.Error(err)
	}
}

// TestFig4SegmentAnchors checks every constant segment of the staircase
// against hand-computed Shapley values (three-player closed form on the
// segment's coalition-value table).
func TestFig4SegmentAnchors(t *testing.T) {
	f := mustFig(t, "fig4")
	segments := []struct {
		l    float64 // representative grid point inside the segment
		want [3]float64
	}{
		// l in [0, 100]: all coalitions feasible, additive -> proportional.
		{50, [3]float64{1.0 / 13, 4.0 / 13, 8.0 / 13}},
		// l in (100, 400]: V1 = 0; phi = (400, 2500, 4900)/6/1300.
		{200, [3]float64{400.0 / 7800, 2500.0 / 7800, 4900.0 / 7800}},
		// l in (400, 500]: V1 = V2 = 0.
		{450, [3]float64{800.0 / 7800, 1700.0 / 7800, 5300.0 / 7800}},
		// l in (500, 800]: V12 = 0 too.
		{600, [3]float64{300.0 / 7800, 1200.0 / 7800, 6300.0 / 7800}},
		// l in (800, 900]: V3 = 0 as well (only pairs with 3 + grand).
		{850, [3]float64{1100.0 / 7800, 2000.0 / 7800, 4700.0 / 7800}},
		// l in (900, 1200]: only {2,3} and the grand coalition work.
		{1000, [3]float64{200.0 / 7800, 3800.0 / 7800, 3800.0 / 7800}},
		// l in (1200, 1300]: grand only -> equal shares.
		{1250, [3]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}},
		// l > 1300: nothing feasible.
		{1350, [3]float64{0, 0, 0}},
	}
	for _, seg := range segments {
		for i := 0; i < 3; i++ {
			name := []string{"phi1", "phi2", "phi3"}[i]
			got := yAt(t, f, name, seg.l)
			if math.Abs(got-seg.want[i]) > 1e-9 {
				t.Errorf("segment l=%g: %s = %.6f, want %.6f", seg.l, name, got, seg.want[i])
			}
		}
	}
}
