package figures

import (
	"fmt"

	"fedshare/internal/scenario"
)

// The paper's evaluation as data: every figure of Sec. 4 is a declarative
// scenario.Spec. The specs pin exactly the parameters the legacy bespoke
// builders used (facility triple L = (100, 400, 800), per-figure capacity
// vectors and demand volumes, grid steps and rounding), so the generic
// executor reproduces the pre-refactor tables byte for byte — enforced by
// the golden tests in golden_test.go.

// Demand volumes the paper leaves implicit (documented in EXPERIMENTS.md).
const (
	// Fig6DemandK is the demand volume used for Figure 6 (the paper states
	// only "enough in number to fill the system's capacity"; saturation
	// occurs at m = 80 experiments).
	Fig6DemandK = 100
	// Fig7DemandK is the total demand for Figure 7, chosen so that total
	// demand roughly fills the grand coalition's 52 000 slot capacity
	// (40 experiments × up to 1300 locations).
	Fig7DemandK = 40
	// Fig9DemandK saturates the system for Figure 9 (demand exceeds
	// capacity at every swept L1).
	Fig9DemandK = 100
)

// paperFacilities is the L = (100, 400, 800) triple of Sec. 4.1 with the
// given per-location capacities.
func paperFacilities(caps [3]float64) []scenario.FacilitySpec {
	return []scenario.FacilitySpec{
		{Name: "F1", Locations: 100, Resources: caps[0]},
		{Name: "F2", Locations: 400, Resources: caps[1]},
		{Name: "F3", Locations: 800, Resources: caps[2]},
	}
}

// fig2Spec: the threshold-power utility for d ∈ {0.8, 1, 1.2} with l = 50
// over x ∈ [0, 300].
func fig2Spec() *scenario.Spec {
	return &scenario.Spec{
		ID:     "fig2",
		Title:  "Utility functions for l = 50",
		XLabel: "x",
		Notes:  "u(x) = x^d for x >= 50, 0 below the diversity threshold.",
		Kind:   scenario.KindUtility,
		Demand: []scenario.DemandSpec{
			{Name: "d=0.8", MinLocations: 50, Shape: 0.8},
			{Name: "d=1.0", MinLocations: 50, Shape: 1.0},
			{Name: "d=1.2", MinLocations: 50, Shape: 1.2},
		},
		Axis: scenario.AxisSpec{Variable: scenario.VarX, From: 0, To: 300, Step: 10},
	}
}

// fig4Spec: φ̂_i and π̂_i versus the diversity threshold l for
// L = (100, 400, 800), unit capacities, a single linear-utility experiment.
// strict selects the boundary convention (see EXPERIMENTS.md).
func fig4Spec(id string, strict bool) *scenario.Spec {
	return &scenario.Spec{
		ID:         id,
		Title:      "Profit shares with respect to l",
		XLabel:     "l",
		Notes:      "Staircase drops at l = 100, 400, 500, 800, 900, 1200; equal shares in (1200, 1300]; zero beyond 1300.",
		Facilities: paperFacilities([3]float64{1, 1, 1}),
		Demand: []scenario.DemandSpec{
			{Name: "single", Count: 1, Shape: 1, Strict: strict},
		},
		Policies: []string{"shapley", "proportional"},
		Axis:     scenario.AxisSpec{Variable: scenario.VarThreshold, From: 0, To: 1400, Step: 50},
	}
}

// fig5Spec: shares versus the utility shape d with the threshold fixed at
// l = 600.
func fig5Spec() *scenario.Spec {
	return &scenario.Spec{
		ID:         "fig5",
		Title:      "Profit shares with respect to d (l = 600)",
		XLabel:     "d",
		Notes:      "As d grows the game turns convex and φ̂ approaches π̂.",
		Facilities: paperFacilities([3]float64{1, 1, 1}),
		Demand: []scenario.DemandSpec{
			{Name: "single", Count: 1, MinLocations: 600, Shape: 1},
		},
		Policies: []string{"shapley", "proportional"},
		Axis:     scenario.AxisSpec{Variable: scenario.VarShape, From: 0.1, To: 2.5, Step: 0.1, Round: 1},
	}
}

// fig6Spec: shares versus l with capacity-aware facilities R = (80, 20, 10)
// so that all L_i·R_i are equal, demand filling capacity.
func fig6Spec() *scenario.Spec {
	return &scenario.Spec{
		ID:         "fig6",
		Title:      "Profit shares with respect to l, equal L_i*R_i",
		XLabel:     "l",
		Notes:      "K = 100 identical experiments (saturation at m = 80). Equal totals, very different Shapley shares once l > 0.",
		Facilities: paperFacilities([3]float64{80, 20, 10}),
		Demand: []scenario.DemandSpec{
			{Name: "batch", Count: Fig6DemandK, Shape: 1},
		},
		Policies: []string{"shapley", "proportional"},
		Axis:     scenario.AxisSpec{Variable: scenario.VarThreshold, From: 0, To: 1400, Step: 50},
	}
}

// fig7Spec: shares versus the mixture ratio σ between type-1 (l = 0) and
// type-2 (l = 700) experiments, R = (80, 50, 30).
func fig7Spec() *scenario.Spec {
	return &scenario.Spec{
		ID:         "fig7",
		Title:      "Profit shares with respect to the experiment mixture σ",
		XLabel:     "sigma",
		Notes:      "K = 40 experiments, fraction σ of type l=700. More diversity-hungry demand pushes φ̂ away from π̂.",
		Facilities: paperFacilities([3]float64{80, 50, 30}),
		Demand: []scenario.DemandSpec{
			{Name: "flexible", Count: Fig7DemandK, Shape: 1},
			{Name: "diversity-hungry", Count: 0, MinLocations: 700, Shape: 1},
		},
		Policies: []string{"shapley", "proportional"},
		Axis: scenario.AxisSpec{
			Variable: scenario.VarSigma, Target: "diversity-hungry",
			From: 0, To: 1, Step: 0.05, Round: 2,
		},
	}
}

// fig8Spec: shares versus demand volume K for l = 250 and R = (80, 60, 20),
// including the consumption-proportional ρ̂.
func fig8Spec() *scenario.Spec {
	return &scenario.Spec{
		ID:         "fig8",
		Title:      "Profit shares with respect to demand volume K (l = 250)",
		XLabel:     "K",
		Notes:      "π̂ is demand-independent; ρ̂ starts at the diversity profile L_i/ΣL and drifts toward capacity shares as locations saturate.",
		Facilities: paperFacilities([3]float64{80, 60, 20}),
		Demand: []scenario.DemandSpec{
			{Name: "batch", Count: 0, MinLocations: 250, Shape: 1},
		},
		Policies: []string{"shapley", "proportional", "consumption"},
		Axis:     scenario.AxisSpec{Variable: scenario.VarCount, Target: "batch", From: 0, To: 100, Step: 5},
	}
}

// fig9Spec: facility 1's absolute profit versus its own location count L1
// for thresholds l ∈ {0, 400, 800}, under Shapley and proportional sharing.
func fig9Spec() *scenario.Spec {
	variants := make([]scenario.VariantSpec, 0, 3)
	for _, l := range []float64{0, 400, 800} {
		variants = append(variants, scenario.VariantSpec{
			Name: nameL(l),
			Set:  []scenario.SetSpec{{Variable: scenario.VarThreshold, Value: l}},
		})
	}
	return &scenario.Spec{
		ID:         "fig9",
		Title:      "Profit of facility 1 with respect to L1",
		XLabel:     "L1",
		Notes:      "K = 100 experiments (demand exceeds capacity). Shapley profit jumps at coalition-feasibility thresholds; proportional grows smoothly.",
		Kind:       scenario.KindProfit,
		Facilities: paperFacilities([3]float64{80, 60, 20}),
		Demand: []scenario.DemandSpec{
			{Name: "batch", Count: Fig9DemandK, Shape: 1},
		},
		Policies: []string{"shapley", "proportional"},
		Axis:     scenario.AxisSpec{Variable: scenario.VarLocations, Target: "F1", From: 0, To: 1000, Step: 50},
		Track:    "F1",
		Variants: variants,
	}
}

// figApproxSpec (extension): the approximation tier at federation scale. A
// 100-facility federation declared from four facility templates sweeps the
// diversity threshold; shares come from the forced sampling estimator
// (symmetry-collapsed, seeded, CI-targeted) next to the proportional rule.
// Each template contributes one mean-share curve, so the figure reads like
// the paper's 3-facility share plots at 30× the federation size.
func figApproxSpec() *scenario.Spec {
	return &scenario.Spec{
		ID:     "fig-approx",
		Title:  "Profit shares of a 100-facility federation with respect to l (approximate Shapley, extension)",
		XLabel: "l",
		Notes:  "4 facility templates × {40,30,20,10} replicas; sampled Shapley with symmetry collapse, seed 42, adaptive to 1% CI. Curves are per-template mean shares.",
		Facilities: []scenario.FacilitySpec{
			{Name: "S", Locations: 20, Resources: 1, Count: 40},
			{Name: "M", Locations: 50, Resources: 1, Count: 30},
			{Name: "L", Locations: 100, Resources: 2, Count: 20},
			{Name: "XL", Locations: 200, Resources: 2, Count: 10},
		},
		Demand: []scenario.DemandSpec{
			{Name: "batch", Count: 100, Shape: 1},
		},
		Policies: []string{"shapley-approx", "proportional"},
		Axis:     scenario.AxisSpec{Variable: scenario.VarThreshold, Values: []float64{0, 1000, 2000, 3000}},
		Method:   scenario.MethodApprox,
		CITarget: 0.01,
		Seed:     42,
	}
}

// nameL renders a threshold variant label ("l=400").
func nameL(l float64) string {
	return "l=" + trimFloat(l)
}

// trimFloat formats an integral float without a decimal point.
func trimFloat(x float64) string {
	return fmt.Sprintf("%.0f", x)
}

// init registers the paper figure set (and the fig-market extension from
// market.go) with the scenario registry, in paper order. fedsim's -fig
// dispatch, -list output and usage text all derive from this registration.
func init() {
	scenario.MustRegister(scenario.Entry{ID: "fig2", Spec: fig2Spec()})
	scenario.MustRegister(scenario.Entry{ID: "fig4", Spec: fig4Spec("fig4", false)})
	scenario.MustRegister(scenario.Entry{
		ID:      "fig4-strict",
		Title:   "Profit shares with respect to l (strict threshold convention)",
		Spec:    fig4Spec("fig4-strict", true),
		Variant: true,
	})
	scenario.MustRegister(scenario.Entry{ID: "fig5", Spec: fig5Spec()})
	scenario.MustRegister(scenario.Entry{ID: "fig6", Spec: fig6Spec()})
	scenario.MustRegister(scenario.Entry{ID: "fig7", Spec: fig7Spec()})
	scenario.MustRegister(scenario.Entry{ID: "fig8", Spec: fig8Spec()})
	scenario.MustRegister(scenario.Entry{ID: "fig9", Spec: fig9Spec()})
	scenario.MustRegister(scenario.Entry{
		ID:        "fig-market",
		Title:     "Shapley vs combinatorial-auction shares with respect to l (extension)",
		Generate:  FigMarket,
		Extension: true,
	})
	scenario.MustRegister(scenario.Entry{
		ID:        "fig-approx",
		Spec:      figApproxSpec(),
		Extension: true,
	})
}
