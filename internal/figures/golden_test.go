package figures

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFiguresMatchPreRefactorGoldens is the refactor's regression gate:
// the declarative scenario engine must reproduce every paper figure's
// rendered table byte for byte against the output captured from the
// pre-refactor bespoke builders (testdata/*.golden).
func TestFiguresMatchPreRefactorGoldens(t *testing.T) {
	ids := []string{
		"fig2", "fig4", "fig4-strict", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig-market",
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			f, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			got := f.Table()
			if got != string(want) {
				t.Errorf("%s table diverged from pre-refactor golden\n got %d bytes:\n%s\nwant %d bytes:\n%s",
					id, len(got), clip(got), len(want), clip(string(want)))
			}
		})
	}
}

// clip bounds failure output to the first kilobyte.
func clip(s string) string {
	if len(s) > 1024 {
		return s[:1024] + "..."
	}
	return s
}
