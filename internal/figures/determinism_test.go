package figures

import (
	"testing"

	"fedshare/internal/allocation"
	"fedshare/internal/sweep"
)

// TestFiguresByteIdenticalAcrossWorkers is the pipeline's end-to-end
// determinism check: every figure's rendered table must be byte-identical
// whether the sweeps run sequentially or on a multi-worker pool, and
// whether the allocation memo is serving hits or disabled entirely.
func TestFiguresByteIdenticalAcrossWorkers(t *testing.T) {
	render := func() map[string]string {
		out := map[string]string{}
		figs, err := All()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range figs {
			out[f.ID] = f.Table()
		}
		return out
	}

	orig := sweep.SetDefaultWorkers(1)
	defer sweep.SetDefaultWorkers(orig)
	allocation.DefaultMemo.Reset()
	baseline := render()

	for _, workers := range []int{1, 4} {
		sweep.SetDefaultWorkers(workers)
		// First pass repopulates the memo, second pass is served from it.
		for pass := 0; pass < 2; pass++ {
			if pass == 0 {
				allocation.DefaultMemo.Reset()
			}
			got := render()
			for id, want := range baseline {
				if got[id] != want {
					t.Fatalf("figure %s diverged with workers=%d pass=%d", id, workers, pass)
				}
			}
		}
	}

	wasEnabled := allocation.DefaultMemo.SetEnabled(false)
	defer allocation.DefaultMemo.SetEnabled(wasEnabled)
	got := render()
	for id, want := range baseline {
		if got[id] != want {
			t.Fatalf("figure %s diverged with memo disabled", id)
		}
	}
}
