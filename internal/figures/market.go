package figures

import (
	"fmt"
	"math"

	"fedshare/internal/allocation"
	"fedshare/internal/core"
	"fedshare/internal/economics"
	"fedshare/internal/market"
	"fedshare/internal/stats"
)

// FigMarket is an extension figure (not in the paper, supporting its Sec. 5
// discussion): facility shares versus the diversity threshold l under the
// Shapley rule and under a Bellagio-style combinatorial auction. The
// auction's implicit consumption-based division diverges from the marginal-
// contribution division exactly where diversity binds. The auction side has
// no declarative spec — it is the registry's code-backed entry.
func FigMarket() (*Figure, error) {
	locs := []int{100, 400, 800}
	pool := allocation.Pool{}
	for i, l := range locs {
		pool.Classes = append(pool.Classes, allocation.Class{
			Label: fmt.Sprintf("F%d", i+1), Count: l, Capacity: 1,
		})
	}
	fig := &Figure{
		ID:     "fig-market",
		Title:  "Shapley vs combinatorial-auction shares with respect to l (extension)",
		XLabel: "l",
		Notes:  "Single experiment of threshold l bidding for its optimal full-spread package; auction revenue attributed by consumed slots (the diversity profile). Divergence from Shapley grows once l exceeds facility sizes.",
	}
	mkSeries := func(prefix string) []stats.Series {
		out := make([]stats.Series, 3)
		for i := range out {
			out[i] = stats.Series{Name: fmt.Sprintf("%s%d", prefix, i+1)}
		}
		return out
	}
	phi := mkSeries("phi")
	auc := mkSeries("auction")
	for l := 0.0; l <= 1300; l += 100 {
		m, err := marketModel(locs, l)
		if err != nil {
			return nil, err
		}
		phiS, err := core.ShapleyPolicy{}.Shares(m)
		if err != nil {
			return nil, fmt.Errorf("figures: fig-market shapley at l=%g: %w", l, err)
		}
		// The truthful bid under linear utility asks for the full location
		// set (its optimal package), not just the threshold.
		res, err := market.RunCombinatorial(pool, []market.Bid{
			market.NewBid("exp", pool.TotalLocations(), 1, 1),
		})
		if err != nil {
			return nil, fmt.Errorf("figures: fig-market auction at l=%g: %w", l, err)
		}
		aucS := market.Shares(res.RevenueByClass)
		for i := 0; i < 3; i++ {
			phi[i].Add(l, phiS[i])
			auc[i].Add(l, aucS[i])
		}
	}
	fig.Series = append(fig.Series, phi...)
	fig.Series = append(fig.Series, auc...)
	return fig, nil
}

// marketModel builds the Sec. 4.1 single-experiment model (unit capacities,
// linear utility with threshold l) used on the Shapley side of fig-market.
func marketModel(locs []int, l float64) (*core.Model, error) {
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "single", MinLocations: l, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("figures: fig-market workload: %w", err)
	}
	fs := make([]core.Facility, len(locs))
	for i, n := range locs {
		fs[i] = core.Facility{Name: fmt.Sprintf("F%d", i+1), Locations: n, Resources: 1}
	}
	m, err := core.NewModel(fs, wl)
	if err != nil {
		return nil, fmt.Errorf("figures: fig-market model: %w", err)
	}
	return m, nil
}
