// Package figures regenerates every figure of the paper's evaluation
// (Sec. 4). Each figure is a declarative scenario.Spec (specs.go)
// registered with the scenario registry and executed by the generic
// scenario engine; this package is the thin renderer layer on top.
// Parameter choices the paper leaves implicit (demand volume K for Figs 6,
// 7 and 9) are fixed in the specs and documented in EXPERIMENTS.md.
package figures

import (
	"fedshare/internal/scenario"
)

// Figure is one regenerated paper figure — an executed scenario.
type Figure = scenario.Result

// All runs every paper figure in paper order (excluding convention
// variants and extensions).
func All() ([]*Figure, error) {
	var out []*Figure
	for _, e := range scenario.Entries() {
		if e.Variant || e.Extension {
			continue
		}
		f, err := e.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Extensions runs the figures that go beyond the paper's evaluation.
func Extensions() ([]*Figure, error) {
	var out []*Figure
	for _, e := range scenario.Entries() {
		if !e.Extension {
			continue
		}
		f, err := e.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// ByID runs the figure with the given id ("fig2", "fig4", ...). Unknown
// ids fail with the registry's id listing.
func ByID(id string) (*Figure, error) {
	e, err := scenario.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run()
}
