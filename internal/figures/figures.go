// Package figures regenerates every figure of the paper's evaluation
// (Sec. 4): for each figure it produces the exact series the paper plots, as
// (x, y) data ready for the fedsim CLI, the benchmark harness, and
// EXPERIMENTS.md. Parameter choices the paper leaves implicit (demand volume
// K for Figs 6, 7 and 9) are fixed here and documented in EXPERIMENTS.md.
package figures

import (
	"fmt"
	"math"

	"fedshare/internal/core"
	"fedshare/internal/economics"
	"fedshare/internal/stats"
	"fedshare/internal/sweep"
)

// Figure is one regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []stats.Series
	Notes  string
}

// Table renders the figure's series as an aligned text table.
func (f *Figure) Table() string {
	return stats.Table(f.XLabel, f.Series)
}

// singleExperimentModel builds the Sec. 4.1 model: facilities with unit (or
// given) capacities and one experiment of threshold l and shape d.
func singleExperimentModel(locs []int, caps []float64, l, d float64, strict bool) *core.Model {
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "single", MinLocations: l, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: d, Strict: strict,
		},
		Count: 1,
	})
	if err != nil {
		panic(err)
	}
	m, err := core.NewModel(threeFacilities(locs, caps), wl)
	if err != nil {
		panic(err)
	}
	return m
}

// batchModel builds a model with K identical experiments.
func batchModel(locs []int, caps []float64, l float64, k int) *core.Model {
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "batch", MinLocations: l, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: k,
	})
	if err != nil {
		panic(err)
	}
	m, err := core.NewModel(threeFacilities(locs, caps), wl)
	if err != nil {
		panic(err)
	}
	return m
}

var facilityNames = [...]string{"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8"}

func threeFacilities(locs []int, caps []float64) []core.Facility {
	fs := make([]core.Facility, len(locs))
	for i := range locs {
		name := ""
		if i < len(facilityNames) {
			name = facilityNames[i]
		} else {
			name = fmt.Sprintf("F%d", i+1)
		}
		fs[i] = core.Facility{
			Name:      name,
			Locations: locs[i],
			Resources: caps[i],
		}
	}
	return fs
}

// mustShares evaluates a policy, panicking on failure (figure configurations
// are fixed and must always compute).
func mustShares(m *core.Model, p core.Policy) []float64 {
	s, err := p.Shares(m)
	if err != nil {
		panic(fmt.Sprintf("figures: %s policy failed: %v", p.Name(), err))
	}
	return s
}

// shareSweep runs a sweep building a model per x value and records φ̂ and π̂
// (and optionally ρ̂) per facility. The sweep points are independent — each
// owns a private Model and game cache — so they evaluate concurrently on
// the sweep worker pool (sweep.Run preserves deterministic point order, so
// the output series are byte-identical to a sequential run). Within a
// point, the batched coalition-lattice kernel solves the 2^n coalition
// allocations, each served from the aggregate-keyed allocation memo when
// its (pool, demand) signature already appeared — at another point, in a
// symmetric coalition, or in an earlier figure run.
func shareSweep(xs []float64, build func(x float64) *core.Model, withRho bool) []stats.Series {
	const n = 3
	mkSeries := func(symbol string) []stats.Series {
		out := make([]stats.Series, n)
		for i := range out {
			out[i] = stats.Series{Name: fmt.Sprintf("%s%d", symbol, i+1)}
		}
		return out
	}
	phi := mkSeries("phi")
	pi := mkSeries("pi")
	var rho []stats.Series
	if withRho {
		rho = mkSeries("rho")
	}
	type point struct {
		phi, pi, rho []float64
	}
	pts := sweep.Run(len(xs), 0, func(k int) point {
		m := build(xs[k])
		pt := point{
			phi: mustShares(m, core.ShapleyPolicy{}),
			pi:  mustShares(m, core.ProportionalPolicy{}),
		}
		if withRho {
			pt.rho = mustShares(m, core.ConsumptionPolicy{})
		}
		return pt
	})
	for k, x := range xs {
		for i := 0; i < n; i++ {
			phi[i].Add(x, pts[k].phi[i])
			pi[i].Add(x, pts[k].pi[i])
			if withRho {
				rho[i].Add(x, pts[k].rho[i])
			}
		}
	}
	out := append(phi, pi...)
	if withRho {
		out = append(out, rho...)
	}
	return out
}

// Fig2 reproduces Figure 2: the threshold-power utility for
// d ∈ {0.8, 1, 1.2} with l = 50 over x ∈ [0, 300].
func Fig2() *Figure {
	fig := &Figure{
		ID:     "fig2",
		Title:  "Utility functions for l = 50",
		XLabel: "x",
		Notes:  "u(x) = x^d for x >= 50, 0 below the diversity threshold.",
	}
	for _, d := range []float64{0.8, 1.0, 1.2} {
		u := economics.ThresholdPower{L: 50, D: d}
		s := stats.Series{Name: fmt.Sprintf("d=%.1f", d)}
		for x := 0.0; x <= 300; x += 10 {
			s.Add(x, u.Eval(x))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig4 reproduces Figure 4: φ̂_i and π̂_i versus the diversity threshold l
// for L = (100, 400, 800), unit capacities, a single linear-utility
// experiment. strict selects the boundary convention (see EXPERIMENTS.md).
func Fig4(strict bool) *Figure {
	var xs []float64
	for l := 0.0; l <= 1400; l += 50 {
		xs = append(xs, l)
	}
	fig := &Figure{
		ID:     "fig4",
		Title:  "Profit shares with respect to l",
		XLabel: "l",
		Notes:  "Staircase drops at l = 100, 400, 500, 800, 900, 1200; equal shares in (1200, 1300]; zero beyond 1300.",
		Series: shareSweep(xs, func(l float64) *core.Model {
			return singleExperimentModel([]int{100, 400, 800}, []float64{1, 1, 1}, l, 1, strict)
		}, false),
	}
	return fig
}

// Fig5 reproduces Figure 5: shares versus the utility shape d with the
// threshold fixed at l = 600.
func Fig5() *Figure {
	var xs []float64
	for d := 0.1; d <= 2.5+1e-9; d += 0.1 {
		xs = append(xs, math.Round(d*10)/10)
	}
	fig := &Figure{
		ID:     "fig5",
		Title:  "Profit shares with respect to d (l = 600)",
		XLabel: "d",
		Notes:  "As d grows the game turns convex and φ̂ approaches π̂.",
		Series: shareSweep(xs, func(d float64) *core.Model {
			return singleExperimentModel([]int{100, 400, 800}, []float64{1, 1, 1}, 600, d, false)
		}, false),
	}
	return fig
}

// Fig6DemandK is the demand volume used for Figure 6 (the paper states only
// "enough in number to fill the system's capacity"; saturation occurs at
// m = 80 experiments).
const Fig6DemandK = 100

// Fig6 reproduces Figure 6: shares versus l with capacity-aware facilities
// R = (80, 20, 10) so that all L_i·R_i are equal, demand filling capacity.
func Fig6() *Figure {
	var xs []float64
	for l := 0.0; l <= 1400; l += 50 {
		xs = append(xs, l)
	}
	fig := &Figure{
		ID:     "fig6",
		Title:  "Profit shares with respect to l, equal L_i*R_i",
		XLabel: "l",
		Notes:  fmt.Sprintf("K = %d identical experiments (saturation at m = 80). Equal totals, very different Shapley shares once l > 0.", Fig6DemandK),
		Series: shareSweep(xs, func(l float64) *core.Model {
			return batchModel([]int{100, 400, 800}, []float64{80, 20, 10}, l, Fig6DemandK)
		}, false),
	}
	return fig
}

// Fig7DemandK is the total demand for Figure 7, chosen so that total demand
// roughly fills the grand coalition's 52 000 slot capacity (40 experiments ×
// up to 1300 locations).
const Fig7DemandK = 40

// Fig7 reproduces Figure 7: shares versus the mixture ratio σ between
// type-1 (l = 0) and type-2 (l = 700) experiments, R = (80, 50, 30).
func Fig7() *Figure {
	typeA := economics.ExperimentType{
		Name: "flexible", MaxLocations: math.Inf(1),
		Resources: 1, HoldingTime: 1, Shape: 1,
	}
	typeB := economics.ExperimentType{
		Name: "diversity-hungry", MinLocations: 700, MaxLocations: math.Inf(1),
		Resources: 1, HoldingTime: 1, Shape: 1,
	}
	var xs []float64
	for s := 0.0; s <= 1+1e-9; s += 0.05 {
		xs = append(xs, math.Round(s*100)/100)
	}
	fig := &Figure{
		ID:     "fig7",
		Title:  "Profit shares with respect to the experiment mixture σ",
		XLabel: "sigma",
		Notes:  fmt.Sprintf("K = %d experiments, fraction σ of type l=700. More diversity-hungry demand pushes φ̂ away from π̂.", Fig7DemandK),
		Series: shareSweep(xs, func(sigma float64) *core.Model {
			wl, err := economics.Mixture(typeA, typeB, Fig7DemandK, sigma)
			if err != nil {
				panic(err)
			}
			m, err := core.NewModel(threeFacilities([]int{100, 400, 800}, []float64{80, 50, 30}), wl)
			if err != nil {
				panic(err)
			}
			return m
		}, false),
	}
	return fig
}

// Fig8 reproduces Figure 8: shares versus demand volume K for l = 250 and
// R = (80, 60, 20), including the consumption-proportional ρ̂.
func Fig8() *Figure {
	var xs []float64
	for k := 0.0; k <= 100; k += 5 {
		xs = append(xs, k)
	}
	fig := &Figure{
		ID:     "fig8",
		Title:  "Profit shares with respect to demand volume K (l = 250)",
		XLabel: "K",
		Notes:  "π̂ is demand-independent; ρ̂ starts at the diversity profile L_i/ΣL and drifts toward capacity shares as locations saturate.",
		Series: shareSweep(xs, func(k float64) *core.Model {
			return batchModel([]int{100, 400, 800}, []float64{80, 60, 20}, 250, int(k))
		}, true),
	}
	return fig
}

// Fig9DemandK saturates the system for Figure 9 (demand exceeds capacity at
// every swept L1).
const Fig9DemandK = 100

// Fig9 reproduces Figure 9: facility 1's absolute profit versus its own
// location count L1 for thresholds l ∈ {0, 400, 800}, under Shapley and
// proportional sharing.
func Fig9() *Figure {
	var locGrid []int
	var xs []float64
	for L := 0; L <= 1000; L += 50 {
		locGrid = append(locGrid, L)
		xs = append(xs, float64(L))
	}
	_ = xs
	fig := &Figure{
		ID:     "fig9",
		Title:  "Profit of facility 1 with respect to L1",
		XLabel: "L1",
		Notes:  fmt.Sprintf("K = %d experiments (demand exceeds capacity). Shapley profit jumps at coalition-feasibility thresholds; proportional grows smoothly.", Fig9DemandK),
	}
	for _, l := range []float64{0, 400, 800} {
		m := batchModel([]int{100, 400, 800}, []float64{80, 60, 20}, l, Fig9DemandK)
		shap, err := core.IncentiveCurve(m, 0, locGrid, core.ShapleyPolicy{})
		if err != nil {
			panic(err)
		}
		shap.Name = fmt.Sprintf("phi1,l=%.0f", l)
		prop, err := core.IncentiveCurve(m, 0, locGrid, core.ProportionalPolicy{})
		if err != nil {
			panic(err)
		}
		prop.Name = fmt.Sprintf("pi1,l=%.0f", l)
		fig.Series = append(fig.Series, shap, prop)
	}
	return fig
}

// All returns every reproduced figure in paper order. Fig 4 uses the
// non-strict threshold convention of equation (1).
func All() []*Figure {
	return []*Figure{Fig2(), Fig4(false), Fig5(), Fig6(), Fig7(), Fig8(), Fig9()}
}

// Extensions returns the figures that go beyond the paper's evaluation.
func Extensions() []*Figure {
	return []*Figure{FigMarket()}
}

// ByID returns the figure with the given id ("fig2", "fig4", ...).
func ByID(id string) (*Figure, error) {
	switch id {
	case "fig2":
		return Fig2(), nil
	case "fig4":
		return Fig4(false), nil
	case "fig4-strict":
		return Fig4(true), nil
	case "fig5":
		return Fig5(), nil
	case "fig6":
		return Fig6(), nil
	case "fig7":
		return Fig7(), nil
	case "fig8":
		return Fig8(), nil
	case "fig9":
		return Fig9(), nil
	case "fig-market":
		return FigMarket(), nil
	}
	return nil, fmt.Errorf("figures: unknown figure %q (have fig2, fig4, fig4-strict, fig5, fig6, fig7, fig8, fig9, fig-market)", id)
}
