package faultnet

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"
)

// echoListener accepts connections and echoes one byte back per byte read,
// so tests can prove a link actually carries traffic.
func echoListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					if _, err := c.Write(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln
}

func TestPartitionCutSeversAndRefusesDials(t *testing.T) {
	ln := echoListener(t)
	p := NewPartition()

	conn, err := p.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{42}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != nil || buf[0] != 42 {
		t.Fatalf("echo before cut: %v %v", buf, err)
	}

	p.Cut()
	if !p.Severed() {
		t.Fatal("Severed() = false after Cut")
	}
	// The live connection is dead: the write or the following read fails.
	_, werr := conn.Write([]byte{1})
	var rerr error
	if werr == nil {
		_, rerr = conn.Read(buf)
	}
	if werr == nil && rerr == nil {
		t.Fatal("severed connection still carries traffic")
	}
	// New dials are refused with an injected-fault error.
	if _, err := p.Dial(ln.Addr().String(), time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial during cut: err = %v, want ErrInjected", err)
	}

	p.Heal()
	if p.Severed() {
		t.Fatal("Severed() = true after Heal")
	}
	conn2, err := p.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte{7}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Read(buf); err != nil || buf[0] != 7 {
		t.Fatalf("echo after heal: %v %v", buf, err)
	}

	events := p.Events()
	want := []string{"cut1:severed=1", "cut1:dial-refused", "cut1:healed"}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("events = %v, want %v", events, want)
	}
}

func TestPartitionCutHealIdempotent(t *testing.T) {
	p := NewPartition()
	p.Heal() // healing a healed gate is a no-op
	p.Cut()
	p.Cut() // cutting a cut gate is a no-op
	p.Heal()
	p.Cut()
	p.Heal()
	want := []string{"cut1:severed=0", "cut1:healed", "cut2:severed=0", "cut2:healed"}
	if got := p.Events(); !reflect.DeepEqual(got, want) {
		t.Errorf("events = %v, want %v", got, want)
	}
}

func TestPartitionPlanDeterministicForSeed(t *testing.T) {
	cfg := PartitionPlanConfig{Windows: 6, PWipe: 0.4}
	a := DrawPartitionPlan(99, cfg)
	b := DrawPartitionPlan(99, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different plans:\n%v\n%v", a, b)
	}
	c := DrawPartitionPlan(100, cfg)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds drew identical plans (suspicious)")
	}
	for i, w := range a {
		if w.UpOps < 2 || w.UpOps > 5 {
			t.Errorf("window %d UpOps = %d outside default [2,5]", i, w.UpOps)
		}
		if w.DownOps < 1 || w.DownOps > 3 {
			t.Errorf("window %d DownOps = %d outside default [1,3]", i, w.DownOps)
		}
	}
}
