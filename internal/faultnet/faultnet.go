// Package faultnet is a deterministic network-fault-injection harness for
// the federation plane's chaos tests. It wraps net.Conn (and optionally
// net.Listener) so that connection drops, latency spikes, partial writes,
// frame-header corruption, and lost responses are injected from a seeded
// deterministic RNG (internal/stats) instead of real network weather.
//
// Determinism is the whole point: every connection's complete fault plan is
// drawn up-front at wrap time, keyed to *write-operation indices* — the SFA
// client issues exactly one buffered write per request — so the injected
// fault sequence depends only on the seed and the number of requests sent,
// never on goroutine scheduling, TCP segmentation, or timing. Running the
// same workload twice with the same seed injects byte-identical fault
// schedules.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fedshare/internal/stats"
)

// Kind enumerates the injectable faults. All faults are keyed to a write
// operation, which for length-prefixed request/response protocols makes
// the plan deterministic (one write per request).
type Kind int

const (
	// KindNone leaves the write untouched.
	KindNone Kind = iota
	// KindDrop closes the connection instead of writing: the request
	// never reaches the peer.
	KindDrop
	// KindPartialWrite writes only half the bytes, then closes: the peer
	// sees a truncated frame.
	KindPartialWrite
	// KindCorrupt flips the top bit of the first byte (the frame-length
	// header), so the peer reads an oversized length and rejects the
	// frame. The write itself "succeeds" — silent corruption.
	KindCorrupt
	// KindDropResponse performs the full write, then closes the
	// connection: the peer receives and executes the request but the
	// response is lost. This is the case idempotency keys exist for.
	KindDropResponse
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindDrop:
		return "drop"
	case KindPartialWrite:
		return "partial-write"
	case KindCorrupt:
		return "corrupt"
	case KindDropResponse:
		return "drop-response"
	}
	return "unknown"
}

// ErrInjected marks every error produced by an injected fault.
var ErrInjected = errors.New("faultnet: injected fault")

// Config sets per-write fault probabilities. Probabilities are evaluated
// independently per write op in plan order; at most one fault fires per
// write (first match in the order Drop, PartialWrite, Corrupt,
// DropResponse wins). Latency is drawn separately and can coincide with a
// fault.
type Config struct {
	// Seed feeds the plan RNG. Two wrappers with equal Config produce
	// identical plans.
	Seed uint64
	// PDrop, PPartial, PCorrupt, PDropResponse are per-write-op fault
	// probabilities in [0, 1].
	PDrop         float64
	PPartial      float64
	PCorrupt      float64
	PDropResponse float64
	// PLatency injects a pre-write delay drawn uniformly in
	// (0, MaxLatency] with this probability.
	PLatency   float64
	MaxLatency time.Duration
	// PlannedWrites is how many write ops each connection's plan covers
	// (default 128). Writes beyond the plan are clean.
	PlannedWrites int
}

func (c Config) plannedWrites() int {
	if c.PlannedWrites <= 0 {
		return 128
	}
	return c.PlannedWrites
}

// planStep is the pre-drawn fate of one write op.
type planStep struct {
	kind  Kind
	delay time.Duration
}

// drawPlan rolls the complete fault plan for one connection from rng. All
// randomness is consumed here, at connection setup, in a fixed order.
func drawPlan(cfg Config, rng *stats.Rand) []planStep {
	plan := make([]planStep, cfg.plannedWrites())
	for i := range plan {
		if cfg.PLatency > 0 && cfg.MaxLatency > 0 && rng.Float64() < cfg.PLatency {
			plan[i].delay = time.Duration(1 + rng.Float64()*float64(cfg.MaxLatency-1))
		}
		r := rng.Float64()
		switch {
		case r < cfg.PDrop:
			plan[i].kind = KindDrop
		case r < cfg.PDrop+cfg.PPartial:
			plan[i].kind = KindPartialWrite
		case r < cfg.PDrop+cfg.PPartial+cfg.PCorrupt:
			plan[i].kind = KindCorrupt
		case r < cfg.PDrop+cfg.PPartial+cfg.PCorrupt+cfg.PDropResponse:
			plan[i].kind = KindDropResponse
		default:
			plan[i].kind = KindNone
		}
	}
	return plan
}

// Conn wraps a net.Conn with a pre-drawn fault plan. Reads pass through
// untouched; faults fire on writes per the plan.
type Conn struct {
	net.Conn
	plan   []planStep
	record func(event string)

	mu       sync.Mutex
	writeIdx int
}

// WrapConn wraps inner with the fault plan drawn from rng (which is
// consumed immediately; subsequent use by the caller is safe). record, if
// non-nil, receives one line per triggered fault.
func WrapConn(inner net.Conn, cfg Config, rng *stats.Rand, record func(string)) *Conn {
	return &Conn{Conn: inner, plan: drawPlan(cfg, rng), record: record}
}

func (c *Conn) event(idx int, what string) {
	if c.record != nil {
		c.record(fmt.Sprintf("write%d:%s", idx, what))
	}
}

// Write applies the planned fault for this write index.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	idx := c.writeIdx
	c.writeIdx++
	var st planStep
	if idx < len(c.plan) {
		st = c.plan[idx]
	}
	c.mu.Unlock()
	if st.delay > 0 {
		c.event(idx, fmt.Sprintf("latency=%s", st.delay.Round(time.Microsecond)))
		time.Sleep(st.delay)
	}
	switch st.kind {
	case KindDrop:
		c.event(idx, "drop")
		_ = c.Conn.Close()
		return 0, fmt.Errorf("%w: dropped write %d", ErrInjected, idx)
	case KindPartialWrite:
		c.event(idx, "partial-write")
		n := len(b) / 2
		written, _ := c.Conn.Write(b[:n])
		_ = c.Conn.Close()
		return written, fmt.Errorf("%w: partial write %d (%d of %d bytes)", ErrInjected, idx, written, len(b))
	case KindCorrupt:
		c.event(idx, "corrupt")
		cp := make([]byte, len(b))
		copy(cp, b)
		cp[0] ^= 0x80 // explode the length prefix; the peer rejects the frame
		return c.Conn.Write(cp)
	case KindDropResponse:
		c.event(idx, "drop-response")
		n, err := c.Conn.Write(b)
		if err == nil {
			// Give the peer a moment to read the request off the socket
			// before the close can discard it, so "request executed,
			// response lost" is the overwhelmingly likely outcome.
			time.Sleep(2 * time.Millisecond)
			_ = c.Conn.Close()
		}
		return n, err
	default:
		return c.Conn.Write(b)
	}
}

// Dialer produces fault-injected client connections with per-connection
// plans derived deterministically from the seed and a connection counter.
// A Dialer is intended for one logical client dialing serially (the SFA
// client redials only after the previous connection broke), which keeps
// connection indices — and therefore plans — reproducible.
type Dialer struct {
	cfg Config

	mu      sync.Mutex
	connIdx int
	events  []string
}

// NewDialer returns a Dialer for cfg.
func NewDialer(cfg Config) *Dialer {
	return &Dialer{cfg: cfg}
}

// Dial connects and wraps the connection; its signature matches
// sfa.ClientConfig.DialFunc.
func (d *Dialer) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	inner, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	idx := d.connIdx
	d.connIdx++
	d.mu.Unlock()
	rng := stats.NewRand(d.cfg.Seed ^ (0x9E3779B97F4A7C15 * uint64(idx+1)))
	prefix := fmt.Sprintf("conn%d.", idx)
	return WrapConn(inner, d.cfg, rng, func(ev string) {
		d.mu.Lock()
		d.events = append(d.events, prefix+ev)
		d.mu.Unlock()
	}), nil
}

// Events returns the triggered-fault log so far. For a serially-used
// Dialer the log is deterministic in the seed.
func (d *Dialer) Events() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.events...)
}

// Listener wraps Accept so server-side connections are fault-injected,
// with per-connection plans keyed to the accept index. Accept order is
// deterministic only for serial workloads; concurrent clients should
// inject on the client side via Dialer instead.
type Listener struct {
	net.Listener
	cfg Config

	mu      sync.Mutex
	connIdx int
}

// Listen wraps an inner listener.
func Listen(inner net.Listener, cfg Config) *Listener {
	return &Listener{Listener: inner, cfg: cfg}
}

// Accept wraps the next connection with its own deterministic plan.
func (l *Listener) Accept() (net.Conn, error) {
	inner, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	idx := l.connIdx
	l.connIdx++
	l.mu.Unlock()
	rng := stats.NewRand(l.cfg.Seed ^ (0x9E3779B97F4A7C15 * uint64(idx+1)))
	return WrapConn(inner, l.cfg, rng, nil), nil
}
