package faultnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"fedshare/internal/stats"
)

// Partition is an explicit network-partition gate for one logical link.
// Unlike the probabilistic write-op faults, a partition is a *stateful*
// condition: while cut, every tracked connection is severed and every new
// dial is refused, so the far side is unreachable for as long as the test
// wants — exactly the failure mode peer health tracking and anti-entropy
// reconciliation exist for. Cut and Heal are driven by the test (typically
// from a seeded schedule drawn with DrawPartitionPlan), which keeps chaos
// runs reproducible: the same seed cuts at the same operation counts.
type Partition struct {
	mu     sync.Mutex
	cut    bool
	cuts   int
	conns  map[*gateConn]struct{}
	events []string
}

// NewPartition returns a healed (connected) gate.
func NewPartition() *Partition {
	return &Partition{conns: map[*gateConn]struct{}{}}
}

// Dial connects through the gate; its signature matches
// sfa.ClientConfig.DialFunc. While the partition is cut, dials are refused
// with an error wrapping ErrInjected — a transport failure to the caller.
func (p *Partition) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	p.mu.Lock()
	if p.cut {
		p.events = append(p.events, fmt.Sprintf("cut%d:dial-refused", p.cuts))
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: dial %s refused: link partitioned", ErrInjected, addr)
	}
	p.mu.Unlock()
	inner, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	gc := &gateConn{Conn: inner, p: p}
	p.mu.Lock()
	if p.cut {
		// Cut raced the dial; the link must not leak through.
		p.events = append(p.events, fmt.Sprintf("cut%d:dial-refused", p.cuts))
		p.mu.Unlock()
		_ = inner.Close()
		return nil, fmt.Errorf("%w: dial %s refused: link partitioned", ErrInjected, addr)
	}
	p.conns[gc] = struct{}{}
	p.mu.Unlock()
	return gc, nil
}

// Cut severs the link: every tracked connection is closed and subsequent
// dials are refused until Heal. Idempotent.
func (p *Partition) Cut() {
	p.mu.Lock()
	if p.cut {
		p.mu.Unlock()
		return
	}
	p.cut = true
	p.cuts++
	conns := make([]*gateConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.conns = map[*gateConn]struct{}{}
	p.events = append(p.events, fmt.Sprintf("cut%d:severed=%d", p.cuts, len(conns)))
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Conn.Close()
	}
}

// Heal reconnects the link: new dials succeed again. Idempotent.
func (p *Partition) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.cut {
		return
	}
	p.cut = false
	p.events = append(p.events, fmt.Sprintf("cut%d:healed", p.cuts))
}

// Severed reports whether the link is currently cut.
func (p *Partition) Severed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cut
}

// Events returns the gate's event log. For a serially-driven link the log
// is deterministic in the driving schedule.
func (p *Partition) Events() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.events...)
}

// gateConn is a tracked connection; Close untracks it so Cut only severs
// live connections.
type gateConn struct {
	net.Conn
	p *Partition
}

func (c *gateConn) Close() error {
	c.p.mu.Lock()
	delete(c.p.conns, c)
	c.p.mu.Unlock()
	return c.Conn.Close()
}

// PartitionWindow is one cut/heal cycle of a seeded partition schedule:
// the link stays up for UpOps operations, is cut for DownOps operations,
// then heals. Wipe marks windows where the partitioned peer additionally
// loses its volatile state (a crash-restart rather than a pure network
// split), exercising the reconciler's lost-intent path.
type PartitionWindow struct {
	UpOps   int
	DownOps int
	Wipe    bool
}

// PartitionPlanConfig bounds the seeded schedule. Zero fields default to
// Windows 3, UpOps in [2, 5], DownOps in [1, 3], PWipe 0.
type PartitionPlanConfig struct {
	Windows    int
	MinUpOps   int
	MaxUpOps   int
	MinDownOps int
	MaxDownOps int
	// PWipe is the per-window probability the peer is wiped while cut.
	PWipe float64
}

func (c PartitionPlanConfig) withDefaults() PartitionPlanConfig {
	if c.Windows <= 0 {
		c.Windows = 3
	}
	if c.MinUpOps <= 0 {
		c.MinUpOps = 2
	}
	if c.MaxUpOps < c.MinUpOps {
		c.MaxUpOps = c.MinUpOps + 3
	}
	if c.MinDownOps <= 0 {
		c.MinDownOps = 1
	}
	if c.MaxDownOps < c.MinDownOps {
		c.MaxDownOps = c.MinDownOps + 2
	}
	return c
}

// DrawPartitionPlan draws a complete partition schedule from the seed. All
// randomness is consumed here, up front and in a fixed order, so the same
// (seed, cfg) pair always yields the identical schedule — the partition
// analogue of drawPlan.
func DrawPartitionPlan(seed uint64, cfg PartitionPlanConfig) []PartitionWindow {
	cfg = cfg.withDefaults()
	rng := stats.NewRand(seed)
	plan := make([]PartitionWindow, cfg.Windows)
	for i := range plan {
		plan[i].UpOps = cfg.MinUpOps + rng.Intn(cfg.MaxUpOps-cfg.MinUpOps+1)
		plan[i].DownOps = cfg.MinDownOps + rng.Intn(cfg.MaxDownOps-cfg.MinDownOps+1)
		if cfg.PWipe > 0 && rng.Float64() < cfg.PWipe {
			plan[i].Wipe = true
		}
	}
	return plan
}
