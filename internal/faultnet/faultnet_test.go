package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"fedshare/internal/stats"
)

// pipeConns returns both ends of an in-memory connection.
func pipeConns() (net.Conn, net.Conn) {
	return net.Pipe()
}

func TestPlanDeterministicForSeed(t *testing.T) {
	cfg := Config{
		Seed: 42, PDrop: 0.1, PPartial: 0.1, PCorrupt: 0.1, PDropResponse: 0.1,
		PLatency: 0.2, MaxLatency: time.Millisecond, PlannedWrites: 64,
	}
	a := drawPlan(cfg, stats.NewRand(cfg.Seed))
	b := drawPlan(cfg, stats.NewRand(cfg.Seed))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan diverges at step %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed gives a different plan (overwhelmingly likely for
	// 64 steps at these rates).
	c := drawPlan(cfg, stats.NewRand(cfg.Seed+1))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical plans")
	}
}

// forcedConn wraps one end of a pipe with a single-step plan.
func forcedConn(t *testing.T, kind Kind) (client *Conn, server net.Conn, events *[]string) {
	t.Helper()
	a, b := pipeConns()
	evs := &[]string{}
	c := &Conn{Conn: a, plan: []planStep{{kind: kind}}, record: func(ev string) { *evs = append(*evs, ev) }}
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return c, b, evs
}

func TestDropClosesWithoutWriting(t *testing.T) {
	c, srv, evs := forcedConn(t, KindDrop)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("hello"))
		errc <- err
	}()
	if err := <-errc; !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	_ = srv.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := srv.Read(make([]byte, 8)); err != io.EOF {
		t.Errorf("server read = %v, want EOF (nothing written)", err)
	}
	if len(*evs) != 1 || !strings.Contains((*evs)[0], "drop") {
		t.Errorf("events = %v", *evs)
	}
}

func TestPartialWriteTruncates(t *testing.T) {
	c, srv, _ := forcedConn(t, KindPartialWrite)
	payload := []byte("0123456789")
	go func() { _, _ = c.Write(payload) }()
	buf := make([]byte, 16)
	_ = srv.SetReadDeadline(time.Now().Add(time.Second))
	n, _ := srv.Read(buf)
	if n != len(payload)/2 || !bytes.Equal(buf[:n], payload[:n]) {
		t.Errorf("server saw %q, want first half of %q", buf[:n], payload)
	}
	// The rest never arrives: the conn is closed.
	if _, err := srv.Read(buf); err != io.EOF {
		t.Errorf("read after partial = %v, want EOF", err)
	}
}

func TestCorruptFlipsLengthHeader(t *testing.T) {
	c, srv, _ := forcedConn(t, KindCorrupt)
	payload := []byte{0x00, 0x00, 0x00, 0x05, 'h', 'e', 'l', 'l', 'o'}
	go func() {
		if _, err := c.Write(payload); err != nil {
			t.Errorf("corrupt write should report success: %v", err)
		}
	}()
	buf := make([]byte, 16)
	_ = srv.SetReadDeadline(time.Now().Add(time.Second))
	n, err := srv.Read(buf)
	if err != nil || n != len(payload) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if buf[0] != 0x80 {
		t.Errorf("first byte = %#x, want 0x80 (top bit flipped)", buf[0])
	}
	if !bytes.Equal(buf[1:n], payload[1:]) {
		t.Errorf("rest of frame corrupted too: %q", buf[:n])
	}
}

func TestDropResponseDeliversThenCloses(t *testing.T) {
	c, srv, _ := forcedConn(t, KindDropResponse)
	payload := []byte("request")
	go func() {
		if _, err := c.Write(payload); err != nil {
			t.Errorf("drop-response write should succeed: %v", err)
		}
	}()
	buf := make([]byte, 16)
	_ = srv.SetReadDeadline(time.Now().Add(time.Second))
	n, err := srv.Read(buf)
	if err != nil || !bytes.Equal(buf[:n], payload) {
		t.Fatalf("server read = %q, %v", buf[:n], err)
	}
	// The client end is now closed: its reads fail, so the "response" is
	// lost from the client's point of view.
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Error("client read after drop-response should fail")
	}
}

func TestDialerEventLogDeterministic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 64)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	run := func() []string {
		d := NewDialer(Config{Seed: 7, PDrop: 0.3, PlannedWrites: 16})
		for conn := 0; conn < 3; conn++ {
			c, err := d.Dial(ln.Addr().String(), time.Second)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				if _, err := c.Write([]byte("x")); err != nil {
					break // conn dropped; next conn
				}
			}
			_ = c.Close()
		}
		return d.Events()
	}
	a, b := run(), run()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("event logs differ:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Error("expected at least one injected fault at PDrop=0.3 over 24 writes")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Listen(inner, Config{Seed: 3, PDrop: 1, PlannedWrites: 4})
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, werr := conn.Write([]byte("hi"))
		done <- werr
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := <-done; !errors.Is(err, ErrInjected) {
		t.Errorf("server-side write err = %v, want ErrInjected (PDrop=1)", err)
	}
	_ = client.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := client.Read(make([]byte, 4)); err == nil {
		t.Error("client should see the dropped connection")
	}
}
