// Package rspec implements a GENI/SFA-style XML resource specification
// ("RSpec") for advertising testbed resources between federated
// authorities. The sfa package's JSON wire format carries compact records;
// RSpec is the interchange format operators archive and diff, and the
// format external tools expect (cf. the Slice-based Federation Architecture
// draft [19] the paper builds on).
package rspec

import (
	"encoding/xml"
	"fmt"
	"io"
)

// Advertisement is the root element of an advertisement RSpec.
type Advertisement struct {
	XMLName   xml.Name `xml:"rspec"`
	Type      string   `xml:"type,attr"`      // always "advertisement"
	Authority string   `xml:"authority,attr"` // issuing authority
	Sites     []Site   `xml:"site"`
}

// Site is one location: an institution contributing nodes.
type Site struct {
	ID    string `xml:"id,attr"`
	Name  string `xml:"name,attr,omitempty"`
	Nodes []Node `xml:"node"`
}

// Node is one server at a site.
type Node struct {
	ID       string `xml:"id,attr"`
	HostName string `xml:"hostname,attr,omitempty"`
	// Capacity is the number of concurrent slivers the node supports.
	Capacity int `xml:"capacity,attr"`
	// Free is the currently unreserved sliver count (advertisements may
	// omit it; -1 means unknown).
	Free int `xml:"free,attr"`
}

// New builds an empty advertisement for an authority.
func New(authority string) *Advertisement {
	return &Advertisement{Type: "advertisement", Authority: authority}
}

// Validate checks structural invariants.
func (a *Advertisement) Validate() error {
	if a.Type != "advertisement" {
		return fmt.Errorf("rspec: type %q, want advertisement", a.Type)
	}
	if a.Authority == "" {
		return fmt.Errorf("rspec: missing authority")
	}
	seenSite := map[string]bool{}
	for _, s := range a.Sites {
		if s.ID == "" {
			return fmt.Errorf("rspec: site without id")
		}
		if seenSite[s.ID] {
			return fmt.Errorf("rspec: duplicate site %s", s.ID)
		}
		seenSite[s.ID] = true
		seenNode := map[string]bool{}
		for _, n := range s.Nodes {
			if n.ID == "" {
				return fmt.Errorf("rspec: site %s has a node without id", s.ID)
			}
			if seenNode[n.ID] {
				return fmt.Errorf("rspec: site %s has duplicate node %s", s.ID, n.ID)
			}
			seenNode[n.ID] = true
			if n.Capacity < 0 {
				return fmt.Errorf("rspec: node %s/%s has negative capacity", s.ID, n.ID)
			}
			if n.Free < -1 || n.Free > n.Capacity {
				return fmt.Errorf("rspec: node %s/%s free %d outside [-1, %d]", s.ID, n.ID, n.Free, n.Capacity)
			}
		}
	}
	return nil
}

// TotalCapacity sums node capacities across all sites.
func (a *Advertisement) TotalCapacity() int {
	t := 0
	for _, s := range a.Sites {
		for _, n := range s.Nodes {
			t += n.Capacity
		}
	}
	return t
}

// Encode writes the advertisement as indented XML with the standard header.
func (a *Advertisement) Encode(w io.Writer) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("rspec: encode: %w", err)
	}
	if err := enc.Close(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Decode parses and validates an advertisement RSpec.
func Decode(r io.Reader) (*Advertisement, error) {
	var a Advertisement
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("rspec: decode: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// Diff reports the site-level differences between two advertisements of the
// same authority: sites added, removed, and those whose capacity changed.
// It is the operator's tool for auditing what a peer's advertisement update
// actually changed.
type Diff struct {
	Added, Removed []string
	// CapacityChanged maps site id -> (old, new) total capacity.
	CapacityChanged map[string][2]int
}

// Compare computes old -> new differences.
func Compare(oldAd, newAd *Advertisement) *Diff {
	d := &Diff{CapacityChanged: map[string][2]int{}}
	oldCap := map[string]int{}
	for _, s := range oldAd.Sites {
		c := 0
		for _, n := range s.Nodes {
			c += n.Capacity
		}
		oldCap[s.ID] = c
	}
	newSeen := map[string]bool{}
	for _, s := range newAd.Sites {
		c := 0
		for _, n := range s.Nodes {
			c += n.Capacity
		}
		newSeen[s.ID] = true
		old, ok := oldCap[s.ID]
		switch {
		case !ok:
			d.Added = append(d.Added, s.ID)
		case old != c:
			d.CapacityChanged[s.ID] = [2]int{old, c}
		}
	}
	for _, s := range oldAd.Sites {
		if !newSeen[s.ID] {
			d.Removed = append(d.Removed, s.ID)
		}
	}
	return d
}

// Empty reports whether the diff contains no changes.
func (d *Diff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.CapacityChanged) == 0
}
