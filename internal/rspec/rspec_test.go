package rspec

import (
	"bytes"
	"strings"
	"testing"

	"fedshare/internal/planetlab"
	"fedshare/internal/sfa"
)

func sampleAd() *Advertisement {
	ad := New("PLE")
	ad.Sites = []Site{
		{ID: "ple-site0", Name: "UPMC", Nodes: []Node{
			{ID: "node0", HostName: "n0.upmc.example", Capacity: 10, Free: 10},
			{ID: "node1", HostName: "n1.upmc.example", Capacity: 10, Free: 4},
		}},
		{ID: "ple-site1", Name: "INRIA", Nodes: []Node{
			{ID: "node0", Capacity: 5, Free: 5},
		}},
	}
	return ad
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ad := sampleAd()
	var buf bytes.Buffer
	if err := ad.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `<?xml`) || !strings.Contains(out, `authority="PLE"`) {
		t.Errorf("unexpected XML: %s", out)
	}
	back, err := Decode(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if back.Authority != "PLE" || len(back.Sites) != 2 {
		t.Errorf("round trip lost structure: %+v", back)
	}
	if back.Sites[0].Nodes[1].Free != 4 {
		t.Errorf("free count lost: %+v", back.Sites[0].Nodes[1])
	}
	if back.TotalCapacity() != 25 {
		t.Errorf("total capacity %d", back.TotalCapacity())
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []func(*Advertisement){
		func(a *Advertisement) { a.Type = "request" },
		func(a *Advertisement) { a.Authority = "" },
		func(a *Advertisement) { a.Sites[0].ID = "" },
		func(a *Advertisement) { a.Sites[1].ID = a.Sites[0].ID },
		func(a *Advertisement) { a.Sites[0].Nodes[0].ID = "" },
		func(a *Advertisement) { a.Sites[0].Nodes[1].ID = "node0" },
		func(a *Advertisement) { a.Sites[0].Nodes[0].Capacity = -1 },
		func(a *Advertisement) { a.Sites[0].Nodes[0].Free = 99 },
	}
	for i, mutate := range cases {
		ad := sampleAd()
		mutate(ad)
		if err := ad.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if err := sampleAd().Validate(); err != nil {
		t.Errorf("sample should validate: %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("not xml at all")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := Decode(strings.NewReader(`<rspec type="advertisement"></rspec>`)); err == nil {
		t.Error("missing authority must fail validation")
	}
}

func TestCompare(t *testing.T) {
	oldAd := sampleAd()
	newAd := sampleAd()
	if d := Compare(oldAd, newAd); !d.Empty() {
		t.Errorf("identical ads should diff empty: %+v", d)
	}
	// Grow site0, drop site1, add site2.
	newAd.Sites[0].Nodes[0].Capacity = 20
	newAd.Sites = append(newAd.Sites[:1], Site{ID: "ple-site2", Nodes: []Node{{ID: "n", Capacity: 1, Free: 1}}})
	d := Compare(oldAd, newAd)
	if len(d.Added) != 1 || d.Added[0] != "ple-site2" {
		t.Errorf("added = %v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != "ple-site1" {
		t.Errorf("removed = %v", d.Removed)
	}
	if ch, ok := d.CapacityChanged["ple-site0"]; !ok || ch != [2]int{20, 30} {
		t.Errorf("capacity change = %v", d.CapacityChanged)
	}
	if d.Empty() {
		t.Error("diff should be nonempty")
	}
}

func TestFromAuthority(t *testing.T) {
	a := planetlab.NewAuthority("PLC")
	site := &planetlab.Site{ID: "s0", Name: "Princeton", Nodes: []planetlab.Node{
		{ID: "n0", HostName: "n0.example", Capacity: 3},
		{ID: "n1", HostName: "n1.example", Capacity: 2},
	}}
	if err := a.AddSite(site); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReserveSlivers("slice", "s0", 2); err != nil {
		t.Fatal(err)
	}
	ad := FromAuthority(a)
	if err := ad.Validate(); err != nil {
		t.Fatal(err)
	}
	if ad.TotalCapacity() != 5 {
		t.Errorf("capacity %d", ad.TotalCapacity())
	}
	free := 0
	for _, n := range ad.Sites[0].Nodes {
		free += n.Free
	}
	if free != 3 {
		t.Errorf("advertised free %d, want 3 after two reservations", free)
	}
}

func TestResourceListRoundTrip(t *testing.T) {
	rl := sfa.ResourceList{
		Authority: "PLJ",
		Sites: []sfa.SiteResource{
			{SiteID: "s0", Name: "Tokyo", Nodes: 3, Capacity: 10, Free: 7},
			{SiteID: "s1", Name: "Osaka", Nodes: 1, Capacity: 4, Free: 0},
		},
	}
	ad := FromResourceList(rl)
	if err := ad.Validate(); err != nil {
		t.Fatal(err)
	}
	back := ToResourceList(ad)
	if back.Authority != "PLJ" || len(back.Sites) != 2 {
		t.Fatalf("round trip: %+v", back)
	}
	for i := range rl.Sites {
		if back.Sites[i].Capacity != rl.Sites[i].Capacity {
			t.Errorf("site %d capacity %d != %d", i, back.Sites[i].Capacity, rl.Sites[i].Capacity)
		}
		if back.Sites[i].Free != rl.Sites[i].Free {
			t.Errorf("site %d free %d != %d", i, back.Sites[i].Free, rl.Sites[i].Free)
		}
		if back.Sites[i].Nodes != rl.Sites[i].Nodes {
			t.Errorf("site %d nodes %d != %d", i, back.Sites[i].Nodes, rl.Sites[i].Nodes)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	ad := sampleAd()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := ad.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
