package rspec

import (
	"fedshare/internal/planetlab"
	"fedshare/internal/sfa"
)

// FromAuthority builds an advertisement RSpec from a live authority,
// including current free capacity.
func FromAuthority(a *planetlab.Authority) *Advertisement {
	ad := New(a.Name)
	for _, site := range a.Sites() {
		s := Site{ID: site.ID, Name: site.Name}
		free := a.SiteFree(site.ID)
		// Free capacity is tracked per site; attribute it to nodes
		// proportionally by walking node capacities (best effort: RSpec
		// consumers care about site totals).
		remaining := free
		for _, n := range site.Nodes {
			nf := n.Capacity
			if nf > remaining {
				nf = remaining
			}
			remaining -= nf
			s.Nodes = append(s.Nodes, Node{
				ID: n.ID, HostName: n.HostName, Capacity: n.Capacity, Free: nf,
			})
		}
		ad.Sites = append(ad.Sites, s)
	}
	return ad
}

// FromResourceList converts an SFA wire-format resource list into an RSpec
// advertisement. Node identities are not carried by the wire format, so
// each site is rendered with synthetic per-node entries of equal capacity.
func FromResourceList(rl sfa.ResourceList) *Advertisement {
	ad := New(rl.Authority)
	for _, s := range rl.Sites {
		site := Site{ID: s.SiteID, Name: s.Name}
		nodes := s.Nodes
		if nodes <= 0 {
			nodes = 1
		}
		per := s.Capacity / nodes
		extra := s.Capacity - per*nodes
		freeLeft := s.Free
		for i := 0; i < nodes; i++ {
			c := per
			if i == 0 {
				c += extra
			}
			nf := c
			if nf > freeLeft {
				nf = freeLeft
			}
			freeLeft -= nf
			site.Nodes = append(site.Nodes, Node{
				ID:       nodeID(i),
				Capacity: c,
				Free:     nf,
			})
		}
		ad.Sites = append(ad.Sites, site)
	}
	return ad
}

func nodeID(i int) string {
	return "node" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// ToResourceList converts an advertisement into the SFA wire format.
func ToResourceList(ad *Advertisement) sfa.ResourceList {
	rl := sfa.ResourceList{Authority: ad.Authority}
	for _, s := range ad.Sites {
		capTotal, free := 0, 0
		for _, n := range s.Nodes {
			capTotal += n.Capacity
			if n.Free > 0 {
				free += n.Free
			}
		}
		rl.Sites = append(rl.Sites, sfa.SiteResource{
			SiteID:   s.ID,
			Name:     s.Name,
			Nodes:    len(s.Nodes),
			Capacity: capTotal,
			Free:     free,
		})
	}
	return rl
}
