// Package demand provides the demand-side data machinery the paper's
// policy-design workflow needs: a synthetic trace generator standing in for
// the proprietary CoMon measurements of PlanetLab user behaviour the
// authors analyzed (reference [23] — unavailable, substituted per
// DESIGN.md), and an estimator that classifies observed experiments back
// into a small set of types, producing the expected-demand mixture that
// Sec. 4.3.2 says federation policies should be tuned to.
package demand

import (
	"fmt"
	"math"
	"sort"

	"fedshare/internal/economics"
	"fedshare/internal/stats"
)

// Observation is one observed experiment: what a testbed's logs record.
type Observation struct {
	Slice     string
	Locations int     // distinct locations the experiment used
	Resources float64 // per-location resource footprint
	Holding   float64 // fraction of the observation window held
}

// TraceConfig drives the synthetic generator.
type TraceConfig struct {
	// Archetypes are the ground-truth experiment types with mixing
	// weights; defaults to the paper's three PlanetLab archetypes with
	// weights 0.6 / 0.1 / 0.3 (P2P experiments dominate counts, CDN
	// services are rare, measurement studies substantial).
	Archetypes []WeightedType
	// Count is the number of observations to draw.
	Count int
	// LocationJitter is the relative spread of the location counts around
	// each archetype's threshold (default 0.3).
	LocationJitter float64
	Seed           uint64
}

// WeightedType couples an experiment type with its mixture weight.
type WeightedType struct {
	Type   economics.ExperimentType
	Weight float64
}

// DefaultArchetypes returns the paper's three experiment classes with
// realistic mixing weights.
func DefaultArchetypes() []WeightedType {
	return []WeightedType{
		{Type: economics.P2PExperiment, Weight: 0.6},
		{Type: economics.CDNService, Weight: 0.1},
		{Type: economics.MeasurementExperiment, Weight: 0.3},
	}
}

// Generate draws a synthetic observation trace. Each observation samples an
// archetype by weight, then jitters its location count multiplicatively
// (truncated at the archetype's threshold so observations remain feasible
// examples of their class) and its holding time by ±25%.
func Generate(cfg TraceConfig) ([]Observation, error) {
	if cfg.Count < 0 {
		return nil, fmt.Errorf("demand: negative count")
	}
	arch := cfg.Archetypes
	if arch == nil {
		arch = DefaultArchetypes()
	}
	total := 0.0
	for _, a := range arch {
		if a.Weight < 0 {
			return nil, fmt.Errorf("demand: negative weight for %s", a.Type.Name)
		}
		if err := a.Type.Validate(); err != nil {
			return nil, err
		}
		total += a.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("demand: weights sum to %g", total)
	}
	jitter := cfg.LocationJitter
	if jitter == 0 {
		jitter = 0.3
	}
	if jitter < 0 || jitter >= 1 {
		return nil, fmt.Errorf("demand: jitter %g outside [0,1)", jitter)
	}
	rng := stats.NewRand(cfg.Seed)
	out := make([]Observation, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		// Sample an archetype.
		u := rng.Float64() * total
		var chosen economics.ExperimentType
		for _, a := range arch {
			if u < a.Weight {
				chosen = a.Type
				break
			}
			u -= a.Weight
		}
		if chosen.Name == "" {
			chosen = arch[len(arch)-1].Type
		}
		base := chosen.MinLocations
		if base == 0 {
			base = 10
		}
		locs := base * (1 + jitter*rng.Float64())
		if !math.IsInf(chosen.MaxLocations, 1) && locs > chosen.MaxLocations {
			locs = chosen.MaxLocations
		}
		hold := chosen.HoldingTime * (0.75 + 0.5*rng.Float64())
		if hold > 1 {
			hold = 1
		}
		out = append(out, Observation{
			Slice:     fmt.Sprintf("%s-%04d", chosen.Name, i),
			Locations: int(math.Round(locs)),
			Resources: chosen.Resources,
			Holding:   hold,
		})
	}
	return out, nil
}

// Estimate classifies observations against candidate types by nearest
// match (log-space distance over locations, resources and holding time) and
// returns the estimated workload mixture. It is the "construct more
// realistic utility functions" step of Sec. 4.3.2: given logs, recover the
// type mixture that federation policies should be calibrated against.
func Estimate(obs []Observation, candidates []economics.ExperimentType) (*economics.Workload, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("demand: no candidate types")
	}
	for _, c := range candidates {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	counts := make([]int, len(candidates))
	for _, o := range obs {
		if o.Locations <= 0 || o.Resources <= 0 || o.Holding <= 0 {
			return nil, fmt.Errorf("demand: invalid observation %+v", o)
		}
		best, bestD := -1, math.Inf(1)
		for ci, c := range candidates {
			ref := c.MinLocations
			if ref == 0 {
				ref = 10
			}
			d := sq(math.Log(float64(o.Locations)/ref)) +
				sq(math.Log(o.Resources/c.Resources)) +
				sq(math.Log(o.Holding/c.HoldingTime))
			if d < bestD {
				bestD = d
				best = ci
			}
		}
		counts[best]++
	}
	var classes []economics.DemandClass
	for ci, c := range candidates {
		if counts[ci] > 0 {
			classes = append(classes, economics.DemandClass{Type: c, Count: counts[ci]})
		}
	}
	return economics.NewWorkload(classes...)
}

func sq(x float64) float64 { return x * x }

// MixtureSummary describes an estimated workload for reporting.
type MixtureSummary struct {
	Name     string
	Count    int
	Fraction float64
}

// Summarize reports a workload's mixture, largest class first.
func Summarize(w *economics.Workload) []MixtureSummary {
	total := w.Total()
	var out []MixtureSummary
	for _, c := range w.Classes {
		frac := 0.0
		if total > 0 {
			frac = float64(c.Count) / float64(total)
		}
		out = append(out, MixtureSummary{Name: c.Type.Name, Count: c.Count, Fraction: frac})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}
