package demand

import (
	"math"
	"testing"

	"fedshare/internal/economics"
)

func TestGenerateBasics(t *testing.T) {
	obs, err := Generate(TraceConfig{Count: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 500 {
		t.Fatalf("got %d observations", len(obs))
	}
	for _, o := range obs {
		if o.Locations <= 0 || o.Resources <= 0 || o.Holding <= 0 || o.Holding > 1 {
			t.Fatalf("invalid observation %+v", o)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(TraceConfig{Count: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TraceConfig{Count: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the trace")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(TraceConfig{Count: -1}); err == nil {
		t.Error("negative count must fail")
	}
	if _, err := Generate(TraceConfig{Count: 1, LocationJitter: 1.5}); err == nil {
		t.Error("jitter >= 1 must fail")
	}
	if _, err := Generate(TraceConfig{
		Count:      1,
		Archetypes: []WeightedType{{Type: economics.P2PExperiment, Weight: -1}},
	}); err == nil {
		t.Error("negative weight must fail")
	}
	if _, err := Generate(TraceConfig{
		Count:      1,
		Archetypes: []WeightedType{{Type: economics.P2PExperiment, Weight: 0}},
	}); err == nil {
		t.Error("zero total weight must fail")
	}
}

func TestEstimateRecoversMixture(t *testing.T) {
	// Generate from the ground truth and re-estimate: the recovered
	// mixture should be close to the generator's weights.
	obs, err := Generate(TraceConfig{Count: 3000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := Estimate(obs, []economics.ExperimentType{
		economics.P2PExperiment, economics.CDNService, economics.MeasurementExperiment,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wl.Total() != 3000 {
		t.Fatalf("estimated total %d", wl.Total())
	}
	fractions := map[string]float64{}
	for _, s := range Summarize(wl) {
		fractions[s.Name] = s.Fraction
	}
	want := map[string]float64{"p2p": 0.6, "cdn": 0.1, "measurement": 0.3}
	for name, w := range want {
		if math.Abs(fractions[name]-w) > 0.05 {
			t.Errorf("%s fraction %g, want ~%g", name, fractions[name], w)
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate(nil, nil); err == nil {
		t.Error("no candidates must fail")
	}
	bad := economics.P2PExperiment
	bad.Resources = 0
	if _, err := Estimate(nil, []economics.ExperimentType{bad}); err == nil {
		t.Error("invalid candidate must fail")
	}
	if _, err := Estimate([]Observation{{Locations: 0, Resources: 1, Holding: 1}},
		[]economics.ExperimentType{economics.P2PExperiment}); err == nil {
		t.Error("invalid observation must fail")
	}
}

func TestSummarizeOrdering(t *testing.T) {
	wl, err := economics.NewWorkload(
		economics.DemandClass{Type: economics.CDNService, Count: 2},
		economics.DemandClass{Type: economics.P2PExperiment, Count: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(wl)
	if sum[0].Name != "p2p" || sum[0].Count != 8 {
		t.Errorf("largest first: %+v", sum)
	}
	if math.Abs(sum[0].Fraction-0.8) > 1e-12 {
		t.Errorf("fraction %g", sum[0].Fraction)
	}
}

func TestEstimatedWorkloadDrivesModel(t *testing.T) {
	// End-to-end: trace -> estimate -> it is a valid workload for the
	// allocation engine (non-empty classes with positive counts).
	obs, err := Generate(TraceConfig{Count: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := Estimate(obs, []economics.ExperimentType{
		economics.P2PExperiment, economics.MeasurementExperiment,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wl.Total() != 100 {
		t.Errorf("total %d", wl.Total())
	}
	for _, c := range wl.Classes {
		if c.Count <= 0 {
			t.Errorf("class %s has count %d", c.Type.Name, c.Count)
		}
	}
}
