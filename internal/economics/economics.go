// Package economics defines the paper's economic primitives: the
// threshold-power utility function of Sec. 2.3.1, the linear cost model of
// Sec. 2.3.2, and the demand model of Sec. 2.2 (experiment types with a
// diversity threshold l, per-location resources r, and holding time t).
package economics

import (
	"fmt"
	"math"
)

// Utility maps the number of distinct locations assigned to an experiment to
// the value the experiment's owner derives (equation (1) of the paper).
type Utility interface {
	// Eval returns u(x) for x assigned distinct locations.
	Eval(x float64) float64
}

// ThresholdPower is the paper's utility family:
//
//	u(x) = x^d   if x ≥ l   (or x > l when Strict),
//	u(x) = 0     otherwise.
//
// d < 1 is concave above the threshold, d = 1 linear, d > 1 convex (Fig 2).
//
// Strictness note: equation (1) of the paper reads "x ≥ l", but the worked
// example of Sec. 4.1 (φ̂₂ = 2/13 at l = 500) is only reproducible with the
// strict form "x > l". The difference matters only when x lands exactly on
// the threshold; both are provided and EXPERIMENTS.md records the choice per
// figure.
type ThresholdPower struct {
	L      float64 // minimum number of distinct locations
	D      float64 // shape exponent
	Strict bool    // true: accept only x > L; false: accept x >= L
}

// Eval implements Utility.
func (u ThresholdPower) Eval(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if u.Strict {
		if x <= u.L {
			return 0
		}
	} else if x < u.L {
		return 0
	}
	return math.Pow(x, u.D)
}

// Threshold returns the minimum acceptable location count as an integer:
// the smallest whole x with u(x) > 0.
func (u ThresholdPower) Threshold() int {
	if u.L <= 0 {
		if u.Strict && u.L == 0 {
			return 1
		}
		return 0
	}
	l := int(math.Ceil(u.L))
	if u.Strict && float64(l) == u.L {
		l++
	}
	return l
}

// Linear is a linear utility with no threshold (a degenerate ThresholdPower
// with l = 0, d = 1), convenient as a capacity-only baseline.
type LinearUtility struct{ Slope float64 }

// Eval implements Utility.
func (u LinearUtility) Eval(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return u.Slope * x
}

// Cost is the per-facility provision cost model of Sec. 2.3.2:
// c_i(L_i, R_i, T_i) = α·L_i + β·R_i + γ·T_i, plus the fixed federation cost
// c_F. The paper's numerical analysis sets all of these to zero (costs are
// sunk/subsidized); the model is kept for the decision stage of the game.
type Cost struct {
	Alpha, Beta, Gamma float64 // weights on locations, resources, availability
	Fixed              float64 // fixed federation cost c_F
}

// Eval returns the provision cost of contributing (locations, resources,
// availability).
func (c Cost) Eval(locations, resources, availability float64) float64 {
	return c.Alpha*locations + c.Beta*resources + c.Gamma*availability + c.Fixed
}

// ExperimentType describes one class of demand (Sec. 2.2): an experiment
// needs at least MinLocations distinct locations, at most MaxLocations
// (+Inf when unbounded), Resources units at each assigned location, and
// holds them for HoldingTime (1 = full period; < 1 enables statistical
// multiplexing).
type ExperimentType struct {
	Name         string
	MinLocations float64 // l_k
	MaxLocations float64 // l̄_k (+Inf if unlimited)
	Resources    float64 // r_kl, assumed uniform over locations
	HoldingTime  float64 // t_kl ∈ (0, 1]
	Shape        float64 // utility exponent d
	Strict       bool    // strict threshold (see ThresholdPower)
}

// Utility returns the type's utility function.
func (e ExperimentType) Utility() ThresholdPower {
	return ThresholdPower{L: e.MinLocations, D: e.Shape, Strict: e.Strict}
}

// Validate checks the type for modelling errors.
func (e ExperimentType) Validate() error {
	if e.MinLocations < 0 {
		return fmt.Errorf("economics: %s: negative MinLocations", e.Name)
	}
	if e.MaxLocations < e.MinLocations {
		return fmt.Errorf("economics: %s: MaxLocations %g < MinLocations %g", e.Name, e.MaxLocations, e.MinLocations)
	}
	if e.Resources <= 0 {
		return fmt.Errorf("economics: %s: Resources must be positive", e.Name)
	}
	if e.HoldingTime <= 0 || e.HoldingTime > 1 {
		return fmt.Errorf("economics: %s: HoldingTime must be in (0,1]", e.Name)
	}
	if e.Shape <= 0 {
		return fmt.Errorf("economics: %s: Shape must be positive", e.Name)
	}
	return nil
}

// The three PlanetLab experiment archetypes of Sec. 2.2.
var (
	// P2PExperiment: a peer-to-peer experiment — modest diversity, light
	// per-node footprint, short holding time.
	P2PExperiment = ExperimentType{
		Name: "p2p", MinLocations: 40, MaxLocations: math.Inf(1),
		Resources: 1, HoldingTime: 0.1, Shape: 1,
	}
	// CDNService: a content-distribution service — bounded location range,
	// heavier per-node resources, holds resources continuously.
	CDNService = ExperimentType{
		Name: "cdn", MinLocations: 100, MaxLocations: 500,
		Resources: 4, HoldingTime: 1, Shape: 1,
	}
	// MeasurementExperiment: a measurement study — diversity-hungry,
	// medium footprint.
	MeasurementExperiment = ExperimentType{
		Name: "measurement", MinLocations: 500, MaxLocations: math.Inf(1),
		Resources: 2, HoldingTime: 0.4, Shape: 1,
	}
)

// DemandClass is one component of a workload: Count experiments of one type.
type DemandClass struct {
	Type  ExperimentType
	Count int
}

// Workload is a finite batch of experiments requesting admission, grouped by
// type.
type Workload struct {
	Classes []DemandClass
}

// NewWorkload builds a workload, validating every class.
func NewWorkload(classes ...DemandClass) (*Workload, error) {
	for _, c := range classes {
		if err := c.Type.Validate(); err != nil {
			return nil, err
		}
		if c.Count < 0 {
			return nil, fmt.Errorf("economics: negative count for %s", c.Type.Name)
		}
	}
	return &Workload{Classes: classes}, nil
}

// Total returns the total number of experiments in the workload.
func (w *Workload) Total() int {
	n := 0
	for _, c := range w.Classes {
		n += c.Count
	}
	return n
}

// Mixture builds a two-class workload with a total of k experiments, a
// fraction sigma of which are of type b (the paper's σ sweep of Fig 7).
// Rounding assigns ⌊σk+0.5⌉ experiments to b.
func Mixture(a, b ExperimentType, k int, sigma float64) (*Workload, error) {
	if sigma < 0 || sigma > 1 {
		return nil, fmt.Errorf("economics: sigma %g outside [0,1]", sigma)
	}
	if k < 0 {
		return nil, fmt.Errorf("economics: negative workload size %d", k)
	}
	nb := int(math.Floor(sigma*float64(k) + 0.5))
	return NewWorkload(
		DemandClass{Type: a, Count: k - nb},
		DemandClass{Type: b, Count: nb},
	)
}

// ArrivalSpec describes a Poisson demand stream for the loss-network
// simulator: experiments of the given type arrive at Rate per unit time and
// hold resources for their HoldingTime.
type ArrivalSpec struct {
	Type ExperimentType
	Rate float64 // arrivals per unit time
}

// Validate checks the spec.
func (a ArrivalSpec) Validate() error {
	if a.Rate < 0 {
		return fmt.Errorf("economics: negative arrival rate for %s", a.Type.Name)
	}
	return a.Type.Validate()
}
