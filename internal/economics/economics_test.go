package economics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThresholdPowerBasics(t *testing.T) {
	u := ThresholdPower{L: 50, D: 1}
	if u.Eval(49) != 0 {
		t.Error("below threshold must be 0")
	}
	if u.Eval(50) != 50 {
		t.Errorf("u(50) = %g, want 50 (non-strict)", u.Eval(50))
	}
	if u.Eval(100) != 100 {
		t.Errorf("u(100) = %g", u.Eval(100))
	}
	if u.Eval(0) != 0 || u.Eval(-5) != 0 {
		t.Error("non-positive x must be 0")
	}
}

func TestThresholdPowerStrict(t *testing.T) {
	u := ThresholdPower{L: 500, D: 1, Strict: true}
	if u.Eval(500) != 0 {
		t.Error("strict threshold rejects x == l")
	}
	if u.Eval(501) != 501 {
		t.Errorf("u(501) = %g", u.Eval(501))
	}
}

func TestThresholdPowerShapes(t *testing.T) {
	// Fig 2 anchors: at x=100 with l=50.
	for _, c := range []struct {
		d    float64
		want float64
	}{
		{0.8, math.Pow(100, 0.8)},
		{1, 100},
		{1.2, math.Pow(100, 1.2)},
	} {
		u := ThresholdPower{L: 50, D: c.d}
		if got := u.Eval(100); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("d=%g: u(100) = %g, want %g", c.d, got, c.want)
		}
	}
}

func TestThresholdPowerMonotoneProperty(t *testing.T) {
	f := func(lRaw, dRaw uint8, x1Raw, x2Raw uint16) bool {
		u := ThresholdPower{L: float64(lRaw % 100), D: 0.5 + float64(dRaw%20)/10}
		x1, x2 := float64(x1Raw%1000), float64(x2Raw%1000)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return u.Eval(x1) <= u.Eval(x2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThreshold(t *testing.T) {
	cases := []struct {
		u    ThresholdPower
		want int
	}{
		{ThresholdPower{L: 50, D: 1}, 50},
		{ThresholdPower{L: 50.5, D: 1}, 51},
		{ThresholdPower{L: 50, D: 1, Strict: true}, 51},
		{ThresholdPower{L: 0, D: 1}, 0},
		{ThresholdPower{L: 0, D: 1, Strict: true}, 1},
	}
	for _, c := range cases {
		if got := c.u.Threshold(); got != c.want {
			t.Errorf("Threshold(L=%g strict=%v) = %d, want %d", c.u.L, c.u.Strict, got, c.want)
		}
	}
}

func TestLinearUtility(t *testing.T) {
	u := LinearUtility{Slope: 2}
	if u.Eval(5) != 10 {
		t.Errorf("Eval(5) = %g", u.Eval(5))
	}
	if u.Eval(-1) != 0 {
		t.Error("negative x yields 0")
	}
}

func TestCost(t *testing.T) {
	c := Cost{Alpha: 1, Beta: 2, Gamma: 3, Fixed: 10}
	if got := c.Eval(100, 50, 1); got != 100+100+3+10 {
		t.Errorf("cost = %g", got)
	}
	var zero Cost
	if zero.Eval(100, 50, 1) != 0 {
		t.Error("zero cost model should evaluate to 0")
	}
}

func TestArchetypesValid(t *testing.T) {
	for _, e := range []ExperimentType{P2PExperiment, CDNService, MeasurementExperiment} {
		if err := e.Validate(); err != nil {
			t.Errorf("archetype %s invalid: %v", e.Name, err)
		}
	}
	if P2PExperiment.MinLocations != 40 || CDNService.Resources != 4 || MeasurementExperiment.HoldingTime != 0.4 {
		t.Error("archetype constants drifted from the paper (Sec 2.2)")
	}
}

func TestValidateRejections(t *testing.T) {
	base := ExperimentType{Name: "x", MinLocations: 1, MaxLocations: 2, Resources: 1, HoldingTime: 1, Shape: 1}
	bad := []ExperimentType{}
	e := base
	e.MinLocations = -1
	bad = append(bad, e)
	e = base
	e.MaxLocations = 0
	bad = append(bad, e)
	e = base
	e.Resources = 0
	bad = append(bad, e)
	e = base
	e.HoldingTime = 0
	bad = append(bad, e)
	e = base
	e.HoldingTime = 1.5
	bad = append(bad, e)
	e = base
	e.Shape = 0
	bad = append(bad, e)
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, b)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base should be valid: %v", err)
	}
}

func TestWorkload(t *testing.T) {
	w, err := NewWorkload(
		DemandClass{Type: P2PExperiment, Count: 3},
		DemandClass{Type: CDNService, Count: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if w.Total() != 5 {
		t.Errorf("Total = %d", w.Total())
	}
	if _, err := NewWorkload(DemandClass{Type: P2PExperiment, Count: -1}); err == nil {
		t.Error("negative count must fail")
	}
	bad := P2PExperiment
	bad.Resources = 0
	if _, err := NewWorkload(DemandClass{Type: bad, Count: 1}); err == nil {
		t.Error("invalid type must fail")
	}
}

func TestMixture(t *testing.T) {
	a := ExperimentType{Name: "a", MaxLocations: math.Inf(1), Resources: 1, HoldingTime: 1, Shape: 1}
	b := ExperimentType{Name: "b", MinLocations: 700, MaxLocations: math.Inf(1), Resources: 1, HoldingTime: 1, Shape: 1}
	for _, c := range []struct {
		sigma        float64
		wantA, wantB int
	}{
		{0, 10, 0},
		{1, 0, 10},
		{0.5, 5, 5},
		{0.25, 8, 2}, // 2.5 rounds to 3? floor(2.5+0.5)=3 -> 7,3
	} {
		w, err := Mixture(a, b, 10, c.sigma)
		if err != nil {
			t.Fatal(err)
		}
		nb := w.Classes[1].Count
		na := w.Classes[0].Count
		if na+nb != 10 {
			t.Errorf("sigma=%g: counts %d+%d != 10", c.sigma, na, nb)
		}
		if math.Abs(float64(nb)-c.sigma*10) > 0.51 {
			t.Errorf("sigma=%g: nb=%d too far from %g", c.sigma, nb, c.sigma*10)
		}
	}
	if _, err := Mixture(a, b, 10, -0.1); err == nil {
		t.Error("sigma < 0 must fail")
	}
	if _, err := Mixture(a, b, 10, 1.1); err == nil {
		t.Error("sigma > 1 must fail")
	}
	if _, err := Mixture(a, b, -1, 0.5); err == nil {
		t.Error("negative k must fail")
	}
}

func TestArrivalSpec(t *testing.T) {
	ok := ArrivalSpec{Type: P2PExperiment, Rate: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := ArrivalSpec{Type: P2PExperiment, Rate: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative rate must fail")
	}
}
