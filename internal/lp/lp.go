// Package lp implements a dense two-phase primal simplex solver for linear
// programs. It exists so that the coalitional-game machinery (nucleolus,
// least-core, core-emptiness tests) and the LP-relaxed resource allocators
// can run without any dependency outside the standard library.
//
// Problems are stated in the natural form
//
//	maximize    c·x
//	subject to  a_j·x (<=|=|>=) b_j   for each constraint j
//	            x >= 0
//
// Free (sign-unrestricted) variables can be modelled by the caller as the
// difference of two nonnegative variables; NewFreeVar helps with that.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of one linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // a·x <= b
	EQ                 // a·x == b
	GE                 // a·x >= b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return "?"
}

// Constraint is one row a·x (rel) b.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a linear program in maximization form over nonnegative
// variables.
type Problem struct {
	// C is the objective vector; the solver maximizes C·x.
	C []float64
	// Rows are the constraints. Every row's Coeffs must have len(C) entries.
	Rows []Constraint
}

// NewProblem returns a problem with n variables and no constraints.
func NewProblem(n int) *Problem {
	return &Problem{C: make([]float64, n)}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return len(p.C) }

// AddConstraint appends a constraint row. It panics on dimension mismatch to
// surface modelling bugs at build time rather than as wrong optima.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) {
	if len(coeffs) != len(p.C) {
		panic(fmt.Sprintf("lp: constraint has %d coefficients, problem has %d variables", len(coeffs), len(p.C)))
	}
	cp := append([]float64(nil), coeffs...)
	p.Rows = append(p.Rows, Constraint{Coeffs: cp, Rel: rel, RHS: rhs})
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Solution holds the result of a successful solve.
type Solution struct {
	X         []float64 // optimal values of the decision variables
	Objective float64   // C·X
	Status    Status
}

// ErrIterationLimit is returned when the simplex fails to converge; with
// Bland's rule this indicates numerical trouble rather than cycling.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

const (
	eps          = 1e-9
	maxIterScale = 200 // iterations allowed per (rows+cols)
)

// Solve runs the two-phase simplex method. The returned Solution has Status
// Optimal, Infeasible, or Unbounded; X and Objective are only meaningful for
// Optimal.
func (p *Problem) Solve() (*Solution, error) {
	n := len(p.C)
	m := len(p.Rows)
	if m == 0 {
		// Unconstrained: optimum is 0 at x=0 unless some c_i > 0 makes it
		// unbounded.
		for _, c := range p.C {
			if c > eps {
				return &Solution{Status: Unbounded}, nil
			}
		}
		return &Solution{X: make([]float64, n), Objective: 0, Status: Optimal}, nil
	}

	// Normalize rows to nonnegative RHS and count extra columns.
	type rowSpec struct {
		coeffs []float64
		rel    Relation
		rhs    float64
	}
	rows := make([]rowSpec, m)
	nSlack := 0
	for j, r := range p.Rows {
		coeffs := append([]float64(nil), r.Coeffs...)
		rel, rhs := r.Rel, r.RHS
		if rhs < 0 {
			for i := range coeffs {
				coeffs[i] = -coeffs[i]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[j] = rowSpec{coeffs, rel, rhs}
		if rel != EQ {
			nSlack++
		}
	}

	// Tableau layout: [decision vars | slack/surplus | artificial] | RHS.
	// Every row gets an artificial variable; for a LE row with rhs>=0 the
	// slack could serve as the initial basis, but giving every row an
	// artificial keeps the construction uniform and simple.
	nArt := m
	total := n + nSlack + nArt
	t := newTableau(m, total)

	slackIdx := n
	for j, r := range rows {
		copy(t.a[j], r.coeffs)
		switch r.rel {
		case LE:
			t.a[j][slackIdx] = 1
			slackIdx++
		case GE:
			t.a[j][slackIdx] = -1
			slackIdx++
		}
		art := n + nSlack + j
		t.a[j][art] = 1
		t.b[j] = r.rhs
		t.basis[j] = art
	}

	// Phase 1: minimize the sum of artificials == maximize their negative.
	phase1 := make([]float64, total)
	for j := 0; j < nArt; j++ {
		phase1[n+nSlack+j] = -1
	}
	t.setObjective(phase1)
	if err := t.optimize(); err != nil {
		return nil, err
	}
	if t.objectiveValue() < -eps {
		return &Solution{Status: Infeasible}, nil
	}
	// Drive any artificial variables remaining in the basis out (degenerate
	// feasible bases can keep them at value 0).
	for j := 0; j < m; j++ {
		if t.basis[j] >= n+nSlack {
			pivoted := false
			for col := 0; col < n+nSlack; col++ {
				if math.Abs(t.a[j][col]) > eps {
					t.pivot(j, col)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is redundant (all-zero over real columns); it stays
				// with its artificial at 0, which is harmless as long as the
				// artificial columns are frozen in phase 2.
				_ = pivoted
			}
		}
	}

	// Phase 2: the true objective; artificial columns are frozen by marking
	// them unusable.
	t.frozenFrom = n + nSlack
	phase2 := make([]float64, total)
	copy(phase2, p.C)
	t.setObjective(phase2)
	if err := t.optimize(); err != nil {
		return nil, err
	}
	if t.unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for j := 0; j < m; j++ {
		if t.basis[j] < n {
			x[t.basis[j]] = t.b[j]
		}
	}
	obj := 0.0
	for i := range x {
		obj += p.C[i] * x[i]
	}
	return &Solution{X: x, Objective: obj, Status: Optimal}, nil
}

// tableau holds the working simplex state. Row objective is kept in reduced
// form: z[i] is the reduced cost of column i, zVal the current objective.
type tableau struct {
	m, cols    int
	a          [][]float64
	b          []float64
	z          []float64
	zVal       float64
	basis      []int
	frozenFrom int // columns >= frozenFrom may not enter the basis (-1: none)
	unbounded  bool
}

func newTableau(m, cols int) *tableau {
	t := &tableau{
		m:          m,
		cols:       cols,
		a:          make([][]float64, m),
		b:          make([]float64, m),
		z:          make([]float64, cols),
		basis:      make([]int, m),
		frozenFrom: -1,
	}
	for j := range t.a {
		t.a[j] = make([]float64, cols)
	}
	return t
}

// setObjective installs a fresh objective c (maximize) and prices it out
// against the current basis so the reduced costs are consistent.
func (t *tableau) setObjective(c []float64) {
	copy(t.z, c)
	t.zVal = 0
	t.unbounded = false
	// Price out basic columns: subtract c_B · row from the cost row.
	for j := 0; j < t.m; j++ {
		cb := c[t.basis[j]]
		if cb == 0 {
			continue
		}
		for i := 0; i < t.cols; i++ {
			t.z[i] -= cb * t.a[j][i]
		}
		t.zVal += cb * t.b[j]
	}
}

func (t *tableau) objectiveValue() float64 { return t.zVal }

// optimize runs primal simplex iterations with Bland's rule until no column
// improves the (maximization) objective.
func (t *tableau) optimize() error {
	limit := maxIterScale * (t.m + t.cols)
	for iter := 0; iter < limit; iter++ {
		// Entering column: Bland — smallest index with positive reduced cost.
		col := -1
		for i := 0; i < t.cols; i++ {
			if t.frozenFrom >= 0 && i >= t.frozenFrom {
				break
			}
			if t.z[i] > eps {
				col = i
				break
			}
		}
		if col == -1 {
			return nil // optimal
		}
		// Leaving row: min ratio test, ties broken by smallest basis index
		// (Bland).
		row := -1
		best := math.Inf(1)
		for j := 0; j < t.m; j++ {
			if t.a[j][col] > eps {
				ratio := t.b[j] / t.a[j][col]
				if ratio < best-eps || (ratio < best+eps && (row == -1 || t.basis[j] < t.basis[row])) {
					best = ratio
					row = j
				}
			}
		}
		if row == -1 {
			t.unbounded = true
			return nil
		}
		t.pivot(row, col)
	}
	return ErrIterationLimit
}

// pivot makes column col basic in row row.
func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	inv := 1 / p
	for i := 0; i < t.cols; i++ {
		t.a[row][i] *= inv
	}
	t.b[row] *= inv
	for j := 0; j < t.m; j++ {
		if j == row {
			continue
		}
		f := t.a[j][col]
		if f == 0 {
			continue
		}
		for i := 0; i < t.cols; i++ {
			t.a[j][i] -= f * t.a[row][i]
		}
		t.b[j] -= f * t.b[row]
		if t.b[j] < 0 && t.b[j] > -eps {
			t.b[j] = 0
		}
	}
	f := t.z[col]
	if f != 0 {
		for i := 0; i < t.cols; i++ {
			t.z[i] -= f * t.a[row][i]
		}
		t.zVal += f * t.b[row]
	}
	t.basis[row] = col
}

// FreeVar helps model a sign-unrestricted variable v as v = x⁺ - x⁻ with two
// nonnegative columns. Pos and Neg are the column indices of x⁺ and x⁻.
type FreeVar struct {
	Pos, Neg int
}

// Value extracts the free variable's value from a solution vector.
func (f FreeVar) Value(x []float64) float64 { return x[f.Pos] - x[f.Neg] }

// Coeff writes coefficient c for the free variable into a constraint row.
func (f FreeVar) Coeff(row []float64, c float64) {
	row[f.Pos] = c
	row[f.Neg] = -c
}
