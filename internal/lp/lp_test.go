package lp

import (
	"math"
	"testing"
	"testing/quick"

	"fedshare/internal/stats"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestTextbookMaximization(t *testing.T) {
	// maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), 36.
	p := NewProblem(2)
	p.C = []float64{3, 5}
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-36) > 1e-7 {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-6) > 1e-7 {
		t.Errorf("x = %v, want (2,6)", sol.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// maximize x + y s.t. x + y = 10, x - y = 2 -> (6, 4), 10.
	p := NewProblem(2)
	p.C = []float64{1, 1}
	p.AddConstraint([]float64{1, 1}, EQ, 10)
	p.AddConstraint([]float64{1, -1}, EQ, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-6) > 1e-7 || math.Abs(sol.X[1]-4) > 1e-7 {
		t.Errorf("x = %v, want (6,4)", sol.X)
	}
}

func TestGEConstraints(t *testing.T) {
	// maximize -x - y (i.e. minimize x+y) s.t. x + 2y >= 4, 3x + y >= 6 ->
	// intersection (8/5, 6/5), objective -(14/5).
	p := NewProblem(2)
	p.C = []float64{-1, -1}
	p.AddConstraint([]float64{1, 2}, GE, 4)
	p.AddConstraint([]float64{3, 1}, GE, 6)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+14.0/5.0) > 1e-7 {
		t.Errorf("objective = %g, want -2.8", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.C = []float64{1}
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.C = []float64{1, 0}
	p.AddConstraint([]float64{0, 1}, LE, 5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestNoConstraints(t *testing.T) {
	p := NewProblem(2)
	p.C = []float64{-1, -2}
	sol := solveOK(t, p)
	if sol.Objective != 0 {
		t.Errorf("objective = %g, want 0", sol.Objective)
	}
	p2 := NewProblem(1)
	p2.C = []float64{1}
	sol2, err := p2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol2.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// x <= -? rewritten internally: maximize x s.t. -x <= -3 (i.e. x >= 3)
	// and x <= 5 -> 5.
	p := NewProblem(1)
	p.C = []float64{1}
	p.AddConstraint([]float64{-1}, LE, -3)
	p.AddConstraint([]float64{1}, LE, 5)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-5) > 1e-7 {
		t.Errorf("objective = %g, want 5", sol.Objective)
	}
}

func TestDegenerate(t *testing.T) {
	// Classic degeneracy: redundant constraints through one vertex.
	p := NewProblem(2)
	p.C = []float64{1, 1}
	p.AddConstraint([]float64{1, 0}, LE, 1)
	p.AddConstraint([]float64{0, 1}, LE, 1)
	p.AddConstraint([]float64{1, 1}, LE, 2)
	p.AddConstraint([]float64{2, 2}, LE, 4)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-7 {
		t.Errorf("objective = %g, want 2", sol.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows keep an artificial basic at zero; the solve
	// must still succeed.
	p := NewProblem(2)
	p.C = []float64{1, 2}
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{2, 2}, EQ, 8)
	p.AddConstraint([]float64{1, 0}, LE, 3)
	sol := solveOK(t, p)
	// Best is x=0, y=4 -> 8.
	if math.Abs(sol.Objective-8) > 1e-7 {
		t.Errorf("objective = %g, want 8", sol.Objective)
	}
}

func TestFreeVar(t *testing.T) {
	// maximize v s.t. v <= -2 with v free -> v = -2.
	// Model: columns 0,1 are v+ and v-.
	p := NewProblem(2)
	fv := FreeVar{Pos: 0, Neg: 1}
	fv.Coeff(p.C, 1)
	row := make([]float64, 2)
	fv.Coeff(row, 1)
	p.AddConstraint(row, LE, -2)
	sol := solveOK(t, p)
	if got := fv.Value(sol.X); math.Abs(got+2) > 1e-7 {
		t.Errorf("free var = %g, want -2", got)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	p := NewProblem(2)
	p.AddConstraint([]float64{1}, LE, 1)
}

// TestRandomKnapsackAgainstGreedy checks the LP relaxation of a fractional
// knapsack against the exact greedy solution, which is optimal for the
// relaxation.
func TestRandomKnapsackAgainstGreedy(t *testing.T) {
	rng := stats.NewRand(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = 1 + math.Floor(rng.Float64()*9)
			weights[i] = 1 + math.Floor(rng.Float64()*9)
		}
		capacity := 1 + math.Floor(rng.Float64()*20)

		p := NewProblem(n)
		copy(p.C, values)
		p.AddConstraint(weights, LE, capacity)
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			p.AddConstraint(row, LE, 1)
		}
		sol := solveOK(t, p)

		// Greedy by density is optimal for the fractional knapsack.
		idx := rng.Perm(n) // randomize tie order first
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if values[idx[b]]/weights[idx[b]] > values[idx[a]]/weights[idx[a]] {
					idx[a], idx[b] = idx[b], idx[a]
				}
			}
		}
		remaining := capacity
		want := 0.0
		for _, i := range idx {
			take := math.Min(1, remaining/weights[i])
			if take <= 0 {
				break
			}
			want += take * values[i]
			remaining -= take * weights[i]
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: LP %g != greedy %g (v=%v w=%v cap=%g)",
				trial, sol.Objective, want, values, weights, capacity)
		}
	}
}

// TestPropertyFeasibility: any Optimal solution must satisfy every
// constraint and nonnegativity.
func TestPropertyFeasibility(t *testing.T) {
	rng := stats.NewRand(7)
	f := func() bool {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := NewProblem(n)
		for i := range p.C {
			p.C[i] = rng.Float64()*10 - 5
		}
		for j := 0; j < m; j++ {
			row := make([]float64, n)
			for i := range row {
				row[i] = rng.Float64()*4 - 1
			}
			rel := Relation(rng.Intn(3))
			rhs := rng.Float64() * 10
			p.AddConstraint(row, rel, rhs)
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return true // infeasible/unbounded/limit are acceptable outcomes
		}
		for _, x := range sol.X {
			if x < -1e-7 {
				return false
			}
		}
		for _, r := range p.Rows {
			lhs := 0.0
			for i, c := range r.Coeffs {
				lhs += c * sol.X[i]
			}
			switch r.Rel {
			case LE:
				if lhs > r.RHS+1e-6 {
					return false
				}
			case GE:
				if lhs < r.RHS-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(lhs-r.RHS) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolve20x20(b *testing.B) {
	rng := stats.NewRand(5)
	p := NewProblem(20)
	for i := range p.C {
		p.C[i] = rng.Float64()
	}
	for j := 0; j < 20; j++ {
		row := make([]float64, 20)
		for i := range row {
			row[i] = rng.Float64()
		}
		p.AddConstraint(row, LE, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
