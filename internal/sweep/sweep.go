// Package sweep runs independent parameter-sweep points on a bounded
// worker pool. Every paper figure is a sweep — 20–30 points, each building
// and solving a private federation game — and the points share no state, so
// they parallelize perfectly; the runner preserves deterministic point
// ordering in the output regardless of completion order, so figure tables
// are byte-identical to the sequential path.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the pool size used when Run is called with workers <= 0;
// 0 means GOMAXPROCS. Set from fedsim's -sweep-workers flag.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the pool size used when Run receives workers <= 0
// (n <= 0 restores the GOMAXPROCS default) and returns the previous value.
func SetDefaultWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int64(n)))
}

// DefaultWorkers returns the current default pool size (0 = GOMAXPROCS).
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// resolve maps a workers argument to a concrete pool size.
func resolve(workers int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers
}

// Run evaluates fn(i) for every i in [0, n) on a pool of the given size
// (workers <= 0 uses the package default) and returns the results indexed
// by i — output order is deterministic no matter how the points race. Each
// index is evaluated exactly once. A panic in fn is re-raised in the
// caller's goroutine after the pool drains, matching the sequential path.
func Run[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	w := resolve(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	return out
}

// RunErr is Run for point functions that can fail: it evaluates fn(i) for
// every i in [0, n) and returns the ordered results together with the
// lowest-indexed error (matching what a sequential loop would surface).
func RunErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	type point struct {
		v   T
		err error
	}
	pts := Run(n, workers, func(i int) point {
		v, err := fn(i)
		return point{v: v, err: err}
	})
	out := make([]T, len(pts))
	for i, p := range pts {
		if p.err != nil {
			return nil, p.err
		}
		out[i] = p.v
	}
	return out, nil
}
