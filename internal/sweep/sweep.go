// Package sweep runs independent parameter-sweep points on a bounded
// worker pool. Every paper figure is a sweep — 20–30 points, each building
// and solving a private federation game — and the points share no state, so
// they parallelize perfectly; the runner preserves deterministic point
// ordering in the output regardless of completion order, so figure tables
// are byte-identical to the sequential path.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fedshare/internal/obs"
)

// Pool instrumentation. Per point the cost is one clock read, one
// histogram observation, and one gauge CAS — timestamps are chained
// within a worker (each point's end is the next point's start), so a
// sweep of n points pays n+1 clock reads total, not 2n.
var (
	pointsTotal = obs.Default.Counter("fedshare_sweep_points_total",
		"Sweep points evaluated since process start.")
	queueDepth = obs.Default.Gauge("fedshare_sweep_queue_depth",
		"Sweep points currently queued or running across all active sweeps.")
	pointSeconds = obs.Default.Histogram("fedshare_sweep_point_seconds",
		"Per-point evaluation latency across all sweeps.", nil)
)

// defaultWorkers is the pool size used when Run is called with workers <= 0;
// 0 means GOMAXPROCS. Set from fedsim's -sweep-workers flag.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the pool size used when Run receives workers <= 0
// (n <= 0 restores the GOMAXPROCS default) and returns the previous value.
func SetDefaultWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int64(n)))
}

// DefaultWorkers returns the current default pool size (0 = GOMAXPROCS).
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// resolve maps a workers argument to a concrete pool size.
func resolve(workers int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers
}

// Run evaluates fn(i) for every i in [0, n) on a pool of the given size
// (workers <= 0 uses the package default) and returns the results indexed
// by i — output order is deterministic no matter how the points race. Each
// index is evaluated exactly once. A panic in fn is re-raised in the
// caller's goroutine after the pool drains, matching the sequential path.
func Run[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	w := resolve(workers)
	if w > n {
		w = n
	}
	queueDepth.Add(float64(n))
	var done atomic.Int64
	defer func() {
		// Points skipped by a panicking fn never ran their Dec; settle the
		// gauge so it cannot drift, and count only completed points.
		c := done.Load()
		queueDepth.Add(float64(c) - float64(n))
		pointsTotal.Add(c)
	}()
	if w <= 1 {
		prev := time.Now()
		for i := 0; i < n; i++ {
			out[i] = fn(i)
			now := time.Now()
			pointSeconds.Observe(now.Sub(prev).Seconds())
			prev = now
			queueDepth.Dec()
			done.Add(1)
		}
		return out
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			prev := time.Now()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
				now := time.Now()
				pointSeconds.Observe(now.Sub(prev).Seconds())
				prev = now
				queueDepth.Dec()
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	return out
}

// RunErr is Run for point functions that can fail: it evaluates fn(i) for
// every i in [0, n) and returns the ordered results together with the
// lowest-indexed error (matching what a sequential loop would surface).
func RunErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	type point struct {
		v   T
		err error
	}
	pts := Run(n, workers, func(i int) point {
		v, err := fn(i)
		return point{v: v, err: err}
	})
	out := make([]T, len(pts))
	for i, p := range pts {
		if p.err != nil {
			return nil, p.err
		}
		out[i] = p.v
	}
	return out, nil
}
