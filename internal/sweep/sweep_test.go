package sweep

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestRunOrderDeterministic checks that results land at their point index
// regardless of completion order (late points finish first here).
func TestRunOrderDeterministic(t *testing.T) {
	n := 50
	out := Run(n, 8, func(i int) int {
		time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
		return i * i
	})
	if len(out) != n {
		t.Fatalf("got %d results, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestRunEvaluatesEachIndexOnce counts invocations per index.
func TestRunEvaluatesEachIndexOnce(t *testing.T) {
	n := 200
	counts := make([]atomic.Int64, n)
	Run(n, 16, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d evaluated %d times", i, c)
		}
	}
}

// TestRunSequentialFallback checks workers <= 1 and tiny n run inline.
func TestRunSequentialFallback(t *testing.T) {
	for _, w := range []int{1, -5} {
		out := Run(3, w, func(i int) int { return i })
		if len(out) != 3 || out[2] != 2 {
			t.Fatalf("workers=%d: %v", w, out)
		}
	}
	if out := Run(0, 4, func(i int) int { return i }); out != nil {
		t.Fatalf("n=0 should return nil, got %v", out)
	}
}

// TestRunPanicPropagates checks a point panic re-raises in the caller, as a
// sequential loop would.
func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	Run(20, 4, func(i int) int {
		if i == 7 {
			panic("point failure")
		}
		return i
	})
}

// TestRunErrReturnsLowestIndexedError matches the sequential-loop contract:
// the error surfaced is the one the lowest-indexed failing point produced.
func TestRunErrReturnsLowestIndexedError(t *testing.T) {
	fail := func(i int) error {
		if i == 3 || i == 11 {
			return &testError{i}
		}
		return nil
	}
	_, e := RunErr(20, 8, func(i int) (int, error) { return i, fail(i) })
	if e == nil {
		t.Fatal("expected an error")
	}
	if te, ok := e.(*testError); !ok || te.i != 3 {
		t.Fatalf("got %v, want error from index 3", e)
	}

	out, e := RunErr(10, 4, func(i int) (int, error) { return 2 * i, nil })
	if e != nil || out[9] != 18 {
		t.Fatalf("clean run: %v, %v", out, e)
	}
}

type testError struct{ i int }

func (e *testError) Error() string { return "point failed" }

// TestSetDefaultWorkers checks the default round-trips and clamps.
func TestSetDefaultWorkers(t *testing.T) {
	orig := SetDefaultWorkers(3)
	defer SetDefaultWorkers(orig)
	if DefaultWorkers() != 3 {
		t.Fatalf("default = %d, want 3", DefaultWorkers())
	}
	if prev := SetDefaultWorkers(-1); prev != 3 {
		t.Fatalf("swap returned %d, want 3", prev)
	}
	if DefaultWorkers() != 0 {
		t.Fatalf("negative should clamp to 0, got %d", DefaultWorkers())
	}
	out := Run(5, 0, func(i int) int { return i + 1 }) // resolves via GOMAXPROCS
	if out[4] != 5 {
		t.Fatalf("default-resolved run: %v", out)
	}
}
