package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewRand(43)
	diff := false
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should diverge")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRand(7)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Float64())
	}
	if m := s.Mean(); math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean %g, want ~0.5", m)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit %d values in 1000 draws, want all 7", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(11)
	var s Summary
	rate := 2.5
	for i := 0; i < 100000; i++ {
		s.Add(r.ExpFloat64(rate))
	}
	if m := s.Mean(); math.Abs(m-1/rate) > 0.01 {
		t.Errorf("exponential mean %g, want ~%g", m, 1/rate)
	}
}

func TestPoissonMeanAndVariance(t *testing.T) {
	r := NewRand(5)
	for _, mean := range []float64{0.5, 3, 30, 600} {
		var s Summary
		for i := 0; i < 20000; i++ {
			s.Add(float64(r.Poisson(mean)))
		}
		if math.Abs(s.Mean()-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%g) mean %g", mean, s.Mean())
		}
		if math.Abs(s.Var()-mean) > 0.1*mean+0.1 {
			t.Errorf("Poisson(%g) variance %g", mean, s.Var())
		}
	}
	if NewRand(1).Poisson(0) != 0 {
		t.Error("Poisson(0) must be 0")
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(13)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Normal())
	}
	if math.Abs(s.Mean()) > 0.02 {
		t.Errorf("normal mean %g", s.Mean())
	}
	if math.Abs(s.Var()-1) > 0.05 {
		t.Errorf("normal variance %g", s.Var())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(17)
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %g, want 5", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if want := 32.0 / 7.0; math.Abs(s.Var()-want) > 1e-12 {
		t.Errorf("var = %g, want %g", s.Var(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Error("CI95 should be positive for n>1")
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 {
		t.Error("empty summary should be all zeros")
	}
	s.Add(3)
	if s.Var() != 0 || s.CI95() != 0 {
		t.Error("single-sample variance must be 0")
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Error("single-sample min/max")
	}
}

func TestMeanAndQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if q := Quantile(xs, 0.5); q != 2.5 {
		t.Errorf("median = %g", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %g", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "phi1"
	s.Add(0, 0.2)
	s.Add(50, 0.3)
	if y, ok := s.YAt(50); !ok || y != 0.3 {
		t.Errorf("YAt(50) = %g, %v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Error("YAt(99) should not exist")
	}
}

func TestTable(t *testing.T) {
	a := Series{Name: "a", Points: []Point{{0, 1}, {1, 2}}}
	b := Series{Name: "b", Points: []Point{{0, 3}, {1, 4}}}
	out := Table("x", []Series{a, b})
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("missing headers: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("want 3 lines, got %d", len(lines))
	}
}

func TestTablePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Table should panic on length mismatch")
		}
	}()
	a := Series{Name: "a", Points: []Point{{0, 1}}}
	b := Series{Name: "b", Points: []Point{{0, 3}, {1, 4}}}
	Table("x", []Series{a, b})
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func TestSummaryMerge(t *testing.T) {
	// Merging partial summaries must match feeding every value into one.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9, -1, 3.5, 12, 0.25}
	for split := 0; split <= len(xs); split++ {
		var a, b, whole Summary
		for i, x := range xs {
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
			whole.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("split %d: N = %d, want %d", split, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
			t.Errorf("split %d: mean %g vs %g", split, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Var()-whole.Var()) > 1e-12 {
			t.Errorf("split %d: var %g vs %g", split, a.Var(), whole.Var())
		}
		if a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Errorf("split %d: min/max %g/%g vs %g/%g", split, a.Min(), a.Max(), whole.Min(), whole.Max())
		}
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, empty Summary
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(empty)
	if a != before {
		t.Error("merging an empty summary must be a no-op")
	}
	var c Summary
	c.Merge(a)
	if c.N() != 2 || c.Mean() != 2 || c.Min() != 1 || c.Max() != 3 {
		t.Errorf("merge into empty lost state: %+v", c)
	}
}
