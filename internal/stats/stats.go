// Package stats provides the small statistical toolkit the simulators and
// estimators need: a seedable deterministic RNG, streaming summaries,
// confidence intervals, and (x, y) series used by the figure runners.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Rand is a deterministic, seedable pseudo-random generator
// (xorshift128+ core). It is intentionally independent of math/rand so that
// experiment outputs are stable across Go releases.
type Rand struct {
	s0, s1 uint64
}

// NewRand returns a generator seeded from seed via SplitMix64 so that nearby
// seeds produce unrelated streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	r.s0, r.s1 = next(), next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponential variate with the given rate (mean 1/rate).
func (r *Rand) ExpFloat64(rate float64) float64 {
	if rate <= 0 {
		panic("stats: ExpFloat64 with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements in place using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Poisson returns a Poisson variate with the given mean (Knuth's method for
// small means, normal approximation above 500 to avoid underflow).
func (r *Rand) Poisson(mean float64) int {
	if mean < 0 {
		panic("stats: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean > 500 {
		// Normal approximation with continuity correction.
		v := mean + math.Sqrt(mean)*r.Normal()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-mean)
	p := 1.0
	k := 0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Normal returns a standard normal variate (Box–Muller).
func (r *Rand) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Summary accumulates streaming first and second moments of a sample.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	everStored bool
}

// Add folds one observation into the summary (Welford's update).
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.everStored || x < s.min {
		s.min = x
	}
	if !s.everStored || x > s.max {
		s.max = x
	}
	s.everStored = true
}

// Merge folds another summary into s, as if every observation added to o
// had been added to s (Chan et al.'s pairwise moment combination). It is
// the reduction step of the parallel estimators: workers accumulate into
// private summaries and merge them in a fixed order, so the merged moments
// are deterministic for a given partition regardless of completion order.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.mean += delta * float64(o.n) / float64(n)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.n = n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean. It is 0 for fewer than two samples.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(s.n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation on the sorted sample. Empty input yields NaN.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Point is one (x, y) sample of a plotted series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points: one line of a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// YAt returns the y value at the first point whose x equals x (within eps),
// and whether such a point exists.
func (s *Series) YAt(x float64) (float64, bool) {
	const eps = 1e-9
	for _, p := range s.Points {
		if math.Abs(p.X-x) < eps {
			return p.Y, true
		}
	}
	return 0, false
}

// Table renders a set of series as an aligned text table sharing the x axis.
// All series must have identical x grids; Table panics otherwise to surface
// figure-runner bugs early.
func Table(xLabel string, series []Series) string {
	if len(series) == 0 {
		return ""
	}
	n := len(series[0].Points)
	for _, s := range series {
		if len(s.Points) != n {
			panic(fmt.Sprintf("stats: series %q has %d points, want %d", s.Name, len(s.Points), n))
		}
	}
	out := fmt.Sprintf("%12s", xLabel)
	for _, s := range series {
		out += fmt.Sprintf(" %12s", s.Name)
	}
	out += "\n"
	for i := 0; i < n; i++ {
		out += fmt.Sprintf("%12.4g", series[0].Points[i].X)
		for _, s := range series {
			if math.Abs(s.Points[i].X-series[0].Points[i].X) > 1e-9 {
				panic(fmt.Sprintf("stats: series %q x grid mismatch at row %d", s.Name, i))
			}
			out += fmt.Sprintf(" %12.4f", s.Points[i].Y)
		}
		out += "\n"
	}
	return out
}
