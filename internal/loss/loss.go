// Package loss implements the statistical-multiplexing substrate of the
// paper: a loss-network simulation in which experiments arrive as Poisson
// streams, hold resources at a set of distinct locations for their holding
// time t, and are blocked when insufficient capacity is free (Sec. 2.2,
// Sec. 3.2.1 and the loss-network direction of Sec. 6).
//
// The headline use is quantifying how holding time drives super-additivity:
// the smaller the t's, the more multiplexing, and the more federation's
// pooled capacity outperforms isolated facilities.
package loss

import (
	"fmt"
	"math"
	"sort"

	"fedshare/internal/economics"
	"fedshare/internal/sim"
	"fedshare/internal/stats"
)

// Station is one location group in the loss network (a facility's
// contribution): Count locations with Capacity resource units each.
type Station struct {
	Label    string
	Count    int
	Capacity float64
}

// Config describes one simulation run.
type Config struct {
	Stations []Station
	Arrivals []economics.ArrivalSpec
	// Horizon is the simulated time span; Warmup observations before this
	// fraction of the horizon (default 0.2) are discarded.
	Horizon float64
	Warmup  float64
	Seed    uint64
}

// Metrics is the outcome of a run.
type Metrics struct {
	// ValueRate is accepted utility per unit time after warmup — the
	// simulation analogue of V(S).
	ValueRate float64
	// Blocking maps each arrival class to its blocking probability.
	Blocking map[string]float64
	// Accepted and Offered count experiments after warmup.
	Accepted, Offered int
	// MeanOccupancy is the time-average fraction of total capacity in use.
	MeanOccupancy float64
}

// Simulate runs the loss network once.
func Simulate(cfg Config) (*Metrics, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("loss: horizon must be positive")
	}
	warmFrac := cfg.Warmup
	if warmFrac == 0 {
		warmFrac = 0.2
	}
	if warmFrac < 0 || warmFrac >= 1 {
		return nil, fmt.Errorf("loss: warmup fraction %g outside [0,1)", warmFrac)
	}
	for _, s := range cfg.Stations {
		if s.Count < 0 || s.Capacity < 0 {
			return nil, fmt.Errorf("loss: invalid station %q", s.Label)
		}
	}
	for _, a := range cfg.Arrivals {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}

	rng := stats.NewRand(cfg.Seed)
	var eng sim.Engine
	warmT := warmFrac * cfg.Horizon

	// Location state.
	var rem []float64
	totalCap := 0.0
	for _, s := range cfg.Stations {
		for i := 0; i < s.Count; i++ {
			rem = append(rem, s.Capacity)
			totalCap += s.Capacity
		}
	}
	L := len(rem)

	type classStat struct {
		offered, accepted int
	}
	classStats := make([]classStat, len(cfg.Arrivals))
	value := 0.0
	// Occupancy integral: Σ busy·dt.
	busy := 0.0
	busyIntegral := 0.0
	lastT := warmT

	noteOccupancy := func() {
		t := eng.Now()
		if t > lastT {
			busyIntegral += busy * (t - lastT)
			lastT = t
		}
	}

	admit := func(spec economics.ArrivalSpec) ([]int, int) {
		t := spec.Type
		u := t.Utility()
		minX := u.Threshold()
		maxX := L
		if !math.IsInf(t.MaxLocations, 1) {
			maxX = int(math.Floor(t.MaxLocations))
			if maxX > L {
				maxX = L
			}
		}
		if minX > maxX {
			return nil, 0
		}
		// Candidate locations with room, preferring the fullest that still
		// fit (pack tight, keep slack for future arrivals).
		cands := make([]int, 0, L)
		for li, r := range rem {
			if r+1e-12 >= t.Resources {
				cands = append(cands, li)
			}
		}
		if len(cands) < minX || len(cands) == 0 {
			return nil, 0
		}
		sort.Slice(cands, func(a, b int) bool { return rem[cands[a]] < rem[cands[b]] })
		take := maxX
		if take > len(cands) {
			take = len(cands)
		}
		return cands[:take], take
	}

	// One arrival process per class.
	var scheduleArrival func(ci int)
	scheduleArrival = func(ci int) {
		spec := cfg.Arrivals[ci]
		if spec.Rate <= 0 {
			return
		}
		eng.Schedule(rng.ExpFloat64(spec.Rate), func() {
			if eng.Now() >= warmT {
				classStats[ci].offered++
			}
			locs, x := admit(spec)
			if x > 0 {
				noteOccupancy()
				res := spec.Type.Resources
				for _, li := range locs {
					rem[li] -= res
				}
				busy += float64(x) * res
				if eng.Now() >= warmT {
					classStats[ci].accepted++
					value += spec.Type.Utility().Eval(float64(x))
				}
				hold := spec.Type.HoldingTime
				eng.Schedule(hold, func() {
					noteOccupancy()
					for _, li := range locs {
						rem[li] += res
					}
					busy -= float64(x) * res
				})
			}
			scheduleArrival(ci)
		})
	}
	for ci := range cfg.Arrivals {
		scheduleArrival(ci)
	}

	eng.Run(cfg.Horizon)
	noteOccupancy()

	span := cfg.Horizon - warmT
	m := &Metrics{
		ValueRate: value / span,
		Blocking:  map[string]float64{},
	}
	for ci, cs := range classStats {
		m.Offered += cs.offered
		m.Accepted += cs.accepted
		b := 0.0
		if cs.offered > 0 {
			b = 1 - float64(cs.accepted)/float64(cs.offered)
		}
		m.Blocking[cfg.Arrivals[ci].Type.Name] = b
	}
	if totalCap > 0 && span > 0 {
		m.MeanOccupancy = busyIntegral / (totalCap * span)
	}
	return m, nil
}

// ErlangB returns the Erlang-B blocking probability for c servers offered
// load a = λ·t (dimensionless erlangs), computed by the numerically stable
// recurrence. c < 0 panics; c == 0 blocks everything.
func ErlangB(c int, a float64) float64 {
	if c < 0 {
		panic("loss: negative server count")
	}
	if a <= 0 {
		if c == 0 {
			return 1
		}
		return 0
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// SuperadditivityGap runs the simulation once federated and once split into
// per-station isolated systems with demand divided evenly, returning
// (federated value rate) − Σ (isolated value rates). A positive gap is the
// multiplexing gain of federation.
func SuperadditivityGap(cfg Config) (float64, error) {
	fed, err := Simulate(cfg)
	if err != nil {
		return 0, err
	}
	isolated := 0.0
	n := len(cfg.Stations)
	if n == 0 {
		return 0, fmt.Errorf("loss: no stations")
	}
	for i, s := range cfg.Stations {
		sub := Config{
			Stations: []Station{s},
			Horizon:  cfg.Horizon,
			Warmup:   cfg.Warmup,
			Seed:     cfg.Seed + uint64(i) + 1,
		}
		for _, a := range cfg.Arrivals {
			sub.Arrivals = append(sub.Arrivals, economics.ArrivalSpec{
				Type: a.Type,
				Rate: a.Rate / float64(n),
			})
		}
		m, err := Simulate(sub)
		if err != nil {
			return 0, err
		}
		isolated += m.ValueRate
	}
	return fed.ValueRate - isolated, nil
}
