package loss

import (
	"math"
	"testing"

	"fedshare/internal/coalition"
	"fedshare/internal/combin"
	"fedshare/internal/economics"
)

func unitType(name string, hold float64) economics.ExperimentType {
	return economics.ExperimentType{
		Name: name, MinLocations: 1, MaxLocations: 1,
		Resources: 1, HoldingTime: hold, Shape: 1,
	}
}

func TestErlangBKnownValues(t *testing.T) {
	cases := []struct {
		c    int
		a    float64
		want float64
	}{
		{1, 1, 0.5},
		{2, 1, 1.0 / 5}, // a²/2 / (1+a+a²/2)
		{0, 1, 1},
		{5, 0, 0},
		{0, 0, 1},
		{10, 5, 0.018385}, // standard table value
	}
	for _, c := range cases {
		if got := ErlangB(c.c, c.a); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("ErlangB(%d, %g) = %g, want %g", c.c, c.a, got, c.want)
		}
	}
}

func TestErlangBMonotonicity(t *testing.T) {
	// More servers -> less blocking; more load -> more blocking.
	for c := 1; c < 20; c++ {
		if ErlangB(c+1, 10) >= ErlangB(c, 10) {
			t.Fatalf("blocking must fall with servers at c=%d", c)
		}
	}
	prev := 0.0
	for a := 1.0; a < 20; a++ {
		b := ErlangB(5, a)
		if b <= prev {
			t.Fatalf("blocking must rise with load at a=%g", a)
		}
		prev = b
	}
}

func TestSimulationMatchesErlangB(t *testing.T) {
	// Single station, C=5 unit-capacity locations, experiments take one
	// location: an M/D/5/5 loss system. By Erlang insensitivity the
	// blocking equals ErlangB(5, λ·t).
	lambda, hold := 8.0, 0.5 // offered load 4 erlangs
	cfg := Config{
		Stations: []Station{{Label: "s", Count: 5, Capacity: 1}},
		Arrivals: []economics.ArrivalSpec{{Type: unitType("u", hold), Rate: lambda}},
		Horizon:  4000,
		Seed:     11,
	}
	m, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ErlangB(5, lambda*hold)
	got := m.Blocking["u"]
	if math.Abs(got-want) > 0.02 {
		t.Errorf("simulated blocking %g, Erlang-B %g", got, want)
	}
	// Value rate = accepted rate here (u(1) = 1 per accepted experiment).
	wantRate := lambda * (1 - want)
	if math.Abs(m.ValueRate-wantRate) > 0.35 {
		t.Errorf("value rate %g, want ~%g", m.ValueRate, wantRate)
	}
	if m.MeanOccupancy <= 0 || m.MeanOccupancy > 1 {
		t.Errorf("occupancy %g out of (0,1]", m.MeanOccupancy)
	}
}

func TestZeroLoadNoBlocking(t *testing.T) {
	cfg := Config{
		Stations: []Station{{Label: "s", Count: 3, Capacity: 1}},
		Arrivals: []economics.ArrivalSpec{{Type: unitType("u", 0.001), Rate: 0.01}},
		Horizon:  1000,
		Seed:     5,
	}
	m, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Blocking["u"] > 0.001 {
		t.Errorf("blocking %g at negligible load", m.Blocking["u"])
	}
}

func TestOverloadBlocksHeavily(t *testing.T) {
	cfg := Config{
		Stations: []Station{{Label: "s", Count: 1, Capacity: 1}},
		Arrivals: []economics.ArrivalSpec{{Type: unitType("u", 1), Rate: 50}},
		Horizon:  200,
		Seed:     5,
	}
	m, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Blocking["u"] < 0.9 {
		t.Errorf("blocking %g under 50x overload", m.Blocking["u"])
	}
}

func TestDiversityThresholdBlocking(t *testing.T) {
	// An experiment needing 10 distinct locations can never be served by a
	// 5-location system.
	et := economics.ExperimentType{
		Name: "div", MinLocations: 10, MaxLocations: math.Inf(1),
		Resources: 1, HoldingTime: 0.1, Shape: 1,
	}
	cfg := Config{
		Stations: []Station{{Label: "s", Count: 5, Capacity: 10}},
		Arrivals: []economics.ArrivalSpec{{Type: et, Rate: 3}},
		Horizon:  300,
		Seed:     9,
	}
	m, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Blocking["div"] != 1 {
		t.Errorf("blocking %g, want 1 (diversity infeasible)", m.Blocking["div"])
	}
	if m.ValueRate != 0 {
		t.Errorf("value rate %g, want 0", m.ValueRate)
	}
}

func TestMultiplexingGainShrinksWithHoldingTime(t *testing.T) {
	// Sec. 3.2.1: the smaller the holding times, the more federation gains
	// from multiplexing. Compare the superadditivity gap at t = 0.05
	// versus t = 1 under identical offered load λ·t.
	mk := func(hold, rate float64) Config {
		return Config{
			Stations: []Station{
				{Label: "a", Count: 4, Capacity: 1},
				{Label: "b", Count: 4, Capacity: 1},
			},
			Arrivals: []economics.ArrivalSpec{{Type: economics.ExperimentType{
				Name: "e", MinLocations: 3, MaxLocations: 3,
				Resources: 1, HoldingTime: hold, Shape: 1,
			}, Rate: rate}},
			Horizon: 3000,
			Seed:    21,
		}
	}
	// Same offered load 3 erlangs-of-experiments in both runs.
	gapShort, err := SuperadditivityGap(mk(0.05, 60))
	if err != nil {
		t.Fatal(err)
	}
	gapLong, err := SuperadditivityGap(mk(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Both should be nonnegative (pooling never hurts on average), and the
	// relative gain should not vanish for short holds.
	if gapShort < -1 {
		t.Errorf("short-hold federation gap strongly negative: %g", gapShort)
	}
	// Normalize by accepted value scale (rate * u(3)).
	relShort := gapShort / (60 * 3)
	relLong := gapLong / (3 * 3)
	if relShort < relLong-0.05 {
		t.Errorf("multiplexing gain should not shrink with shorter holds: short %g, long %g",
			relShort, relLong)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{Horizon: 0}); err == nil {
		t.Error("zero horizon must fail")
	}
	if _, err := Simulate(Config{Horizon: 10, Warmup: 1.5}); err == nil {
		t.Error("warmup >= 1 must fail")
	}
	if _, err := Simulate(Config{
		Horizon:  10,
		Stations: []Station{{Count: -1}},
	}); err == nil {
		t.Error("negative station count must fail")
	}
	if _, err := Simulate(Config{
		Horizon:  10,
		Arrivals: []economics.ArrivalSpec{{Type: unitType("u", 1), Rate: -1}},
	}); err == nil {
		t.Error("negative rate must fail")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		Stations: []Station{{Label: "s", Count: 3, Capacity: 2}},
		Arrivals: []economics.ArrivalSpec{{Type: unitType("u", 0.3), Rate: 5}},
		Horizon:  500,
		Seed:     33,
	}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ValueRate != b.ValueRate || a.Accepted != b.Accepted {
		t.Error("same seed must reproduce identical metrics")
	}
}

func BenchmarkSimulate(b *testing.B) {
	cfg := Config{
		Stations: []Station{{Label: "s", Count: 10, Capacity: 2}},
		Arrivals: []economics.ArrivalSpec{{Type: unitType("u", 0.2), Rate: 20}},
		Horizon:  200,
		Seed:     1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHoldingTimeSweep(t *testing.T) {
	base := Config{
		Stations: []Station{
			{Label: "a", Count: 3, Capacity: 1},
			{Label: "b", Count: 3, Capacity: 1},
		},
		Arrivals: []economics.ArrivalSpec{{
			Type: economics.ExperimentType{
				Name: "e", MinLocations: 2, MaxLocations: 2,
				Resources: 1, HoldingTime: 1, Shape: 1,
			},
			Rate: 1.5,
		}},
		Horizon: 800,
		Seed:    31,
	}
	series, err := HoldingTimeSweep(base, []float64{1, 0.5, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 3 {
		t.Fatalf("series has %d points", len(series.Points))
	}
	for _, p := range series.Points {
		if p.Y < -0.5 || p.Y > 1 {
			t.Errorf("relative gain %g at t=%g out of sane range", p.Y, p.X)
		}
	}
}

func TestHoldingTimeSweepValidation(t *testing.T) {
	base := Config{
		Stations: []Station{{Label: "a", Count: 1, Capacity: 1}},
		Horizon:  100,
	}
	if _, err := HoldingTimeSweep(base, []float64{0.5}); err == nil {
		t.Error("zero arrival classes must fail")
	}
	base.Arrivals = []economics.ArrivalSpec{{Type: unitType("u", 1), Rate: 1}}
	if _, err := HoldingTimeSweep(base, []float64{0}); err == nil {
		t.Error("t = 0 must fail")
	}
	if _, err := HoldingTimeSweep(base, []float64{1.5}); err == nil {
		t.Error("t > 1 must fail")
	}
}

func TestLossGameShapley(t *testing.T) {
	// Three stations — two small, one large — serve a common stream of
	// diversity-2 experiments. The Shapley value over simulated value
	// rates must be efficient and favor the large station.
	cfg := Config{
		Stations: []Station{
			{Label: "a", Count: 2, Capacity: 1},
			{Label: "b", Count: 2, Capacity: 1},
			{Label: "c", Count: 6, Capacity: 1},
		},
		Arrivals: []economics.ArrivalSpec{{
			Type: economics.ExperimentType{
				Name: "e", MinLocations: 2, MaxLocations: 2,
				Resources: 1, HoldingTime: 0.5, Shape: 1,
			},
			Rate: 8,
		}},
		Horizon: 600,
		Seed:    41,
	}
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := coalition.NewCache(g)
	phi := coalition.Shapley(cache)
	if err := coalition.CheckEfficiency(cache, phi, 1e-9); err != nil {
		t.Fatal(err)
	}
	vn := cache.Value(combin.Full(3))
	if vn <= 0 {
		t.Fatal("grand coalition should accept traffic")
	}
	if phi[2] <= phi[0] || phi[2] <= phi[1] {
		t.Errorf("large station should earn the most: %v", phi)
	}
	// Symmetric stations earn (statistically) similar shares.
	if math.Abs(phi[0]-phi[1]) > 0.25*vn {
		t.Errorf("symmetric stations too far apart: %v", phi)
	}
	// 8 coalitions -> at most 8 simulations thanks to the cache.
	if cache.Evaluations() > 8 {
		t.Errorf("evaluations = %d", cache.Evaluations())
	}
}

func TestLossGameValidation(t *testing.T) {
	if _, err := NewGame(Config{Horizon: 10}); err == nil {
		t.Error("no stations must fail")
	}
	if _, err := NewGame(Config{
		Stations: []Station{{Label: "a", Count: 1, Capacity: 1}},
		Horizon:  0,
	}); err == nil {
		t.Error("invalid config must fail eagerly")
	}
}
