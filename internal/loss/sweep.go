package loss

import (
	"fmt"

	"fedshare/internal/economics"
	"fedshare/internal/stats"
)

// HoldingTimeSweep measures the relative federation gain (superadditivity
// gap normalized by offered value) as the holding time varies at constant
// offered load — the quantitative version of Sec. 3.2.1's "the smaller the
// t_k's, the more chances for the game to be super-additive".
//
// base describes the federation and a single arrival class whose Rate is
// interpreted at HoldingTime = 1; for each swept t the rate is scaled to
// Rate/t so the offered load (erlangs) stays fixed.
func HoldingTimeSweep(base Config, holds []float64) (stats.Series, error) {
	if len(base.Arrivals) != 1 {
		return stats.Series{}, fmt.Errorf("loss: sweep needs exactly one arrival class")
	}
	series := stats.Series{Name: "relative federation gain"}
	spec := base.Arrivals[0]
	for _, t := range holds {
		if t <= 0 || t > 1 {
			return stats.Series{}, fmt.Errorf("loss: holding time %g outside (0,1]", t)
		}
		cfg := base
		scaled := spec.Type
		scaled.HoldingTime = t
		cfg.Arrivals = []economics.ArrivalSpec{{Type: scaled, Rate: spec.Rate / t}}
		gap, err := SuperadditivityGap(cfg)
		if err != nil {
			return stats.Series{}, err
		}
		// Normalize by the offered value rate so different t are
		// comparable: offered = rate * u(minimum span).
		offered := (spec.Rate / t) * scaled.Utility().Eval(scaled.MinLocations)
		rel := 0.0
		if offered > 0 {
			rel = gap / offered
		}
		series.Add(t, rel)
	}
	return series, nil
}
