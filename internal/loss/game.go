package loss

import (
	"fmt"

	"fedshare/internal/coalition"
	"fedshare/internal/combin"
)

// NewGame lifts the loss-network simulation into a coalitional game — the
// paper's Sec. 6 future-work direction ("use a loss networks formulation
// and compute the Shapley value in a manner similar to Paschalidis and
// Liu"). Each station is one facility; V(S) is the long-run accepted-value
// rate when only coalition S's stations serve the full demand stream.
//
// Simulations share the base seed (common random numbers), which reduces
// the variance of marginal contributions V(S∪{i}) − V(S). Wrap the result
// with coalition.NewCache before running Shapley: each distinct coalition
// costs one simulation.
func NewGame(cfg Config) (coalition.Game, error) {
	n := len(cfg.Stations)
	if n == 0 {
		return nil, fmt.Errorf("loss: game needs at least one station")
	}
	if n > combin.MaxPlayers {
		return nil, fmt.Errorf("loss: at most %d stations", combin.MaxPlayers)
	}
	// Validate eagerly so Value can stay error-free.
	if _, err := Simulate(cfg); err != nil {
		return nil, err
	}
	return coalition.Func{
		Players: n,
		V: func(s combin.Set) float64 {
			if s.IsEmpty() {
				return 0
			}
			sub := cfg
			sub.Stations = nil
			for _, i := range s.Members() {
				sub.Stations = append(sub.Stations, cfg.Stations[i])
			}
			m, err := Simulate(sub)
			if err != nil {
				// Only reachable through data races on cfg; the eager
				// validation above covers all static error paths.
				panic(fmt.Sprintf("loss: coalition simulation failed: %v", err))
			}
			return m.ValueRate
		},
	}, nil
}
