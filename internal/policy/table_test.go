package policy

import (
	"math"
	"testing"

	"fedshare/internal/core"
)

func fig4Facilities() []core.Facility {
	return []core.Facility{
		{Name: "F1", Locations: 100, Resources: 1},
		{Name: "F2", Locations: 400, Resources: 1},
		{Name: "F3", Locations: 800, Resources: 1},
	}
}

func TestBuildWeightTable(t *testing.T) {
	tbl, err := BuildWeightTable(fig4Facilities(), []float64{0, 500, 1250}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 || len(tbl.Facilities) != 3 {
		t.Fatalf("table shape: %d rows, %d facilities", len(tbl.Rows), len(tbl.Facilities))
	}
	// Rows sorted by threshold; anchors from Fig 4.
	wantShares := [][]float64{
		{1.0 / 13, 4.0 / 13, 8.0 / 13},
		{4.0 / 39, 17.0 / 78, 53.0 / 78},
		{1.0 / 3, 1.0 / 3, 1.0 / 3},
	}
	for r, want := range wantShares {
		for i := range want {
			if math.Abs(tbl.Rows[r].Shares[i]-want[i]) > 1e-9 {
				t.Errorf("row %d shares %v, want %v", r, tbl.Rows[r].Shares, want)
				break
			}
		}
	}
}

func TestBuildWeightTableValidation(t *testing.T) {
	if _, err := BuildWeightTable(fig4Facilities(), nil, []int{1}); err == nil {
		t.Error("empty thresholds must fail")
	}
	if _, err := BuildWeightTable(fig4Facilities(), []float64{0}, nil); err == nil {
		t.Error("empty volumes must fail")
	}
	if _, err := BuildWeightTable(fig4Facilities(), []float64{-1}, []int{1}); err == nil {
		t.Error("negative threshold must fail")
	}
	if _, err := BuildWeightTable(fig4Facilities(), []float64{0}, []int{0}); err == nil {
		t.Error("zero volume must fail")
	}
}

func TestLookupNearest(t *testing.T) {
	tbl, err := BuildWeightTable(fig4Facilities(), []float64{0, 500, 1250}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	// 450 is nearest to 500.
	got := tbl.Lookup(450, 1)
	if math.Abs(got[1]-17.0/78) > 1e-9 {
		t.Errorf("lookup(450) shares %v, want the l=500 row", got)
	}
	// Far beyond the grid snaps to the closest edge.
	got = tbl.Lookup(5000, 1)
	if math.Abs(got[0]-1.0/3) > 1e-9 {
		t.Errorf("lookup(5000) shares %v, want the l=1250 row", got)
	}
	empty := &WeightTable{}
	if empty.Lookup(1, 1) != nil {
		t.Error("empty table lookup should be nil")
	}
}

func TestBlend(t *testing.T) {
	tbl, err := BuildWeightTable(fig4Facilities(), []float64{0, 1250}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	// 50/50 mixture of the easy (proportional) and all-must-cooperate
	// (equal) scenarios.
	blend, err := tbl.Blend(map[int]float64{0: 1, 1: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{
		(1.0/13 + 1.0/3) / 2,
		(4.0/13 + 1.0/3) / 2,
		(8.0/13 + 1.0/3) / 2,
	}
	for i := range want {
		if math.Abs(blend[i]-want[i]) > 1e-9 {
			t.Errorf("blend %v, want %v", blend, want)
			break
		}
	}
	sum := 0.0
	for _, b := range blend {
		sum += b
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("blend sums to %g", sum)
	}
	// Validation paths.
	if _, err := tbl.Blend(map[int]float64{}); err == nil {
		t.Error("empty mixture must fail")
	}
	if _, err := tbl.Blend(map[int]float64{9: 1}); err == nil {
		t.Error("out-of-range row must fail")
	}
	if _, err := tbl.Blend(map[int]float64{0: -1}); err == nil {
		t.Error("negative weight must fail")
	}
}
