package policy

import (
	"fmt"
	"math"
	"sort"

	"fedshare/internal/core"
	"fedshare/internal/economics"
	"fedshare/internal/sweep"
)

// WeightTable is the paper's proposed practical artifact (Sec. 3.2.3): the
// normalized Shapley values "computed off-line and used as heuristic
// evaluators of the individual contributions of facilities, given the
// mixture of expected users". It tabulates shares over a grid of demand
// scenarios so operators can look up (or interpolate) policy weights
// without running the game online.
type WeightTable struct {
	Facilities []string
	// Rows are sorted by (Threshold, Volume).
	Rows []WeightRow
}

// WeightRow is one precomputed scenario.
type WeightRow struct {
	Threshold float64 // diversity threshold l of the scenario
	Volume    int     // demand volume K
	Shares    []float64
}

// BuildWeightTable precomputes Shapley shares for every (threshold, volume)
// combination, holding the facility configuration fixed. Thresholds and
// volumes must be non-empty; volumes must be positive.
func BuildWeightTable(facilities []core.Facility, thresholds []float64, volumes []int) (*WeightTable, error) {
	if len(thresholds) == 0 || len(volumes) == 0 {
		return nil, fmt.Errorf("policy: weight table needs thresholds and volumes")
	}
	t := &WeightTable{}
	for _, f := range facilities {
		t.Facilities = append(t.Facilities, f.Name)
	}
	type scenario struct {
		l float64
		k int
	}
	var grid []scenario
	for _, l := range thresholds {
		if l < 0 {
			return nil, fmt.Errorf("policy: negative threshold %g", l)
		}
		for _, k := range volumes {
			if k <= 0 {
				return nil, fmt.Errorf("policy: non-positive volume %d", k)
			}
			grid = append(grid, scenario{l: l, k: k})
		}
	}
	// Scenarios are independent games: evaluate them on the sweep worker
	// pool, deterministic row order preserved by index.
	rows, err := sweep.RunErr(len(grid), 0, func(i int) (WeightRow, error) {
		s := grid[i]
		wl, err := economics.NewWorkload(economics.DemandClass{
			Type: economics.ExperimentType{
				Name: "scenario", MinLocations: s.l, MaxLocations: math.Inf(1),
				Resources: 1, HoldingTime: 1, Shape: 1,
			},
			Count: s.k,
		})
		if err != nil {
			return WeightRow{}, err
		}
		m, err := core.NewModel(append([]core.Facility(nil), facilities...), wl)
		if err != nil {
			return WeightRow{}, err
		}
		shares, err := core.ShapleyPolicy{}.Shares(m)
		if err != nil {
			return WeightRow{}, err
		}
		return WeightRow{Threshold: s.l, Volume: s.k, Shares: shares}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	sort.Slice(t.Rows, func(a, b int) bool {
		if t.Rows[a].Threshold != t.Rows[b].Threshold {
			return t.Rows[a].Threshold < t.Rows[b].Threshold
		}
		return t.Rows[a].Volume < t.Rows[b].Volume
	})
	return t, nil
}

// Lookup returns the precomputed shares of the grid point nearest to
// (threshold, volume) in scaled L1 distance — the operator-facing lookup
// the paper envisions instead of online Shapley computation.
func (t *WeightTable) Lookup(threshold float64, volume int) []float64 {
	if len(t.Rows) == 0 {
		return nil
	}
	best := 0
	bestD := math.Inf(1)
	// Scale by grid spans so both axes matter.
	lSpan, kSpan := 1.0, 1.0
	lMin, lMax := t.Rows[0].Threshold, t.Rows[0].Threshold
	kMin, kMax := t.Rows[0].Volume, t.Rows[0].Volume
	for _, r := range t.Rows {
		lMin = math.Min(lMin, r.Threshold)
		lMax = math.Max(lMax, r.Threshold)
		if r.Volume < kMin {
			kMin = r.Volume
		}
		if r.Volume > kMax {
			kMax = r.Volume
		}
	}
	if lMax > lMin {
		lSpan = lMax - lMin
	}
	if kMax > kMin {
		kSpan = float64(kMax - kMin)
	}
	for i, r := range t.Rows {
		d := math.Abs(r.Threshold-threshold)/lSpan + math.Abs(float64(r.Volume-volume))/kSpan
		if d < bestD {
			bestD = d
			best = i
		}
	}
	return append([]float64(nil), t.Rows[best].Shares...)
}

// Blend returns the demand-mixture-weighted shares: Σ_s weight_s ·
// shares(scenario_s), normalized. It implements "adjust the federation
// policies based on the expected mixture" (Sec. 4.3.2) for a table whose
// rows are the expected scenarios.
func (t *WeightTable) Blend(weights map[int]float64) ([]float64, error) {
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("policy: empty weight table")
	}
	n := len(t.Facilities)
	out := make([]float64, n)
	total := 0.0
	for idx, w := range weights {
		if idx < 0 || idx >= len(t.Rows) {
			return nil, fmt.Errorf("policy: row index %d out of range", idx)
		}
		if w < 0 {
			return nil, fmt.Errorf("policy: negative mixture weight %g", w)
		}
		for i := 0; i < n; i++ {
			out[i] += w * t.Rows[idx].Shares[i]
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("policy: mixture weights sum to zero")
	}
	for i := range out {
		out[i] /= total
	}
	return out, nil
}
