package policy

import (
	"math"
	"testing"

	"fedshare/internal/core"
	"fedshare/internal/economics"
	"fedshare/internal/stats"
)

func testModel(t *testing.T, l float64) *core.Model {
	t.Helper()
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "e", MinLocations: l, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewModel(Facility3(t), wl)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Facility3 returns the standard 3-facility configuration.
func Facility3(t *testing.T) []core.Facility {
	t.Helper()
	return []core.Facility{
		{Name: "F1", Locations: 100, Resources: 1},
		{Name: "F2", Locations: 400, Resources: 1},
		{Name: "F3", Locations: 800, Resources: 1},
	}
}

func TestNewDynamicsValidation(t *testing.T) {
	m := testModel(t, 0)
	if _, err := NewDynamics(m, nil, core.ShapleyPolicy{}); err == nil {
		t.Error("player/facility mismatch must fail")
	}
	players := []Player{{}, {}, {}}
	if _, err := NewDynamics(m, players, core.ShapleyPolicy{}); err == nil {
		t.Error("empty option lists must fail")
	}
	players = []Player{
		{Options: []Option{{Locations: -1, Resources: 1}}},
		{Options: []Option{{Locations: 1, Resources: 1}}},
		{Options: []Option{{Locations: 1, Resources: 1}}},
	}
	if _, err := NewDynamics(m, players, core.ShapleyPolicy{}); err == nil {
		t.Error("negative options must fail")
	}
}

func TestPayoffsMatchProfitsWithZeroCost(t *testing.T) {
	m := testModel(t, 0)
	players := make([]Player, 3)
	for i, f := range m.Facilities {
		players[i] = Player{Options: []Option{{Locations: f.Locations, Resources: f.Resources}}}
	}
	d, err := NewDynamics(m, players, core.ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	pays, err := d.Payoffs()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range pays {
		sum += p
	}
	if math.Abs(sum-1300) > 1e-6 {
		t.Errorf("zero-cost payoffs sum to %g, want 1300", sum)
	}
}

func TestBestResponsePrefersFreeCapacity(t *testing.T) {
	// With zero provision cost and l = 0, contributing more locations
	// always weakly raises one's Shapley payoff.
	m := testModel(t, 0)
	players := []Player{
		{Options: []Option{{Locations: 0, Resources: 1}, {Locations: 100, Resources: 1}}},
		{Options: []Option{{Locations: 400, Resources: 1}}},
		{Options: []Option{{Locations: 800, Resources: 1}}},
	}
	d, err := NewDynamics(m, players, core.ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	changed, err := d.BestResponse(0)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || d.Choice[0] != 1 {
		t.Errorf("player 0 should move to the 100-location option, choice=%d", d.Choice[0])
	}
}

func TestBestResponseRespectsCost(t *testing.T) {
	// A prohibitive per-location cost keeps the facility at zero provision.
	m := testModel(t, 0)
	players := []Player{
		{
			Options: []Option{{Locations: 0, Resources: 1}, {Locations: 100, Resources: 1}},
			Cost:    economics.Cost{Alpha: 1e6},
		},
		{Options: []Option{{Locations: 400, Resources: 1}}},
		{Options: []Option{{Locations: 800, Resources: 1}}},
	}
	d, err := NewDynamics(m, players, core.ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BestResponse(0); err != nil {
		t.Fatal(err)
	}
	if d.Choice[0] != 0 {
		t.Errorf("player 0 should stay at zero provision under prohibitive cost")
	}
}

func TestRunConvergesOnDominantStrategies(t *testing.T) {
	m := testModel(t, 0)
	grid := func(max int) []Option {
		var out []Option
		for l := 0; l <= max; l += max / 4 {
			out = append(out, Option{Locations: l, Resources: 1})
		}
		return out
	}
	players := []Player{
		{Options: grid(100)},
		{Options: grid(400)},
		{Options: grid(800)},
	}
	d, err := NewDynamics(m, players, core.ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := d.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Converged {
		t.Fatal("zero-cost provision game must converge")
	}
	// Everyone provides the maximum.
	for i, ci := range eq.Choice {
		if ci != len(players[i].Options)-1 {
			t.Errorf("player %d stopped at option %d, want max", i, ci)
		}
	}
	sum := 0.0
	for _, p := range eq.Payoffs {
		sum += p
	}
	if math.Abs(sum-1300) > 1e-6 {
		t.Errorf("equilibrium payoffs sum to %g", sum)
	}
}

func TestBestResponseOutOfRange(t *testing.T) {
	m := testModel(t, 0)
	players := []Player{
		{Options: []Option{{Locations: 100, Resources: 1}}},
		{Options: []Option{{Locations: 400, Resources: 1}}},
		{Options: []Option{{Locations: 800, Resources: 1}}},
	}
	d, err := NewDynamics(m, players, core.ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BestResponse(5); err == nil {
		t.Error("out-of-range player must fail")
	}
}

func TestJumps(t *testing.T) {
	var s stats.Series
	s.Add(0, 0)
	s.Add(1, 1)
	s.Add(2, 1.5)
	s.Add(3, 9) // jump of 7.5 over range 10
	s.Add(4, 10)
	jumps := Jumps(s, 0.5)
	if len(jumps) != 1 {
		t.Fatalf("got %d jumps, want 1: %+v", len(jumps), jumps)
	}
	if jumps[0].X != 3 || math.Abs(jumps[0].Delta-7.5) > 1e-12 {
		t.Errorf("jump = %+v", jumps[0])
	}
	if Jumps(s, 0) != nil {
		t.Error("frac <= 0 returns nil")
	}
	flat := stats.Series{Points: []stats.Point{{X: 0, Y: 2}, {X: 1, Y: 2}}}
	if Jumps(flat, 0.1) != nil {
		t.Error("flat series has no jumps")
	}
}

func TestShapleyIncentiveJumpsAtThresholds(t *testing.T) {
	// Fig 9: with a diversity threshold, facility 1's Shapley profit has
	// jumps as L1 sweeps; the proportional rule stays smooth.
	m := testModel(t, 400)
	var gridVals []int
	for l := 0; l <= 1000; l += 50 {
		gridVals = append(gridVals, l)
	}
	shap, err := core.IncentiveCurve(m, 0, gridVals, core.ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	prop, err := core.IncentiveCurve(m, 0, gridVals, core.ProportionalPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	shapJumps := Jumps(shap, 0.12)
	propJumps := Jumps(prop, 0.12)
	if len(shapJumps) == 0 {
		t.Error("Shapley incentive curve should jump at threshold points")
	}
	if len(propJumps) != 0 {
		t.Errorf("proportional curve should be smooth, got %+v", propJumps)
	}
}
