// Package policy implements the decision stage of the federation game
// (Sec. 3.3 and Fig 3 of the paper): given an agreed sharing rule, each
// facility chooses how much to contribute by trading the extra profit
// against its provision cost. The package provides payoff evaluation,
// best-response dynamics, equilibrium search, and the threshold-jump
// analysis behind the paper's Fig 9 stability caveat.
package policy

import (
	"fmt"
	"math"

	"fedshare/internal/core"
	"fedshare/internal/economics"
	"fedshare/internal/stats"
)

// Option is one provision level a facility may choose.
type Option struct {
	Locations int
	Resources float64
}

// Player couples a facility's strategy space with its cost model.
type Player struct {
	// Options are the provision levels available (e.g. a grid of location
	// counts). Must be nonempty.
	Options []Option
	// Cost maps a chosen option to provision cost (evaluated as
	// Cost.Eval(locations, resources, availability)).
	Cost economics.Cost
}

// Dynamics runs best-response dynamics over provision choices.
type Dynamics struct {
	Model   *core.Model
	Players []Player
	Policy  core.Policy
	// Choice[i] is player i's current option index.
	Choice []int
}

// NewDynamics validates and builds a dynamics instance; players' initial
// choices default to option 0.
func NewDynamics(m *core.Model, players []Player, p core.Policy) (*Dynamics, error) {
	if len(players) != m.N() {
		return nil, fmt.Errorf("policy: %d players for %d facilities", len(players), m.N())
	}
	for i, pl := range players {
		if len(pl.Options) == 0 {
			return nil, fmt.Errorf("policy: player %d has no options", i)
		}
		for _, o := range pl.Options {
			if o.Locations < 0 || o.Resources < 0 {
				return nil, fmt.Errorf("policy: player %d has negative option", i)
			}
		}
	}
	return &Dynamics{
		Model:   m,
		Players: players,
		Policy:  p,
		Choice:  make([]int, len(players)),
	}, nil
}

// apply writes the current choices into the model.
func (d *Dynamics) apply() {
	for i, ci := range d.Choice {
		o := d.Players[i].Options[ci]
		d.Model.Facilities[i].Locations = o.Locations
		d.Model.Facilities[i].Resources = o.Resources
	}
	d.Model.Invalidate()
}

// Payoffs returns every player's net payoff (share of V(N) minus provision
// cost) at the current choice profile.
func (d *Dynamics) Payoffs() ([]float64, error) {
	d.apply()
	profits, err := core.Profits(d.Model, d.Policy)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(profits))
	for i, p := range profits {
		o := d.Players[i].Options[d.Choice[i]]
		f := d.Model.Facilities[i]
		avail := f.Availability
		if avail == 0 {
			avail = 1
		}
		out[i] = p - d.Players[i].Cost.Eval(float64(o.Locations), o.Resources, avail)
	}
	return out, nil
}

// BestResponse moves player i to its payoff-maximizing option holding
// everyone else fixed. It reports whether the choice changed.
func (d *Dynamics) BestResponse(i int) (bool, error) {
	if i < 0 || i >= len(d.Players) {
		return false, fmt.Errorf("policy: player %d out of range", i)
	}
	orig := d.Choice[i]
	bestIdx, bestPay := orig, math.Inf(-1)
	for ci := range d.Players[i].Options {
		d.Choice[i] = ci
		pays, err := d.Payoffs()
		if err != nil {
			d.Choice[i] = orig
			return false, err
		}
		if pays[i] > bestPay+1e-9 {
			bestPay = pays[i]
			bestIdx = ci
		}
	}
	d.Choice[i] = bestIdx
	d.apply()
	return bestIdx != orig, nil
}

// Equilibrium is the outcome of best-response dynamics.
type Equilibrium struct {
	// Converged reports whether a fixed point was reached.
	Converged bool
	// Rounds is the number of full sweeps performed.
	Rounds int
	// Choice is the final option index per player.
	Choice []int
	// Payoffs are the final net payoffs.
	Payoffs []float64
}

// Run sweeps best responses round-robin until no player moves or maxRounds
// is exhausted.
func (d *Dynamics) Run(maxRounds int) (*Equilibrium, error) {
	if maxRounds <= 0 {
		maxRounds = 50
	}
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		moved := false
		for i := range d.Players {
			changed, err := d.BestResponse(i)
			if err != nil {
				return nil, err
			}
			moved = moved || changed
		}
		if !moved {
			pays, err := d.Payoffs()
			if err != nil {
				return nil, err
			}
			return &Equilibrium{
				Converged: true,
				Rounds:    rounds + 1,
				Choice:    append([]int(nil), d.Choice...),
				Payoffs:   pays,
			}, nil
		}
	}
	pays, err := d.Payoffs()
	if err != nil {
		return nil, err
	}
	return &Equilibrium{
		Converged: false,
		Rounds:    rounds,
		Choice:    append([]int(nil), d.Choice...),
		Payoffs:   pays,
	}, nil
}

// Jump is a detected discontinuity in an incentive curve.
type Jump struct {
	X     float64 // sweep value where the jump lands
	Delta float64 // payoff change across one grid step
}

// Jumps scans a profit-versus-provision series for steps whose magnitude
// exceeds frac times the series' total range — the "powerful incentives
// around threshold points" instability the paper flags for the Shapley rule
// (Sec. 4.4).
func Jumps(s stats.Series, frac float64) []Jump {
	if len(s.Points) < 2 || frac <= 0 {
		return nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		lo = math.Min(lo, p.Y)
		hi = math.Max(hi, p.Y)
	}
	span := hi - lo
	if span == 0 {
		return nil
	}
	var jumps []Jump
	for i := 1; i < len(s.Points); i++ {
		d := s.Points[i].Y - s.Points[i-1].Y
		if math.Abs(d) >= frac*span {
			jumps = append(jumps, Jump{X: s.Points[i].X, Delta: d})
		}
	}
	return jumps
}
