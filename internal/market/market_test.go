package market

import (
	"math"
	"testing"

	"fedshare/internal/allocation"
)

func pool3(l1, l2, l3 int, r1, r2, r3 float64) allocation.Pool {
	return allocation.Pool{Classes: []allocation.Class{
		{Label: "f1", Count: l1, Capacity: r1},
		{Label: "f2", Count: l2, Capacity: r2},
		{Label: "f3", Count: l3, Capacity: r3},
	}}
}

func TestNewBid(t *testing.T) {
	b := NewBid("exp", 100, 1, 0)
	if b.Quantity != 100 || b.Amount != 100 || b.Resources != 1 {
		t.Errorf("bid = %+v", b)
	}
	b = NewBid("tiny", 0, 1, 2)
	if b.Quantity != 1 {
		t.Errorf("zero-threshold bid quantity %d", b.Quantity)
	}
	b = NewBid("convex", 10, 1.2, 1)
	if math.Abs(b.Amount-math.Pow(10, 1.2)) > 1e-9 {
		t.Errorf("convex bid amount %g", b.Amount)
	}
}

func TestBidValidate(t *testing.T) {
	for _, b := range []Bid{
		{Quantity: 0, Amount: 1, Resources: 1},
		{Quantity: 1, Amount: -1, Resources: 1},
		{Quantity: 1, Amount: 1, Resources: 0},
	} {
		if err := b.Validate(); err == nil {
			t.Errorf("bid %+v should fail", b)
		}
	}
}

func TestSpotAbundantSupplyZeroPrice(t *testing.T) {
	p := pool3(100, 400, 800, 1, 1, 1)
	bids := []Bid{NewBid("a", 50, 1, 1), NewBid("b", 30, 1, 1)}
	res, err := ClearSpot(p, bids)
	if err != nil {
		t.Fatal(err)
	}
	if res.Price != 0 {
		t.Errorf("price %g under abundant supply, want 0", res.Price)
	}
	if !res.Accepted[0] || !res.Accepted[1] {
		t.Error("all bids should trade")
	}
	if res.SlotsTraded != 80 {
		t.Errorf("slots traded %d", res.SlotsTraded)
	}
	if res.Welfare != 80 {
		t.Errorf("welfare %g", res.Welfare)
	}
}

func TestSpotScarcitySetsPrice(t *testing.T) {
	// Supply 10 slots; three bids of 6 slots each at different densities.
	p := allocation.Pool{Classes: []allocation.Class{{Label: "s", Count: 10, Capacity: 1}}}
	bids := []Bid{
		{Label: "hi", Quantity: 6, Amount: 18, Resources: 1}, // density 3
		{Label: "mid", Quantity: 4, Amount: 8, Resources: 1}, // density 2
		{Label: "lo", Quantity: 6, Amount: 6, Resources: 1},  // density 1
	}
	res, err := ClearSpot(p, bids)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted[0] || !res.Accepted[1] || res.Accepted[2] {
		t.Errorf("acceptance = %v", res.Accepted)
	}
	if res.Price != 1 {
		t.Errorf("price %g, want 1 (first excluded bid's density)", res.Price)
	}
	if res.SlotsTraded != 10 {
		t.Errorf("slots %d", res.SlotsTraded)
	}
}

func TestSpotStrandedDiversityBid(t *testing.T) {
	// Plenty of raw slots, but only 5 distinct locations: a bid needing 8
	// distinct locations clears on price yet cannot be placed.
	p := allocation.Pool{Classes: []allocation.Class{{Label: "s", Count: 5, Capacity: 10}}}
	bids := []Bid{{Label: "div", Quantity: 8, Amount: 80, Resources: 1}}
	res, err := ClearSpot(p, bids)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stranded != 1 {
		t.Errorf("stranded %d, want 1", res.Stranded)
	}
	if res.Accepted[0] {
		t.Error("unplaceable bid must end rejected")
	}
	if res.Welfare != 0 {
		t.Errorf("welfare %g", res.Welfare)
	}
}

func TestSpotRevenueFollowsCapacityNotDiversity(t *testing.T) {
	// The market's implicit sharing is capacity-proportional — equal
	// L_i·R_i means equal revenue, no matter how diversity-relevant each
	// facility is.
	p := pool3(100, 400, 800, 80, 20, 10) // all L*R = 8000
	var bids []Bid
	for i := 0; i < 60; i++ {
		bids = append(bids, NewBid("b", 500, 1, 1))
	}
	res, err := ClearSpot(p, bids)
	if err != nil {
		t.Fatal(err)
	}
	shares := Shares(res.RevenueByClass)
	if res.Price == 0 {
		t.Skip("no scarcity, no revenue to share")
	}
	for i, s := range shares {
		if math.Abs(s-1.0/3) > 1e-9 {
			t.Errorf("market share[%d] = %g, want exactly 1/3", i, s)
		}
	}
}

func TestCombinatorialWinnersAreFeasible(t *testing.T) {
	p := pool3(3, 2, 1, 1, 1, 1) // 6 locations
	bids := []Bid{
		NewBid("big", 5, 1, 1),
		NewBid("small", 3, 1, 1),
	}
	res, err := RunCombinatorial(p, bids)
	if err != nil {
		t.Fatal(err)
	}
	// 5 + 3 > 6 slots: only one can win; density equal (1), stable order
	// keeps "big" first.
	if !res.Winning[0] || res.Winning[1] {
		t.Errorf("winners = %v", res.Winning)
	}
	if res.Payments[0] != 5 || res.Payments[1] != 0 {
		t.Errorf("payments = %v", res.Payments)
	}
	if res.Welfare != 5 {
		t.Errorf("welfare %g", res.Welfare)
	}
}

func TestCombinatorialRevenueByConsumption(t *testing.T) {
	p := pool3(100, 400, 800, 1, 1, 1)
	bids := []Bid{NewBid("all", 1300, 1, 1)}
	res, err := RunCombinatorial(p, bids)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Winning[0] {
		t.Fatal("the single bid should win")
	}
	shares := Shares(res.RevenueByClass)
	// Consumption spreads over all 1300 locations: shares = L_i/ΣL.
	want := []float64{100.0 / 1300, 400.0 / 1300, 800.0 / 1300}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 0.01 {
			t.Errorf("share[%d] = %g, want %g", i, shares[i], want[i])
		}
	}
}

func TestMarketIgnoresComplementarity(t *testing.T) {
	// The Sec. 5 claim, quantified: in the Fig 4 setting at l = 500 the
	// Shapley shares are (4/39, 17/78, 53/78); both market mechanisms
	// give facility 2 at least its proportional 4/13 ≈ 0.308, far above
	// its marginal worth 17/78 ≈ 0.218.
	p := pool3(100, 400, 800, 1, 1, 1)
	bids := []Bid{NewBid("exp", 500, 1, 1)}
	auction, err := RunCombinatorial(p, bids)
	if err != nil {
		t.Fatal(err)
	}
	aShares := Shares(auction.RevenueByClass)
	shapley2 := 17.0 / 78
	if aShares[1] <= shapley2+0.05 {
		t.Errorf("auction share for facility 2 = %g, expected well above Shapley %g",
			aShares[1], shapley2)
	}
}

func TestEmptyInputs(t *testing.T) {
	res, err := ClearSpot(allocation.Pool{}, nil)
	if err != nil || res.SlotsTraded != 0 {
		t.Errorf("empty spot: %v %+v", err, res)
	}
	ares, err := RunCombinatorial(allocation.Pool{}, nil)
	if err != nil || ares.Welfare != 0 {
		t.Errorf("empty auction: %v %+v", err, ares)
	}
	if _, err := ClearSpot(allocation.Pool{}, []Bid{{Quantity: 0, Amount: 1, Resources: 1}}); err == nil {
		t.Error("invalid bid must fail")
	}
	if _, err := RunCombinatorial(allocation.Pool{}, []Bid{{Quantity: 0, Amount: 1, Resources: 1}}); err == nil {
		t.Error("invalid bid must fail")
	}
}

func TestShares(t *testing.T) {
	s := Shares([]float64{1, 3})
	if s[0] != 0.25 || s[1] != 0.75 {
		t.Errorf("shares = %v", s)
	}
	z := Shares([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero revenue shares = %v", z)
	}
}

func BenchmarkClearSpot(b *testing.B) {
	p := pool3(100, 400, 800, 80, 20, 10)
	var bids []Bid
	for i := 0; i < 50; i++ {
		bids = append(bids, NewBid("b", 300, 1, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ClearSpot(p, bids); err != nil {
			b.Fatal(err)
		}
	}
}
