// Package market implements the market-based baselines the paper compares
// its coalitional approach against (Sec. 5): a GridEcon-style uniform-price
// spot market trading location-slots, and a Bellagio-style first-price
// combinatorial auction. Both share profit *implicitly* — the spot market
// by capacity sold, the auction by resources consumed — and therefore
// ignore the complementarities (diversity) that the Shapley value prices;
// quantifying that gap is this package's purpose.
package market

import (
	"fmt"
	"math"
	"sort"

	"fedshare/internal/allocation"
)

// Bid is one experiment's demand expressed for the market mechanisms: it
// wants Quantity distinct locations (all or nothing, reflecting the
// diversity threshold) and is willing to pay Amount in total.
type Bid struct {
	Label    string
	Quantity int     // distinct locations required
	Amount   float64 // total willingness to pay
	// Resources per location (r), defaults to 1 in NewBid.
	Resources float64
}

// NewBid derives a bid from a threshold-utility experiment: it asks for its
// minimum viable package (the threshold) and bids its utility for it —
// truthful bidding under the paper's utility model.
func NewBid(label string, minLocations int, shape float64, resources float64) Bid {
	if resources <= 0 {
		resources = 1
	}
	q := minLocations
	if q <= 0 {
		q = 1
	}
	return Bid{
		Label:     label,
		Quantity:  q,
		Amount:    math.Pow(float64(q), shape),
		Resources: resources,
	}
}

// Validate checks a bid.
func (b Bid) Validate() error {
	if b.Quantity <= 0 {
		return fmt.Errorf("market: bid %s has non-positive quantity", b.Label)
	}
	if b.Amount < 0 {
		return fmt.Errorf("market: bid %s has negative amount", b.Label)
	}
	if b.Resources <= 0 {
		return fmt.Errorf("market: bid %s has non-positive resources", b.Label)
	}
	return nil
}

// SpotResult is the outcome of the uniform-price slot market.
type SpotResult struct {
	// Price is the uniform per-slot clearing price (0 when supply exceeds
	// all demand).
	Price float64
	// Accepted[i] reports whether bid i trades.
	Accepted []bool
	// SlotsTraded is the total slots sold.
	SlotsTraded int
	// RevenueByClass attributes revenue to pool classes in proportion to
	// the capacity they offer — the market's implicit sharing rule.
	RevenueByClass []float64
	// Stranded counts accepted-by-price bids that could not actually be
	// served with *distinct* locations: the efficiency the slot
	// abstraction silently loses by treating slots as fungible.
	Stranded int
	// Welfare is the total value of bids actually served.
	Welfare float64
}

// ClearSpot runs the uniform-price double auction: bids sorted by per-slot
// price, supply is the pool's total slot capacity at zero reserve (sunk
// provision costs, Sec. 2.3.2), and the price is set by the first excluded
// bid (or zero when everything trades). After price-based acceptance, each
// winner must actually receive Quantity *distinct* locations; winners that
// cannot are stranded and removed (without re-clearing, as a real slot
// market would discover only at placement time).
func ClearSpot(pool allocation.Pool, bids []Bid) (*SpotResult, error) {
	for _, b := range bids {
		if err := b.Validate(); err != nil {
			return nil, err
		}
	}
	res := &SpotResult{
		Accepted:       make([]bool, len(bids)),
		RevenueByClass: make([]float64, len(pool.Classes)),
	}
	// Total fungible slot supply (the abstraction under test).
	supply := 0
	for _, c := range pool.Classes {
		if len(bids) > 0 {
			supply += c.Count * int(math.Floor(c.Capacity/bids[0].Resources))
		}
	}
	if supply == 0 || len(bids) == 0 {
		return res, nil
	}
	order := make([]int, len(bids))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa := bids[order[a]].Amount / float64(bids[order[a]].Quantity)
		pb := bids[order[b]].Amount / float64(bids[order[b]].Quantity)
		return pa > pb
	})
	remaining := supply
	price := 0.0
	for _, i := range order {
		b := bids[i]
		if b.Quantity <= remaining {
			res.Accepted[i] = true
			remaining -= b.Quantity
		} else {
			// First excluded bid sets the uniform price.
			price = b.Amount / float64(b.Quantity)
			break
		}
	}
	res.Price = price

	// Placement check: winners need distinct locations. Serve in price
	// order on a per-location model.
	var reqs []allocation.Request
	var winners []int
	for _, i := range order {
		if res.Accepted[i] {
			winners = append(winners, i)
			reqs = append(reqs, allocation.Request{
				Min: bids[i].Quantity, Max: bids[i].Quantity,
				Shape: 1, Resources: bids[i].Resources, Label: bids[i].Label,
			})
		}
	}
	placed := allocation.Solve(pool, reqs)
	for k, i := range winners {
		if placed.X[k] < bids[i].Quantity {
			res.Accepted[i] = false
			res.Stranded++
			continue
		}
		res.SlotsTraded += bids[i].Quantity
		res.Welfare += bids[i].Amount
	}
	// Revenue: price × slots, attributed by offered capacity (the market
	// cannot tell locations apart).
	totalCap := pool.TotalCapacity()
	if totalCap > 0 {
		revenue := res.Price * float64(res.SlotsTraded)
		for c, cl := range pool.Classes {
			res.RevenueByClass[c] = revenue * float64(cl.Count) * cl.Capacity / totalCap
		}
	}
	return res, nil
}

// AuctionResult is the outcome of the combinatorial auction.
type AuctionResult struct {
	// Winning[i] reports whether bid i won its bundle.
	Winning []bool
	// Payments[i] is bid i's payment (first price: its bid if winning).
	Payments []float64
	// RevenueByClass attributes the collected payments to pool classes in
	// proportion to resources consumed (Bellagio's implicit sharing).
	RevenueByClass []float64
	// Welfare is the total accepted bid value.
	Welfare float64
}

// RunCombinatorial runs a Bellagio-style first-price combinatorial auction:
// winner determination maximizes accepted bid value subject to the
// location-capacity constraints (exactly the commercial allocation problem
// (2)), and winners pay their bids.
func RunCombinatorial(pool allocation.Pool, bids []Bid) (*AuctionResult, error) {
	for _, b := range bids {
		if err := b.Validate(); err != nil {
			return nil, err
		}
	}
	res := &AuctionResult{
		Winning:        make([]bool, len(bids)),
		Payments:       make([]float64, len(bids)),
		RevenueByClass: make([]float64, len(pool.Classes)),
	}
	if len(bids) == 0 {
		return res, nil
	}
	// Winner determination via the allocation engine: all-or-nothing
	// bundles become Min == Max requests. Utility must equal the bid, so
	// scale: allocation maximizes Σ x^1 over served requests with x =
	// Quantity; when bids deviate from x^1, run the greedy engine on a
	// value-ordered admission instead. For the paper's truthful threshold
	// bids (Amount = Quantity^d), d = 1 bids make the engine exact; other
	// shapes are served greedily by bid density.
	order := make([]int, len(bids))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da := bids[order[a]].Amount / float64(bids[order[a]].Quantity)
		db := bids[order[b]].Amount / float64(bids[order[b]].Quantity)
		return da > db
	})
	// Greedy by density with exact placement per step.
	var accepted []int
	for _, i := range order {
		trial := append([]int(nil), accepted...)
		trial = append(trial, i)
		reqs := make([]allocation.Request, len(trial))
		for k, j := range trial {
			reqs[k] = allocation.Request{
				Min: bids[j].Quantity, Max: bids[j].Quantity,
				Shape: 1, Resources: bids[j].Resources, Label: bids[j].Label,
			}
		}
		placed := allocation.Solve(pool, reqs)
		feasible := true
		for k, j := range trial {
			if placed.X[k] < bids[j].Quantity {
				feasible = false
				_ = j
				break
			}
		}
		if feasible {
			accepted = trial
		}
	}
	reqs := make([]allocation.Request, len(accepted))
	for k, j := range accepted {
		reqs[k] = allocation.Request{
			Min: bids[j].Quantity, Max: bids[j].Quantity,
			Shape: 1, Resources: bids[j].Resources, Label: bids[j].Label,
		}
	}
	var consumed []float64
	if len(accepted) > 0 {
		placed := allocation.Solve(pool, reqs)
		consumed = placed.ConsumedByClass
	} else {
		consumed = make([]float64, len(pool.Classes))
	}
	for _, j := range accepted {
		res.Winning[j] = true
		res.Payments[j] = bids[j].Amount
		res.Welfare += bids[j].Amount
	}
	totalConsumed := 0.0
	for _, c := range consumed {
		totalConsumed += c
	}
	if totalConsumed > 0 {
		for c := range consumed {
			res.RevenueByClass[c] = res.Welfare * consumed[c] / totalConsumed
		}
	}
	return res, nil
}

// Shares normalizes a per-class revenue vector into shares (all zeros when
// there is no revenue).
func Shares(revenue []float64) []float64 {
	total := 0.0
	for _, r := range revenue {
		total += r
	}
	out := make([]float64, len(revenue))
	if total == 0 {
		return out
	}
	for i, r := range revenue {
		out[i] = r / total
	}
	return out
}
