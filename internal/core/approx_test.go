package core

import (
	"math"
	"strings"
	"testing"

	"fedshare/internal/coalition"
	"fedshare/internal/combin"
	"fedshare/internal/economics"
)

// heteroModel builds an n-facility federation drawn from k facility
// templates (so it has exploitable symmetry), under a batch workload that
// keeps every coalition value nontrivial.
func heteroModel(t *testing.T, n, k int) *Model {
	t.Helper()
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "batch", MinLocations: 10, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := make([]Facility, n)
	for i := range fs {
		tpl := i % k
		fs[i] = Facility{
			Name:      "F" + string(rune('A'+tpl)) + "-" + string(rune('0'+i/k%10)),
			Locations: 5 + 3*tpl,
			Resources: 1 + 0.5*float64(tpl),
		}
		fs[i].Name = fsName(i, tpl)
	}
	m, err := NewModel(fs, wl)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func fsName(i, tpl int) string {
	return "F" + strings.Repeat("x", tpl+1) + "-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestValueMembersMatchesValue(t *testing.T) {
	m := heteroModel(t, 8, 3)
	members := make([]int, 0, 8)
	for mask := combin.Set(1); mask < 1<<8; mask++ {
		members = members[:0]
		for _, i := range mask.Members() {
			members = append(members, i)
		}
		if got, want := m.ValueMembers(members), m.Value(mask); got != want {
			t.Fatalf("coalition %v: ValueMembers %.12f vs Value %.12f", members, got, want)
		}
	}
	// Member order must not matter.
	if m.ValueMembers([]int{3, 0, 6}) != m.ValueMembers([]int{6, 3, 0}) {
		t.Error("ValueMembers depends on member order")
	}
}

func TestClassStructureDetection(t *testing.T) {
	m := heteroModel(t, 12, 3)
	cs := m.ClassStructure()
	if cs == nil {
		t.Fatal("no structure detected on a templated federation")
	}
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	if cs.K() != 3 {
		t.Fatalf("detected %d classes, want 3", cs.K())
	}
	if cs.N() != 12 {
		t.Fatalf("structure covers %d players, want 12", cs.N())
	}
	// The collapsed characteristic function must agree with the direct one
	// on every count vector reachable from a member list.
	counts := make([]int, 3)
	members := []int{0, 1, 3, 4, 6} // classes 0,1,0,1,0 under i%3 templating
	for _, p := range members {
		counts[cs.ClassOf[p]]++
	}
	if got, want := cs.Value(counts), m.ValueMembers(members); got != want {
		t.Errorf("collapsed V(%v) = %.12f, direct %.12f", counts, got, want)
	}
}

func TestClassStructureNilForOverlapModels(t *testing.T) {
	m := heteroModel(t, 6, 2)
	m.Overlap = [][]int{{0}, {1}, {2}, {3}, {4}, {5}}
	if m.ClassStructure() != nil {
		t.Error("overlap models must not report symmetry structure")
	}
}

func TestApproxPolicyMatchesExactSmall(t *testing.T) {
	// On a snapshot-eligible model the approx policy's auto dispatch must
	// return the exact kernel shares.
	m := fig4Model(t, 500, true)
	exact := shares(t, m, ShapleyPolicy{})
	approx := shares(t, m, ApproxShapleyPolicy{Samples: 50, Seed: 1})
	wantVec(t, approx, exact, 1e-9, "approx policy on small model")
}

func TestApproxPolicyCollapsesTemplatedFederation(t *testing.T) {
	// 30 facilities from 3 templates: 2^30 is out of kernel range but the
	// class lattice (11^3) is trivially exact. Dispatch must go exact-
	// collapsed, and within-template shares must be identical.
	m := heteroModel(t, 30, 3)
	res, err := ApproxShapleyPolicy{Seed: 1}.Result(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != coalition.EngineExactCollapsed {
		t.Fatalf("engine %q, want %q", res.Method, coalition.EngineExactCollapsed)
	}
	sum := 0.0
	for _, p := range res.Phi {
		sum += p
	}
	vn := m.GrandValue()
	if math.Abs(sum-vn) > 1e-6*vn {
		t.Errorf("Σφ = %.9f, V(N) = %.9f", sum, vn)
	}
	for p := 3; p < 30; p++ {
		if res.Phi[p] != res.Phi[p%3] {
			t.Errorf("facilities %d and %d share a template but differ", p%3, p)
		}
	}
}

func TestLargeFederationBeyondBitmaskBound(t *testing.T) {
	// 80 pairwise-distinct facilities: NewModel must accept it, GrandValue
	// and shares must work through the member-list tier (no symmetry to
	// collapse, so this is the plain sampler), and the bitmask policies
	// must refuse cleanly instead of silently corrupting.
	m := heteroModel(t, 80, 80)
	vn := m.GrandValue()
	if vn <= 0 {
		t.Fatalf("V(N) = %g, want > 0", vn)
	}
	s, err := ApproxShapleyPolicy{Samples: 160, Seed: 2}.Shares(m)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("normalized shares sum to %.12f", sum)
	}
	for _, p := range []Policy{MonteCarloShapleyPolicy{Samples: 10}, NucleolusPolicy{}, BanzhafPolicy{}, UserWeightedShapleyPolicy{}} {
		if _, err := p.Shares(m); err == nil {
			t.Errorf("policy %s did not refuse a 100-facility model", p.Name())
		}
	}
	if _, err := Analyze(m); err == nil {
		t.Error("Analyze did not refuse a 100-facility model")
	}
	if _, err := m.Table(); err == nil {
		t.Error("Table did not refuse a 100-facility model")
	}
}

func TestShapleyPolicyAutoDispatchesLargeModels(t *testing.T) {
	// The default policy must keep working (via the approximation tier)
	// when the federation outgrows the snapshot bound.
	m := heteroModel(t, 40, 2)
	s := shares(t, m, ShapleyPolicy{})
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %.12f", sum)
	}
	// Two templates: exact collapse applies, so within-template equality
	// is exact.
	for p := 2; p < 40; p++ {
		if s[p] != s[p%2] {
			t.Errorf("facilities %d and %d share a template but differ", p%2, p)
		}
	}
}

func TestApproxPolicyRelativeCITarget(t *testing.T) {
	// A heterogeneous 26-facility federation with no two facilities alike:
	// no symmetry to collapse, so the CI-targeted sampler must run and
	// converge to 1% of V(N).
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "batch", MinLocations: 5, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := make([]Facility, 26)
	for i := range fs {
		fs[i] = Facility{Name: string(rune('A' + i)), Locations: 3 + i, Resources: 1 + float64(i)*0.1}
	}
	m, err := NewModel(fs, wl)
	if err != nil {
		t.Fatal(err)
	}
	p := ApproxShapleyPolicy{CITarget: 0.01, Seed: 3}
	res, err := p.Result(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != coalition.EngineApprox {
		t.Fatalf("engine %q, want %q", res.Method, coalition.EngineApprox)
	}
	if !res.Converged {
		t.Fatalf("did not converge (%d samples)", res.Samples)
	}
	vn := m.GrandValue()
	for i, ci := range res.CIHalf {
		if ci > 0.01*vn {
			t.Errorf("facility %d: CI half-width %g above 1%% of V(N)=%g", i, ci, vn)
		}
	}
	if _, err := (ApproxShapleyPolicy{CITarget: -1}).Shares(m); err == nil {
		t.Error("negative CI target accepted")
	}
}
