package core

import "fmt"

// SubFederation restricts the model to the facilities for which keep
// returns true — the degraded-mode valuation entry point: when federation
// peers partition away, the coordinator prices the live sub-federation
// with the same value function instead of blocking on the full coalition.
//
// It returns the restricted model, the excluded facility names in input
// order, and an error if nothing would remain. When every facility is
// kept the receiver itself is returned (no copy, caches intact). The
// restricted model shares the receiver's demand and Mu; an Overlap
// structure is filtered to the kept rows.
func (m *Model) SubFederation(keep func(name string) bool) (*Model, []string, error) {
	var kept []Facility
	var keptIdx []int
	var excluded []string
	for i, f := range m.Facilities {
		if keep(f.Name) {
			kept = append(kept, f)
			keptIdx = append(keptIdx, i)
		} else {
			excluded = append(excluded, f.Name)
		}
	}
	if len(excluded) == 0 {
		return m, nil, nil
	}
	if len(kept) == 0 {
		return nil, excluded, fmt.Errorf("core: sub-federation excludes every facility")
	}
	sub, err := NewModel(kept, m.Demand)
	if err != nil {
		return nil, excluded, err
	}
	sub.Mu = m.Mu
	if m.Overlap != nil {
		sub.Overlap = make([][]int, len(keptIdx))
		for j, i := range keptIdx {
			sub.Overlap[j] = m.Overlap[i]
		}
	}
	return sub, excluded, nil
}
