package core

import (
	"math"
	"testing"
)

func TestDiversityAblationFig4(t *testing.T) {
	// At l = 500 the diversity premium must favor the location-rich
	// facility 3 and penalize facility 2 (whose proportional weight
	// overstates its marginal worth).
	m := fig4Model(t, 500, false)
	ab, err := DiversityAblation(m, ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Counterfactual: l = 0 makes Shapley == proportional == (1/13, 4/13,
	// 8/13).
	wantVec(t, ab.NoThresholdShares, []float64{1.0 / 13, 4.0 / 13, 8.0 / 13}, 1e-9, "no-threshold shares")
	if ab.Premium[2] <= 0 {
		t.Errorf("facility 3 diversity premium %g, want positive", ab.Premium[2])
	}
	if ab.Premium[1] >= 0 {
		t.Errorf("facility 2 diversity premium %g, want negative", ab.Premium[1])
	}
	// Premiums sum to ~0 (both share vectors sum to 1).
	sum := 0.0
	for _, p := range ab.Premium {
		sum += p
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("premiums sum to %g", sum)
	}
	if ab.ActualValue != 1300 || ab.NoThresholdValue != 1300 {
		t.Errorf("values %g / %g", ab.ActualValue, ab.NoThresholdValue)
	}
	// Original model untouched.
	if m.Demand.Classes[0].Type.MinLocations != 500 {
		t.Error("ablation mutated the original demand")
	}
}

func TestDiversityAblationZeroWhenNoThreshold(t *testing.T) {
	m := fig4Model(t, 0, false)
	ab, err := DiversityAblation(m, ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ab.Premium {
		if math.Abs(p) > 1e-9 {
			t.Errorf("premium[%d] = %g for threshold-free demand", i, p)
		}
	}
}

func TestTotalDistortion(t *testing.T) {
	a := []float64{0.5, 0.3, 0.2}
	if d := TotalDistortion(a, a); d != 0 {
		t.Errorf("self distortion %g", d)
	}
	b := []float64{0.2, 0.3, 0.5}
	if d := TotalDistortion(a, b); math.Abs(d-0.3) > 1e-12 {
		t.Errorf("distortion %g, want 0.3", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths must panic")
		}
	}()
	TotalDistortion(a, []float64{1})
}

func TestDistortionGrowsWithThreshold(t *testing.T) {
	// The Shapley-vs-proportional distortion should rise with l over the
	// interesting range (the paper's qualitative message).
	dist := func(l float64) float64 {
		m := fig4Model(t, l, false)
		phi := shares(t, m, ShapleyPolicy{})
		pi := shares(t, m, ProportionalPolicy{})
		return TotalDistortion(phi, pi)
	}
	// At l=0 the game is additive, so Shapley equals proportional up to
	// float summation order in the lattice kernel.
	if dist(0) > 1e-12 {
		t.Errorf("distortion at l=0 should be 0, got %g", dist(0))
	}
	if dist(600) <= dist(150) {
		t.Errorf("distortion should grow: %g at 150, %g at 600", dist(150), dist(600))
	}
}
