package core

import (
	"sync"
	"testing"

	"fedshare/internal/coalition"
	"fedshare/internal/economics"
	"fedshare/internal/stats"
)

// greedyModel builds a federation whose demand is off the allocation fast
// path (bounded Max, sublinear shape), so prefix walks run the greedy
// repair/fallback machinery: facility capacities straddle the total
// resource demand, making some prefixes certificate-abundant and others
// not.
func greedyModel(t *testing.T, n int) *Model {
	t.Helper()
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "elastic", MinLocations: 2, MaxLocations: 6,
			Resources: 1, HoldingTime: 1, Shape: 0.8,
		},
		Count: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := make([]Facility, n)
	for i := range fs {
		fs[i] = Facility{
			Name:      fsName(i, i%7),
			Locations: 2 + i%5,
			Resources: float64(3 + i%13),
		}
	}
	// A zero-location facility exercises the walker's skip path.
	fs[n-1].Locations = 0
	m, err := NewModel(fs, wl)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestModelPrefixValuerMatchesValueMembers walks random permutations
// through Model.PrefixValuer and requires bit-identical values to
// ValueMembers at every prefix, on both allocation paths.
func TestModelPrefixValuerMatchesValueMembers(t *testing.T) {
	models := map[string]*Model{
		"fast":   heteroModel(t, 14, 5),
		"greedy": greedyModel(t, 14),
	}
	rng := stats.NewRand(31)
	for name, m := range models {
		pv := m.PrefixValuer()
		if pv == nil {
			t.Fatalf("%s: nil PrefixValuer on a disjoint model", name)
		}
		n := m.N()
		for walk := 0; walk < 30; walk++ {
			perm := rng.Perm(n)
			pv.Reset()
			for k := 1; k <= n; k++ {
				got := pv.Extend(perm[k-1])
				if want := m.ValueMembers(perm[:k]); got != want {
					t.Fatalf("%s walk %d prefix %d: incremental %.17g, direct %.17g",
						name, walk, k, got, want)
				}
			}
		}
	}
}

// TestModelPrefixValuerNilForOverlap: overlap models have no incremental
// pool state; the walker must fall back to ValueMembers.
func TestModelPrefixValuerNilForOverlap(t *testing.T) {
	m := heteroModel(t, 6, 2)
	if _, err := m.WithOverlap(40, stats.NewRand(1)); err != nil {
		t.Fatal(err)
	}
	if m.PrefixValuer() != nil {
		t.Fatal("overlap model handed out a PrefixValuer")
	}
}

// TestApproxIncrementalEquivalence is the equivalence gate: fixed-seed
// sampled shares must be bit-identical with the incremental prefix path
// enabled and disabled, on both allocation paths, at any worker count.
func TestApproxIncrementalEquivalence(t *testing.T) {
	models := map[string]*Model{
		"fast-distinct": heteroModel(t, 24, 24),
		"greedy":        greedyModel(t, 18),
	}
	for name, m := range models {
		var ref []float64
		for _, workers := range []int{1, 4} {
			for _, noInc := range []bool{false, true} {
				p := ApproxShapleyPolicy{
					Samples: 96, Seed: 42, Workers: workers,
					Method: coalition.MethodApprox, NoIncremental: noInc,
				}
				res, err := p.Result(m)
				if err != nil {
					t.Fatal(err)
				}
				if res.Method != coalition.EngineApprox && res.Method != coalition.EngineApproxCollapsed {
					t.Fatalf("%s: engine %q, want a sampling engine", name, res.Method)
				}
				if ref == nil {
					ref = res.Phi
					continue
				}
				for i := range ref {
					if res.Phi[i] != ref[i] {
						t.Fatalf("%s workers=%d noIncremental=%v facility %d: %.17g, want %.17g",
							name, workers, noInc, i, res.Phi[i], ref[i])
					}
				}
			}
		}
	}
}

// TestPrefixWalkersConcurrentOnSharedModel races many incremental walkers
// of one model against each other and concurrent ValueMembers readers
// (meaningful under -race; correctness is asserted per step).
func TestPrefixWalkersConcurrentOnSharedModel(t *testing.T) {
	m := greedyModel(t, 12)
	n := m.N()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := stats.NewRand(seed)
			pv := m.PrefixValuer()
			for walk := 0; walk < 10; walk++ {
				perm := rng.Perm(n)
				pv.Reset()
				for k := 1; k <= n; k++ {
					got := pv.Extend(perm[k-1])
					if want := m.ValueMembers(perm[:k]); got != want {
						t.Errorf("worker %d: prefix %d differs: %.17g vs %.17g", seed, k, got, want)
						return
					}
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
}
