package core

import (
	"fmt"
	"math"
	"strings"

	"fedshare/internal/coalition"
	"fedshare/internal/combin"
	"fedshare/internal/stats"
	"fedshare/internal/sweep"
)

// Policy computes normalized value shares ŝ_i for the facilities of a
// model. Shares sum to 1 whenever the federation generates value (except for
// the resource-proportional rule, which is defined even when V(N) = 0).
type Policy interface {
	// Name is a short identifier, e.g. "shapley".
	Name() string
	// Shares returns the normalized share vector.
	Shares(m *Model) ([]float64, error)
}

// ShapleyPolicy shares value by the normalized Shapley value φ̂ (eq. (5)):
// each facility receives its expected marginal contribution. The
// computation runs on the batched coalition-lattice kernel: the model's
// concurrency-safe game cache lets the 2^n coalition allocations solve in
// parallel, and a single sweep then yields every facility's value at once.
type ShapleyPolicy struct {
	// Workers bounds the parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Name implements Policy.
func (ShapleyPolicy) Name() string { return "shapley" }

// Shares implements Policy.
func (p ShapleyPolicy) Shares(m *Model) ([]float64, error) {
	// Snapshot-eligible models (every paper figure) go through the dense
	// table: the batched kernel reads it directly, with no per-coalition
	// cache locking. Larger models auto-dispatch through the approximation
	// tier: exact on the collapsed class lattice when the facility mix
	// allows, sampled otherwise.
	if t, err := m.Table(); err == nil {
		return coalition.Normalize(t, coalition.ParallelShapley(t, p.Workers)), nil
	}
	res, err := coalition.Values(m, coalition.Options{Workers: p.Workers})
	if err != nil {
		return nil, err
	}
	return normalizeByGrand(m, res.Phi), nil
}

// normalizeByGrand converts absolute shares to the normalized ŝ vector
// without touching the bitmask game interface (valid at any n).
func normalizeByGrand(m *Model, phi []float64) []float64 {
	vn := m.GrandValue()
	out := make([]float64, len(phi))
	if math.Abs(vn) < 1e-12 {
		return out
	}
	for i, p := range phi {
		out[i] = p / vn
	}
	return out
}

// ApproxShapleyPolicy is the approximation tier as a sharing policy: shares
// come from coalition.Values with sampling enabled, composing symmetry
// collapse (interchangeable facilities detected via Model.ClassStructure)
// with the stratified antithetic permutation sampler. It is the intended
// rule for federations of hundreds of facilities, and is exact whenever the
// collapsed class lattice is small enough.
type ApproxShapleyPolicy struct {
	// Samples is the permutation budget (0: the dispatcher default, or
	// adaptive-only when CITarget is set).
	Samples int
	// CITarget, when positive, requests adaptive sampling until every
	// facility's 95% CI half-width is at or below CITarget·V(N) — relative
	// precision, converted to the engines' absolute target here.
	CITarget float64
	// Seed selects the deterministic sample stream.
	Seed uint64
	// Workers bounds parallelism; 0 means GOMAXPROCS. The estimate is
	// identical for every setting.
	Workers int
	// Method overrides engine selection; empty means coalition.MethodAuto
	// (exact when feasible). coalition.MethodApprox forces the sampling
	// estimator — what scenario specs with "method": "approx" request.
	Method coalition.Method
	// NoIncremental disables the incremental prefix-evaluation path in
	// the sampling engines (fedsim -no-incremental flips the process-wide
	// switch instead). Shares are bit-identical either way.
	NoIncremental bool
}

// Name implements Policy.
func (ApproxShapleyPolicy) Name() string { return "shapley-approx" }

// Shares implements Policy.
func (p ApproxShapleyPolicy) Shares(m *Model) ([]float64, error) {
	res, err := p.Result(m)
	if err != nil {
		return nil, err
	}
	return normalizeByGrand(m, res.Phi), nil
}

// Result exposes the full engine outcome — estimates, confidence
// half-widths, engine name — for callers that report uncertainty (fedsim,
// the approx figure) rather than bare shares.
func (p ApproxShapleyPolicy) Result(m *Model) (*coalition.ValueResult, error) {
	// Default to MethodAuto, not MethodApprox: when the model's class
	// lattice (or the full coalition lattice) is small enough for an exact
	// engine, asking for the approximation tier should return the exact
	// answer rather than a noisier estimate of it.
	method := p.Method
	if method == "" {
		method = coalition.MethodAuto
	}
	opt := coalition.Options{
		Method:        method,
		Workers:       p.Workers,
		Samples:       p.Samples,
		Seed:          p.Seed,
		NoIncremental: p.NoIncremental,
	}
	if p.CITarget < 0 {
		return nil, fmt.Errorf("core: negative CI target %g", p.CITarget)
	}
	if p.CITarget > 0 {
		vn := m.GrandValue()
		if vn <= 0 {
			return nil, fmt.Errorf("core: relative CI target needs V(N) > 0, have %g", vn)
		}
		opt.CITarget = p.CITarget * vn
	}
	return coalition.Values(m, opt)
}

// MonteCarloShapleyPolicy estimates φ̂ by sampling orderings — the practical
// rule for federations too large for exact computation.
type MonteCarloShapleyPolicy struct {
	Samples int
	Seed    uint64
}

// Name implements Policy.
func (MonteCarloShapleyPolicy) Name() string { return "shapley-mc" }

// Shares implements Policy.
func (p MonteCarloShapleyPolicy) Shares(m *Model) ([]float64, error) {
	if err := requireBitmaskGame(m, "shapley-mc", "shapley-approx"); err != nil {
		return nil, err
	}
	samples := p.Samples
	if samples <= 0 {
		samples = 2000
	}
	g := m.Game()
	res := coalition.MonteCarloShapley(g, samples, stats.NewRand(p.Seed))
	return coalition.Normalize(g, res.Phi), nil
}

// requireBitmaskGame rejects models beyond the 64-facility bitmask bound
// with a pointer at the policy that does scale.
func requireBitmaskGame(m *Model, name, instead string) error {
	if m.N() > combin.MaxPlayers {
		return fmt.Errorf("core: policy %s is limited to %d facilities, have %d; use %s",
			name, combin.MaxPlayers, m.N(), instead)
	}
	return nil
}

// ProportionalPolicy is the availability-proportional rule π̂ (eq. (6)):
// ŝ_i = L_i·R_i·T_i / Σ_k L_k·R_k·T_k. It ignores demand entirely.
type ProportionalPolicy struct{}

// Name implements Policy.
func (ProportionalPolicy) Name() string { return "proportional" }

// Shares implements Policy.
func (ProportionalPolicy) Shares(m *Model) ([]float64, error) {
	out := make([]float64, m.N())
	total := 0.0
	for i, f := range m.Facilities {
		out[i] = float64(f.Locations) * f.EffectiveCapacity()
		total += out[i]
	}
	if total == 0 {
		return out, nil
	}
	for i := range out {
		out[i] /= total
	}
	return out, nil
}

// ConsumptionPolicy is the consumption-proportional rule ρ̂ (eq. (7)):
// shares follow the resources actually consumed at each facility's locations
// under the grand-coalition allocation.
type ConsumptionPolicy struct{}

// Name implements Policy.
func (ConsumptionPolicy) Name() string { return "consumption" }

// Shares implements Policy.
func (ConsumptionPolicy) Shares(m *Model) ([]float64, error) {
	consumed := m.ConsumptionByFacility()
	total := 0.0
	for _, c := range consumed {
		total += c
	}
	if total == 0 {
		return consumed, nil
	}
	for i := range consumed {
		consumed[i] /= total
	}
	return consumed, nil
}

// EqualPolicy divides value equally — the equity baseline the paper notes
// misaligns provision incentives.
type EqualPolicy struct{}

// Name implements Policy.
func (EqualPolicy) Name() string { return "equal" }

// Shares implements Policy.
func (EqualPolicy) Shares(m *Model) ([]float64, error) {
	out := make([]float64, m.N())
	for i := range out {
		out[i] = 1 / float64(m.N())
	}
	return out, nil
}

// NucleolusPolicy shares by the nucleolus — max-min fair over coalition
// excesses; in the core whenever the core is nonempty.
type NucleolusPolicy struct{}

// Name implements Policy.
func (NucleolusPolicy) Name() string { return "nucleolus" }

// Shares implements Policy.
func (NucleolusPolicy) Shares(m *Model) ([]float64, error) {
	if err := requireBitmaskGame(m, "nucleolus", "shapley-approx"); err != nil {
		return nil, err
	}
	g := m.Game()
	nuc, err := coalition.Nucleolus(g)
	if err != nil {
		return nil, err
	}
	return coalition.Normalize(g, nuc), nil
}

// BanzhafPolicy shares by the normalized Banzhaf index — an alternative
// power measure included for comparison.
type BanzhafPolicy struct{}

// Name implements Policy.
func (BanzhafPolicy) Name() string { return "banzhaf" }

// Shares implements Policy.
func (BanzhafPolicy) Shares(m *Model) ([]float64, error) {
	if err := requireBitmaskGame(m, "banzhaf", "shapley-approx"); err != nil {
		return nil, err
	}
	g := m.Game()
	var beta []float64
	if b, err := coalition.ParallelBatched(g, 0); err == nil {
		beta = b.Banzhaf
	} else {
		// Beyond the snapshot-eligible range: per-player enumeration.
		beta = coalition.Banzhaf(g)
	}
	total := 0.0
	for _, b := range beta {
		total += b
	}
	if total == 0 {
		return make([]float64, m.N()), nil
	}
	for i := range beta {
		beta[i] /= total
	}
	return beta, nil
}

// PolicyNames lists the names PolicyByName resolves, in presentation
// order.
func PolicyNames() []string {
	return []string{"shapley", "shapley-approx", "proportional", "consumption", "equal", "nucleolus", "banzhaf", "shapley-users"}
}

// PolicyByName resolves a deterministic sharing policy by its registered
// name; the empty string resolves to the Shapley rule (the paper's
// default). Parameterized policies (Monte Carlo Shapley) are constructed
// directly instead.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "shapley":
		return ShapleyPolicy{}, nil
	case "shapley-approx":
		return ApproxShapleyPolicy{}, nil
	case "proportional":
		return ProportionalPolicy{}, nil
	case "consumption":
		return ConsumptionPolicy{}, nil
	case "equal":
		return EqualPolicy{}, nil
	case "nucleolus":
		return NucleolusPolicy{}, nil
	case "banzhaf":
		return BanzhafPolicy{}, nil
	case "shapley-users":
		return UserWeightedShapleyPolicy{}, nil
	}
	return nil, fmt.Errorf("unknown policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
}

// Profits converts a policy's normalized shares into absolute payoffs
// v_i = ŝ_i · V(N).
func Profits(m *Model, p Policy) ([]float64, error) {
	shares, err := p.Shares(m)
	if err != nil {
		return nil, err
	}
	vn := m.GrandValue()
	out := make([]float64, len(shares))
	for i, s := range shares {
		out[i] = s * vn
	}
	return out, nil
}

// Report summarizes a federation instance for operators: the value of every
// coalition, structural properties, and shares under a set of policies.
type Report struct {
	GrandValue     float64
	CoalitionValue map[string]float64
	Superadditive  bool
	Convex         bool
	CoreNonempty   bool
	LeastCoreEps   float64
	Shares         map[string][]float64
}

// Analyze builds a full report. Policies failing to compute are reported
// with a nil share vector rather than failing the whole report.
func Analyze(m *Model, policies ...Policy) (*Report, error) {
	if err := requireBitmaskGame(m, "analyze (full coalition enumeration)", "shapley-approx for shares"); err != nil {
		return nil, err
	}
	if len(policies) == 0 {
		policies = []Policy{ShapleyPolicy{}, ProportionalPolicy{}, ConsumptionPolicy{}, EqualPolicy{}}
	}
	g := m.Game()
	rep := &Report{
		GrandValue:     m.GrandValue(),
		CoalitionValue: map[string]float64{},
		Shares:         map[string][]float64{},
	}
	n := m.N()
	for mask := combin.Set(1); mask < combin.Set(1)<<uint(n); mask++ {
		rep.CoalitionValue[coalitionName(m, mask)] = g.Value(mask)
	}
	rep.Superadditive = coalition.IsSuperadditive(g)
	rep.Convex = coalition.IsConvex(g)
	lc, err := coalition.LeastCore(g)
	if err != nil {
		return nil, fmt.Errorf("core: least-core analysis failed: %w", err)
	}
	rep.LeastCoreEps = lc.Epsilon
	rep.CoreNonempty = lc.Epsilon <= 1e-7
	for _, p := range policies {
		shares, err := p.Shares(m)
		if err != nil {
			rep.Shares[p.Name()] = nil
			continue
		}
		rep.Shares[p.Name()] = shares
	}
	return rep, nil
}

func coalitionName(m *Model, s combin.Set) string {
	out := ""
	for _, i := range s.Members() {
		if out != "" {
			out += "+"
		}
		out += m.Facilities[i].Name
	}
	return out
}

// IncentiveCurve computes facility idx's absolute payoff under policy p as
// its location count sweeps over the given values (the Fig 9 experiment).
// Each sweep point evaluates a private clone of the model, so the points
// run concurrently on the sweep worker pool while the output series keeps
// deterministic point order; the input model is never mutated.
func IncentiveCurve(m *Model, idx int, locations []int, p Policy) (stats.Series, error) {
	if idx < 0 || idx >= m.N() {
		return stats.Series{}, fmt.Errorf("core: facility index %d out of range", idx)
	}
	for _, L := range locations {
		if L < 0 {
			return stats.Series{}, fmt.Errorf("core: negative location count %d", L)
		}
	}
	ys, err := sweep.RunErr(len(locations), 0, func(k int) (float64, error) {
		point := m.CloneWith(func(fs []Facility) { fs[idx].Locations = locations[k] })
		profits, err := Profits(point, p)
		if err != nil {
			return 0, err
		}
		return profits[idx], nil
	})
	if err != nil {
		return stats.Series{}, err
	}
	series := stats.Series{Name: fmt.Sprintf("%s(%s)", p.Name(), m.Facilities[idx].Name)}
	for k, L := range locations {
		series.Add(float64(L), ys[k])
	}
	return series, nil
}

// UserWeightedShapleyPolicy shares value by the weighted Shapley value with
// the facilities' affiliated-user populations U_i as weights — the
// customer-ownership contribution dimension the paper borrows from Aram et
// al. [8] for the commercial scenario. Facilities with no recorded users
// default to weight 1.
type UserWeightedShapleyPolicy struct{}

// Name implements Policy.
func (UserWeightedShapleyPolicy) Name() string { return "shapley-users" }

// Shares implements Policy.
func (UserWeightedShapleyPolicy) Shares(m *Model) ([]float64, error) {
	if err := requireBitmaskGame(m, "shapley-users", "shapley-approx"); err != nil {
		return nil, err
	}
	w := make([]float64, m.N())
	for i, f := range m.Facilities {
		if f.Users > 0 {
			w[i] = float64(f.Users)
		} else {
			w[i] = 1
		}
	}
	g := m.Game()
	phi, err := coalition.WeightedShapley(g, w)
	if err != nil {
		return nil, err
	}
	return coalition.Normalize(g, phi), nil
}
