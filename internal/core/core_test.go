package core

import (
	"math"
	"testing"

	"fedshare/internal/coalition"
	"fedshare/internal/combin"
	"fedshare/internal/economics"
	"fedshare/internal/stats"
)

// fig4Model builds the Sec. 4.1 setup: L = (100, 400, 800), R = 1, a single
// experiment with threshold l, linear utility, r = t = 1.
func fig4Model(t *testing.T, l float64, strict bool) *Model {
	t.Helper()
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "single", MinLocations: l, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1, Strict: strict,
		},
		Count: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel([]Facility{
		{Name: "F1", Locations: 100, Resources: 1},
		{Name: "F2", Locations: 400, Resources: 1},
		{Name: "F3", Locations: 800, Resources: 1},
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func shares(t *testing.T, m *Model, p Policy) []float64 {
	t.Helper()
	s, err := p.Shares(m)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return s
}

func wantVec(t *testing.T, got, want []float64, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: lengths %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: got %v, want %v", label, got, want)
		}
	}
}

func TestPaperWorkedExampleStrict(t *testing.T) {
	// Sec. 4.1: at l = 500 the paper reports φ̂₂ = 2/13 and π̂₂ = 4/13.
	// The Shapley figure requires the strict threshold (x > l); see
	// EXPERIMENTS.md.
	m := fig4Model(t, 500, true)
	phi := shares(t, m, ShapleyPolicy{})
	wantVec(t, phi, []float64{1.0 / 26, 2.0 / 13, 21.0 / 26}, 1e-9, "strict Shapley at l=500")
	pi := shares(t, m, ProportionalPolicy{})
	wantVec(t, pi, []float64{1.0 / 13, 4.0 / 13, 8.0 / 13}, 1e-9, "proportional")
}

func TestPaperValueTableNonStrict(t *testing.T) {
	// The same section's value table (V({1,2}) = 500 etc.) uses the
	// non-strict threshold.
	m := fig4Model(t, 500, false)
	g := m.Game()
	cases := []struct {
		s    combin.Set
		want float64
	}{
		{combin.Of(0), 0},
		{combin.Of(1), 0},
		{combin.Of(2), 800},
		{combin.Of(0, 1), 500},
		{combin.Of(0, 2), 900},
		{combin.Of(1, 2), 1200},
		{combin.Of(0, 1, 2), 1300},
	}
	for _, c := range cases {
		if got := g.Value(c.s); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("V(%v) = %g, want %g", c.s, got, c.want)
		}
	}
}

func TestFig4Staircase(t *testing.T) {
	// l = 0: Shapley equals proportional (everyone's marginal contribution
	// is exactly their location count).
	m := fig4Model(t, 0, false)
	wantVec(t, shares(t, m, ShapleyPolicy{}),
		[]float64{1.0 / 13, 4.0 / 13, 8.0 / 13}, 1e-9, "l=0 Shapley == proportional")

	// 1200 < l <= 1300: only the grand coalition works -> equal shares.
	m = fig4Model(t, 1250, false)
	wantVec(t, shares(t, m, ShapleyPolicy{}),
		[]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 1e-9, "grand-only equal shares")

	// l > 1300: no coalition serves the customer -> zero shares.
	m = fig4Model(t, 1350, false)
	wantVec(t, shares(t, m, ShapleyPolicy{}), []float64{0, 0, 0}, 0, "infeasible zero shares")

	// Proportional never moves with l.
	for _, l := range []float64{0, 300, 700, 1250, 1350} {
		m = fig4Model(t, l, false)
		wantVec(t, shares(t, m, ProportionalPolicy{}),
			[]float64{1.0 / 13, 4.0 / 13, 8.0 / 13}, 1e-9, "proportional invariant")
	}
}

func TestFig4MonotoneShareDrops(t *testing.T) {
	// As l crosses a facility's standalone threshold, its share drops.
	phiAt := func(l float64) []float64 {
		return shares(t, fig4Model(t, l, false), ShapleyPolicy{})
	}
	before, after := phiAt(50), phiAt(150) // crossing L1 = 100
	if after[0] >= before[0] {
		t.Errorf("facility 1 share should drop across l=100: %g -> %g", before[0], after[0])
	}
	before, after = phiAt(350), phiAt(450) // crossing L2 = 400
	if after[1] >= before[1] {
		t.Errorf("facility 2 share should drop across l=400: %g -> %g", before[1], after[1])
	}
	before, after = phiAt(750), phiAt(850) // crossing L3 = 800
	if after[2] >= before[2] {
		t.Errorf("facility 3 share should drop across l=800: %g -> %g", before[2], after[2])
	}
}

func TestAllPoliciesSumToOne(t *testing.T) {
	m := fig4Model(t, 500, false)
	for _, p := range []Policy{
		ShapleyPolicy{}, ProportionalPolicy{}, ConsumptionPolicy{},
		EqualPolicy{}, NucleolusPolicy{}, BanzhafPolicy{},
		MonteCarloShapleyPolicy{Samples: 500, Seed: 1},
	} {
		s := shares(t, m, p)
		sum := 0.0
		for _, v := range s {
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("%s shares sum to %g", p.Name(), sum)
		}
	}
}

func TestMonteCarloPolicyTracksExact(t *testing.T) {
	m := fig4Model(t, 500, false)
	exact := shares(t, m, ShapleyPolicy{})
	mc := shares(t, m, MonteCarloShapleyPolicy{Samples: 20000, Seed: 7})
	wantVec(t, mc, exact, 0.02, "MC vs exact Shapley")
}

func TestNucleolusPolicyFig4(t *testing.T) {
	// At l = 500 (non-strict) the core is the single point (100,400,800);
	// the nucleolus must hit it.
	m := fig4Model(t, 500, false)
	nuc := shares(t, m, NucleolusPolicy{})
	wantVec(t, nuc, []float64{100.0 / 1300, 400.0 / 1300, 800.0 / 1300}, 1e-6, "nucleolus")
}

func TestAnalyzeReport(t *testing.T) {
	m := fig4Model(t, 500, false)
	rep, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GrandValue != 1300 {
		t.Errorf("grand value %g", rep.GrandValue)
	}
	if !rep.Superadditive {
		t.Error("fig4 game at l=500 is superadditive")
	}
	if rep.Convex {
		t.Error("fig4 game at l=500 is not convex (V13+V23 > VN+V2)")
	}
	if !rep.CoreNonempty {
		t.Error("core is the point (100,400,800), nonempty")
	}
	if rep.LeastCoreEps > 1e-7 {
		t.Errorf("least-core epsilon %g should be <= 0", rep.LeastCoreEps)
	}
	if len(rep.CoalitionValue) != 7 {
		t.Errorf("report has %d coalitions, want 7", len(rep.CoalitionValue))
	}
	if v := rep.CoalitionValue["F2+F3"]; v != 1200 {
		t.Errorf("V(F2+F3) = %g", v)
	}
	if len(rep.Shares) != 4 {
		t.Errorf("default policies: got %d share vectors", len(rep.Shares))
	}
}

func TestConsumptionLowDemandFollowsDiversity(t *testing.T) {
	// Fig 8 intuition: low demand -> consumption proportional to location
	// counts (L_i/ΣL), not capacity (L_i·R_i/ΣL·R).
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "probe", MaxLocations: math.Inf(1), Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel([]Facility{
		{Name: "F1", Locations: 100, Resources: 80},
		{Name: "F2", Locations: 400, Resources: 60},
		{Name: "F3", Locations: 800, Resources: 20},
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	rho := shares(t, m, ConsumptionPolicy{})
	wantVec(t, rho, []float64{100.0 / 1300, 400.0 / 1300, 800.0 / 1300}, 0.01, "low-demand rho")
	// Proportional is very different.
	pi := shares(t, m, ProportionalPolicy{})
	total := 100.0*80 + 400*60 + 800*20
	wantVec(t, pi, []float64{8000 / total, 24000 / total, 16000 / total}, 1e-9, "pi")
}

func TestGameCaching(t *testing.T) {
	m := fig4Model(t, 500, false)
	g := m.Game()
	_ = coalition.Shapley(g)
	evals := g.Evaluations()
	_ = coalition.Shapley(g)
	if g.Evaluations() != evals {
		t.Error("second Shapley run should hit the cache")
	}
	m.Invalidate()
	if m.Game() == g {
		t.Error("Invalidate must drop the cached game")
	}
}

func TestIncentiveCurveRestoresModel(t *testing.T) {
	m := fig4Model(t, 400, false)
	orig := m.Facilities[0].Locations
	series, err := IncentiveCurve(m, 0, []int{0, 100, 200, 400}, ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Facilities[0].Locations != orig {
		t.Errorf("model not restored: %d", m.Facilities[0].Locations)
	}
	if len(series.Points) != 4 {
		t.Errorf("series has %d points", len(series.Points))
	}
	// Profit should be nondecreasing in own locations here (more locations
	// never hurt in this setup).
	for i := 1; i < len(series.Points); i++ {
		if series.Points[i].Y < series.Points[i-1].Y-1e-9 {
			t.Errorf("profit decreased: %v", series.Points)
		}
	}
	if _, err := IncentiveCurve(m, 9, []int{1}, ShapleyPolicy{}); err == nil {
		t.Error("out-of-range facility index must fail")
	}
	if _, err := IncentiveCurve(m, 0, []int{-1}, ShapleyPolicy{}); err == nil {
		t.Error("negative location count must fail")
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(nil, nil); err == nil {
		t.Error("empty facility list must fail")
	}
	if _, err := NewModel([]Facility{{Name: "x", Locations: -1}}, nil); err == nil {
		t.Error("negative locations must fail")
	}
	if _, err := NewModel([]Facility{{Name: "x", Availability: 2}}, nil); err == nil {
		t.Error("availability > 1 must fail")
	}
	m, err := NewModel([]Facility{{Name: "x", Locations: 1, Resources: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.GrandValue() != 0 {
		t.Error("no demand -> zero value")
	}
}

func TestAvailabilityScalesCapacity(t *testing.T) {
	f := Facility{Name: "x", Locations: 10, Resources: 4, Availability: 0.5}
	if f.EffectiveCapacity() != 2 {
		t.Errorf("effective capacity %g", f.EffectiveCapacity())
	}
	fDefault := Facility{Name: "y", Locations: 10, Resources: 4}
	if fDefault.EffectiveCapacity() != 4 {
		t.Errorf("default availability should be 1, capacity %g", fDefault.EffectiveCapacity())
	}
}

func TestOverlapModel(t *testing.T) {
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "probe", MaxLocations: math.Inf(1), Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Model {
		m, err := NewModel([]Facility{
			{Name: "A", Locations: 30, Resources: 1},
			{Name: "B", Locations: 30, Resources: 1},
		}, wl)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Tight universe forces heavy overlap: distinct locations < 60.
	m := mk()
	if _, err := m.WithOverlap(40, stats.NewRand(3)); err != nil {
		t.Fatal(err)
	}
	vTight := m.GrandValue()
	if vTight >= 60 || vTight < 30 {
		t.Errorf("overlapped union value %g outside (30, 60)", vTight)
	}

	// Huge universe: overlap nearly impossible, union ~60.
	m2 := mk()
	if _, err := m2.WithOverlap(100000, stats.NewRand(3)); err != nil {
		t.Fatal(err)
	}
	if v := m2.GrandValue(); v != 60 {
		t.Errorf("disjoint-ish union value %g, want 60", v)
	}

	// Value stays monotone with overlap.
	g := m.Game()
	if g.Value(combin.Of(0)) > g.Value(combin.Of(0, 1))+1e-9 {
		t.Error("overlap model broke monotonicity")
	}

	// Universe smaller than a facility is rejected.
	m3 := mk()
	if _, err := m3.WithOverlap(10, stats.NewRand(1)); err == nil {
		t.Error("universe smaller than facility must fail")
	}
}

func TestOverlapCapacityAdds(t *testing.T) {
	// Two single-location facilities forced onto the same location: the
	// pooled capacity should serve two capacity-1 experiments at that one
	// location, but diversity stays 1.
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "unit", MaxLocations: math.Inf(1), Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel([]Facility{
		{Name: "A", Locations: 1, Resources: 1},
		{Name: "B", Locations: 1, Resources: 1},
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WithOverlap(1, stats.NewRand(1)); err != nil {
		t.Fatal(err)
	}
	// Both facilities cover location 0; capacity 2 there. Two experiments
	// of 1 location each -> V = 2.
	if v := m.GrandValue(); v != 2 {
		t.Errorf("grand value %g, want 2", v)
	}
}

func TestProfits(t *testing.T) {
	m := fig4Model(t, 500, false)
	profits, err := Profits(m, ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range profits {
		sum += p
	}
	if math.Abs(sum-1300) > 1e-6 {
		t.Errorf("profits sum to %g, want V(N)=1300", sum)
	}
}

func BenchmarkFig4ShapleyPoint(b *testing.B) {
	wl, _ := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "single", MinLocations: 500, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 1,
	})
	for i := 0; i < b.N; i++ {
		m, _ := NewModel([]Facility{
			{Name: "F1", Locations: 100, Resources: 1},
			{Name: "F2", Locations: 400, Resources: 1},
			{Name: "F3", Locations: 800, Resources: 1},
		}, wl)
		_, _ = ShapleyPolicy{}.Shares(m)
	}
}

func TestUserWeightedShapleyPolicy(t *testing.T) {
	m := fig4Model(t, 500, false)
	// Without user counts, it coincides with plain Shapley.
	uw := shares(t, m, UserWeightedShapleyPolicy{})
	plain := shares(t, m, ShapleyPolicy{})
	wantVec(t, uw, plain, 1e-9, "default-weight user Shapley")

	// Weighted shares remain efficient regardless of weights (the l=500
	// game has a negative grand dividend, so the direction of the tilt is
	// game-dependent — only efficiency is universal).
	m.Facilities[0].Users = 100
	m.Facilities[1].Users = 1
	m.Facilities[2].Users = 1
	m.Invalidate()
	tilted := shares(t, m, UserWeightedShapleyPolicy{})
	sum := 0.0
	for _, s := range tilted {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weighted shares sum to %g", sum)
	}

	// Pure-synergy case (only the grand coalition has value): the dividend
	// splits exactly by user weight.
	m2 := fig4Model(t, 1250, false)
	m2.Facilities[0].Users = 100
	m2.Facilities[1].Users = 50
	m2.Facilities[2].Users = 50
	wantVec(t, shares(t, m2, UserWeightedShapleyPolicy{}),
		[]float64{0.5, 0.25, 0.25}, 1e-9, "synergy split by users")
}

// TestModelMonotonicityProperties: the value function must be monotone in
// coalition membership, facility locations, and capacity — more resources
// can never reduce the servable utility.
func TestModelMonotonicityProperties(t *testing.T) {
	rng := stats.NewRand(113)
	for trial := 0; trial < 40; trial++ {
		l := float64(rng.Intn(20)) * 25
		k := 1 + rng.Intn(20)
		locs := []int{10 + rng.Intn(200), 10 + rng.Intn(400), 10 + rng.Intn(800)}
		caps := []float64{float64(1 + rng.Intn(5)), float64(1 + rng.Intn(5)), float64(1 + rng.Intn(5))}
		mk := func(locs []int, caps []float64) *Model {
			wl, err := economics.NewWorkload(economics.DemandClass{
				Type: economics.ExperimentType{
					Name: "e", MinLocations: l, MaxLocations: math.Inf(1),
					Resources: 1, HoldingTime: 1, Shape: 1,
				},
				Count: k,
			})
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewModel([]Facility{
				{Name: "A", Locations: locs[0], Resources: caps[0]},
				{Name: "B", Locations: locs[1], Resources: caps[1]},
				{Name: "C", Locations: locs[2], Resources: caps[2]},
			}, wl)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		m := mk(locs, caps)
		g := m.Game()
		if !coalition.IsMonotone(g) {
			t.Fatalf("trial %d: value function not monotone (l=%g k=%d locs=%v caps=%v)",
				trial, l, k, locs, caps)
		}
		// Growing facility 0's locations never reduces V(N).
		before := m.GrandValue()
		bigger := append([]int(nil), locs...)
		bigger[0] += 50
		if after := mk(bigger, caps).GrandValue(); after < before-1e-9 {
			t.Fatalf("trial %d: adding locations reduced V(N): %g -> %g", trial, before, after)
		}
		// Growing facility 0's capacity never reduces V(N).
		richer := append([]float64(nil), caps...)
		richer[0]++
		if after := mk(locs, richer).GrandValue(); after < before-1e-9 {
			t.Fatalf("trial %d: adding capacity reduced V(N): %g -> %g", trial, before, after)
		}
	}
}
