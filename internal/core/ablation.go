package core

import (
	"fmt"

	"fedshare/internal/economics"
)

// Ablation quantifies how much of a sharing outcome is driven by the
// diversity dimension versus raw capacity — the design-choice study behind
// the paper's central claim that single-resource models misprice federation.
type Ablation struct {
	// ActualShares are the policy's shares under the real demand.
	ActualShares []float64
	// NoThresholdShares are the shares when every experiment's diversity
	// threshold is removed (l = 0): the "capacity-only" counterfactual.
	NoThresholdShares []float64
	// Premium[i] = ActualShares[i] − NoThresholdShares[i]: the share a
	// facility gains (or loses) purely because diversity matters.
	Premium []float64
	// ActualValue and NoThresholdValue are the corresponding V(N).
	ActualValue, NoThresholdValue float64
}

// DiversityAblation computes the ablation for a model under the given
// policy. The model is not modified.
func DiversityAblation(m *Model, p Policy) (*Ablation, error) {
	actual, err := p.Shares(m)
	if err != nil {
		return nil, fmt.Errorf("core: ablation actual shares: %w", err)
	}
	// Rebuild the demand with thresholds stripped.
	var classes []economics.DemandClass
	for _, c := range m.Demand.Classes {
		t := c.Type
		t.MinLocations = 0
		t.Strict = false
		classes = append(classes, economics.DemandClass{Type: t, Count: c.Count})
	}
	flatDemand, err := economics.NewWorkload(classes...)
	if err != nil {
		return nil, err
	}
	counterfactual, err := NewModel(append([]Facility(nil), m.Facilities...), flatDemand)
	if err != nil {
		return nil, err
	}
	counterfactual.Mu = m.Mu
	counterfactual.Overlap = m.Overlap
	flat, err := p.Shares(counterfactual)
	if err != nil {
		return nil, fmt.Errorf("core: ablation counterfactual shares: %w", err)
	}
	ab := &Ablation{
		ActualShares:      actual,
		NoThresholdShares: flat,
		Premium:           make([]float64, len(actual)),
		ActualValue:       m.GrandValue(),
		NoThresholdValue:  counterfactual.GrandValue(),
	}
	for i := range actual {
		ab.Premium[i] = actual[i] - flat[i]
	}
	return ab, nil
}

// TotalDistortion returns Σ|shares_a − shares_b| / 2 — the total share mass
// a policy moves relative to another (0 = identical division, 1 = disjoint).
func TotalDistortion(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("core: distortion over mismatched share vectors")
	}
	d := 0.0
	for i := range a {
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d / 2
}
