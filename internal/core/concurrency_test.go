package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"fedshare/internal/allocation"
	"fedshare/internal/combin"
	"fedshare/internal/economics"
	"fedshare/internal/sweep"
)

func testWorkload(t *testing.T, l float64, k int) *economics.Workload {
	t.Helper()
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "e", MinLocations: l, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// disjointOverlap assigns facility i the location identifiers
// [offset_i, offset_i + L_i): an explicit pairwise-disjoint cover, the
// overlap structure that must be equivalent to the no-overlap model.
func disjointOverlap(facilities []Facility) [][]int {
	out := make([][]int, len(facilities))
	next := 0
	for i, f := range facilities {
		ids := make([]int, f.Locations)
		for j := range ids {
			ids[j] = next
			next++
		}
		out[i] = ids
	}
	return out
}

// TestOverlapDisjointReproducesNoOverlap is the overlap-pooling property
// test: with a pairwise-disjoint cover the overlap branch of poolFor must
// reproduce the no-overlap V(S) exactly for every coalition, across
// randomized facility configurations and demands.
func TestOverlapDisjointReproducesNoOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(2)
		fs := make([]Facility, n)
		for i := range fs {
			fs[i] = Facility{
				Name:      string(rune('A' + i)),
				Locations: rng.Intn(7),
				Resources: []float64{1, 2, 3}[rng.Intn(3)],
			}
		}
		wl := testWorkload(t, float64(rng.Intn(10)), 1+rng.Intn(6))

		flat, err := NewModel(fs, wl)
		if err != nil {
			t.Fatal(err)
		}
		overlapped, err := NewModel(fs, wl)
		if err != nil {
			t.Fatal(err)
		}
		overlapped.Overlap = disjointOverlap(fs)

		for s := combin.Set(1); s <= combin.Full(n); s++ {
			if got, want := overlapped.Value(s), flat.Value(s); got != want {
				t.Fatalf("trial %d: V(%v) overlap %g != flat %g (facilities %+v)",
					trial, s, got, want, fs)
			}
		}
	}
}

// TestOverlapModelsBypassMemo is the memo-key regression test: overlap
// models are uncacheable — their Value calls must not touch the process-
// wide allocation memo — while an identically-shaped no-overlap model must.
func TestOverlapModelsBypassMemo(t *testing.T) {
	fs := []Facility{
		{Name: "A", Locations: 3, Resources: 1},
		{Name: "B", Locations: 4, Resources: 1},
	}
	wl := testWorkload(t, 2, 3)

	overlapped, err := NewModel(fs, wl)
	if err != nil {
		t.Fatal(err)
	}
	overlapped.Overlap = disjointOverlap(fs)
	before := allocation.DefaultMemo.Stats()
	for s := combin.Set(1); s <= combin.Full(2); s++ {
		overlapped.Value(s)
	}
	after := allocation.DefaultMemo.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("overlap model touched the memo: %+v -> %+v", before, after)
	}

	flat, err := NewModel(fs, wl)
	if err != nil {
		t.Fatal(err)
	}
	before = after
	for s := combin.Set(1); s <= combin.Full(2); s++ {
		flat.Value(s)
	}
	after = allocation.DefaultMemo.Stats()
	if after.Hits+after.Misses == before.Hits+before.Misses {
		t.Fatal("no-overlap model did not use the memo")
	}
}

// TestGameConcurrentInit races many goroutines through the lazy Game()
// init and concurrent Value evaluation (run under -race); all must see one
// cache instance.
func TestGameConcurrentInit(t *testing.T) {
	m, err := NewModel([]Facility{
		{Name: "A", Locations: 5, Resources: 1},
		{Name: "B", Locations: 8, Resources: 1},
		{Name: "C", Locations: 3, Resources: 2},
	}, testWorkload(t, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	games := make([]interface{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := m.Game()
			games[w] = g
			for s := combin.Set(1); s <= combin.Full(3); s++ {
				g.Value(s)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if games[w] != games[0] {
			t.Fatal("concurrent Game() built more than one cache")
		}
	}
}

// TestIncentiveCurveParallelMatchesSequential runs the Fig 9 sweep with
// multiple sweep workers and checks the curve is identical to the
// sequential one, and that the input model is untouched.
func TestIncentiveCurveParallelMatchesSequential(t *testing.T) {
	m, err := NewModel([]Facility{
		{Name: "A", Locations: 5, Resources: 2},
		{Name: "B", Locations: 8, Resources: 1},
		{Name: "C", Locations: 3, Resources: 1},
	}, testWorkload(t, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	locations := []int{0, 2, 4, 6, 8, 10, 12}

	orig := sweep.SetDefaultWorkers(1)
	defer sweep.SetDefaultWorkers(orig)
	seq, err := IncentiveCurve(m, 0, locations, ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	sweep.SetDefaultWorkers(4)
	par, err := IncentiveCurve(m, 0, locations, ShapleyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Points) != len(par.Points) {
		t.Fatalf("length mismatch: %d vs %d", len(seq.Points), len(par.Points))
	}
	for i := range seq.Points {
		if seq.Points[i] != par.Points[i] {
			t.Fatalf("point %d: sequential %+v != parallel %+v", i, seq.Points[i], par.Points[i])
		}
	}
	if m.Facilities[0].Locations != 5 {
		t.Fatalf("input model mutated: L1 = %d", m.Facilities[0].Locations)
	}
}

// TestCloneWith checks clones are independent of the source model.
func TestCloneWith(t *testing.T) {
	m, err := NewModel([]Facility{
		{Name: "A", Locations: 5, Resources: 1},
		{Name: "B", Locations: 8, Resources: 1},
	}, testWorkload(t, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	vBefore := m.GrandValue()
	c := m.CloneWith(func(fs []Facility) { fs[0].Locations = 50 })
	if c.Facilities[0].Locations != 50 || m.Facilities[0].Locations != 5 {
		t.Fatalf("clone mutation leaked: clone %d, source %d",
			c.Facilities[0].Locations, m.Facilities[0].Locations)
	}
	if c.GrandValue() <= vBefore {
		t.Fatalf("clone with more locations should gain value: %g <= %g", c.GrandValue(), vBefore)
	}
	if m.GrandValue() != vBefore {
		t.Fatalf("source value changed: %g != %g", m.GrandValue(), vBefore)
	}
}
