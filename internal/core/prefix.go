package core

import (
	"fedshare/internal/allocation"
	"fedshare/internal/coalition"
)

// PrefixValuer implements coalition.PrefixGame: it returns a reusable
// incremental walker over the federation game, so the sampling Shapley
// engines can evaluate a permutation's growing prefixes by updating the
// previous prefix's solved allocation state (allocation.PrefixSolver)
// instead of re-solving V(S∪{i}) from scratch. Each Extend(i) adds
// facility i's location class to the pool — exactly the class
// ValueMembers builds — and returns µ times the updated optimal utility,
// bit-identical to ValueMembers of the extended member list.
//
// Overlap models return nil (their V depends on concrete location
// identities, not the class multiset, so no incremental pool state
// applies); the walker then falls back to ValueMembers. The solver shares
// the process-wide allocation memo read-only on its fallback steps, so
// walks never flood the memo with one-off prefix keys.
//
// The returned valuer is stateful and single-goroutine; concurrent
// sampling workers each obtain their own (sharing the model and the memo
// is safe).
func (m *Model) PrefixValuer() coalition.PrefixValuer {
	if m.Overlap != nil {
		return nil
	}
	ps, err := allocation.NewPrefixSolver(m.requests(), allocation.DefaultMemo)
	if err != nil {
		// Invalid demand surfaces as a panic in Solve/ValueMembers; let
		// the non-incremental path report it the established way.
		return nil
	}
	return &modelPrefixValuer{m: m, ps: ps}
}

// modelPrefixValuer walks one growing coalition of facilities.
type modelPrefixValuer struct {
	m  *Model
	ps *allocation.PrefixSolver
}

// Reset implements coalition.PrefixValuer.
func (v *modelPrefixValuer) Reset() { v.ps.Reset() }

// Extend implements coalition.PrefixValuer.
func (v *modelPrefixValuer) Extend(i int) float64 {
	f := &v.m.Facilities[i]
	if f.Locations == 0 {
		// ValueMembers skips zero-location facilities when building the
		// pool; the value is unchanged.
		return v.m.muFactor() * v.ps.Value()
	}
	u := v.ps.Add(allocation.Class{
		Label:    f.Name,
		Count:    f.Locations,
		Capacity: f.EffectiveCapacity(),
	})
	return v.m.muFactor() * u
}
