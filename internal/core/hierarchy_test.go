package core

import (
	"math"
	"testing"

	"fedshare/internal/economics"
)

func hierDemand(t *testing.T, l float64) *economics.Workload {
	t.Helper()
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "e", MinLocations: l, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func TestHierarchicalSharesConsistency(t *testing.T) {
	// PLE hosts two member testbeds; PLC and PLJ are monolithic. The
	// member shares within each authority must sum to the authority's
	// quotient-game Shapley share.
	groups := []AuthorityGroup{
		{Name: "PLC", Members: []Facility{{Name: "PLC", Locations: 100, Resources: 1}}},
		{Name: "PLE", Members: []Facility{
			{Name: "PLE-core", Locations: 250, Resources: 1},
			{Name: "G-Lab", Locations: 150, Resources: 1},
		}},
		{Name: "PLJ", Members: []Facility{{Name: "PLJ", Locations: 800, Resources: 1}}},
	}
	hs, err := HierarchicalShapley(groups, hierDemand(t, 500), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hs.GrandValue != 1300 {
		t.Errorf("grand value %g", hs.GrandValue)
	}
	// Authority totals equal the flat 3-facility Shapley on aggregates
	// (quotient consistency): (4/39, 17/78, 53/78) from the Fig 4 setup.
	want := []float64{4.0 / 39, 17.0 / 78, 53.0 / 78}
	for i := range want {
		if math.Abs(hs.Authority[i]-want[i]) > 1e-9 {
			t.Errorf("authority %d share %g, want %g", i, hs.Authority[i], want[i])
		}
	}
	// Member shares sum to authority share.
	for gi := range groups {
		sum := 0.0
		for _, s := range hs.Member[gi] {
			sum += s
		}
		if math.Abs(sum-hs.Authority[gi]) > 1e-9 {
			t.Errorf("group %d member sum %g != authority %g", gi, sum, hs.Authority[gi])
		}
	}
	// Total is 1.
	total := 0.0
	for _, a := range hs.Authority {
		total += a
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("authority shares sum to %g", total)
	}
	// Within PLE, the larger member earns more.
	if hs.Member[1][0] <= hs.Member[1][1] {
		t.Errorf("PLE-core (250 locs) should out-earn G-Lab (150): %v", hs.Member[1])
	}
}

func TestHierarchicalMatchesFlatForSingletons(t *testing.T) {
	groups := []AuthorityGroup{
		{Name: "A", Members: []Facility{{Name: "A", Locations: 100, Resources: 1}}},
		{Name: "B", Members: []Facility{{Name: "B", Locations: 400, Resources: 1}}},
		{Name: "C", Members: []Facility{{Name: "C", Locations: 800, Resources: 1}}},
	}
	hs, err := HierarchicalShapley(groups, hierDemand(t, 500), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel([]Facility{
		{Name: "A", Locations: 100, Resources: 1},
		{Name: "B", Locations: 400, Resources: 1},
		{Name: "C", Locations: 800, Resources: 1},
	}, hierDemand(t, 500))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := ShapleyPolicy{}.Shares(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat {
		if math.Abs(hs.Authority[i]-flat[i]) > 1e-9 {
			t.Errorf("singleton hierarchy %v != flat %v", hs.Authority, flat)
		}
	}
}

func TestHierarchicalGroupingChangesMemberShares(t *testing.T) {
	// Two identical small testbeds: bargaining alone versus under one
	// authority umbrella yields different member payoffs.
	demand := hierDemand(t, 500)
	grouped := []AuthorityGroup{
		{Name: "U", Members: []Facility{
			{Name: "t1", Locations: 250, Resources: 1},
			{Name: "t2", Locations: 250, Resources: 1},
		}},
		{Name: "Big", Members: []Facility{{Name: "big", Locations: 800, Resources: 1}}},
	}
	hsGrouped, err := HierarchicalShapley(grouped, demand, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	separate := []AuthorityGroup{
		{Name: "T1", Members: []Facility{{Name: "t1", Locations: 250, Resources: 1}}},
		{Name: "T2", Members: []Facility{{Name: "t2", Locations: 250, Resources: 1}}},
		{Name: "Big", Members: []Facility{{Name: "big", Locations: 800, Resources: 1}}},
	}
	hsSeparate, err := HierarchicalShapley(separate, demand, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(hsGrouped.Member[0][0] - hsSeparate.Authority[0])
	if diff < 1e-9 {
		t.Error("grouping should change a small testbed's share")
	}
}

func TestHierarchicalValidation(t *testing.T) {
	if _, err := HierarchicalShapley(nil, hierDemand(t, 0), 0, 1); err == nil {
		t.Error("empty group list must fail")
	}
	if _, err := HierarchicalShapley([]AuthorityGroup{{Name: "x"}}, hierDemand(t, 0), 0, 1); err == nil {
		t.Error("empty members must fail")
	}
}

func TestHierarchicalMonteCarloFallback(t *testing.T) {
	// 13 members in two blocks exceeds the exact-enumeration budget; the
	// Monte-Carlo fallback must engage and stay efficient.
	var a, b []Facility
	for i := 0; i < 7; i++ {
		a = append(a, Facility{Name: "a", Locations: 10, Resources: 1})
	}
	for i := 0; i < 6; i++ {
		b = append(b, Facility{Name: "b", Locations: 20, Resources: 1})
	}
	groups := []AuthorityGroup{{Name: "A", Members: a}, {Name: "B", Members: b}}
	hs, err := HierarchicalShapley(groups, hierDemand(t, 50), 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, s := range hs.Authority {
		total += s
	}
	if math.Abs(total-1) > 0.02 {
		t.Errorf("MC hierarchy shares sum to %g", total)
	}
}
