// Package core implements the paper's primary contribution: the economic
// model of federated virtualized infrastructures (Sec. 2) and the federation
// game built on it (Sec. 3). A Model couples the facilities' contributions
// (locations L_i, per-location resources R_i, availability T_i) with a
// demand workload; its characteristic function V(S) is the maximum total
// utility coalition S can serve, computed by the allocation engine. Sharing
// policies — Shapley, availability-proportional, consumption-proportional,
// equal split, nucleolus — divide V(N) among the facilities.
package core

import (
	"fmt"
	"math"

	"fedshare/internal/allocation"
	"fedshare/internal/coalition"
	"fedshare/internal/combin"
	"fedshare/internal/economics"
	"fedshare/internal/stats"
)

// Facility is one resource provider (a PlanetLab regional authority, a
// testbed, a cloud region).
type Facility struct {
	Name string
	// Locations is L_i: the number of distinct locations the facility
	// contributes.
	Locations int
	// Resources is R_i: the resource units (slots for concurrent
	// experiments) available at each of its locations.
	Resources float64
	// Availability is T_i ∈ (0, 1]; 0 means "use the default of 1"
	// (the paper's analysis assumption).
	Availability float64
	// Users is U_i, the facility's affiliated user population (P2P
	// scenario bookkeeping; not used by the commercial value function).
	Users int
	// Cost is the facility's provision-cost model (zero by default, per
	// the paper's sunk-cost assumption).
	Cost economics.Cost
}

func (f Facility) availability() float64 {
	if f.Availability == 0 {
		return 1
	}
	return f.Availability
}

// EffectiveCapacity returns R_i·T_i, the capacity the facility actually
// offers per location.
func (f Facility) EffectiveCapacity() float64 {
	return f.Resources * f.availability()
}

// Validate checks the facility definition.
func (f Facility) Validate() error {
	if f.Locations < 0 {
		return fmt.Errorf("core: facility %s has negative locations", f.Name)
	}
	if f.Resources < 0 {
		return fmt.Errorf("core: facility %s has negative resources", f.Name)
	}
	if f.Availability < 0 || f.Availability > 1 {
		return fmt.Errorf("core: facility %s availability %g outside [0,1]", f.Name, f.Availability)
	}
	return nil
}

// Model is the federation game instance: who contributes what, and what the
// demand looks like.
type Model struct {
	Facilities []Facility
	Demand     *economics.Workload
	// Mu is the market conversion from utility to profit (µ ≤ 1 in the
	// paper); 0 means 1.
	Mu float64
	// Overlap, when non-nil, maps each facility to the explicit set of
	// location identifiers it covers (Sec. 2.1's overlap model o_ij).
	// When nil, facilities cover pairwise-disjoint locations, which is
	// the paper's setting for all numerical figures.
	Overlap [][]int

	game *coalition.SafeCache
}

// NewModel validates and builds a federation model.
func NewModel(facilities []Facility, demand *economics.Workload) (*Model, error) {
	if len(facilities) == 0 {
		return nil, fmt.Errorf("core: federation needs at least one facility")
	}
	if len(facilities) > combin.MaxPlayers {
		return nil, fmt.Errorf("core: at most %d facilities supported", combin.MaxPlayers)
	}
	for _, f := range facilities {
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}
	if demand == nil {
		demand = &economics.Workload{}
	}
	return &Model{Facilities: facilities, Demand: demand}, nil
}

// WithOverlap samples an overlap structure: each facility covers L_i
// distinct locations drawn uniformly from a universe of the given size, so
// the pairwise overlap probability o_ij is governed by universe size
// (independent placement, as the paper suggests for simplicity). It returns
// the model for chaining and is deterministic given the rng.
func (m *Model) WithOverlap(universe int, rng *stats.Rand) (*Model, error) {
	for _, f := range m.Facilities {
		if f.Locations > universe {
			return nil, fmt.Errorf("core: facility %s has %d locations, universe only %d",
				f.Name, f.Locations, universe)
		}
	}
	m.Overlap = make([][]int, len(m.Facilities))
	for i, f := range m.Facilities {
		perm := rng.Perm(universe)
		ids := append([]int(nil), perm[:f.Locations]...)
		m.Overlap[i] = ids
	}
	m.game = nil
	return m, nil
}

// mu returns the profit conversion factor.
func (m *Model) mu() float64 {
	if m.Mu == 0 {
		return 1
	}
	return m.Mu
}

// N returns the number of facilities.
func (m *Model) N() int { return len(m.Facilities) }

// ownerWeight attributes a pool class to contributing facilities.
type ownerWeight struct {
	facility int
	frac     float64
}

// pooling couples an allocation pool with the attribution of each class's
// consumption back to facilities.
type pooling struct {
	pool   allocation.Pool
	owners [][]ownerWeight // per class
}

// poolFor builds the location pool available to coalition s.
func (m *Model) poolFor(s combin.Set) pooling {
	if m.Overlap == nil {
		var p pooling
		for _, i := range s.Members() {
			f := m.Facilities[i]
			if f.Locations == 0 {
				continue
			}
			p.pool.Classes = append(p.pool.Classes, allocation.Class{
				Label:    f.Name,
				Count:    f.Locations,
				Capacity: f.EffectiveCapacity(),
			})
			p.owners = append(p.owners, []ownerWeight{{facility: i, frac: 1}})
		}
		return p
	}
	// Overlapping coverage: group locations by the exact subset of
	// coalition members covering them; capacities add where facilities
	// overlap.
	cover := map[int]combin.Set{}
	for _, i := range s.Members() {
		for _, loc := range m.Overlap[i] {
			cover[loc] = cover[loc].With(i)
		}
	}
	classCount := map[combin.Set]int{}
	for _, owners := range cover {
		classCount[owners]++
	}
	var p pooling
	combin.Subsets(s, func(owners combin.Set) bool {
		count, ok := classCount[owners]
		if !ok || owners.IsEmpty() {
			return true
		}
		capacity := 0.0
		totalR := 0.0
		for _, i := range owners.Members() {
			capacity += m.Facilities[i].EffectiveCapacity()
			totalR += m.Facilities[i].EffectiveCapacity()
		}
		var ow []ownerWeight
		for _, i := range owners.Members() {
			frac := 0.0
			if totalR > 0 {
				frac = m.Facilities[i].EffectiveCapacity() / totalR
			}
			ow = append(ow, ownerWeight{facility: i, frac: frac})
		}
		p.pool.Classes = append(p.pool.Classes, allocation.Class{
			Label:    owners.String(),
			Count:    count,
			Capacity: capacity,
		})
		p.owners = append(p.owners, ow)
		return true
	})
	return p
}

// requests expands the demand workload into allocation requests.
func (m *Model) requests() []allocation.Request {
	var reqs []allocation.Request
	for _, class := range m.Demand.Classes {
		t := class.Type
		maxLoc := 0 // unbounded
		if !math.IsInf(t.MaxLocations, 1) {
			maxLoc = int(math.Floor(t.MaxLocations))
		}
		for k := 0; k < class.Count; k++ {
			reqs = append(reqs, allocation.Request{
				Min:       t.Utility().Threshold(),
				Max:       maxLoc,
				Shape:     t.Shape,
				Resources: t.Resources,
				Label:     t.Name,
			})
		}
	}
	return reqs
}

// Value is the characteristic function: the profit coalition s can generate
// by optimally serving the demand with its pooled resources
// (P = µ·Σ_k u_k(x_k), Sec. 3.1).
func (m *Model) Value(s combin.Set) float64 {
	if s.IsEmpty() {
		return 0
	}
	p := m.poolFor(s)
	res := allocation.Solve(p.pool, m.requests())
	return m.mu() * res.Utility
}

// Game returns the memoized coalitional game over the facilities. The
// cache is safe for concurrent Value calls (Value is a pure function of
// the model and the allocation solver is stateless), so the parallel
// engines — ParallelShapley, SnapshotParallel — can evaluate coalition
// allocations concurrently without a prior full snapshot.
func (m *Model) Game() *coalition.SafeCache {
	if m.game == nil {
		m.game = coalition.NewSafeCache(coalition.Func{Players: m.N(), V: m.Value})
	}
	return m.game
}

// GrandValue is V(N).
func (m *Model) GrandValue() float64 {
	return m.Game().Value(combin.Full(m.N()))
}

// ConsumptionByFacility solves the grand-coalition allocation and attributes
// consumed resource units to facilities (the numerator of ρ̂, eq. (7)).
func (m *Model) ConsumptionByFacility() []float64 {
	p := m.poolFor(combin.Full(m.N()))
	res := allocation.Solve(p.pool, m.requests())
	out := make([]float64, m.N())
	for c, consumed := range res.ConsumedByClass {
		for _, ow := range p.owners[c] {
			out[ow.facility] += consumed * ow.frac
		}
	}
	return out
}

// Invalidate drops the memoized game (call after mutating the model).
func (m *Model) Invalidate() { m.game = nil }
