// Package core implements the paper's primary contribution: the economic
// model of federated virtualized infrastructures (Sec. 2) and the federation
// game built on it (Sec. 3). A Model couples the facilities' contributions
// (locations L_i, per-location resources R_i, availability T_i) with a
// demand workload; its characteristic function V(S) is the maximum total
// utility coalition S can serve, computed by the allocation engine. Sharing
// policies — Shapley, availability-proportional, consumption-proportional,
// equal split, nucleolus — divide V(N) among the facilities.
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"fedshare/internal/allocation"
	"fedshare/internal/coalition"
	"fedshare/internal/combin"
	"fedshare/internal/economics"
	"fedshare/internal/stats"
)

// Facility is one resource provider (a PlanetLab regional authority, a
// testbed, a cloud region).
type Facility struct {
	Name string
	// Locations is L_i: the number of distinct locations the facility
	// contributes.
	Locations int
	// Resources is R_i: the resource units (slots for concurrent
	// experiments) available at each of its locations.
	Resources float64
	// Availability is T_i ∈ (0, 1]; 0 means "use the default of 1"
	// (the paper's analysis assumption).
	Availability float64
	// Users is U_i, the facility's affiliated user population (P2P
	// scenario bookkeeping; not used by the commercial value function).
	Users int
	// Cost is the facility's provision-cost model (zero by default, per
	// the paper's sunk-cost assumption).
	Cost economics.Cost
}

func (f Facility) availability() float64 {
	if f.Availability == 0 {
		return 1
	}
	return f.Availability
}

// EffectiveCapacity returns R_i·T_i, the capacity the facility actually
// offers per location.
func (f Facility) EffectiveCapacity() float64 {
	return f.Resources * f.availability()
}

// Validate checks the facility definition.
func (f Facility) Validate() error {
	if f.Locations < 0 {
		return fmt.Errorf("core: facility %s has negative locations", f.Name)
	}
	if f.Resources < 0 {
		return fmt.Errorf("core: facility %s has negative resources", f.Name)
	}
	if f.Availability < 0 || f.Availability > 1 {
		return fmt.Errorf("core: facility %s availability %g outside [0,1]", f.Name, f.Availability)
	}
	return nil
}

// Model is the federation game instance: who contributes what, and what the
// demand looks like.
type Model struct {
	Facilities []Facility
	Demand     *economics.Workload
	// Mu is the market conversion from utility to profit (µ ≤ 1 in the
	// paper); 0 means 1.
	Mu float64
	// Overlap, when non-nil, maps each facility to the explicit set of
	// location identifiers it covers (Sec. 2.1's overlap model o_ij).
	// When nil, facilities cover pairwise-disjoint locations, which is
	// the paper's setting for all numerical figures.
	Overlap [][]int

	// mu guards the lazily-built game and request caches so concurrent
	// sweep workers can share a model safely; reqs is additionally
	// published through an atomic pointer so the per-coalition read in
	// Value stays lock-free.
	mu    sync.Mutex
	game  *coalition.SafeCache
	table *coalition.Table
	reqs  atomic.Pointer[[]allocation.Request]
}

// MaxFacilities bounds federation size. The bitmask-based exact engines
// stop at combin.MaxPlayers (64); beyond that every computation runs
// through the member-list tier (ValueMembers, coalition.Values), which has
// no representational limit — the bound exists only to catch absurd
// configurations early.
const MaxFacilities = 4096

// NewModel validates and builds a federation model.
func NewModel(facilities []Facility, demand *economics.Workload) (*Model, error) {
	if len(facilities) == 0 {
		return nil, fmt.Errorf("core: federation needs at least one facility")
	}
	if len(facilities) > MaxFacilities {
		return nil, fmt.Errorf("core: at most %d facilities supported", MaxFacilities)
	}
	for _, f := range facilities {
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}
	if demand == nil {
		demand = &economics.Workload{}
	}
	return &Model{Facilities: facilities, Demand: demand}, nil
}

// WithOverlap samples an overlap structure: each facility covers L_i
// distinct locations drawn uniformly from a universe of the given size, so
// the pairwise overlap probability o_ij is governed by universe size
// (independent placement, as the paper suggests for simplicity). It returns
// the model for chaining and is deterministic given the rng.
func (m *Model) WithOverlap(universe int, rng *stats.Rand) (*Model, error) {
	if m.N() > combin.MaxPlayers {
		return nil, fmt.Errorf("core: overlap models are limited to %d facilities (the coalition bitmask bound); have %d",
			combin.MaxPlayers, m.N())
	}
	for _, f := range m.Facilities {
		if f.Locations > universe {
			return nil, fmt.Errorf("core: facility %s has %d locations, universe only %d",
				f.Name, f.Locations, universe)
		}
	}
	m.Overlap = make([][]int, len(m.Facilities))
	for i, f := range m.Facilities {
		perm := rng.Perm(universe)
		ids := append([]int(nil), perm[:f.Locations]...)
		m.Overlap[i] = ids
	}
	m.Invalidate()
	return m, nil
}

// muFactor returns the profit conversion factor.
func (m *Model) muFactor() float64 {
	if m.Mu == 0 {
		return 1
	}
	return m.Mu
}

// N returns the number of facilities.
func (m *Model) N() int { return len(m.Facilities) }

// ownerWeight attributes a pool class to contributing facilities.
type ownerWeight struct {
	facility int
	frac     float64
}

// pooling couples an allocation pool with the attribution of each class's
// consumption back to facilities.
type pooling struct {
	pool   allocation.Pool
	owners [][]ownerWeight // per class
}

// poolFor builds the location pool available to coalition s.
func (m *Model) poolFor(s combin.Set) pooling {
	if m.Overlap == nil {
		var p pooling
		for _, i := range s.Members() {
			f := m.Facilities[i]
			if f.Locations == 0 {
				continue
			}
			p.pool.Classes = append(p.pool.Classes, allocation.Class{
				Label:    f.Name,
				Count:    f.Locations,
				Capacity: f.EffectiveCapacity(),
			})
			p.owners = append(p.owners, []ownerWeight{{facility: i, frac: 1}})
		}
		return p
	}
	// Overlapping coverage: group locations by the exact subset of
	// coalition members covering them; capacities add where facilities
	// overlap.
	cover := map[int]combin.Set{}
	for _, i := range s.Members() {
		for _, loc := range m.Overlap[i] {
			cover[loc] = cover[loc].With(i)
		}
	}
	classCount := map[combin.Set]int{}
	for _, owners := range cover {
		classCount[owners]++
	}
	var p pooling
	combin.Subsets(s, func(owners combin.Set) bool {
		count, ok := classCount[owners]
		if !ok || owners.IsEmpty() {
			return true
		}
		capacity := 0.0
		for _, i := range owners.Members() {
			capacity += m.Facilities[i].EffectiveCapacity()
		}
		var ow []ownerWeight
		for _, i := range owners.Members() {
			frac := 0.0
			if capacity > 0 {
				frac = m.Facilities[i].EffectiveCapacity() / capacity
			}
			ow = append(ow, ownerWeight{facility: i, frac: frac})
		}
		p.pool.Classes = append(p.pool.Classes, allocation.Class{
			Label:    owners.String(),
			Count:    count,
			Capacity: capacity,
		})
		p.owners = append(p.owners, ow)
		return true
	})
	return p
}

// requests returns the demand workload expanded into allocation requests,
// building the expansion once — Value calls it for every coalition, and a
// batch workload expands to K structs each time otherwise.
func (m *Model) requests() []allocation.Request {
	if p := m.reqs.Load(); p != nil {
		return *p
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.reqs.Load(); p != nil {
		return *p
	}
	reqs := m.buildRequests()
	m.reqs.Store(&reqs)
	return reqs
}

// buildRequests expands the demand workload into allocation requests.
func (m *Model) buildRequests() []allocation.Request {
	reqs := []allocation.Request{}
	for _, class := range m.Demand.Classes {
		t := class.Type
		maxLoc := 0 // unbounded
		if !math.IsInf(t.MaxLocations, 1) {
			maxLoc = int(math.Floor(t.MaxLocations))
		}
		for k := 0; k < class.Count; k++ {
			reqs = append(reqs, allocation.Request{
				Min:       t.Utility().Threshold(),
				Max:       maxLoc,
				Shape:     t.Shape,
				Resources: t.Resources,
				Label:     t.Name,
			})
		}
	}
	return reqs
}

// Value is the characteristic function: the profit coalition s can generate
// by optimally serving the demand with its pooled resources
// (P = µ·Σ_k u_k(x_k), Sec. 3.1).
func (m *Model) Value(s combin.Set) float64 {
	if s.IsEmpty() {
		return 0
	}
	if m.Overlap == nil {
		// Disjoint coverage: build only the pool, skipping poolFor's
		// per-class ownership attribution, which Value never reads. The
		// class slice comes from a scratch pool — the solver and the memo
		// read it by value and never retain it.
		scratch := classScratchPool.Get().(*[]allocation.Class)
		classes := (*scratch)[:0]
		for i := range m.Facilities {
			f := &m.Facilities[i]
			if !s.Contains(i) || f.Locations == 0 {
				continue
			}
			classes = append(classes, allocation.Class{
				Label:    f.Name,
				Count:    f.Locations,
				Capacity: f.EffectiveCapacity(),
			})
		}
		res := allocation.SolveCached(allocation.Pool{Classes: classes}, m.requests())
		*scratch = classes
		classScratchPool.Put(scratch)
		return m.muFactor() * res.Utility
	}
	p := m.poolFor(s)
	res := m.solve(p.pool)
	return m.muFactor() * res.Utility
}

// classScratchPool recycles the per-coalition class slices Value builds.
var classScratchPool = sync.Pool{New: func() any { return new([]allocation.Class) }}

// ValueMembers is the characteristic function over an explicit member list
// — the large-n tier of the federation game (coalition.MemberGame). It is
// exactly Value(S) for the coalition S listing the given facilities, but
// free of the 64-facility bitmask bound; the sampling Shapley engines walk
// permutation prefixes through it. Disjoint-coverage models build the pool
// straight from the member list (the allocation memo's canonical class
// ordering makes the result independent of member order); overlap models —
// which NewModel and WithOverlap keep within the bitmask bound — route
// through Value.
func (m *Model) ValueMembers(members []int) float64 {
	if len(members) == 0 {
		return 0
	}
	if m.Overlap != nil {
		var s combin.Set
		for _, i := range members {
			s = s.With(i)
		}
		return m.Value(s)
	}
	scratch := classScratchPool.Get().(*[]allocation.Class)
	classes := (*scratch)[:0]
	for _, i := range members {
		f := &m.Facilities[i]
		if f.Locations == 0 {
			continue
		}
		classes = append(classes, allocation.Class{
			Label:    f.Name,
			Count:    f.Locations,
			Capacity: f.EffectiveCapacity(),
		})
	}
	res := allocation.SolveCached(allocation.Pool{Classes: classes}, m.requests())
	*scratch = classes
	classScratchPool.Put(scratch)
	return m.muFactor() * res.Utility
}

// classSignature is the interchangeability key of a facility: two
// facilities with equal signatures contribute identically to every
// coalition value, so they are symmetric players of the federation game.
// Name and Users are deliberately excluded — the unweighted game's V(S)
// never reads them.
type classSignature struct {
	locations    int
	resources    float64
	availability float64
	cost         economics.Cost
}

// ClassStructure detects the model's interchangeable-facility structure for
// the symmetry-collapsing Shapley engines (coalition.ClassStructured). It
// returns nil for overlap models: there, facilities with equal parameters
// still cover different concrete locations, so they are not symmetric. The
// collapsed characteristic function builds one pool class per facility
// replica — the same classes Value builds — so collapsed and direct solves
// share the allocation memo's canonical entries bit-for-bit.
func (m *Model) ClassStructure() *coalition.ClassStructure {
	if m.Overlap != nil {
		return nil
	}
	classIdx := map[classSignature]int{}
	classOf := make([]int, m.N())
	var mult []int
	var reps []int // representative facility per class
	for i, f := range m.Facilities {
		sig := classSignature{
			locations:    f.Locations,
			resources:    f.Resources,
			availability: f.availability(),
			cost:         f.Cost,
		}
		j, ok := classIdx[sig]
		if !ok {
			j = len(mult)
			classIdx[sig] = j
			mult = append(mult, 0)
			reps = append(reps, i)
		}
		classOf[i] = j
		mult[j]++
	}
	return &coalition.ClassStructure{
		Mult:    mult,
		ClassOf: classOf,
		Value: func(counts []int) float64 {
			scratch := classScratchPool.Get().(*[]allocation.Class)
			classes := (*scratch)[:0]
			for j, c := range counts {
				f := &m.Facilities[reps[j]]
				if f.Locations == 0 {
					continue
				}
				for r := 0; r < c; r++ {
					classes = append(classes, allocation.Class{
						Label:    f.Name,
						Count:    f.Locations,
						Capacity: f.EffectiveCapacity(),
					})
				}
			}
			res := allocation.SolveCached(allocation.Pool{Classes: classes}, m.requests())
			*scratch = classes
			classScratchPool.Put(scratch)
			return m.muFactor() * res.Utility
		},
	}
}

// solve runs the allocation engine for a coalition pool. Disjoint-coverage
// models (every numerical figure) go through the process-wide aggregate-
// keyed memo: their V(S) depends only on the class multiset plus the
// demand, so symmetric coalitions and repeated pools across sweep points
// collapse to one solve. Overlap models are deliberately not memoized —
// the signature would conflate distinct cover structures' attribution, so
// they are treated as uncacheable and always solve directly.
func (m *Model) solve(pool allocation.Pool) *allocation.Result {
	if m.Overlap == nil {
		return allocation.SolveCached(pool, m.requests())
	}
	return allocation.Solve(pool, m.requests())
}

// Game returns the memoized coalitional game over the facilities. The
// cache is safe for concurrent Value calls (Value is a pure function of
// the model and the allocation solver is stateless), so the parallel
// engines — ParallelShapley, SnapshotParallel — can evaluate coalition
// allocations concurrently without a prior full snapshot. The lazy init is
// mutex-guarded, so concurrent sweep workers sharing a model cannot race
// to build it.
func (m *Model) Game() *coalition.SafeCache {
	if m.N() > combin.MaxPlayers {
		panic(fmt.Sprintf("core: the bitmask game is limited to %d facilities, have %d; use ValueMembers/coalition.Values",
			combin.MaxPlayers, m.N()))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.game == nil {
		m.game = coalition.NewSafeCache(coalition.Func{Players: m.N(), V: m.Value})
	}
	return m.game
}

// Table returns the model's dense coalition-value table, materialized once
// (2^n Value evaluations on first call). Value is safe for concurrent calls,
// so unlike Game() no locking wrapper sits between the exact engines and
// the characteristic function — for the figure sweeps' small models this
// skips a SafeCache allocation and a mutex acquisition per coalition. It
// errors for models too large to snapshot; use Game() then.
func (m *Model) Table() (*coalition.Table, error) {
	if m.N() > combin.MaxPlayers {
		return nil, fmt.Errorf("core: %d facilities exceed the %d-player snapshot bound", m.N(), combin.MaxPlayers)
	}
	// Warm the request cache first: Value calls requests(), whose slow
	// path takes m.mu, and the snapshot below runs with m.mu held.
	m.requests()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.table == nil {
		t, err := coalition.Snapshot(coalition.Func{Players: m.N(), V: m.Value})
		if err != nil {
			return nil, err
		}
		m.table = t
	}
	return m.table, nil
}

// GrandValue is V(N). It reads the dense table when one has been
// materialized and otherwise evaluates through the lazy game cache, so
// callers needing only V(N) never pay for a full snapshot.
func (m *Model) GrandValue() float64 {
	n := m.N()
	if n > combin.MaxPlayers {
		// Beyond the bitmask bound: one member-list evaluation (the
		// allocation memo caches the repeat calls).
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		return m.ValueMembers(members)
	}
	m.mu.Lock()
	t := m.table
	m.mu.Unlock()
	if t != nil {
		return t.Value(combin.Full(n))
	}
	return m.Game().Value(combin.Full(n))
}

// ConsumptionByFacility solves the grand-coalition allocation and attributes
// consumed resource units to facilities (the numerator of ρ̂, eq. (7)).
func (m *Model) ConsumptionByFacility() []float64 {
	p := m.grandPool()
	res := m.solve(p.pool)
	out := make([]float64, m.N())
	for c, consumed := range res.ConsumedByClass {
		for _, ow := range p.owners[c] {
			out[ow.facility] += consumed * ow.frac
		}
	}
	return out
}

// grandPool builds the grand coalition's pooling. Disjoint models beyond
// the bitmask bound assemble it directly from the facility list; everything
// else goes through poolFor.
func (m *Model) grandPool() pooling {
	if m.Overlap != nil || m.N() <= combin.MaxPlayers {
		return m.poolFor(combin.Full(m.N()))
	}
	var p pooling
	for i, f := range m.Facilities {
		if f.Locations == 0 {
			continue
		}
		p.pool.Classes = append(p.pool.Classes, allocation.Class{
			Label:    f.Name,
			Count:    f.Locations,
			Capacity: f.EffectiveCapacity(),
		})
		p.owners = append(p.owners, []ownerWeight{{facility: i, frac: 1}})
	}
	return p
}

// Invalidate drops the memoized game and request expansion (call after
// mutating the model).
func (m *Model) Invalidate() {
	m.mu.Lock()
	m.game = nil
	m.table = nil
	m.reqs.Store(nil)
	m.mu.Unlock()
}

// CloneWith returns a copy of the model sharing the (read-only) demand and
// overlap structure, with mutate applied to the copy's facilities. It is
// the provision-sweep building block: each sweep point gets a private
// model, so points evaluate concurrently without racing on the game cache.
func (m *Model) CloneWith(mutate func(facilities []Facility)) *Model {
	fs := append([]Facility(nil), m.Facilities...)
	if mutate != nil {
		mutate(fs)
	}
	return &Model{Facilities: fs, Demand: m.Demand, Mu: m.Mu, Overlap: m.Overlap}
}
