package core

import (
	"fmt"

	"fedshare/internal/coalition"
	"fedshare/internal/economics"
	"fedshare/internal/stats"
)

// AuthorityGroup is one top-level authority and the member testbeds that
// federate through it (Sec. 1.2: "other testbeds — e.g., G-Lab, EmanicsLab,
// and VINI — are joining the federation through the regional authorities").
type AuthorityGroup struct {
	Name    string
	Members []Facility
}

// HierarchicalShares is the result of the two-level value division.
type HierarchicalShares struct {
	// Authority[i] is group i's normalized share (sums to 1 when the
	// federation has value).
	Authority []float64
	// Member[i][j] is the normalized share of group i's j-th member;
	// Σ_j Member[i][j] == Authority[i] (Owen-value quotient consistency).
	Member [][]float64
	// GrandValue is V(N) over all members.
	GrandValue float64
}

// HierarchicalShapley computes the Owen value over the hierarchical
// federation: member testbeds are the players, authorities are the
// coalition-structure blocks. Authority-level totals coincide with the
// Shapley value of the quotient (authority-level) game, so the division is
// consistent across the hierarchy — the paper's "interdependencies between
// local and global federation policies" made concrete.
//
// Exact enumeration is used when feasible; otherwise mcSamples Monte-Carlo
// orderings (default 20000) with the given seed.
func HierarchicalShapley(groups []AuthorityGroup, demand *economics.Workload, mcSamples int, seed uint64) (*HierarchicalShares, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: need at least one authority group")
	}
	var members []Facility
	var blocks [][]int
	for _, g := range groups {
		if len(g.Members) == 0 {
			return nil, fmt.Errorf("core: authority %s has no members", g.Name)
		}
		var block []int
		for _, m := range g.Members {
			block = append(block, len(members))
			members = append(members, m)
		}
		blocks = append(blocks, block)
	}
	model, err := NewModel(members, demand)
	if err != nil {
		return nil, err
	}
	game := model.Game()
	st := coalition.Structure{Blocks: blocks}

	phi, err := coalition.Owen(game, st)
	if err != nil {
		// Too many structured orderings: fall back to sampling.
		if mcSamples <= 0 {
			mcSamples = 20000
		}
		phi, err = coalition.MonteCarloOwen(game, st, mcSamples, stats.NewRand(seed))
		if err != nil {
			return nil, err
		}
	}
	norm := coalition.Normalize(game, phi)

	out := &HierarchicalShares{
		Authority:  make([]float64, len(groups)),
		Member:     make([][]float64, len(groups)),
		GrandValue: model.GrandValue(),
	}
	idx := 0
	for gi, g := range groups {
		out.Member[gi] = make([]float64, len(g.Members))
		for j := range g.Members {
			out.Member[gi][j] = norm[idx]
			out.Authority[gi] += norm[idx]
			idx++
		}
	}
	return out, nil
}
