package core

import (
	"math"
	"reflect"
	"testing"

	"fedshare/internal/economics"
)

func subfedModel(t *testing.T) *Model {
	t.Helper()
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "batch", MinLocations: 6, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel([]Facility{
		{Name: "A", Locations: 4, Resources: 1},
		{Name: "B", Locations: 6, Resources: 1.5},
		{Name: "C", Locations: 3, Resources: 2},
		{Name: "D", Locations: 5, Resources: 1},
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A sub-federation must be the same game restricted to the surviving
// coalition: identical to building a fresh model from the kept facilities
// under the unchanged demand.
func TestSubFederationMatchesDirectModel(t *testing.T) {
	m := subfedModel(t)
	keep := map[string]bool{"A": true, "C": true, "D": true}
	sub, excluded, err := m.SubFederation(func(n string) bool { return keep[n] })
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"B"}; !reflect.DeepEqual(excluded, want) {
		t.Errorf("excluded = %v, want %v", excluded, want)
	}
	var kept []Facility
	for _, f := range m.Facilities {
		if keep[f.Name] {
			kept = append(kept, f)
		}
	}
	direct, err := NewModel(kept, m.Demand)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sub.GrandValue(), direct.GrandValue(); got != want {
		t.Errorf("sub grand value %.12f, direct %.12f", got, want)
	}
	pol, err := PolicyByName("shapley")
	if err != nil {
		t.Fatal(err)
	}
	subShares, err := pol.Shares(sub)
	if err != nil {
		t.Fatal(err)
	}
	directShares, err := pol.Shares(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(subShares, directShares) {
		t.Errorf("sub shares %v, direct %v", subShares, directShares)
	}
}

func TestSubFederationKeepAllReturnsReceiver(t *testing.T) {
	m := subfedModel(t)
	sub, excluded, err := m.SubFederation(func(string) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if sub != m {
		t.Error("keeping every facility should return the receiver itself")
	}
	if excluded != nil {
		t.Errorf("excluded = %v, want nil", excluded)
	}
}

func TestSubFederationKeepNoneErrors(t *testing.T) {
	m := subfedModel(t)
	_, excluded, err := m.SubFederation(func(string) bool { return false })
	if err == nil {
		t.Fatal("empty sub-federation must error")
	}
	if len(excluded) != len(m.Facilities) {
		t.Errorf("excluded %d facilities, want %d", len(excluded), len(m.Facilities))
	}
}
