package core

import (
	"math"
	"testing"

	"fedshare/internal/coalition"
	"fedshare/internal/economics"
)

// benchFederation builds an n-facility federation from k facility
// templates for the approximation-tier benchmarks — the same shape as
// heteroModel but usable from benchmarks.
func benchFederation(tb testing.TB, n, k int) *Model {
	tb.Helper()
	wl, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "batch", MinLocations: 10, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 40,
	})
	if err != nil {
		tb.Fatal(err)
	}
	fs := make([]Facility, n)
	for i := range fs {
		tpl := i % k
		fs[i] = Facility{
			Name:      fsName(i, tpl),
			Locations: 5 + 3*tpl,
			Resources: 1 + 0.5*float64(tpl),
		}
	}
	m, err := NewModel(fs, wl)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkApproxShapley measures the full product path of the
// approximation tier at federation scale: symmetry collapse over 5
// facility templates, then stratified antithetic permutation sampling
// adaptive to a 1% relative CI target. These are the BENCH_6.json
// wall-clock points (n = 50, 100, 200, 500). Each iteration builds a
// fresh model so the allocation memo, not a per-model cache, carries
// cross-iteration state — matching how a scenario sweep behaves.
func BenchmarkApproxShapley(b *testing.B) {
	for _, n := range []int{50, 100, 200, 500} {
		b.Run(benchName(n), func(b *testing.B) {
			p := ApproxShapleyPolicy{CITarget: 0.01, Seed: 42, Method: coalition.MethodApprox}
			for i := 0; i < b.N; i++ {
				m := benchFederation(b, n, 5)
				res, err := p.Result(m)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatalf("n=%d did not converge in %d samples", n, res.Samples)
				}
			}
		})
	}
}

// BenchmarkApproxShapleyDistinct is the worst case for the tier: no two
// facilities alike, so symmetry collapse finds nothing and the sampler
// walks the full n-player member-list game. Fixed budget (one stratified
// antithetic round) rather than a CI target, so the metric is pure
// sampling throughput — since PR 7, dominated by the incremental prefix
// solver rather than per-prefix re-solves.
func BenchmarkApproxShapleyDistinct(b *testing.B) {
	for _, n := range []int{50, 100, 200, 500} {
		b.Run(benchName(n), func(b *testing.B) {
			p := ApproxShapleyPolicy{Samples: 2 * n, Seed: 42, Method: coalition.MethodApprox}
			for i := 0; i < b.N; i++ {
				m := benchFederation(b, n, n)
				if _, err := p.Result(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactShapley anchors the comparison: the dense 2^n kernel on
// the largest sizes it can still reach. Together with BenchmarkApproxShapley
// this is the "2^n wall" picture — exact cost doubles per facility while
// the sampler's grows polynomially.
func BenchmarkExactShapley(b *testing.B) {
	for _, n := range []int{12, 16, 20} {
		b.Run(benchName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := benchFederation(b, n, 5)
				if _, err := (ShapleyPolicy{}).Shares(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(n int) string {
	switch {
	case n >= 100:
		return "n=" + string(rune('0'+n/100)) + string(rune('0'+n/10%10)) + string(rune('0'+n%10))
	default:
		return "n=" + string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
}

// TestKernelSamplerAgreement is the agreement gate feeding BENCH_6.json:
// at sizes where the exact 2^n kernel is still feasible, the sampled
// shares must match it within their own reported confidence intervals.
// The max-abs-error per size is logged for the bench record.
func TestKernelSamplerAgreement(t *testing.T) {
	for _, n := range []int{12, 16, 20} {
		m := benchFederation(t, n, 4)
		exact := shares(t, m, ShapleyPolicy{})
		p := ApproxShapleyPolicy{Samples: 4096, Seed: 42, Method: coalition.MethodApprox}
		res, err := p.Result(m)
		if err != nil {
			t.Fatal(err)
		}
		vn := m.GrandValue()
		maxErr, maxRel := 0.0, 0.0
		for i := range exact {
			err := math.Abs(res.Phi[i]/vn - exact[i])
			if err > maxErr {
				maxErr = err
			}
			if rel := err * vn; rel > 5*res.CIHalf[i]+1e-9 {
				t.Errorf("n=%d facility %d: |φ̂-φ| = %g beyond 5×CI %g", n, i, rel, res.CIHalf[i])
			}
			if r := err / exact[i]; exact[i] > 0 && r > maxRel {
				maxRel = r
			}
		}
		t.Logf("n=%d: max abs share error %.2e (max rel %.2e) at %d samples", n, maxErr, maxRel, res.Samples)
	}
}
