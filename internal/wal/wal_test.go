package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fedshare/internal/obs"
)

func openTestLog(t *testing.T, dir string, opts Options) (*Log, *Recovered) {
	t.Helper()
	opts.Dir = dir
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, rec
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("append %d: seq = %d, want %d", i, seq, want)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openTestLog(t, dir, Options{})
	if rec.LastSeq != 0 || rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2 := openTestLog(t, dir, Options{})
	if rec2.LastSeq != 10 || len(rec2.Records) != 10 {
		t.Fatalf("recovered LastSeq=%d records=%d, want 10/10", rec2.LastSeq, len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq = %d", i, r.Seq)
		}
		if want := fmt.Sprintf("record-%04d", i); string(r.Data) != want {
			t.Errorf("record %d: data = %q, want %q", i, r.Data, want)
		}
	}
}

func TestSnapshotAndSuffixRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{})
	appendN(t, l, 0, 5)
	if err := l.Snapshot([]byte("state-at-5")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := openTestLog(t, dir, Options{})
	if string(rec.Snapshot) != "state-at-5" || rec.SnapshotSeq != 5 {
		t.Fatalf("snapshot = %q at %d, want state-at-5 at 5", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 3 || rec.LastSeq != 8 {
		t.Fatalf("suffix = %d records LastSeq=%d, want 3/8", len(rec.Records), rec.LastSeq)
	}
	if rec.Records[0].Seq != 6 {
		t.Fatalf("suffix starts at %d, want 6", rec.Records[0].Seq)
	}
}

func TestSnapshotRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{KeepSnapshots: 1})
	for round := 0; round < 4; round++ {
		appendN(t, l, round*4, 4)
		if err := l.Snapshot([]byte(fmt.Sprintf("state-%d", round))); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := l.listFiles("wal-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("segments after pruning = %v, want exactly the live one", segs)
	}
	snaps, err := l.listFiles("snap-", ".snap")
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0] != 16 {
		t.Errorf("snapshots after pruning = %v, want [16]", snaps)
	}
}

func TestSnapshotOfIdleLog(t *testing.T) {
	// A snapshot when the live segment has no records — a fresh log, or
	// back-to-back snapshots with no appends in between — must not try to
	// rotate into the segment file that already exists.
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{})
	if err := l.Snapshot([]byte("empty-state")); err != nil {
		t.Fatalf("snapshot of fresh log: %v", err)
	}
	if err := l.Snapshot([]byte("empty-state-2")); err != nil {
		t.Fatalf("second idle snapshot: %v", err)
	}
	appendN(t, l, 0, 3)
	if err := l.Snapshot([]byte("state-at-3")); err != nil {
		t.Fatal(err)
	}
	// Immediately snapshot again: the rotation above left an empty live
	// segment, the exact shape of a graceful Close after a periodic cut.
	if err := l.Snapshot([]byte("state-at-3-again")); err != nil {
		t.Fatalf("snapshot right after rotation: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := openTestLog(t, dir, Options{})
	if string(rec.Snapshot) != "state-at-3-again" || rec.SnapshotSeq != 3 {
		t.Fatalf("recovered snapshot %q at %d, want state-at-3-again at 3", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 0 || rec.LastSeq != 3 {
		t.Fatalf("suffix = %d records LastSeq=%d, want 0/3", len(rec.Records), rec.LastSeq)
	}
}

func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{KeepSnapshots: 2})
	appendN(t, l, 0, 3)
	if err := l.Snapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 3)
	if err := l.Snapshot([]byte("newer")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot's checksum region.
	path := filepath.Join(dir, snapshotName(6))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openTestLog(t, dir, Options{})
	if string(rec.Snapshot) != "good" || rec.SnapshotSeq != 3 {
		t.Fatalf("fell back to %q at %d, want good at 3", rec.Snapshot, rec.SnapshotSeq)
	}
	// Records 4..6 were pruned at the second snapshot, so recovery resumes
	// from 3; that is the documented cost of a corrupt snapshot, not data
	// loss the caller acknowledged.
	if rec.LastSeq < 3 {
		t.Fatalf("LastSeq = %d, want >= 3", rec.LastSeq)
	}
}

// TestTornTailEveryByteBoundary is the randomized-crash-point suite pinned
// down to determinism: the final record is truncated at every possible
// byte boundary, and recovery must always come back to exactly the
// records before it, then keep working as a live log.
func TestTornTailEveryByteBoundary(t *testing.T) {
	const keep = 4 // records that must survive
	base := t.TempDir()
	l, _ := openTestLog(t, base, Options{})
	appendN(t, l, 0, keep)
	goodSize := segmentSize(t, base)
	appendN(t, l, keep, 1) // the record to tear
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fullSize := segmentSize(t, base)
	seg := findSegment(t, base)
	full, err := os.ReadFile(filepath.Join(base, seg))
	if err != nil {
		t.Fatal(err)
	}

	for cut := goodSize; cut < fullSize; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, seg), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec := openTestLog(t, dir, Options{})
		if rec.LastSeq != keep || len(rec.Records) != keep {
			t.Fatalf("cut at %d: recovered LastSeq=%d records=%d, want %d/%d",
				cut, rec.LastSeq, len(rec.Records), keep, keep)
		}
		// Recovery counts the bytes that reached disk but do not form a
		// whole valid record — the torn fragment, not the unwritten rest.
		if rec.DroppedBytes != cut-goodSize {
			t.Errorf("cut at %d: DroppedBytes = %d, want %d", cut, rec.DroppedBytes, cut-goodSize)
		}
		// The healed log must append cleanly on top of the truncation.
		seq, err := l2.Append([]byte("after-crash"))
		if err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if seq != keep+1 {
			t.Fatalf("cut at %d: resumed at seq %d, want %d", cut, seq, keep+1)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, rec2 := openTestLog(t, dir, Options{})
		if rec2.LastSeq != keep+1 || string(rec2.Records[keep].Data) != "after-crash" {
			t.Fatalf("cut at %d: second recovery LastSeq=%d, want %d with after-crash tail",
				cut, rec2.LastSeq, keep+1)
		}
	}
}

// TestCorruptTailEveryByte flips each byte of the final record in turn;
// recovery must stop before the corrupt record every time.
func TestCorruptTailEveryByte(t *testing.T) {
	const keep = 3
	base := t.TempDir()
	l, _ := openTestLog(t, base, Options{})
	appendN(t, l, 0, keep)
	goodSize := segmentSize(t, base)
	appendN(t, l, keep, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := findSegment(t, base)
	full, err := os.ReadFile(filepath.Join(base, seg))
	if err != nil {
		t.Fatal(err)
	}

	for off := goodSize; off < int64(len(full)); off++ {
		dir := t.TempDir()
		mutated := append([]byte(nil), full...)
		mutated[off] ^= 0x5a
		if err := os.WriteFile(filepath.Join(dir, seg), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec := openTestLog(t, dir, Options{})
		if rec.LastSeq != keep || len(rec.Records) != keep {
			t.Fatalf("flip at %d: recovered LastSeq=%d records=%d, want %d intact",
				off, rec.LastSeq, len(rec.Records), keep)
		}
		for i, r := range rec.Records {
			if want := fmt.Sprintf("record-%04d", i); string(r.Data) != want {
				t.Fatalf("flip at %d: surviving record %d corrupted: %q", off, i, r.Data)
			}
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSequenceGapStopsRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{})
	appendN(t, l, 0, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a record with a gapped sequence number and append it raw.
	seg := findSegment(t, dir)
	frame := appendFrame(nil, 7, []byte("from-the-future"))
	f, err := os.OpenFile(filepath.Join(dir, seg), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	_, rec := openTestLog(t, dir, Options{})
	if rec.LastSeq != 2 || len(rec.Records) != 2 {
		t.Fatalf("recovered past a sequence gap: LastSeq=%d records=%d", rec.LastSeq, len(rec.Records))
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncInterval, FsyncAlways} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			reg := obs.NewRegistry()
			l, _ := openTestLog(t, dir, Options{Policy: policy, Interval: 5 * time.Millisecond, Registry: reg})
			appendN(t, l, 0, 5)
			fsyncs := reg.Counter("fedshare_wal_fsyncs_total", "")
			if policy == FsyncAlways {
				if got := fsyncs.Value(); got != 5 {
					t.Errorf("fsyncs = %d, want 5 (one per append)", got)
				}
			} else {
				deadline := time.Now().Add(2 * time.Second)
				for fsyncs.Value() == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if fsyncs.Value() == 0 {
					t.Error("interval policy never fsynced in the background")
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec := openTestLog(t, dir, Options{Policy: policy})
			if rec.LastSeq != 5 {
				t.Errorf("recovered LastSeq = %d, want 5", rec.LastSeq)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	if p, err := ParseFsyncPolicy("always"); err != nil || p != FsyncAlways {
		t.Errorf("always -> %v, %v", p, err)
	}
	if p, err := ParseFsyncPolicy("interval"); err != nil || p != FsyncInterval {
		t.Errorf("interval -> %v, %v", p, err)
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	l, _ := openTestLog(t, t.TempDir(), Options{})
	if _, err := l.Append(make([]byte, MaxRecordSize)); err == nil {
		t.Fatal("oversized append accepted")
	}
	if seq, err := l.Append([]byte("ok")); err != nil || seq != 1 {
		t.Fatalf("append after rejection: seq=%d err=%v", seq, err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openTestLog(t, dir, Options{})
	if rec.LastSeq != workers*per || len(rec.Records) != workers*per {
		t.Fatalf("recovered %d records LastSeq=%d, want %d", len(rec.Records), rec.LastSeq, workers*per)
	}
	seen := map[string]bool{}
	for _, r := range rec.Records {
		seen[string(r.Data)] = true
	}
	if len(seen) != workers*per {
		t.Errorf("distinct payloads = %d, want %d", len(seen), workers*per)
	}
}

func TestSnapshotSurvivesTornTmpFile(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{})
	appendN(t, l, 0, 3)
	if err := l.Snapshot([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-snapshot leaves only a .tmp file, which recovery ignores.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(9)+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openTestLog(t, dir, Options{})
	if string(rec.Snapshot) != "committed" || rec.SnapshotSeq != 3 {
		t.Fatalf("recovered %q at %d, want committed at 3", rec.Snapshot, rec.SnapshotSeq)
	}
}

func TestEmptyRecordRoundTrips(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTestLog(t, dir, Options{})
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openTestLog(t, dir, Options{})
	if len(rec.Records) != 1 || len(rec.Records[0].Data) != 0 {
		t.Fatalf("recovered %+v, want one empty record", rec.Records)
	}
}

// --- helpers ---

func findSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want exactly one", segs)
	}
	return segs[0]
}

func segmentSize(t *testing.T, dir string) int64 {
	t.Helper()
	info, err := os.Stat(filepath.Join(dir, findSegment(t, dir)))
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func TestFrameEncodingIsStable(t *testing.T) {
	frame := appendFrame(nil, 1, []byte("x"))
	// 8-byte header + 8-byte seq + 1 data byte.
	if len(frame) != headerSize+seqSize+1 {
		t.Fatalf("frame length = %d", len(frame))
	}
	seq, data, n, err := readFrame(bytes.NewReader(frame))
	if err != nil || seq != 1 || string(data) != "x" || n != int64(len(frame)) {
		t.Fatalf("readFrame = %d %q %d %v", seq, data, n, err)
	}
}
