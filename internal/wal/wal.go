// Package wal implements a write-ahead log with snapshot-based recovery
// for the federation plane's durable state. Records are length-prefixed,
// CRC32-checksummed, and carry a monotonically increasing sequence number;
// a snapshot captures the full state at a sequence point and rotates the
// log so disk usage and recovery time stay bounded.
//
// Durability model: every Append issues one write(2) for the whole frame,
// so an acknowledged record survives the death of the process (kill -9)
// as soon as Append returns. Whether it also survives the death of the
// *machine* depends on the fsync policy: FsyncAlways syncs before Append
// returns, FsyncInterval syncs on a timer and bounds the power-loss window
// to one interval. Recovery loads the newest valid snapshot and replays
// the log suffix, stopping at the first torn, corrupt, or out-of-sequence
// record — any durable prefix of the log is a consistent state, so a torn
// tail simply rolls the store back to the last record that fully reached
// the disk.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fedshare/internal/obs"
)

const (
	// headerSize prefixes every frame: 4-byte big-endian payload length and
	// 4-byte CRC32 (IEEE) of the payload.
	headerSize = 8
	// seqSize leads every payload: the record's 8-byte sequence number.
	seqSize = 8
	// MaxRecordSize bounds one record so a corrupt length header cannot
	// force an unbounded allocation during recovery.
	MaxRecordSize = 16 << 20
)

// FsyncPolicy selects when appended records are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval writes each record to the OS immediately but calls
	// fsync on a timer: process crashes lose nothing, power loss can lose
	// at most one interval of records. This is the default.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every append: an acknowledged record
	// survives power loss, at the cost of one fsync per record.
	FsyncAlways
)

func (p FsyncPolicy) String() string {
	if p == FsyncAlways {
		return "always"
	}
	return "interval"
}

// ParseFsyncPolicy parses "always" or "interval".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always or interval)", s)
}

// Options configures a Log. The zero value of every field but Dir selects
// a sensible default.
type Options struct {
	// Dir is the data directory (created if absent). Required.
	Dir string
	// Policy selects the fsync discipline (default FsyncInterval).
	Policy FsyncPolicy
	// Interval paces background fsyncs under FsyncInterval (default 100ms).
	Interval time.Duration
	// KeepSnapshots retains this many most-recent snapshot files so
	// recovery can fall back past a corrupt one (default 2).
	KeepSnapshots int
	// Registry receives the WAL's instrumentation (default obs.Default).
	Registry *obs.Registry
	// Logf, when set, receives recovery and maintenance diagnostics.
	Logf func(string, ...interface{})
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	if o.Registry == nil {
		o.Registry = obs.Default
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	return o
}

// Record is one recovered log entry.
type Record struct {
	Seq  uint64
	Data []byte
}

// Recovered reports what Open reconstructed from the data directory.
type Recovered struct {
	// Snapshot is the newest valid snapshot payload (nil if none).
	Snapshot []byte
	// SnapshotSeq is the sequence point the snapshot captured.
	SnapshotSeq uint64
	// Records is the valid log suffix after SnapshotSeq, in order.
	Records []Record
	// LastSeq is the highest durable sequence number; appends resume at
	// LastSeq+1.
	LastSeq uint64
	// DroppedBytes counts torn/corrupt tail bytes discarded at recovery.
	DroppedBytes int64
}

// Log is an append-only write-ahead log plus snapshot store. It is safe
// for concurrent use.
type Log struct {
	opts Options
	m    *walMetrics

	mu       sync.Mutex
	f        *os.File
	segStart uint64 // first sequence number of the live segment
	seq      uint64 // last assigned sequence number
	dirty    bool   // bytes written since the last fsync
	closed   bool

	stopFlush chan struct{}
	flushDone chan struct{}
}

// Open opens (or creates) the log in opts.Dir, recovers the durable state,
// heals any torn tail, and returns the log positioned for appending.
func Open(opts Options) (*Log, *Recovered, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{opts: opts, m: newWALMetrics(opts.Registry)}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	if err := l.openSegmentForAppend(rec); err != nil {
		return nil, nil, err
	}
	l.m.recoveries.Inc()
	l.m.replayed.Add(int64(len(rec.Records)))
	if rec.DroppedBytes > 0 {
		l.m.tornBytes.Add(rec.DroppedBytes)
		opts.Logf("wal: dropped %d torn tail bytes, resuming from sequence %d",
			rec.DroppedBytes, rec.LastSeq)
	}
	if l.opts.Policy == FsyncInterval {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, rec, nil
}

// --- File naming ---

func segmentName(start uint64) string { return fmt.Sprintf("wal-%020d.log", start) }
func snapshotName(seq uint64) string  { return fmt.Sprintf("snap-%020d.snap", seq) }
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var n uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(name)-len(suffix)], "%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// listFiles returns the sequence numbers of matching files, ascending.
func (l *Log) listFiles(prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		if n, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// --- Frame encoding ---

// appendFrame encodes one record (seq, data) onto buf and returns it.
func appendFrame(buf []byte, seq uint64, data []byte) []byte {
	body := make([]byte, seqSize+len(data))
	binary.BigEndian.PutUint64(body, seq)
	copy(body[seqSize:], data)
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// readFrame reads one frame from r. It returns io.EOF at a clean end and
// errBadFrame-wrapped errors for torn or corrupt data.
func readFrame(r io.Reader) (seq uint64, data []byte, n int64, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, fmt.Errorf("torn header: %w", err)
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	want := binary.BigEndian.Uint32(hdr[4:8])
	if length < seqSize || length > MaxRecordSize {
		return 0, nil, 0, fmt.Errorf("implausible record length %d", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, 0, fmt.Errorf("torn body: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return 0, nil, 0, fmt.Errorf("checksum mismatch: %08x != %08x", got, want)
	}
	return binary.BigEndian.Uint64(body), body[seqSize:], int64(headerSize) + int64(length), nil
}

// --- Recovery ---

// recover loads the newest valid snapshot and the valid log suffix. It
// heals the directory: a torn tail is truncated away and segments past a
// corrupt record are removed, so the on-disk state matches what was
// recovered and future appends extend a clean log.
func (l *Log) recover() (*Recovered, error) {
	rec := &Recovered{}

	snaps, err := l.listFiles("snap-", ".snap")
	if err != nil {
		return nil, err
	}
	// Try newest first; fall back past corrupt snapshots.
	for i := len(snaps) - 1; i >= 0; i-- {
		path := filepath.Join(l.opts.Dir, snapshotName(snaps[i]))
		seq, data, rerr := readSnapshotFile(path)
		if rerr != nil {
			l.opts.Logf("wal: skipping snapshot %s: %v", path, rerr)
			continue
		}
		rec.Snapshot = data
		rec.SnapshotSeq = seq
		break
	}
	rec.LastSeq = rec.SnapshotSeq

	segs, err := l.listFiles("wal-", ".log")
	if err != nil {
		return nil, err
	}
	stopped := false // first bad record seen: everything after is discarded
	for i, start := range segs {
		path := filepath.Join(l.opts.Dir, segmentName(start))
		if stopped {
			l.opts.Logf("wal: removing segment %s past a corrupt record", path)
			_ = os.Remove(path)
			continue
		}
		goodLen, bad := l.scanSegment(path, rec)
		if bad {
			stopped = true
			// Heal: drop everything from the first bad byte so appends
			// never follow garbage.
			if info, err := os.Stat(path); err == nil {
				rec.DroppedBytes += info.Size() - goodLen
			}
			if goodLen == 0 && i > 0 {
				_ = os.Remove(path)
			} else if err := os.Truncate(path, goodLen); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
		}
	}
	return rec, nil
}

// scanSegment reads every valid record of one segment into rec, returning
// the byte offset of the first invalid record (== file size when the whole
// segment is valid) and whether an invalid record was found.
func (l *Log) scanSegment(path string, rec *Recovered) (goodLen int64, bad bool) {
	f, err := os.Open(path)
	if err != nil {
		l.opts.Logf("wal: open segment %s: %v", path, err)
		return 0, true
	}
	defer f.Close()
	r := &countingReader{r: f}
	for {
		seq, data, _, err := readFrame(r)
		if err == io.EOF {
			return goodLen, false
		}
		if err != nil {
			l.opts.Logf("wal: %s: stopping at bad record after seq %d: %v", path, rec.LastSeq, err)
			return goodLen, true
		}
		switch {
		case seq <= rec.SnapshotSeq:
			// Already captured by the snapshot (rotation raced a crash).
		case seq == rec.LastSeq+1:
			rec.Records = append(rec.Records, Record{Seq: seq, Data: data})
			rec.LastSeq = seq
		default:
			// A sequence gap is corruption: stop at the first bad record.
			l.opts.Logf("wal: %s: sequence gap (%d after %d), stopping", path, seq, rec.LastSeq)
			return goodLen, true
		}
		goodLen = r.n
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readSnapshotFile validates and returns one snapshot file's payload.
func readSnapshotFile(path string) (seq uint64, data []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	seq, data, _, err = readFrame(f)
	if err != nil {
		return 0, nil, err
	}
	return seq, data, nil
}

// openSegmentForAppend positions l.f at the end of the newest segment,
// creating a fresh one when none exists.
func (l *Log) openSegmentForAppend(rec *Recovered) error {
	l.seq = rec.LastSeq
	segs, err := l.listFiles("wal-", ".log")
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return l.newSegmentLocked(l.seq + 1)
	}
	start := segs[len(segs)-1]
	path := filepath.Join(l.opts.Dir, segmentName(start))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment for append: %w", err)
	}
	l.f = f
	l.segStart = start
	return nil
}

// newSegmentLocked creates and switches to segment starting at start.
// Caller holds l.mu (or is in single-threaded Open).
func (l *Log) newSegmentLocked(start uint64) error {
	path := filepath.Join(l.opts.Dir, segmentName(start))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := syncDir(l.opts.Dir); err != nil {
		_ = f.Close()
		return err
	}
	if l.f != nil {
		_ = l.f.Sync()
		_ = l.f.Close()
	}
	l.f = f
	l.segStart = start
	l.dirty = false
	return nil
}

// Append durably logs one record and returns its sequence number. Under
// FsyncAlways the record has been fsynced when Append returns; under
// FsyncInterval it has reached the OS (surviving process death) and will
// be fsynced within one interval.
func (l *Log) Append(data []byte) (uint64, error) {
	if len(data) > MaxRecordSize-seqSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(data))
	}
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: append to closed log")
	}
	seq := l.seq + 1
	frame := appendFrame(nil, seq, data)
	if _, err := l.f.Write(frame); err != nil {
		// A short write leaves a torn tail; recovery heals it, but this
		// log can no longer guarantee ordering. Do not advance seq.
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.seq = seq
	l.dirty = true
	l.m.appends.Inc()
	l.m.appendSeconds.Observe(time.Since(start).Seconds())
	if l.opts.Policy == FsyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// syncLocked fsyncs the live segment. Caller holds l.mu.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.m.fsyncs.Inc()
	l.m.fsyncSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// Sync forces buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// flushLoop paces background fsyncs under FsyncInterval.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-t.C:
			if err := l.Sync(); err != nil {
				l.opts.Logf("wal: background fsync: %v", err)
			}
		}
	}
}

// Snapshot atomically persists the full state captured at the current
// sequence point, then rotates the log: a fresh segment begins at seq+1,
// and segments and snapshots made obsolete are pruned. state must describe
// every record up to and including LastSeq().
func (l *Log) Snapshot(state []byte) error {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: snapshot of closed log")
	}
	// The snapshot supersedes the live segment's records: make sure they
	// are on disk first so a crash mid-snapshot still recovers cleanly.
	if err := l.syncLocked(); err != nil {
		return err
	}
	seq := l.seq
	final := filepath.Join(l.opts.Dir, snapshotName(seq))
	tmp := final + ".tmp"
	frame := appendFrame(nil, seq, state)
	if err := writeFileSync(tmp, frame); err != nil {
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	if err := syncDir(l.opts.Dir); err != nil {
		return err
	}
	// Rotate — unless the live segment is already empty (a snapshot with
	// no appends since the last rotation, e.g. back-to-back Snapshot calls
	// or a clean Close of an idle log), in which case segment seq+1 is the
	// one we are writing to and there is nothing to rotate away from.
	if l.segStart != seq+1 {
		if err := l.newSegmentLocked(seq + 1); err != nil {
			return err
		}
	}
	l.pruneLocked(seq)
	l.m.snapshots.Inc()
	l.m.snapshotSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// pruneLocked removes segments fully covered by the snapshot at seq and
// all but the newest KeepSnapshots snapshots. Best effort: pruning
// failures only cost disk, never correctness.
func (l *Log) pruneLocked(seq uint64) {
	if segs, err := l.listFiles("wal-", ".log"); err == nil {
		for _, start := range segs {
			if start <= seq && start != l.segStart {
				_ = os.Remove(filepath.Join(l.opts.Dir, segmentName(start)))
			}
		}
	}
	if snaps, err := l.listFiles("snap-", ".snap"); err == nil {
		for i := 0; i+l.opts.KeepSnapshots < len(snaps); i++ {
			_ = os.Remove(filepath.Join(l.opts.Dir, snapshotName(snaps[i])))
		}
	}
}

// LastSeq returns the sequence number of the most recent append.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Close syncs and closes the log. The log cannot be reused; reopen with
// Open.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stopFlush
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.f != nil {
		if l.dirty {
			err = l.f.Sync()
		}
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
