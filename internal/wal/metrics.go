package wal

import "fedshare/internal/obs"

// walMetrics bundles the log's instrumentation. Registration is
// idempotent, so any number of logs can share one registry; counters
// aggregate across them.
type walMetrics struct {
	appends         *obs.Counter   // fedshare_wal_appends_total
	appendSeconds   *obs.Histogram // fedshare_wal_append_seconds
	fsyncs          *obs.Counter   // fedshare_wal_fsyncs_total
	fsyncSeconds    *obs.Histogram // fedshare_wal_fsync_seconds
	snapshots       *obs.Counter   // fedshare_wal_snapshots_total
	snapshotSeconds *obs.Histogram // fedshare_wal_snapshot_seconds
	recoveries      *obs.Counter   // fedshare_wal_recoveries_total
	replayed        *obs.Counter   // fedshare_wal_replayed_records_total
	tornBytes       *obs.Counter   // fedshare_wal_torn_bytes_total
}

func newWALMetrics(r *obs.Registry) *walMetrics {
	// Append and fsync latencies sit well below the default request
	// buckets: start at 1µs so the interesting range is resolved.
	buckets := obs.ExpBuckets(1e-6, 4, 12)
	return &walMetrics{
		appends: r.Counter("fedshare_wal_appends_total",
			"Records appended to the write-ahead log."),
		appendSeconds: r.Histogram("fedshare_wal_append_seconds",
			"Write-ahead log append latency (excluding per-record fsync).", buckets),
		fsyncs: r.Counter("fedshare_wal_fsyncs_total",
			"fsync calls issued by the write-ahead log."),
		fsyncSeconds: r.Histogram("fedshare_wal_fsync_seconds",
			"Write-ahead log fsync latency.", buckets),
		snapshots: r.Counter("fedshare_wal_snapshots_total",
			"State snapshots written (each also rotates the log)."),
		snapshotSeconds: r.Histogram("fedshare_wal_snapshot_seconds",
			"Snapshot write + log rotation latency.", nil),
		recoveries: r.Counter("fedshare_wal_recoveries_total",
			"Times a log was opened and recovered from disk."),
		replayed: r.Counter("fedshare_wal_replayed_records_total",
			"Records replayed from the log suffix during recovery."),
		tornBytes: r.Counter("fedshare_wal_torn_bytes_total",
			"Torn or corrupt tail bytes discarded during recovery."),
	}
}
