package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedshare/internal/scenario"
)

// testSpec is a small real spec (5 facilities, 6 threshold points) used
// where tests need actual executor traffic rather than a synthetic job.
func testSpec(id string) *scenario.Spec {
	return &scenario.Spec{
		ID: id, Title: "engine test", XLabel: "l",
		Facilities: []scenario.FacilitySpec{
			{Name: "A", Locations: 20, Resources: 8},
			{Name: "B", Locations: 40, Resources: 4},
			{Name: "C", Locations: 80, Resources: 2},
		},
		Demand:   []scenario.DemandSpec{{Name: "batch", Count: 10}},
		Policies: []string{"proportional"},
		Axis:     scenario.AxisSpec{Variable: "threshold", From: 0, To: 100, Step: 20},
	}
}

// blockingJob returns a job that signals on started (if non-nil), then
// blocks until release closes or its context is cancelled.
func blockingJob(started chan<- struct{}, release <-chan struct{}) JobFunc {
	return func(ctx context.Context, progress scenario.ProgressFunc) (*scenario.Result, error) {
		if started != nil {
			close(started)
		}
		select {
		case <-release:
			return &scenario.Result{ID: "blocked"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func waitState(t *testing.T, e *Engine, id string, want State) Run {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		r, err := e.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if r.State == want {
			return r
		}
		time.Sleep(2 * time.Millisecond)
	}
	r, _ := e.Get(id)
	t.Fatalf("run %s stuck in %s, want %s", id, r.State, want)
	return Run{}
}

func TestSubmitRunsSpecToCompletion(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	spec := testSpec("engine-done")
	id, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != StateDone {
		t.Fatalf("state = %s (%s), want done", r.State, r.Error)
	}
	if r.Result == nil || len(r.Result.Series) != 3 {
		t.Fatalf("result = %+v, want 3 series (one per facility)", r.Result)
	}
	if r.Progress.Total == 0 || r.Progress.Done != r.Progress.Total {
		t.Fatalf("progress = %+v, want done == total > 0", r.Progress)
	}

	// The engine path must produce exactly what the synchronous executor
	// does — that identity is what lets fedsim and the served API share it.
	direct, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := r.Result.JSON()
	want, _ := direct.JSON()
	if string(got) != string(want) {
		t.Fatalf("engine result differs from scenario.Run:\n%s\nvs\n%s", got, want)
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	if _, err := e.Submit(&scenario.Spec{ID: "nope"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if got := len(e.List()); got != 0 {
		t.Fatalf("invalid spec left %d runs in the table", got)
	}
}

func TestCancelQueuedRun(t *testing.T) {
	e := New(Options{MaxConcurrent: 1})
	defer e.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	blocker, err := e.SubmitJob("blocker", blockingJob(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// The second job queues behind the blocker; its fn must never run.
	var ran atomic.Bool
	queued, err := e.SubmitJob("queued", func(ctx context.Context, progress scenario.ProgressFunc) (*scenario.Result, error) {
		ran.Store(true)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := e.Get(queued); r.State != StateQueued {
		t.Fatalf("second run state = %s, want queued", r.State)
	}
	if err := e.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	r := waitState(t, e, queued, StateCancelled)
	if r.Error == "" {
		t.Fatal("cancelled run has no error")
	}
	close(release)
	if r, err := e.Wait(context.Background(), blocker); err != nil || r.State != StateDone {
		t.Fatalf("blocker finished %s, %v", r.State, err)
	}
	if ran.Load() {
		t.Fatal("cancelled queued run executed anyway")
	}
	// A terminal run can't be re-cancelled.
	if err := e.Cancel(queued); !errors.Is(err, ErrFinished) {
		t.Fatalf("re-cancel error = %v, want ErrFinished", err)
	}
}

func TestCancelMidSweepRun(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	// The job runs a real spec through RunContext, but gates the first
	// progress report so the test can cancel while the sweep is provably
	// mid-flight.
	firstPoint := make(chan struct{})
	resume := make(chan struct{})
	var once sync.Once
	spec := testSpec("engine-midsweep")
	id, err := e.SubmitJob(spec.ID, func(ctx context.Context, progress scenario.ProgressFunc) (*scenario.Result, error) {
		return scenario.RunContext(ctx, spec, func(done, total int) {
			progress(done, total)
			if done >= 1 {
				once.Do(func() { close(firstPoint) })
				<-resume
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	<-firstPoint
	if err := e.Cancel(id); err != nil {
		t.Fatal(err)
	}
	close(resume)
	r, err := e.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != StateCancelled {
		t.Fatalf("state = %s (%s), want cancelled", r.State, r.Error)
	}
	if r.Result != nil {
		t.Fatal("cancelled run kept a result")
	}
	if r.Progress.Done == 0 || r.Progress.Done >= r.Progress.Total {
		t.Fatalf("progress = %+v, want strictly mid-sweep", r.Progress)
	}
}

func TestPanickingJobFailsWithoutKillingEngine(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	id, err := e.SubmitJob("boom", func(ctx context.Context, progress scenario.ProgressFunc) (*scenario.Result, error) {
		panic("spec exploded")
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != StateFailed {
		t.Fatalf("state = %s, want failed", r.State)
	}
	if !strings.Contains(r.Error, "panicked") || !strings.Contains(r.Error, "spec exploded") {
		t.Fatalf("error %q does not describe the panic", r.Error)
	}

	// The engine must keep serving: a healthy run after the panic succeeds.
	id2, err := e.Submit(testSpec("engine-after-panic"))
	if err != nil {
		t.Fatal(err)
	}
	if r, err := e.Wait(context.Background(), id2); err != nil || r.State != StateDone {
		t.Fatalf("post-panic run finished %s, %v", r.State, err)
	}
}

func TestConcurrencyBound(t *testing.T) {
	const bound = 3
	e := New(Options{MaxConcurrent: bound})
	defer e.Close()
	var active, peak atomic.Int64
	release := make(chan struct{})
	var ids []string
	for i := 0; i < 20; i++ {
		id, err := e.SubmitJob(fmt.Sprintf("job-%d", i), func(ctx context.Context, progress scenario.ProgressFunc) (*scenario.Result, error) {
			n := active.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-release
			active.Add(-1)
			return &scenario.Result{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Let the scheduler fill every slot before releasing the jobs.
	deadline := time.Now().Add(5 * time.Second)
	for active.Load() < bound && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for _, id := range ids {
		if r, err := e.Wait(context.Background(), id); err != nil || r.State != StateDone {
			t.Fatalf("run %s finished %s, %v", id, r.State, err)
		}
	}
	if p := peak.Load(); p > bound {
		t.Fatalf("observed %d concurrent runs, bound is %d", p, bound)
	}
}

func TestRunTableEvictsOldestTerminal(t *testing.T) {
	e := New(Options{MaxRuns: 3})
	defer e.Close()
	var first string
	for i := 0; i < 3; i++ {
		id, err := e.SubmitJob(fmt.Sprintf("t-%d", i), func(ctx context.Context, progress scenario.ProgressFunc) (*scenario.Result, error) {
			return &scenario.Result{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = id
		}
		if _, err := e.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	// The 4th submission pushes the table over its bound; the oldest
	// terminal run goes.
	id, err := e.SubmitJob("t-3", blockingJob(nil, make(chan struct{})))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get(first); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest terminal run still present (err=%v)", err)
	}
	if _, err := e.Get(id); err != nil {
		t.Fatalf("live run evicted: %v", err)
	}
	if got := len(e.List()); got != 3 {
		t.Fatalf("table holds %d runs, want 3", got)
	}
}

func TestConcurrentSubmitsRespectBoundUnderRace(t *testing.T) {
	// Satellite regression: hammer the engine from many goroutines while
	// runs are cancelled mid-flight; -race validates the run-table locking.
	// MaxRuns must hold all 40 runs: eviction of a finished run before its
	// submitter calls Wait would legitimately return ErrNotFound.
	const bound = 2
	e := New(Options{MaxConcurrent: bound, MaxRuns: 64})
	defer e.Close()
	var peak, active atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				id, err := e.SubmitJob(fmt.Sprintf("g%d-%d", g, i), func(ctx context.Context, progress scenario.ProgressFunc) (*scenario.Result, error) {
					n := active.Add(1)
					defer active.Add(-1)
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					progress(1, 2)
					select {
					case <-time.After(time.Millisecond):
					case <-ctx.Done():
						return nil, ctx.Err()
					}
					return &scenario.Result{}, nil
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if i%2 == 0 {
					_ = e.Cancel(id)
				}
				if _, err := e.Wait(context.Background(), id); err != nil {
					t.Errorf("wait: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Fatalf("observed %d concurrent runs, bound is %d", p, bound)
	}
}

func TestCloseCancelsLiveRunsAndRejectsNew(t *testing.T) {
	e := New(Options{MaxConcurrent: 1})
	started := make(chan struct{})
	id, err := e.SubmitJob("live", blockingJob(started, make(chan struct{})))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	e.Close()
	r, err := e.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != StateCancelled {
		t.Fatalf("state after Close = %s, want cancelled", r.State)
	}
	if _, err := e.SubmitJob("late", blockingJob(nil, nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: %v, want ErrClosed", err)
	}
}

func TestRunSyncWrapper(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	res, err := e.Run(context.Background(), testSpec("engine-sync"))
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "engine-sync" || len(res.Series) != 3 {
		t.Fatalf("unexpected result %+v", res)
	}
	// And the context aborts it.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, testSpec("engine-sync-cancelled")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run error = %v", err)
	}
}
