// Package engine runs scenarios asynchronously. It is the execution layer
// between the declarative scenario package (specs, validation, the
// synchronous RunContext executor) and the presentation layers on top of
// it (the fedd HTTP API, the embedded dashboard, and the fedsim CLI): an
// Engine accepts submissions, bounds how many run concurrently, tracks
// every run in a thread-safe table (queued → running → done / failed /
// cancelled), surfaces per-point progress, and isolates panicking specs so
// one bad experiment cannot take down a serving daemon.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"fedshare/internal/obs"
	"fedshare/internal/scenario"
)

// State is a run's position in its lifecycle.
type State string

// Run lifecycle states. Queued and Running are live; the other three are
// terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Progress is a run's sweep position: Done model-evaluation points out of
// Total. Total is 0 until the executor has sized the grid (and stays 0 for
// code-backed generators, which cannot predict their point count).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Run is an immutable snapshot of one tracked run. Result is non-nil only
// in StateDone; Error is non-empty only in StateFailed and StateCancelled.
type Run struct {
	ID         string
	ScenarioID string
	Spec       *scenario.Spec // nil for code-backed submissions
	State      State
	Progress   Progress
	Result     *scenario.Result
	Error      string
	Submitted  time.Time
	Started    time.Time // zero until the run leaves the queue
	Finished   time.Time // zero until terminal
}

// JobFunc is the unit the engine executes: it honors ctx cancellation and
// reports per-point progress. Submit wraps scenario.RunContext in one;
// SubmitEntry wraps code-backed generators; tests inject their own.
type JobFunc func(ctx context.Context, progress scenario.ProgressFunc) (*scenario.Result, error)

// Options configures an Engine.
type Options struct {
	// MaxConcurrent bounds how many runs execute simultaneously; further
	// submissions queue in FIFO order. 0 means 1.
	MaxConcurrent int
	// MaxRuns bounds the run table: when exceeded, the oldest *terminal*
	// runs are evicted (live runs are never dropped). 0 means 256.
	MaxRuns int
}

// Engine-plane instrumentation, alongside the per-scenario families the
// executor itself maintains (fedshare_scenario_runs_total,
// fedshare_scenario_points_total, and the scenario.run span).
var (
	submittedTotal = obs.Default.Counter("fedshare_engine_submitted_total",
		"Runs accepted by the scenario engine since process start.")
	finishedTotal = obs.Default.CounterVec("fedshare_engine_finished_total",
		"Runs finished by the scenario engine, by terminal state.", "state")
	activeRuns = obs.Default.Gauge("fedshare_engine_active_runs",
		"Scenario runs currently executing (bounded by the engine's concurrency limit).")
	queuedRuns = obs.Default.Gauge("fedshare_engine_queued_runs",
		"Scenario runs waiting for an execution slot.")
)

// run is the mutable tracked state behind a Run snapshot.
type run struct {
	Run
	cancel context.CancelFunc
	done   chan struct{} // closed on terminal transition
}

// Engine tracks and executes scenario runs.
type Engine struct {
	mu     sync.Mutex
	runs   map[string]*run
	order  []string // submission order, for List and eviction
	nextID uint64
	sem    chan struct{}
	maxRun int
	closed bool
	wg     sync.WaitGroup
}

// New returns an Engine ready to accept submissions.
func New(opts Options) *Engine {
	conc := opts.MaxConcurrent
	if conc <= 0 {
		conc = 1
	}
	maxRuns := opts.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 256
	}
	return &Engine{
		runs:   make(map[string]*run),
		sem:    make(chan struct{}, conc),
		maxRun: maxRuns,
	}
}

// Errors the run-table operations return. ErrNotFound and ErrFinished are
// sentinel so the API layer can map them to 404 / 409.
var (
	ErrNotFound = errors.New("engine: no such run")
	ErrFinished = errors.New("engine: run already finished")
	ErrClosed   = errors.New("engine: engine is shut down")
)

// Submit validates and queues a declarative spec. It returns the run id
// immediately; execution proceeds asynchronously under the engine's
// concurrency bound. The spec is not copied — callers must not mutate it
// after submission.
func (e *Engine) Submit(spec *scenario.Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	return e.submit(spec.ID, spec, func(ctx context.Context, progress scenario.ProgressFunc) (*scenario.Result, error) {
		return scenario.RunContext(ctx, spec, progress)
	})
}

// SubmitEntry queues a registry entry: spec-backed entries run through the
// cancellable executor with progress; code-backed generators run opaquely
// (cancellable only while queued, no per-point progress).
func (e *Engine) SubmitEntry(entry scenario.Entry) (string, error) {
	if entry.Spec != nil {
		return e.Submit(entry.Spec)
	}
	if entry.Generate == nil {
		return "", fmt.Errorf("engine: entry %s has neither spec nor generator", entry.ID)
	}
	return e.submit(entry.ID, nil, func(ctx context.Context, progress scenario.ProgressFunc) (*scenario.Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return entry.Generate()
	})
}

// SubmitJob queues an arbitrary job under the given scenario label. It is
// the primitive Submit and SubmitEntry build on, exported for callers (and
// tests) that need custom execution wrapped in the run table.
func (e *Engine) SubmitJob(scenarioID string, fn JobFunc) (string, error) {
	return e.submit(scenarioID, nil, fn)
}

func (e *Engine) submit(scenarioID string, spec *scenario.Spec, fn JobFunc) (string, error) {
	ctx, cancel := context.WithCancel(context.Background())
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		cancel()
		return "", ErrClosed
	}
	e.nextID++
	id := fmt.Sprintf("run-%06d", e.nextID)
	r := &run{
		Run: Run{
			ID:         id,
			ScenarioID: scenarioID,
			Spec:       spec,
			State:      StateQueued,
			Submitted:  time.Now(),
		},
		cancel: cancel,
		done:   make(chan struct{}),
	}
	e.runs[id] = r
	e.order = append(e.order, id)
	e.evictLocked()
	e.wg.Add(1)
	e.mu.Unlock()
	submittedTotal.Inc()
	queuedRuns.Inc()
	go e.execute(r, ctx, fn)
	return id, nil
}

// execute drives one run to a terminal state: wait for a slot (abandoning
// the wait if cancelled while queued), run the job with panic isolation,
// and record the outcome.
func (e *Engine) execute(r *run, ctx context.Context, fn JobFunc) {
	defer e.wg.Done()
	select {
	case e.sem <- struct{}{}:
		defer func() { <-e.sem }()
	case <-ctx.Done():
		queuedRuns.Dec()
		e.finish(r, nil, ctx.Err())
		return
	}
	queuedRuns.Dec()
	activeRuns.Inc()
	defer activeRuns.Dec()

	e.mu.Lock()
	// Cancel may have raced the slot acquisition; don't resurrect a run
	// that is already terminal.
	if r.State.Terminal() {
		e.mu.Unlock()
		return
	}
	r.State = StateRunning
	r.Started = time.Now()
	e.mu.Unlock()

	res, err := e.runIsolated(r, ctx, fn)
	e.finish(r, res, err)
}

// runIsolated invokes the job, converting a panic into an error so one
// broken spec cannot crash the daemon the engine serves in.
func (e *Engine) runIsolated(r *run, ctx context.Context, fn JobFunc) (res *scenario.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("engine: run %s (%s) panicked: %v\n%s",
				r.ID, r.ScenarioID, p, debug.Stack())
		}
	}()
	progress := func(done, total int) {
		e.mu.Lock()
		// Progress can race the terminal transition when cancellation
		// overlaps a completing point; never let it overwrite a final state.
		if !r.State.Terminal() {
			r.Progress = Progress{Done: done, Total: total}
		}
		e.mu.Unlock()
	}
	return fn(ctx, progress)
}

// finish records a run's terminal state exactly once.
func (e *Engine) finish(r *run, res *scenario.Result, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r.State.Terminal() {
		return
	}
	r.Finished = time.Now()
	switch {
	case err == nil:
		r.State = StateDone
		r.Result = res
		r.Progress.Done = r.Progress.Total
	case errors.Is(err, context.Canceled):
		r.State = StateCancelled
		r.Error = err.Error()
	default:
		r.State = StateFailed
		r.Error = err.Error()
	}
	finishedTotal.With(string(r.State)).Inc()
	close(r.done)
}

// Cancel requests cancellation of a queued or running run. Cancelling a
// queued run is immediate; a running run stops at its next sweep-point
// boundary. Terminal runs return ErrFinished.
func (e *Engine) Cancel(id string) error {
	e.mu.Lock()
	r, ok := e.runs[id]
	if !ok {
		e.mu.Unlock()
		return ErrNotFound
	}
	if r.State.Terminal() {
		e.mu.Unlock()
		return ErrFinished
	}
	e.mu.Unlock()
	r.cancel()
	return nil
}

// Get returns a snapshot of the run.
func (e *Engine) Get(id string) (Run, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.runs[id]
	if !ok {
		return Run{}, ErrNotFound
	}
	return r.Run, nil
}

// List returns snapshots of every tracked run in submission order.
func (e *Engine) List() []Run {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Run, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.runs[id].Run)
	}
	return out
}

// Wait blocks until the run reaches a terminal state (returning its final
// snapshot) or ctx is done.
func (e *Engine) Wait(ctx context.Context, id string) (Run, error) {
	e.mu.Lock()
	r, ok := e.runs[id]
	e.mu.Unlock()
	if !ok {
		return Run{}, ErrNotFound
	}
	select {
	case <-r.done:
		return e.Get(id)
	case <-ctx.Done():
		return Run{}, ctx.Err()
	}
}

// Run executes a spec synchronously through the engine: submit, wait,
// return the result. It is how the one-shot CLI paths share the exact
// executor, run table, and instrumentation the served API uses.
func (e *Engine) Run(ctx context.Context, spec *scenario.Spec) (*scenario.Result, error) {
	id, err := e.Submit(spec)
	if err != nil {
		return nil, err
	}
	return e.await(ctx, id)
}

// RunEntry is Run for registry entries (spec- or code-backed).
func (e *Engine) RunEntry(ctx context.Context, entry scenario.Entry) (*scenario.Result, error) {
	id, err := e.SubmitEntry(entry)
	if err != nil {
		return nil, err
	}
	return e.await(ctx, id)
}

func (e *Engine) await(ctx context.Context, id string) (*scenario.Result, error) {
	stop := context.AfterFunc(ctx, func() { _ = e.Cancel(id) })
	defer stop()
	r, err := e.Wait(context.Background(), id)
	if err != nil {
		return nil, err
	}
	// The context is authoritative even when the run won the race and
	// finished before the cancellation landed: a caller that asked to stop
	// gets ctx.Err(), never a result it no longer wants.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch r.State {
	case StateDone:
		return r.Result, nil
	case StateCancelled:
		return nil, context.Canceled
	default:
		return nil, errors.New(r.Error)
	}
}

// evictLocked trims the oldest terminal runs once the table exceeds its
// bound. Live runs are never evicted, so the table can transiently exceed
// MaxRuns when everything in it is still queued or running.
func (e *Engine) evictLocked() {
	if len(e.order) <= e.maxRun {
		return
	}
	excess := len(e.order) - e.maxRun
	kept := e.order[:0]
	for _, id := range e.order {
		if excess > 0 && e.runs[id].State.Terminal() {
			delete(e.runs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	e.order = kept
}

// Close cancels every live run and waits for all run goroutines to settle.
// Further submissions fail with ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	live := make([]*run, 0, len(e.order))
	for _, id := range e.order {
		if r := e.runs[id]; !r.State.Terminal() {
			live = append(live, r)
		}
	}
	e.mu.Unlock()
	for _, r := range live {
		r.cancel()
	}
	e.wg.Wait()
}
