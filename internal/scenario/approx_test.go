package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"fedshare/internal/core"
)

// templatedSpec declares a 9-facility federation from three templates via
// Count, with the approximation-tier knobs set.
func templatedSpec() *Spec {
	return &Spec{
		ID:     "tmpl",
		Title:  "templated federation",
		XLabel: "l",
		Facilities: []FacilitySpec{
			{Name: "S", Locations: 10, Resources: 2, Count: 4},
			{Name: "M", Locations: 30, Resources: 1, Count: 3},
			{Name: "L", Locations: 80, Resources: 1, Count: 2},
		},
		Demand: []DemandSpec{
			{Name: "batch", Count: 20, Shape: 1},
		},
		Policies: []string{"shapley-approx", "proportional"},
		Axis:     AxisSpec{Variable: VarThreshold, Values: []float64{0, 100}},
		Method:   MethodApprox,
		Samples:  256,
		Seed:     7,
	}
}

func TestExpandedFacilitiesReplication(t *testing.T) {
	s := templatedSpec()
	fs := s.expandedFacilities()
	if len(fs) != 9 {
		t.Fatalf("expanded to %d facilities, want 9", len(fs))
	}
	wantNames := []string{"S-1", "S-2", "S-3", "S-4", "M-1", "M-2", "M-3", "L-1", "L-2"}
	for i, f := range fs {
		if f.Name != wantNames[i] {
			t.Errorf("facility %d named %q, want %q", i, f.Name, wantNames[i])
		}
	}
	// Count <= 1 keeps the declared name untouched (golden compatibility).
	s.Facilities = []FacilitySpec{{Name: "solo", Locations: 5, Resources: 1}}
	fs = s.expandedFacilities()
	if len(fs) != 1 || fs[0].Name != "solo" {
		t.Fatalf("singleton entry expanded to %+v", fs)
	}
}

func TestFacilityGroups(t *testing.T) {
	s := templatedSpec()
	got := s.facilityGroups()
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
}

func TestTrackIndexSkipsTemplateReplicas(t *testing.T) {
	s := templatedSpec()
	s.Kind = KindProfit
	s.Policies = []string{"proportional"}
	s.Track = "L"
	idx, err := s.trackIndex()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 7 {
		t.Fatalf("track index %d, want 7 (first L replica after 4 S + 3 M)", idx)
	}
}

func TestParameterizeRoutesShapleyPolicies(t *testing.T) {
	s := templatedSpec()
	s.CITarget = 0.02
	policies, err := s.resolvedPolicies()
	if err != nil {
		t.Fatal(err)
	}
	ap, ok := policies[0].(core.ApproxShapleyPolicy)
	if !ok {
		t.Fatalf("shapley-approx resolved to %T", policies[0])
	}
	if ap.Samples != 256 || ap.Seed != 7 || ap.CITarget != 0.02 {
		t.Errorf("spec knobs not threaded: %+v", ap)
	}
	if _, ok := policies[1].(core.ProportionalPolicy); !ok {
		t.Errorf("proportional rewired to %T", policies[1])
	}

	// method approx rewires plain "shapley" too; without it the exact
	// policy stays.
	s.Policies = []string{"shapley"}
	policies, err = s.resolvedPolicies()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := policies[0].(core.ApproxShapleyPolicy); !ok {
		t.Errorf("method approx left shapley as %T", policies[0])
	}
	s.Method = ""
	policies, err = s.resolvedPolicies()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := policies[0].(core.ShapleyPolicy); !ok {
		t.Errorf("default method rewired shapley to %T", policies[0])
	}
}

func TestValidateApproxFields(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"unknown method", func(s *Spec) { s.Method = "magic" }, "unknown method"},
		{"negative samples", func(s *Spec) { s.Samples = -1 }, "negative sample budget"},
		{"negative ci target", func(s *Spec) { s.CITarget = -0.5 }, "ci_target"},
		{"ci target not relative", func(s *Spec) { s.CITarget = 1.5 }, "relative to V(N)"},
		{"negative facility count", func(s *Spec) { s.Facilities[0].Count = -2 }, "negative count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := templatedSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	for _, m := range []string{"", MethodAuto, MethodExact, MethodApprox} {
		s := templatedSpec()
		s.Method = m
		if err := s.Validate(); err != nil {
			t.Errorf("method %q rejected: %v", m, err)
		}
	}
}

func TestTemplatedRunGroupsSeriesAndIsDeterministic(t *testing.T) {
	s := templatedSpec()
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// One series per template entry per policy, policy-major.
	wantNames := []string{"aphi1", "aphi2", "aphi3", "pi1", "pi2", "pi3"}
	if len(res.Series) != len(wantNames) {
		t.Fatalf("%d series, want %d", len(res.Series), len(wantNames))
	}
	for i, ser := range res.Series {
		if ser.Name != wantNames[i] {
			t.Errorf("series %d named %q, want %q", i, ser.Name, wantNames[i])
		}
	}
	// Sampled group means still satisfy efficiency: 4·aphi1 + 3·aphi2 +
	// 2·aphi3 = 1 at every point (shares are normalized by V(N)).
	counts := []float64{4, 3, 2}
	for _, x := range []float64{0, 100} {
		sum := 0.0
		for i, c := range counts {
			y, ok := res.Series[i].YAt(x)
			if !ok {
				t.Fatalf("series %s missing x=%g", res.Series[i].Name, x)
			}
			sum += c * y
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("weighted share sum at x=%g is %.12f, want 1", x, sum)
		}
	}
	// Seeded sampling: a second run is byte-identical.
	again, err := Run(templatedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if again.Table() != res.Table() {
		t.Error("seeded templated run is not deterministic")
	}
}

func TestApproxSpecJSONRoundTrip(t *testing.T) {
	s := templatedSpec()
	s.CITarget = 0.05
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("decode of own encoding failed: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(s, decoded) {
		t.Fatalf("approx spec round-trip mismatch:\n got %+v\nwant %+v", decoded, s)
	}
}
