package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Entry is one registered scenario: either a declarative Spec or a
// code-backed generator (for experiments the spec language cannot express,
// e.g. the combinatorial-auction comparison).
type Entry struct {
	// ID is the registry key (fedsim -fig / -list).
	ID string
	// Title describes the scenario in listings; for spec-backed entries it
	// defaults to the spec title.
	Title string
	// Spec is the declarative definition; nil for code-backed entries.
	Spec *Spec
	// Generate produces the result for code-backed entries; nil otherwise.
	Generate func() (*Result, error)
	// Variant marks an alternate convention of another scenario (e.g.
	// fig4-strict): listed and runnable by ID, excluded from "run all".
	Variant bool
	// Extension marks a scenario beyond the paper's evaluation.
	Extension bool
}

// Run executes the entry.
func (e Entry) Run() (*Result, error) {
	if e.Generate != nil {
		return e.Generate()
	}
	return Run(e.Spec)
}

// Source describes where the entry's definition lives ("spec" or "code").
func (e Entry) Source() string {
	if e.Spec != nil {
		return "spec"
	}
	return "code"
}

var (
	regMu    sync.RWMutex
	regOrder []string
	regByID  = map[string]Entry{}
)

// Register adds a scenario to the registry, validating spec-backed entries
// eagerly. Registration order is preserved in IDs and Entries.
func Register(e Entry) error {
	if e.ID == "" {
		return fmt.Errorf("scenario: registering entry with no id")
	}
	if (e.Spec == nil) == (e.Generate == nil) {
		return fmt.Errorf("scenario: entry %s must set exactly one of Spec or Generate", e.ID)
	}
	if e.Spec != nil {
		if e.Spec.ID != e.ID {
			return fmt.Errorf("scenario: entry id %s does not match spec id %s", e.ID, e.Spec.ID)
		}
		if err := e.Spec.Validate(); err != nil {
			return err
		}
		if e.Title == "" {
			e.Title = e.Spec.Title
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByID[e.ID]; dup {
		return fmt.Errorf("scenario: duplicate registration of %s", e.ID)
	}
	regByID[e.ID] = e
	regOrder = append(regOrder, e.ID)
	return nil
}

// MustRegister is Register, panicking on error — for package-init
// registration of the built-in figure set.
func MustRegister(e Entry) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// ByID looks up a registered scenario; the error enumerates the known IDs
// so CLI messages stay in sync with the registry.
func ByID(id string) (Entry, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if e, ok := regByID[id]; ok {
		return e, nil
	}
	known := append([]string(nil), regOrder...)
	sort.Strings(known)
	return Entry{}, fmt.Errorf("scenario: unknown scenario %q (have %s)", id, strings.Join(known, ", "))
}

// IDs returns the registered scenario IDs in registration order.
func IDs() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// Entries returns the registered scenarios in registration order.
func Entries() []Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Entry, 0, len(regOrder))
	for _, id := range regOrder {
		out = append(out, regByID[id])
	}
	return out
}
