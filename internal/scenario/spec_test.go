package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// testSpec is a small but fully-featured shares scenario: heterogeneous
// capacities, two demand classes, three policies, a threshold sweep.
func testSpec() *Spec {
	return &Spec{
		ID:     "test-hetero",
		Title:  "test scenario",
		XLabel: "l",
		Facilities: []FacilitySpec{
			{Name: "A", Locations: 20, Resources: 4},
			{Name: "B", Locations: 50, Resources: 2},
			{Name: "C", Locations: 90, Resources: 1},
		},
		Demand: []DemandSpec{
			{Name: "elastic", Count: 10, Shape: 1},
			{Name: "strict", Count: 5, MinLocations: 60, Strict: true, Shape: 1},
		},
		Policies: []string{"shapley", "proportional", "consumption"},
		Axis:     AxisSpec{Variable: VarThreshold, Target: "elastic", From: 0, To: 100, Step: 25},
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := testSpec()
	want, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("decode of own encoding failed: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(s, decoded) {
		t.Fatalf("spec round-trip mismatch:\n got %+v\nwant %+v", decoded, s)
	}
	got, err := Run(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table() != want.Table() {
		t.Fatalf("encode→decode→Run diverged:\n got:\n%s\nwant:\n%s", got.Table(), want.Table())
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"id": "x", "axis": {"variable": "threshold", "from": 0, "to": 1, "step": 1}, "facilties": []}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("misspelled field must be rejected, got %v", err)
	}
	_, err = ParseSpec([]byte(`{"id": "x", "axis": {"variable": "threshold", "stepp": 1}}`))
	if err == nil {
		t.Fatal("unknown nested field must be rejected")
	}
}

func TestParseSpecRejectsTrailingData(t *testing.T) {
	s := testSpec()
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec(append(data, []byte(`{"id":"second"}`)...)); err == nil {
		t.Fatal("trailing JSON object must be rejected")
	}
}

func TestValidateRejectsInvalidSpecs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"no id", func(s *Spec) { s.ID = "" }, "no id"},
		{"whitespace id", func(s *Spec) { s.ID = "a b" }, "whitespace"},
		{"unknown kind", func(s *Spec) { s.Kind = "heatmap" }, "unknown kind"},
		{"no facilities", func(s *Spec) { s.Facilities = nil }, "at least one facility"},
		{"duplicate facility", func(s *Spec) { s.Facilities[1].Name = "A" }, "duplicate facility"},
		{"negative locations", func(s *Spec) { s.Facilities[0].Locations = -1 }, "negative locations"},
		{"unnamed demand", func(s *Spec) { s.Demand[0].Name = "" }, "no name"},
		{"duplicate demand", func(s *Spec) { s.Demand[1].Name = "elastic" }, "duplicate demand"},
		{"negative count", func(s *Spec) { s.Demand[0].Count = -2 }, "negative count"},
		{"unknown policy", func(s *Spec) { s.Policies = []string{"dictator"} }, "unknown policy"},
		{"unknown variable", func(s *Spec) { s.Axis.Variable = "entropy" }, "unknown sweep variable"},
		{"bad axis target", func(s *Spec) { s.Axis.Target = "nope" }, "unknown demand class"},
		{"zero step", func(s *Spec) { s.Axis.Step = 0 }, "step must be positive"},
		{"inverted range", func(s *Spec) { s.Axis.From = 10; s.Axis.To = 0 }, "below from"},
		{"values plus range", func(s *Spec) { s.Axis.Values = []float64{1} }, "both values"},
		{"variants on shares", func(s *Spec) {
			s.Variants = []VariantSpec{{Name: "v", Set: []SetSpec{{Variable: VarMu, Value: 0.5}}}}
		}, "only supported for profit"},
		{"track on shares", func(s *Spec) { s.Track = "A" }, "only meaningful for profit"},
		{"bad track", func(s *Spec) {
			s.Kind = KindProfit
			s.Track = "nope"
		}, "unknown facility"},
		{"unnamed variant", func(s *Spec) {
			s.Kind = KindProfit
			s.Variants = []VariantSpec{{Set: []SetSpec{{Variable: VarMu, Value: 0.5}}}}
		}, "variant has no name"},
		{"bad variant variable", func(s *Spec) {
			s.Kind = KindProfit
			s.Variants = []VariantSpec{{Name: "v", Set: []SetSpec{{Variable: "entropy", Value: 1}}}}
		}, "unknown variable"},
		{"bad variant target", func(s *Spec) {
			s.Kind = KindProfit
			s.Variants = []VariantSpec{{Name: "v", Set: []SetSpec{{Variable: VarThreshold, Target: "nope", Value: 1}}}}
		}, "unknown demand class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestUtilityKindValidation(t *testing.T) {
	s := &Spec{
		ID:     "u",
		Kind:   KindUtility,
		Demand: []DemandSpec{{Name: "d=2", MinLocations: 10, Shape: 2}},
		Axis:   AxisSpec{Variable: VarX, From: 0, To: 20, Step: 5},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || res.Series[0].Name != "d=2" {
		t.Fatalf("unexpected series: %+v", res.Series)
	}
	if y, _ := res.Series[0].YAt(20); y != 400 {
		t.Errorf("u(20) = %g, want 400", y)
	}
	if y, _ := res.Series[0].YAt(5); y != 0 {
		t.Errorf("u(5) = %g, want 0 (below threshold)", y)
	}
	// Wrong axis variable for the kind.
	s.Axis.Variable = VarThreshold
	if err := s.Validate(); err == nil {
		t.Fatal("utility scenario with model axis must be rejected")
	}
}

func TestAxisGrid(t *testing.T) {
	xs, err := AxisSpec{Variable: VarThreshold, From: 0.1, To: 0.5, Step: 0.1, Round: 1}.grid()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	if !reflect.DeepEqual(xs, want) {
		t.Fatalf("grid = %v, want %v", xs, want)
	}
	xs, err = AxisSpec{Variable: VarThreshold, Values: []float64{3, 1, 2}}.grid()
	if err != nil || !reflect.DeepEqual(xs, []float64{3, 1, 2}) {
		t.Fatalf("explicit values grid = %v (%v)", xs, err)
	}
	if _, err := (AxisSpec{Variable: VarThreshold, From: 0, To: 1e9, Step: 1e-3}).grid(); err == nil {
		t.Fatal("runaway grid must be rejected")
	}
}

func TestApplySigmaMatchesMixtureRounding(t *testing.T) {
	s := &Spec{
		ID:         "sig",
		Facilities: []FacilitySpec{{Name: "A", Locations: 10, Resources: 1}},
		Demand: []DemandSpec{
			{Name: "a", Count: 7},
			{Name: "b", Count: 0},
		},
		Axis: AxisSpec{Variable: VarSigma, From: 0, To: 1, Step: 0.25, Round: 2},
	}
	for _, tc := range []struct {
		sigma float64
		wantB int
	}{
		{0, 0}, {0.25, 2}, {0.5, 4}, {0.75, 5}, {1, 7},
	} {
		c, err := s.at(tc.sigma)
		if err != nil {
			t.Fatal(err)
		}
		if c.Demand[1].Count != tc.wantB || c.Demand[0].Count+c.Demand[1].Count != 7 {
			t.Errorf("sigma %g: counts (%d, %d), want b=%d of 7",
				tc.sigma, c.Demand[0].Count, c.Demand[1].Count, tc.wantB)
		}
	}
	// Targeting the first class flips the roles.
	s.Axis.Target = "a"
	c, err := s.at(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if c.Demand[0].Count != 2 || c.Demand[1].Count != 5 {
		t.Errorf("targeted sigma: counts (%d, %d), want (2, 5)", c.Demand[0].Count, c.Demand[1].Count)
	}
}

func TestDemandSpecDefaults(t *testing.T) {
	et := DemandSpec{Name: "d"}.experimentType()
	if !math.IsInf(et.MaxLocations, 1) || et.Resources != 1 || et.HoldingTime != 1 || et.Shape != 1 {
		t.Fatalf("defaults not applied: %+v", et)
	}
	if err := et.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrorsCarryContext(t *testing.T) {
	// A spec that validates but whose policy fails at run time does not
	// exist for the built-in rules on well-formed models; instead check
	// that Run refuses an invalid spec outright.
	s := testSpec()
	s.Policies = []string{"dictator"}
	if _, err := Run(s); err == nil || !strings.Contains(err.Error(), "dictator") {
		t.Fatalf("Run must surface the unknown policy, got %v", err)
	}
}
