package scenario

import (
	"fmt"
	"strconv"

	"fedshare/internal/core"
	"fedshare/internal/obs"
	"fedshare/internal/stats"
	"fedshare/internal/sweep"
)

// Scenario-engine instrumentation: one span per Run (fedshare_span_seconds
// with the scenario id attached) plus per-scenario run and model-point
// counters.
var (
	runsTotal = obs.Default.CounterVec("fedshare_scenario_runs_total",
		"Scenario executions since process start.", "scenario")
	pointsTotal = obs.Default.CounterVec("fedshare_scenario_points_total",
		"Model evaluation points executed by the scenario engine.", "scenario")
)

// Result is an executed scenario: the series the experiment plots, ready
// for the table/chart renderers. Paper figures are Results too.
type Result struct {
	ID     string
	Title  string
	XLabel string
	Notes  string
	Series []stats.Series
}

// Table renders the result's series as an aligned text table.
func (r *Result) Table() string {
	return stats.Table(r.XLabel, r.Series)
}

// policySymbol maps policy names to the per-facility series symbols the
// paper uses (φ̂, π̂, ρ̂, ...). Unknown policies fall back to their name.
var policySymbol = map[string]string{
	"shapley":        "phi",
	"shapley-approx": "aphi",
	"proportional":   "pi",
	"consumption":    "rho",
	"equal":          "eq",
	"nucleolus":      "nu",
	"banzhaf":        "beta",
	"shapley-users":  "uphi",
}

// symbolFor returns the series symbol for a policy name.
func symbolFor(name string) string {
	if sym, ok := policySymbol[name]; ok {
		return sym
	}
	return name
}

// Run validates and executes a spec: it materializes the axis grid,
// evaluates every sweep point on the sweep worker pool (deterministic
// point ordering, so output is byte-identical to a sequential run), and
// assembles the output series. Model-construction and policy errors
// propagate with the failing point's coordinates attached.
func Run(s *Spec) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sp := obs.StartSpan("scenario.run").Attr("scenario", s.ID).Attr("kind", s.kind())
	defer sp.End()
	runsTotal.With(s.ID).Inc()
	xs, err := s.Axis.grid()
	if err != nil {
		return nil, err
	}
	res := &Result{ID: s.ID, Title: s.Title, XLabel: s.XLabel, Notes: s.Notes}
	switch s.kind() {
	case KindUtility:
		err = s.runUtility(res, xs)
	case KindShares:
		err = s.runShares(res, xs)
	case KindProfit:
		err = s.runProfit(res, xs)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runUtility evaluates each demand class's utility function over the grid.
func (s *Spec) runUtility(res *Result, xs []float64) error {
	for _, d := range s.Demand {
		u := d.experimentType().Utility()
		ser := stats.Series{Name: d.Name}
		for _, x := range xs {
			ser.Add(x, u.Eval(x))
		}
		res.Series = append(res.Series, ser)
	}
	pointsTotal.With(s.ID).Add(int64(len(xs) * len(s.Demand)))
	return nil
}

// runShares evaluates every policy's share vector at each sweep point and
// emits policy-major series: all of policy 1's facilities, then policy
// 2's, ... with names <symbol><facility index>. A templated facility entry
// (Count > 1) contributes one series holding the mean share of its
// replicas, so the series layout depends only on the spec's entry list —
// a 200-facility federation declared from 4 templates plots 4 curves per
// policy.
func (s *Spec) runShares(res *Result, xs []float64) error {
	policies, err := s.resolvedPolicies()
	if err != nil {
		return err
	}
	groups := s.facilityGroups()
	pts, err := sweep.RunErr(len(xs), 0, func(k int) ([][]float64, error) {
		at, err := s.at(xs[k])
		if err != nil {
			return nil, err
		}
		m, err := at.Model()
		if err != nil {
			return nil, err
		}
		out := make([][]float64, len(policies))
		for pi, p := range policies {
			shares, err := p.Shares(m)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %s policy at %s=%g: %w",
					s.ID, p.Name(), s.Axis.Variable, xs[k], err)
			}
			grouped := make([]float64, len(groups))
			for gi, members := range groups {
				total := 0.0
				for _, fi := range members {
					total += shares[fi]
				}
				grouped[gi] = total / float64(len(members))
			}
			out[pi] = grouped
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	pointsTotal.With(s.ID).Add(int64(len(xs)))
	for pi, p := range policies {
		sym := symbolFor(p.Name())
		for i := range groups {
			ser := stats.Series{Name: sym + strconv.Itoa(i+1)}
			for k, x := range xs {
				ser.Add(x, pts[k][pi][i])
			}
			res.Series = append(res.Series, ser)
		}
	}
	return nil
}

// runProfit records the tracked facility's absolute payoff per point, one
// sweep per variant × policy, variant-major (matching the paper's Fig 9
// series layout).
func (s *Spec) runProfit(res *Result, xs []float64) error {
	policies, err := s.resolvedPolicies()
	if err != nil {
		return err
	}
	idx, err := s.trackIndex()
	if err != nil {
		return err
	}
	variants := s.Variants
	if len(variants) == 0 {
		variants = []VariantSpec{{}}
	}
	for _, v := range variants {
		base := s.clone()
		for _, set := range v.Set {
			if err := base.apply(set.Variable, set.Target, set.Value); err != nil {
				return fmt.Errorf("scenario %s: variant %s: %w", s.ID, v.Name, err)
			}
		}
		for _, p := range policies {
			ys, err := sweep.RunErr(len(xs), 0, func(k int) (float64, error) {
				at, err := base.at(xs[k])
				if err != nil {
					return 0, err
				}
				m, err := at.Model()
				if err != nil {
					return 0, err
				}
				profits, err := core.Profits(m, p)
				if err != nil {
					return 0, fmt.Errorf("scenario %s: %s policy at %s=%g: %w",
						s.ID, p.Name(), s.Axis.Variable, xs[k], err)
				}
				return profits[idx], nil
			})
			if err != nil {
				return err
			}
			pointsTotal.With(s.ID).Add(int64(len(xs)))
			name := symbolFor(p.Name()) + strconv.Itoa(idx+1)
			if v.Name != "" {
				name += "," + v.Name
			}
			ser := stats.Series{Name: name}
			for k, x := range xs {
				ser.Add(x, ys[k])
			}
			res.Series = append(res.Series, ser)
		}
	}
	return nil
}
