package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync/atomic"

	"fedshare/internal/core"
	"fedshare/internal/obs"
	"fedshare/internal/stats"
	"fedshare/internal/sweep"
)

// Scenario-engine instrumentation: one span per Run (fedshare_span_seconds
// with the scenario id attached) plus per-scenario run and model-point
// counters.
var (
	runsTotal = obs.Default.CounterVec("fedshare_scenario_runs_total",
		"Scenario executions since process start.", "scenario")
	pointsTotal = obs.Default.CounterVec("fedshare_scenario_points_total",
		"Model evaluation points executed by the scenario engine.", "scenario")
)

// Result is an executed scenario: the series the experiment plots, ready
// for the table/chart renderers. Paper figures are Results too.
type Result struct {
	ID     string         `json:"id"`
	Title  string         `json:"title"`
	XLabel string         `json:"xlabel"`
	Notes  string         `json:"notes,omitempty"`
	Series []stats.Series `json:"series"`
}

// Table renders the result's series as an aligned text table.
func (r *Result) Table() string {
	return stats.Table(r.XLabel, r.Series)
}

// JSON encodes the result as indented JSON. The API result endpoint and
// fedsim -result-json both emit exactly this encoding, so the CI api-smoke
// diff gate can compare them byte for byte.
func (r *Result) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode result: %w", err)
	}
	return append(out, '\n'), nil
}

// policySymbol maps policy names to the per-facility series symbols the
// paper uses (φ̂, π̂, ρ̂, ...). Unknown policies fall back to their name.
var policySymbol = map[string]string{
	"shapley":        "phi",
	"shapley-approx": "aphi",
	"proportional":   "pi",
	"consumption":    "rho",
	"equal":          "eq",
	"nucleolus":      "nu",
	"banzhaf":        "beta",
	"shapley-users":  "uphi",
}

// symbolFor returns the series symbol for a policy name.
func symbolFor(name string) string {
	if sym, ok := policySymbol[name]; ok {
		return sym
	}
	return name
}

// ProgressFunc observes sweep execution: done points out of total. It is
// called once up front with (0, total) and then after every completed
// point, possibly concurrently from sweep workers — implementations must
// be safe for concurrent use.
type ProgressFunc func(done, total int)

// runner threads the execution context through a single scenario run: the
// cancellation context and the per-point progress callback. A nil runner
// context behaves like context.Background(), so the synchronous Run path
// pays nothing for the indirection.
type runner struct {
	ctx      context.Context
	progress ProgressFunc
	total    int
	done     atomic.Int64
}

// cancelled surfaces context cancellation between and within sweeps. The
// context's error is returned unwrapped so callers (the async engine) can
// classify cancellation with errors.Is.
func (r *runner) cancelled() error {
	if r.ctx == nil {
		return nil
	}
	return r.ctx.Err()
}

// step records one completed sweep point.
func (r *runner) step() {
	n := r.done.Add(1)
	if r.progress != nil {
		r.progress(int(n), r.total)
	}
}

// Run validates and executes a spec synchronously. It is the thin wrapper
// the one-shot paths (fedsim figures, golden tests) use; the full executor
// with cancellation and progress is RunContext, which the async engine
// layer drives.
func Run(s *Spec) (*Result, error) {
	return RunContext(context.Background(), s, nil)
}

// RunContext validates and executes a spec: it materializes the axis grid,
// evaluates every sweep point on the sweep worker pool (deterministic
// point ordering, so output is byte-identical to a sequential run), and
// assembles the output series. Model-construction and policy errors
// propagate with the failing point's coordinates attached.
//
// The context cancels the run between sweep points: a cancelled run
// returns ctx.Err() (unwrapped). progress, when non-nil, is invoked after
// every completed point with (done, total); total counts model-evaluation
// points (sweep points × the per-point multiplicity of the scenario kind).
func RunContext(ctx context.Context, s *Spec, progress ProgressFunc) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sp := obs.StartSpan("scenario.run").Attr("scenario", s.ID).Attr("kind", s.kind())
	defer sp.End()
	runsTotal.With(s.ID).Inc()
	xs, err := s.Axis.grid()
	if err != nil {
		return nil, err
	}
	r := &runner{ctx: ctx, progress: progress}
	r.total = s.totalPoints(len(xs))
	if progress != nil {
		progress(0, r.total)
	}
	res := &Result{ID: s.ID, Title: s.Title, XLabel: s.XLabel, Notes: s.Notes}
	switch s.kind() {
	case KindUtility:
		err = s.runUtility(r, res, xs)
	case KindShares:
		err = s.runShares(r, res, xs)
	case KindProfit:
		err = s.runProfit(r, res, xs)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// totalPoints predicts the progress denominator for a grid of n axis
// points: the number of model-evaluation points the kind executes.
func (s *Spec) totalPoints(n int) int {
	switch s.kind() {
	case KindUtility:
		return n * len(s.Demand)
	case KindProfit:
		variants := len(s.Variants)
		if variants == 0 {
			variants = 1
		}
		policies := len(s.Policies)
		if policies == 0 {
			policies = 2 // shapley + proportional default
		}
		return n * variants * policies
	default:
		return n
	}
}

// runUtility evaluates each demand class's utility function over the grid.
func (s *Spec) runUtility(r *runner, res *Result, xs []float64) error {
	for _, d := range s.Demand {
		if err := r.cancelled(); err != nil {
			return err
		}
		u := d.experimentType().Utility()
		ser := stats.Series{Name: d.Name}
		for _, x := range xs {
			ser.Add(x, u.Eval(x))
		}
		r.done.Add(int64(len(xs) - 1))
		r.step()
		res.Series = append(res.Series, ser)
	}
	pointsTotal.With(s.ID).Add(int64(len(xs) * len(s.Demand)))
	return nil
}

// runShares evaluates every policy's share vector at each sweep point and
// emits policy-major series: all of policy 1's facilities, then policy
// 2's, ... with names <symbol><facility index>. A templated facility entry
// (Count > 1) contributes one series holding the mean share of its
// replicas, so the series layout depends only on the spec's entry list —
// a 200-facility federation declared from 4 templates plots 4 curves per
// policy.
func (s *Spec) runShares(r *runner, res *Result, xs []float64) error {
	policies, err := s.resolvedPolicies()
	if err != nil {
		return err
	}
	groups := s.facilityGroups()
	pts, err := sweep.RunErr(len(xs), 0, func(k int) ([][]float64, error) {
		if err := r.cancelled(); err != nil {
			return nil, err
		}
		at, err := s.at(xs[k])
		if err != nil {
			return nil, err
		}
		m, err := at.Model()
		if err != nil {
			return nil, err
		}
		out := make([][]float64, len(policies))
		for pi, p := range policies {
			shares, err := p.Shares(m)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %s policy at %s=%g: %w",
					s.ID, p.Name(), s.Axis.Variable, xs[k], err)
			}
			grouped := make([]float64, len(groups))
			for gi, members := range groups {
				total := 0.0
				for _, fi := range members {
					total += shares[fi]
				}
				grouped[gi] = total / float64(len(members))
			}
			out[pi] = grouped
		}
		r.step()
		return out, nil
	})
	if err != nil {
		return err
	}
	pointsTotal.With(s.ID).Add(int64(len(xs)))
	for pi, p := range policies {
		sym := symbolFor(p.Name())
		for i := range groups {
			ser := stats.Series{Name: sym + strconv.Itoa(i+1)}
			for k, x := range xs {
				ser.Add(x, pts[k][pi][i])
			}
			res.Series = append(res.Series, ser)
		}
	}
	return nil
}

// runProfit records the tracked facility's absolute payoff per point, one
// sweep per variant × policy, variant-major (matching the paper's Fig 9
// series layout).
func (s *Spec) runProfit(r *runner, res *Result, xs []float64) error {
	policies, err := s.resolvedPolicies()
	if err != nil {
		return err
	}
	idx, err := s.trackIndex()
	if err != nil {
		return err
	}
	variants := s.Variants
	if len(variants) == 0 {
		variants = []VariantSpec{{}}
	}
	for _, v := range variants {
		base := s.clone()
		for _, set := range v.Set {
			if err := base.apply(set.Variable, set.Target, set.Value); err != nil {
				return fmt.Errorf("scenario %s: variant %s: %w", s.ID, v.Name, err)
			}
		}
		for _, p := range policies {
			if err := r.cancelled(); err != nil {
				return err
			}
			ys, err := sweep.RunErr(len(xs), 0, func(k int) (float64, error) {
				if err := r.cancelled(); err != nil {
					return 0, err
				}
				at, err := base.at(xs[k])
				if err != nil {
					return 0, err
				}
				m, err := at.Model()
				if err != nil {
					return 0, err
				}
				profits, err := core.Profits(m, p)
				if err != nil {
					return 0, fmt.Errorf("scenario %s: %s policy at %s=%g: %w",
						s.ID, p.Name(), s.Axis.Variable, xs[k], err)
				}
				r.step()
				return profits[idx], nil
			})
			if err != nil {
				return err
			}
			pointsTotal.With(s.ID).Add(int64(len(xs)))
			name := symbolFor(p.Name()) + strconv.Itoa(idx+1)
			if v.Name != "" {
				name += "," + v.Name
			}
			ser := stats.Series{Name: name}
			for k, x := range xs {
				ser.Add(x, ys[k])
			}
			res.Series = append(res.Series, ser)
		}
	}
	return nil
}
