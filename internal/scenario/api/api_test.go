package api

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	// The scenarios endpoint serves the figure registry; registering it here
	// mirrors what fedd does.
	_ "fedshare/internal/figures"

	"fedshare/internal/obs"
	"fedshare/internal/scenario"
	"fedshare/internal/scenario/engine"
)

// newTestServer wires an engine + API + health/version routes into an
// httptest server, the same mux shape fedd serves.
func newTestServer(t *testing.T, opts engine.Options) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(opts)
	t.Cleanup(eng.Close)
	mux := obs.HandlerWithHealth(nil)
	NewServer(eng).Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, eng
}

const testSpecJSON = `{
  "id": "api-test",
  "title": "API test scenario",
  "xlabel": "l",
  "facilities": [
    {"name": "A", "locations": 20, "resources": 8},
    {"name": "B", "locations": 40, "resources": 4}
  ],
  "demand": [{"name": "batch", "count": 10}],
  "policies": ["proportional"],
  "axis": {"variable": "threshold", "from": 0, "to": 100, "step": 25}
}`

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func pollDone(t *testing.T, base, id string) RunJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var r RunJSON
		resp := getJSON(t, base+"/api/v1/runs/"+id, &r)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: %s", id, resp.Status)
		}
		switch r.State {
		case "done":
			return r
		case "failed", "cancelled":
			t.Fatalf("run %s ended %s: %s", id, r.State, r.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never finished", id)
	return RunJSON{}
}

func TestSubmitPollResultLifecycle(t *testing.T) {
	srv, _ := newTestServer(t, engine.Options{})
	resp, err := http.Post(srv.URL+"/api/v1/runs", "application/json",
		strings.NewReader(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %s, want 202", resp.Status)
	}
	var run RunJSON
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if run.ID == "" || run.Scenario != "api-test" {
		t.Fatalf("submit returned %+v", run)
	}

	final := pollDone(t, srv.URL, run.ID)
	if final.Progress.Done != final.Progress.Total || final.Progress.Total == 0 {
		t.Fatalf("final progress %+v", final.Progress)
	}
	if final.Started == nil || final.Finished == nil {
		t.Fatalf("final run missing timestamps: %+v", final)
	}

	// The result endpoint must serve byte-for-byte what the in-process
	// executor produces for the same spec — the CI api-smoke diff contract.
	res, err := http.Get(srv.URL + "/api/v1/runs/" + run.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result status = %s", res.Status)
	}
	spec, err := scenario.ParseSpec([]byte(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := direct.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("API result differs from scenario.Run output:\n%s\nvs\n%s", gotBytes, wantBytes)
	}

	// The run list includes the finished run.
	var list struct {
		Runs []RunJSON `json:"runs"`
	}
	getJSON(t, srv.URL+"/api/v1/runs", &list)
	if len(list.Runs) != 1 || list.Runs[0].ID != run.ID {
		t.Fatalf("run list %+v", list.Runs)
	}
}

func TestSubmitRegisteredScenario(t *testing.T) {
	srv, _ := newTestServer(t, engine.Options{})
	resp, err := http.Post(srv.URL+"/api/v1/runs?scenario=fig2", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var run RunJSON
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %s", resp.Status)
	}
	final := pollDone(t, srv.URL, run.ID)
	if final.Scenario != "fig2" {
		t.Fatalf("scenario = %s", final.Scenario)
	}

	// Identical to the registry's own run — the acceptance gate that every
	// registered figure is API-reproducible.
	res, err := http.Get(srv.URL + "/api/v1/runs/" + run.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, _ := io.ReadAll(res.Body)
	res.Body.Close()
	entry, err := scenario.ByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := entry.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, _ := direct.JSON()
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatal("API result for fig2 differs from registry run")
	}
}

func TestEveryRegisteredSpecSubmittable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered figure; skip in -short mode")
	}
	srv, _ := newTestServer(t, engine.Options{MaxConcurrent: 2})
	for _, e := range scenario.Entries() {
		resp, err := http.Post(srv.URL+"/api/v1/runs?scenario="+e.ID, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var run RunJSON
		if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %s", e.ID, resp.Status)
		}
		final := pollDone(t, srv.URL, run.ID)
		if final.State != "done" {
			t.Fatalf("scenario %s ended %s", e.ID, final.State)
		}
	}
}

func TestErrorsAreStructuredJSON(t *testing.T) {
	srv, _ := newTestServer(t, engine.Options{})
	cases := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"invalid spec", func() (*http.Response, error) {
			return http.Post(srv.URL+"/api/v1/runs", "application/json",
				strings.NewReader(`{"id": "bad", "facilties": []}`))
		}, http.StatusBadRequest},
		{"empty body", func() (*http.Response, error) {
			return http.Post(srv.URL+"/api/v1/runs", "application/json", nil)
		}, http.StatusBadRequest},
		{"unknown scenario", func() (*http.Response, error) {
			return http.Post(srv.URL+"/api/v1/runs?scenario=nope", "application/json", nil)
		}, http.StatusNotFound},
		{"unknown run", func() (*http.Response, error) {
			return http.Get(srv.URL + "/api/v1/runs/run-999999")
		}, http.StatusNotFound},
		{"unknown result", func() (*http.Response, error) {
			return http.Get(srv.URL + "/api/v1/runs/run-999999/result")
		}, http.StatusNotFound},
		{"cancel unknown", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/runs/run-999999", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %s, want %d", tc.name, resp.Status, tc.status)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: body %q is not structured error JSON", tc.name, body)
		}
	}
}

func TestResultBeforeDoneConflicts(t *testing.T) {
	srv, eng := newTestServer(t, engine.Options{MaxConcurrent: 1})
	// Occupy the only slot so an API-submitted run stays queued.
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	if _, err := eng.SubmitJob("blocker", func(ctx context.Context, progress scenario.ProgressFunc) (*scenario.Result, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &scenario.Result{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	resp, err := http.Post(srv.URL+"/api/v1/runs", "application/json",
		strings.NewReader(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	var run RunJSON
	_ = json.NewDecoder(resp.Body).Decode(&run)
	resp.Body.Close()

	res, err := http.Get(srv.URL + "/api/v1/runs/" + run.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("result of queued run: %s, want 409", res.Status)
	}

	// DELETE cancels the queued run.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/runs/"+run.ID, nil)
	dres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled RunJSON
	_ = json.NewDecoder(dres.Body).Decode(&cancelled)
	dres.Body.Close()
	if dres.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", dres.Status)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var r RunJSON
		getJSON(t, srv.URL+"/api/v1/runs/"+run.ID, &r)
		if r.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run state %s, want cancelled", r.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Cancelling again conflicts.
	req2, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/runs/"+run.ID, nil)
	dres2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	dres2.Body.Close()
	if dres2.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: %s, want 409", dres2.Status)
	}
}

func TestScenariosListing(t *testing.T) {
	srv, _ := newTestServer(t, engine.Options{})
	var list struct {
		Scenarios []scenarioJSON `json:"scenarios"`
	}
	resp := getJSON(t, srv.URL+"/api/v1/scenarios", &list)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenarios: %s", resp.Status)
	}
	ids := map[string]scenarioJSON{}
	for _, s := range list.Scenarios {
		ids[s.ID] = s
	}
	for _, want := range []string{"fig2", "fig4", "fig9", "fig-market"} {
		if _, ok := ids[want]; !ok {
			t.Errorf("scenarios listing missing %s", want)
		}
	}
	if ids["fig-market"].Source != "code" {
		t.Errorf("fig-market source = %q, want code", ids["fig-market"].Source)
	}
}

func TestDashboardServedFromEmbeddedFS(t *testing.T) {
	srv, _ := newTestServer(t, engine.Options{})
	for path, marker := range map[string]string{
		"/":          "fedshare",
		"/app.js":    "api/v1/runs",
		"/style.css": "--series-1",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if !strings.Contains(string(body), marker) {
			t.Fatalf("GET %s: missing marker %q", path, marker)
		}
	}
	// Zero external dependencies: no asset may reference a CDN or any
	// absolute http(s) URL.
	for _, path := range []string{"/", "/app.js", "/style.css"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, bad := range []string{"https://", "cdn.", "unpkg", "jsdelivr"} {
			if strings.Contains(string(body), bad) {
				t.Errorf("%s references external resource %q", path, bad)
			}
		}
	}
}

func TestMetricsAndVersionStillServedBesideAPI(t *testing.T) {
	srv, _ := newTestServer(t, engine.Options{})
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "fedshare_") {
		t.Fatalf("/metrics broken beside the API: %s", resp.Status)
	}
	var v obs.BuildInfo
	vres := getJSON(t, srv.URL+"/version", &v)
	if vres.StatusCode != http.StatusOK || v.Go == "" {
		t.Fatalf("/version broken: %s %+v", vres.Status, v)
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
