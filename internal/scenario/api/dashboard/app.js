// fedshare dashboard — a plain-JS client of the scenario API. No
// framework, no CDN: everything the browser needs is compiled into the
// daemon binary. The page polls the run table while anything is live and
// renders completed results as an SVG line chart plus a data table (the
// same series JSON `fedctl result` and `fedsim -result-json` emit).
"use strict";

const POLL_MS = 1000;
let currentResult = null; // id of the run shown in the result panel

async function fetchJSON(url, opts) {
  const resp = await fetch(url, opts);
  const text = await resp.text();
  let body = null;
  try { body = text ? JSON.parse(text) : null; } catch { /* non-JSON */ }
  if (!resp.ok) {
    const msg = body && body.error ? body.error : resp.status + " " + resp.statusText;
    throw new Error(msg);
  }
  return body;
}

function el(tag, attrs, ...children) {
  const node = document.createElement(tag);
  for (const [k, v] of Object.entries(attrs || {})) {
    if (k === "class") node.className = v;
    else if (k.startsWith("on")) node.addEventListener(k.slice(2), v);
    else node.setAttribute(k, v);
  }
  for (const c of children) {
    node.append(c instanceof Node ? c : document.createTextNode(String(c)));
  }
  return node;
}

// -- header: version + readiness ------------------------------------------

async function loadVersion() {
  try {
    const v = await fetchJSON("/version");
    const parts = [];
    if (v.version && v.version !== "(devel)") parts.push(v.version);
    if (v.revision) parts.push(v.revision.slice(0, 12));
    if (v.go) parts.push(v.go);
    document.getElementById("version").textContent =
      parts.length ? parts.join(" · ") : "development build";
  } catch {
    document.getElementById("version").textContent = "version unavailable";
  }
}

async function pollHealth() {
  const dot = document.getElementById("health");
  try {
    const resp = await fetch("/readyz");
    dot.className = "health " + (resp.ok ? "ok" : "bad");
    dot.title = resp.ok ? "ready" : "not ready (draining?)";
  } catch {
    dot.className = "health bad";
    dot.title = "unreachable";
  }
}

// -- scenarios ------------------------------------------------------------

async function loadScenarios() {
  const list = document.getElementById("scenarios");
  try {
    const data = await fetchJSON("/api/v1/scenarios");
    list.replaceChildren(...data.scenarios.map(s =>
      el("li", {},
        el("span", { class: "id" }, s.id),
        el("span", { class: "title", title: s.title }, s.title),
        el("button", {
          class: "quiet",
          onclick: () => submitScenario(s.id),
        }, "Run"))));
  } catch (err) {
    list.replaceChildren(el("li", { class: "error" }, String(err.message)));
  }
}

async function submitScenario(id) {
  try {
    await fetchJSON("/api/v1/runs?scenario=" + encodeURIComponent(id), { method: "POST" });
    refreshRuns();
  } catch (err) {
    showSubmitError(err);
  }
}

function showSubmitError(err) {
  document.getElementById("submit-error").textContent = String(err.message);
}

async function submitSpec() {
  showSubmitError({ message: "" });
  const spec = document.getElementById("spec").value.trim();
  if (!spec) return showSubmitError({ message: "paste a spec document first" });
  try {
    await fetchJSON("/api/v1/runs", { method: "POST", body: spec });
    refreshRuns();
  } catch (err) {
    showSubmitError(err);
  }
}

// -- runs table -----------------------------------------------------------

function fmtElapsed(sec) {
  if (!sec) return "";
  if (sec < 1) return (sec * 1000).toFixed(0) + " ms";
  if (sec < 60) return sec.toFixed(1) + " s";
  return Math.floor(sec / 60) + "m " + Math.round(sec % 60) + "s";
}

async function refreshRuns() {
  let data;
  try {
    data = await fetchJSON("/api/v1/runs");
  } catch {
    return; // transient; next poll retries
  }
  const runs = data.runs;
  document.getElementById("no-runs").hidden = runs.length > 0;
  const body = document.querySelector("#runs tbody");
  body.replaceChildren(...runs.slice().reverse().map(r => {
    const pct = r.progress.total > 0
      ? Math.round(100 * r.progress.done / r.progress.total) : 0;
    const actions = [];
    if (r.state === "queued" || r.state === "running") {
      actions.push(el("button", { class: "quiet", onclick: () => cancelRun(r.id) }, "Cancel"));
    }
    if (r.state === "done") {
      actions.push(el("button", { class: "quiet", onclick: () => showResult(r.id) }, "View"));
    }
    return el("tr", {},
      el("td", { class: "id" }, r.id),
      el("td", { class: "scn" }, r.scenario),
      el("td", {}, el("span", { class: "state " + r.state, title: r.error || "" }, r.state)),
      el("td", {},
        el("span", { class: "bar" }, el("i", { style: "width:" + pct + "%" })),
        el("span", {}, r.progress.total > 0 ? ` ${r.progress.done}/${r.progress.total}` : "")),
      el("td", {}, fmtElapsed(r.elapsed_seconds)),
      el("td", {}, ...actions));
  }));
  // Auto-open the newest completed run if nothing is on display yet.
  if (currentResult === null) {
    const done = runs.filter(r => r.state === "done");
    if (done.length) showResult(done[done.length - 1].id);
  }
}

async function cancelRun(id) {
  try { await fetchJSON("/api/v1/runs/" + id, { method: "DELETE" }); } catch { /* raced done */ }
  refreshRuns();
}

// -- result rendering -----------------------------------------------------

// Fixed validated categorical order; identity follows the series, never its
// rank within a filtered view. Past eight series the hues repeat with a
// dashed stroke as the secondary encoding, and the data table below the
// chart is always present as the unambiguous view.
const SERIES_VARS = ["--series-1", "--series-2", "--series-3", "--series-4",
  "--series-5", "--series-6", "--series-7", "--series-8"];

function seriesStyle(i) {
  const css = getComputedStyle(document.body);
  return {
    color: css.getPropertyValue(SERIES_VARS[i % SERIES_VARS.length]).trim(),
    dashed: i >= SERIES_VARS.length,
  };
}

async function showResult(id) {
  currentResult = id;
  let result;
  try {
    result = await fetchJSON("/api/v1/runs/" + id + "/result");
  } catch (err) {
    return showSubmitError(err);
  }
  const panel = document.getElementById("result");
  panel.hidden = false;
  document.getElementById("result-title").textContent =
    result.id + " — " + (result.title || "untitled");
  document.getElementById("result-notes").textContent = result.notes || "";
  renderChart(result);
  renderLegend(result);
  renderTable(result);
}

function extent(series, pick) {
  let lo = Infinity, hi = -Infinity;
  for (const s of series) for (const p of s.Points) {
    const v = pick(p);
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  if (lo === Infinity) { lo = 0; hi = 1; }
  if (lo === hi) { lo -= 0.5; hi += 0.5; }
  return [lo, hi];
}

function ticks(lo, hi, n) {
  const span = hi - lo;
  const step = Math.pow(10, Math.floor(Math.log10(span / n)));
  const err = span / n / step;
  const mult = err >= 7.5 ? 10 : err >= 3.5 ? 5 : err >= 1.5 ? 2 : 1;
  const s = step * mult;
  const out = [];
  for (let v = Math.ceil(lo / s) * s; v <= hi + s * 1e-9; v += s) {
    out.push(Math.abs(v) < s * 1e-9 ? 0 : v);
  }
  return out;
}

function fmtNum(v) {
  if (v === 0) return "0";
  const a = Math.abs(v);
  if (a >= 1e5 || a < 1e-3) return v.toExponential(1);
  return String(+v.toPrecision(4));
}

function renderChart(result) {
  const W = 760, H = 340, m = { top: 14, right: 16, bottom: 34, left: 56 };
  const series = result.series || [];
  const [x0, x1] = extent(series, p => p.X);
  const [rawY0, y1] = extent(series, p => p.Y);
  const y0 = Math.min(0, rawY0); // shares/profits anchor at zero when non-negative
  const sx = x => m.left + (x - x0) / (x1 - x0) * (W - m.left - m.right);
  const sy = y => H - m.bottom - (y - y0) / (y1 - y0) * (H - m.top - m.bottom);

  const ns = "http://www.w3.org/2000/svg";
  const svg = document.createElementNS(ns, "svg");
  svg.setAttribute("viewBox", `0 0 ${W} ${H}`);
  svg.setAttribute("role", "img");
  svg.setAttribute("aria-label", result.title || result.id);

  const mk = (tag, attrs, text) => {
    const node = document.createElementNS(ns, tag);
    for (const [k, v] of Object.entries(attrs)) node.setAttribute(k, v);
    if (text !== undefined) node.textContent = text;
    svg.appendChild(node);
    return node;
  };

  // Recessive grid + axis ticks.
  for (const t of ticks(y0, y1, 5)) {
    mk("line", { class: "grid", x1: m.left, x2: W - m.right, y1: sy(t), y2: sy(t) });
    mk("text", { class: "tick-label", x: m.left - 7, y: sy(t) + 3, "text-anchor": "end" }, fmtNum(t));
  }
  for (const t of ticks(x0, x1, 7)) {
    mk("line", { class: "axis", x1: sx(t), x2: sx(t), y1: H - m.bottom, y2: H - m.bottom + 4 });
    mk("text", { class: "tick-label", x: sx(t), y: H - m.bottom + 16, "text-anchor": "middle" }, fmtNum(t));
  }
  mk("line", { class: "axis", x1: m.left, x2: W - m.right, y1: H - m.bottom, y2: H - m.bottom });
  mk("text", {
    class: "tick-label", x: (m.left + W - m.right) / 2, y: H - 6, "text-anchor": "middle",
  }, result.xlabel || "x");

  // 2px series lines in fixed categorical order.
  series.forEach((s, i) => {
    const st = seriesStyle(i);
    const d = s.Points.map((p, k) => (k ? "L" : "M") + sx(p.X).toFixed(2) + " " + sy(p.Y).toFixed(2)).join(" ");
    mk("path", {
      d, fill: "none", stroke: st.color, "stroke-width": 2,
      "stroke-dasharray": st.dashed ? "6 4" : "none",
      "stroke-linejoin": "round", "stroke-linecap": "round",
    });
  });

  // Hover layer: crosshair snapped to the nearest x grid point plus a
  // tooltip listing every series' value there.
  const crosshair = mk("line", { class: "crosshair", y1: m.top, y2: H - m.bottom, visibility: "hidden" });
  const tooltip = el("div", { class: "tooltip" });
  tooltip.hidden = true;
  document.body.appendChild(tooltip);
  const xs = series.length ? series[0].Points.map(p => p.X) : [];

  svg.addEventListener("mousemove", ev => {
    if (!xs.length) return;
    const rect = svg.getBoundingClientRect();
    const px = (ev.clientX - rect.left) * W / rect.width;
    let best = 0;
    for (let k = 1; k < xs.length; k++) {
      if (Math.abs(sx(xs[k]) - px) < Math.abs(sx(xs[best]) - px)) best = k;
    }
    crosshair.setAttribute("x1", sx(xs[best]));
    crosshair.setAttribute("x2", sx(xs[best]));
    crosshair.setAttribute("visibility", "visible");
    tooltip.hidden = false;
    tooltip.replaceChildren(
      el("div", { class: "x" }, (result.xlabel || "x") + " = " + fmtNum(xs[best])),
      ...series.map((s, i) => {
        const st = seriesStyle(i);
        return el("div", {},
          el("span", {
            class: "swatch" + (st.dashed ? " dashed" : ""),
            style: "border-top-color:" + st.color,
          }),
          s.Name + ": " + (s.Points[best] ? fmtNum(s.Points[best].Y) : "—"));
      }));
    tooltip.style.left = Math.min(ev.clientX + 14, window.innerWidth - 300) + "px";
    tooltip.style.top = (ev.clientY + 14) + "px";
  });
  svg.addEventListener("mouseleave", () => {
    crosshair.setAttribute("visibility", "hidden");
    tooltip.hidden = true;
  });

  const holder = document.getElementById("chart");
  holder.replaceChildren(svg);
}

function renderLegend(result) {
  const legend = document.getElementById("legend");
  legend.replaceChildren(...(result.series || []).map((s, i) => {
    const st = seriesStyle(i);
    return el("span", {},
      el("span", {
        class: "swatch" + (st.dashed ? " dashed" : ""),
        style: "border-top-color:" + st.color,
      }), s.Name);
  }));
}

function renderTable(result) {
  const series = result.series || [];
  if (!series.length) return;
  const head = el("tr", {}, el("th", {}, result.xlabel || "x"),
    ...series.map(s => el("th", {}, s.Name)));
  const rows = series[0].Points.map((p, k) =>
    el("tr", {}, el("td", {}, fmtNum(p.X)),
      ...series.map(s => el("td", {}, s.Points[k] ? fmtNum(s.Points[k].Y) : ""))));
  document.getElementById("result-table").replaceChildren(
    el("table", {}, el("thead", {}, head), el("tbody", {}, ...rows)));
}

// -- boot -----------------------------------------------------------------

document.getElementById("submit").addEventListener("click", submitSpec);
loadVersion();
loadScenarios();
pollHealth();
refreshRuns();
setInterval(pollHealth, 5 * POLL_MS);
setInterval(refreshRuns, POLL_MS);
