package api

import (
	"embed"
	"io/fs"
	"net/http"
)

// The dashboard is compiled into the binary: three static assets, no
// external dependency, no CDN fetch. embed.FS is the modern form of the
// http.FileSystem asset-embedding idiom — the daemon serves experiments
// from anywhere its single binary lands.
//
//go:embed dashboard
var dashboardFS embed.FS

// RegisterDashboard mounts the embedded dashboard at the mux root. More
// specific patterns on the same mux (/metrics, /api/v1/..., the health
// probes) keep winning; everything else falls through to the asset set,
// with / serving index.html.
func RegisterDashboard(mux *http.ServeMux) {
	assets, err := fs.Sub(dashboardFS, "dashboard")
	if err != nil {
		// The subtree is compiled in; its absence is a build defect.
		panic("api: embedded dashboard missing: " + err.Error())
	}
	mux.Handle("/", http.FileServerFS(assets))
}
