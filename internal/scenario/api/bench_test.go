package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fedshare/internal/scenario"
	"fedshare/internal/scenario/engine"
)

// BenchmarkInProcessRun is the baseline: the same spec executed directly by
// the scenario layer, no engine, no HTTP. The delta against
// BenchmarkServedRun is the service plane's overhead (BENCH_9.json).
func BenchmarkInProcessRun(b *testing.B) {
	spec, err := scenario.ParseSpec([]byte(testSpecJSON))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServedRun measures the full API round trip for one experiment:
// POST the spec, poll until done, GET the result bytes — submit→result
// latency as a dashboard or script client experiences it.
func BenchmarkServedRun(b *testing.B) {
	eng := engine.New(engine.Options{MaxConcurrent: 1, MaxRuns: 16})
	defer eng.Close()
	mux := http.NewServeMux()
	NewServer(eng).RegisterAPI(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(srv.URL+"/api/v1/runs", "application/json",
			strings.NewReader(testSpecJSON))
		if err != nil {
			b.Fatal(err)
		}
		var run RunJSON
		if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		for run.State != "done" {
			if run.State == "failed" || run.State == "cancelled" {
				b.Fatalf("run ended %s: %s", run.State, run.Error)
			}
			pr, err := http.Get(srv.URL + "/api/v1/runs/" + run.ID)
			if err != nil {
				b.Fatal(err)
			}
			if err := json.NewDecoder(pr.Body).Decode(&run); err != nil {
				b.Fatal(err)
			}
			pr.Body.Close()
		}
		rr, err := http.Get(srv.URL + "/api/v1/runs/" + run.ID + "/result")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, rr.Body); err != nil {
			b.Fatal(err)
		}
		rr.Body.Close()
	}
}
