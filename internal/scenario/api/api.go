// Package api serves scenario experiments over HTTP/JSON. It is the
// service layer on top of the async engine (internal/scenario/engine):
// clients submit declarative specs or registered scenario ids, poll run
// state and per-point progress, fetch full result JSON, and cancel runs.
// The package also carries the embedded zero-dependency dashboard
// (dashboard.go) that renders the same endpoints in a browser.
//
// The API mounts onto fedd's existing metrics mux, so one listener serves
// /metrics, the health probes, /version, the dashboard, and:
//
//	GET    /api/v1/scenarios        registry listing
//	POST   /api/v1/runs             submit a spec (body) or ?scenario=<id>
//	GET    /api/v1/runs             run table
//	GET    /api/v1/runs/{id}        one run's state and progress
//	GET    /api/v1/runs/{id}/result completed run's result JSON
//	DELETE /api/v1/runs/{id}        cancel a queued or running run
//
// Errors are structured JSON ({"error": "..."}) with conventional status
// codes: 400 invalid spec, 404 unknown run/scenario, 409 conflicting run
// state, 503 engine shut down.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"fedshare/internal/obs"
	"fedshare/internal/scenario"
	"fedshare/internal/scenario/engine"
)

// maxSpecBytes bounds a submitted spec document; real specs are a few KB.
const maxSpecBytes = 1 << 20

// API-plane instrumentation.
var (
	requestsTotal = obs.Default.CounterVec("fedshare_api_requests_total",
		"Scenario API requests served, by route and status class.", "route", "status")
	requestSeconds = obs.Default.HistogramVec("fedshare_api_request_seconds",
		"Scenario API request latency by route.", nil, "route")
)

// Server exposes an engine over HTTP/JSON.
type Server struct {
	eng *engine.Engine
}

// NewServer returns a Server backed by the given engine.
func NewServer(eng *engine.Engine) *Server {
	return &Server{eng: eng}
}

// Register mounts the API routes and the embedded dashboard on mux. The
// dashboard takes the mux root; metrics/health routes registered elsewhere
// on the same mux keep their more-specific patterns.
func (s *Server) Register(mux *http.ServeMux) {
	s.RegisterAPI(mux)
	RegisterDashboard(mux)
}

// RegisterAPI mounts only the /api/v1 routes (no dashboard).
func (s *Server) RegisterAPI(mux *http.ServeMux) {
	mux.HandleFunc("GET /api/v1/scenarios", s.instrument("scenarios", s.handleScenarios))
	mux.HandleFunc("POST /api/v1/runs", s.instrument("submit", s.handleSubmit))
	mux.HandleFunc("GET /api/v1/runs", s.instrument("runs", s.handleList))
	mux.HandleFunc("GET /api/v1/runs/{id}", s.instrument("run", s.handleGet))
	mux.HandleFunc("GET /api/v1/runs/{id}/result", s.instrument("result", s.handleResult))
	mux.HandleFunc("DELETE /api/v1/runs/{id}", s.instrument("cancel", s.handleCancel))
}

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-route request counter and
// latency histogram.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, req)
		requestSeconds.With(route).ObserveDuration(time.Since(start))
		requestsTotal.With(route, fmt.Sprintf("%dxx", rec.status/100)).Inc()
	}
}

// errorJSON is the structured error document every failing route returns.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(errorJSON{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// scenarioJSON is one registry entry in the listing.
type scenarioJSON struct {
	ID        string `json:"id"`
	Title     string `json:"title"`
	Source    string `json:"source"`
	Variant   bool   `json:"variant,omitempty"`
	Extension bool   `json:"extension,omitempty"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, req *http.Request) {
	entries := scenario.Entries()
	out := make([]scenarioJSON, 0, len(entries))
	for _, e := range entries {
		out = append(out, scenarioJSON{
			ID: e.ID, Title: e.Title, Source: e.Source(),
			Variant: e.Variant, Extension: e.Extension,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Scenarios []scenarioJSON `json:"scenarios"`
	}{out})
}

// RunJSON is the wire view of one engine run. Timestamps are RFC 3339;
// Started/Finished are omitted until the run reaches those states.
type RunJSON struct {
	ID       string          `json:"id"`
	Scenario string          `json:"scenario"`
	State    string          `json:"state"`
	Progress engine.Progress `json:"progress"`
	Error    string          `json:"error,omitempty"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// ElapsedSeconds is queue-exit to finish (or to now for a running run).
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

func runView(r engine.Run) RunJSON {
	v := RunJSON{
		ID:       r.ID,
		Scenario: r.ScenarioID,
		State:    string(r.State),
		Progress: r.Progress,
		Error:    r.Error,

		Submitted: r.Submitted,
	}
	if !r.Started.IsZero() {
		t := r.Started
		v.Started = &t
		end := time.Now()
		if !r.Finished.IsZero() {
			end = r.Finished
		}
		v.ElapsedSeconds = end.Sub(r.Started).Seconds()
	}
	if !r.Finished.IsZero() {
		t := r.Finished
		v.Finished = &t
	}
	return v
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var (
		id  string
		err error
	)
	if name := req.URL.Query().Get("scenario"); name != "" {
		entry, lookupErr := scenario.ByID(name)
		if lookupErr != nil {
			writeError(w, http.StatusNotFound, "%v", lookupErr)
			return
		}
		id, err = s.eng.SubmitEntry(entry)
	} else {
		body, readErr := io.ReadAll(io.LimitReader(req.Body, maxSpecBytes+1))
		if readErr != nil {
			writeError(w, http.StatusBadRequest, "read spec: %v", readErr)
			return
		}
		if len(body) > maxSpecBytes {
			writeError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
			return
		}
		if len(body) == 0 {
			writeError(w, http.StatusBadRequest, "empty body: POST a scenario spec document, or use ?scenario=<id> for a registered one")
			return
		}
		var spec *scenario.Spec
		spec, err = scenario.ParseSpec(body)
		if err == nil {
			id, err = s.eng.Submit(spec)
		}
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, engine.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	r, getErr := s.eng.Get(id)
	if getErr != nil {
		writeError(w, http.StatusInternalServerError, "%v", getErr)
		return
	}
	writeJSON(w, http.StatusAccepted, runView(r))
}

func (s *Server) handleList(w http.ResponseWriter, req *http.Request) {
	runs := s.eng.List()
	out := make([]RunJSON, 0, len(runs))
	for _, r := range runs {
		out = append(out, runView(r))
	}
	writeJSON(w, http.StatusOK, struct {
		Runs []RunJSON `json:"runs"`
	}{out})
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	r, err := s.eng.Get(req.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, runView(r))
}

func (s *Server) handleResult(w http.ResponseWriter, req *http.Request) {
	r, err := s.eng.Get(req.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if r.State != engine.StateDone {
		status := http.StatusConflict
		msg := fmt.Sprintf("run %s is %s, not done", r.ID, r.State)
		if r.Error != "" {
			msg += ": " + r.Error
		}
		writeError(w, status, "%s", msg)
		return
	}
	// Exactly scenario.Result.JSON() bytes, so the result a client fetches
	// from the API diffs clean against fedsim -result-json for the same
	// spec (the CI api-smoke gate).
	out, err := r.Result.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(out)
}

func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	switch err := s.eng.Cancel(id); {
	case err == nil:
		r, getErr := s.eng.Get(id)
		if getErr != nil {
			writeError(w, http.StatusInternalServerError, "%v", getErr)
			return
		}
		writeJSON(w, http.StatusOK, runView(r))
	case errors.Is(err, engine.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, engine.ErrFinished):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}
