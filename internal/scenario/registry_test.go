package scenario

import (
	"strings"
	"testing"
)

func TestRegisterRejectsMalformedEntries(t *testing.T) {
	if err := Register(Entry{}); err == nil {
		t.Error("entry with no id must be rejected")
	}
	if err := Register(Entry{ID: "neither"}); err == nil ||
		!strings.Contains(err.Error(), "exactly one of Spec or Generate") {
		t.Errorf("entry with neither Spec nor Generate: got %v", err)
	}
	both := testSpec()
	both.ID = "both"
	if err := Register(Entry{
		ID:       "both",
		Spec:     both,
		Generate: func() (*Result, error) { return nil, nil },
	}); err == nil {
		t.Error("entry with both Spec and Generate must be rejected")
	}
	mismatch := testSpec()
	if err := Register(Entry{ID: "other-id", Spec: mismatch}); err == nil ||
		!strings.Contains(err.Error(), "does not match spec id") {
		t.Errorf("entry/spec id mismatch: got %v", err)
	}
	invalid := testSpec()
	invalid.ID = "invalid-entry"
	invalid.Policies = []string{"dictator"}
	if err := Register(Entry{ID: "invalid-entry", Spec: invalid}); err == nil {
		t.Error("registration must validate the spec eagerly")
	}
	if _, err := ByID("invalid-entry"); err == nil {
		t.Error("failed registration must not leave a registry entry behind")
	}
}

func TestRegisterDuplicateAndOrder(t *testing.T) {
	a := testSpec()
	a.ID = "reg-test-a"
	b := testSpec()
	b.ID = "reg-test-b"
	if err := Register(Entry{ID: "reg-test-a", Spec: a}); err != nil {
		t.Fatal(err)
	}
	if err := Register(Entry{ID: "reg-test-b", Spec: b}); err != nil {
		t.Fatal(err)
	}
	dup := testSpec()
	dup.ID = "reg-test-a"
	if err := Register(Entry{ID: "reg-test-a", Spec: dup}); err == nil ||
		!strings.Contains(err.Error(), "duplicate registration") {
		t.Errorf("duplicate registration: got %v", err)
	}

	ids := IDs()
	posA, posB := -1, -1
	for i, id := range ids {
		switch id {
		case "reg-test-a":
			posA = i
		case "reg-test-b":
			posB = i
		}
	}
	if posA == -1 || posB == -1 || posA >= posB {
		t.Errorf("registration order not preserved in IDs(): %v", ids)
	}
	entries := Entries()
	if len(entries) != len(ids) {
		t.Fatalf("Entries()/IDs() length mismatch: %d vs %d", len(entries), len(ids))
	}
	for i, e := range entries {
		if e.ID != ids[i] {
			t.Errorf("Entries()[%d].ID = %s, want %s", i, e.ID, ids[i])
		}
	}

	e, err := ByID("reg-test-a")
	if err != nil {
		t.Fatal(err)
	}
	if e.Title != "test scenario" {
		t.Errorf("spec-backed entry title not defaulted from spec: %q", e.Title)
	}
	if e.Source() != "spec" {
		t.Errorf("Source() = %q, want spec", e.Source())
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "reg-test-a" || len(res.Series) == 0 {
		t.Errorf("entry run produced unexpected result: id=%s series=%d", res.ID, len(res.Series))
	}
}

func TestByIDUnknownListsKnownIDs(t *testing.T) {
	s := testSpec()
	s.ID = "reg-test-known"
	if err := Register(Entry{ID: "reg-test-known", Spec: s}); err != nil {
		t.Fatal(err)
	}
	_, err := ByID("no-such-scenario")
	if err == nil {
		t.Fatal("unknown id must error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-scenario"`) || !strings.Contains(msg, "reg-test-known") {
		t.Errorf("error should name the bad id and enumerate known ids: %q", msg)
	}
}

func TestCodeBackedEntry(t *testing.T) {
	if err := Register(Entry{
		ID:    "reg-test-code",
		Title: "code backed",
		Generate: func() (*Result, error) {
			return &Result{ID: "reg-test-code"}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	e, err := ByID("reg-test-code")
	if err != nil {
		t.Fatal(err)
	}
	if e.Source() != "code" {
		t.Errorf("Source() = %q, want code", e.Source())
	}
	res, err := e.Run()
	if err != nil || res.ID != "reg-test-code" {
		t.Errorf("code-backed run: res=%+v err=%v", res, err)
	}
}
