// Package scenario turns federation experiments into data. A Spec
// declares the full model space of the paper's evaluation — facilities,
// demand classes, sharing policies, one swept axis — plus the output to
// record, and a single generic executor (Run) evaluates any Spec on the
// sweep worker pool. Every paper figure is a Spec registered in the
// package registry; user-defined experiments load from JSON files
// (fedsim -scenario) and run through exactly the same engine.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"fedshare/internal/coalition"
	"fedshare/internal/core"
	"fedshare/internal/economics"
)

// Shapley engine selection for the shapley policies of a spec (the
// "method" field), mirroring coalition.Method.
const (
	MethodAuto   = "auto"
	MethodExact  = "exact"
	MethodApprox = "approx"
)

// Scenario kinds: what a sweep point records.
const (
	// KindShares records every policy's normalized share vector per point
	// (the default).
	KindShares = "shares"
	// KindProfit records one tracked facility's absolute payoff per point,
	// once per variant × policy (the Fig 9 incentive experiment).
	KindProfit = "profit"
	// KindUtility evaluates each demand class's utility function over the
	// x grid directly, with no federation model (Fig 2).
	KindUtility = "utility"
)

// Sweep variables: the quantity the axis (or a variant Set) changes.
const (
	// VarThreshold sets the diversity threshold l of the targeted demand
	// classes.
	VarThreshold = "threshold"
	// VarShape sets the utility shape d of the targeted demand classes.
	VarShape = "shape"
	// VarCount sets the experiment count K of the targeted demand classes.
	VarCount = "count"
	// VarSigma redistributes the total experiment count of a two-class
	// workload: the targeted class receives fraction σ (rounded as in
	// economics.Mixture), the other the remainder.
	VarSigma = "sigma"
	// VarLocations sets the location count L_i of the targeted facilities.
	VarLocations = "locations"
	// VarResources sets the per-location capacity R_i of the targeted
	// facilities.
	VarResources = "resources"
	// VarMu sets the model's utility-to-profit conversion factor µ.
	VarMu = "mu"
	// VarX is the utility-kind axis: the location count x fed to u(x).
	VarX = "x"
)

// FacilitySpec declares one resource provider — or, with Count > 1, a
// template stamped into Count identical facilities (named Name-1..Name-k).
// Replicated facilities are interchangeable players, which the symmetry-
// collapsing Shapley engines exploit; large-federation scenarios declare
// hundreds of facilities in a few template lines.
type FacilitySpec struct {
	Name      string  `json:"name"`
	Locations int     `json:"locations"`
	Resources float64 `json:"resources"`
	// Availability is T_i in (0, 1]; 0 means 1 (the paper's assumption).
	Availability float64 `json:"availability,omitempty"`
	// Users is the affiliated-user population (shapley-users policy).
	Users int `json:"users,omitempty"`
	// Count replicates the facility; 0 means 1.
	Count int `json:"count,omitempty"`
}

// count returns the effective replica count.
func (f FacilitySpec) count() int {
	if f.Count <= 0 {
		return 1
	}
	return f.Count
}

// facility converts the spec entry to the core model type.
func (f FacilitySpec) facility() core.Facility {
	return core.Facility{
		Name:         f.Name,
		Locations:    f.Locations,
		Resources:    f.Resources,
		Availability: f.Availability,
		Users:        f.Users,
	}
}

// DemandSpec declares one demand class: Count experiments of one type.
// Zero values take the modelling defaults: MaxLocations 0 means unbounded,
// and Resources, HoldingTime and Shape 0 mean 1.
type DemandSpec struct {
	Name         string  `json:"name"`
	Count        int     `json:"count,omitempty"`
	MinLocations float64 `json:"min_locations,omitempty"`
	MaxLocations float64 `json:"max_locations,omitempty"`
	Resources    float64 `json:"resources,omitempty"`
	HoldingTime  float64 `json:"holding_time,omitempty"`
	Shape        float64 `json:"shape,omitempty"`
	Strict       bool    `json:"strict,omitempty"`
}

// experimentType converts the spec entry to the economics type, applying
// the zero-value defaults.
func (d DemandSpec) experimentType() economics.ExperimentType {
	t := economics.ExperimentType{
		Name: d.Name, MinLocations: d.MinLocations, MaxLocations: d.MaxLocations,
		Resources: d.Resources, HoldingTime: d.HoldingTime, Shape: d.Shape,
		Strict: d.Strict,
	}
	if t.MaxLocations == 0 {
		t.MaxLocations = math.Inf(1)
	}
	if t.Resources == 0 {
		t.Resources = 1
	}
	if t.HoldingTime == 0 {
		t.HoldingTime = 1
	}
	if t.Shape == 0 {
		t.Shape = 1
	}
	return t
}

// AxisSpec is the swept parameter: either an arithmetic grid
// [From, From+Step, ..., To] or an explicit Values list. Round, when
// positive, rounds each generated grid point to that many decimals —
// needed for fractional steps whose floating-point accumulation would
// otherwise leak into axis labels (e.g. the Fig 5 d grid).
type AxisSpec struct {
	Variable string    `json:"variable"`
	Target   string    `json:"target,omitempty"`
	From     float64   `json:"from,omitempty"`
	To       float64   `json:"to,omitempty"`
	Step     float64   `json:"step,omitempty"`
	Round    int       `json:"round,omitempty"`
	Values   []float64 `json:"values,omitempty"`
}

// maxGridPoints bounds runaway grids from user spec files.
const maxGridPoints = 100000

// grid materializes the axis points.
func (a AxisSpec) grid() ([]float64, error) {
	if len(a.Values) > 0 {
		if a.Step != 0 || a.From != 0 || a.To != 0 {
			return nil, fmt.Errorf("scenario: axis gives both values and from/to/step")
		}
		return append([]float64(nil), a.Values...), nil
	}
	if a.Step <= 0 {
		return nil, fmt.Errorf("scenario: axis step must be positive (got %g)", a.Step)
	}
	if a.To < a.From {
		return nil, fmt.Errorf("scenario: axis to %g below from %g", a.To, a.From)
	}
	if (a.To-a.From)/a.Step > maxGridPoints {
		return nil, fmt.Errorf("scenario: axis grid exceeds %d points", maxGridPoints)
	}
	var xs []float64
	for k := 0; ; k++ {
		x := a.From + float64(k)*a.Step
		if x > a.To+1e-9 {
			break
		}
		if a.Round > 0 {
			p := math.Pow(10, float64(a.Round))
			x = math.Round(x*p) / p
		}
		xs = append(xs, x)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("scenario: axis grid is empty")
	}
	return xs, nil
}

// SetSpec is one fixed parameter override inside a variant.
type SetSpec struct {
	Variable string  `json:"variable"`
	Target   string  `json:"target,omitempty"`
	Value    float64 `json:"value"`
}

// VariantSpec is one curve family of a profit scenario: the sweep is
// repeated once per variant with the Set overrides applied first, and the
// variant name suffixes the series names (e.g. "phi1,l=800").
type VariantSpec struct {
	Name string    `json:"name"`
	Set  []SetSpec `json:"set"`
}

// Spec is a declarative federation experiment.
type Spec struct {
	ID     string `json:"id"`
	Title  string `json:"title,omitempty"`
	XLabel string `json:"xlabel,omitempty"`
	Notes  string `json:"notes,omitempty"`
	// Kind selects the recorded output; empty means KindShares.
	Kind string `json:"kind,omitempty"`
	// Mu is the utility-to-profit conversion factor (0 means 1).
	Mu         float64        `json:"mu,omitempty"`
	Facilities []FacilitySpec `json:"facilities,omitempty"`
	Demand     []DemandSpec   `json:"demand,omitempty"`
	// Policies names the sharing rules to evaluate (core.PolicyByName);
	// empty means shapley + proportional.
	Policies []string `json:"policies,omitempty"`
	Axis     AxisSpec `json:"axis"`
	// Track names the facility whose absolute profit a profit scenario
	// records; empty means the first facility.
	Track    string        `json:"track,omitempty"`
	Variants []VariantSpec `json:"variants,omitempty"`
	// Method selects the Shapley engine family for the shapley policies:
	// "auto" (empty; exact when feasible, sampled otherwise), "exact", or
	// "approx" (the approximation tier, configured by samples/ci_target/
	// seed below).
	Method string `json:"method,omitempty"`
	// Samples is the sampling permutation budget for the approx engines.
	Samples int `json:"samples,omitempty"`
	// CITarget requests adaptive sampling until every facility's 95% CI
	// half-width falls below CITarget·V(N) (relative; e.g. 0.01 = 1%).
	CITarget float64 `json:"ci_target,omitempty"`
	// Seed selects the deterministic sample stream of the approx engines.
	Seed uint64 `json:"seed,omitempty"`
}

// kind returns the effective scenario kind.
func (s *Spec) kind() string {
	if s.Kind == "" {
		return KindShares
	}
	return s.Kind
}

// clone copies the spec deeply enough for apply to mutate facilities and
// demand without touching the original.
func (s *Spec) clone() *Spec {
	c := *s
	c.Facilities = append([]FacilitySpec(nil), s.Facilities...)
	c.Demand = append([]DemandSpec(nil), s.Demand...)
	return &c
}

// apply sets variable to x on the spec, resolving target against demand
// classes or facilities depending on the variable (empty target means all
// applicable ones).
func (s *Spec) apply(variable, target string, x float64) error {
	switch variable {
	case VarThreshold, VarShape, VarCount:
		matched := false
		for i := range s.Demand {
			if target != "" && s.Demand[i].Name != target {
				continue
			}
			matched = true
			switch variable {
			case VarThreshold:
				s.Demand[i].MinLocations = x
			case VarShape:
				s.Demand[i].Shape = x
			case VarCount:
				if x < 0 {
					return fmt.Errorf("scenario: negative experiment count %g", x)
				}
				s.Demand[i].Count = int(math.Round(x))
			}
		}
		if !matched {
			return fmt.Errorf("scenario: %s targets unknown demand class %q", variable, target)
		}
	case VarSigma:
		if len(s.Demand) != 2 {
			return fmt.Errorf("scenario: sigma needs exactly 2 demand classes, have %d", len(s.Demand))
		}
		if x < 0 || x > 1 {
			return fmt.Errorf("scenario: sigma %g outside [0,1]", x)
		}
		bi := 1 // fraction sigma goes to the second class by default
		if target != "" {
			switch target {
			case s.Demand[0].Name:
				bi = 0
			case s.Demand[1].Name:
				bi = 1
			default:
				return fmt.Errorf("scenario: sigma targets unknown demand class %q", target)
			}
		}
		total := s.Demand[0].Count + s.Demand[1].Count
		// Same rounding as economics.Mixture.
		nb := int(math.Floor(x*float64(total) + 0.5))
		s.Demand[bi].Count = nb
		s.Demand[1-bi].Count = total - nb
	case VarLocations, VarResources:
		matched := false
		for i := range s.Facilities {
			if target != "" && s.Facilities[i].Name != target {
				continue
			}
			matched = true
			if variable == VarLocations {
				if x < 0 {
					return fmt.Errorf("scenario: negative location count %g", x)
				}
				s.Facilities[i].Locations = int(math.Round(x))
			} else {
				s.Facilities[i].Resources = x
			}
		}
		if !matched {
			return fmt.Errorf("scenario: %s targets unknown facility %q", variable, target)
		}
	case VarMu:
		s.Mu = x
	default:
		return fmt.Errorf("scenario: unknown sweep variable %q", variable)
	}
	return nil
}

// at returns a copy of the spec with the axis applied at x.
func (s *Spec) at(x float64) (*Spec, error) {
	c := s.clone()
	if err := c.apply(s.Axis.Variable, s.Axis.Target, x); err != nil {
		return nil, err
	}
	return c, nil
}

// expandedFacilities stamps the facility templates into the concrete
// facility list (Count replicas per entry, named Name-1..Name-k when
// replicated).
func (s *Spec) expandedFacilities() []core.Facility {
	var out []core.Facility
	for _, f := range s.Facilities {
		c := f.count()
		for r := 0; r < c; r++ {
			fac := f.facility()
			if c > 1 {
				fac.Name = fmt.Sprintf("%s-%d", f.Name, r+1)
			}
			out = append(out, fac)
		}
	}
	return out
}

// facilityGroups maps each spec entry to its replica indices in the
// expanded facility list.
func (s *Spec) facilityGroups() [][]int {
	groups := make([][]int, len(s.Facilities))
	idx := 0
	for i, f := range s.Facilities {
		for r := 0; r < f.count(); r++ {
			groups[i] = append(groups[i], idx)
			idx++
		}
	}
	return groups
}

// Model builds the federation game instance the spec declares.
func (s *Spec) Model() (*core.Model, error) {
	facilities := s.expandedFacilities()
	classes := make([]economics.DemandClass, len(s.Demand))
	for i, d := range s.Demand {
		classes[i] = economics.DemandClass{Type: d.experimentType(), Count: d.Count}
	}
	wl, err := economics.NewWorkload(classes...)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.ID, err)
	}
	m, err := core.NewModel(facilities, wl)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.ID, err)
	}
	m.Mu = s.Mu
	return m, nil
}

// trackIndex resolves the profit-kind tracked facility to its index in the
// expanded facility list (the first replica when the entry is a template).
func (s *Spec) trackIndex() (int, error) {
	idx := 0
	for _, f := range s.Facilities {
		if s.Track == "" || f.Name == s.Track {
			return idx, nil
		}
		idx += f.count()
	}
	return 0, fmt.Errorf("scenario %s: track names unknown facility %q", s.ID, s.Track)
}

// resolvedPolicies maps the policy names to implementations, defaulting to
// shapley + proportional.
func (s *Spec) resolvedPolicies() ([]core.Policy, error) {
	names := s.Policies
	if len(names) == 0 {
		names = []string{"shapley", "proportional"}
	}
	out := make([]core.Policy, len(names))
	for i, name := range names {
		p, err := core.PolicyByName(name)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.ID, err)
		}
		out[i] = s.parameterize(name, p)
	}
	return out, nil
}

// parameterize routes the Shapley policies through the approximation tier
// when the spec requests it: the "shapley-approx" policy always takes the
// spec's sampling parameters, and "method": "approx" additionally rewires
// the plain "shapley" entries (so a spec flips its existing policy list to
// sampling by adding one field).
func (s *Spec) parameterize(name string, p core.Policy) core.Policy {
	approx := core.ApproxShapleyPolicy{Samples: s.Samples, CITarget: s.CITarget, Seed: s.Seed}
	if s.Method == MethodApprox {
		// An explicit method request forces the sampling estimator (still
		// composed with symmetry collapse) instead of auto-dispatch.
		approx.Method = coalition.MethodApprox
	}
	switch name {
	case "shapley-approx":
		return approx
	case "", "shapley":
		if s.Method == MethodApprox {
			return approx
		}
	}
	return p
}

// sweepVariables lists what a model-backed axis or variant may set.
var sweepVariables = map[string]bool{
	VarThreshold: true, VarShape: true, VarCount: true, VarSigma: true,
	VarLocations: true, VarResources: true, VarMu: true,
}

// Validate checks the spec: kind and axis consistency, facility and demand
// well-formedness, known policies, resolvable targets, and a non-empty
// grid. A valid spec can still fail at Run time only through policy
// computation errors (e.g. a nucleolus LP failure).
func (s *Spec) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("scenario: spec has no id")
	}
	if strings.ContainsAny(s.ID, " \t\n") {
		return fmt.Errorf("scenario: id %q contains whitespace", s.ID)
	}
	if _, err := s.Axis.grid(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.ID, err)
	}
	switch s.Method {
	case "", MethodAuto, MethodExact, MethodApprox:
	default:
		return fmt.Errorf("scenario %s: unknown method %q (have auto, exact, approx)", s.ID, s.Method)
	}
	if s.Samples < 0 {
		return fmt.Errorf("scenario %s: negative sample budget %d", s.ID, s.Samples)
	}
	if s.CITarget < 0 || s.CITarget >= 1 {
		return fmt.Errorf("scenario %s: ci_target %g outside [0, 1) (it is relative to V(N))", s.ID, s.CITarget)
	}
	for i, d := range s.Demand {
		if d.Name == "" {
			return fmt.Errorf("scenario %s: demand class %d has no name", s.ID, i)
		}
		if d.Count < 0 {
			return fmt.Errorf("scenario %s: demand class %s has negative count", s.ID, d.Name)
		}
		if err := d.experimentType().Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.ID, err)
		}
		for j := 0; j < i; j++ {
			if s.Demand[j].Name == d.Name {
				return fmt.Errorf("scenario %s: duplicate demand class %q", s.ID, d.Name)
			}
		}
	}
	switch s.kind() {
	case KindUtility:
		if len(s.Demand) == 0 {
			return fmt.Errorf("scenario %s: utility scenario needs demand classes", s.ID)
		}
		if s.Axis.Variable != VarX {
			return fmt.Errorf("scenario %s: utility scenario sweeps %q, want %q", s.ID, s.Axis.Variable, VarX)
		}
		if len(s.Facilities) > 0 || len(s.Policies) > 0 || len(s.Variants) > 0 {
			return fmt.Errorf("scenario %s: utility scenario takes only demand and an x axis", s.ID)
		}
		return nil
	case KindShares, KindProfit:
	default:
		return fmt.Errorf("scenario %s: unknown kind %q", s.ID, s.Kind)
	}
	if len(s.Facilities) == 0 {
		return fmt.Errorf("scenario %s: needs at least one facility", s.ID)
	}
	for i, f := range s.Facilities {
		if f.Name == "" {
			return fmt.Errorf("scenario %s: facility %d has no name", s.ID, i)
		}
		if f.Count < 0 {
			return fmt.Errorf("scenario %s: facility %s has negative count %d", s.ID, f.Name, f.Count)
		}
		if err := f.facility().Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.ID, err)
		}
		for j := 0; j < i; j++ {
			if s.Facilities[j].Name == f.Name {
				return fmt.Errorf("scenario %s: duplicate facility %q", s.ID, f.Name)
			}
		}
	}
	if _, err := s.resolvedPolicies(); err != nil {
		return err
	}
	if !sweepVariables[s.Axis.Variable] {
		return fmt.Errorf("scenario %s: unknown sweep variable %q", s.ID, s.Axis.Variable)
	}
	// Dry-run the axis (and variant overrides) on a clone to surface
	// unresolvable targets at validation time rather than mid-sweep.
	xs, _ := s.Axis.grid()
	if _, err := s.at(xs[0]); err != nil {
		return fmt.Errorf("scenario %s: %w", s.ID, err)
	}
	switch s.kind() {
	case KindShares:
		if len(s.Variants) > 0 {
			return fmt.Errorf("scenario %s: variants are only supported for profit scenarios", s.ID)
		}
		if s.Track != "" {
			return fmt.Errorf("scenario %s: track is only meaningful for profit scenarios", s.ID)
		}
	case KindProfit:
		if _, err := s.trackIndex(); err != nil {
			return err
		}
		for _, v := range s.Variants {
			if v.Name == "" {
				return fmt.Errorf("scenario %s: variant has no name", s.ID)
			}
			c := s.clone()
			for _, set := range v.Set {
				if !sweepVariables[set.Variable] {
					return fmt.Errorf("scenario %s: variant %s sets unknown variable %q", s.ID, v.Name, set.Variable)
				}
				if err := c.apply(set.Variable, set.Target, set.Value); err != nil {
					return fmt.Errorf("scenario %s: variant %s: %w", s.ID, v.Name, err)
				}
			}
		}
	}
	return nil
}

// ParseSpec decodes a JSON spec, rejecting unknown fields so typos in user
// scenario files fail loudly instead of silently running a different
// experiment. The decoded spec is validated.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode spec: %w", err)
	}
	// Reject trailing garbage after the spec object.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// JSON encodes the spec as indented JSON (the ParseSpec inverse).
func (s *Spec) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode spec: %w", err)
	}
	return append(out, '\n'), nil
}
