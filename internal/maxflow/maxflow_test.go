package maxflow

import (
	"testing"

	"fedshare/internal/stats"
)

func TestSimplePath(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	if got := g.MaxFlow(0, 2); got != 3 {
		t.Errorf("flow = %d, want 3", got)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS figure: max flow 23.
	g := NewGraph(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Errorf("flow = %d, want 23", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 10)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Errorf("flow = %d, want 0", got)
	}
}

func TestEdgeFlowInspection(t *testing.T) {
	g := NewGraph(4)
	a := g.AddEdge(0, 1, 2)
	b := g.AddEdge(0, 2, 2)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 5)
	if got := g.MaxFlow(0, 3); got != 3 {
		t.Fatalf("flow = %d, want 3", got)
	}
	if g.Flow(a) != 1 || g.Flow(b) != 2 {
		t.Errorf("edge flows = %d, %d; want 1, 2", g.Flow(a), g.Flow(b))
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGraph(0) },
		func() { NewGraph(2).AddEdge(0, 5, 1) },
		func() { NewGraph(2).AddEdge(0, 1, -1) },
		func() { NewGraph(2).MaxFlow(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBMatchingBasics(t *testing.T) {
	// 2 experiments wanting up to 3 locations each; 3 locations with 1
	// slot each -> max 3 pairs.
	total, deg := BMatching([]int{3, 3}, []int{1, 1, 1})
	if total != 3 {
		t.Errorf("total = %d, want 3", total)
	}
	if deg[0]+deg[1] != 3 {
		t.Errorf("degrees %v", deg)
	}
	// Degenerate inputs.
	if total, _ := BMatching(nil, []int{1}); total != 0 {
		t.Error("empty left must be 0")
	}
	if total, _ := BMatching([]int{1}, nil); total != 0 {
		t.Error("empty right must be 0")
	}
}

func TestBMatchingAgainstFormula(t *testing.T) {
	// With uniform unconstrained left caps, max pairs = Σ min(rightCap, m).
	rng := stats.NewRand(19)
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(6)
		nr := 1 + rng.Intn(6)
		left := make([]int, m)
		for i := range left {
			left[i] = nr // can use every location once
		}
		right := make([]int, nr)
		want := 0
		for j := range right {
			right[j] = 1 + rng.Intn(4)
			k := right[j]
			if k > m {
				k = m
			}
			want += k
		}
		got, deg := BMatching(left, right)
		if got != want {
			t.Fatalf("trial %d: flow %d != formula %d (right=%v)", trial, got, want, right)
		}
		sum := 0
		for _, d := range deg {
			sum += d
		}
		if sum != got {
			t.Fatalf("trial %d: degrees sum %d != total %d", trial, sum, got)
		}
	}
}

func TestBMatchingCappedLeft(t *testing.T) {
	// Left caps bind: 3 experiments each capped at 2, 10 abundant slots.
	total, deg := BMatching([]int{2, 2, 2}, []int{10, 10})
	// Each experiment can use each location once: cap min(2, 2 locations)=2.
	if total != 6 {
		t.Errorf("total = %d, want 6", total)
	}
	for i, d := range deg {
		if d != 2 {
			t.Errorf("deg[%d] = %d, want 2", i, d)
		}
	}
}

func BenchmarkBMatching50x100(b *testing.B) {
	left := make([]int, 50)
	right := make([]int, 100)
	for i := range left {
		left[i] = 100
	}
	for j := range right {
		right[j] = 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BMatching(left, right)
	}
}
