// Package maxflow implements Dinic's maximum-flow algorithm on unit-ish
// integer networks. The allocation package uses it as an exact engine for
// linear-utility (d = 1) instances with per-experiment location caps, where
// the closed-form polymatroid argument no longer applies; it also serves as
// an independent oracle for the other allocation engines.
package maxflow

import "fmt"

// Graph is a flow network under construction. Vertices are dense integers;
// add edges with AddEdge, then call MaxFlow.
type Graph struct {
	n     int
	heads [][]int // adjacency: indices into edges
	edges []edge
}

type edge struct {
	to, rev int // rev: index of the reverse edge in heads[to]
	cap     int
}

// NewGraph creates a network with n vertices.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic("maxflow: need at least one vertex")
	}
	return &Graph{n: n, heads: make([][]int, n)}
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed edge u -> v with the given capacity and returns
// its handle for later flow inspection.
func (g *Graph) AddEdge(u, v, capacity int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range", u, v))
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: v, rev: len(g.heads[v]), cap: capacity})
	g.heads[u] = append(g.heads[u], id)
	rid := len(g.edges)
	g.edges = append(g.edges, edge{to: u, rev: len(g.heads[u]) - 1, cap: 0})
	g.heads[v] = append(g.heads[v], rid)
	return id
}

// Flow returns the flow currently routed through the edge handle returned
// by AddEdge (call after MaxFlow).
func (g *Graph) Flow(edgeID int) int {
	// Flow on a forward edge equals the residual capacity of its twin.
	return g.edges[edgeID^1].cap
}

// MaxFlow computes the maximum s-t flow (Dinic's algorithm: BFS level
// graph + DFS blocking flows). It may be called once per graph.
func (g *Graph) MaxFlow(s, t int) int {
	if s == t {
		panic("maxflow: source equals sink")
	}
	total := 0
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, id := range g.heads[u] {
				e := g.edges[id]
				if e.cap > 0 && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u, limit int) int
	dfs = func(u, limit int) int {
		if u == t {
			return limit
		}
		for ; iter[u] < len(g.heads[u]); iter[u]++ {
			id := g.heads[u][iter[u]]
			e := &g.edges[id]
			if e.cap <= 0 || level[e.to] != level[u]+1 {
				continue
			}
			pushed := limit
			if e.cap < pushed {
				pushed = e.cap
			}
			got := dfs(e.to, pushed)
			if got > 0 {
				e.cap -= got
				g.edges[g.heads[e.to][e.rev]].cap += got
				return got
			}
		}
		return 0
	}

	const inf = int(^uint(0) >> 1)
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// BMatching solves the degree-constrained bipartite assignment underlying
// the d = 1 allocation problem: left vertices (experiments) with capacities
// leftCap, right vertices (locations) with capacities rightCap, unit edges
// between every pair. It returns the maximum number of (experiment,
// location) pairs and the per-left degrees.
func BMatching(leftCap, rightCap []int) (total int, leftDeg []int) {
	nl, nr := len(leftCap), len(rightCap)
	leftDeg = make([]int, nl)
	if nl == 0 || nr == 0 {
		return 0, leftDeg
	}
	// Vertices: 0 = source, 1..nl = left, nl+1..nl+nr = right, last = sink.
	g := NewGraph(nl + nr + 2)
	s, t := 0, nl+nr+1
	leftEdges := make([]int, nl)
	for i, c := range leftCap {
		leftEdges[i] = g.AddEdge(s, 1+i, c)
	}
	for j, c := range rightCap {
		g.AddEdge(1+nl+j, t, c)
	}
	for i := 0; i < nl; i++ {
		for j := 0; j < nr; j++ {
			g.AddEdge(1+i, 1+nl+j, 1)
		}
	}
	total = g.MaxFlow(s, t)
	for i := range leftDeg {
		leftDeg[i] = g.Flow(leftEdges[i])
	}
	return total, leftDeg
}
