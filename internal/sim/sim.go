// Package sim is a minimal discrete-event simulation engine: a virtual
// clock and a time-ordered event queue. The loss-network simulator and the
// PlanetLab substrate are built on it.
package sim

import (
	"container/heap"

	"fedshare/internal/obs"
)

// Engine metrics are updated once per Run call (not per event), so the
// event loop itself stays untouched. With several engines in one process
// the counter aggregates across them and the gauge reports the most
// recently finished engine's queue.
var (
	eventsTotal = obs.Default.Counter("fedshare_sim_events_total",
		"Simulation events executed across all engines.")
	heapDepth = obs.Default.Gauge("fedshare_sim_heap_depth",
		"Pending events in the most recently run simulation engine.")
)

// Engine drives a simulation: events are scheduled at absolute or relative
// virtual times and executed in time order (FIFO among equal timestamps).
// The zero value is ready to use.
type Engine struct {
	now    float64
	seq    int
	events eventHeap
}

type event struct {
	time float64
	seq  int
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Schedule queues fn to run after delay (>= 0) units of virtual time.
// Negative delays panic: scheduling into the past is always a model bug.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+delay, fn)
}

// At queues fn at absolute virtual time t (>= Now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic("sim: scheduling into the past")
	}
	e.seq++
	heap.Push(&e.events, event{time: t, seq: e.seq, fn: fn})
}

// Run executes events in order until the queue is empty or the next event
// lies beyond until; the clock finishes at the last executed event's time
// (or until, whichever the caller observes via Now and the return value).
// It returns the number of events executed.
func (e *Engine) Run(until float64) int {
	count := 0
	for len(e.events) > 0 {
		next := e.events[0]
		if next.time > until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.time
		next.fn()
		count++
	}
	if e.now < until {
		e.now = until
	}
	eventsTotal.Add(int64(count))
	heapDepth.Set(float64(len(e.events)))
	return count
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
