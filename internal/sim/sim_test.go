package sim

import "testing"

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	n := e.Run(10)
	if n != 3 {
		t.Errorf("ran %d events", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 10 {
		t.Errorf("clock = %g, want 10", e.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run(2)
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events out of FIFO order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	e.Run(100)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestRunHorizonStopsEarly(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(5, func() { ran = true })
	e.Run(3)
	if ran {
		t.Error("event beyond horizon must not run")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	if e.Now() != 3 {
		t.Errorf("clock = %g, want 3", e.Now())
	}
	// Continue past it.
	e.Run(6)
	if !ran {
		t.Error("event should run on extended horizon")
	}
}

func TestSchedulePanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("negative delay must panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestAtPanicsOnPast(t *testing.T) {
	var e Engine
	e.Schedule(2, func() {})
	e.Run(5)
	defer func() {
		if recover() == nil {
			t.Error("At in the past must panic")
		}
	}()
	e.At(1, func() {})
}
