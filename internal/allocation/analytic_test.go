package allocation

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomAnalyticInstance draws a random instance from the analytic domain:
// a pool of up to four classes and a homogeneous batch of linear requests.
func randomAnalyticInstance(rng *rand.Rand) (Pool, []Request) {
	nc := 1 + rng.Intn(4)
	caps := []float64{0.5, 1, 1, 2, 3, 80} // duplicates exercise sort ties
	var pool Pool
	for c := 0; c < nc; c++ {
		pool.Classes = append(pool.Classes, Class{
			Label:    "c",
			Count:    rng.Intn(31),
			Capacity: caps[rng.Intn(len(caps))],
		})
	}
	k := 1 + rng.Intn(40)
	l := rng.Intn(pool.TotalLocations() + 5) // sometimes beyond the pool
	res := []float64{0.5, 1, 2}[rng.Intn(3)]
	maxLoc := 0 // unbounded
	if rng.Intn(4) == 0 {
		maxLoc = pool.TotalLocations() + rng.Intn(10) // non-binding bound
	}
	reqs := make([]Request, k)
	for j := range reqs {
		reqs[j] = Request{Min: l, Max: maxLoc, Shape: 1, Resources: res}
	}
	return pool, reqs
}

// TestSolveAnalyticMatchesFastOracle verifies the closed-form engine against
// the full solveFast admission loop on 2000 randomized eligible instances:
// the two must agree exactly (==, not within tolerance) on every Result
// field, because they share the distribution tail.
func TestSolveAnalyticMatchesFastOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 2000; trial++ {
		pool, reqs := randomAnalyticInstance(rng)
		if !AnalyticApplies(pool, reqs) {
			t.Fatalf("trial %d: instance unexpectedly outside analytic domain", trial)
		}
		want := solveFast(pool, reqs)
		got := solveAnalytic(pool, reqs)
		if got.Utility != want.Utility {
			t.Fatalf("trial %d: utility %v != oracle %v (pool %+v, K=%d, l=%d, r=%g)",
				trial, got.Utility, want.Utility, pool.Classes, len(reqs), reqs[0].Min, reqs[0].Resources)
		}
		if !reflect.DeepEqual(got.X, want.X) {
			t.Fatalf("trial %d: X %v != oracle %v", trial, got.X, want.X)
		}
		if !reflect.DeepEqual(got.ConsumedByClass, want.ConsumedByClass) {
			t.Fatalf("trial %d: consumption %v != oracle %v", trial, got.ConsumedByClass, want.ConsumedByClass)
		}
		if !reflect.DeepEqual(got.SlotsByClass, want.SlotsByClass) {
			t.Fatalf("trial %d: slots %v != oracle %v", trial, got.SlotsByClass, want.SlotsByClass)
		}
	}
}

// TestSolveDispatchesAnalytic checks that the public Solve entry point
// routes analytic-domain instances to the closed form (same results as the
// exported SolveAnalytic) and that heterogeneous instances stay out.
func TestSolveDispatchesAnalytic(t *testing.T) {
	pool := Pool{Classes: []Class{
		{Label: "a", Count: 10, Capacity: 2},
		{Label: "b", Count: 5, Capacity: 1},
	}}
	reqs := make([]Request, 12)
	for j := range reqs {
		reqs[j] = Request{Min: 3, Shape: 1, Resources: 1}
	}
	if !AnalyticApplies(pool, reqs) {
		t.Fatal("homogeneous batch should be analytic-eligible")
	}
	got := Solve(pool, reqs)
	want := SolveAnalytic(pool, reqs)
	if got.Utility != want.Utility || !reflect.DeepEqual(got.X, want.X) {
		t.Fatalf("Solve %+v != SolveAnalytic %+v", got, want)
	}

	// Heterogeneous minima: eligible for solveFast, not for the closed form.
	mixed := append(append([]Request(nil), reqs...), Request{Min: 5, Shape: 1, Resources: 1})
	if AnalyticApplies(pool, mixed) {
		t.Fatal("mixed minima must not be analytic-eligible")
	}
	// Nonlinear shape: not even fast-eligible.
	curved := []Request{{Min: 2, Shape: 1.2, Resources: 1}, {Min: 2, Shape: 1.2, Resources: 1}}
	if AnalyticApplies(pool, curved) {
		t.Fatal("d != 1 must not be analytic-eligible")
	}
	if got := Solve(pool, mixed); len(got.X) != len(mixed) {
		t.Fatal("dispatch for mixed instance failed")
	}
}

// TestSolveAnalyticEdgeCases pins the closed-form admission boundaries.
func TestSolveAnalyticEdgeCases(t *testing.T) {
	pool := Pool{Classes: []Class{{Label: "a", Count: 4, Capacity: 2}}}
	mk := func(k, l int) []Request {
		reqs := make([]Request, k)
		for j := range reqs {
			reqs[j] = Request{Min: l, Shape: 1, Resources: 1}
		}
		return reqs
	}
	// Threshold beyond the pool: everything rejected.
	if got := SolveAnalytic(pool, mk(3, 5)); got.Utility != 0 {
		t.Fatalf("l > L must yield 0, got %g", got.Utility)
	}
	// Zero threshold: admission limited by per-location capacity n = 2.
	if got := SolveAnalytic(pool, mk(10, 0)); got.Utility != solveFast(pool, mk(10, 0)).Utility {
		t.Fatalf("l = 0 mismatch: %g", got.Utility)
	}
	// Saturating threshold: m·l ≤ totalSlots(m) binds.
	if got, want := SolveAnalytic(pool, mk(10, 4)), solveFast(pool, mk(10, 4)); got.Utility != want.Utility {
		t.Fatalf("binding l mismatch: %g != %g", got.Utility, want.Utility)
	}
	// Empty pool.
	empty := Pool{}
	if got := SolveAnalytic(empty, mk(2, 0)); got.Utility != 0 {
		t.Fatalf("empty pool must yield 0, got %g", got.Utility)
	}
}
