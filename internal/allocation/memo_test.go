package allocation

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func memoTestPool() Pool {
	return Pool{Classes: []Class{
		{Label: "a", Count: 10, Capacity: 2},
		{Label: "b", Count: 20, Capacity: 1},
	}}
}

func memoTestReqs(k, l int) []Request {
	reqs := make([]Request, k)
	for j := range reqs {
		reqs[j] = Request{Min: l, Shape: 1, Resources: 1}
	}
	return reqs
}

// TestMemoHitMiss checks the counters and that a hit reproduces the direct
// solve exactly.
func TestMemoHitMiss(t *testing.T) {
	m := NewMemo()
	pool := memoTestPool()
	reqs := memoTestReqs(8, 3)
	want := Solve(pool, reqs)

	first := m.Solve(pool, reqs)
	if s := m.Stats(); s.Hits != 0 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after first solve: %+v", s)
	}
	second := m.Solve(pool, reqs)
	if s := m.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after second solve: %+v", s)
	}
	for _, got := range []*Result{first, second} {
		if got.Utility != want.Utility ||
			!reflect.DeepEqual(got.X, want.X) ||
			!reflect.DeepEqual(got.ConsumedByClass, want.ConsumedByClass) ||
			!reflect.DeepEqual(got.SlotsByClass, want.SlotsByClass) {
			t.Fatalf("memo result %+v != direct %+v", got, want)
		}
	}
	if s := m.Stats(); s.HitRate() != 0.5 {
		t.Fatalf("hit rate %g, want 0.5", s.HitRate())
	}

	m.Reset()
	if s := m.Stats(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

// TestMemoCanonicalPermutation checks the aggregate key: the same class
// multiset presented in a different order (different labels, too) must hit
// the same entry, with class-indexed fields remapped to the caller's order.
func TestMemoCanonicalPermutation(t *testing.T) {
	m := NewMemo()
	fwd := Pool{Classes: []Class{
		{Label: "x", Count: 10, Capacity: 2},
		{Label: "y", Count: 20, Capacity: 1},
	}}
	rev := Pool{Classes: []Class{
		{Label: "p", Count: 20, Capacity: 1},
		{Label: "q", Count: 10, Capacity: 2},
	}}
	reqs := memoTestReqs(15, 2)

	a := m.Solve(fwd, reqs)
	b := m.Solve(rev, reqs)
	if s := m.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("permuted pool should share one entry: %+v", s)
	}
	if a.Utility != b.Utility {
		t.Fatalf("utility differs across permutation: %g != %g", a.Utility, b.Utility)
	}
	// Class identity must survive the remap: fwd's class 0 is rev's class 1.
	if a.ConsumedByClass[0] != b.ConsumedByClass[1] || a.ConsumedByClass[1] != b.ConsumedByClass[0] {
		t.Fatalf("consumption remap wrong: %v vs %v", a.ConsumedByClass, b.ConsumedByClass)
	}
	if a.SlotsByClass[0] != b.SlotsByClass[1] || a.SlotsByClass[1] != b.SlotsByClass[0] {
		t.Fatalf("slots remap wrong: %v vs %v", a.SlotsByClass, b.SlotsByClass)
	}
}

// TestMemoKeySensitivity checks that solver-relevant differences miss while
// label-only differences hit.
func TestMemoKeySensitivity(t *testing.T) {
	m := NewMemo()
	pool := memoTestPool()
	m.Solve(pool, memoTestReqs(8, 3))

	relabeled := memoTestPool()
	relabeled.Classes[0].Label = "renamed"
	m.Solve(relabeled, memoTestReqs(8, 3))
	if s := m.Stats(); s.Hits != 1 {
		t.Fatalf("label change must still hit: %+v", s)
	}

	m.Solve(pool, memoTestReqs(8, 4)) // different Min
	m.Solve(pool, memoTestReqs(9, 3)) // different K
	bigger := memoTestPool()
	bigger.Classes[0].Count++
	m.Solve(bigger, memoTestReqs(8, 3)) // different class multiset
	if s := m.Stats(); s.Hits != 1 || s.Misses != 4 {
		t.Fatalf("parameter changes must miss: %+v", s)
	}
}

// TestMemoDisabled checks that a disabled table neither serves nor records.
func TestMemoDisabled(t *testing.T) {
	m := NewMemo()
	if was := m.SetEnabled(false); !was {
		t.Fatal("memo should start enabled")
	}
	pool := memoTestPool()
	reqs := memoTestReqs(8, 3)
	want := Solve(pool, reqs)
	got := m.Solve(pool, reqs)
	if got.Utility != want.Utility || !reflect.DeepEqual(got.ConsumedByClass, want.ConsumedByClass) {
		t.Fatalf("disabled memo must match direct solve")
	}
	if s := m.Stats(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Fatalf("disabled memo must not count: %+v", s)
	}
	if was := m.SetEnabled(true); was {
		t.Fatal("SetEnabled(false) should have reported disabled")
	}
}

// TestMemoConcurrent hammers one table from many goroutines over a small
// instance universe and checks every answer against the direct solver (run
// under -race to check the striped locking).
func TestMemoConcurrent(t *testing.T) {
	m := NewMemo()
	type instance struct {
		pool Pool
		reqs []Request
	}
	var instances []instance
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		pool := Pool{Classes: []Class{
			{Label: "a", Count: 1 + rng.Intn(8), Capacity: []float64{1, 2}[rng.Intn(2)]},
			{Label: "b", Count: rng.Intn(8), Capacity: 1},
		}}
		instances = append(instances, instance{pool: pool, reqs: memoTestReqs(1+rng.Intn(10), rng.Intn(6))})
	}
	wants := make([]*Result, len(instances))
	for i, in := range instances {
		wants[i] = Solve(in.pool, in.reqs)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 200; iter++ {
				i := r.Intn(len(instances))
				got := m.Solve(instances[i].pool, instances[i].reqs)
				if got.Utility != wants[i].Utility || !reflect.DeepEqual(got.ConsumedByClass, wants[i].ConsumedByClass) {
					select {
					case errs <- "concurrent memo result diverged":
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	if s := m.Stats(); s.Hits+s.Misses != 8*200 {
		t.Fatalf("lost lookups: %+v", s)
	}
}
