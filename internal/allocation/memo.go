package allocation

import (
	"encoding/binary"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"
)

// Aggregate-keyed allocation memoization.
//
// In the no-overlap federation model, V(S) depends only on the multiset of
// (Count, Capacity) pool classes plus the request list — not on which
// facilities contributed the classes. A process-wide striped memo table
// keyed by that canonical signature therefore collapses symmetric
// coalitions (equal-contribution facilities) and — the dominant win in the
// figure sweeps — repeated (pool, demand) pairs across sweep points and
// repeated figure runs to a single solve.
//
// Results are stored with class-indexed fields in canonical (sorted) class
// order and remapped to the caller's class order on each hit, so lookups
// from any permutation of the same class multiset share one entry. Cached
// Results are treated as immutable: hits share the stored Result outright
// when the caller's class order is already canonical (the common case) and
// otherwise share the request-indexed X slice under fresh class-indexed
// slices; callers must not mutate Results obtained from the memo.

// memoStripes is the number of lock stripes; must be a power of two.
const memoStripes = 64

// memoMaxEntries bounds the process-wide table; beyond it, misses still
// solve but are no longer inserted (the figure workloads stay far below).
const memoMaxEntries = 1 << 18

// MemoStats is a snapshot of a memo table's counters.
type MemoStats struct {
	Hits    int64
	Misses  int64
	Entries int64
}

// HitRate returns the fraction of lookups served from the table.
func (s MemoStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Memo is a concurrency-safe striped memoization table over Solve.
type Memo struct {
	disabled atomic.Bool
	hits     atomic.Int64
	misses   atomic.Int64
	entries  atomic.Int64
	mus      [memoStripes]sync.Mutex
	tables   [memoStripes]map[string]*Result
}

// NewMemo returns an empty, enabled memo table.
func NewMemo() *Memo {
	m := &Memo{}
	for i := range m.tables {
		m.tables[i] = map[string]*Result{}
	}
	return m
}

// DefaultMemo is the process-wide table behind SolveCached.
var DefaultMemo = NewMemo()

// SolveCached is Solve with aggregate-keyed memoization through DefaultMemo.
// The returned Result must be treated as read-only.
func SolveCached(pool Pool, reqs []Request) *Result {
	return DefaultMemo.Solve(pool, reqs)
}

// SetEnabled turns the table on or off (off: every call solves directly).
// It reports the previous state.
func (m *Memo) SetEnabled(on bool) bool {
	return !m.disabled.Swap(!on)
}

// Stats snapshots the hit/miss/entry counters.
func (m *Memo) Stats() MemoStats {
	return MemoStats{
		Hits:    m.hits.Load(),
		Misses:  m.misses.Load(),
		Entries: m.entries.Load(),
	}
}

// Reset drops all entries and zeroes the counters.
func (m *Memo) Reset() {
	for i := range m.tables {
		m.mus[i].Lock()
		m.tables[i] = map[string]*Result{}
		m.mus[i].Unlock()
	}
	m.hits.Store(0)
	m.misses.Store(0)
	m.entries.Store(0)
}

// memoScratch holds the per-lookup key buffer and class permutation; pooled
// so warm hits allocate nothing.
type memoScratch struct {
	buf  []byte
	perm []int
}

var memoScratchPool = sync.Pool{New: func() any { return &memoScratch{} }}

// Solve returns Solve(pool, reqs), serving repeats of the same canonical
// (class multiset, request list) from the table. The Result is shared with
// the table and must be treated as read-only.
func (m *Memo) Solve(pool Pool, reqs []Request) *Result {
	if m.disabled.Load() {
		return Solve(pool, reqs)
	}
	s := memoScratchPool.Get().(*memoScratch)
	identity := memoKey(s, pool, reqs)
	stripe := memoStripe(s.buf)
	m.mus[stripe].Lock()
	defer func() {
		m.mus[stripe].Unlock()
		memoScratchPool.Put(s)
	}()
	// string(s.buf) in the index expression is a non-allocating lookup.
	if canon, ok := m.tables[stripe][string(s.buf)]; ok {
		m.hits.Add(1)
		if identity {
			return canon
		}
		return remapResult(canon, s.perm)
	}
	// Compute while holding the stripe lock (as SafeCache does) so
	// concurrent sweep workers never duplicate an expensive solve; only
	// same-stripe keys serialize behind it.
	res := Solve(pool, reqs)
	if m.entries.Load() < memoMaxEntries {
		m.tables[stripe][string(s.buf)] = canonicalResult(res, s.perm, identity)
		m.entries.Add(1)
	}
	m.misses.Add(1)
	return res
}

// Lookup returns the memoized Result for (pool, reqs) without ever
// inserting: a hit counts and remaps exactly as Solve's hit path does; a
// miss counts and returns (nil, false), leaving the solve decision to the
// caller. The incremental prefix solver uses this on its fallback steps so
// permutation walks read repeated aggregate keys from the table but cannot
// flood it with one-off prefix signatures.
func (m *Memo) Lookup(pool Pool, reqs []Request) (*Result, bool) {
	if m.disabled.Load() {
		return nil, false
	}
	s := memoScratchPool.Get().(*memoScratch)
	identity := memoKey(s, pool, reqs)
	stripe := memoStripe(s.buf)
	m.mus[stripe].Lock()
	canon, ok := m.tables[stripe][string(s.buf)]
	m.mus[stripe].Unlock()
	if !ok {
		memoScratchPool.Put(s)
		m.misses.Add(1)
		return nil, false
	}
	m.hits.Add(1)
	if identity {
		memoScratchPool.Put(s)
		return canon, true
	}
	res := remapResult(canon, s.perm)
	memoScratchPool.Put(s)
	return res, true
}

// memoSeed fixes the per-process stripe hash (striping need not be stable
// across runs, only well spread within one).
var memoSeed = maphash.MakeSeed()

// memoStripe hashes a key onto a lock stripe using the runtime's hardware-
// accelerated byte hash.
func memoStripe(key []byte) int {
	return int(maphash.Bytes(memoSeed, key) & (memoStripes - 1))
}

// memoKey fills s with the canonical pool-signature key — classes sorted by
// (Capacity, Count), labels ignored — followed by the request list encoded
// in order with run-length compression (batch workloads are long runs of
// one experiment type). s.perm[k] is the original index of the k-th
// canonical class, for remapping class-indexed result fields; the return
// value reports whether that permutation is the identity (the common case
// for pools built in a stable class order).
func memoKey(s *memoScratch, pool Pool, reqs []Request) bool {
	nc := len(pool.Classes)
	if cap(s.perm) < nc {
		s.perm = make([]int, nc)
	}
	s.perm = s.perm[:nc]
	perm := s.perm
	for i := range perm {
		perm[i] = i
	}
	classLess := func(a, b Class) bool {
		if a.Capacity != b.Capacity {
			return a.Capacity < b.Capacity
		}
		return a.Count < b.Count
	}
	// Insertion sort: class counts are small (one per facility) and this
	// avoids sort.Slice's closure allocation on the hot path.
	identity := true
	for i := 1; i < nc; i++ {
		j := i
		for j > 0 && classLess(pool.Classes[perm[j]], pool.Classes[perm[j-1]]) {
			perm[j], perm[j-1] = perm[j-1], perm[j]
			j--
			identity = false
		}
	}
	buf := s.buf[:0]
	buf = binary.AppendVarint(buf, int64(nc))
	for _, i := range perm {
		cl := pool.Classes[i]
		buf = binary.AppendVarint(buf, int64(cl.Count))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cl.Capacity))
	}
	buf = binary.AppendVarint(buf, int64(len(reqs)))
	for j := 0; j < len(reqs); {
		run := j + 1
		for run < len(reqs) && sameRequest(reqs[run], reqs[j]) {
			run++
		}
		buf = binary.AppendVarint(buf, int64(run-j))
		buf = binary.AppendVarint(buf, int64(reqs[j].Min))
		buf = binary.AppendVarint(buf, int64(reqs[j].Max))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(reqs[j].Shape))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(reqs[j].Resources))
		j = run
	}
	s.buf = buf
	return identity
}

// sameRequest compares the solver-relevant request fields (labels ignored).
func sameRequest(a, b Request) bool {
	return a.Min == b.Min && a.Max == b.Max && a.Shape == b.Shape && a.Resources == b.Resources
}

// canonicalResult reorders res's class-indexed fields into canonical class
// order for storage (perm[k] = original index of canonical class k). With an
// identity permutation the result is stored as-is.
func canonicalResult(res *Result, perm []int, identity bool) *Result {
	if identity {
		return res
	}
	out := &Result{
		X:               res.X,
		Utility:         res.Utility,
		ConsumedByClass: make([]float64, len(res.ConsumedByClass)),
		SlotsByClass:    make([]int, len(res.SlotsByClass)),
	}
	for k, orig := range perm {
		out.ConsumedByClass[k] = res.ConsumedByClass[orig]
		out.SlotsByClass[k] = res.SlotsByClass[orig]
	}
	return out
}

// remapResult reorders a canonical-order stored Result into the caller's
// class order. The X slice is shared (request order is part of the key).
func remapResult(canon *Result, perm []int) *Result {
	out := &Result{
		X:               canon.X,
		Utility:         canon.Utility,
		ConsumedByClass: make([]float64, len(canon.ConsumedByClass)),
		SlotsByClass:    make([]int, len(canon.SlotsByClass)),
	}
	for k, orig := range perm {
		out.ConsumedByClass[orig] = canon.ConsumedByClass[k]
		out.SlotsByClass[orig] = canon.SlotsByClass[k]
	}
	return out
}
