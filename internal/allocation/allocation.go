// Package allocation solves the resource-allocation problems of Sec. 3.1 of
// the paper: assign experiments to distinct locations so as to maximize
// total utility (the commercial problem (2)), optionally under the
// individual-rationality constraints of the P2P problem (3).
//
// The model: a pool of locations, each with a resource capacity; a list of
// experiment requests, each needing between Min and Max *distinct* locations,
// consuming Resources units at every assigned location, and yielding utility
// x^Shape when assigned x >= Min locations (0 otherwise, i.e. rejected).
//
// Two engines are provided:
//
//   - a fast exact path for the paper's figure workloads (uniform resources,
//     linear utility d = 1, unbounded Max), built on the transversal-
//     polymatroid structure of bipartite degree sequences (Gale–Ryser);
//   - a constructive greedy simulator for the general case (heterogeneous
//     resources, bounded Max, nonlinear shapes), which also yields the
//     per-class consumption needed by the consumption-proportional share ρ̂.
//
// Solve picks the fast path automatically when it applies; the two engines
// agree on their common domain (checked in tests against a brute-force
// oracle).
package allocation

import (
	"fmt"
	"math"
	"sort"
)

// Class is a group of interchangeable locations with a common per-location
// resource capacity. In the paper's model a facility i contributes Count =
// L_i locations of capacity R_i each.
type Class struct {
	Label    string
	Count    int
	Capacity float64
}

// Pool is the federated supply: the union of every participating facility's
// location classes.
type Pool struct {
	Classes []Class
}

// TotalLocations returns the number of distinct locations in the pool.
func (p Pool) TotalLocations() int {
	n := 0
	for _, c := range p.Classes {
		n += c.Count
	}
	return n
}

// TotalCapacity returns the total resource units across all locations.
func (p Pool) TotalCapacity() float64 {
	t := 0.0
	for _, c := range p.Classes {
		t += float64(c.Count) * c.Capacity
	}
	return t
}

// Validate checks the pool for modelling errors.
func (p Pool) Validate() error {
	for i, c := range p.Classes {
		if c.Count < 0 {
			return fmt.Errorf("allocation: class %d (%s) has negative count", i, c.Label)
		}
		if c.Capacity < 0 {
			return fmt.Errorf("allocation: class %d (%s) has negative capacity", i, c.Label)
		}
	}
	return nil
}

// Request is one experiment's demand.
type Request struct {
	Min       int     // minimum distinct locations (diversity threshold l)
	Max       int     // maximum distinct locations; <= 0 means unbounded
	Shape     float64 // utility exponent d
	Resources float64 // units consumed at each assigned location (r)
	Label     string
}

// Utility returns the request's utility for x assigned locations.
func (r Request) Utility(x int) float64 {
	if x <= 0 || x < r.Min {
		return 0
	}
	return math.Pow(float64(x), r.Shape)
}

func (r Request) maxLocations(pool int) int {
	if r.Max <= 0 || r.Max > pool {
		return pool
	}
	return r.Max
}

// Result is an allocation outcome.
type Result struct {
	// X[j] is the number of distinct locations assigned to request j
	// (0 = rejected).
	X []int
	// Utility is the total utility of the allocation.
	Utility float64
	// ConsumedByClass[c] is the resource units consumed at class c's
	// locations — the basis of the ρ̂ consumption share.
	ConsumedByClass []float64
	// SlotsByClass[c] is the number of (experiment, location) assignments
	// landing in class c.
	SlotsByClass []int
}

// Solve maximizes total utility for the given pool and requests
// (problem (2) of the paper). It panics on invalid inputs to surface
// modelling errors; validate pools and requests at construction time.
func Solve(pool Pool, reqs []Request) *Result {
	if err := pool.Validate(); err != nil {
		panic(err)
	}
	for j, r := range reqs {
		if r.Resources <= 0 {
			panic(fmt.Sprintf("allocation: request %d has non-positive Resources", j))
		}
		if r.Shape <= 0 {
			panic(fmt.Sprintf("allocation: request %d has non-positive Shape", j))
		}
		if r.Min < 0 {
			panic(fmt.Sprintf("allocation: request %d has negative Min", j))
		}
	}
	if fastApplies(pool, reqs) {
		if analyticEligible(pool, reqs) {
			return solveAnalytic(pool, reqs)
		}
		return solveFast(pool, reqs)
	}
	return solveGreedy(pool, reqs)
}

// fastApplies reports whether the polymatroid fast path is usable: uniform
// resources, all shapes exactly 1, no binding Max.
func fastApplies(pool Pool, reqs []Request) bool {
	if len(reqs) == 0 {
		return true
	}
	L := pool.TotalLocations()
	r0 := reqs[0].Resources
	for _, r := range reqs {
		if r.Shape != 1 || r.Resources != r0 {
			return false
		}
		if r.Max > 0 && r.Max < L {
			return false
		}
	}
	return true
}

// totalSlots returns Σ_c Count_c · min(n_c, m): the maximum number of
// (experiment, location) pairs achievable with m experiments, where n_c is
// the per-location experiment capacity of class c.
func totalSlots(n []int, counts []int, m int) int {
	t := 0
	for c := range n {
		k := n[c]
		if k > m {
			k = m
		}
		t += counts[c] * k
	}
	return t
}

// minimaFeasible checks the Gale–Ryser condition for a multiset of minimum
// demands: sorted descending, every prefix sum must fit within the maximum
// slot supply for that many experiments.
func minimaFeasible(minsDesc []int, n, counts []int) bool {
	prefix := 0
	for k, l := range minsDesc {
		prefix += l
		if prefix > totalSlots(n, counts, k+1) {
			return false
		}
	}
	return true
}

// solveFast is the exact d = 1 engine. With linear utility, total utility
// equals total assigned slots; the transversal polymatroid of bipartite
// degree sequences makes the maximum total slots for m admitted experiments
// exactly totalSlots(m), achievable above any feasible vector of minima.
// Admission therefore admits requests in ascending-Min order while the
// minima stay feasible and the marginal slot supply remains positive.
func solveFast(pool Pool, reqs []Request) *Result {
	res := emptyResult(pool, reqs)
	if len(reqs) == 0 {
		return res
	}
	r0 := reqs[0].Resources
	n, counts := fastSetup(pool, r0)
	L := pool.TotalLocations()

	// Admission order: ascending Min (cheapest feasibility footprint first).
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return reqs[order[a]].Min < reqs[order[b]].Min })

	admitted := make([]int, 0, len(reqs))
	minsDesc := make([]int, 0, len(reqs)) // maintained sorted descending
	for _, j := range order {
		if reqs[j].Min > L {
			continue // can never meet its diversity threshold
		}
		m := len(admitted)
		if totalSlots(n, counts, m+1) == totalSlots(n, counts, m) && reqs[j].Min == 0 {
			// No new capacity and no obligation: admitting adds nothing.
			continue
		}
		// Tentatively admit and check minima feasibility.
		pos := sort.Search(len(minsDesc), func(i int) bool { return minsDesc[i] < reqs[j].Min })
		minsDesc = append(minsDesc, 0)
		copy(minsDesc[pos+1:], minsDesc[pos:])
		minsDesc[pos] = reqs[j].Min
		if !minimaFeasible(minsDesc, n, counts) {
			// Roll back; later requests have equal or larger Min, but a
			// *smaller* slot footprint is impossible, so only requests with
			// the same Min could also fail — keep scanning (cheap).
			copy(minsDesc[pos:], minsDesc[pos+1:])
			minsDesc = minsDesc[:len(minsDesc)-1]
			continue
		}
		admitted = append(admitted, j)
	}

	distributeBalanced(res, reqs, admitted, n, counts, L, r0)
	return res
}

// emptyResult allocates a zeroed Result shaped for (pool, reqs).
func emptyResult(pool Pool, reqs []Request) *Result {
	nc := len(pool.Classes)
	return &Result{
		X:               make([]int, len(reqs)),
		ConsumedByClass: make([]float64, nc),
		SlotsByClass:    make([]int, nc),
	}
}

// fastSetup computes the fast engine's per-class tables: n[c] = ⌊R_c/r⌋,
// the per-location experiment capacity, and counts[c], the location count.
func fastSetup(pool Pool, r0 float64) (n, counts []int) {
	nc := len(pool.Classes)
	n = make([]int, nc)
	counts = make([]int, nc)
	for c, cl := range pool.Classes {
		n[c] = int(math.Floor(cl.Capacity / r0))
		counts[c] = cl.Count
	}
	return n, counts
}

// distributeBalanced fills res with the balanced maximal assignment for the
// given admitted set — the shared tail of solveFast and solveAnalytic, so
// the two engines produce bit-identical results on their common domain.
func distributeBalanced(res *Result, reqs []Request, admitted []int, n, counts []int, L int, r0 float64) {
	m := len(admitted)
	if m == 0 {
		return
	}
	total := totalSlots(n, counts, m)

	// Distribute total slots by water-filling: every experiment keeps at
	// least its minimum, and surplus raises the lowest allocations toward a
	// common level λ capped at L. Any distribution has equal utility at
	// d = 1; balanced keeps X informative and matches the paper's
	// short-term fair-share story.
	xs := make([]int, m)
	fill := func(lambda int) int {
		sum := 0
		for _, j := range admitted {
			x := reqs[j].Min
			if lambda > x {
				x = lambda
			}
			if x > L {
				x = L
			}
			sum += x
		}
		return sum
	}
	lo, hi := 0, L
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fill(mid) <= total {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	remainder := total - fill(lo)
	for i, j := range admitted {
		x := reqs[j].Min
		if lo > x {
			x = lo
		}
		if x > L {
			x = L
		}
		// Spend the sub-λ remainder one unit at a time on experiments
		// sitting exactly at the water level.
		if remainder > 0 && x == lo && x < L && reqs[j].Min <= lo {
			x++
			remainder--
		}
		xs[i] = x
	}
	for i, j := range admitted {
		res.X[j] = xs[i]
		res.Utility += float64(xs[i])
	}

	// Per-class consumption of the maximal balanced assignment: class c
	// locations each host min(n_c, m) experiments; if not all slots were
	// handed out (demand-limited), scale proportionally.
	slotsAvail := 0
	for c := range n {
		k := n[c]
		if k > m {
			k = m
		}
		slotsAvail += counts[c] * k
	}
	assigned := 0
	for _, x := range xs {
		assigned += x
	}
	for c := range n {
		k := n[c]
		if k > m {
			k = m
		}
		classSlots := counts[c] * k
		if slotsAvail > 0 && assigned < slotsAvail {
			// Spread shortfall evenly: experiments visit all locations
			// uniformly until class capacity binds.
			classSlots = int(math.Round(float64(classSlots) * float64(assigned) / float64(slotsAvail)))
		}
		res.SlotsByClass[c] = classSlots
		res.ConsumedByClass[c] = float64(classSlots) * r0
	}
	rebalanceSlots(res, assigned)
}

// rebalanceSlots fixes rounding so Σ SlotsByClass == assigned exactly.
func rebalanceSlots(res *Result, assigned int) {
	sum := 0
	for _, s := range res.SlotsByClass {
		sum += s
	}
	diff := assigned - sum
	for c := 0; diff != 0 && c < len(res.SlotsByClass); c++ {
		step := 1
		if diff < 0 {
			step = -1
		}
		if res.SlotsByClass[c]+step >= 0 {
			unit := res.ConsumedByClass[c]
			if res.SlotsByClass[c] > 0 {
				unit = res.ConsumedByClass[c] / float64(res.SlotsByClass[c])
			}
			res.SlotsByClass[c] += step
			res.ConsumedByClass[c] += float64(step) * unit
			diff -= step
		}
	}
}

// solveGreedy is the general constructive engine: admit requests (trying
// both ascending- and descending-Min orders), give each admitted request its
// minimum from the highest-capacity free locations, then hand out one
// location at a time to the request with the best marginal utility. Exact
// for concave shapes on its admission set; a high-quality heuristic for
// convex shapes (validated against brute force on small instances).
func solveGreedy(pool Pool, reqs []Request) *Result {
	best := greedyWithOrder(pool, reqs, true)
	alt := greedyWithOrder(pool, reqs, false)
	if alt.Utility > best.Utility {
		best = alt
	}
	return best
}

type location struct {
	class int
	rem   float64
}

func greedyWithOrder(pool Pool, reqs []Request, ascending bool) *Result {
	nc := len(pool.Classes)
	res := &Result{
		X:               make([]int, len(reqs)),
		ConsumedByClass: make([]float64, nc),
		SlotsByClass:    make([]int, nc),
	}
	L := pool.TotalLocations()
	if L == 0 || len(reqs) == 0 {
		return res
	}
	locs := make([]location, 0, L)
	for c, cl := range pool.Classes {
		for i := 0; i < cl.Count; i++ {
			locs = append(locs, location{class: c, rem: cl.Capacity})
		}
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if ascending {
			return reqs[order[a]].Min < reqs[order[b]].Min
		}
		return reqs[order[a]].Min > reqs[order[b]].Min
	})

	used := make([][]bool, len(reqs)) // used[j][loc]
	usedCount := make([]int, L)       // how many requests use each location
	x := make([]int, len(reqs))
	admitted := make([]bool, len(reqs))

	// Phase A: minima.
	for _, j := range order {
		r := reqs[j]
		maxX := r.maxLocations(L)
		if r.Min > maxX {
			continue
		}
		take := pickLocations(locs, nil, usedCount, r.Resources, r.Min)
		if len(take) < r.Min {
			continue
		}
		admitted[j] = true
		used[j] = make([]bool, L)
		for _, li := range take {
			locs[li].rem -= r.Resources
			used[j][li] = true
			usedCount[li]++
		}
		x[j] = len(take)
	}

	// Phase B: marginal top-up, one location at a time.
	for {
		bestJ, bestLoc := -1, -1
		bestGain := 1e-12
		for j := range reqs {
			if !admitted[j] {
				continue
			}
			r := reqs[j]
			if x[j] >= r.maxLocations(L) {
				continue
			}
			gain := r.Utility(x[j]+1) - r.Utility(x[j])
			if gain <= bestGain {
				continue
			}
			li := pickOne(locs, used[j], usedCount, r.Resources)
			if li < 0 {
				continue
			}
			bestJ, bestLoc, bestGain = j, li, gain
		}
		if bestJ < 0 {
			break
		}
		locs[bestLoc].rem -= reqs[bestJ].Resources
		used[bestJ][bestLoc] = true
		usedCount[bestLoc]++
		x[bestJ]++
	}

	for j := range reqs {
		if !admitted[j] {
			continue
		}
		res.X[j] = x[j]
		res.Utility += reqs[j].Utility(x[j])
		for li, u := range used[j] {
			if u {
				res.SlotsByClass[locs[li].class]++
				res.ConsumedByClass[locs[li].class] += reqs[j].Resources
			}
		}
	}
	return res
}

// pickLocations returns up to want location indices with remaining capacity
// >= need, not already marked in used. Preference order: locations already
// used by the most other requests first (they cannot serve those requests
// again, so consuming them harms nobody), then the highest remaining
// capacity (water-filling keeps scarce low-capacity locations free for
// longer). usedCount may be nil when no assignments exist yet.
func pickLocations(locs []location, used []bool, usedCount []int, need float64, want int) []int {
	type cand struct {
		idx  int
		rem  float64
		uses int
	}
	cands := make([]cand, 0, len(locs))
	for i, l := range locs {
		if l.rem+1e-12 >= need && (used == nil || !used[i]) {
			uses := 0
			if usedCount != nil {
				uses = usedCount[i]
			}
			cands = append(cands, cand{i, l.rem, uses})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].uses != cands[b].uses {
			return cands[a].uses > cands[b].uses
		}
		if cands[a].rem != cands[b].rem {
			return cands[a].rem > cands[b].rem
		}
		return cands[a].idx < cands[b].idx
	})
	if len(cands) > want {
		cands = cands[:want]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.idx
	}
	return out
}

// pickOne returns the best single location with rem >= need not yet used by
// this request (same preference order as pickLocations), or -1.
func pickOne(locs []location, used []bool, usedCount []int, need float64) int {
	best := -1
	bestUses := -1
	for i, l := range locs {
		if used != nil && used[i] {
			continue
		}
		if l.rem+1e-12 < need {
			continue
		}
		uses := 0
		if usedCount != nil {
			uses = usedCount[i]
		}
		if best < 0 || uses > bestUses || (uses == bestUses && l.rem > locs[best].rem) {
			best = i
			bestUses = uses
		}
	}
	return best
}
