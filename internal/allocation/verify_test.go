package allocation

import (
	"math"
	"testing"

	"fedshare/internal/stats"
)

func TestVerifyAssignmentAcceptsSolveOutput(t *testing.T) {
	// Property: every Solve result on uniform-resource instances is
	// flow-realizable.
	rng := stats.NewRand(61)
	for trial := 0; trial < 120; trial++ {
		p := Pool{Classes: []Class{
			{Count: 1 + rng.Intn(6), Capacity: float64(1 + rng.Intn(4))},
			{Count: rng.Intn(5), Capacity: float64(1 + rng.Intn(3))},
		}}
		nReq := 1 + rng.Intn(5)
		reqs := make([]Request, nReq)
		shape := 1.0
		if rng.Intn(2) == 0 {
			shape = 0.8
		}
		for i := range reqs {
			reqs[i] = Request{Min: rng.Intn(5), Shape: shape, Resources: 1}
			if rng.Intn(3) == 0 {
				reqs[i].Max = 1 + rng.Intn(6)
				if reqs[i].Max < reqs[i].Min {
					reqs[i].Max = reqs[i].Min
				}
			}
		}
		res := Solve(p, reqs)
		if err := VerifyAssignment(p, reqs, res.X); err != nil {
			t.Fatalf("trial %d: Solve produced unrealizable counts: %v\npool %+v\nreqs %+v\nX %v",
				trial, err, p, reqs, res.X)
		}
	}
}

func TestVerifyAssignmentRejectsBadCounts(t *testing.T) {
	p := Pool{Classes: []Class{{Count: 3, Capacity: 1}}}
	reqs := identical(2, 1, 1)
	// 2 experiments × 3 locations needs 6 pairs; only 3 slots exist.
	if err := VerifyAssignment(p, reqs, []int{3, 3}); err == nil {
		t.Error("overcommitted counts must be rejected")
	}
	// Below-minimum count.
	reqs2 := identical(1, 2, 1)
	if err := VerifyAssignment(p, reqs2, []int{1}); err == nil {
		t.Error("count below Min must be rejected")
	}
	// Length mismatch and negatives.
	if err := VerifyAssignment(p, reqs, []int{1}); err == nil {
		t.Error("length mismatch must be rejected")
	}
	if err := VerifyAssignment(p, reqs, []int{-1, 0}); err == nil {
		t.Error("negative count must be rejected")
	}
	// Valid assignment passes.
	if err := VerifyAssignment(p, reqs, []int{2, 1}); err != nil {
		t.Errorf("valid counts rejected: %v", err)
	}
	// Zero (rejected request) is always fine.
	if err := VerifyAssignment(p, reqs2, []int{0}); err != nil {
		t.Errorf("zero count rejected: %v", err)
	}
}

func TestSolveFlowMatchesFastPath(t *testing.T) {
	rng := stats.NewRand(67)
	for trial := 0; trial < 80; trial++ {
		p := Pool{Classes: []Class{
			{Count: 1 + rng.Intn(6), Capacity: float64(1 + rng.Intn(4))},
			{Count: 1 + rng.Intn(4), Capacity: float64(1 + rng.Intn(3))},
		}}
		nReq := 1 + rng.Intn(5)
		reqs := make([]Request, nReq)
		for i := range reqs {
			reqs[i] = Request{Min: rng.Intn(5), Shape: 1, Resources: 1}
		}
		fast := Solve(p, reqs) // no caps, d=1 -> fast path
		flow, err := SolveFlow(p, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast.Utility-flow.Utility) > 1e-9 {
			t.Fatalf("trial %d: fast %g != flow %g (pool %+v reqs %+v)",
				trial, fast.Utility, flow.Utility, p, reqs)
		}
	}
}

func TestSolveFlowMatchesBruteForceWithCaps(t *testing.T) {
	rng := stats.NewRand(71)
	for trial := 0; trial < 60; trial++ {
		p := Pool{Classes: []Class{
			{Count: 2 + rng.Intn(3), Capacity: float64(1 + rng.Intn(3))},
			{Count: 1 + rng.Intn(2), Capacity: float64(1 + rng.Intn(2))},
		}}
		nReq := 1 + rng.Intn(3)
		reqs := make([]Request, nReq)
		for i := range reqs {
			reqs[i] = Request{Min: rng.Intn(3), Shape: 1, Resources: 1}
			if rng.Intn(2) == 0 {
				reqs[i].Max = reqs[i].Min + rng.Intn(4)
				if reqs[i].Max == 0 {
					reqs[i].Max = 1
				}
			}
		}
		flow, err := SolveFlow(p, reqs)
		if err != nil {
			t.Fatal(err)
		}
		oracle := BruteForce(p, reqs)
		// The flow engine fixes admission by ascending Min, which is
		// optimal for d=1: totals must agree.
		if math.Abs(flow.Utility-oracle.Utility) > 1e-9 {
			t.Fatalf("trial %d: flow %g != oracle %g (pool %+v reqs %+v flowX=%v oracleX=%v)",
				trial, flow.Utility, oracle.Utility, p, reqs, flow.X, oracle.X)
		}
		if err := VerifyAssignment(p, reqs, flow.X); err != nil {
			t.Fatalf("trial %d: flow result unrealizable: %v", trial, err)
		}
	}
}

func TestSolveFlowRejectsUnsupported(t *testing.T) {
	p := pool3(1, 1, 1, 1, 1, 1)
	if _, err := SolveFlow(p, []Request{{Min: 0, Shape: 0.8, Resources: 1}}); err == nil {
		t.Error("d != 1 must be rejected")
	}
	if _, err := SolveFlow(p, []Request{
		{Min: 0, Shape: 1, Resources: 1},
		{Min: 0, Shape: 1, Resources: 2},
	}); err == nil {
		t.Error("mixed resources must be rejected")
	}
}

func TestSolveFlowEmpty(t *testing.T) {
	res, err := SolveFlow(Pool{}, nil)
	if err != nil || res.Utility != 0 {
		t.Errorf("empty SolveFlow: %v, %g", err, res.Utility)
	}
	res, err = SolveFlow(pool3(2, 2, 2, 1, 1, 1), identical(2, 100, 1))
	if err != nil || res.Utility != 0 {
		t.Errorf("infeasible SolveFlow: %v, %g", err, res.Utility)
	}
}

func BenchmarkSolveFlow(b *testing.B) {
	p := Pool{Classes: []Class{{Count: 40, Capacity: 3}, {Count: 30, Capacity: 2}}}
	reqs := make([]Request, 15)
	for i := range reqs {
		reqs[i] = Request{Min: 10, Max: 40, Shape: 1, Resources: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveFlow(p, reqs); err != nil {
			b.Fatal(err)
		}
	}
}
