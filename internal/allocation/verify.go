package allocation

import (
	"fmt"
	"math"

	"fedshare/internal/maxflow"
)

// VerifyAssignment checks, with an independent max-flow computation, that
// the location counts X are simultaneously realizable on the pool: there
// exists an assignment of distinct locations giving request j exactly X[j]
// locations without exceeding any location's capacity. It requires uniform
// request resources (the flow model has unit edges) and errors otherwise.
//
// This is the structural soundness oracle for the allocation engines: any
// Result they return must pass.
func VerifyAssignment(pool Pool, reqs []Request, X []int) error {
	if len(X) != len(reqs) {
		return fmt.Errorf("allocation: %d counts for %d requests", len(X), len(reqs))
	}
	if len(reqs) == 0 {
		return nil
	}
	r0 := reqs[0].Resources
	for j, r := range reqs {
		if r.Resources != r0 {
			return fmt.Errorf("allocation: VerifyAssignment needs uniform resources (request %d differs)", j)
		}
	}
	L := pool.TotalLocations()
	total := 0
	var leftCap []int
	for j, x := range X {
		if x < 0 {
			return fmt.Errorf("allocation: negative count X[%d] = %d", j, x)
		}
		if x == 0 {
			continue
		}
		r := reqs[j]
		if x < r.Min || x > r.maxLocations(L) {
			return fmt.Errorf("allocation: X[%d] = %d outside [%d, %d]", j, x, r.Min, r.maxLocations(L))
		}
		leftCap = append(leftCap, x)
		total += x
	}
	if total == 0 {
		return nil
	}
	var rightCap []int
	for _, c := range pool.Classes {
		slots := int(math.Floor(c.Capacity / r0))
		for i := 0; i < c.Count; i++ {
			rightCap = append(rightCap, slots)
		}
	}
	flow, _ := maxflow.BMatching(leftCap, rightCap)
	if flow != total {
		return fmt.Errorf("allocation: counts %v need %d pairs but flow admits only %d", X, total, flow)
	}
	return nil
}

// SolveFlow is an exact engine for linear utility (d = 1) with uniform
// resources that, unlike the closed-form fast path, also honors Max caps
// exactly: it fixes an admission set (ascending Min, while feasible) and
// computes the maximum total assignment by max flow with per-request degree
// bounds in [Min, Max]. Lower bounds are enforced by allocating minima
// first (Gale–Ryser-checked) and topping up on the residual network.
func SolveFlow(pool Pool, reqs []Request) (*Result, error) {
	for j, r := range reqs {
		if r.Shape != 1 {
			return nil, fmt.Errorf("allocation: SolveFlow handles d = 1 only (request %d)", j)
		}
		if j > 0 && r.Resources != reqs[0].Resources {
			return nil, fmt.Errorf("allocation: SolveFlow needs uniform resources")
		}
	}
	nc := len(pool.Classes)
	res := &Result{
		X:               make([]int, len(reqs)),
		ConsumedByClass: make([]float64, nc),
		SlotsByClass:    make([]int, nc),
	}
	if len(reqs) == 0 || pool.TotalLocations() == 0 {
		return res, nil
	}
	r0 := reqs[0].Resources
	L := pool.TotalLocations()

	// Location slots per class.
	n := make([]int, nc)
	counts := make([]int, nc)
	for c, cl := range pool.Classes {
		n[c] = int(math.Floor(cl.Capacity / r0))
		counts[c] = cl.Count
	}

	// Admission: ascending Min while the minima stay Gale–Ryser feasible
	// (identical to the fast path — admission is about feasibility, not
	// packing, at d = 1).
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	for a := 0; a < len(order); a++ {
		for b := a + 1; b < len(order); b++ {
			if reqs[order[b]].Min < reqs[order[a]].Min {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	var admitted []int
	var minsDesc []int
	for _, j := range order {
		if reqs[j].Min > L {
			continue
		}
		pos := 0
		for pos < len(minsDesc) && minsDesc[pos] >= reqs[j].Min {
			pos++
		}
		minsDesc = append(minsDesc, 0)
		copy(minsDesc[pos+1:], minsDesc[pos:])
		minsDesc[pos] = reqs[j].Min
		if !minimaFeasible(minsDesc, n, counts) {
			copy(minsDesc[pos:], minsDesc[pos+1:])
			minsDesc = minsDesc[:len(minsDesc)-1]
			continue
		}
		admitted = append(admitted, j)
	}
	if len(admitted) == 0 {
		return res, nil
	}

	// Flow network with lower bounds handled in two phases: first route
	// each admitted request its minimum (guaranteed feasible by the GR
	// check), then maximize the top-up with caps Max − Min on the residual
	// graph. A single graph with source edges of capacity Max and a
	// post-check of minima would not guarantee the lower bounds, so the
	// two-phase construction is used instead.
	nl := len(admitted)
	nrLocs := L
	g := maxflow.NewGraph(nl + nrLocs + 2)
	s, t := 0, nl+nrLocs+1
	minEdges := make([]int, nl)
	for i, j := range admitted {
		minEdges[i] = g.AddEdge(s, 1+i, reqs[j].Min)
	}
	li := 0
	for c := range pool.Classes {
		for k := 0; k < counts[c]; k++ {
			g.AddEdge(1+nl+li, t, n[c])
			li++
		}
	}
	for i := 0; i < nl; i++ {
		for l := 0; l < nrLocs; l++ {
			g.AddEdge(1+i, 1+nl+l, 1)
		}
	}
	sumMin := 0
	for _, j := range admitted {
		sumMin += reqs[j].Min
	}
	if got := g.MaxFlow(s, t); got != sumMin {
		return nil, fmt.Errorf("allocation: internal: minima flow %d != %d", got, sumMin)
	}
	// Phase 2: raise source capacities to Max and continue the flow on the
	// same residual network.
	extraEdges := make([]int, nl)
	for i := range extraEdges {
		extraEdges[i] = -1
	}
	for i, j := range admitted {
		if extra := reqs[j].maxLocations(L) - reqs[j].Min; extra > 0 {
			extraEdges[i] = g.AddEdge(s, 1+i, extra)
		}
	}
	g.MaxFlow(s, t)

	deg := make([]int, nl)
	for i := range admitted {
		deg[i] = g.Flow(minEdges[i])
		if extraEdges[i] >= 0 {
			deg[i] += g.Flow(extraEdges[i])
		}
	}

	for i, j := range admitted {
		res.X[j] = deg[i]
		res.Utility += float64(deg[i])
	}
	// Consumption attribution mirrors the balanced convention of the fast
	// path: per-class consumption scales with each class's slot supply.
	assigned := 0
	for _, d := range deg {
		assigned += d
	}
	m := nl
	slotsAvail := totalSlots(n, counts, m)
	for c := range n {
		k := n[c]
		if k > m {
			k = m
		}
		classSlots := counts[c] * k
		if slotsAvail > 0 && assigned < slotsAvail {
			classSlots = int(math.Round(float64(classSlots) * float64(assigned) / float64(slotsAvail)))
		}
		res.SlotsByClass[c] = classSlots
		res.ConsumedByClass[c] = float64(classSlots) * r0
	}
	rebalanceSlots(res, assigned)
	return res, nil
}
