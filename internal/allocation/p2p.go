package allocation

import "fmt"

// FacilityContribution couples what one facility brings to the P2P
// federation (its location classes) with what its affiliated users demand.
type FacilityContribution struct {
	Name     string
	Classes  []Class
	Requests []Request
}

// reqRef identifies one request as (facility index, request index).
type reqRef struct {
	fi, j int
}

// P2PResult is the outcome of the incentive-constrained allocation
// (problem (3) of the paper).
type P2PResult struct {
	// Standalone[i] is facility i's user utility when serving its own
	// demand with only its own resources.
	Standalone []float64
	// Federated[i] is facility i's user utility under the federated
	// allocation. Federated[i] >= Standalone[i] for every i by
	// construction.
	Federated []float64
	// X[i][j] is the locations assigned to facility i's j-th request.
	X [][]int
	// Shares are the value shares s_i = u_i(x_i*) / Σ_j u_j(x_j*).
	Shares []float64
}

// TotalUtility returns Σ Federated.
func (r *P2PResult) TotalUtility() float64 {
	t := 0.0
	for _, u := range r.Federated {
		t += u
	}
	return t
}

// SolveP2P solves the P2P-scenario allocation: maximize total user utility
// subject to every facility obtaining at least its standalone utility
// (the individual-rationality constraint of problem (3)).
//
// The algorithm starts from the partition allocation — each facility serves
// its own users on its own locations, which meets every constraint with
// equality — and then improves monotonically: rejected requests are admitted
// on federation spare capacity and admitted requests are topped up by
// marginal utility. Because no step ever lowers a facility's utility, the
// constraints hold at every point, and the result quantifies the federation
// surplus of pooling.
func SolveP2P(facilities []FacilityContribution) (*P2PResult, error) {
	nf := len(facilities)
	res := &P2PResult{
		Standalone: make([]float64, nf),
		Federated:  make([]float64, nf),
		X:          make([][]int, nf),
		Shares:     make([]float64, nf),
	}
	// Build the global location array, remembering class offsets.
	var locs []location
	locFacility := []int{}
	for fi, f := range facilities {
		for _, cl := range f.Classes {
			if cl.Count < 0 || cl.Capacity < 0 {
				return nil, fmt.Errorf("allocation: facility %s has invalid class", f.Name)
			}
			for k := 0; k < cl.Count; k++ {
				locs = append(locs, location{class: fi, rem: cl.Capacity})
				locFacility = append(locFacility, fi)
			}
		}
	}
	L := len(locs)

	var refs []reqRef
	used := map[reqRef][]bool{}
	usedCount := make([]int, L)
	x := map[reqRef]int{}
	admitted := map[reqRef]bool{}

	for fi, f := range facilities {
		res.X[fi] = make([]int, len(f.Requests))
		for j, r := range f.Requests {
			if r.Resources <= 0 || r.Shape <= 0 || r.Min < 0 {
				return nil, fmt.Errorf("allocation: facility %s request %d invalid", f.Name, j)
			}
			refs = append(refs, reqRef{fi, j})
		}
	}

	// Phase 1 — partition allocation: each facility on its own locations.
	ownLocs := func(fi int) []bool {
		mask := make([]bool, L)
		for li := range locs {
			mask[li] = locFacility[li] != fi // mark *foreign* as used
		}
		return mask
	}
	for fi, f := range facilities {
		for j, r := range f.Requests {
			ref := reqRef{fi, j}
			maxX := r.maxLocations(L)
			if r.Min > maxX {
				continue
			}
			blocked := ownLocs(fi)
			take := pickLocations(locs, blocked, usedCount, r.Resources, max(r.Min, 1))
			if len(take) < r.Min || len(take) == 0 {
				continue
			}
			admitted[ref] = true
			u := make([]bool, L)
			for _, li := range take {
				locs[li].rem -= r.Resources
				u[li] = true
				usedCount[li]++
			}
			used[ref] = u
			x[ref] = len(take)
		}
	}
	// Local top-up to standalone optimum (still restricted to own
	// locations).
	topUp(facilities, locs, usedCount, refs, used, x, admitted, func(ref reqRef, li int) bool {
		return locFacility[li] == ref.fi
	}, L)
	for fi, f := range facilities {
		for j, r := range f.Requests {
			res.Standalone[fi] += r.Utility(x[reqRef{fi, j}])
		}
	}

	// Phase 2 — federation: admit locally-rejected requests on global spare
	// capacity, then global marginal top-up.
	for _, ref := range refs {
		if admitted[ref] {
			continue
		}
		r := facilities[ref.fi].Requests[ref.j]
		maxX := r.maxLocations(L)
		if r.Min > maxX {
			continue
		}
		take := pickLocations(locs, nil, usedCount, r.Resources, max(r.Min, 1))
		if len(take) < r.Min || len(take) == 0 {
			continue
		}
		admitted[ref] = true
		u := make([]bool, L)
		for _, li := range take {
			locs[li].rem -= r.Resources
			u[li] = true
			usedCount[li]++
		}
		used[ref] = u
		x[ref] = len(take)
	}
	topUp(facilities, locs, usedCount, refs, used, x, admitted, func(reqRef, int) bool { return true }, L)

	total := 0.0
	for fi, f := range facilities {
		for j, r := range f.Requests {
			ref := reqRef{fi, j}
			res.X[fi][j] = x[ref]
			res.Federated[fi] += r.Utility(x[ref])
		}
		total += res.Federated[fi]
	}
	if total > 0 {
		for fi := range facilities {
			res.Shares[fi] = res.Federated[fi] / total
		}
	}
	return res, nil
}

// topUp hands out one location at a time to the admitted request with the
// highest marginal utility, restricted by allow(ref, locIdx).
func topUp(facilities []FacilityContribution, locs []location, usedCount []int,
	refs []reqRef, used map[reqRef][]bool,
	x map[reqRef]int, admitted map[reqRef]bool,
	allow func(reqRef, int) bool, L int) {

	for {
		var bestRef reqRef
		bestLoc := -1
		bestGain := 1e-12
		for _, ref := range refs {
			if !admitted[ref] {
				continue
			}
			r := facilities[ref.fi].Requests[ref.j]
			if x[ref] >= r.maxLocations(L) {
				continue
			}
			gain := r.Utility(x[ref]+1) - r.Utility(x[ref])
			if gain <= bestGain {
				continue
			}
			li := pickOneAllowed(locs, used[ref], usedCount, r.Resources, ref, allow)
			if li < 0 {
				continue
			}
			bestRef, bestLoc, bestGain = ref, li, gain
		}
		if bestLoc < 0 {
			return
		}
		r := facilities[bestRef.fi].Requests[bestRef.j]
		locs[bestLoc].rem -= r.Resources
		used[bestRef][bestLoc] = true
		usedCount[bestLoc]++
		x[bestRef]++
	}
}

func pickOneAllowed(locs []location, used []bool, usedCount []int, need float64,
	ref reqRef, allow func(reqRef, int) bool) int {
	best := -1
	bestUses := -1
	for i, l := range locs {
		if used != nil && used[i] {
			continue
		}
		if !allow(ref, i) {
			continue
		}
		if l.rem+1e-12 < need {
			continue
		}
		if best < 0 || usedCount[i] > bestUses || (usedCount[i] == bestUses && l.rem > locs[best].rem) {
			best = i
			bestUses = usedCount[i]
		}
	}
	return best
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
