package allocation

import "fmt"

// BruteForce exhaustively maximizes total utility by enumerating, for every
// request, each feasible count of locations taken from each class. It is a
// test oracle: cost grows as Π_j Π_c (Count_c+1); it panics when the search
// space exceeds ~10^7 states.
func BruteForce(pool Pool, reqs []Request) *Result {
	nc := len(pool.Classes)
	if bitsNeeded := pool.TotalLocations() * len(reqs); bitsNeeded > 22 {
		panic(fmt.Sprintf("allocation: brute-force space 2^%d too large", bitsNeeded))
	}
	best := &Result{
		X:               make([]int, len(reqs)),
		ConsumedByClass: make([]float64, nc),
		SlotsByClass:    make([]int, nc),
	}

	// rem[c] = remaining capacity histogram per class: since experiments
	// consume r_j at distinct locations, track per class the number of
	// locations whose remaining capacity is any given value. To keep the
	// oracle simple (small instances only) we track each location
	// individually.
	var locCaps []float64
	var locClass []int
	for c, cl := range pool.Classes {
		for i := 0; i < cl.Count; i++ {
			locCaps = append(locCaps, cl.Capacity)
			locClass = append(locClass, c)
		}
	}
	L := len(locCaps)

	x := make([]int, len(reqs))
	usedBy := make([][]bool, len(reqs))
	for j := range usedBy {
		usedBy[j] = make([]bool, L)
	}
	rem := append([]float64(nil), locCaps...)

	var rec func(j int)
	evaluate := func() {
		total := 0.0
		for j, r := range reqs {
			total += r.Utility(x[j])
		}
		if total > best.Utility+1e-12 {
			best.Utility = total
			copy(best.X, x)
			for c := range best.ConsumedByClass {
				best.ConsumedByClass[c] = 0
				best.SlotsByClass[c] = 0
			}
			for j := range reqs {
				for li := 0; li < L; li++ {
					if usedBy[j][li] {
						best.ConsumedByClass[locClass[li]] += reqs[j].Resources
						best.SlotsByClass[locClass[li]]++
					}
				}
			}
		}
	}
	// For request j choose any subset of locations of size within
	// [0 or Min..Max]; enumerate subsets recursively per location.
	var chooseLoc func(j, li, taken int)
	chooseLoc = func(j, li, taken int) {
		r := reqs[j]
		maxX := r.maxLocations(L)
		if li == L {
			if taken == 0 || (taken >= r.Min && taken <= maxX) {
				x[j] = taken
				rec(j + 1)
			}
			return
		}
		// Skip this location.
		chooseLoc(j, li+1, taken)
		// Take it if capacity allows and cap not reached.
		if taken < maxX && rem[li]+1e-12 >= r.Resources {
			rem[li] -= r.Resources
			usedBy[j][li] = true
			chooseLoc(j, li+1, taken+1)
			usedBy[j][li] = false
			rem[li] += r.Resources
		}
	}
	rec = func(j int) {
		if j == len(reqs) {
			evaluate()
			return
		}
		chooseLoc(j, 0, 0)
	}
	rec(0)
	return best
}
