package allocation

import (
	"math"
	"sync"
	"testing"

	"fedshare/internal/stats"
)

// randFastRequests draws a request list on the Gale–Ryser fast path:
// uniform Resources, Shape 1, unbounded Max, mixed minima (sometimes
// homogeneous, exercising the analytic closed form).
func randFastRequests(rng *stats.Rand) []Request {
	k := 1 + rng.Intn(12)
	r0 := 0.5 + rng.Float64()*2
	reqs := make([]Request, k)
	if rng.Intn(2) == 0 {
		l := rng.Intn(6)
		for j := range reqs {
			reqs[j] = Request{Min: l, Shape: 1, Resources: r0}
		}
		return reqs
	}
	for j := range reqs {
		reqs[j] = Request{Min: rng.Intn(8), Shape: 1, Resources: r0}
	}
	return reqs
}

// randGeneralRequests draws a request list off the fast path: mixed
// shapes, resources, and bounded maxima.
func randGeneralRequests(rng *stats.Rand) []Request {
	shapes := []float64{0.5, 0.8, 1, 1.5, 2}
	k := 1 + rng.Intn(8)
	reqs := make([]Request, k)
	for j := range reqs {
		max := 0
		if rng.Intn(2) == 0 {
			max = 1 + rng.Intn(6)
		}
		reqs[j] = Request{
			Min:       rng.Intn(4),
			Max:       max,
			Shape:     shapes[rng.Intn(len(shapes))],
			Resources: 0.5 + rng.Float64()*2,
		}
	}
	return reqs
}

// randClasses draws a facility class list. With abundant set, every
// class's capacity covers the total resource demand of reqs (the greedy
// repair certificate); otherwise capacities are mixed so some prefixes
// hit the certified repair and others the fallback.
func randClasses(rng *stats.Rand, reqs []Request, abundant bool) []Class {
	sum := 0.0
	for _, r := range reqs {
		sum += r.Resources
	}
	n := 2 + rng.Intn(8)
	classes := make([]Class, n)
	for i := range classes {
		cap := sum * (1 + rng.Float64())
		if !abundant && rng.Intn(2) == 0 {
			cap = rng.Float64() * sum
		}
		count := rng.Intn(5) // 0 allowed: empty classes must be no-ops
		classes[i] = Class{Label: "c", Count: count, Capacity: cap}
	}
	return classes
}

// walkAndCompare walks one random permutation of classes through ps,
// comparing every step against a fresh Solve of the accumulated prefix
// pool. Returns the largest absolute deviation observed.
func walkAndCompare(t *testing.T, ps *PrefixSolver, reqs []Request, classes []Class, rng *stats.Rand, tol float64) float64 {
	t.Helper()
	perm := rng.Perm(len(classes))
	ps.Reset()
	pool := Pool{Classes: make([]Class, 0, len(classes))}
	worst := 0.0
	for step, ci := range perm {
		got := ps.Add(classes[ci])
		pool.Classes = append(pool.Classes, classes[ci])
		want := Solve(pool, reqs).Utility
		diff := math.Abs(got - want)
		if diff > worst {
			worst = diff
		}
		if diff > tol {
			t.Fatalf("step %d (%d classes): PrefixSolver=%g Solve=%g diff=%g > %g",
				step, len(pool.Classes), got, want, diff, tol)
		}
	}
	return worst
}

// TestPrefixSolverDifferentialFastPath walks ≥2000 random permutations of
// fast-path instances and requires exact agreement with a fresh Solve at
// every prefix.
func TestPrefixSolverDifferentialFastPath(t *testing.T) {
	rng := stats.NewRand(7001)
	perms := 0
	var agg PrefixStats
	for trial := 0; perms < 2000; trial++ {
		reqs := randFastRequests(rng)
		classes := randClasses(rng, reqs, false)
		ps, err := NewPrefixSolver(reqs, nil)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 5; w++ {
			walkAndCompare(t, ps, reqs, classes, rng, 0)
			perms++
		}
		agg = ps.Stats()
		if agg.Fast == 0 {
			t.Fatalf("fast-path instance took no fast steps: %+v", agg)
		}
	}
	t.Logf("fast differential: %d permutations", perms)
}

// TestPrefixSolverDifferentialGeneral walks ≥2000 random permutations of
// general (greedy-engine) instances, requiring agreement within 1e-9 and
// that both the certified repair and the fallback paths were exercised.
func TestPrefixSolverDifferentialGeneral(t *testing.T) {
	rng := stats.NewRand(7002)
	perms := 0
	repaired, fallbacks := int64(0), int64(0)
	for trial := 0; perms < 2000; trial++ {
		reqs := randGeneralRequests(rng)
		classes := randClasses(rng, reqs, trial%2 == 0)
		ps, err := NewPrefixSolver(reqs, nil)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 5; w++ {
			walkAndCompare(t, ps, reqs, classes, rng, 1e-9)
			perms++
		}
		st := ps.Stats()
		repaired += st.Repaired
		fallbacks += st.Fallbacks
	}
	if repaired == 0 {
		t.Fatal("no step took the certified greedy repair path")
	}
	if fallbacks == 0 {
		t.Fatal("no step took the fallback path")
	}
	t.Logf("general differential: %d permutations, %d repaired, %d fallbacks",
		perms, repaired, fallbacks)
}

// TestPrefixSolverRepairPathExact pins the stronger property the repair
// path actually provides: under the abundant-capacity certificate the
// closed form reproduces solveGreedy bit-for-bit, not just within 1e-9.
func TestPrefixSolverRepairPathExact(t *testing.T) {
	rng := stats.NewRand(7003)
	for trial := 0; trial < 200; trial++ {
		reqs := randGeneralRequests(rng)
		classes := randClasses(rng, reqs, true)
		ps, err := NewPrefixSolver(reqs, nil)
		if err != nil {
			t.Fatal(err)
		}
		walkAndCompare(t, ps, reqs, classes, rng, 0)
		if st := ps.Stats(); st.Fallbacks != 0 {
			t.Fatalf("abundant instance fell back %d times: %+v", st.Fallbacks, st)
		}
	}
}

// TestPrefixSolverMemoReadNoInsert checks the memo interplay: fallback
// steps read the memo but never insert, so a walk cannot grow the table.
func TestPrefixSolverMemoReadNoInsert(t *testing.T) {
	rng := stats.NewRand(7004)
	memo := NewMemo()
	reqs := randGeneralRequests(rng)
	classes := randClasses(rng, reqs, false)
	ps, err := NewPrefixSolver(reqs, memo)
	if err != nil {
		t.Fatal(err)
	}
	var st PrefixStats
	for w := 0; w < 20 && st.Fallbacks == 0; w++ {
		walkAndCompare(t, ps, reqs, classes, rng, 1e-9)
		st = ps.Stats()
	}
	if st.Fallbacks == 0 {
		t.Skip("instance produced no fallback steps")
	}
	if entries := memo.Stats().Entries; entries != 0 {
		t.Fatalf("prefix walk inserted %d memo entries", entries)
	}
	// Warm the memo with the full pool's aggregate key: the final prefix
	// of the next walk must now read it (the class multiset matches
	// regardless of permutation order).
	memo.Solve(Pool{Classes: classes}, reqs)
	before := memo.Stats().Hits
	walkAndCompare(t, ps, reqs, classes, rng, 1e-9)
	if st := ps.Stats(); st.Fallbacks > 0 && memo.Stats().Hits == before {
		t.Fatal("fallback steps never read the warmed memo entry")
	}
}

// TestPrefixSolverStatsAndReset checks the counters and that Reset fully
// clears pool state.
func TestPrefixSolverStatsAndReset(t *testing.T) {
	reqs := []Request{{Min: 1, Shape: 1, Resources: 1}, {Min: 2, Shape: 1, Resources: 1}}
	ps, err := NewPrefixSolver(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps.Add(Class{Count: 3, Capacity: 2})
	ps.Add(Class{Count: 2, Capacity: 5})
	st := ps.Stats()
	if st.Steps != 2 || st.Fast != 2 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if st.FallbackRate() != 0 {
		t.Fatalf("fallback rate %g, want 0", st.FallbackRate())
	}
	v := ps.Value()
	ps.Reset()
	if ps.Value() != 0 {
		t.Fatalf("value %g after Reset, want 0", ps.Value())
	}
	ps.Add(Class{Count: 3, Capacity: 2})
	if got := ps.Add(Class{Count: 2, Capacity: 5}); got != v {
		t.Fatalf("replayed walk gave %g, want %g", got, v)
	}
}

// TestPrefixSolverValidation mirrors Solve's input contract.
func TestPrefixSolverValidation(t *testing.T) {
	bad := [][]Request{
		{{Min: 0, Shape: 1, Resources: 0}},
		{{Min: 0, Shape: 0, Resources: 1}},
		{{Min: -1, Shape: 1, Resources: 1}},
	}
	for i, reqs := range bad {
		if _, err := NewPrefixSolver(reqs, nil); err == nil {
			t.Errorf("case %d: invalid requests accepted", i)
		}
	}
	ps, err := NewPrefixSolver(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := ps.Add(Class{Count: 3, Capacity: 1}); v != 0 {
		t.Fatalf("empty request list valued %g, want 0", v)
	}
	for _, c := range []Class{{Count: -1, Capacity: 1}, {Count: 1, Capacity: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid class %+v did not panic", c)
				}
			}()
			ps.Add(c)
		}()
	}
}

// TestPrefixSolverConcurrentWalkers runs independent solvers sharing one
// memo across goroutines — the allocation-level half of the race test
// (run under -race in CI).
func TestPrefixSolverConcurrentWalkers(t *testing.T) {
	memo := NewMemo()
	baseRng := stats.NewRand(7005)
	reqs := randGeneralRequests(baseRng)
	classes := randClasses(baseRng, reqs, false)
	// Warm the memo so walkers exercise the concurrent read path too.
	memo.Solve(Pool{Classes: classes}, reqs)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := stats.NewRand(seed)
			ps, err := NewPrefixSolver(reqs, memo)
			if err != nil {
				errs <- err
				return
			}
			for walk := 0; walk < 25; walk++ {
				perm := rng.Perm(len(classes))
				ps.Reset()
				pool := Pool{}
				for _, ci := range perm {
					got := ps.Add(classes[ci])
					pool.Classes = append(pool.Classes, classes[ci])
					if want := Solve(pool, reqs).Utility; math.Abs(got-want) > 1e-9 {
						t.Errorf("worker %d: got %g want %g", seed, got, want)
						return
					}
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
