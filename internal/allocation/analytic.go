package allocation

// Analytic fast path for homogeneous linear demand.
//
// Every numerical figure of the paper that sweeps a single experiment type
// (Figs 4, 6, 8, 9) produces a request list of K identical entries with
// utility shape d = 1 and no binding Max. In that regime the solveFast
// admission loop — O(K²) insertions plus Gale–Ryser prefix checks — has a
// closed form: with identical minima l, the Gale–Ryser condition for m
// admitted experiments degenerates to m·l ≤ totalSlots(m), and since
// totalSlots is concave through the origin the feasible m form a prefix,
// found by binary search. The value follows as V = totalSlots(m*)
// ("serve min(capacity, demand) iff ΣL_i ≥ l").
//
// SolveAnalytic shares distributeBalanced with solveFast, so the two
// engines agree bit-for-bit (X, Utility, ConsumedByClass, SlotsByClass) on
// the analytic domain; solveFast remains the test oracle.

// AnalyticApplies reports whether SolveAnalytic handles (pool, reqs): a
// non-empty batch of identical requests with linear utility (Shape == 1),
// uniform Resources, identical Min, and no Max below the pool size.
func AnalyticApplies(pool Pool, reqs []Request) bool {
	return fastApplies(pool, reqs) && analyticEligible(pool, reqs)
}

// analyticEligible assumes fastApplies already holds (uniform Resources,
// Shape 1, unbounded Max) and checks the extra homogeneity condition.
func analyticEligible(pool Pool, reqs []Request) bool {
	if len(reqs) == 0 {
		return false
	}
	min0 := reqs[0].Min
	for _, r := range reqs[1:] {
		if r.Min != min0 {
			return false
		}
	}
	return true
}

// SolveAnalytic solves a homogeneous linear-demand instance in closed form.
// It panics when the instance is invalid or outside the analytic domain
// (check with AnalyticApplies); Solve dispatches here automatically.
func SolveAnalytic(pool Pool, reqs []Request) *Result {
	if err := pool.Validate(); err != nil {
		panic(err)
	}
	if !AnalyticApplies(pool, reqs) {
		panic("allocation: SolveAnalytic called outside the analytic domain")
	}
	return solveAnalytic(pool, reqs)
}

// solveAnalytic is the dispatch target: admission in closed form, then the
// same balanced distribution as solveFast.
func solveAnalytic(pool Pool, reqs []Request) *Result {
	res := emptyResult(pool, reqs)
	k := len(reqs)
	if k == 0 {
		return res
	}
	r0 := reqs[0].Resources
	l := reqs[0].Min
	n, counts := fastSetup(pool, r0)
	L := pool.TotalLocations()

	m := 0
	switch {
	case l > L:
		// The diversity threshold can never be met: nothing is admitted.
	case l == 0:
		// solveFast admits zero-minimum requests while the marginal slot
		// supply totalSlots(m+1) − totalSlots(m) = Σ_{c: n_c > m} Count_c
		// stays positive, i.e. while m < max_c n_c over non-empty classes.
		maxN := 0
		for c := range n {
			if counts[c] > 0 && n[c] > maxN {
				maxN = n[c]
			}
		}
		m = k
		if m > maxN {
			m = maxN
		}
	default:
		// Identical minima make Gale–Ryser a single inequality; totalSlots
		// is concave with totalSlots(0) = 0, so totalSlots(m)/m is
		// non-increasing and the feasible set {m : m·l ≤ totalSlots(m)} is
		// a prefix of 0..k — binary search its upper end.
		lo, hi := 0, k
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if mid*l <= totalSlots(n, counts, mid) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		m = lo
	}

	if m == 0 {
		return res
	}
	// solveFast's stable ascending-Min order is the identity for identical
	// requests, so the admitted set is always the first m indices.
	admitted := make([]int, m)
	for i := range admitted {
		admitted[i] = i
	}
	distributeBalanced(res, reqs, admitted, n, counts, L, r0)
	return res
}
