package allocation

import (
	"math"
	"testing"

	"fedshare/internal/stats"
)

func pool3(l1, l2, l3 int, r1, r2, r3 float64) Pool {
	return Pool{Classes: []Class{
		{Label: "f1", Count: l1, Capacity: r1},
		{Label: "f2", Count: l2, Capacity: r2},
		{Label: "f3", Count: l3, Capacity: r3},
	}}
}

func identical(n, min int, r float64) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Min: min, Shape: 1, Resources: r}
	}
	return reqs
}

func TestPoolBasics(t *testing.T) {
	p := pool3(100, 400, 800, 1, 1, 1)
	if p.TotalLocations() != 1300 {
		t.Errorf("TotalLocations = %d", p.TotalLocations())
	}
	if p.TotalCapacity() != 1300 {
		t.Errorf("TotalCapacity = %g", p.TotalCapacity())
	}
	bad := Pool{Classes: []Class{{Count: -1}}}
	if bad.Validate() == nil {
		t.Error("negative count must be invalid")
	}
}

func TestSingleExperimentFig4Anchors(t *testing.T) {
	// Fig 4 setup: L = (100,400,800), R = 1, single experiment, d = 1.
	cases := []struct {
		locs []int
		min  int
		want float64
	}{
		{[]int{100}, 500, 0},              // V({1}) at l=500
		{[]int{400}, 500, 0},              // V({2})
		{[]int{800}, 500, 800},            // V({3})
		{[]int{100, 400}, 500, 500},       // V({1,2})
		{[]int{400, 800}, 500, 1200},      // V({2,3})
		{[]int{100, 400, 800}, 500, 1300}, // V(N)
		{[]int{100, 400, 800}, 1301, 0},   // beyond total diversity
		{[]int{100, 400, 800}, 0, 1300},   // no threshold
	}
	for _, c := range cases {
		var p Pool
		for _, l := range c.locs {
			p.Classes = append(p.Classes, Class{Count: l, Capacity: 1})
		}
		res := Solve(p, []Request{{Min: c.min, Shape: 1, Resources: 1}})
		if math.Abs(res.Utility-c.want) > 1e-9 {
			t.Errorf("locs=%v min=%d: utility %g, want %g", c.locs, c.min, res.Utility, c.want)
		}
	}
}

func TestFastPathFillsCapacity(t *testing.T) {
	// Fig 6 setup: all L_i*R_i = 8000; plenty of identical experiments with
	// no threshold should fill all 24000 units.
	p := pool3(100, 400, 800, 80, 20, 10)
	res := Solve(p, identical(200, 0, 1))
	if math.Abs(res.Utility-24000) > 1e-9 {
		t.Errorf("utility %g, want 24000", res.Utility)
	}
	// Consumption should match each class's full capacity.
	for c, want := range []float64{8000, 8000, 8000} {
		if math.Abs(res.ConsumedByClass[c]-want) > 1 {
			t.Errorf("class %d consumed %g, want %g", c, res.ConsumedByClass[c], want)
		}
	}
}

func TestFastPathThresholdLimitsAdmission(t *testing.T) {
	// With threshold l = 600, an admitted experiment needs 600 distinct
	// locations. Capacity R = (80,20,10): totalSlots(m) grows by 1300/step
	// early; feasibility requires m*600 <= totalSlots(m).
	p := pool3(100, 400, 800, 80, 20, 10)
	res := Solve(p, identical(200, 600, 1))
	// Check every admitted experiment got at least 600.
	admitted := 0
	totalX := 0
	for _, x := range res.X {
		if x > 0 {
			if x < 600 {
				t.Errorf("admitted experiment with x=%d < 600", x)
			}
			admitted++
			totalX += x
		}
	}
	if admitted == 0 {
		t.Fatal("expected some admissions")
	}
	if math.Abs(res.Utility-float64(totalX)) > 1e-9 {
		t.Errorf("utility %g != Σx %d at d=1", res.Utility, totalX)
	}
	// Total cannot exceed capacity.
	if res.Utility > 24000+1e-9 {
		t.Errorf("utility %g exceeds capacity", res.Utility)
	}
}

func TestFastPathInfeasibleThreshold(t *testing.T) {
	p := pool3(100, 400, 800, 1, 1, 1)
	res := Solve(p, identical(5, 1400, 1))
	if res.Utility != 0 {
		t.Errorf("utility %g, want 0 for infeasible threshold", res.Utility)
	}
}

func TestFastPathLowDemandConsumption(t *testing.T) {
	// Fig 8 intuition: with K=1 experiment and ample capacity, the
	// experiment spreads over all locations, so per-class consumption is
	// proportional to location counts, not capacities.
	p := pool3(100, 400, 800, 80, 60, 20)
	res := Solve(p, identical(1, 0, 1))
	if res.X[0] != 1300 {
		t.Errorf("x = %d, want 1300", res.X[0])
	}
	want := []float64{100, 400, 800}
	for c := range want {
		if math.Abs(res.ConsumedByClass[c]-want[c]) > 1 {
			t.Errorf("class %d consumed %g, want %g", c, res.ConsumedByClass[c], want[c])
		}
	}
}

func TestFastPathSaturationConsumption(t *testing.T) {
	// With demand beyond saturation, consumption per class approaches
	// Count*Capacity.
	p := pool3(100, 400, 800, 80, 60, 20)
	res := Solve(p, identical(100, 0, 1))
	want := []float64{100 * 80, 400 * 60, 800 * 20}
	for c := range want {
		if math.Abs(res.ConsumedByClass[c]-want[c]) > 1 {
			t.Errorf("class %d consumed %g, want %g", c, res.ConsumedByClass[c], want[c])
		}
	}
	if math.Abs(res.Utility-(8000+24000+16000)) > 1e-9 {
		t.Errorf("utility %g, want 48000", res.Utility)
	}
}

func TestTwoTypeMixture(t *testing.T) {
	// Fig 7 setup: type A l=0, type B l=700. A coalition with fewer than
	// 700 locations earns nothing from B experiments.
	pSmall := Pool{Classes: []Class{{Count: 500, Capacity: 2}}}
	reqs := append(identical(3, 0, 1), identical(3, 700, 1)...)
	res := Solve(pSmall, reqs)
	for j := 3; j < 6; j++ {
		if res.X[j] != 0 {
			t.Errorf("type B request %d admitted with only 500 locations", j)
		}
	}
	// Grand pool: both types served.
	pBig := pool3(100, 400, 800, 80, 50, 30)
	res = Solve(pBig, reqs)
	servedB := 0
	for j := 3; j < 6; j++ {
		if res.X[j] >= 700 {
			servedB++
		}
	}
	if servedB != 3 {
		t.Errorf("served %d of 3 type-B requests in grand pool", servedB)
	}
}

func TestFastMatchesBruteForceSmall(t *testing.T) {
	rng := stats.NewRand(41)
	for trial := 0; trial < 100; trial++ {
		nLoc := 1 + rng.Intn(4)
		p := Pool{Classes: []Class{
			{Count: nLoc, Capacity: float64(1 + rng.Intn(3))},
			{Count: 1 + rng.Intn(2), Capacity: float64(1 + rng.Intn(2))},
		}}
		nReq := 1 + rng.Intn(3)
		reqs := make([]Request, nReq)
		for i := range reqs {
			reqs[i] = Request{Min: rng.Intn(4), Shape: 1, Resources: 1}
		}
		got := Solve(p, reqs)
		want := BruteForce(p, reqs)
		if math.Abs(got.Utility-want.Utility) > 1e-9 {
			t.Fatalf("trial %d: fast %g != oracle %g (pool %+v reqs %+v, X=%v oracleX=%v)",
				trial, got.Utility, want.Utility, p, reqs, got.X, want.X)
		}
	}
}

func TestGreedyMatchesBruteForceConcave(t *testing.T) {
	rng := stats.NewRand(43)
	for trial := 0; trial < 60; trial++ {
		p := Pool{Classes: []Class{
			{Count: 2 + rng.Intn(3), Capacity: float64(1 + rng.Intn(3))},
			{Count: 1 + rng.Intn(2), Capacity: float64(1 + rng.Intn(2))},
		}}
		nReq := 1 + rng.Intn(2)
		reqs := make([]Request, nReq)
		for i := range reqs {
			// Concave shape triggers the greedy engine.
			reqs[i] = Request{Min: rng.Intn(3), Shape: 0.8, Resources: 1}
		}
		got := Solve(p, reqs)
		want := BruteForce(p, reqs)
		if got.Utility > want.Utility+1e-9 {
			t.Fatalf("trial %d: greedy %g exceeds oracle %g — infeasible allocation",
				trial, got.Utility, want.Utility)
		}
		if got.Utility < want.Utility-1e-6 {
			t.Fatalf("trial %d: greedy %g < oracle %g (pool %+v reqs %+v)",
				trial, got.Utility, want.Utility, p, reqs)
		}
	}
}

func TestGreedyConvexSingle(t *testing.T) {
	// Convex utility with a single experiment must still take everything.
	p := Pool{Classes: []Class{{Count: 10, Capacity: 1}}}
	res := Solve(p, []Request{{Min: 2, Shape: 1.5, Resources: 1}})
	if res.X[0] != 10 {
		t.Errorf("x = %d, want 10", res.X[0])
	}
	if math.Abs(res.Utility-math.Pow(10, 1.5)) > 1e-9 {
		t.Errorf("utility %g", res.Utility)
	}
}

func TestGreedyHeterogeneousResources(t *testing.T) {
	// A CDN-like heavy request (r=4) and P2P-like light requests (r=1).
	p := Pool{Classes: []Class{{Count: 5, Capacity: 4}}}
	reqs := []Request{
		{Min: 2, Max: 3, Shape: 1, Resources: 4, Label: "cdn"},
		{Min: 0, Shape: 1, Resources: 1, Label: "p2p"},
	}
	res := Solve(p, reqs)
	// CDN takes 3 locations (its Max), fully consuming them; P2P can still
	// use the remaining capacity on other locations plus leftovers.
	if res.X[0] < 2 {
		t.Errorf("cdn got %d locations, needs >= 2", res.X[0])
	}
	if res.X[1] == 0 {
		t.Error("p2p request should be admitted")
	}
	// Feasibility: consumption within capacity.
	if res.ConsumedByClass[0] > p.TotalCapacity()+1e-9 {
		t.Errorf("consumed %g exceeds capacity %g", res.ConsumedByClass[0], p.TotalCapacity())
	}
}

func TestMaxCaps(t *testing.T) {
	p := Pool{Classes: []Class{{Count: 10, Capacity: 2}}}
	res := Solve(p, []Request{
		{Min: 1, Max: 4, Shape: 1, Resources: 1},
		{Min: 1, Max: 4, Shape: 1, Resources: 1},
	})
	for j, x := range res.X {
		if x > 4 {
			t.Errorf("request %d exceeded Max: %d", j, x)
		}
	}
	if res.Utility != 8 {
		t.Errorf("utility %g, want 8", res.Utility)
	}
}

func TestEmptyInputs(t *testing.T) {
	res := Solve(Pool{}, nil)
	if res.Utility != 0 || len(res.X) != 0 {
		t.Error("empty solve should be all-zero")
	}
	res = Solve(pool3(1, 1, 1, 1, 1, 1), nil)
	if res.Utility != 0 {
		t.Error("no requests -> zero utility")
	}
	res = Solve(Pool{}, identical(2, 1, 1))
	if res.Utility != 0 {
		t.Error("no locations -> zero utility")
	}
}

func TestSolvePanicsOnBadRequest(t *testing.T) {
	for _, req := range []Request{
		{Min: 1, Shape: 1, Resources: 0},
		{Min: 1, Shape: 0, Resources: 1},
		{Min: -1, Shape: 1, Resources: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", req)
				}
			}()
			Solve(pool3(1, 1, 1, 1, 1, 1), []Request{req})
		}()
	}
}

func TestRequestUtility(t *testing.T) {
	r := Request{Min: 5, Shape: 2, Resources: 1}
	if r.Utility(4) != 0 {
		t.Error("below Min must be 0")
	}
	if r.Utility(5) != 25 {
		t.Errorf("u(5) = %g", r.Utility(5))
	}
	if r.Utility(0) != 0 || r.Utility(-1) != 0 {
		t.Error("non-positive x must be 0")
	}
}

func TestSolveP2PIndividualRationality(t *testing.T) {
	rng := stats.NewRand(53)
	for trial := 0; trial < 30; trial++ {
		nf := 2 + rng.Intn(2)
		facs := make([]FacilityContribution, nf)
		for i := range facs {
			facs[i] = FacilityContribution{
				Name:    string(rune('A' + i)),
				Classes: []Class{{Count: 1 + rng.Intn(5), Capacity: float64(1 + rng.Intn(3))}},
			}
			nr := 1 + rng.Intn(3)
			for j := 0; j < nr; j++ {
				facs[i].Requests = append(facs[i].Requests, Request{
					Min: rng.Intn(4), Shape: 1, Resources: 1,
				})
			}
		}
		res, err := SolveP2P(facs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range facs {
			if res.Federated[i] < res.Standalone[i]-1e-9 {
				t.Fatalf("trial %d: facility %d federated %g < standalone %g",
					trial, i, res.Federated[i], res.Standalone[i])
			}
		}
		// Shares sum to 1 when total > 0.
		total := res.TotalUtility()
		if total > 0 {
			sum := 0.0
			for _, s := range res.Shares {
				sum += s
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("trial %d: shares sum to %g", trial, sum)
			}
		}
	}
}

func TestSolveP2PFederationGain(t *testing.T) {
	// A facility with demand but no resources gains from federation; the
	// resource-rich facility loses nothing.
	facs := []FacilityContribution{
		{Name: "rich", Classes: []Class{{Count: 10, Capacity: 2}},
			Requests: []Request{{Min: 1, Shape: 1, Resources: 1}}},
		{Name: "poor", Classes: []Class{{Count: 0, Capacity: 0}},
			Requests: []Request{{Min: 5, Shape: 1, Resources: 1}}},
	}
	res, err := SolveP2P(facs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Standalone[1] != 0 {
		t.Errorf("poor standalone = %g, want 0", res.Standalone[1])
	}
	if res.Federated[1] < 5 {
		t.Errorf("poor federated = %g, want >= 5", res.Federated[1])
	}
	if res.Federated[0] < res.Standalone[0] {
		t.Error("rich facility must not lose")
	}
}

func TestSolveP2PInvalidInput(t *testing.T) {
	if _, err := SolveP2P([]FacilityContribution{
		{Name: "bad", Classes: []Class{{Count: -1}}},
	}); err == nil {
		t.Error("invalid class must error")
	}
	if _, err := SolveP2P([]FacilityContribution{
		{Name: "bad", Classes: []Class{{Count: 1, Capacity: 1}},
			Requests: []Request{{Min: 0, Shape: 0, Resources: 1}}},
	}); err == nil {
		t.Error("invalid request must error")
	}
}

func BenchmarkSolveFastFig6(b *testing.B) {
	p := pool3(100, 400, 800, 80, 20, 10)
	reqs := identical(200, 600, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(p, reqs)
	}
}

func BenchmarkSolveGreedySmall(b *testing.B) {
	p := Pool{Classes: []Class{{Count: 30, Capacity: 3}, {Count: 20, Capacity: 2}}}
	reqs := make([]Request, 10)
	for i := range reqs {
		reqs[i] = Request{Min: 5, Shape: 0.8, Resources: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(p, reqs)
	}
}
