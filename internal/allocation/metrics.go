package allocation

import "fedshare/internal/obs"

// The memo already counts hits/misses/entries in private atomics (they
// reset with Memo.Reset, hence gauges, not counters). Exporting them as
// callback gauges reads the existing counters at scrape time, so the
// Solve hot path is untouched.
func init() {
	obs.Default.GaugeFunc("fedshare_alloc_memo_hits",
		"Allocation-memo lookups served from the table since start/reset.",
		func() float64 { return float64(DefaultMemo.Stats().Hits) })
	obs.Default.GaugeFunc("fedshare_alloc_memo_misses",
		"Allocation-memo lookups that required a fresh solve since start/reset.",
		func() float64 { return float64(DefaultMemo.Stats().Misses) })
	obs.Default.GaugeFunc("fedshare_alloc_memo_entries",
		"Entries currently stored in the allocation memo.",
		func() float64 { return float64(DefaultMemo.Stats().Entries) })
	obs.Default.GaugeFunc("fedshare_alloc_memo_hit_ratio",
		"Fraction of allocation-memo lookups served from the table.",
		func() float64 { return DefaultMemo.Stats().HitRate() })
}
