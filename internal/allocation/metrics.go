package allocation

import "fedshare/internal/obs"

// The memo already counts hits/misses/entries in private atomics (they
// reset with Memo.Reset, hence gauges, not counters). Exporting them as
// callback gauges reads the existing counters at scrape time, so the
// Solve hot path is untouched.
// Prefix-solver counters. PrefixSolver batches its per-step deltas and
// flushes them on Reset/Stats (once per permutation half-walk), so the
// incremental hot path performs no atomic operations.
var (
	prefixStepsTotal = obs.Default.Counter("fedshare_allocation_prefix_steps_total",
		"Incremental prefix-solver steps (PrefixSolver.Add calls).")
	prefixFallbacksTotal = obs.Default.Counter("fedshare_allocation_prefix_fallbacks_total",
		"Prefix-solver steps that fell back to a full re-solve of the prefix pool.")
)

// PrefixCounters snapshots the process-wide prefix-solver counters
// (steps, fallbacks) for delta reporting (fedsim -v).
func PrefixCounters() (steps, fallbacks int64) {
	return prefixStepsTotal.Value(), prefixFallbacksTotal.Value()
}

func init() {
	obs.Default.GaugeFunc("fedshare_alloc_memo_hits",
		"Allocation-memo lookups served from the table since start/reset.",
		func() float64 { return float64(DefaultMemo.Stats().Hits) })
	obs.Default.GaugeFunc("fedshare_alloc_memo_misses",
		"Allocation-memo lookups that required a fresh solve since start/reset.",
		func() float64 { return float64(DefaultMemo.Stats().Misses) })
	obs.Default.GaugeFunc("fedshare_alloc_memo_entries",
		"Entries currently stored in the allocation memo.",
		func() float64 { return float64(DefaultMemo.Stats().Entries) })
	obs.Default.GaugeFunc("fedshare_alloc_memo_hit_ratio",
		"Fraction of allocation-memo lookups served from the table.",
		func() float64 { return DefaultMemo.Stats().HitRate() })
}
