package allocation

import (
	"fmt"
	"math"
	"sort"
)

// Incremental prefix allocation.
//
// The sampling Shapley engines evaluate V along the growing prefixes of a
// permutation: V({π1}), V({π1,π2}), ... V(N). Solved from scratch, every
// step rebuilds the pool and re-runs the full allocation problem (2) of
// Sec. 3.1, making a single permutation walk O(n²·solve). A PrefixSolver
// instead carries the solved state of the current prefix and updates it
// when one facility's class of locations joins the pool:
//
//   - on the Gale–Ryser fast path (uniform request resources, linear
//     utility, no binding Max — the paper's figure workloads), V equals
//     totalSlots(m*) for the greedily admitted count m*. The solver keeps
//     the pool's per-location capacity histogram in two Fenwick trees, so
//     adding a class is an O(log K) point update and re-finding m* is a
//     binary search with O(log K) totalSlots queries — no pool rebuild,
//     no admission-loop re-scan of the locations.
//   - on the general (greedy-engine) path, the solver repairs instead of
//     re-solving when it can certify that the repaired value equals a
//     fresh solveGreedy run: under the abundant-capacity certificate
//     (every pool class's per-location capacity covers the total resource
//     demand Σ_j r_j), the greedy provably admits every feasible request
//     and tops each up independently, so V has a closed form evaluated in
//     O(K). When the certificate fails, the solver falls back to a full
//     re-solve of the prefix pool (counted; see PrefixStats) — reading
//     the allocation memo but never inserting, so permutation walks do
//     not flood the table with one-off prefix keys.
//
// Values are bit-identical to Solve on the fast path (all arithmetic is
// exact integer slot counting) and on the certified repair path (the
// closed form replays the greedy's own float operations in the same
// order); fallback steps call the same Solve the non-incremental path
// uses. A walk therefore produces the same float64 stream as calling
// Solve on every prefix, which is what keeps the samplers' fixed-seed
// determinism contract intact with the incremental path on or off.

// PrefixStats counts how a PrefixSolver's steps were served.
type PrefixStats struct {
	// Steps is the number of Add calls.
	Steps int64
	// Fast is the number of steps valued by the incremental exact
	// Gale–Ryser/analytic fast path.
	Fast int64
	// Repaired is the number of steps valued by the certified greedy
	// repair (abundant-capacity closed form).
	Repaired int64
	// Fallbacks is the number of steps that re-solved the full prefix
	// pool because no incremental path could certify the value.
	Fallbacks int64
}

// FallbackRate returns the fraction of steps that fell back to a full
// re-solve.
func (s PrefixStats) FallbackRate() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.Fallbacks) / float64(s.Steps)
}

// PrefixSolver evaluates V over a growing pool of location classes for a
// fixed request list. It is stateful and NOT safe for concurrent use;
// create one per walker goroutine (they may share one Memo, which is
// concurrency-safe).
type PrefixSolver struct {
	reqs []Request
	memo *Memo

	// Request-list digests, fixed at construction.
	k          int     // len(reqs)
	r0         float64 // reqs[0].Resources when k > 0
	uniformRes bool    // all Resources == r0
	allLinear  bool    // all Shape == 1
	boundedMax int     // smallest positive Max among requests; 0 = none
	homogMin   int     // common Min when all equal, else -1
	order      []int   // request indices, stable ascending-Min (solveFast order)
	sumRes     float64 // Σ_j Resources_j — the abundant-capacity bar

	// Pool state.
	classes []Class
	poolL   int
	scarce  int // classes with Count > 0 and Capacity < sumRes

	// Fast-path slot accounting: Fenwick trees over the capped
	// per-location experiment capacity b = min(⌊Capacity/r0⌋, k).
	fcnt   []int64 // location counts by b
	fslots []int64 // b·count by b
	totCnt int64
	maxN   int // largest capped b among non-empty classes

	minsDesc []int // admission-replay scratch

	value float64
	stats PrefixStats
	// Flushed-to-metrics watermarks (see flushMetrics).
	flushedSteps, flushedFallbacks int64
}

// NewPrefixSolver builds a solver for the given request list. The memo,
// when non-nil, is consulted (read-only) on fallback steps; pass nil to
// always re-solve directly. It validates the requests with the same rules
// Solve enforces.
func NewPrefixSolver(reqs []Request, memo *Memo) (*PrefixSolver, error) {
	for j, r := range reqs {
		if r.Resources <= 0 {
			return nil, fmt.Errorf("allocation: request %d has non-positive Resources", j)
		}
		if r.Shape <= 0 {
			return nil, fmt.Errorf("allocation: request %d has non-positive Shape", j)
		}
		if r.Min < 0 {
			return nil, fmt.Errorf("allocation: request %d has negative Min", j)
		}
	}
	ps := &PrefixSolver{
		reqs:       reqs,
		memo:       memo,
		k:          len(reqs),
		uniformRes: true,
		allLinear:  true,
		homogMin:   -1,
	}
	if ps.k > 0 {
		ps.r0 = reqs[0].Resources
		ps.homogMin = reqs[0].Min
	}
	for _, r := range reqs {
		if r.Resources != ps.r0 {
			ps.uniformRes = false
		}
		if r.Shape != 1 {
			ps.allLinear = false
		}
		if r.Max > 0 && (ps.boundedMax == 0 || r.Max < ps.boundedMax) {
			ps.boundedMax = r.Max
		}
		if r.Min != ps.homogMin {
			ps.homogMin = -1
		}
		ps.sumRes += r.Resources
	}
	ps.order = make([]int, ps.k)
	for i := range ps.order {
		ps.order[i] = i
	}
	sort.SliceStable(ps.order, func(a, b int) bool {
		return reqs[ps.order[a]].Min < reqs[ps.order[b]].Min
	})
	if ps.fastEligible() {
		ps.fcnt = make([]int64, ps.k+1)
		ps.fslots = make([]int64, ps.k+1)
	}
	ps.minsDesc = make([]int, 0, ps.k)
	return ps, nil
}

// fastEligible reports whether the fast path can ever apply to this
// request list (the remaining condition — no Max binding below the pool
// size — depends on the current pool and is checked per step).
func (ps *PrefixSolver) fastEligible() bool {
	return ps.k > 0 && ps.uniformRes && ps.allLinear
}

// Reset empties the pool, starting a new walk. Counter deltas accumulated
// since the previous flush are published to the process metrics.
func (ps *PrefixSolver) Reset() {
	ps.flushMetrics()
	ps.classes = ps.classes[:0]
	ps.poolL = 0
	ps.scarce = 0
	ps.totCnt = 0
	ps.maxN = 0
	for i := range ps.fcnt {
		ps.fcnt[i] = 0
		ps.fslots[i] = 0
	}
	ps.value = 0
}

// flushMetrics publishes counter deltas since the last flush to the
// process-wide prefix metrics. Called from Reset so the hot Add path pays
// no atomic operations.
func (ps *PrefixSolver) flushMetrics() {
	if d := ps.stats.Steps - ps.flushedSteps; d > 0 {
		prefixStepsTotal.Add(d)
		ps.flushedSteps = ps.stats.Steps
	}
	if d := ps.stats.Fallbacks - ps.flushedFallbacks; d > 0 {
		prefixFallbacksTotal.Add(d)
		ps.flushedFallbacks = ps.stats.Fallbacks
	}
}

// Stats returns the solver's step counters (flushing them to the process
// metrics as a side effect).
func (ps *PrefixSolver) Stats() PrefixStats {
	ps.flushMetrics()
	return ps.stats
}

// Value returns V of the current pool.
func (ps *PrefixSolver) Value() float64 { return ps.value }

// Add grows the pool by one class and returns the new V — exactly
// Solve(pool, reqs).Utility for the accumulated pool. It panics on
// invalid classes, mirroring Solve.
func (ps *PrefixSolver) Add(c Class) float64 {
	if c.Count < 0 {
		panic(fmt.Sprintf("allocation: class %s has negative count", c.Label))
	}
	if c.Capacity < 0 {
		panic(fmt.Sprintf("allocation: class %s has negative capacity", c.Label))
	}
	ps.classes = append(ps.classes, c)
	ps.stats.Steps++
	if c.Count > 0 {
		ps.poolL += c.Count
		if c.Capacity < ps.sumRes {
			ps.scarce++
		}
		if ps.fastEligible() {
			b := int(math.Floor(c.Capacity / ps.r0))
			if b > ps.k {
				b = ps.k
			}
			fenwAdd(ps.fcnt, b, int64(c.Count))
			fenwAdd(ps.fslots, b, int64(b)*int64(c.Count))
			ps.totCnt += int64(c.Count)
			if b > ps.maxN {
				ps.maxN = b
			}
		}
	}
	ps.value = ps.solveStep()
	return ps.value
}

// solveStep picks the cheapest path that reproduces Solve on the current
// pool: incremental fast path, certified greedy repair, full fallback.
func (ps *PrefixSolver) solveStep() float64 {
	if ps.k == 0 {
		// Solve of an empty request list is 0 on every pool.
		ps.stats.Fast++
		return 0
	}
	// Mirror of fastApplies: uniform resources, all shapes 1, and no Max
	// binding below the current pool size.
	if ps.fastEligible() && (ps.boundedMax == 0 || ps.boundedMax >= ps.poolL) {
		ps.stats.Fast++
		return float64(ps.fastValue())
	}
	if ps.scarce == 0 {
		ps.stats.Repaired++
		return ps.abundantValue()
	}
	ps.stats.Fallbacks++
	return ps.fallbackValue()
}

// totalSlots returns Σ_c Count_c·min(n_c, m) over the current pool via
// the Fenwick trees — the same quantity totalSlots computes from the
// class arrays, valid for m ≤ k (the only range admission ever queries,
// which is why capping b at k is lossless).
func (ps *PrefixSolver) totalSlots(m int) int64 {
	if m <= 0 {
		return 0
	}
	le := fenwSum(ps.fcnt, m-1)
	return fenwSum(ps.fslots, m-1) + int64(m)*(ps.totCnt-le)
}

// fastValue is the incremental fast path: V = totalSlots(m*) with m* the
// admitted count, by closed form for homogeneous minima (the analytic
// engine's domain) and by admission replay otherwise.
func (ps *PrefixSolver) fastValue() int64 {
	if ps.homogMin >= 0 {
		return ps.homogValue()
	}
	return ps.heteroFastValue()
}

// homogValue mirrors solveAnalytic's admission: identical minima make
// Gale–Ryser a single inequality whose feasible set is a prefix of 0..k.
func (ps *PrefixSolver) homogValue() int64 {
	l := ps.homogMin
	switch {
	case l > ps.poolL:
		return 0
	case l == 0:
		m := ps.k
		if m > ps.maxN {
			m = ps.maxN
		}
		return ps.totalSlots(m)
	default:
		lo, hi := 0, ps.k
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if int64(mid)*int64(l) <= ps.totalSlots(mid) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return ps.totalSlots(lo)
	}
}

// heteroFastValue replays solveFast's admission loop — ascending-Min
// scan, insertion into the descending minima multiset, Gale–Ryser prefix
// feasibility — against the Fenwick slot oracle, so no per-step pool or
// class-table rebuild happens.
func (ps *PrefixSolver) heteroFastValue() int64 {
	admitted := 0
	minsDesc := ps.minsDesc[:0]
	for _, j := range ps.order {
		min := ps.reqs[j].Min
		if min > ps.poolL {
			continue
		}
		if min == 0 && ps.totalSlots(admitted+1) == ps.totalSlots(admitted) {
			continue
		}
		pos := sort.Search(len(minsDesc), func(i int) bool { return minsDesc[i] < min })
		minsDesc = append(minsDesc, 0)
		copy(minsDesc[pos+1:], minsDesc[pos:])
		minsDesc[pos] = min
		feasible := true
		prefix := int64(0)
		for t, v := range minsDesc {
			prefix += int64(v)
			if prefix > ps.totalSlots(t+1) {
				feasible = false
				break
			}
		}
		if !feasible {
			copy(minsDesc[pos:], minsDesc[pos+1:])
			minsDesc = minsDesc[:len(minsDesc)-1]
			continue
		}
		admitted++
	}
	ps.minsDesc = minsDesc[:0]
	return ps.totalSlots(admitted)
}

// abundantValue is the certified greedy repair. Certificate: every class
// in the pool has per-location capacity ≥ Σ_j Resources_j, so a location
// can host every request at once and capacity never binds. Under it,
// greedyWithOrder provably (a) admits exactly the requests with
// Min ≤ maxLocations(L) in either admission order, (b) gives each its
// minimum in Phase A, and (c) tops each up independently in Phase B until
// its Max, the pool size, or the 1e-12 marginal-gain cutoff stops it.
// Both greedy orders therefore produce the same per-request counts and
// the same utility, which this closed form reproduces — including float
// summation order — bit-for-bit.
func (ps *PrefixSolver) abundantValue() float64 {
	u := 0.0
	for j := range ps.reqs {
		r := &ps.reqs[j]
		maxX := r.maxLocations(ps.poolL)
		if r.Min > maxX {
			continue
		}
		u += r.Utility(greedyTopUp(r, maxX))
	}
	return u
}

// greedyTopUp returns the location count greedy Phase B reaches for an
// admitted request when locations are never scarce: starting from Min,
// take another location while the marginal utility gain exceeds the
// greedy's 1e-12 cutoff, up to maxX. The gain (x+1)^d − x^d is monotone
// in x on x ≥ Min (increasing for d ≥ 1, decreasing for d < 1), so the
// stopping point is found by inspection or binary search.
func greedyTopUp(r *Request, maxX int) int {
	x := r.Min
	if x >= maxX {
		return x
	}
	gain := func(x int) float64 { return r.Utility(x+1) - r.Utility(x) }
	if gain(x) <= 1e-12 {
		return x
	}
	if gain(maxX-1) > 1e-12 {
		return maxX
	}
	// Decreasing gains (d < 1): largest t with every gain on the way
	// above the cutoff, i.e. gain(t-1) > 1e-12.
	lo, hi := x+1, maxX
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if gain(mid-1) > 1e-12 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// fallbackValue re-solves the whole prefix pool: memo read first (repeated
// aggregate keys — e.g. symmetric prefixes — still hit), then a direct
// solve that is deliberately NOT inserted, so one-off prefix keys cannot
// flood the memo.
func (ps *PrefixSolver) fallbackValue() float64 {
	pool := Pool{Classes: ps.classes}
	if ps.memo != nil {
		if res, ok := ps.memo.Lookup(pool, ps.reqs); ok {
			return res.Utility
		}
	}
	return Solve(pool, ps.reqs).Utility
}

// fenwAdd adds d at index i (0-based) of a Fenwick tree stored in a
// 1-based array of length len(t); t must have length ≥ 2.
func fenwAdd(t []int64, i int, d int64) {
	for i++; i < len(t); i += i & -i {
		t[i] += d
	}
}

// fenwSum returns the prefix sum over indices [0, i].
func fenwSum(t []int64, i int) int64 {
	s := int64(0)
	for i++; i > 0; i -= i & -i {
		s += t[i]
	}
	return s
}
