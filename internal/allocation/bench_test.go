package allocation

import "testing"

func benchInstance() (Pool, []Request) {
	pool := Pool{Classes: []Class{
		{Label: "a", Count: 40, Capacity: 2},
		{Label: "b", Count: 60, Capacity: 1},
		{Label: "c", Count: 25, Capacity: 3},
	}}
	reqs := make([]Request, 100)
	for j := range reqs {
		reqs[j] = Request{Min: 40, Shape: 1, Resources: 1}
	}
	return pool, reqs
}

// BenchmarkSolveFast measures the full Gale–Ryser admission loop.
func BenchmarkSolveFast(b *testing.B) {
	pool, reqs := benchInstance()
	for i := 0; i < b.N; i++ {
		solveFast(pool, reqs)
	}
}

// BenchmarkSolveAnalytic measures the closed-form engine on the same
// instance (cold, no memo).
func BenchmarkSolveAnalytic(b *testing.B) {
	pool, reqs := benchInstance()
	for i := 0; i < b.N; i++ {
		solveAnalytic(pool, reqs)
	}
}

// BenchmarkSolveMemoWarm measures a warm memo hit including key
// construction and result remapping.
func BenchmarkSolveMemoWarm(b *testing.B) {
	pool, reqs := benchInstance()
	m := NewMemo()
	m.Solve(pool, reqs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Solve(pool, reqs)
	}
}
