package obs

import "runtime"

// RegisterRuntimeMetrics registers process-level gauges (goroutine count,
// heap usage, GC cycles) on r. Daemons call this once at startup; the
// callbacks run only at scrape time.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("fedshare_go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("fedshare_go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	r.GaugeFunc("fedshare_go_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.NumGC)
		})
}
