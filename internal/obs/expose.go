package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry's current state in the Prometheus
// text exposition format (version 0.0.4): # HELP / # TYPE headers, one
// sample line per child, histograms expanded into cumulative _bucket
// series plus _sum and _count. Output order is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			if f.Type == "histogram" {
				if err := writeHistogramText(w, f.Name, m); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(m.Labels, "", 0), formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogramText(w io.Writer, name string, m MetricSnapshot) error {
	for _, b := range m.Buckets {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, labelString(m.Labels, "le", b.LE), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, labelStringInf(m.Labels), m.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(m.Labels, "", 0), formatValue(m.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(m.Labels, "", 0), m.Count)
	return err
}

// labelString renders {k="v",...}, optionally appending an le bucket
// label; empty label sets render as "".
func labelString(labels map[string]string, le string, leVal float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[k]))
		sb.WriteByte('"')
	}
	if le != "" {
		if len(keys) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(le)
		sb.WriteString(`="`)
		sb.WriteString(formatValue(leVal))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func labelStringInf(labels map[string]string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[k]))
		sb.WriteString(`",`)
	}
	sb.WriteString(`le="+Inf"}`)
	return sb.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Handler returns an http.Handler serving the Prometheus text format at
// /metrics and the JSON snapshot at /metrics.json, plus liveness and
// readiness probes (always-ready; see HandlerWithHealth).
func (r *Registry) Handler() http.Handler {
	return r.HandlerWithHealth(nil)
}

// HandlerWithHealth is Handler plus orchestration probes and build
// identification: /healthz always answers 200 (the process is alive),
// /readyz answers 200 only while ready() is true and 503 otherwise — a
// draining daemon flips it so load balancers stop routing to it before the
// listener goes away — and /version reports the binary's build info as
// JSON (see Version). A nil ready means always ready.
//
// The returned mux is open for further registration, so a daemon can mount
// additional surfaces (the scenario API, the dashboard) on the same
// listener.
func (r *Registry) HandlerWithHealth(ready func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/version", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(Version())
	})
	return mux
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }

// HandlerWithHealth serves the Default registry with a readiness probe and
// the /version endpoint; the returned mux accepts further routes.
func HandlerWithHealth(ready func() bool) *http.ServeMux {
	return Default.HandlerWithHealth(ready)
}
