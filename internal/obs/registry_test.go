package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("value = %d, want 5", c.Value())
	}
	// Idempotent registration returns the same child.
	if r.Counter("test_total", "a counter") != c {
		t.Error("re-registration should return the existing counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add must panic")
		}
	}()
	c.Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "a gauge")
	g.Set(4.5)
	g.Add(-1.5)
	g.Inc()
	g.Dec()
	if g.Value() != 3 {
		t.Errorf("value = %g, want 3", g.Value())
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("cb", "callback gauge", func() float64 { return v })
	snap := r.Snapshot()
	if len(snap.Families) != 1 || snap.Families[0].Metrics[0].Value != 7 {
		t.Errorf("snapshot = %+v", snap)
	}
	v = 9
	if got := r.Snapshot().Families[0].Metrics[0].Value; got != 9 {
		t.Errorf("callback gauge = %g, want 9", got)
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("req_total", "requests", "method")
	vec.With("ping").Inc()
	vec.With("ping").Inc()
	vec.With("shares").Inc()
	if vec.With("ping").Value() != 2 || vec.With("shares").Value() != 1 {
		t.Error("labeled children must be independent")
	}
	snap := r.Snapshot()
	if len(snap.Families[0].Metrics) != 2 {
		t.Fatalf("want 2 children, got %+v", snap.Families[0].Metrics)
	}
	// Children are sorted by label value.
	if snap.Families[0].Metrics[0].Labels["method"] != "ping" {
		t.Errorf("children not sorted: %+v", snap.Families[0].Metrics)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-12 {
		t.Errorf("sum = %g", h.Sum())
	}
	m := r.Snapshot().Families[0].Metrics[0]
	wantCum := []uint64{1, 3, 4} // <=0.01, <=0.1, <=1
	for i, b := range m.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%g count=%d, want %d", b.LE, b.Count, wantCum[i])
		}
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 6 {
		t.Errorf("count after ObserveDuration = %d", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

// TestConcurrentRegistry hammers family creation, labeled-child creation,
// metric updates, and snapshotting from many goroutines; run under -race.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers = 8
	const iters = 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared_total", "").Inc()
				r.CounterVec("labeled_total", "", "m").With("a").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "", []float64{1, 2, 4}).Observe(float64(i % 5))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	const want = workers * iters
	if got := r.Counter("shared_total", "").Value(); got != want {
		t.Errorf("shared counter = %d, want %d", got, want)
	}
	if got := r.CounterVec("labeled_total", "", "m").With("a").Value(); got != want {
		t.Errorf("labeled counter = %d, want %d", got, want)
	}
	if got := r.Gauge("g", "").Value(); got != want {
		t.Errorf("gauge = %g, want %d", got, want)
	}
	if got := r.Histogram("h", "", []float64{1, 2, 4}).Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}
